// Binary black hole in a star cluster — a scaled-down version of the
// paper's second application (Sec 5): a Plummer model with two massive
// point particles (0.5% of the cluster mass each) on a mutual orbit.
//
//   ./examples/binary_black_hole [--n=512] [--t-end=2.0]
//
// Prints the BH separation and orbital elements over time; in the real
// 2M-particle run this hardening binary is the science target.

#include <cstdio>

#include "core/grape6.hpp"

int main(int argc, char** argv) try {
  g6::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 512, "field particles"));
  const double t_end = cli.get_double("t-end", 2.0, "integration span");
  const double bh_mass = cli.get_double("bh-mass", 0.005, "BH mass fraction (paper: 0.005)");
  const double separation = cli.get_double("separation", 0.5, "initial BH separation");
  if (cli.finish()) return 0;

  std::printf("binary black hole in a cluster: N_field=%zu + 2 BHs (m=%g each)\n",
              n, bh_mass);

  g6::Rng rng(7);
  const g6::ParticleSet initial =
      g6::make_plummer_with_bh_binary(n, rng, bh_mass, separation);
  const std::size_t bh1 = n;
  const std::size_t bh2 = n + 1;

  const double eps = 1.0 / 64.0;
  g6::DirectForceEngine engine(eps);
  g6::HermiteConfig cfg;
  cfg.eta = 0.01;
  g6::HermiteIntegrator integ(initial, engine, cfg);

  const double e0 = g6::compute_energy(initial.bodies(), eps).total();
  const double mu = g6::units::kGravity * 2.0 * bh_mass;

  std::printf("\n%10s %12s %12s %12s %14s\n", "t", "separation", "a_bin", "e_bin",
              "steps");
  const double dt_out = 0.25;
  for (double t = dt_out; t <= t_end + 1e-9; t += dt_out) {
    integ.evolve(t);
    const g6::ParticleSet s = integ.state_at_current_time();
    const g6::RelativeState rel{s[bh2].pos - s[bh1].pos, s[bh2].vel - s[bh1].vel};
    const double sep = g6::norm(rel.pos);
    double a = 0.0, e = 0.0;
    if (g6::orbital_energy(rel, mu) < 0.0) {
      const g6::OrbitalElements el = g6::state_to_elements(rel, mu);
      a = el.semi_major_axis;
      e = el.eccentricity;
    }
    std::printf("%10.3f %12.5f %12.5f %12.5f %14llu\n", integ.time(), sep, a, e,
                integ.total_steps());
  }

  const double e1 =
      g6::compute_energy(integ.state_at_current_time().bodies(), eps).total();
  std::printf("\nenergy drift dE/E = %.3e over %g time units\n", (e1 - e0) / e0,
              integ.time());
  std::printf("(paper run: N=2M, 36 time units, 4.14e10 steps, 35.3 Tflops;\n"
              " regenerate the performance figures with bench/app_binary_black_hole)\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
