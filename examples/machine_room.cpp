// Machine-room tour: instantiate the GRAPE-6 configurations of the paper,
// print their headline numbers, and run the same small cluster workload on
// 1/2/4 virtual hosts to show the reproducibility property and the
// synchronization cost in action.
//
//   ./examples/machine_room [--n=96]

#include <cstdio>

#include "core/grape6.hpp"

namespace {

void print_machine(const char* label, const g6::MachineConfig& mc) {
  std::printf("%-28s %5zu chips  %6.2f Tflops peak  (%zu hosts x %zu boards)\n",
              label, mc.total_chips(), mc.peak_flops() / 1e12, mc.total_hosts(),
              mc.boards_per_host);
}

}  // namespace

int main(int argc, char** argv) try {
  g6::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 96, "particle count"));
  if (cli.finish()) return 0;

  std::printf("=== GRAPE-6 configurations (Sec 1, Sec 2) ===\n");
  print_machine("single host (Fig 13/14)", g6::MachineConfig::single_host());
  print_machine("one cluster (Fig 15/16)", g6::MachineConfig::single_cluster());
  print_machine("full system (Fig 17-19)", g6::MachineConfig::full_system());
  const g6::MachineConfig chip;
  std::printf("one chip: %zu pipelines x %zu-way VMP @ %.0f MHz = %.2f Gflops\n",
              chip.pipelines_per_chip, chip.vmp_ways, chip.clock_hz / 1e6,
              chip.chip_peak_flops() / 1e9);

  std::printf("\n=== same physics, different machine sizes (N=%zu) ===\n", n);
  g6::Rng rng(3);
  const g6::ParticleSet initial = g6::make_plummer(n, rng);

  double reference_x = 0.0;
  for (std::size_t hosts : {1u, 2u, 4u}) {
    g6::VirtualClusterConfig cfg;
    cfg.system = g6::SystemConfig::cluster(hosts);
    cfg.system.machine.boards_per_host = 1;
    cfg.hermite.record_trace = true;
    g6::VirtualCluster cluster(initial, cfg);
    cluster.evolve(0.125);

    const double x0 = cluster.particle(0).pos.x;
    if (hosts == 1) reference_x = x0;
    const g6::BlockstepCost& c = cluster.accumulated_cost();
    std::printf(
        "%zu host(s): %6llu steps in %8.2f ms virtual "
        "(host %5.2f | dma %5.2f | grape %5.2f | net %5.2f)  bitwise %s\n",
        hosts, cluster.total_steps(), cluster.virtual_seconds() * 1e3,
        c.host_s * 1e3, c.dma_s * 1e3, c.grape_s * 1e3, c.net_s * 1e3,
        x0 == reference_x ? "IDENTICAL" : "DIFFERENT!");
  }

  std::printf(
      "\nBlock floating point makes the dynamics independent of the machine\n"
      "size (Sec 3.4); only the virtual wall time changes. At this tiny N the\n"
      "multi-host systems are slower — the crossover of Fig 15.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
