// Planetesimal accretion — the science loop of the Kuiper-belt
// application: integrate the disk with individual timesteps, detect
// physical collisions with the (hardware-assisted) neighbor machinery,
// and merge bodies by perfect accretion. Watch the mass spectrum evolve.
//
//   ./examples/accretion [--n=300] [--rounds=6] [--r-ref=0.02]

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/grape6.hpp"

int main(int argc, char** argv) try {
  g6::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 300, "planetesimals"));
  const int rounds = static_cast<int>(cli.get_int("rounds", 6, "evolve+collide rounds"));
  const double r_ref = cli.get_double(
      "r-ref", 0.02, "physical radius of a unit-mass planetesimal (inflated)");
  const double dt_round = cli.get_double("dt-round", 1.0, "time per round");
  if (cli.finish()) return 0;

  g6::DiskParams disk;
  disk.disk_mass = 1e-3;
  disk.ecc_dispersion = 0.08;  // dynamically hot: orbits cross
  disk.inc_dispersion = 0.002; // thin: collisions actually happen
  g6::Rng rng(13);
  g6::ParticleSet set = g6::make_planetesimal_disk(n, rng, disk);
  const double m0 = set[1].mass;
  auto radii = g6::accretion_radii(set.bodies(), m0, r_ref);
  radii[0] = 0.0;  // the star does not accrete in this toy

  std::printf("accretion run: star + %zu planetesimals, r_ref=%g (inflated for\n"
              "demonstration; real Kuiper-belt radii would need ~Myr spans)\n\n",
              n, r_ref);
  std::printf("%8s %10s %12s %14s %12s\n", "t", "bodies", "merges", "max_mass/m0",
              "E_total");

  const double eps = 0.3 * r_ref;
  std::size_t total_merges = 0;
  double t_now = 0.0;
  for (int round = 1; round <= rounds; ++round) {
    g6::DirectForceEngine engine(eps);
    g6::HermiteConfig cfg;
    cfg.eta = 0.03;
    cfg.dt_max = 0.125;
    g6::HermiteIntegrator integ(set, engine, cfg);
    integ.evolve(dt_round);
    t_now += dt_round;
    set = integ.state_at_current_time();

    radii = g6::accretion_radii(set.bodies(), m0, r_ref);
    radii[0] = 0.0;
    const std::size_t merges = g6::apply_collisions(set, radii, m0, r_ref);
    radii[0] = 0.0;
    total_merges += merges;

    double max_mass = 0.0;
    for (std::size_t i = 1; i < set.size(); ++i) {
      max_mass = std::max(max_mass, set[i].mass);
    }
    const double energy = g6::compute_energy(set.bodies(), eps).total();
    std::printf("%8.2f %10zu %12zu %14.2f %12.6f\n", t_now, set.size() - 1,
                merges, max_mass / m0, energy);
  }

  std::printf("\n%zu mergers in total; runaway growth concentrates mass in the\n"
              "largest bodies — the process the paper's 16-hour GRAPE-6 run\n"
              "followed with 1.8M planetesimals.\n", total_merges);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
