// Quickstart: integrate a small Plummer model on the emulated GRAPE-6 and
// check energy conservation against the double-precision reference.
//
//   ./examples/quickstart [--n=256] [--t-end=0.25] [--eps=0.015625]
//
// This exercises the whole stack end to end: initial conditions ->
// Hermite block scheduler -> hardware number formats -> pipelines ->
// block floating-point reduction -> virtual timing.

#include <cstdio>

#include "core/grape6.hpp"

int main(int argc, char** argv) try {
  g6::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 256, "particle count"));
  const double t_end = cli.get_double("t-end", 0.25, "integration span (Heggie units)");
  const double eps = cli.get_double("eps", 1.0 / 64.0, "Plummer softening");
  const auto seed = static_cast<unsigned>(cli.get_int("seed", 42, "RNG seed"));
  if (cli.finish()) return 0;

  std::printf("grape6sim quickstart: N=%zu, t_end=%g, eps=%g\n", n, t_end, eps);

  g6::Rng rng(seed);
  const g6::ParticleSet initial = g6::make_plummer(n, rng);
  const double e0 = g6::compute_energy(initial.bodies(), eps).total();
  std::printf("initial energy: %.10f (Heggie units: expect ~ -0.25)\n", e0);

  // One GRAPE-6 host: 4 processor boards, 128 chips, 3.94 Tflops peak.
  g6::MachineConfig machine = g6::MachineConfig::single_host();
  machine.boards_per_host = 1;  // one board keeps the emulation snappy
  g6::GrapeForceEngine grape(machine, g6::NumberFormats{}, eps);

  g6::HermiteConfig hermite;
  hermite.eta = 0.02;
  g6::HermiteIntegrator integ(initial, grape, hermite);
  integ.evolve(t_end);

  const g6::ParticleSet final_state = integ.state_at_current_time();
  const double e1 = g6::compute_energy(final_state.bodies(), eps).total();

  std::printf("\nintegration finished at t=%g\n", integ.time());
  std::printf("  individual steps : %llu\n", integ.total_steps());
  std::printf("  blocksteps       : %llu\n", integ.total_blocksteps());
  std::printf("  relative dE/E    : %.3e (hardware 24-bit pipelines)\n",
              (e1 - e0) / e0);

  const g6::GrapeHostStats& st = grape.stats();
  std::printf("\nemulated hardware counters:\n");
  std::printf("  pipeline time    : %.3f ms (virtual)\n", st.grape_seconds * 1e3);
  std::printf("  DMA time         : %.3f ms (virtual)\n", st.dma_seconds * 1e3);
  std::printf("  force passes     : %llu\n",
              static_cast<unsigned long long>(st.passes));
  std::printf("  exponent retries : %llu (block floating point, Sec 3.4)\n",
              static_cast<unsigned long long>(st.retries));
  std::printf("  interactions     : %llu\n",
              static_cast<unsigned long long>(st.interactions));
  const double sustained =
      static_cast<double>(st.interactions) * g6::units::kFlopsPerInteraction /
      st.total_seconds();
  std::printf("  sustained speed  : %.2f Gflops (peak for this config: %.2f)\n",
              sustained / 1e9,
              machine.chip_peak_flops() * static_cast<double>(machine.chips_per_host()) / 1e9);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
