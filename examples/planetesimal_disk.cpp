// Planetesimal disk around a star — a scaled-down version of the paper's
// first application (Sec 5): the early Kuiper-belt region, 1.8M
// planetesimals in the real run [12].
//
//   ./examples/planetesimal_disk [--n=400] [--orbits=3]
//
// Integrates the disk with the individual-timestep Hermite scheme (the
// workload that motivates per-particle timesteps: orbital periods vary
// with a^(3/2)) and reports the velocity-dispersion growth caused by
// mutual planetesimal scattering.

#include <cmath>
#include <cstdio>

#include "core/grape6.hpp"

int main(int argc, char** argv) try {
  g6::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 400, "planetesimals"));
  const double orbits = cli.get_double("orbits", 3.0, "inner-edge orbits to integrate");
  const double disk_mass = cli.get_double("disk-mass", 3e-4, "total disk mass");
  if (cli.finish()) return 0;

  g6::DiskParams disk;
  disk.disk_mass = disk_mass;
  g6::Rng rng(11);
  const g6::ParticleSet initial = g6::make_planetesimal_disk(n, rng, disk);
  std::printf("planetesimal disk: star + %zu bodies, a in [%g, %g], M_disk=%g\n",
              n, disk.r_inner, disk.r_outer, disk.disk_mass);

  const double t_orbit = g6::orbital_period(disk.r_inner, 1.0);
  const double t_end = orbits * t_orbit;

  // Softening ~ mutual Hill radius keeps close encounters integrable.
  const double eps =
      0.5 * disk.r_inner *
      std::cbrt(disk.disk_mass / static_cast<double>(n) / 3.0);
  g6::DirectForceEngine engine(eps);
  g6::HermiteConfig cfg;
  cfg.eta = 0.02;
  cfg.dt_max = 0.125;
  g6::HermiteIntegrator integ(initial, engine, cfg);

  const auto rms_ecc = [&](const g6::ParticleSet& s) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      const g6::RelativeState rel{s[i].pos - s[0].pos, s[i].vel - s[0].vel};
      if (g6::orbital_energy(rel, 1.0) >= 0.0) continue;
      const g6::OrbitalElements el = g6::state_to_elements(rel, 1.0);
      sum += el.eccentricity * el.eccentricity;
      ++count;
    }
    return count > 0 ? std::sqrt(sum / static_cast<double>(count)) : 0.0;
  };

  std::printf("\n%10s %14s %14s %14s\n", "t/T_orb", "rms(e)", "steps",
              "mean block");
  for (int k = 1; k <= 6; ++k) {
    integ.evolve(t_end * k / 6.0);
    const g6::ParticleSet s = integ.state_at_current_time();
    const double mean_block =
        integ.total_blocksteps() > 0
            ? static_cast<double>(integ.total_steps()) /
                  static_cast<double>(integ.total_blocksteps())
            : 0.0;
    std::printf("%10.2f %14.6f %14llu %14.1f\n", integ.time() / t_orbit,
                rms_ecc(s), integ.total_steps(), mean_block);
  }

  std::printf("\nviscous stirring raises rms(e) over time — the physics of the\n"
              "paper's 16-hour Kuiper-belt run (29.5-33.4 Tflops on GRAPE-6).\n"
              "Regenerate its performance row with bench/app_kuiper_belt.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
