// Star-cluster integration with the Ahmad-Cohen neighbor scheme on a
// King model — the production setup of NBODY-class codes on GRAPE
// hardware. Compares the pairwise work against plain individual-timestep
// Hermite for the same accuracy target.
//
//   ./examples/neighbor_scheme [--n=512] [--w0=6] [--t-end=1.0]

#include <cmath>
#include <cstdio>

#include "core/grape6.hpp"

int main(int argc, char** argv) try {
  g6::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 512, "particle count"));
  const double w0 = cli.get_double("w0", 6.0, "King central potential depth");
  const double t_end = cli.get_double("t-end", 1.0, "integration span");
  if (cli.finish()) return 0;

  g6::Rng rng(99);
  const g6::ParticleSet initial = g6::make_king(n, w0, rng);
  const g6::KingProfile profile(w0);
  std::printf("King model: W0=%g, concentration c=%.2f, N=%zu\n", w0,
              profile.concentration(), n);

  const double eps = 1.0 / 64.0;
  const double e0 = g6::compute_energy(initial.bodies(), eps).total();

  // Plain Hermite.
  g6::DirectForceEngine plain_engine(eps);
  g6::HermiteIntegrator plain(initial, plain_engine);
  plain.evolve(t_end);
  const double e_plain =
      g6::compute_energy(plain.state_at_current_time().bodies(), eps).total();

  // Ahmad-Cohen scheme (neighbor lists from the engine's hardware path).
  g6::DirectForceEngine ac_engine(eps);
  g6::AhmadCohenConfig acfg;
  acfg.neighbor_target = 16;
  g6::AhmadCohenIntegrator ac(initial, ac_engine, acfg);
  ac.evolve(t_end);
  const double e_ac =
      g6::compute_energy(ac.state_at_current_time().bodies(), eps).total();

  const auto plain_pairs = plain_engine.interactions();
  const auto ac_pairs = ac.irregular_interactions() + ac.regular_interactions();

  std::printf("\n%-24s %16s %16s\n", "", "plain Hermite", "Ahmad-Cohen");
  std::printf("%-24s %16llu %16llu\n", "individual steps",
              plain.total_steps(), ac.irregular_steps());
  std::printf("%-24s %16s %16llu\n", "full-N refreshes", "-", ac.regular_steps());
  std::printf("%-24s %16llu %16llu\n", "pairwise interactions", plain_pairs,
              ac_pairs);
  std::printf("%-24s %16s %16.2f\n", "mean neighbor count", "-",
              ac.mean_neighbor_count());
  std::printf("%-24s %16.2e %16.2e\n", "|dE/E|",
              std::fabs((e_plain - e0) / e0), std::fabs((e_ac - e0) / e0));
  std::printf("%-24s %16s %16.2f\n", "work ratio", "1.00",
              static_cast<double>(ac_pairs) / static_cast<double>(plain_pairs));

  std::printf("\nThe regular (full-N) force refreshes — the part the GRAPE\n"
              "hardware computes — happen only every few irregular steps;\n"
              "the neighbor sums in between touch ~%zu particles instead of %zu.\n",
              acfg.neighbor_target, n);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
