#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh bench run against the committed
BENCH_* snapshot and fail on regressions.

The committed baselines (BENCH_peak.json from snapshot_peak_bench.py,
BENCH_serve.json from snapshot_serve_bench.py) record two kinds of
numbers, compared differently:

  deterministic   Integer bookkeeping the bench configuration pins
                  exactly — jobs/completed/preempt/revoke per serve mix,
                  Eq 10 steps and blocksteps. Any drift, in either
                  direction, is a behaviour change and fails.

  wall-clock      Times and throughputs. These vary machine to machine,
                  so only a one-sided regression beyond --tol fails:
                  time-like metrics (real_time_ns, p95_wait_s, eq10
                  seconds) may grow by at most a factor (1 + tol),
                  rate-like metrics (items_per_second, jobs_per_hour)
                  may shrink by at most the same factor. Improvements
                  are reported as a nudge to re-snapshot, never failed.

The schema field of the baseline picks the bench: pass --bench with the
matching binary to run fresh numbers, or --fresh with an
already-distilled snapshot JSON (g6report --diff offers the symmetric
two-sided view of full metric exports).

Exit status: 0 within tolerance, 1 regression(s), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import snapshot_peak_bench  # noqa: E402
import snapshot_serve_bench  # noqa: E402


def _num(x):
    """Snapshot values arrive as JSON numbers or CSV strings."""
    if isinstance(x, (int, float)):
        return x
    return float(x)


class Comparison:
    def __init__(self, tol: float):
        self.tol = tol
        self.regressions: list[str] = []
        self.improvements: list[str] = []

    def exact(self, name: str, base, fresh) -> None:
        """Deterministic count: any change fails."""
        b, f = int(_num(base)), int(_num(fresh))
        if b != f:
            self.regressions.append(
                f"{name}: deterministic count changed {b} -> {f}")

    def time(self, name: str, base, fresh) -> None:
        """Lower is better; fail only above base * (1 + tol)."""
        b, f = _num(base), _num(fresh)
        if b > 0 and f > b * (1.0 + self.tol):
            self.regressions.append(
                f"{name}: {f:.6g} exceeds baseline {b:.6g} "
                f"by {100.0 * (f / b - 1.0):.1f}% (tol {100.0 * self.tol:.0f}%)")
        elif b > 0 and f < b / (1.0 + self.tol):
            self.improvements.append(
                f"{name}: {f:.6g} vs baseline {b:.6g}")

    def rate(self, name: str, base, fresh) -> None:
        """Higher is better; fail only below base / (1 + tol)."""
        b, f = _num(base), _num(fresh)
        if b > 0 and f < b / (1.0 + self.tol):
            self.regressions.append(
                f"{name}: {f:.6g} below baseline {b:.6g} "
                f"by {100.0 * (1.0 - f / b):.1f}% (tol {100.0 * self.tol:.0f}%)")
        elif b > 0 and f > b * (1.0 + self.tol):
            self.improvements.append(
                f"{name}: {f:.6g} vs baseline {b:.6g}")

    def missing(self, name: str) -> None:
        self.regressions.append(f"{name}: present in baseline, missing in "
                                "fresh run")


def compare_peak(base: dict, fresh: dict, cmp: Comparison) -> None:
    fresh_benchmarks = fresh.get("benchmarks", {})
    for name, b in sorted(base.get("benchmarks", {}).items()):
        f = fresh_benchmarks.get(name)
        if f is None:
            cmp.missing(name)
            continue
        cmp.time(f"{name}.real_time_ns", b["real_time_ns"], f["real_time_ns"])
        cmp.time(f"{name}.cpu_time_ns", b["cpu_time_ns"], f["cpu_time_ns"])
        if "items_per_second" in b and "items_per_second" in f:
            cmp.rate(f"{name}.items_per_second",
                     b["items_per_second"], f["items_per_second"])
    # Derived fast-path headline numbers (snapshot_peak_bench.derive_
    # speedups): rate-like, a drop beyond tolerance means the batched
    # pipeline lost its uplift.
    fresh_speedups = fresh.get("speedups", {})
    for name, b in sorted(base.get("speedups", {}).items()):
        f = fresh_speedups.get(name)
        if f is None:
            cmp.missing(f"speedups.{name}")
            continue
        cmp.rate(f"speedups.{name}", b, f)


# Per-mix CSV columns, split by comparison kind. Anything not listed
# (e.g. a column added by a newer bench) is ignored rather than guessed.
SERVE_EXACT = ("jobs", "completed", "preempt", "revoke")
SERVE_TIME = ("p50_wait_s", "p95_wait_s", "p99_wait_s")
SERVE_RATE = ("jobs_per_hour",)
# Recovery rows (bench/serve_recovery): keyed by (config, ckpt_every,
# jobs); "-" marks a column that does not apply to the row.
SERVE_RECOVERY_EXACT = ("completed", "checkpoints", "journal_records")
# recover_ms is single-digit milliseconds — pure noise at gate
# tolerances, recorded for trend-spotting only.
SERVE_RECOVERY_TIME = ("makespan_s",)
# Remote rows (bench/serve_load): keyed by connection count. "events" is
# deliberately ungated — progress frames coalesce with poll timing.
SERVE_REMOTE_EXACT = ("jobs", "completed", "requests")
SERVE_REMOTE_TIME = ("p50_wait_s", "p95_wait_s", "p99_wait_s")
SERVE_REMOTE_RATE = ("jobs_per_hour",)
EQ10_EXACT = ("steps", "blocksteps")
EQ10_TIME = ("host_s", "dma_s", "net_s", "grape_s", "total_s")


def compare_serve(base: dict, fresh: dict, cmp: Comparison) -> None:
    fresh_mixes = {m["mix"]: m for m in fresh.get("mixes", [])}
    for b in base.get("mixes", []):
        name = b["mix"]
        f = fresh_mixes.get(name)
        if f is None:
            cmp.missing(f"mix {name}")
            continue
        for col in SERVE_EXACT:
            if col in b and col in f:
                cmp.exact(f"{name}.{col}", b[col], f[col])
        for col in SERVE_TIME:
            if col in b and col in f:
                cmp.time(f"{name}.{col}", b[col], f[col])
        for col in SERVE_RATE:
            if col in b and col in f:
                cmp.rate(f"{name}.{col}", b[col], f[col])
    fresh_recovery = {(r["config"], r["ckpt_every"], r["jobs"]): r
                      for r in fresh.get("recovery", [])}
    for b in base.get("recovery", []):
        key = (b["config"], b["ckpt_every"], b["jobs"])
        name = f"recovery[{b['config']}/every={b['ckpt_every']}" \
               f"/jobs={b['jobs']}]"
        f = fresh_recovery.get(key)
        if f is None:
            cmp.missing(name)
            continue
        for col in SERVE_RECOVERY_EXACT:
            if b.get(col, "-") != "-" and f.get(col, "-") != "-":
                cmp.exact(f"{name}.{col}", b[col], f[col])
        for col in SERVE_RECOVERY_TIME:
            if b.get(col, "-") != "-" and f.get(col, "-") != "-":
                cmp.time(f"{name}.{col}", b[col], f[col])
    fresh_remote = {r["connections"]: r for r in fresh.get("remote", [])}
    for b in base.get("remote", []):
        name = f"remote[connections={b['connections']}]"
        f = fresh_remote.get(b["connections"])
        if f is None:
            cmp.missing(name)
            continue
        for col in SERVE_REMOTE_EXACT:
            if col in b and col in f:
                cmp.exact(f"{name}.{col}", b[col], f[col])
        for col in SERVE_REMOTE_TIME:
            if col in b and col in f:
                cmp.time(f"{name}.{col}", b[col], f[col])
        for col in SERVE_REMOTE_RATE:
            if col in b and col in f:
                cmp.rate(f"{name}.{col}", b[col], f[col])
    b_eq, f_eq = base.get("eq10"), fresh.get("eq10")
    if b_eq and f_eq:
        for field in EQ10_EXACT:
            if field in b_eq and field in f_eq:
                cmp.exact(f"eq10.{field}", b_eq[field], f_eq[field])
        for field in EQ10_TIME:
            if field in b_eq and field in f_eq:
                cmp.time(f"eq10.{field}", b_eq[field], f_eq[field])


SCHEMAS = {
    snapshot_peak_bench.SCHEMA: (
        compare_peak,
        lambda bench, args: snapshot_peak_bench.run_and_distill(
            bench, args.min_time)),
    snapshot_serve_bench.SCHEMA: (
        compare_serve,
        lambda bench, args: snapshot_serve_bench.run_and_distill(
            bench, args.jobs)),
}


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True,
                    help="committed snapshot (BENCH_peak.json / "
                         "BENCH_serve.json)")
    ap.add_argument("--bench", default=None,
                    help="bench binary to run fresh numbers from")
    ap.add_argument("--fresh", default=None,
                    help="pre-distilled snapshot JSON to compare instead "
                         "of running --bench")
    ap.add_argument("--tol", type=float, default=0.5,
                    help="one-sided wall-clock tolerance as a fraction "
                         "(default 0.5 = 50%%)")
    ap.add_argument("--min-time", type=float, default=0.05,
                    help="peak bench: per-benchmark min measurement time, "
                         "seconds")
    ap.add_argument("--jobs", type=int, default=None,
                    help="serve bench: jobs per mix (default: the "
                         "baseline's jobs_per_mix)")
    args = ap.parse_args()

    if (args.bench is None) == (args.fresh is None):
        print("bench_regress: pass exactly one of --bench / --fresh",
              file=sys.stderr)
        return 2
    if args.tol < 0:
        print("bench_regress: --tol must be >= 0", file=sys.stderr)
        return 2

    with open(args.baseline) as f:
        base = json.load(f)
    schema = base.get("schema")
    if schema not in SCHEMAS:
        print(f"bench_regress: unknown baseline schema {schema!r} in "
              f"{args.baseline}", file=sys.stderr)
        return 2
    compare, run = SCHEMAS[schema]

    if args.fresh is not None:
        with open(args.fresh) as f:
            fresh = json.load(f)
        if fresh.get("schema") != schema:
            print(f"bench_regress: schema mismatch: baseline {schema!r} vs "
                  f"fresh {fresh.get('schema')!r}", file=sys.stderr)
            return 2
    else:
        if args.jobs is None:
            args.jobs = int(base.get("jobs_per_mix", 12))
        fresh = run(args.bench, args)

    cmp = Comparison(args.tol)
    compare(base, fresh, cmp)

    for line in cmp.improvements:
        print(f"bench_regress: improved: {line} — consider re-running the "
              "snapshot script")
    for line in cmp.regressions:
        print(f"bench_regress: REGRESSION: {line}")
    if cmp.regressions:
        print(f"bench_regress: {len(cmp.regressions)} regression(s) vs "
              f"{args.baseline}", file=sys.stderr)
        return 1
    print(f"bench_regress: OK vs {args.baseline} "
          f"(tol {100.0 * args.tol:.0f}%, "
          f"{len(cmp.improvements)} improvement(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
