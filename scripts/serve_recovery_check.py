#!/usr/bin/env python3
"""Crash-recovery checks for the durable serving layer (docs/RELIABILITY.md,
"Serving durability").

Three modes, each an end-to-end exercise of tools/grape6_serve's
write-ahead journal, quantum checkpoints and --recover replay:

identity   Run a mixed manifest (including a scheduled board death) to
           completion once for reference, then run it again durably and
           kill -9 the process mid-flight; --recover must finish the run
           with every final snapshot BYTE-IDENTICAL to the uninterrupted
           reference. This is the serving layer's durability contract:
           a crash is invisible to the physics.

chaos      A 12-job manifest — poison job, deadline-doomed job, board
           deaths from a fault plan — killed at seeded-random journal
           lengths, recovered, killed again (up to --kills times), then
           recovered to completion. Asserts exactly-once terminal
           states (every job exactly one terminal state, service
           counters consistent, no double-counting across recoveries)
           and byte-identical snapshots for the jobs that completed.

sigterm    SIGTERM mid-flight: the service must drain gracefully (clean
           exit, `drained` journal record, checkpoints on disk), and
           --recover must then finish bit-identically.

Exits non-zero with a diagnostic on any violation.
"""

import argparse
import filecmp
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time

MACHINE = {
    "boards_per_host": 4,
    "hosts_per_cluster": 1,
    "clusters": 1,
    "quantum_blocksteps": 2,
    "max_queue_depth": 16,
}

# Mixed manifest for identity/sigterm: several models, one 2-board job,
# enough rounds that a mid-flight kill always lands before completion.
IDENTITY_JOBS = [
    {"name": "i-a", "model": "plummer", "n": 48, "t_end": 0.0625,
     "seed": 31, "boards": 1, "priority": "interactive"},
    {"name": "i-b", "model": "uniform", "n": 32, "t_end": 0.0625,
     "seed": 32, "boards": 1, "priority": "batch"},
    {"name": "i-c", "model": "king", "w0": 5.0, "n": 48, "t_end": 0.0625,
     "seed": 33, "boards": 2, "priority": "batch"},
    {"name": "i-d", "model": "hernquist", "n": 48, "t_end": 0.0625,
     "seed": 34, "boards": 1, "priority": "batch"},
    {"name": "i-e", "model": "plummer", "n": 64, "t_end": 0.0625,
     "seed": 35, "boards": 1, "priority": "batch"},
    {"name": "i-f", "model": "disk", "n": 48, "t_end": 0.0625,
     "seed": 36, "boards": 1, "priority": "batch"},
]

# Board 1 dies at round 1, while the round-0 dispatch still leases it, so
# recovery must also replay a revocation/re-queue without re-firing the
# death (the journal's board-death record marks it fired).
IDENTITY_DEATHS = [{"round": 1, "board": 1}]

# Chaos manifest: 12 jobs. "poison" faults every quantum until it is
# quarantined; "doomed" carries an impossible deadline; the rest must
# complete despite kills and the fault plan's two board deaths.
CHAOS_JOBS = (
    [{"name": f"c-{i:02d}", "model": ["plummer", "uniform", "hernquist"][i % 3],
      "n": 32 + 16 * (i % 3), "t_end": 0.0625, "seed": 100 + i,
      "boards": 2 if i == 4 else 1, "priority": "batch"}
     for i in range(10)]
    + [{"name": "poison", "model": "plummer", "n": 32, "t_end": 0.0625,
        "seed": 666, "boards": 1, "chaos_fail_quanta": 100},
       {"name": "doomed", "model": "plummer", "n": 48, "t_end": 0.0625,
        "seed": 667, "boards": 1, "deadline_rounds": 2}]
)

# Board-level hard failures only; entry times are scheduler rounds.
CHAOS_FAULT_PLAN = {
    "seed": 7,
    "hard_failures": [
        {"time": 2.0, "board": 1},
        {"time": 5.0, "board": 3},
    ],
}

TERMINAL = {"completed", "failed", "rejected", "quarantined"}


def write_json(path, obj):
    with open(path, "w") as f:
        json.dump(obj, f, indent=2)


def write_manifest(path, jobs, deaths=None):
    service = dict(MACHINE)
    if deaths:
        service["board_deaths"] = deaths
    write_json(path, {"schema": "grape6-serve-manifest-v1",
                      "service": service, "jobs": jobs})


def run(cmd, ok=(0,)):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in ok:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
    return proc.stdout


def journal_lines(path):
    try:
        with open(path, "rb") as f:
            return f.read().count(b"\n")
    except FileNotFoundError:
        return 0


def run_until_lines_then_kill(cmd, journal, target_lines, sig,
                              timeout_s=180.0):
    """Start cmd; once the journal holds >= target_lines complete records,
    send `sig`. Returns (signalled, returncode). If the process finishes
    before the journal gets there, no signal is sent."""
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + timeout_s
    signalled = False
    while proc.poll() is None:
        if time.monotonic() > deadline:
            proc.kill()
            proc.wait()
            raise SystemExit(f"FAIL: {' '.join(cmd)} hung past {timeout_s}s")
        if journal_lines(journal) >= target_lines:
            proc.send_signal(sig)
            signalled = True
            break
        time.sleep(0.02)
    rc = proc.wait()
    proc.stdout.read()
    return signalled, rc


def compare_snapshots(names, got_prefix, ref_prefix):
    mismatches = []
    for name in names:
        got = f"{got_prefix}_{name}.snap"
        ref = f"{ref_prefix}_{name}.snap"
        for p in (got, ref):
            if not os.path.exists(p):
                raise SystemExit(f"FAIL: missing snapshot {p}")
        if not filecmp.cmp(got, ref, shallow=False):
            mismatches.append(name)
    if mismatches:
        raise SystemExit("FAIL: snapshots differ after recovery for: "
                         + ", ".join(mismatches))


def load_report(path):
    with open(path) as f:
        return json.load(f)


def check_exactly_once(report, jobs):
    """Every submitted job has exactly one terminal state, and the
    service counters agree with the per-job tally — the journal replay
    must not double-count work finished before a crash."""
    states = {}
    for j in report["jobs"]:
        if j["name"] in states:
            raise SystemExit(f"FAIL: job '{j['name']}' reported twice")
        states[j["name"]] = j["state"]
    expected = {j["name"] for j in jobs}
    if set(states) != expected:
        raise SystemExit(f"FAIL: job set mismatch: {sorted(states)} != "
                         f"{sorted(expected)}")
    non_terminal = {n: s for n, s in states.items() if s not in TERMINAL}
    if non_terminal:
        raise SystemExit(f"FAIL: non-terminal states after recovery: "
                         f"{non_terminal}")
    svc = report["service"]
    for state, counter in (("completed", "completed"), ("failed", "failed"),
                           ("quarantined", "quarantined"),
                           ("rejected", "rejected")):
        tally = sum(1 for s in states.values() if s == state)
        if svc[counter] != tally:
            raise SystemExit(
                f"FAIL: service.{counter}={svc[counter]} but {tally} "
                f"job(s) are {state} — terminal states not exactly-once")
    return states


def mode_identity(serve):
    write_manifest("identity.json", IDENTITY_JOBS, IDENTITY_DEATHS)

    # Uninterrupted reference (durable too: same code path, no kill).
    run([serve, "--manifest=identity.json", "--out=ref",
         "--journal=ref.wal", "--checkpoint-every=1",
         "--report-out=ref_report.json"])
    ref = load_report("ref_report.json")
    if ref["service"]["completed"] != len(IDENTITY_JOBS):
        raise SystemExit("FAIL: reference run did not complete all jobs")
    if ref["service"]["boards_dead"] != 1 or ref["service"]["revocations"] < 1:
        raise SystemExit("FAIL: scheduled board death did not revoke a "
                         "lease in the reference run")

    # Durable run, kill -9 once some quanta are journaled (open + 6
    # submitted + 6 admitted = 13 records; 24 means real mid-flight work,
    # well before these jobs can drain).
    killed, rc = run_until_lines_then_kill(
        [serve, "--manifest=identity.json", "--out=crash",
         "--journal=crash.wal", "--checkpoint-every=1"],
        "crash.wal", target_lines=24, sig=signal.SIGKILL)
    if not killed:
        raise SystemExit("FAIL: run finished before the kill landed — "
                         "enlarge the manifest")
    if rc != -signal.SIGKILL:
        raise SystemExit(f"FAIL: expected SIGKILL death, got rc={rc}")

    run([serve, "--recover=crash.wal", "--out=crash",
         "--report-out=crash_report.json"])
    report = load_report("crash_report.json")
    check_exactly_once(report, IDENTITY_JOBS)
    if report["service"]["completed"] != len(IDENTITY_JOBS):
        raise SystemExit("FAIL: recovery did not complete all jobs")
    if report["service"]["boards_dead"] != 1:
        raise SystemExit("FAIL: fired board death lost across recovery")
    compare_snapshots([j["name"] for j in IDENTITY_JOBS], "crash", "ref")
    print(f"OK identity: kill -9 at >=24 journal records, recovery "
          f"bit-identical for {len(IDENTITY_JOBS)} jobs "
          f"(board death survived replay)")


def mode_chaos(serve, seed, kills):
    write_manifest("chaos.json", CHAOS_JOBS)
    write_json("chaos_plan.json", CHAOS_FAULT_PLAN)

    # Reference: uninterrupted run of the same chaos (exit 3: the poison
    # and deadline jobs are SUPPOSED to end badly).
    run([serve, "--manifest=chaos.json", "--fault-plan=chaos_plan.json",
         "--out=ref", "--journal=ref.wal", "--checkpoint-every=1",
         "--report-out=ref_report.json"], ok=(3,))
    ref_states = check_exactly_once(load_report("ref_report.json"),
                                    CHAOS_JOBS)
    if ref_states["poison"] != "quarantined":
        raise SystemExit("FAIL: poison job not quarantined in reference")
    if ref_states["doomed"] != "failed":
        raise SystemExit("FAIL: deadline job did not fail in reference")

    rng = random.Random(seed)
    cmd = [serve, "--manifest=chaos.json", "--fault-plan=chaos_plan.json",
           "--out=got", "--journal=got.wal", "--checkpoint-every=1"]
    landed = 0
    for _ in range(kills):
        # 27 records = open + 12 submitted + (up to) 12 admitted + slack:
        # always kill after real scheduling work has been journaled.
        target = journal_lines("got.wal") + rng.randrange(5, 40) + (
            27 if landed == 0 else 0)
        killed, rc = run_until_lines_then_kill(
            cmd, "got.wal", target_lines=target, sig=signal.SIGKILL)
        if not killed:
            break  # ran to completion before the kill; recovery below is a no-op replay
        landed += 1
        cmd = [serve, "--recover=got.wal", "--out=got"]
    run(cmd + ["--report-out=got_report.json"], ok=(0, 3))

    report = load_report("got_report.json")
    states = check_exactly_once(report, CHAOS_JOBS)
    if states != ref_states:
        diff = {n: (ref_states[n], states[n]) for n in states
                if states[n] != ref_states[n]}
        raise SystemExit(f"FAIL: terminal states diverge from the "
                         f"uninterrupted reference: {diff}")
    completed = [n for n, s in states.items() if s == "completed"]
    compare_snapshots(completed, "got", "ref")
    for j in report["jobs"]:
        if j["name"] == "poison" and j["reject_reason"] != "quarantined":
            raise SystemExit("FAIL: poison job lost its quarantine reason")
        if j["name"] == "doomed" and j["reject_reason"] != "deadline-exceeded":
            raise SystemExit("FAIL: deadline job lost its failure reason")
    print(f"OK chaos: {landed} kill(s) (seed {seed}), exactly-once "
          f"terminal states for {len(CHAOS_JOBS)} jobs, {len(completed)} "
          f"snapshots bit-identical, poison quarantined, deadline enforced")


def mode_sigterm(serve):
    write_manifest("identity.json", IDENTITY_JOBS, IDENTITY_DEATHS)
    run([serve, "--manifest=identity.json", "--out=ref",
         "--journal=ref.wal", "--checkpoint-every=1",
         "--report-out=ref_report.json"])

    _, rc = run_until_lines_then_kill(
        [serve, "--manifest=identity.json", "--out=got",
         "--journal=got.wal", "--checkpoint-every=1"],
        "got.wal", target_lines=24, sig=signal.SIGTERM)
    if rc != 0:
        raise SystemExit(f"FAIL: SIGTERM drain exited {rc}, wanted 0")
    with open("got.wal") as f:
        last = json.loads(f.readlines()[-1])
    if last["type"] != "drained":
        raise SystemExit(f"FAIL: journal does not end in a drained record "
                         f"(got '{last['type']}')")

    run([serve, "--recover=got.wal", "--out=got",
         "--report-out=got_report.json"])
    report = load_report("got_report.json")
    check_exactly_once(report, IDENTITY_JOBS)
    if report["service"]["completed"] != len(IDENTITY_JOBS):
        raise SystemExit("FAIL: resume after drain did not complete all jobs")
    compare_snapshots([j["name"] for j in IDENTITY_JOBS], "got", "ref")
    print(f"OK sigterm: graceful drain at >=24 journal records, resume "
          f"bit-identical for {len(IDENTITY_JOBS)} jobs")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", required=True, help="path to grape6_serve")
    ap.add_argument("--workdir", required=True)
    ap.add_argument("--mode", required=True,
                    choices=["identity", "chaos", "sigterm"])
    ap.add_argument("--seed", type=int, default=20260809,
                    help="chaos kill-schedule seed")
    ap.add_argument("--kills", type=int, default=3,
                    help="max kill -9 rounds in chaos mode")
    args = ap.parse_args()

    # Start from an empty workdir: a journal left over from a previous run
    # would satisfy the kill trigger before the fresh process even starts.
    shutil.rmtree(args.workdir, ignore_errors=True)
    os.makedirs(args.workdir)
    os.chdir(args.workdir)

    if args.mode == "identity":
        mode_identity(args.serve)
    elif args.mode == "chaos":
        mode_chaos(args.serve, args.seed, args.kills)
    else:
        mode_sigterm(args.serve)


if __name__ == "__main__":
    main()
