#!/usr/bin/env python3
"""Byte-determinism regression check for the metric exports.

The observability exports are part of the reproducibility surface:
dashboards, g6report and the paper-figure scripts diff and re-plot them,
so two runs of the same problem must serialize *identically* — same key
order (std::map, never hash order), same formatting, no addresses, no
wall-clock leakage in anything structural. This script locks that in:

  1. grape6_run twice with identical arguments --metrics-out'd to two
     files: the JSON structure (keys, counters, histogram counts) must
     match exactly. Timing gauges and Eq 10 seconds are wall-clock
     measurements and legitimately differ; everything else may not.
  2. g6report twice over the SAME metrics file: stdout must be
     byte-identical (cmp semantics) — a report that renders differently
     on a second read is iterating something unordered.

Exits non-zero with a diff summary on any mismatch.
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

# Counters whose value is a property of the OS thread schedule, not of
# the computation: which idle worker steals a task depends on wake-up
# timing. Their *presence* must still be stable (key order is part of
# the export contract); only the count may vary. Everything else —
# interactions, pipeline passes, fault counters — must be exact, and a
# physics counter drifting between identical runs is the bug this test
# exists to catch, so keep this list minimal and justified.
SCHEDULE_DEPENDENT_COUNTERS = frozenset({
    "exec.steals",
})

# Structural exactness: every counter and histogram *count* must match
# between two identical runs. Gauges and histogram moments can carry
# wall-clock readings (e.g. serve.wait_s, eq10 seconds), so for them we
# require only identical key sets.
def compare_metrics(a: dict, b: dict) -> list[str]:
    errors = []
    if sorted(a.keys()) != sorted(b.keys()):
        errors.append(f"top-level keys differ: {sorted(a)} vs {sorted(b)}")
        return errors
    if list(a["counters"].keys()) != list(b["counters"].keys()):
        errors.append("counter key order differs between runs")
    diffs = [k for k in a["counters"]
             if a["counters"][k] != b["counters"].get(k)
             and k not in SCHEDULE_DEPENDENT_COUNTERS]
    if diffs:
        errors.append(f"counter values differ: {diffs}")
    for section in ("gauges", "histograms"):
        if list(a[section].keys()) != list(b[section].keys()):
            errors.append(f"{section} key order differs between runs")
    for name, h in a["histograms"].items():
        hb = b["histograms"].get(name)
        if hb is None:
            continue
        if h["count"] != hb["count"] or h["counts"] != hb["counts"]:
            errors.append(f"histogram '{name}' bin counts differ")
    return errors


def run(cmd, **kw):
    r = subprocess.run(cmd, capture_output=True, text=True, **kw)
    if r.returncode != 0:
        sys.exit(f"command failed ({r.returncode}): {' '.join(map(str, cmd))}\n"
                 f"{r.stderr}")
    return r


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--run", required=True, help="path to grape6_run")
    ap.add_argument("--report", required=True, help="path to g6report")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        metrics = []
        for i in (0, 1):
            out = tmp / f"m{i}.json"
            run([args.run, "--model=plummer", "--n=64", "--t-end=0.125",
                 "--seed=7", "--threads=2", f"--out={tmp / f'run{i}'}",
                 f"--metrics-out={out}"])
            metrics.append(json.loads(out.read_text()))

        errors = compare_metrics(metrics[0], metrics[1])

        # g6report over one file, twice: stdout must be byte-identical.
        report_in = tmp / "m0.json"
        r1 = run([args.report, f"--in={report_in}"])
        r2 = run([args.report, f"--in={report_in}"])
        if r1.stdout != r2.stdout:
            errors.append("g6report output differs between two reads of "
                          "the same file")

    if errors:
        for e in errors:
            print(f"export_determinism: FAIL: {e}", file=sys.stderr)
        return 1
    print("export_determinism: OK (counters exact, key order stable, "
          "report byte-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
