#!/usr/bin/env python3
"""Byte-determinism regression check for the metric exports.

The observability exports are part of the reproducibility surface:
dashboards, g6report and the paper-figure scripts diff and re-plot them,
so two runs of the same problem must serialize *identically* — same key
order (std::map, never hash order), same formatting, no addresses, no
wall-clock leakage in anything structural. This script locks that in:

  1. grape6_run twice with identical arguments --metrics-out'd to two
     files: the JSON structure (keys, counters, histogram counts) must
     match exactly. Timing gauges and Eq 10 seconds are wall-clock
     measurements and legitimately differ; everything else may not.
  2. g6report twice over the SAME metrics file: stdout must be
     byte-identical (cmp semantics) — a report that renders differently
     on a second read is iterating something unordered.
  3. (with --serve) grape6_serve twice on a 3-job mixed-priority
     manifest: the per-job attribution scopes and the per-round time
     series must match between runs — scope key sets and counter values
     exactly (schedule-dependent counters exempt by value, never by
     presence), time-series instrument lists, row counts, ticks and
     values exactly (only the wall-clock t_s column may differ). The
     flight recorder is deliberately NOT here: its ring interleaves
     worker-thread events, so the dump is schedule-dependent by design
     (docs/OBSERVABILITY.md documents the exemption).
  4. (with --served + --loadgen) grape6_served twice on a unix socket,
     each time driven by the same loadgen manifest over 2 connections:
     the wire.* transport instruments must export with a stable key
     order, and every counter the *client* drives (connections, request
     frames and their bytes) must match exactly. The event stream back
     out is exempt by value — how many progress frames a job streams
     depends on where the daemon's poll loop lands relative to
     simulation rounds — but its instruments must still be present, and
     the RPC histogram's observation count must equal wire.requests.

Exits non-zero with a diff summary on any mismatch.
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

# Counters whose value is a property of the OS thread schedule, not of
# the computation: which idle worker steals a task depends on wake-up
# timing. Their *presence* must still be stable (key order is part of
# the export contract); only the count may vary. Everything else —
# interactions, pipeline passes, fault counters — must be exact, and a
# physics counter drifting between identical runs is the bug this test
# exists to catch, so keep this list minimal and justified.
SCHEDULE_DEPENDENT_COUNTERS = frozenset({
    "exec.steals",
})

# The wire.* transport counters split the same way: everything the
# client SENDS is an exact function of the manifest (how many
# connections, request frames, request bytes), while the event stream
# back out is paced by where the daemon's poll loop lands relative to
# simulation rounds — a job may stream its progress as one event per
# quantum or as fewer, coalesced diffs. Presence and key order stay
# mandatory; only the values below may vary.
WIRE_TIMING_DEPENDENT_COUNTERS = frozenset({
    "wire.frames_out",
    "wire.bytes_out",
    "wire.events",
})

# Instruments a clean served run must export (wire.protocol_errors is
# deliberately absent: instruments register lazily on first touch, and
# a clean run never touches it).
WIRE_REQUIRED_COUNTERS = (
    "wire.connections", "wire.frames_in", "wire.bytes_in", "wire.requests",
    "wire.frames_out", "wire.bytes_out", "wire.events",
)
WIRE_REQUIRED_GAUGES = ("wire.conns.open", "wire.subscribers")


def compare_wire_metrics(a: dict, b: dict) -> list[str]:
    """wire.* subset of two served exports: stable key order,
    client-driven counters exact, event-stream counters exempt by value,
    RPC histogram bins exempt (they bucket wall-clock round trips) but
    its observation count tied to wire.requests."""
    errors = []
    wa = {k: v for k, v in a["counters"].items() if k.startswith("wire.")}
    wb = {k: v for k, v in b["counters"].items() if k.startswith("wire.")}
    if list(wa.keys()) != list(wb.keys()):
        errors.append(f"wire counter key order differs: {list(wa)} vs "
                      f"{list(wb)}")
        return errors
    missing = [k for k in WIRE_REQUIRED_COUNTERS if k not in wa]
    if missing:
        errors.append(f"wire counters missing from export: {missing}")
    diffs = [k for k in wa if wa[k] != wb[k]
             and k not in WIRE_TIMING_DEPENDENT_COUNTERS]
    if diffs:
        errors.append(f"wire counter values differ: {diffs}")
    if wa.get("wire.protocol_errors", 0) != 0:
        errors.append("wire.protocol_errors nonzero in a clean run")
    ga = [k for k in a["gauges"] if k.startswith("wire.")]
    gb = [k for k in b["gauges"] if k.startswith("wire.")]
    if ga != gb:
        errors.append(f"wire gauge keys differ: {ga} vs {gb}")
    errors += [f"wire gauge '{g}' missing from export"
               for g in WIRE_REQUIRED_GAUGES if g not in ga]
    ha = a["histograms"].get("wire.rpc_s")
    hb = b["histograms"].get("wire.rpc_s")
    if ha is None or hb is None:
        errors.append("wire.rpc_s histogram missing from export")
    else:
        if ha["count"] != hb["count"]:
            errors.append(f"wire.rpc_s observation counts differ: "
                          f"{ha['count']} vs {hb['count']}")
        if ha["count"] != wa.get("wire.requests"):
            errors.append("wire.rpc_s count != wire.requests (an RPC path "
                          "skipped its timing observation)")
    return errors

# Structural exactness: every counter and histogram *count* must match
# between two identical runs. Gauges and histogram moments can carry
# wall-clock readings (e.g. serve.wait_s, eq10 seconds), so for them we
# require only identical key sets.
def compare_metrics(a: dict, b: dict) -> list[str]:
    errors = []
    if sorted(a.keys()) != sorted(b.keys()):
        errors.append(f"top-level keys differ: {sorted(a)} vs {sorted(b)}")
        return errors
    if list(a["counters"].keys()) != list(b["counters"].keys()):
        errors.append("counter key order differs between runs")
    diffs = [k for k in a["counters"]
             if a["counters"][k] != b["counters"].get(k)
             and k not in SCHEDULE_DEPENDENT_COUNTERS]
    if diffs:
        errors.append(f"counter values differ: {diffs}")
    for section in ("gauges", "histograms"):
        if list(a[section].keys()) != list(b[section].keys()):
            errors.append(f"{section} key order differs between runs")
    for name, h in a["histograms"].items():
        hb = b["histograms"].get(name)
        if hb is None:
            continue
        if h["count"] != hb["count"] or h["counts"] != hb["counts"]:
            errors.append(f"histogram '{name}' bin counts differ")
    return errors


def compare_scopes(a: dict, b: dict) -> list[str]:
    """Per-job attribution scopes: everything exact except the values of
    schedule-dependent counters (which are excluded at the source and so
    should not appear at all — but the exemption stays consistent)."""
    errors = []
    if list(a.keys()) != list(b.keys()):
        errors.append(f"scope key order differs: {list(a)} vs {list(b)}")
        return errors
    for name, sa in a.items():
        sb = b[name]
        for field in ("job", "class"):
            if sa.get(field) != sb.get(field):
                errors.append(f"scope '{name}' {field} differs")
        if list(sa["counters"].keys()) != list(sb["counters"].keys()):
            errors.append(f"scope '{name}' counter key order differs")
            continue
        diffs = [k for k in sa["counters"]
                 if sa["counters"][k] != sb["counters"][k]
                 and k not in SCHEDULE_DEPENDENT_COUNTERS]
        if diffs:
            errors.append(f"scope '{name}' counter values differ: {diffs}")
    return errors


def compare_timeseries(a: dict, b: dict) -> list[str]:
    """grape6-timeseries-v1: logical ticks make everything but the
    wall-clock t_s column exactly reproducible."""
    errors = []
    if a.get("schema") != b.get("schema"):
        errors.append("timeseries schema differs")
        return errors
    if a["instruments"] != b["instruments"]:
        errors.append("timeseries instrument lists differ: "
                      f"{[i['name'] for i in a['instruments']]} vs "
                      f"{[i['name'] for i in b['instruments']]}")
        return errors
    if len(a["samples"]) != len(b["samples"]):
        errors.append(f"timeseries row counts differ: {len(a['samples'])} "
                      f"vs {len(b['samples'])}")
        return errors
    exempt = [i["name"] in SCHEDULE_DEPENDENT_COUNTERS
              for i in a["instruments"]]
    for ra, rb in zip(a["samples"], b["samples"]):
        if ra["tick"] != rb["tick"]:
            errors.append(f"timeseries tick sequence differs at {ra['tick']}")
            break
        vals = [(x, y) for x, y, skip in
                zip(ra["values"], rb["values"], exempt) if not skip]
        if any(x != y for x, y in vals):
            errors.append(f"timeseries values differ at tick {ra['tick']}")
            break
    return errors


# 3 jobs, mixed priorities, time-shared on a 2-board machine: enough to
# populate several scopes, queueing (bat-b wants the whole machine) and
# a multi-round time series, while staying a sub-second ctest.
SERVE_JOBS = [
    {"name": "int-a", "model": "plummer", "n": 32, "t_end": 0.0625,
     "seed": 11, "boards": 1, "priority": "interactive"},
    {"name": "bat-a", "model": "uniform", "n": 48, "t_end": 0.0625,
     "seed": 13, "boards": 1, "priority": "batch"},
    {"name": "bat-b", "model": "plummer", "n": 32, "t_end": 0.0625,
     "seed": 16, "boards": 2, "priority": "batch"},
]

SERVE_SERVICE = {
    "boards_per_host": 2,
    "hosts_per_cluster": 1,
    "clusters": 1,
    "quantum_blocksteps": 4,
    "max_queue_depth": 8,
}


def run(cmd, **kw):
    r = subprocess.run(cmd, capture_output=True, text=True, **kw)
    if r.returncode != 0:
        sys.exit(f"command failed ({r.returncode}): {' '.join(map(str, cmd))}\n"
                 f"{r.stderr}")
    return r


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--run", required=True, help="path to grape6_run")
    ap.add_argument("--report", required=True, help="path to g6report")
    ap.add_argument("--serve", default=None,
                    help="path to grape6_serve; adds the attribution-scope "
                         "and time-series determinism checks")
    ap.add_argument("--served", default=None,
                    help="path to grape6_served; with --loadgen, adds the "
                         "wire.* transport determinism check")
    ap.add_argument("--loadgen", default=None,
                    help="path to grape6_loadgen (required with --served)")
    args = ap.parse_args()
    if bool(args.served) != bool(args.loadgen):
        ap.error("--served and --loadgen must be given together")

    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        metrics = []
        for i in (0, 1):
            out = tmp / f"m{i}.json"
            run([args.run, "--model=plummer", "--n=64", "--t-end=0.125",
                 "--seed=7", "--threads=2", f"--out={tmp / f'run{i}'}",
                 f"--metrics-out={out}"])
            metrics.append(json.loads(out.read_text()))

        errors = compare_metrics(metrics[0], metrics[1])

        # g6report over one file, twice: stdout must be byte-identical.
        report_in = tmp / "m0.json"
        r1 = run([args.report, f"--in={report_in}"])
        r2 = run([args.report, f"--in={report_in}"])
        if r1.stdout != r2.stdout:
            errors.append("g6report output differs between two reads of "
                          "the same file")

        if args.serve:
            manifest = tmp / "manifest.json"
            manifest.write_text(json.dumps(
                {"schema": "grape6-serve-manifest-v1",
                 "service": SERVE_SERVICE, "jobs": SERVE_JOBS}, indent=2))
            serve_metrics, serve_series = [], []
            for i in (0, 1):
                m_out = tmp / f"serve_m{i}.json"
                ts_out = tmp / f"serve_ts{i}.json"
                run([args.serve, f"--manifest={manifest}",
                     f"--out={tmp / f'serve{i}'}", "--snapshots=false",
                     "--threads=2", f"--metrics-out={m_out}",
                     f"--timeseries-out={ts_out}"])
                serve_metrics.append(json.loads(m_out.read_text()))
                serve_series.append(json.loads(ts_out.read_text()))

            errors += [f"serve: {e}" for e in
                       compare_metrics(serve_metrics[0], serve_metrics[1])]
            errors += [f"serve: {e}" for e in
                       compare_scopes(serve_metrics[0].get("scopes", {}),
                                      serve_metrics[1].get("scopes", {}))]
            if not serve_metrics[0].get("scopes"):
                errors.append("serve: metrics export has no per-job scopes")
            errors += [f"serve: {e}" for e in
                       compare_timeseries(serve_series[0], serve_series[1])]
            if not serve_series[0].get("samples"):
                errors.append("serve: time series has no rows (scheduler "
                              "should sample once per round)")

            # The scopes section renders through g6report too.
            serve_in = tmp / "serve_m0.json"
            s1 = run([args.report, f"--in={serve_in}"])
            s2 = run([args.report, f"--in={serve_in}"])
            if s1.stdout != s2.stdout:
                errors.append("serve: g6report output differs between two "
                              "reads of the same file")

        if args.served:
            daemon_manifest = tmp / "wire_service.json"
            daemon_manifest.write_text(json.dumps(
                {"schema": "grape6-serve-manifest-v1",
                 "service": SERVE_SERVICE}, indent=2))
            jobs_manifest = tmp / "wire_jobs.json"
            jobs_manifest.write_text(json.dumps(
                {"schema": "grape6-serve-manifest-v1",
                 "service": SERVE_SERVICE, "jobs": SERVE_JOBS}, indent=2))
            wire_metrics = []
            for i in (0, 1):
                sock = tmp / f"wire{i}.sock"
                m_out = tmp / f"wire_m{i}.json"
                daemon = subprocess.Popen(
                    [args.served, f"--listen=unix:{sock}",
                     f"--manifest={daemon_manifest}",
                     f"--out={tmp / f'wired{i}'}", "--snapshots=false",
                     f"--metrics-out={m_out}"],
                    stdout=subprocess.PIPE, text=True)
                try:
                    banner = daemon.stdout.readline()  # blocks until bound
                    if "listening on" not in banner:
                        sys.exit(f"unexpected served banner: {banner!r}")
                    run([args.loadgen, f"--connect=unix:{sock}",
                         f"--manifest={jobs_manifest}", "--connections=2",
                         "--drain=true"])
                    out, _ = daemon.communicate(timeout=120)
                    if daemon.returncode != 0:
                        sys.exit(f"grape6_served exited {daemon.returncode}:"
                                 f"\n{out}")
                finally:
                    if daemon.poll() is None:
                        daemon.kill()
                wire_metrics.append(json.loads(m_out.read_text()))

            errors += [f"wire: {e}" for e in
                       compare_wire_metrics(wire_metrics[0], wire_metrics[1])]

            # The wire summary renders through g6report too.
            wire_in = tmp / "wire_m0.json"
            w1 = run([args.report, f"--in={wire_in}"])
            w2 = run([args.report, f"--in={wire_in}"])
            if w1.stdout != w2.stdout:
                errors.append("wire: g6report output differs between two "
                              "reads of the same file")
            if "wire summary:" not in w1.stdout:
                errors.append("wire: g6report shows no wire summary for a "
                              "served metrics file")

    if errors:
        for e in errors:
            print(f"export_determinism: FAIL: {e}", file=sys.stderr)
        return 1
    print("export_determinism: OK (counters exact, key order stable, "
          "report byte-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
