#!/usr/bin/env python3
"""Refresh BENCH_serve.json from bench/serve_throughput.

Runs the serving-throughput bench and distills its CSV mirror plus the
grape6-metrics-v1 export into a small committed snapshot at the repo
root, so serving-layer throughput regressions show up in review diffs
the same way the figure benches' numbers do.

Usage (from the repo root, after building):

    python3 scripts/snapshot_serve_bench.py --bench build/bench/serve_throughput

Wall-clock numbers vary machine to machine; the snapshot records them
for trend-spotting, not as CI-gated truth. The deterministic columns
(jobs, completed, preempt, revoke) are the ones a reviewer should
expect to stay fixed for a given bench configuration.
"""

import argparse
import csv
import json
import os
import subprocess
import sys
import tempfile


SCHEMA = "grape6-bench-serve-v1"


def run_and_distill(bench: str, jobs: int) -> dict:
    """Run the bench binary and return the snapshot dict (shared with
    scripts/bench_regress.py, which compares it against the committed
    baseline)."""
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = os.path.join(tmp, "serve_throughput.csv")
        metrics_path = os.path.join(tmp, "metrics.json")
        cmd = [bench, f"--jobs={jobs}", f"--csv={csv_path}",
               f"--metrics-out={metrics_path}"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")

        with open(csv_path) as f:
            mixes = list(csv.DictReader(f))
        with open(metrics_path) as f:
            metrics = json.load(f)

    return {
        "schema": SCHEMA,
        "bench": "serve_throughput",
        "jobs_per_mix": jobs,
        "mixes": mixes,
        "recovery": run_recovery_bench(bench),
        "remote": run_remote_bench(bench),
        "eq10": metrics.get("eq10"),
    }


def run_recovery_bench(throughput_bench: str) -> list:
    """Distill bench/serve_recovery (checkpoint-cadence overhead and
    journal-replay cost) when its binary sits next to serve_throughput.
    The deterministic columns (completed, checkpoints, journal_records)
    are what bench_regress.py gates; the wall-clock ones are trend data."""
    bench = os.path.join(os.path.dirname(throughput_bench), "serve_recovery")
    if not (os.path.isfile(bench) and os.access(bench, os.X_OK)):
        sys.stderr.write(f"note: {bench} not built; snapshot omits the "
                         "recovery section\n")
        return []
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = os.path.join(tmp, "serve_recovery.csv")
        cmd = [bench, f"--csv={csv_path}"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
        with open(csv_path) as f:
            return list(csv.DictReader(f))


def run_remote_bench(throughput_bench: str) -> list:
    """Distill bench/serve_load (jobs/hour and wait percentiles over the
    wire, swept over client connection count) when its binary sits next
    to serve_throughput. The deterministic columns (jobs, completed,
    requests) are what bench_regress.py gates; events coalesce with poll
    timing and the wall-clock columns vary by machine — trend data."""
    bench = os.path.join(os.path.dirname(throughput_bench), "serve_load")
    if not (os.path.isfile(bench) and os.access(bench, os.X_OK)):
        sys.stderr.write(f"note: {bench} not built; snapshot omits the "
                         "remote section\n")
        return []
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = os.path.join(tmp, "serve_load.csv")
        sock_prefix = os.path.join(tmp, "serve_load")
        cmd = [bench, f"--csv={csv_path}", f"--socket-prefix={sock_prefix}"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
        with open(csv_path) as f:
            return list(csv.DictReader(f))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True,
                    help="path to the serve_throughput binary")
    ap.add_argument("--out", default="BENCH_serve.json",
                    help="snapshot path (default: BENCH_serve.json)")
    ap.add_argument("--jobs", type=int, default=12, help="jobs per mix")
    args = ap.parse_args()

    snapshot = run_and_distill(args.bench, args.jobs)
    with open(args.out, "w") as f:
        json.dump(snapshot, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out} ({len(snapshot['mixes'])} mixes)")


if __name__ == "__main__":
    main()
