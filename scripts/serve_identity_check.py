#!/usr/bin/env python3
"""End-to-end identity check for the serving layer (docs/SERVING.md).

Runs tools/grape6_serve on a 10-job mixed-priority manifest — including a
scheduled board death that forces a lease revocation and re-queue — then
re-runs every job as a single-job manifest on an otherwise idle service
and byte-compares the final snapshots. The serving layer's core promise
is that multiplexing is invisible to the physics: shared vs standalone
must be bit-identical, file-level.

Exits non-zero (with a diff summary) on any mismatch, missing snapshot,
or report inconsistency.
"""

import argparse
import filecmp
import json
import os
import subprocess
import sys

# 10 jobs, mixed sizes/priorities/models, on a 4-board machine. Board 1
# dies at round 1: the round-0 dispatch leased it (first-fit from board
# 0), so the owning job must be revoked, re-queued and completed
# elsewhere. (Round 1, not later: these jobs are small enough that early
# leases can drain within a few rounds, and a death on a free board
# would exercise nothing.)
JOBS = [
    {"name": "int-a", "model": "plummer", "n": 48, "t_end": 0.0625,
     "seed": 11, "boards": 1, "priority": "interactive"},
    {"name": "int-b", "model": "uniform", "n": 32, "t_end": 0.0625,
     "seed": 12, "boards": 1, "priority": "interactive"},
    {"name": "bat-a", "model": "plummer", "n": 64, "t_end": 0.0625,
     "seed": 13, "boards": 1, "priority": "batch"},
    {"name": "bat-b", "model": "king", "w0": 5.0, "n": 48, "t_end": 0.0625,
     "seed": 14, "boards": 1, "priority": "batch"},
    {"name": "bat-c", "model": "hernquist", "n": 48, "t_end": 0.0625,
     "seed": 15, "boards": 2, "priority": "batch"},
    {"name": "bat-d", "model": "plummer", "n": 32, "t_end": 0.0625,
     "seed": 16, "boards": 1, "priority": "batch"},
    # Autoscaling lease bounds; t_end outlives the pack so the freed
    # boards grow this lease — shared-run resizes must stay invisible to
    # the physics just like multiplexing does.
    {"name": "bat-e", "model": "uniform", "n": 48, "t_end": 0.25,
     "seed": 17, "boards": 1, "boards_min": 1, "boards_max": 2,
     "priority": "batch"},
    {"name": "bat-f", "model": "disk", "n": 48, "t_end": 0.0625,
     "seed": 18, "boards": 2, "priority": "batch"},
    {"name": "bat-g", "model": "plummer", "n": 48, "t_end": 0.0625,
     "seed": 19, "boards": 1, "priority": "batch"},
    {"name": "bat-h", "model": "bhbinary", "n": 34, "t_end": 0.0625,
     "seed": 20, "boards": 1, "priority": "batch"},
]

SERVICE = {
    "boards_per_host": 4,
    "hosts_per_cluster": 1,
    "clusters": 1,
    "quantum_blocksteps": 4,
    "max_queue_depth": 16,
    "board_deaths": [{"round": 1, "board": 1}],
}


def write_manifest(path, service, jobs):
    with open(path, "w") as f:
        json.dump({"schema": "grape6-serve-manifest-v1",
                   "service": service, "jobs": jobs}, f, indent=2)


def run(cmd):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
    return proc.stdout


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", required=True, help="path to grape6_serve")
    ap.add_argument("--workdir", required=True)
    args = ap.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    os.chdir(args.workdir)

    # Shared run: all 10 jobs on one service, with the board death.
    write_manifest("shared.json", SERVICE, JOBS)
    run([args.serve, "--manifest=shared.json", "--out=shared",
         "--report-out=shared_report.json"])

    with open("shared_report.json") as f:
        report = json.load(f)
    svc = report["service"]
    if svc["completed"] != len(JOBS):
        raise SystemExit(
            f"FAIL: {svc['completed']}/{len(JOBS)} jobs completed")
    if svc["boards_dead"] != 1:
        raise SystemExit("FAIL: the scheduled board death did not land")
    if svc["revocations"] < 1:
        raise SystemExit("FAIL: board death revoked no lease — the death "
                         "must hit a leased board to exercise re-queue")
    if sum(j.get("resizes", 0) for j in report["jobs"]) < 1:
        raise SystemExit("FAIL: no lease was autoscaled in the shared run — "
                         "bat-e's bounds must produce at least one resize")

    # Standalone runs: one job per service, full healthy machine, no
    # neighbors, no deaths. Identical physics is the contract.
    solo_service = {k: v for k, v in SERVICE.items() if k != "board_deaths"}
    mismatches = []
    for job in JOBS:
        name = job["name"]
        write_manifest(f"solo_{name}.json", solo_service, [job])
        run([args.serve, f"--manifest=solo_{name}.json", f"--out=solo_{name}"])
        shared_snap = f"shared_{name}.snap"
        solo_snap = f"solo_{name}_{name}.snap"
        for snap in (shared_snap, solo_snap):
            if not os.path.exists(snap):
                raise SystemExit(f"FAIL: missing snapshot {snap}")
        if not filecmp.cmp(shared_snap, solo_snap, shallow=False):
            mismatches.append(name)

    if mismatches:
        raise SystemExit(
            "FAIL: shared vs standalone snapshots differ for: "
            + ", ".join(mismatches))

    revoked = [j["name"] for j in report["jobs"] if j["revocations"] > 0]
    print(f"OK: {len(JOBS)} jobs bit-identical shared vs standalone "
          f"(revoked under board death: {', '.join(revoked)})")


if __name__ == "__main__":
    main()
