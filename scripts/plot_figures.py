#!/usr/bin/env python3
"""Plot the paper figures from the bench CSV mirrors.

Run the bench harness first (for b in build/bench/*; do $b; done), then:

    python3 scripts/plot_figures.py [--bench-out bench_out] [--out figures]

Produces one PNG per reproduced figure, with log-log axes matching the
paper's presentation. Requires matplotlib.
"""

import argparse
import csv
import os
import sys


def read_csv(path):
    if not os.path.exists(path):
        return None
    with open(path) as f:
        rows = list(csv.DictReader(f))
    return rows


def col(rows, name):
    return [float(r[name]) for r in rows]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench-out", default="bench_out")
    ap.add_argument("--out", default="figures")
    args = ap.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(args.out, exist_ok=True)
    made = []

    def save(fig, name):
        path = os.path.join(args.out, name)
        fig.savefig(path, dpi=150, bbox_inches="tight")
        made.append(path)

    # Figure 13 — single-node speed vs N.
    rows = read_csv(os.path.join(args.bench_out, "fig13_single_node.csv"))
    if rows:
        fig, ax = plt.subplots()
        n = col(rows, "N")
        for key, label in [
            ("Gflops(eps=1/64)", r"$\epsilon=1/64$"),
            ("Gflops(cbrt)", r"$\epsilon=1/[8(2N)^{1/3}]$"),
            ("Gflops(4/N)", r"$\epsilon=4/N$"),
        ]:
            ax.loglog(n, col(rows, key), marker="o", ms=3, label=label)
        ax.set_xlabel("N")
        ax.set_ylabel("speed [Gflops]")
        ax.set_title("Fig 13: single node (1 host, 4 boards)")
        ax.legend()
        save(fig, "fig13.png")

    # Figure 14 — time per step.
    rows = read_csv(os.path.join(args.bench_out, "fig14_time_per_step.csv"))
    if rows:
        fig, ax = plt.subplots()
        n = col(rows, "N")
        ax.loglog(n, col(rows, "measured_us"), "k-", label="measured")
        ax.loglog(n, col(rows, "flat_model_us"), "b--", label="const $T_{host}$")
        ax.loglog(n, col(rows, "cache_model_us"), "r:", label="cache model")
        ax.set_xlabel("N")
        ax.set_ylabel("time per step [$\\mu$s]")
        ax.set_title("Fig 14: CPU time per particle step")
        ax.legend()
        save(fig, "fig14.png")

    # Figure 15 — both panels.
    for tag, title in [("fig15_const", r"$\epsilon=1/64$"), ("fig15_overn", r"$\epsilon=4/N$")]:
        rows = read_csv(os.path.join(args.bench_out, tag + ".csv"))
        if rows:
            fig, ax = plt.subplots()
            n = col(rows, "N")
            for key, label in [
                ("Gflops_1host", "1 host"),
                ("Gflops_2host", "2 hosts"),
                ("Gflops_4host", "4 hosts"),
            ]:
                ax.loglog(n, col(rows, key), marker="o", ms=3, label=label)
            ax.set_xlabel("N")
            ax.set_ylabel("speed [Gflops]")
            ax.set_title(f"Fig 15: single cluster, {title}")
            ax.legend()
            save(fig, tag + ".png")

    # Figure 16/18 — time per step, parallel.
    for tag, title in [
        ("fig16_multi_node_step", "Fig 16: 4 nodes"),
        ("fig18_multi_cluster_step", "Fig 18: 16 nodes"),
    ]:
        rows = read_csv(os.path.join(args.bench_out, tag + ".csv"))
        if rows:
            fig, ax = plt.subplots()
            n = col(rows, "N")
            ax.loglog(n, col(rows, "measured_us"), "k-", label="measured")
            ax.loglog(n, col(rows, "theory_us"), "r--", label="theory (with sync)")
            if "theory_nosync_us" in rows[0]:
                ax.loglog(n, col(rows, "theory_nosync_us"), "b:", label="no-sync what-if")
            ax.set_xlabel("N")
            ax.set_ylabel("time per step [$\\mu$s]")
            ax.set_title(title)
            ax.legend()
            save(fig, tag + ".png")

    # Figure 17 — multi-cluster Tflops.
    rows = read_csv(os.path.join(args.bench_out, "fig17_multi_cluster.csv"))
    if rows:
        fig, ax = plt.subplots()
        n = col(rows, "N")
        for key, label in [
            ("Tflops_1cl(4n)", "4 nodes (1 cluster)"),
            ("Tflops_2cl(8n)", "8 nodes (2 clusters)"),
            ("Tflops_4cl(16n)", "16 nodes (4 clusters)"),
        ]:
            ax.loglog(n, col(rows, key), marker="o", ms=3, label=label)
        ax.set_xlabel("N")
        ax.set_ylabel("speed [Tflops]")
        ax.set_title("Fig 17: multi-cluster")
        ax.legend()
        save(fig, "fig17.png")

    # Figure 19 — NIC comparison.
    rows = read_csv(os.path.join(args.bench_out, "fig19_nic_comparison.csv"))
    if rows:
        fig, ax = plt.subplots()
        n = col(rows, "N")
        ax.loglog(n, col(rows, "Tflops_NS83820"), marker="v", ms=3, label="NS83820+Athlon")
        ax.loglog(n, col(rows, "Tflops_Tigon2"), marker="s", ms=3, label="Tigon 2")
        ax.loglog(n, col(rows, "Tflops_Intel"), marker="^", ms=3, label="Intel 82540EM+P4")
        ax.set_xlabel("N")
        ax.set_ylabel("speed [Tflops]")
        ax.set_title("Fig 19: NIC tuning (16 nodes)")
        ax.legend()
        save(fig, "fig19.png")

    if not made:
        sys.exit(f"no CSVs found under {args.bench_out}; run the benches first")
    print("wrote:")
    for p in made:
        print(" ", p)


if __name__ == "__main__":
    main()
