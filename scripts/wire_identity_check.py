#!/usr/bin/env python3
"""Remote-identity check for the wire layer (docs/SERVING.md, "Wire
protocol").

Starts tools/grape6_served on a unix socket, drives a 10-job
mixed-priority manifest — including autoscaling lease-bound jobs —
through tools/grape6_loadgen over several concurrent connections with
streaming subscriptions, then byte-compares THREE snapshot writers:

  * remote_<name>.snap  — streamed over the wire, written by the client;
  * served_<name>.snap  — written by the daemon after the drain;
  * local_<name>.snap   — a standalone in-process grape6_serve run of
                          the same manifest, no sockets anywhere.

All three must be bit-identical for every job: the wire is not allowed
to touch the physics, and the 17-digit snapshot encoding must round-trip
binary64 exactly. Also asserts the streaming contract (exactly-once
terminals, at least one progress event per job) and that autoscaling
actually resized at least one lease during the served run.

Exits non-zero with a diff summary on any violation.
"""

import argparse
import filecmp
import json
import os
import subprocess
import sys

# 10 jobs, mixed sizes/priorities/models on a 4-board machine. Three
# carry autoscaling lease bounds; "auto-long" outlives the pack so a
# board is guaranteed to free up while it still runs — the grow path
# must fire at least once.
JOBS = [
    {"name": "int-a", "model": "plummer", "n": 48, "t_end": 0.0625,
     "seed": 21, "boards": 1, "priority": "interactive"},
    {"name": "int-b", "model": "uniform", "n": 32, "t_end": 0.0625,
     "seed": 22, "boards": 1, "priority": "interactive"},
    {"name": "auto-long", "model": "plummer", "n": 64, "t_end": 0.125,
     "seed": 23, "boards": 1, "boards_min": 1, "boards_max": 2,
     "priority": "batch"},
    {"name": "auto-a", "model": "king", "w0": 5.0, "n": 48, "t_end": 0.0625,
     "seed": 24, "boards": 1, "boards_min": 1, "boards_max": 2,
     "priority": "batch"},
    {"name": "auto-b", "model": "hernquist", "n": 48, "t_end": 0.0625,
     "seed": 25, "boards": 1, "boards_min": 1, "boards_max": 2,
     "priority": "batch"},
    {"name": "bat-a", "model": "plummer", "n": 64, "t_end": 0.0625,
     "seed": 26, "boards": 1, "priority": "batch"},
    {"name": "bat-b", "model": "uniform", "n": 48, "t_end": 0.0625,
     "seed": 27, "boards": 1, "priority": "batch"},
    {"name": "bat-c", "model": "disk", "n": 48, "t_end": 0.0625,
     "seed": 28, "boards": 2, "priority": "batch"},
    {"name": "bat-d", "model": "plummer", "n": 32, "t_end": 0.0625,
     "seed": 29, "boards": 1, "priority": "batch"},
    {"name": "bat-e", "model": "bhbinary", "n": 34, "t_end": 0.0625,
     "seed": 30, "boards": 1, "priority": "batch"},
]

SERVICE = {
    "boards_per_host": 4,
    "hosts_per_cluster": 1,
    "clusters": 1,
    "quantum_blocksteps": 4,
    "max_queue_depth": 16,
}


def write_manifest(path, service, jobs=None):
    doc = {"schema": "grape6-serve-manifest-v1", "service": service}
    if jobs is not None:
        doc["jobs"] = jobs  # omitted entirely for the daemon-shape manifest
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)


def run(cmd):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
    return proc.stdout


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--served", required=True, help="path to grape6_served")
    ap.add_argument("--loadgen", required=True, help="path to grape6_loadgen")
    ap.add_argument("--serve", required=True, help="path to grape6_serve")
    ap.add_argument("--workdir", required=True)
    args = ap.parse_args()
    for tool in ("served", "loadgen", "serve"):
        setattr(args, tool, os.path.abspath(getattr(args, tool)))

    os.makedirs(args.workdir, exist_ok=True)
    os.chdir(args.workdir)

    # The daemon gets the service shape only; the JOBS arrive over the
    # wire from loadgen (preloading them too would collide on names).
    write_manifest("service.json", SERVICE)
    write_manifest("jobs.json", SERVICE, JOBS)
    endpoint = "unix:g6wire.sock"

    served = subprocess.Popen(
        [args.served, f"--listen={endpoint}", "--manifest=service.json",
         "--out=served", "--snapshots=true",
         "--report-out=served_report.json"],
        stdout=subprocess.PIPE, text=True)
    try:
        line = served.stdout.readline()  # blocks until the bind happened
        if "listening on" not in line:
            raise SystemExit(f"FAIL: unexpected served banner: {line!r}")

        run([args.loadgen, f"--connect={endpoint}", "--manifest=jobs.json",
             "--connections=4", "--snapshots-out=remote",
             "--report-out=load.json", "--drain=true"])

        served_out, _ = served.communicate(timeout=120)
        if served.returncode != 0:
            sys.stderr.write(served_out)
            raise SystemExit(f"FAIL: grape6_served exited {served.returncode}")
    finally:
        if served.poll() is None:
            served.kill()

    # Streaming contract, as measured by the client.
    with open("load.json") as f:
        load = json.load(f)
    if load["completed"] != len(JOBS) or load["failed"] != 0:
        raise SystemExit(f"FAIL: {load['completed']}/{len(JOBS)} completed, "
                         f"{load['failed']} failed")
    if not load["exactly_once_terminals"]:
        raise SystemExit("FAIL: terminal events were not exactly-once")
    if load["jobs_without_progress"] != 0:
        raise SystemExit(f"FAIL: {load['jobs_without_progress']} job(s) "
                         "streamed no progress events")
    if load["snapshots"] != len(JOBS):
        raise SystemExit(f"FAIL: {load['snapshots']}/{len(JOBS)} snapshots "
                         "streamed")

    # Autoscaling must have resized at least one lease server-side.
    with open("served_report.json") as f:
        report = json.load(f)
    resizes = sum(j.get("resizes", 0) for j in report["jobs"])
    if resizes < 1:
        raise SystemExit("FAIL: no lease was autoscaled during the served "
                         "run — the grow path never fired")

    # Standalone in-process reference: same manifest, no sockets.
    run([args.serve, "--manifest=jobs.json", "--out=local"])

    mismatches = []
    for job in JOBS:
        name = job["name"]
        remote, servd, local = (f"remote_{name}.snap", f"served_{name}.snap",
                                f"local_{name}.snap")
        for snap in (remote, servd, local):
            if not os.path.exists(snap):
                raise SystemExit(f"FAIL: missing snapshot {snap}")
        if not filecmp.cmp(remote, local, shallow=False):
            mismatches.append(f"{name} (remote vs local)")
        if not filecmp.cmp(servd, local, shallow=False):
            mismatches.append(f"{name} (served vs local)")

    if mismatches:
        raise SystemExit("FAIL: snapshots differ for: " + ", ".join(mismatches))

    autoscaled = [j["name"] for j in report["jobs"] if j.get("resizes", 0) > 0]
    print(f"OK: {len(JOBS)} jobs streamed remotely, snapshots bit-identical "
          f"client/daemon/standalone; {resizes} lease resize(s) on: "
          f"{', '.join(autoscaled)}")


if __name__ == "__main__":
    main()
