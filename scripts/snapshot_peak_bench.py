#!/usr/bin/env python3
"""Refresh BENCH_peak.json from bench/peak_and_kernels.

Runs the google-benchmark micro-kernel suite (quantize, pipeline
interaction, predictor, BFP add, chip pass scalar vs batched, octree,
direct block force) and distills its JSON output into a small committed
snapshot at the repo root, the peak/kernels counterpart of
scripts/snapshot_serve_bench.py. A derived `speedups` section records
the scalar-vs-batched chip-pass ratio and the batched interactions/s so
the fast path's uplift is a first-class gated number (rate-compared by
scripts/bench_regress.py), not something reviewers re-derive from rows.

Usage (from the repo root, after building):

    python3 scripts/snapshot_peak_bench.py --bench build/bench/peak_and_kernels

Wall-clock numbers vary machine to machine; the snapshot records them for
trend-spotting in review diffs, and scripts/bench_regress.py compares a
fresh run against them with a wide tolerance band so only step-change
slowdowns (an accidentally quadratic loop, a lost fast path) fail CI.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "grape6-bench-peak-v1"

_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def distill(raw: dict) -> dict:
    """google-benchmark JSON -> {name: {real_time_ns, cpu_time_ns, ...}}."""
    out = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue  # keep per-run numbers only; we run without repetitions
        scale = _TO_NS.get(b.get("time_unit", "ns"), 1.0)
        entry = {
            "real_time_ns": b["real_time"] * scale,
            "cpu_time_ns": b["cpu_time"] * scale,
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        out[b["name"]] = entry
    return out


CHIP_PASS_SCALAR = "BM_ChipPass/batched:0/nj:512"
CHIP_PASS_BATCHED = "BM_ChipPass/batched:1/nj:512"


def derive_speedups(benchmarks: dict) -> dict:
    """Headline fast-path numbers derived from the chip-pass rows."""
    out = {}
    scalar = benchmarks.get(CHIP_PASS_SCALAR, {})
    batched = benchmarks.get(CHIP_PASS_BATCHED, {})
    if "items_per_second" in batched:
        out["chip_pass_batched_interactions_per_s"] = batched["items_per_second"]
    if "items_per_second" in scalar and "items_per_second" in batched:
        out["chip_pass_batched_vs_scalar"] = (
            batched["items_per_second"] / scalar["items_per_second"])
    return out


def run_and_distill(bench: str, min_time_s: float) -> dict:
    """Run the bench binary and return the snapshot dict."""
    with tempfile.TemporaryDirectory() as tmp:
        out_path = os.path.join(tmp, "peak_and_kernels.json")
        cmd = [bench, f"--benchmark_out={out_path}",
               "--benchmark_out_format=json",
               f"--benchmark_min_time={min_time_s}s"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
        with open(out_path) as f:
            raw = json.load(f)

    benchmarks = distill(raw)
    return {
        "schema": SCHEMA,
        "bench": "peak_and_kernels",
        "min_time_s": min_time_s,
        "benchmarks": benchmarks,
        "speedups": derive_speedups(benchmarks),
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True,
                    help="path to the peak_and_kernels binary")
    ap.add_argument("--out", default="BENCH_peak.json",
                    help="snapshot path (default: BENCH_peak.json)")
    ap.add_argument("--min-time", type=float, default=0.1,
                    help="per-benchmark min measurement time in seconds")
    args = ap.parse_args()

    snapshot = run_and_distill(args.bench, args.min_time)
    with open(args.out, "w") as f:
        json.dump(snapshot, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out} ({len(snapshot['benchmarks'])} benchmarks)")


if __name__ == "__main__":
    main()
