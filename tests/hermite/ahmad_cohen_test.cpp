#include "hermite/ahmad_cohen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "grape/engine.hpp"
#include "hermite/direct_engine.hpp"
#include "hermite/integrator.hpp"
#include "nbody/diagnostics.hpp"
#include "nbody/models.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

constexpr double kEps = 1.0 / 64.0;

ParticleSet plummer(std::size_t n, unsigned seed) {
  Rng rng(seed);
  return make_plummer(n, rng);
}

TEST(AhmadCohen, EnergyConservation) {
  const ParticleSet s = plummer(128, 1);
  DirectForceEngine engine(kEps);
  AhmadCohenConfig cfg;
  AhmadCohenIntegrator integ(s, engine, cfg);

  const double e0 = compute_energy(s.bodies(), kEps).total();
  integ.evolve(1.0);
  const double e1 =
      compute_energy(integ.state_at_current_time().bodies(), kEps).total();
  EXPECT_LT(std::fabs((e1 - e0) / e0), 2e-4);
}

TEST(AhmadCohen, MatchesPlainHermiteShortTerm) {
  const ParticleSet s = plummer(64, 2);
  DirectForceEngine e1(kEps), e2(kEps);
  HermiteIntegrator plain(s, e1);
  AhmadCohenIntegrator ac(s, e2);
  plain.evolve(0.25);
  ac.evolve(0.25);

  const ParticleSet sp = plain.state_at_current_time();
  const ParticleSet sa = ac.state_at_current_time();
  double rms = 0.0;
  for (std::size_t i = 0; i < sp.size(); ++i) rms += norm2(sp[i].pos - sa[i].pos);
  rms = std::sqrt(rms / static_cast<double>(sp.size()));
  EXPECT_LT(rms, 5e-3);
}

TEST(AhmadCohen, RegularStepsAreRare) {
  // The point of the scheme: far fewer full-N evaluations than steps.
  const ParticleSet s = plummer(256, 3);
  DirectForceEngine engine(kEps);
  AhmadCohenIntegrator integ(s, engine);
  integ.evolve(0.5);

  EXPECT_GT(integ.irregular_steps(), 0ull);
  EXPECT_GT(integ.regular_steps(), 0ull);
  EXPECT_LT(integ.regular_steps(), integ.irregular_steps());
  // Pairwise work saved vs plain Hermite (which pays N-1 per step).
  const auto plain_equivalent =
      integ.irregular_steps() * static_cast<unsigned long long>(s.size() - 1);
  const auto actual =
      integ.irregular_interactions() + integ.regular_interactions();
  EXPECT_LT(actual, plain_equivalent);
}

TEST(AhmadCohen, NeighborCountsTrackTarget) {
  const ParticleSet s = plummer(256, 4);
  DirectForceEngine engine(kEps);
  AhmadCohenConfig cfg;
  cfg.neighbor_target = 12;
  AhmadCohenIntegrator integ(s, engine, cfg);
  integ.evolve(0.5);
  const double mean = integ.mean_neighbor_count();
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 60.0);
}

TEST(AhmadCohen, WorksOnEmulatedHardwareNeighbors) {
  const ParticleSet s = plummer(48, 5);
  MachineConfig mc = MachineConfig::single_host();
  mc.boards_per_host = 1;
  GrapeForceEngine hw(mc, NumberFormats{}, kEps);
  AhmadCohenIntegrator integ(s, hw, {});
  const double e0 = compute_energy(s.bodies(), kEps).total();
  integ.evolve(0.125);
  const double e1 =
      compute_energy(integ.state_at_current_time().bodies(), kEps).total();
  EXPECT_LT(std::fabs((e1 - e0) / e0), 5e-4);
}

TEST(AhmadCohen, IrregularStepsNeverOvershootRegular) {
  const ParticleSet s = plummer(64, 6);
  DirectForceEngine engine(kEps);
  AhmadCohenIntegrator integ(s, engine);
  for (int k = 0; k < 200; ++k) integ.step();
  // All particle times on the dyadic grid and no particle beyond t.
  for (std::size_t i = 0; i < integ.size(); ++i) {
    EXPECT_LE(integ.particle(i).t0, integ.time());
  }
}

TEST(AhmadCohen, RequiresNeighborCapableEngine) {
  class NoNeighbors final : public ForceEngine {
   public:
    void load_particles(std::span<const JParticle>) override {}
    void update_particle(std::size_t, const JParticle&) override {}
    void compute_forces(double, std::span<const PredictedState>,
                        std::span<Force>) override {}
    double softening() const override { return 0.0; }
    std::size_t size() const override { return 0; }
  } engine;
  const ParticleSet s = plummer(16, 7);
  EXPECT_THROW(AhmadCohenIntegrator(s, engine, {}), PreconditionError);
}

TEST(AhmadCohen, TraceRecordsIrregularBlocks) {
  const ParticleSet s = plummer(64, 8);
  DirectForceEngine engine(kEps);
  AhmadCohenConfig cfg;
  cfg.record_trace = true;
  AhmadCohenIntegrator integ(s, engine, cfg);
  integ.evolve(0.125);
  EXPECT_EQ(integ.trace().total_steps(), integ.irregular_steps());
  EXPECT_FALSE(integ.trace().records.empty());
}

}  // namespace
}  // namespace g6
