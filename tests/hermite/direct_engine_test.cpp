#include "hermite/direct_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace g6 {
namespace {

JParticle at_rest(double mass, const Vec3& pos) {
  JParticle p;
  p.mass = mass;
  p.pos = pos;
  return p;
}

TEST(DirectEngine, TwoBodyForceAnalytic) {
  DirectForceEngine engine(0.0);
  const std::vector<JParticle> js = {at_rest(1.0, {0.0, 0.0, 0.0}),
                                     at_rest(2.0, {2.0, 0.0, 0.0})};
  engine.load_particles(js);

  std::vector<PredictedState> block(1);
  block[0] = {{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}, 1.0, 0};
  std::vector<Force> out(1);
  engine.compute_forces(0.0, block, out);

  // a = G m_j / r^2 toward +x = 2/4 = 0.5; phi = -m_j/r = -1.
  EXPECT_NEAR(out[0].acc.x, 0.5, 1e-15);
  EXPECT_NEAR(out[0].acc.y, 0.0, 1e-15);
  EXPECT_NEAR(out[0].pot, -1.0, 1e-15);
  EXPECT_NEAR(norm(out[0].jerk), 0.0, 1e-15);  // static -> zero jerk
}

TEST(DirectEngine, SofteningMatchesFormula) {
  const double eps = 0.5;
  DirectForceEngine engine(eps);
  const std::vector<JParticle> js = {at_rest(1.0, {}), at_rest(1.0, {1.0, 0.0, 0.0})};
  engine.load_particles(js);

  std::vector<PredictedState> block = {{{}, {}, 1.0, 0}};
  std::vector<Force> out(1);
  engine.compute_forces(0.0, block, out);

  const double r2 = 1.0 + eps * eps;
  EXPECT_NEAR(out[0].acc.x, 1.0 / std::pow(r2, 1.5), 1e-15);
  EXPECT_NEAR(out[0].pot, -1.0 / std::sqrt(r2), 1e-15);
}

TEST(DirectEngine, JerkMatchesFiniteDifference) {
  // Moving source: jerk should equal d(acc)/dt along straight-line motion.
  JParticle j;
  j.mass = 1.5;
  j.pos = {1.0, 2.0, -0.5};
  j.vel = {-0.3, 0.1, 0.2};
  DirectForceEngine engine(0.1);
  engine.load_particles({&j, 1});

  const Vec3 xi{0.0, 0.0, 0.0};
  const Vec3 vi{0.05, -0.02, 0.0};

  const auto force_at = [&](double t) {
    std::vector<PredictedState> block = {{xi + t * vi, vi, 1.0, 99}};
    std::vector<Force> out(1);
    engine.compute_forces(t, block, out);
    return out[0];
  };

  const Force f0 = force_at(0.0);
  const double h = 1e-6;
  const Force fp = force_at(h);
  const Force fm = force_at(-h);
  const Vec3 jerk_fd = (fp.acc - fm.acc) / (2.0 * h);
  EXPECT_NEAR(norm(jerk_fd - f0.jerk), 0.0, 1e-6 * std::max(1.0, norm(f0.jerk)));
}

TEST(DirectEngine, SelfInteractionSkipped) {
  DirectForceEngine engine(0.0);
  const std::vector<JParticle> js = {at_rest(1.0, {0.0, 0.0, 0.0}),
                                     at_rest(1.0, {1.0, 0.0, 0.0})};
  engine.load_particles(js);
  // i-particle IS particle 0: only particle 1 contributes.
  std::vector<PredictedState> block = {{{}, {}, 1.0, 0}};
  std::vector<Force> out(1);
  engine.compute_forces(0.0, block, out);
  EXPECT_NEAR(out[0].pot, -1.0, 1e-15);  // not -inf
}

TEST(DirectEngine, NewtonThirdLawForEqualMasses) {
  DirectForceEngine engine(0.01);
  Rng rng(5);
  std::vector<JParticle> js(2);
  for (auto& p : js) {
    p.mass = 0.5;
    p.pos = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    p.vel = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
  }
  engine.load_particles(js);
  std::vector<PredictedState> block = {{js[0].pos, js[0].vel, 0.5, 0},
                                       {js[1].pos, js[1].vel, 0.5, 1}};
  std::vector<Force> out(2);
  engine.compute_forces(0.0, block, out);
  EXPECT_NEAR(norm(out[0].acc + out[1].acc), 0.0, 1e-14);
  EXPECT_NEAR(norm(out[0].jerk + out[1].jerk), 0.0, 1e-13);
}

TEST(DirectEngine, ThreadedMatchesSerial) {
  Rng rng(6);
  std::vector<JParticle> js(64);
  for (std::size_t i = 0; i < js.size(); ++i) {
    js[i].mass = 1.0 / 64.0;
    js[i].pos = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    js[i].vel = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
  }
  DirectForceEngine serial(0.05, 1);
  DirectForceEngine threaded(0.05, 4);
  serial.load_particles(js);
  threaded.load_particles(js);

  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i] = {js[i].pos, js[i].vel, js[i].mass, static_cast<std::uint32_t>(i)};
  }
  std::vector<Force> a(js.size()), b(js.size());
  serial.compute_forces(0.0, block, a);
  threaded.compute_forces(0.0, block, b);
  for (std::size_t i = 0; i < js.size(); ++i) {
    EXPECT_EQ(a[i].acc, b[i].acc);  // identical j-order -> bit identical
    EXPECT_EQ(a[i].jerk, b[i].jerk);
    EXPECT_EQ(a[i].pot, b[i].pot);
  }
}

TEST(DirectEngine, InteractionCounting) {
  DirectForceEngine engine(0.0);
  std::vector<JParticle> js(10);
  for (std::size_t i = 0; i < js.size(); ++i) {
    js[i].mass = 0.1;
    js[i].pos = {static_cast<double>(i), 0.0, 0.0};
  }
  engine.load_particles(js);
  std::vector<PredictedState> block = {{{0.5, 0, 0}, {}, 0.1, 0},
                                       {{1.5, 0, 0}, {}, 0.1, 1},
                                       {{2.5, 0, 0}, {}, 0.1, 2}};
  std::vector<Force> out(3);
  engine.compute_forces(0.0, block, out);
  EXPECT_EQ(engine.interactions(), 3ull * 9ull);
}

}  // namespace
}  // namespace g6
