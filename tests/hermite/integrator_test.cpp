#include "hermite/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hermite/direct_engine.hpp"
#include "nbody/diagnostics.hpp"
#include "nbody/kepler.hpp"
#include "nbody/models.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

ParticleSet circular_binary() {
  // mu = 1, relative circular orbit radius 1, period 2*pi.
  ParticleSet s;
  s.add({0.5, {0.5, 0.0, 0.0}, {0.0, 0.5, 0.0}});
  s.add({0.5, {-0.5, 0.0, 0.0}, {0.0, -0.5, 0.0}});
  return s;
}

TEST(Integrator, CircularBinaryTracksKepler) {
  DirectForceEngine engine(0.0);
  HermiteConfig cfg;
  cfg.eta = 0.01;
  HermiteIntegrator integ(circular_binary(), engine, cfg);

  const double period = 2.0 * 3.14159265358979323846;
  // One full period is not dyadic; integrate to t=6 and compare against
  // the analytic Kepler propagation.
  integ.evolve(6.0);
  EXPECT_DOUBLE_EQ(integ.time(), 6.0);

  const ParticleSet s = integ.state_at_current_time();
  const RelativeState rel0{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  const RelativeState expect = propagate_kepler(rel0, 1.0, 6.0);
  const Vec3 rel_pos = s[0].pos - s[1].pos;
  const Vec3 rel_vel = s[0].vel - s[1].vel;
  EXPECT_NEAR(norm(rel_pos - expect.pos), 0.0, 1e-4);
  EXPECT_NEAR(norm(rel_vel - expect.vel), 0.0, 1e-4);
  (void)period;
}

TEST(Integrator, EnergyConservedOnEccentricOrbit) {
  // e = 0.9 binary exercises the adaptive timestep machinery.
  ParticleSet s;
  OrbitalElements el;
  el.semi_major_axis = 1.0;
  el.eccentricity = 0.9;
  el.mean_anomaly = 3.14;  // start near apoapsis
  const RelativeState rel = elements_to_state(el, 1.0);
  s.add({0.5, 0.5 * rel.pos, 0.5 * rel.vel});
  s.add({0.5, -0.5 * rel.pos, -0.5 * rel.vel});

  DirectForceEngine engine(0.0);
  HermiteConfig cfg;
  cfg.eta = 0.01;
  HermiteIntegrator integ(s, engine, cfg);
  const double e0 = compute_energy(s.bodies()).total();
  integ.evolve(8.0);  // > 1 period
  const double e1 = compute_energy(integ.state_at_current_time().bodies()).total();
  EXPECT_NEAR((e1 - e0) / std::fabs(e0), 0.0, 1e-6);
}

TEST(Integrator, PlummerEnergyConservation) {
  Rng rng(101);
  const double eps = 1.0 / 64.0;
  const ParticleSet s = make_plummer(128, rng);
  DirectForceEngine engine(eps);
  HermiteConfig cfg;
  cfg.eta = 0.02;
  HermiteIntegrator integ(s, engine, cfg);

  const double e0 = compute_energy(s.bodies(), eps).total();
  integ.evolve(1.0);
  const double e1 =
      compute_energy(integ.state_at_current_time().bodies(), eps).total();
  EXPECT_LT(std::fabs((e1 - e0) / e0), 2e-5);
}

TEST(Integrator, BlockTimesStayOnDyadicGrid) {
  Rng rng(7);
  const ParticleSet s = make_plummer(64, rng);
  DirectForceEngine engine(0.05);
  HermiteConfig cfg;
  cfg.record_trace = true;
  HermiteIntegrator integ(s, engine, cfg);
  for (int i = 0; i < 200; ++i) integ.step();

  for (const auto& rec : integ.trace().records) {
    // Every block time must be a multiple of dt_min.
    const double q = rec.time / cfg.dt_min;
    EXPECT_DOUBLE_EQ(q, std::floor(q));
    EXPECT_GE(rec.block_size, 1u);
  }
}

TEST(Integrator, ParticleTimesNeverExceedSystemTime) {
  Rng rng(8);
  const ParticleSet s = make_plummer(32, rng);
  DirectForceEngine engine(0.05);
  HermiteIntegrator integ(s, engine);
  for (int i = 0; i < 100; ++i) {
    integ.step();
    for (std::size_t p = 0; p < integ.size(); ++p) {
      EXPECT_LE(integ.particle(p).t0, integ.time());
      // And the next due time is in the future.
      EXPECT_GT(integ.particle(p).t0 + integ.timestep(p), integ.time() - 1e-18);
    }
  }
}

TEST(Integrator, IndividualTimestepsAdaptToDensity) {
  // A tight binary inside a sparse cloud: the binary members must end up
  // on much smaller timesteps than the outskirts.
  ParticleSet s;
  s.add({0.4, {0.01, 0.0, 0.0}, {0.0, 2.0, 0.0}});
  s.add({0.4, {-0.01, 0.0, 0.0}, {0.0, -2.0, 0.0}});
  for (int i = 0; i < 30; ++i) {
    const double a = 0.2 * i;
    s.add({0.2 / 30.0,
           {5.0 * std::cos(a), 5.0 * std::sin(a), 0.3 * (i % 3 - 1)},
           {0.0, 0.0, 0.0}});
  }
  DirectForceEngine engine(0.0);
  HermiteIntegrator integ(s, engine);
  for (int i = 0; i < 50; ++i) integ.step();

  double dt_binary = std::max(integ.timestep(0), integ.timestep(1));
  double dt_cloud_min = 1.0;
  for (std::size_t p = 2; p < integ.size(); ++p) {
    dt_cloud_min = std::min(dt_cloud_min, integ.timestep(p));
  }
  EXPECT_LT(dt_binary, dt_cloud_min);
}

TEST(Integrator, TraceAccountsEverything) {
  Rng rng(9);
  const ParticleSet s = make_plummer(64, rng);
  DirectForceEngine engine(0.05);
  HermiteConfig cfg;
  cfg.record_trace = true;
  HermiteIntegrator integ(s, engine, cfg);
  integ.evolve(0.25);

  EXPECT_EQ(integ.trace().total_steps(), integ.total_steps());
  EXPECT_EQ(integ.trace().records.size(), integ.total_blocksteps());
  EXPECT_GT(integ.trace().steps_per_particle_per_time(), 0.0);
  EXPECT_GE(integ.trace().mean_block_size(), 1.0);
}

TEST(Integrator, BlockCallbackFires) {
  Rng rng(10);
  const ParticleSet s = make_plummer(32, rng);
  DirectForceEngine engine(0.05);
  HermiteIntegrator integ(s, engine);
  std::size_t calls = 0, total = 0;
  integ.set_block_callback([&](double, std::span<const std::size_t> blk) {
    ++calls;
    total += blk.size();
  });
  for (int i = 0; i < 20; ++i) integ.step();
  EXPECT_EQ(calls, 20u);
  EXPECT_EQ(total, integ.total_steps());
}

TEST(Integrator, RequiresSanePreconditions) {
  Rng rng(11);
  const ParticleSet s = make_plummer(16, rng);
  DirectForceEngine engine(0.05);
  HermiteConfig bad;
  bad.eta = -1.0;
  EXPECT_THROW(HermiteIntegrator(s, engine, bad), PreconditionError);

  ParticleSet single;
  single.add({1.0, {}, {}});
  EXPECT_THROW(HermiteIntegrator(single, engine), PreconditionError);
}

}  // namespace
}  // namespace g6
