// Order-of-convergence and robustness properties of the Hermite
// integrator — the numerical contract the hardware word sizes were
// designed against.

#include <gtest/gtest.h>

#include <cmath>

#include "hermite/direct_engine.hpp"
#include "hermite/integrator.hpp"
#include "nbody/kepler.hpp"
#include "nbody/diagnostics.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

/// Relative-position error after integrating a fixed span of an e=0.5
/// binary with accuracy parameter eta.
double binary_error(double eta) {
  OrbitalElements el;
  el.semi_major_axis = 1.0;
  el.eccentricity = 0.5;
  const RelativeState rel0 = elements_to_state(el, 1.0);
  ParticleSet s;
  s.add({0.5, 0.5 * rel0.pos, 0.5 * rel0.vel});
  s.add({0.5, -0.5 * rel0.pos, -0.5 * rel0.vel});

  DirectForceEngine engine(0.0);
  HermiteConfig cfg;
  cfg.eta = eta;
  cfg.dt_max = 0.0625;
  HermiteIntegrator integ(s, engine, cfg);
  integ.evolve(4.0);

  const RelativeState expect = propagate_kepler(rel0, 1.0, 4.0);
  const ParticleSet out = integ.state_at_current_time();
  return norm((out[0].pos - out[1].pos) - expect.pos);
}

TEST(Convergence, FourthOrderInTimestep) {
  // dt ~ sqrt(eta), global error ~ dt^4 ~ eta^2: a 4x eta reduction
  // should buy ~16x accuracy (block quantization blurs the exact factor).
  const double e_coarse = binary_error(0.02);
  const double e_fine = binary_error(0.02 / 4.0);
  EXPECT_LT(e_fine, e_coarse / 6.0);
  EXPECT_GT(e_fine, 0.0);
}

class EtaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EtaSweep, EnergyErrorBoundedByEta) {
  const double eta = GetParam();
  Rng rng(7);
  const double eps = 1.0 / 64.0;
  const ParticleSet s = make_plummer(64, rng);
  DirectForceEngine engine(eps);
  HermiteConfig cfg;
  cfg.eta = eta;
  HermiteIntegrator integ(s, engine, cfg);
  const double e0 = compute_energy(s.bodies(), eps).total();
  integ.evolve(0.5);
  const double e1 = compute_energy(integ.state_at_current_time().bodies(), eps).total();
  // Empirical envelope: dE/E stays well below eta^2 for this system.
  EXPECT_LT(std::fabs((e1 - e0) / e0), eta * eta);
}

INSTANTIATE_TEST_SUITE_P(Etas, EtaSweep, ::testing::Values(0.01, 0.02, 0.04));

TEST(Robustness, SurvivesVeryCloseEncounter) {
  // Head-on-ish hyperbolic encounter with small softening: the block
  // scheduler must shrink dt to dt_min and recover, not blow up.
  ParticleSet s;
  s.add({0.5, {-1.0, 0.01, 0.0}, {1.5, 0.0, 0.0}});
  s.add({0.5, {1.0, -0.01, 0.0}, {-1.5, 0.0, 0.0}});
  DirectForceEngine engine(1e-4);
  HermiteConfig cfg;
  cfg.eta = 0.01;
  HermiteIntegrator integ(s, engine, cfg);
  const double e0 = compute_energy(s.bodies(), 1e-4).total();
  integ.evolve(2.0);  // well past the encounter
  const double e1 = compute_energy(integ.state_at_current_time().bodies(), 1e-4).total();
  EXPECT_TRUE(std::isfinite(e1));
  EXPECT_LT(std::fabs((e1 - e0) / e0), 5e-2);  // hard encounter, soft bound
  // They must have swung past each other.
  const ParticleSet out = integ.state_at_current_time();
  EXPECT_GT(norm(out[0].pos - out[1].pos), 0.5);
}

TEST(Robustness, MasslessTestParticlesAreCarried) {
  // Massless tracers (planetesimal limit) must not disturb the system
  // and must themselves follow sensible orbits.
  ParticleSet s;
  s.add({1.0, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}});
  s.add({0.0, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}});  // circular massless orbit
  s.add({0.0, {2.0, 0.0, 0.0}, {0.0, std::sqrt(0.5), 0.0}});
  DirectForceEngine engine(0.0);
  HermiteConfig cfg;
  cfg.eta = 0.005;
  HermiteIntegrator integ(s, engine, cfg);
  integ.evolve(2.0);
  const ParticleSet out = integ.state_at_current_time();
  // The star barely moved; the tracers stay on their circles.
  EXPECT_LT(norm(out[0].pos), 1e-10);
  EXPECT_NEAR(norm(out[1].pos - out[0].pos), 1.0, 1e-4);
  EXPECT_NEAR(norm(out[2].pos - out[0].pos), 2.0, 1e-4);
}

TEST(Robustness, TimestepNeverGrowsMoreThanDoubling) {
  Rng rng(9);
  const ParticleSet s = make_plummer(48, rng);
  DirectForceEngine engine(0.05);
  HermiteIntegrator integ(s, engine);
  std::vector<double> prev_dt(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) prev_dt[i] = integ.timestep(i);
  for (int k = 0; k < 100; ++k) {
    integ.step();
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_LE(integ.timestep(i), 2.0 * prev_dt[i] + 1e-18) << i;
      prev_dt[i] = integ.timestep(i);
    }
  }
}

}  // namespace
}  // namespace g6
