#include "hermite/scheme.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace g6 {
namespace {

TEST(Predict, ExactForPolynomialMotion) {
  // If the true motion is exactly the quartic of Eq (6), the predictor
  // must reproduce it to round-off.
  JParticle p;
  p.t0 = 1.0;
  p.pos = {1.0, -2.0, 0.5};
  p.vel = {0.1, 0.2, -0.3};
  p.acc = {0.01, -0.02, 0.03};
  p.jerk = {0.001, 0.002, -0.003};
  p.snap = {0.0001, -0.0002, 0.0003};

  const double t = 1.75;
  const double dt = t - p.t0;
  Vec3 xp, vp;
  hermite_predict(p, t, xp, vp);

  for (int d = 0; d < 3; ++d) {
    const double expect_x = p.pos[d] + dt * p.vel[d] + dt * dt / 2.0 * p.acc[d] +
                            dt * dt * dt / 6.0 * p.jerk[d] +
                            dt * dt * dt * dt / 24.0 * p.snap[d];
    const double expect_v = p.vel[d] + dt * p.acc[d] + dt * dt / 2.0 * p.jerk[d] +
                            dt * dt * dt / 6.0 * p.snap[d];
    EXPECT_NEAR(xp[d], expect_x, 1e-15);
    EXPECT_NEAR(vp[d], expect_v, 1e-15);
  }
}

TEST(Predict, ZeroDtIsIdentity) {
  JParticle p;
  p.t0 = 2.0;
  p.pos = {1.0, 2.0, 3.0};
  p.vel = {4.0, 5.0, 6.0};
  p.acc = {7.0, 8.0, 9.0};
  Vec3 xp, vp;
  hermite_predict(p, 2.0, xp, vp);
  EXPECT_EQ(xp, p.pos);
  EXPECT_EQ(vp, p.vel);
}

TEST(Interpolate, RecoversPolynomialDerivatives) {
  // Construct forces from a known cubic acceleration a(t) = a0 + j0 t +
  // s0 t^2/2 + c0 t^3/6 and check a2/a3 recovery.
  const Vec3 a0{1.0, -1.0, 0.5};
  const Vec3 j0{0.3, 0.1, -0.2};
  const Vec3 s0{0.05, -0.02, 0.01};
  const Vec3 c0{0.004, 0.002, -0.006};
  const double dt = 0.25;

  Force f0, f1;
  f0.acc = a0;
  f0.jerk = j0;
  f1.acc = a0 + dt * j0 + (dt * dt / 2.0) * s0 + (dt * dt * dt / 6.0) * c0;
  f1.jerk = j0 + dt * s0 + (dt * dt / 2.0) * c0;

  const HermiteDerivatives d = hermite_interpolate(f0, f1, dt);
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(d.a2[k], s0[k], 1e-12);
    EXPECT_NEAR(d.a3[k], c0[k], 1e-12);
  }
}

TEST(Correct, ExactForQuinticTrajectory) {
  // For motion whose acceleration is exactly cubic in t, predictor +
  // corrector reproduces position and velocity exactly (5th/4th order).
  const Vec3 x0{0.0, 0.0, 0.0};
  const Vec3 v0{1.0, 0.0, 0.0};
  const Vec3 a0{0.0, 1.0, 0.0};
  const Vec3 j0{0.0, 0.0, 1.0};
  const Vec3 s0{0.5, 0.0, 0.0};
  const Vec3 c0{0.0, 0.25, 0.0};
  const double dt = 0.5;

  const auto poly_pos = [&](double t) {
    return x0 + t * v0 + (t * t / 2.0) * a0 + (t * t * t / 6.0) * j0 +
           (t * t * t * t / 24.0) * s0 + (t * t * t * t * t / 120.0) * c0;
  };
  const auto poly_vel = [&](double t) {
    return v0 + t * a0 + (t * t / 2.0) * j0 + (t * t * t / 6.0) * s0 +
           (t * t * t * t / 24.0) * c0;
  };

  Force f0{a0, j0, 0.0};
  Force f1{a0 + dt * j0 + (dt * dt / 2.0) * s0 + (dt * dt * dt / 6.0) * c0,
           j0 + dt * s0 + (dt * dt / 2.0) * c0, 0.0};

  // Predict with snap unknown (zero), as at the start of a fresh step.
  JParticle p;
  p.pos = x0;
  p.vel = v0;
  p.acc = a0;
  p.jerk = j0;
  p.snap = {};
  Vec3 xp, vp;
  hermite_predict(p, dt, xp, vp);

  const HermiteDerivatives d = hermite_interpolate(f0, f1, dt);
  Vec3 x = xp, v = vp;
  // The corrector restores the missing snap and crackle terms... but the
  // predictor omitted snap, so add it back through the corrector identity:
  // x1 = x_p(no snap) + dt^4/24 a2 + dt^5/120 a3 holds when x_p includes
  // NO snap term and a2/a3 come from the interpolation.
  hermite_correct(d, dt, x, v);

  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(x[k], poly_pos(dt)[k], 1e-13);
    EXPECT_NEAR(v[k], poly_vel(dt)[k], 1e-13);
  }
}

TEST(AarsethTimestep, ScalesWithEta) {
  Force f;
  f.acc = {1.0, 0.0, 0.0};
  f.jerk = {0.0, 2.0, 0.0};
  const Vec3 a2{0.5, 0.5, 0.0};
  const Vec3 a3{0.1, 0.0, 0.1};
  const double dt1 = aarseth_timestep(f, a2, a3, 0.01);
  const double dt4 = aarseth_timestep(f, a2, a3, 0.04);
  EXPECT_NEAR(dt4 / dt1, 2.0, 1e-12);  // sqrt(eta) scaling
}

TEST(AarsethTimestep, DegenerateFallsBack) {
  Force f;
  f.acc = {1.0, 0.0, 0.0};
  f.jerk = {2.0, 0.0, 0.0};
  const double dt = aarseth_timestep(f, {}, {}, 0.01);
  EXPECT_NEAR(dt, 0.01 * 1.0 / 2.0, 1e-12);
}

TEST(QuantizeTimestep, PowerOfTwoGrid) {
  EXPECT_DOUBLE_EQ(quantize_timestep(0.3, 1e-6, 0.125), 0.125);   // clamp max
  EXPECT_DOUBLE_EQ(quantize_timestep(0.1, 1e-6, 0.125), 0.0625);  // 2^-4
  EXPECT_DOUBLE_EQ(quantize_timestep(0.0625, 1e-6, 0.125), 0.0625);
  EXPECT_DOUBLE_EQ(quantize_timestep(1e-9, 1e-6, 0.125), 1e-6);   // clamp min
}

TEST(QuantizeTimestep, ResultIsAlwaysPowerOfTwoTimesMin) {
  for (double req : {0.9, 0.5, 0.26, 0.1, 0.01, 0.003}) {
    const double dt = quantize_timestep(req, std::exp2(-20), 0.25);
    const double l = std::log2(dt);
    EXPECT_DOUBLE_EQ(l, std::floor(l)) << req;
    EXPECT_LE(dt, req);
  }
}

TEST(CommensurateTimestep, HalvesUntilAligned) {
  // t = 0.375 = 3/8: dt = 1/4 not allowed (0.375/0.25 = 1.5), dt = 1/8 ok.
  EXPECT_DOUBLE_EQ(commensurate_timestep(0.375, 0.25, 1e-6), 0.125);
  // t = 0.5: dt = 0.25 allowed.
  EXPECT_DOUBLE_EQ(commensurate_timestep(0.5, 0.25, 1e-6), 0.25);
  // t = 0: everything allowed.
  EXPECT_DOUBLE_EQ(commensurate_timestep(0.0, 0.125, 1e-6), 0.125);
}

}  // namespace
}  // namespace g6
