#include "nbody/king.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nbody/diagnostics.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace g6 {
namespace {

TEST(KingProfile, DensityOfWBasics) {
  EXPECT_EQ(KingProfile::density_of_w(0.0), 0.0);
  EXPECT_EQ(KingProfile::density_of_w(-1.0), 0.0);
  EXPECT_GT(KingProfile::density_of_w(3.0), 0.0);
  // Monotone in W.
  EXPECT_GT(KingProfile::density_of_w(6.0), KingProfile::density_of_w(3.0));
}

TEST(KingProfile, PotentialDecreasesToZeroAtTidalRadius) {
  const KingProfile p(6.0);
  EXPECT_DOUBLE_EQ(p.w_at(0.0), 6.0);
  EXPECT_GT(p.tidal_radius(), 1.0);
  EXPECT_NEAR(p.w_at(p.tidal_radius()), 0.0, 1e-6);
  // Monotone decreasing.
  double prev = p.w_at(0.0);
  for (double r = 0.25; r < p.tidal_radius(); r += 0.25) {
    const double w = p.w_at(r);
    EXPECT_LT(w, prev);
    prev = w;
  }
}

TEST(KingProfile, ConcentrationGrowsWithW0) {
  const KingProfile shallow(3.0);
  const KingProfile deep(9.0);
  EXPECT_GT(deep.concentration(), shallow.concentration());
  // Known ballpark values (King 1966): c ~ 0.67/1.03/2.12 for W0=3/6/9.
  EXPECT_NEAR(shallow.concentration(), 0.67, 0.15);
  EXPECT_NEAR(deep.concentration(), 2.12, 0.3);
}

TEST(KingProfile, MassProfileMonotone) {
  const KingProfile p(6.0);
  double prev = 0.0;
  for (double r = 0.2; r <= p.tidal_radius(); r += 0.2) {
    const double m = p.mass_within(r);
    EXPECT_GE(m, prev);
    prev = m;
  }
  EXPECT_NEAR(p.mass_within(p.tidal_radius() * 2.0), p.total_mass(), 1e-12);
}

TEST(KingProfile, RejectsSillyW0) {
  EXPECT_THROW(KingProfile(0.0), PreconditionError);
  EXPECT_THROW(KingProfile(50.0), PreconditionError);
}

TEST(MakeKing, HeggieUnitsAndVirial) {
  Rng rng(77);
  const ParticleSet s = make_king(4096, 6.0, rng);
  EXPECT_EQ(s.size(), 4096u);
  EXPECT_NEAR(s.total_mass(), 1.0, 1e-12);
  EXPECT_NEAR(norm(s.center_of_mass()), 0.0, 1e-10);
  const EnergyReport e = compute_energy(s.bodies());
  EXPECT_NEAR(e.total(), units::kTotalEnergy, 1e-6);  // exact by rescale
  EXPECT_NEAR(e.virial_ratio(), 1.0, 1e-6);
}

TEST(MakeKing, AllSpeedsBelowLocalEscape) {
  // f(E) truncation: no particle above the local escape speed (model
  // units before rescale; after rescale the system stays bound).
  Rng rng(78);
  const ParticleSet s = make_king(1024, 5.0, rng);
  const EnergyReport e = compute_energy(s.bodies());
  EXPECT_LT(e.total(), 0.0);
}

TEST(MakeKing, MoreConcentratedThanPlummerCore) {
  // Deep King models have a smaller core (Lagrangian r_10) relative to
  // the half-mass radius than shallow ones.
  Rng rng(79);
  const ParticleSet deep = make_king(4096, 9.0, rng);
  const ParticleSet shallow = make_king(4096, 3.0, rng);
  const double fr[] = {0.1, 0.5};
  const auto rd = lagrangian_radii(deep.bodies(), fr);
  const auto rs = lagrangian_radii(shallow.bodies(), fr);
  EXPECT_LT(rd[0] / rd[1], rs[0] / rs[1]);
}

TEST(MakeKing, DeterministicForSeed) {
  Rng a(80), b(80);
  const ParticleSet s1 = make_king(128, 6.0, a);
  const ParticleSet s2 = make_king(128, 6.0, b);
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i].pos, s2[i].pos);
}

}  // namespace
}  // namespace g6
