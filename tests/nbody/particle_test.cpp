#include "nbody/particle.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace g6 {
namespace {

ParticleSet two_body() {
  ParticleSet s;
  s.add({1.0, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}});
  s.add({3.0, {-1.0, 0.0, 0.0}, {0.0, -1.0, 0.0}});
  return s;
}

TEST(ParticleSet, TotalMass) { EXPECT_DOUBLE_EQ(two_body().total_mass(), 4.0); }

TEST(ParticleSet, CenterOfMass) {
  const ParticleSet s = two_body();
  const Vec3 com = s.center_of_mass();
  EXPECT_DOUBLE_EQ(com.x, (1.0 * 1.0 + 3.0 * -1.0) / 4.0);
  EXPECT_DOUBLE_EQ(com.y, 0.0);
  const Vec3 vcom = s.center_of_mass_velocity();
  EXPECT_DOUBLE_EQ(vcom.y, (1.0 - 3.0) / 4.0);
}

TEST(ParticleSet, ToComFrameZerosMoments) {
  ParticleSet s = two_body();
  s.to_com_frame();
  EXPECT_NEAR(norm(s.center_of_mass()), 0.0, 1e-15);
  EXPECT_NEAR(norm(s.center_of_mass_velocity()), 0.0, 1e-15);
}

TEST(ParticleSet, NormalizeMass) {
  ParticleSet s = two_body();
  s.normalize_mass(1.0);
  EXPECT_NEAR(s.total_mass(), 1.0, 1e-15);
  // Ratios preserved.
  EXPECT_NEAR(s[1].mass / s[0].mass, 3.0, 1e-15);
}

TEST(ParticleSet, EmptySystemGuards) {
  ParticleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.center_of_mass(), PreconditionError);
  EXPECT_THROW(s.normalize_mass(), PreconditionError);
}

}  // namespace
}  // namespace g6
