#include "nbody/snapshot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

TEST(Snapshot, RoundTripIsBitExact) {
  Rng rng(3);
  const ParticleSet original = make_plummer(64, rng);
  std::stringstream ss;
  write_snapshot(ss, original, 2.5);

  double t = 0.0;
  const ParticleSet loaded = read_snapshot(ss, t);
  EXPECT_DOUBLE_EQ(t, 2.5);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].mass, original[i].mass);
    EXPECT_EQ(loaded[i].pos, original[i].pos);
    EXPECT_EQ(loaded[i].vel, original[i].vel);
  }
}

TEST(Snapshot, TruncatedInputThrows) {
  std::stringstream ss("3 0.0\n1.0 0 0 0 0 0 0\n");
  double t;
  EXPECT_THROW(read_snapshot(ss, t), std::runtime_error);
}

TEST(Snapshot, BadHeaderThrows) {
  std::stringstream ss("not_a_number\n");
  double t;
  EXPECT_THROW(read_snapshot(ss, t), std::runtime_error);
}

TEST(Snapshot, FileRoundTrip) {
  Rng rng(4);
  const ParticleSet original = make_plummer(16, rng);
  const std::string path = ::testing::TempDir() + "/snap_test.txt";
  save_snapshot(path, original, 1.0);
  double t = 0.0;
  const ParticleSet loaded = load_snapshot(path, t);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(Snapshot, MissingFileThrows) {
  double t;
  EXPECT_THROW(load_snapshot("/nonexistent/dir/x.txt", t), std::runtime_error);
}

}  // namespace
}  // namespace g6
