#include "nbody/kepler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

constexpr double kTwoPi = 6.283185307179586;

TEST(SolveKepler, ExactForCircular) {
  for (double m : {0.0, 1.0, 3.0, 6.0}) {
    EXPECT_NEAR(solve_kepler(m, 0.0), std::fmod(m, kTwoPi), 1e-14);
  }
}

TEST(SolveKepler, SatisfiesKeplerEquation) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double e = rng.uniform(0.0, 0.95);
    const double m = rng.uniform(-10.0, 10.0);
    const double ea = solve_kepler(m, e);
    const double m_back = ea - e * std::sin(ea);
    const double m_wrapped = std::fmod(std::fmod(m, kTwoPi) + kTwoPi, kTwoPi);
    EXPECT_NEAR(m_back, m_wrapped, 1e-12) << "e=" << e << " M=" << m;
  }
}

TEST(SolveKepler, RejectsUnboundOrbit) {
  EXPECT_THROW(solve_kepler(1.0, 1.5), PreconditionError);
}

TEST(Elements, RoundTripThroughState) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    OrbitalElements el;
    el.semi_major_axis = rng.uniform(0.5, 5.0);
    el.eccentricity = rng.uniform(0.0, 0.9);
    el.inclination = rng.uniform(0.01, 3.0);
    el.ascending_node = rng.uniform(0.0, kTwoPi);
    el.arg_periapsis = rng.uniform(0.0, kTwoPi);
    el.mean_anomaly = rng.uniform(0.0, kTwoPi);
    const double mu = rng.uniform(0.5, 2.0);

    const RelativeState s = elements_to_state(el, mu);
    const OrbitalElements back = state_to_elements(s, mu);
    EXPECT_NEAR(back.semi_major_axis, el.semi_major_axis, 1e-9);
    EXPECT_NEAR(back.eccentricity, el.eccentricity, 1e-9);
    EXPECT_NEAR(back.inclination, el.inclination, 1e-9);
    if (el.eccentricity > 1e-3) {
      EXPECT_NEAR(std::cos(back.mean_anomaly), std::cos(el.mean_anomaly), 1e-6);
      EXPECT_NEAR(std::sin(back.mean_anomaly), std::sin(el.mean_anomaly), 1e-6);
    }
  }
}

TEST(Elements, VisVivaHolds) {
  OrbitalElements el;
  el.semi_major_axis = 2.0;
  el.eccentricity = 0.5;
  el.mean_anomaly = 1.2;
  const double mu = 1.0;
  const RelativeState s = elements_to_state(el, mu);
  const double r = norm(s.pos);
  const double v2 = norm2(s.vel);
  EXPECT_NEAR(v2, mu * (2.0 / r - 1.0 / el.semi_major_axis), 1e-12);
}

TEST(Propagate, FullPeriodReturnsToStart) {
  OrbitalElements el;
  el.semi_major_axis = 1.3;
  el.eccentricity = 0.4;
  el.inclination = 0.3;
  el.mean_anomaly = 0.7;
  const double mu = 1.0;
  const RelativeState s0 = elements_to_state(el, mu);
  const double period = orbital_period(el.semi_major_axis, mu);
  const RelativeState s1 = propagate_kepler(s0, mu, period);
  EXPECT_NEAR(norm(s1.pos - s0.pos), 0.0, 1e-9);
  EXPECT_NEAR(norm(s1.vel - s0.vel), 0.0, 1e-9);
}

TEST(Propagate, EnergyAndMomentumConserved) {
  OrbitalElements el;
  el.semi_major_axis = 1.0;
  el.eccentricity = 0.8;
  const double mu = 1.5;
  RelativeState s = elements_to_state(el, mu);
  const double e0 = orbital_energy(s, mu);
  const Vec3 h0 = cross(s.pos, s.vel);
  for (int i = 0; i < 20; ++i) {
    s = propagate_kepler(s, mu, 0.37);
    EXPECT_NEAR(orbital_energy(s, mu), e0, 1e-10);
    EXPECT_NEAR(norm(cross(s.pos, s.vel) - h0), 0.0, 1e-10);
  }
}

TEST(OrbitalPeriod, KeplersThirdLaw) {
  EXPECT_NEAR(orbital_period(1.0, 1.0), kTwoPi, 1e-12);
  EXPECT_NEAR(orbital_period(4.0, 1.0), 8.0 * kTwoPi, 1e-9);
}

}  // namespace
}  // namespace g6
