#include "nbody/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nbody/diagnostics.hpp"
#include "nbody/kepler.hpp"
#include "util/units.hpp"

namespace g6 {
namespace {

TEST(Plummer, HeggieUnitsHold) {
  Rng rng(11);
  const ParticleSet s = make_plummer(4096, rng);
  EXPECT_EQ(s.size(), 4096u);
  EXPECT_NEAR(s.total_mass(), 1.0, 1e-12);
  EXPECT_NEAR(norm(s.center_of_mass()), 0.0, 1e-12);
  EXPECT_NEAR(norm(s.center_of_mass_velocity()), 0.0, 1e-12);

  // E = -1/4 and virial equilibrium 2T/|W| = 1, within sampling noise.
  const EnergyReport e = compute_energy(s.bodies());
  EXPECT_NEAR(e.total(), units::kTotalEnergy, 0.02);
  EXPECT_NEAR(e.virial_ratio(), 1.0, 0.08);
}

TEST(Plummer, HalfMassRadiusMatchesTheory) {
  // Plummer half-mass radius: a * 1/sqrt(2^(2/3)-1) ~ 1.3048 a, with
  // a = 3*pi/16 in Heggie units -> r_h ~ 0.769.
  Rng rng(13);
  const ParticleSet s = make_plummer(8192, rng);
  const double fractions[] = {0.5};
  const auto r = lagrangian_radii(s.bodies(), fractions);
  EXPECT_NEAR(r[0], 0.7686, 0.05);
}

TEST(Plummer, RespectsRmaxCutoff) {
  Rng rng(17);
  const ParticleSet s = make_plummer(2048, rng, 5.0);
  for (const auto& b : s.bodies()) {
    EXPECT_LT(norm(b.pos), 5.5);  // COM shift allows slight excess
  }
}

TEST(Plummer, DeterministicForSeed) {
  Rng r1(21), r2(21);
  const ParticleSet a = make_plummer(128, r1);
  const ParticleSet b = make_plummer(128, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pos, b[i].pos);
    EXPECT_EQ(a[i].vel, b[i].vel);
  }
}

TEST(PlummerWithBh, MassBudgetAndSymmetry) {
  Rng rng(23);
  const ParticleSet s = make_plummer_with_bh_binary(1000, rng, 0.005, 0.5);
  EXPECT_EQ(s.size(), 1002u);
  EXPECT_NEAR(s.total_mass(), 1.0, 1e-12);
  // The two black holes are the last two bodies and carry 0.5% each.
  const Body& bh1 = s[1000];
  const Body& bh2 = s[1001];
  EXPECT_NEAR(bh1.mass, 0.005, 1e-12);
  EXPECT_NEAR(bh2.mass, 0.005, 1e-12);
  // Mass ratio to a field particle: f*n/(1-2f) = 0.005*1000/0.99.
  EXPECT_NEAR(bh1.mass / s[0].mass, 0.005 * 1000.0 / 0.99, 1e-9);
  // Separation as requested.
  EXPECT_NEAR(norm(bh1.pos - bh2.pos), 0.5, 1e-9);
}

TEST(PlannetesimalDisk, OrbitsAreNearCircularKepler) {
  Rng rng(29);
  DiskParams p;
  const ParticleSet s = make_planetesimal_disk(500, rng, p);
  EXPECT_EQ(s.size(), 501u);
  EXPECT_NEAR(s[0].mass, 1.0, 1e-12);  // star

  for (std::size_t i = 1; i < s.size(); ++i) {
    const RelativeState rel{s[i].pos - s[0].pos, s[i].vel - s[0].vel};
    const OrbitalElements el =
        state_to_elements(rel, units::kGravity * (s[0].mass + s[i].mass));
    EXPECT_GE(el.semi_major_axis, p.r_inner * 0.99);
    EXPECT_LE(el.semi_major_axis, p.r_outer * 1.01);
    EXPECT_LT(el.eccentricity, 0.2);
    EXPECT_LT(el.inclination, 0.2);
  }
}

TEST(PlannetesimalDisk, DiskMassSharedEqually) {
  Rng rng(31);
  DiskParams p;
  p.disk_mass = 1e-4;
  const ParticleSet s = make_planetesimal_disk(100, rng, p);
  double disk_mass = 0.0;
  for (std::size_t i = 1; i < s.size(); ++i) disk_mass += s[i].mass;
  EXPECT_NEAR(disk_mass, 1e-4, 1e-15);
}

TEST(UniformSphere, RadiusAndVirialRatio) {
  Rng rng(37);
  const ParticleSet s = make_uniform_sphere(4096, rng, 2.0, 0.5);
  for (const auto& b : s.bodies()) EXPECT_LT(norm(b.pos), 2.3);
  const EnergyReport e = compute_energy(s.bodies());
  // Target was set against the analytic W of the smooth sphere, so allow
  // discreteness noise.
  EXPECT_NEAR(e.virial_ratio(), 0.5, 0.1);
}

TEST(UniformSphere, ColdStartHasNoKinetic) {
  Rng rng(41);
  const ParticleSet s = make_uniform_sphere(256, rng, 1.0, 0.0);
  const EnergyReport e = compute_energy(s.bodies());
  EXPECT_EQ(e.kinetic, 0.0);
}

}  // namespace
}  // namespace g6
