#include "nbody/diagnostics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace g6 {
namespace {

TEST(Energy, TwoBodyAnalytic) {
  ParticleSet s;
  s.add({2.0, {1.0, 0.0, 0.0}, {0.0, 0.5, 0.0}});
  s.add({3.0, {-1.0, 0.0, 0.0}, {0.0, -0.5, 0.0}});
  const EnergyReport e = compute_energy(s.bodies());
  EXPECT_DOUBLE_EQ(e.kinetic, 0.5 * 2.0 * 0.25 + 0.5 * 3.0 * 0.25);
  EXPECT_DOUBLE_EQ(e.potential, -2.0 * 3.0 / 2.0);
  EXPECT_DOUBLE_EQ(e.total(), e.kinetic + e.potential);
}

TEST(Energy, SofteningWeakensPotential) {
  ParticleSet s;
  s.add({1.0, {0.5, 0.0, 0.0}, {}});
  s.add({1.0, {-0.5, 0.0, 0.0}, {}});
  const EnergyReport hard = compute_energy(s.bodies(), 0.0);
  const EnergyReport soft = compute_energy(s.bodies(), 1.0);
  EXPECT_DOUBLE_EQ(hard.potential, -1.0);
  EXPECT_DOUBLE_EQ(soft.potential, -1.0 / std::sqrt(2.0));
}

TEST(Energy, VirialRatioOfCircularBinary) {
  // Circular binary: 2T/|W| = 1.
  ParticleSet s;
  s.add({0.5, {0.5, 0.0, 0.0}, {0.0, 0.5, 0.0}});
  s.add({0.5, {-0.5, 0.0, 0.0}, {0.0, -0.5, 0.0}});
  const EnergyReport e = compute_energy(s.bodies());
  EXPECT_NEAR(e.virial_ratio(), 1.0, 1e-12);
}

TEST(AngularMomentum, CircularBinary) {
  ParticleSet s;
  s.add({0.5, {0.5, 0.0, 0.0}, {0.0, 0.5, 0.0}});
  s.add({0.5, {-0.5, 0.0, 0.0}, {0.0, -0.5, 0.0}});
  const Vec3 l = compute_angular_momentum(s.bodies());
  EXPECT_DOUBLE_EQ(l.z, 2.0 * (0.5 * 0.5 * 0.5));
  EXPECT_DOUBLE_EQ(l.x, 0.0);
}

TEST(LagrangianRadii, SimpleShellStructure) {
  // 4 equal masses at radii 1,2,3,4.
  ParticleSet s;
  for (int i = 1; i <= 4; ++i) {
    s.add({0.25, {static_cast<double>(i), 0.0, 0.0}, {}});
  }
  // COM at x=2.5; radii about COM: 1.5, 0.5, 0.5, 1.5.
  const double fracs[] = {0.25, 0.5, 1.0};
  const auto r = lagrangian_radii(s.bodies(), fracs);
  EXPECT_DOUBLE_EQ(r[0], 0.5);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
  EXPECT_DOUBLE_EQ(r[2], 1.5);
}

TEST(LagrangianRadii, RejectsBadFraction) {
  ParticleSet s;
  s.add({1.0, {}, {}});
  const double bad[] = {1.5};
  EXPECT_THROW(lagrangian_radii(s.bodies(), bad), PreconditionError);
}

}  // namespace
}  // namespace g6
