#include <gtest/gtest.h>

#include <cmath>

#include "nbody/diagnostics.hpp"
#include "nbody/models.hpp"
#include "util/units.hpp"

namespace g6 {
namespace {

TEST(Hernquist, HeggieUnitsAndVirial) {
  Rng rng(3);
  const ParticleSet s = make_hernquist(8192, rng);
  EXPECT_NEAR(s.total_mass(), 1.0, 1e-12);
  const EnergyReport e = compute_energy(s.bodies());
  // Truncation at rmax (M(<100a) = 0.98) and sampling noise leave a few
  // percent of extra binding.
  EXPECT_NEAR(e.total(), units::kTotalEnergy, 0.05);
  EXPECT_NEAR(e.virial_ratio(), 1.0, 0.08);
}

TEST(Hernquist, HalfMassRadiusMatchesAnalytic) {
  // M(r) = r^2/(r+a)^2 = 1/2 at r = a (1+sqrt 2); with the exact Heggie
  // scaling lambda = 1/3: r_h = (1+sqrt2)/3 ~ 0.8047.
  Rng rng(4);
  const ParticleSet s = make_hernquist(16384, rng);
  const double fr[] = {0.5};
  const double rh = lagrangian_radii(s.bodies(), fr)[0];
  EXPECT_NEAR(rh, (1.0 + std::sqrt(2.0)) / 3.0, 0.08);
}

TEST(Hernquist, CuspierThanPlummer) {
  // rho ~ 1/r at the center: the 5% Lagrangian radius is much smaller
  // relative to r_h than Plummer's.
  Rng rng(5);
  const ParticleSet h = make_hernquist(8192, rng);
  const ParticleSet p = make_plummer(8192, rng);
  const double fr[] = {0.05, 0.5};
  const auto rh = lagrangian_radii(h.bodies(), fr);
  const auto rp = lagrangian_radii(p.bodies(), fr);
  EXPECT_LT(rh[0] / rh[1], 0.6 * rp[0] / rp[1]);
}

TEST(Hernquist, AllBoundAndWithinCutoff) {
  Rng rng(6);
  const double rmax = 20.0;
  const ParticleSet s = make_hernquist(2048, rng, rmax);
  for (const auto& b : s.bodies()) {
    EXPECT_LT(norm(b.pos), rmax);  // rmax in model units > Heggie units
  }
  EXPECT_LT(compute_energy(s.bodies()).total(), 0.0);
}

}  // namespace
}  // namespace g6
