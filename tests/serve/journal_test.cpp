// White-box tests for the write-ahead job journal: encode/decode
// round-trips, the strict-key contract (unknown AND missing keys both
// reject), sequence validation, and torn-tail tolerance — the exact
// failure envelope the append protocol guarantees.
#include "serve/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace g6::serve {
namespace {

namespace fs = std::filesystem;

JobSpec demo_spec() {
  JobSpec s;
  s.name = "cluster-a";
  s.model = "plummer";
  s.n = 512;
  s.w0 = 5.0;
  s.t_end = 0.25;
  s.eps = 1.0 / 64.0;
  s.eta = 0.01;  // not exactly representable: exercises the 17-digit rule
  s.seed = 42;
  s.boards = 2;
  s.boards_min = 1;
  s.boards_max = 4;
  s.priority = Priority::kInteractive;
  s.deadline_rounds = 30;
  s.chaos_fail_quanta = 1;
  return s;
}

ServiceConfig demo_config() {
  ServiceConfig c;
  c.max_queue_depth = 8;
  c.quantum_blocksteps = 16;
  c.max_requeues = 2;
  c.max_job_failures = 3;
  c.backoff_base_rounds = 2;
  c.durability.journal_path = "serve.wal";
  c.durability.checkpoint_dir = "ckpts";
  c.durability.checkpoint_every_quanta = 4;
  c.board_deaths.push_back({5, 1});
  return c;
}

TEST(JournalRecordTest, TypeNamesRoundTrip) {
  for (int t = 0; t <= static_cast<int>(JournalRecordType::kLeaseResized);
       ++t) {
    const auto rt = static_cast<JournalRecordType>(t);
    JournalRecord rec;
    rec.seq = 1;
    rec.type = rt;
    // kOpen needs a schema; others take defaults.
    const JournalRecord back = decode_record(encode_record(rec));
    EXPECT_EQ(static_cast<int>(back.type), t)
        << journal_record_type_name(rt);
  }
}

TEST(JournalRecordTest, OpenRecordRoundTripsConfig) {
  JournalRecord rec;
  rec.seq = 1;
  rec.type = JournalRecordType::kOpen;
  rec.config = demo_config();
  const JournalRecord back = decode_record(encode_record(rec));
  EXPECT_EQ(back.config.max_queue_depth, 8u);
  EXPECT_EQ(back.config.quantum_blocksteps, 16u);
  EXPECT_EQ(back.config.max_requeues, 2);
  EXPECT_EQ(back.config.max_job_failures, 3);
  EXPECT_EQ(back.config.backoff_base_rounds, 2u);
  EXPECT_EQ(back.config.durability.checkpoint_dir, "ckpts");
  EXPECT_EQ(back.config.durability.checkpoint_every_quanta, 4u);
  ASSERT_EQ(back.config.board_deaths.size(), 1u);
  EXPECT_EQ(back.config.board_deaths[0].round, 5u);
  EXPECT_EQ(back.config.board_deaths[0].board, 1u);
}

TEST(JournalRecordTest, SubmittedRecordRoundTripsSpecBitExactly) {
  JournalRecord rec;
  rec.seq = 2;
  rec.type = JournalRecordType::kSubmitted;
  rec.job = 1;
  rec.spec = demo_spec();
  const JournalRecord back = decode_record(encode_record(rec));
  EXPECT_EQ(back.job, 1u);
  EXPECT_EQ(back.spec.name, "cluster-a");
  EXPECT_EQ(back.spec.model, "plummer");
  EXPECT_EQ(back.spec.n, 512u);
  EXPECT_EQ(back.spec.w0, 5.0);
  EXPECT_EQ(back.spec.t_end, 0.25);
  EXPECT_EQ(back.spec.eps, 1.0 / 64.0);
  EXPECT_EQ(back.spec.eta, 0.01);  // bit-exact via 17 significant digits
  EXPECT_EQ(back.spec.seed, 42u);
  EXPECT_EQ(back.spec.boards, 2u);
  EXPECT_EQ(back.spec.boards_min, 1u);
  EXPECT_EQ(back.spec.boards_max, 4u);
  EXPECT_EQ(back.spec.priority, Priority::kInteractive);
  EXPECT_EQ(back.spec.deadline_rounds, 30u);
  EXPECT_EQ(back.spec.chaos_fail_quanta, 1);
}

TEST(JournalRecordTest, ProgressRecordsRoundTrip) {
  JournalRecord rec;
  rec.seq = 9;
  rec.round = 12;
  rec.type = JournalRecordType::kFinished;
  rec.job = 3;
  rec.quanta = 7;
  rec.t = 0.2499999999999999;
  rec.e0 = -0.2500000000000017;
  rec.e_final = -0.2500000000000018;
  rec.steps = 12345;
  rec.blocksteps = 678;
  const JournalRecord back = decode_record(encode_record(rec));
  EXPECT_EQ(back.round, 12u);
  EXPECT_EQ(back.quanta, 7u);
  EXPECT_EQ(back.t, rec.t);
  EXPECT_EQ(back.e0, rec.e0);
  EXPECT_EQ(back.e_final, rec.e_final);
  EXPECT_EQ(back.steps, 12345u);
  EXPECT_EQ(back.blocksteps, 678u);
}

TEST(JournalRecordTest, RequeueRecordRoundTripsPolicyCounters) {
  JournalRecord rec;
  rec.seq = 4;
  rec.type = JournalRecordType::kRequeued;
  rec.job = 2;
  rec.reason = "retry";
  rec.requeues = 1;
  rec.failures = 2;
  rec.hold_until = 17;
  const JournalRecord back = decode_record(encode_record(rec));
  EXPECT_EQ(back.reason, "retry");
  EXPECT_EQ(back.requeues, 1);
  EXPECT_EQ(back.failures, 2);
  EXPECT_EQ(back.hold_until, 17u);
}

TEST(JournalRecordTest, LeaseResizedRecordRoundTrips) {
  JournalRecord rec;
  rec.seq = 6;
  rec.round = 9;
  rec.type = JournalRecordType::kLeaseResized;
  rec.job = 4;
  rec.boards = 3;
  rec.reason = "grow";
  const JournalRecord back = decode_record(encode_record(rec));
  EXPECT_EQ(back.type, JournalRecordType::kLeaseResized);
  EXPECT_EQ(back.job, 4u);
  EXPECT_EQ(back.boards, 3u);
  EXPECT_EQ(back.reason, "grow");
  // Strict keys: a lease-resized record without its new size is corrupt.
  EXPECT_THROW(
      decode_record("{\"seq\":6,\"type\":\"lease-resized\",\"round\":9,"
                    "\"job\":4,\"reason\":\"grow\"}"),
      JournalError);
}

TEST(JournalRecordTest, UnknownKeyIsRejected) {
  JournalRecord rec;
  rec.seq = 3;
  rec.type = JournalRecordType::kAdmitted;
  rec.job = 1;
  std::string line = encode_record(rec);
  line.insert(line.size() - 1, ",\"surprise\":1");
  EXPECT_THROW(decode_record(line), JournalError);
}

TEST(JournalRecordTest, MissingKeyIsRejected) {
  // Strict keys both ways: dropping a required field must fail too.
  EXPECT_THROW(decode_record("{\"seq\":3,\"type\":\"admitted\"}"),
               JournalError);
}

TEST(JournalRecordTest, WrongSchemaAndTypesAreRejected) {
  EXPECT_THROW(decode_record("not json at all"), JournalError);
  EXPECT_THROW(decode_record("[1,2,3]"), JournalError);
  EXPECT_THROW(decode_record("{\"seq\":1,\"round\":0}"), JournalError);
  EXPECT_THROW(
      decode_record(
          "{\"seq\":1,\"type\":\"no-such-type\",\"round\":0}"),
      JournalError);
  EXPECT_THROW(
      decode_record("{\"seq\":1,\"type\":\"board-death\",\"round\":0,"
                    "\"board\":\"one\"}"),
      JournalError);
  EXPECT_THROW(
      decode_record("{\"seq\":-1,\"type\":\"board-death\",\"round\":0,"
                    "\"board\":1}"),
      JournalError);
}

TEST(JournalRecordTest, RunTagFingerprintsTheDynamics) {
  const JobSpec a = demo_spec();
  JobSpec b = a;
  EXPECT_EQ(job_run_tag(a), job_run_tag(b));
  b.seed = 43;
  EXPECT_NE(job_run_tag(a), job_run_tag(b));
  b = a;
  b.boards = 1;  // lease size shapes the BFP pipeline: part of the key
  EXPECT_NE(job_run_tag(a), job_run_tag(b));
}

class JournalFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -j runs cases concurrently and a shared
    // directory races SetUp's remove_all against a sibling's journal writes.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("g6_journal_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "serve.wal").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  void spit(const std::string& text) {
    std::ofstream os(path_, std::ios::trunc);
    os << text;
  }

  std::string open_line(std::uint64_t seq = 1) {
    JournalRecord rec;
    rec.seq = seq;
    rec.type = JournalRecordType::kOpen;
    rec.config = demo_config();
    return encode_record(rec);
  }

  std::string admitted_line(std::uint64_t seq, JobId job) {
    JournalRecord rec;
    rec.seq = seq;
    rec.type = JournalRecordType::kAdmitted;
    rec.job = job;
    return encode_record(rec);
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(JournalFileTest, AppendAndReplayRoundTrip) {
  {
    Journal j(path_, /*truncate=*/true);
    JournalRecord open;
    open.type = JournalRecordType::kOpen;
    open.config = demo_config();
    j.append(open);
    JournalRecord sub;
    sub.type = JournalRecordType::kSubmitted;
    sub.job = 1;
    sub.spec = demo_spec();
    j.append(sub);
    JournalRecord adm;
    adm.type = JournalRecordType::kAdmitted;
    adm.job = 1;
    j.append(adm);
    EXPECT_EQ(j.next_seq(), 4u);
  }
  const JournalReplay replay = replay_journal(path_);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].type, JournalRecordType::kOpen);
  EXPECT_EQ(replay.records[1].spec.name, "cluster-a");
  EXPECT_EQ(replay.records[2].job, 1u);
}

TEST_F(JournalFileTest, AppendModeContinuesSequence) {
  {
    Journal j(path_, /*truncate=*/true);
    JournalRecord open;
    open.type = JournalRecordType::kOpen;
    open.config = demo_config();
    j.append(open);
  }
  {
    Journal j(path_, /*truncate=*/false, /*start_seq=*/2);
    JournalRecord rec;
    rec.type = JournalRecordType::kRecovered;
    rec.records = 1;
    j.append(rec);
  }
  const JournalReplay replay = replay_journal(path_);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[1].type, JournalRecordType::kRecovered);
  EXPECT_EQ(replay.records[1].records, 1u);
}

TEST_F(JournalFileTest, TornTailIsDroppedAndFlagged) {
  spit(open_line() + "\n" + admitted_line(2, 1) + "\n" +
       "{\"seq\":3,\"type\":\"fini");  // kill -9 mid-append
  const JournalReplay replay = replay_journal(path_);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.records.size(), 2u);
}

TEST_F(JournalFileTest, CompleteMalformedLineIsFatal) {
  // A torn TAIL is the only tolerated damage; a malformed line followed
  // by a newline means real corruption — refuse to recover from it.
  spit(open_line() + "\n" + "{\"seq\":2,\"type\":\"fini\n");
  EXPECT_THROW(replay_journal(path_), JournalError);
}

TEST_F(JournalFileTest, NonConsecutiveSequenceIsFatal) {
  spit(open_line() + "\n" + admitted_line(3, 1) + "\n");
  EXPECT_THROW(replay_journal(path_), JournalError);
}

TEST_F(JournalFileTest, FirstRecordMustBeOpen) {
  spit(admitted_line(1, 1) + "\n");
  EXPECT_THROW(replay_journal(path_), JournalError);
}

TEST_F(JournalFileTest, DuplicateOpenIsFatal) {
  spit(open_line(1) + "\n" + open_line(2) + "\n");
  EXPECT_THROW(replay_journal(path_), JournalError);
}

TEST_F(JournalFileTest, MissingEmptyAndTornOpenJournalsAreFatal) {
  EXPECT_THROW(replay_journal((dir_ / "nope.wal").string()), JournalError);
  spit("");
  EXPECT_THROW(replay_journal(path_), JournalError);
  spit("{\"seq\":1,\"type\":\"open\"");  // torn before the only newline
  EXPECT_THROW(replay_journal(path_), JournalError);
}

}  // namespace
}  // namespace g6::serve
