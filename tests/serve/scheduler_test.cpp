// Scheduler: the serving loop's contract. The load-bearing property is
// DETERMINISTIC ISOLATION — a job's final state is bit-identical to the
// same spec run standalone, no matter which neighbors it shared the
// machine with, how often it was preempted, or whether its boards died
// under it. The rest covers the scheduling policy itself: round-robin
// preemption, priority classes, revocation re-queue budgets, and error
// containment (one diverging job must not hurt the others).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "grape/engine.hpp"
#include "hermite/integrator.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "util/check.hpp"

namespace g6::serve {
namespace {

/// A small 1-board-per-host machine shape: pool size = `boards`.
MachineConfig tiny_machine(std::size_t boards) {
  MachineConfig mc;
  mc.boards_per_host = boards;
  mc.hosts_per_cluster = 1;
  mc.clusters = 1;
  return mc;
}

JobSpec small_job(const std::string& name, unsigned seed,
                  std::size_t boards = 1) {
  JobSpec s;
  s.name = name;
  s.model = "plummer";
  s.n = 48;
  s.t_end = 0.0625;
  s.seed = seed;
  s.boards = boards;
  return s;
}

/// Reference: the exact computation the service promises — same spec,
/// same engine shape, run alone in one evolve() call.
ParticleSet run_standalone(const JobSpec& spec, const MachineConfig& machine) {
  MachineConfig mc = machine;
  mc.boards_per_host = spec.boards;
  GrapeForceEngine engine(mc, NumberFormats{}, spec.eps);
  HermiteConfig hc;
  hc.eta = spec.eta;
  HermiteIntegrator integ(build_model(spec), engine, hc);
  integ.evolve(spec.t_end);
  return integ.state_at_current_time();
}

void expect_bit_identical(const ParticleSet& a, const ParticleSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int k = 0; k < 3; ++k) {
      ASSERT_EQ(a[i].pos[k], b[i].pos[k]) << "pos, particle " << i;
      ASSERT_EQ(a[i].vel[k], b[i].vel[k]) << "vel, particle " << i;
    }
    ASSERT_EQ(a[i].mass, b[i].mass);
  }
}

TEST(ServeScheduler, JobsBitIdenticalAloneVsShared) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 4;  // force several quanta per job
  Scheduler sched(cfg);

  const JobSpec a = small_job("a", 11);
  const JobSpec b = small_job("b", 22);
  const SubmitResult ra = sched.submit(a);
  const SubmitResult rb = sched.submit(b);
  ASSERT_TRUE(ra.accepted);
  ASSERT_TRUE(rb.accepted);
  sched.run_until_drained();

  ASSERT_EQ(sched.state(ra.id), JobState::kCompleted);
  ASSERT_EQ(sched.state(rb.id), JobState::kCompleted);
  double ta = 0.0, tb = 0.0;
  expect_bit_identical(sched.final_state(ra.id, &ta),
                       run_standalone(a, cfg.machine));
  expect_bit_identical(sched.final_state(rb.id, &tb),
                       run_standalone(b, cfg.machine));
  EXPECT_EQ(ta, a.t_end);
  EXPECT_EQ(tb, b.t_end);
}

TEST(ServeScheduler, PreemptionTimeSharesOneBoard) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(1);
  cfg.quantum_blocksteps = 2;
  Scheduler sched(cfg);

  const JobSpec a = small_job("a", 5);
  const JobSpec b = small_job("b", 6);
  const SubmitResult ra = sched.submit(a);
  const SubmitResult rb = sched.submit(b);
  ASSERT_TRUE(ra.accepted && rb.accepted);
  sched.run_until_drained();

  ASSERT_EQ(sched.state(ra.id), JobState::kCompleted);
  ASSERT_EQ(sched.state(rb.id), JobState::kCompleted);
  // One board, two live jobs: the only way both finish is cooperative
  // yielding at quantum boundaries.
  EXPECT_GE(sched.stats().preemptions, 2u);
  EXPECT_GE(sched.report(ra.id).preemptions, 1u);
  EXPECT_GE(sched.report(rb.id).preemptions, 1u);
  // Time-sharing must not perturb the physics.
  double t = 0.0;
  expect_bit_identical(sched.final_state(ra.id, &t),
                       run_standalone(a, cfg.machine));
  expect_bit_identical(sched.final_state(rb.id, &t),
                       run_standalone(b, cfg.machine));
}

TEST(ServeScheduler, InteractiveClassWaitsLess) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(1);
  cfg.quantum_blocksteps = 2;
  Scheduler sched(cfg);

  JobSpec batch = small_job("batch", 7);
  JobSpec inter = small_job("inter", 8);
  inter.priority = Priority::kInteractive;
  // Batch submitted FIRST; the interactive job still dispatches first
  // (class order beats submission order) and is never preempted by a
  // batch waiter (victims must be of the same or lower priority).
  const SubmitResult rb = sched.submit(batch);
  const SubmitResult ri = sched.submit(inter);
  ASSERT_TRUE(rb.accepted && ri.accepted);
  sched.run_until_drained();

  ASSERT_EQ(sched.state(ri.id), JobState::kCompleted);
  ASSERT_EQ(sched.state(rb.id), JobState::kCompleted);
  EXPECT_EQ(sched.report(ri.id).preemptions, 0u);
  EXPECT_LE(sched.report(ri.id).wait_s, sched.report(rb.id).wait_s);
}

TEST(ServeScheduler, BoardDeathRevokesAndRequeues) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 2;
  // Board 0 dies after the job's first quantum. The job holds board 0
  // (lowest-first first fit), loses the lease, and must resume on board 1
  // from its last quantum boundary — bit-identically.
  cfg.board_deaths.push_back({1, 0});
  Scheduler sched(cfg);

  const JobSpec a = small_job("a", 33);
  const SubmitResult ra = sched.submit(a);
  ASSERT_TRUE(ra.accepted);
  sched.run_until_drained();

  ASSERT_EQ(sched.state(ra.id), JobState::kCompleted);
  const JobReport rep = sched.report(ra.id);
  EXPECT_EQ(rep.revocations, 1u);
  EXPECT_EQ(sched.stats().revocations, 1u);
  EXPECT_EQ(sched.stats().boards_dead, 1u);
  EXPECT_EQ(sched.healthy_boards(), 1u);
  double t = 0.0;
  expect_bit_identical(sched.final_state(ra.id, &t),
                       run_standalone(a, cfg.machine));
}

TEST(ServeScheduler, RequeueBudgetExhaustionFailsTheJob) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(3);
  cfg.quantum_blocksteps = 1;  // job stays live across several rounds
  cfg.max_requeues = 1;
  cfg.board_deaths.push_back({1, 0});
  cfg.board_deaths.push_back({2, 1});
  Scheduler sched(cfg);

  const SubmitResult ra = sched.submit(small_job("doomed", 9));
  ASSERT_TRUE(ra.accepted);
  sched.run_until_drained();

  ASSERT_EQ(sched.state(ra.id), JobState::kFailed);
  const JobReport rep = sched.report(ra.id);
  EXPECT_EQ(rep.revocations, 2u);
  // Distinct from kBoardsUnavailable: the machine still has boards; the
  // job burned its re-queue budget (grape6-serve-report-v1 field).
  EXPECT_EQ(rep.reject_reason, RejectReason::kRequeueExhausted);
  EXPECT_NE(rep.message.find("re-queue budget exhausted"), std::string::npos);
  EXPECT_EQ(rep.requeues, 1);
  EXPECT_EQ(sched.stats().failed, 1u);
  EXPECT_EQ(sched.stats().requeues, 1u);
}

TEST(ServeScheduler, MachineDegradedBelowRequestFailsQueuedJob) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.board_deaths.push_back({0, 0});
  cfg.board_deaths.push_back({0, 1});
  Scheduler sched(cfg);

  const SubmitResult ra = sched.submit(small_job("starved", 3));
  ASSERT_TRUE(ra.accepted);  // machine was whole at submission
  sched.run_until_drained();

  ASSERT_EQ(sched.state(ra.id), JobState::kFailed);
  const JobReport rep = sched.report(ra.id);
  EXPECT_EQ(rep.reject_reason, RejectReason::kBoardsUnavailable);
  EXPECT_NE(rep.message.find("degraded"), std::string::npos);
  EXPECT_EQ(sched.healthy_boards(), 0u);
}

TEST(ServeScheduler, RevocationBeforeFirstQuantumRestartsCleanly) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 64;
  // Board 0 dies at round 0, BEFORE the first dispatch of that round —
  // the job never runs on it; it starts fresh on board 1.
  cfg.board_deaths.push_back({0, 0});
  Scheduler sched(cfg);

  const JobSpec a = small_job("a", 17);
  const SubmitResult ra = sched.submit(a);
  ASSERT_TRUE(ra.accepted);
  sched.run_until_drained();

  ASSERT_EQ(sched.state(ra.id), JobState::kCompleted);
  double t = 0.0;
  expect_bit_identical(sched.final_state(ra.id, &t),
                       run_standalone(a, cfg.machine));
}

TEST(ServeScheduler, BackfillPastABlockedBigJob) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 2;
  Scheduler sched(cfg);

  // big wants the whole machine; small can backfill on one board while
  // big's turn is being assembled by preemption.
  const JobSpec big = small_job("big", 1, 2);
  const JobSpec sm1 = small_job("sm1", 2, 1);
  const JobSpec sm2 = small_job("sm2", 3, 1);
  const SubmitResult r1 = sched.submit(sm1);
  const SubmitResult r2 = sched.submit(big);
  const SubmitResult r3 = sched.submit(sm2);
  ASSERT_TRUE(r1.accepted && r2.accepted && r3.accepted);
  sched.run_until_drained();

  ASSERT_EQ(sched.state(r1.id), JobState::kCompleted);
  ASSERT_EQ(sched.state(r2.id), JobState::kCompleted);
  ASSERT_EQ(sched.state(r3.id), JobState::kCompleted);
  double t = 0.0;
  expect_bit_identical(sched.final_state(r2.id, &t),
                       run_standalone(big, cfg.machine));
}

TEST(ServeScheduler, SubmissionsRejectWhileDraining) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(1);
  Scheduler sched(cfg);
  sched.drain();
  const SubmitResult r = sched.submit(small_job("late", 4));
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reason, RejectReason::kDraining);
  EXPECT_EQ(sched.state(r.id), JobState::kRejected);
  sched.run_until_drained();  // nothing to do; must return immediately
  EXPECT_EQ(sched.stats().completed, 0u);
}

TEST(ServeScheduler, SchedulingIsDeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t* preemptions, std::uint64_t* rounds) {
    ServiceConfig cfg;
    // 3 boards so the 2-board job stays satisfiable after board 0 dies:
    // the run exercises preemption AND revocation, yet everyone completes.
    cfg.machine = tiny_machine(3);
    cfg.quantum_blocksteps = 2;
    cfg.board_deaths.push_back({2, 0});
    Scheduler sched(cfg);
    std::vector<SubmitResult> rs;
    rs.push_back(sched.submit(small_job("a", 1)));
    rs.push_back(sched.submit(small_job("b", 2)));
    rs.push_back(sched.submit(small_job("c", 3, 2)));
    sched.run_until_drained();
    *preemptions = sched.stats().preemptions;
    *rounds = sched.stats().rounds;
    double t = 0.0;
    ParticleSet out = sched.final_state(rs[2].id, &t);
    return out;
  };
  std::uint64_t p1 = 0, n1 = 0, p2 = 0, n2 = 0;
  const ParticleSet s1 = run_once(&p1, &n1);
  const ParticleSet s2 = run_once(&p2, &n2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(n1, n2);
  expect_bit_identical(s1, s2);
}

TEST(ServeScheduler, FinalStateDemandsCompletion) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(1);
  Scheduler sched(cfg);
  const SubmitResult r = sched.submit(small_job("pending", 2));
  ASSERT_TRUE(r.accepted);
  EXPECT_THROW(sched.final_state(r.id, nullptr), PreconditionError);
  EXPECT_THROW(sched.report(0), PreconditionError);
  EXPECT_THROW(sched.report(99), PreconditionError);
}

}  // namespace
}  // namespace g6::serve
