// Per-job serving policies: deadlines on the logical round clock,
// transient-fault retry with exponential virtual-time backoff, and
// poison-job quarantine. The containment property throughout: a policy
// firing on one job must never perturb its neighbors' physics.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "grape/engine.hpp"
#include "hermite/integrator.hpp"
#include "serve/job.hpp"
#include "serve/manifest.hpp"
#include "serve/scheduler.hpp"

namespace g6::serve {
namespace {

namespace fs = std::filesystem;

MachineConfig tiny_machine(std::size_t boards) {
  MachineConfig mc;
  mc.boards_per_host = boards;
  mc.hosts_per_cluster = 1;
  mc.clusters = 1;
  return mc;
}

JobSpec small_job(const std::string& name, unsigned seed,
                  std::size_t boards = 1) {
  JobSpec s;
  s.name = name;
  s.model = "plummer";
  s.n = 48;
  s.t_end = 0.0625;
  s.seed = seed;
  s.boards = boards;
  return s;
}

ParticleSet run_standalone(const JobSpec& spec, const MachineConfig& machine) {
  MachineConfig mc = machine;
  mc.boards_per_host = spec.boards;
  GrapeForceEngine engine(mc, NumberFormats{}, spec.eps);
  HermiteConfig hc;
  hc.eta = spec.eta;
  HermiteIntegrator integ(build_model(spec), engine, hc);
  integ.evolve(spec.t_end);
  return integ.state_at_current_time();
}

void expect_bit_identical(const ParticleSet& a, const ParticleSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int k = 0; k < 3; ++k) {
      ASSERT_EQ(a[i].pos[k], b[i].pos[k]) << "pos, particle " << i;
      ASSERT_EQ(a[i].vel[k], b[i].vel[k]) << "vel, particle " << i;
    }
  }
}

TEST(ServePolicy, DeadlineExceededFailsJobWithDistinctReason) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(1);
  cfg.quantum_blocksteps = 1;  // many rounds per job
  Scheduler sched(cfg);

  JobSpec doomed = small_job("doomed", 9);
  doomed.deadline_rounds = 2;  // cannot possibly finish in 2 rounds
  const SubmitResult r = sched.submit(doomed);
  ASSERT_TRUE(r.accepted);
  sched.run_until_drained();

  ASSERT_EQ(sched.state(r.id), JobState::kFailed);
  const JobReport rep = sched.report(r.id);
  EXPECT_EQ(rep.reject_reason, RejectReason::kDeadlineExceeded);
  EXPECT_NE(rep.message.find("deadline"), std::string::npos);
  EXPECT_LE(sched.stats().rounds, 4u);  // enforced promptly, not at t_end
}

TEST(ServePolicy, DeadlineFiringLeavesNeighborsBitIdentical) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 2;
  Scheduler sched(cfg);

  const JobSpec healthy = small_job("healthy", 11);
  JobSpec doomed = small_job("doomed", 12);
  doomed.deadline_rounds = 1;
  const SubmitResult rh = sched.submit(healthy);
  const SubmitResult rd = sched.submit(doomed);
  ASSERT_TRUE(rh.accepted);
  ASSERT_TRUE(rd.accepted);
  sched.run_until_drained();

  EXPECT_EQ(sched.state(rd.id), JobState::kFailed);
  ASSERT_EQ(sched.state(rh.id), JobState::kCompleted);
  double t = 0.0;
  expect_bit_identical(sched.final_state(rh.id, &t),
                       run_standalone(healthy, cfg.machine));
}

TEST(ServePolicy, TransientFaultsRetryWithBackoffAndStillComplete) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(1);
  cfg.quantum_blocksteps = 4;
  cfg.max_job_failures = 3;
  cfg.backoff_base_rounds = 1;
  Scheduler sched(cfg);

  JobSpec flaky = small_job("flaky", 13);
  flaky.chaos_fail_quanta = 2;  // first two quanta throw TransientFault
  const SubmitResult r = sched.submit(flaky);
  ASSERT_TRUE(r.accepted);
  sched.run_until_drained();

  // Two faults (< max_job_failures) then clean: the job must complete,
  // and the retries must not have touched its physics.
  ASSERT_EQ(sched.state(r.id), JobState::kCompleted);
  const JobReport rep = sched.report(r.id);
  EXPECT_EQ(rep.failures, 0);  // consecutive count reset by clean quanta
  double t = 0.0;
  expect_bit_identical(sched.final_state(r.id, &t),
                       run_standalone(flaky, cfg.machine));
  // Backoff is on the round clock: 2 faulted rounds + 1 + 2 rounds of
  // hold mean strictly more rounds than the fault-free run needed.
  EXPECT_EQ(sched.stats().quarantined, 0u);
}

TEST(ServePolicy, BackoffDelaysRedispatchExponentially) {
  ServiceConfig cfg;
  cfg.machine = tiny_machine(1);
  cfg.quantum_blocksteps = 4;
  cfg.max_job_failures = 5;
  cfg.backoff_base_rounds = 2;
  Scheduler sched(cfg);

  JobSpec flaky = small_job("flaky", 14);
  flaky.chaos_fail_quanta = 2;
  ASSERT_TRUE(sched.submit(flaky).accepted);

  JobSpec control = small_job("control", 14);
  ServiceConfig cfg2 = cfg;
  Scheduler control_sched(cfg2);
  ASSERT_TRUE(control_sched.submit(control).accepted);

  sched.run_until_drained();
  control_sched.run_until_drained();
  // Two faults with base 2: holds of 2 and 4 rounds, plus the two burned
  // fault rounds — at least 8 extra rounds over the control run.
  EXPECT_GE(sched.stats().rounds, control_sched.stats().rounds + 8);
}

TEST(ServePolicy, PoisonJobIsQuarantinedWithFlightDump) {
  const fs::path dir = fs::temp_directory_path() / "g6_policy_quarantine";
  fs::remove_all(dir);
  fs::create_directories(dir / "ckpts");

  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 4;
  cfg.max_job_failures = 3;
  cfg.durability.journal_path = (dir / "serve.wal").string();
  cfg.durability.checkpoint_dir = (dir / "ckpts").string();
  Scheduler sched(cfg);

  JobSpec poison = small_job("poison", 15);
  poison.chaos_fail_quanta = 100;  // never stops faulting
  const JobSpec healthy = small_job("healthy", 16);
  const SubmitResult rp = sched.submit(poison);
  const SubmitResult rh = sched.submit(healthy);
  ASSERT_TRUE(rp.accepted);
  ASSERT_TRUE(rh.accepted);
  sched.run_until_drained();

  // Quarantine is its own terminal state with its own reason — distinct
  // from kFailed — and carries a flight-recorder dump for post-mortem.
  ASSERT_EQ(sched.state(rp.id), JobState::kQuarantined);
  const JobReport rep = sched.report(rp.id);
  EXPECT_EQ(rep.reject_reason, RejectReason::kQuarantined);
  EXPECT_EQ(rep.failures, cfg.max_job_failures);
  EXPECT_NE(rep.message.find("poison"), std::string::npos);
  EXPECT_EQ(sched.stats().quarantined, 1u);
  EXPECT_EQ(sched.stats().failed, 0u);
  EXPECT_TRUE(fs::exists(dir / "ckpts" / "poison.quarantine.flight.json"));

  // Containment: the neighbor's physics is untouched by the three
  // faulted quanta and the quarantine next door.
  ASSERT_EQ(sched.state(rh.id), JobState::kCompleted);
  double t = 0.0;
  expect_bit_identical(sched.final_state(rh.id, &t),
                       run_standalone(healthy, cfg.machine));
  fs::remove_all(dir);
}

TEST(ServePolicy, ManifestCarriesPolicyKnobs) {
  // The new spec/service keys round-trip through the manifest parser.
  const std::string text = R"({
    "schema": "grape6-serve-manifest-v1",
    "service": {"max_job_failures": 4, "backoff_base_rounds": 3},
    "jobs": [
      {"name": "j", "n": 64, "deadline_rounds": 50, "chaos_fail_quanta": 1}
    ]
  })";
  const Manifest m = parse_manifest(text);
  EXPECT_EQ(m.service.max_job_failures, 4);
  EXPECT_EQ(m.service.backoff_base_rounds, 3u);
  ASSERT_EQ(m.jobs.size(), 1u);
  EXPECT_EQ(m.jobs[0].deadline_rounds, 50u);
  EXPECT_EQ(m.jobs[0].chaos_fail_quanta, 1);
}

}  // namespace
}  // namespace g6::serve
