// BoardPartitioner: first-fit leases, release, and death accounting —
// the machine-sharing substrate mirroring the paper's 4-way partition.

#include <gtest/gtest.h>

#include "serve/partition.hpp"
#include "util/check.hpp"

namespace g6::serve {
namespace {

TEST(ServePartition, AcquiresLowestFreeBoardsFirst) {
  BoardPartitioner p(4);
  auto a = p.acquire(1, 2);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->boards, (std::vector<std::size_t>{0, 1}));
  auto b = p.acquire(2, 1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->boards, (std::vector<std::size_t>{2}));
  EXPECT_EQ(p.free(), 1u);
  EXPECT_EQ(p.leased(), 3u);
}

TEST(ServePartition, AcquireFailsWithoutEnoughFreeBoards) {
  BoardPartitioner p(2);
  ASSERT_TRUE(p.acquire(1, 1).has_value());
  EXPECT_FALSE(p.acquire(2, 2).has_value());
  EXPECT_EQ(p.free(), 1u);  // failed acquire leases nothing
}

TEST(ServePartition, ReleaseReturnsBoardsToThePool) {
  BoardPartitioner p(3);
  auto a = p.acquire(1, 3);
  ASSERT_TRUE(a.has_value());
  p.release(*a);
  EXPECT_EQ(p.free(), 3u);
  // Released boards lease again, lowest first.
  auto b = p.acquire(2, 1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->boards.front(), 0u);
}

TEST(ServePartition, DeathUnderALeaseNamesTheOwner) {
  BoardPartitioner p(4);
  auto a = p.acquire(7, 2);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(p.mark_dead(1), 7u);       // leased by job 7
  EXPECT_EQ(p.mark_dead(1), 0u);       // already dead: no owner
  EXPECT_EQ(p.mark_dead(3), 0u);       // free board: no owner
  EXPECT_TRUE(p.is_dead(1));
  EXPECT_EQ(p.dead(), 2u);
  EXPECT_EQ(p.healthy(), 2u);
}

TEST(ServePartition, DeadBoardsNeverLeaseAgain) {
  BoardPartitioner p(2);
  p.mark_dead(0);
  auto a = p.acquire(1, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->boards, (std::vector<std::size_t>{1}));
  EXPECT_FALSE(p.acquire(2, 1).has_value());
}

TEST(ServePartition, ReleaseSkipsBoardsThatDiedWhileLeased) {
  BoardPartitioner p(2);
  auto a = p.acquire(1, 2);
  ASSERT_TRUE(a.has_value());
  p.mark_dead(0);
  p.release(*a);  // must not resurrect board 0
  EXPECT_EQ(p.free(), 1u);
  EXPECT_EQ(p.dead(), 1u);
  EXPECT_TRUE(p.is_dead(0));
}

TEST(ServePartition, OwnerLookup) {
  BoardPartitioner p(2);
  auto a = p.acquire(9, 1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(p.owner_of(0), 9u);
  EXPECT_EQ(p.owner_of(1), 0u);
}

TEST(ServePartition, Preconditions) {
  EXPECT_THROW(BoardPartitioner(0), PreconditionError);
  BoardPartitioner p(1);
  EXPECT_THROW(p.acquire(0, 1), PreconditionError);  // owner 0 invalid
  EXPECT_THROW(p.acquire(1, 0), PreconditionError);  // empty lease invalid
  EXPECT_THROW(p.mark_dead(5), PreconditionError);   // out of range
}

}  // namespace
}  // namespace g6::serve
