// JobQueue: priority classes, FIFO within a class, and the two re-entry
// modes (push_back = admission/preemption, push_front = revocation).

#include <gtest/gtest.h>

#include "serve/job_queue.hpp"
#include "util/check.hpp"

namespace g6::serve {
namespace {

TEST(ServeQueue, FifoWithinClass) {
  JobQueue q;
  q.push_back(1, Priority::kBatch);
  q.push_back(2, Priority::kBatch);
  q.push_back(3, Priority::kBatch);
  EXPECT_EQ(q.dispatch_order(), (std::vector<JobId>{1, 2, 3}));
}

TEST(ServeQueue, InteractiveClassDispatchesFirst) {
  JobQueue q;
  q.push_back(1, Priority::kBatch);
  q.push_back(2, Priority::kInteractive);
  q.push_back(3, Priority::kBatch);
  q.push_back(4, Priority::kInteractive);
  // Class order beats submission order; FIFO inside each class.
  EXPECT_EQ(q.dispatch_order(), (std::vector<JobId>{2, 4, 1, 3}));
  EXPECT_EQ(q.class_depth(Priority::kInteractive), 2u);
  EXPECT_EQ(q.class_depth(Priority::kBatch), 2u);
}

TEST(ServeQueue, PushFrontKeepsTheVictimsTurn) {
  JobQueue q;
  q.push_back(1, Priority::kBatch);
  q.push_back(2, Priority::kBatch);
  q.push_front(3, Priority::kBatch);  // revoked job goes first in class
  EXPECT_EQ(q.dispatch_order(), (std::vector<JobId>{3, 1, 2}));
}

TEST(ServeQueue, RemoveFindsAnyPosition) {
  JobQueue q;
  q.push_back(1, Priority::kBatch);
  q.push_back(2, Priority::kInteractive);
  q.push_back(3, Priority::kBatch);
  EXPECT_TRUE(q.remove(3));
  EXPECT_FALSE(q.remove(3));  // already gone
  EXPECT_FALSE(q.remove(99));
  EXPECT_EQ(q.dispatch_order(), (std::vector<JobId>{2, 1}));
  EXPECT_EQ(q.size(), 2u);
}

TEST(ServeQueue, EmptyAndSize) {
  JobQueue q;
  EXPECT_TRUE(q.empty());
  q.push_back(7, Priority::kInteractive);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.size(), 1u);
}

TEST(ServeQueue, RejectsInvalidIds) {
  JobQueue q;
  EXPECT_THROW(q.push_back(0, Priority::kBatch), PreconditionError);
  EXPECT_THROW(q.push_front(0, Priority::kInteractive), PreconditionError);
}

}  // namespace
}  // namespace g6::serve
