// AdmissionController: bounded queue depth, feasibility checks, and
// explicit backpressure — every rejection names its reason.

#include <gtest/gtest.h>

#include "serve/admission.hpp"
#include "util/check.hpp"

namespace g6::serve {
namespace {

JobSpec good_spec() {
  JobSpec s;
  s.name = "ok";
  s.n = 64;
  s.t_end = 0.125;
  s.boards = 1;
  return s;
}

TEST(ServeAdmission, AcceptsAValidSpec) {
  AdmissionController ac(4, 8);
  const AdmissionDecision d = ac.decide(good_spec(), 0, 8, false);
  EXPECT_TRUE(d.admit);
  EXPECT_EQ(d.reason, RejectReason::kNone);
}

TEST(ServeAdmission, FullQueueIsExplicitBackpressure) {
  AdmissionController ac(2, 8);
  const AdmissionDecision d = ac.decide(good_spec(), 2, 8, false);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, RejectReason::kQueueFull);
  EXPECT_NE(d.message.find("retry later"), std::string::npos);
}

TEST(ServeAdmission, BoardRequestBeyondHealthyMachine) {
  AdmissionController ac(4, 8);
  JobSpec s = good_spec();
  s.boards = 6;
  // 8-board machine with only 4 healthy: a 6-board job is infeasible.
  const AdmissionDecision d = ac.decide(s, 0, 4, false);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, RejectReason::kBoardsUnavailable);
  EXPECT_NE(d.message.find("6 board(s)"), std::string::npos);
  EXPECT_NE(d.message.find("4 healthy of 8"), std::string::npos);
}

TEST(ServeAdmission, DrainingRejectsEverything) {
  AdmissionController ac(4, 8);
  const AdmissionDecision d = ac.decide(good_spec(), 0, 8, true);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.reason, RejectReason::kDraining);
}

TEST(ServeAdmission, SpecValidationCatchesEachField) {
  JobSpec s = good_spec();
  s.name = "";
  EXPECT_EQ(AdmissionController::validate_spec(s).reason,
            RejectReason::kInvalidSpec);

  s = good_spec();
  s.model = "galaxy";
  EXPECT_EQ(AdmissionController::validate_spec(s).reason,
            RejectReason::kInvalidSpec);

  s = good_spec();
  s.n = 1;
  EXPECT_EQ(AdmissionController::validate_spec(s).reason,
            RejectReason::kInvalidSpec);

  s = good_spec();
  s.t_end = 0.0;
  EXPECT_EQ(AdmissionController::validate_spec(s).reason,
            RejectReason::kInvalidSpec);

  s = good_spec();
  s.eta = -0.01;
  EXPECT_EQ(AdmissionController::validate_spec(s).reason,
            RejectReason::kInvalidSpec);

  s = good_spec();
  s.eps = -1.0;
  EXPECT_EQ(AdmissionController::validate_spec(s).reason,
            RejectReason::kInvalidSpec);

  s = good_spec();
  s.boards = 0;
  EXPECT_EQ(AdmissionController::validate_spec(s).reason,
            RejectReason::kInvalidSpec);

  EXPECT_TRUE(AdmissionController::validate_spec(good_spec()).admit);
}

TEST(ServeAdmission, ValidationRunsBeforeCapacityChecks) {
  AdmissionController ac(1, 8);
  JobSpec s = good_spec();
  s.model = "nope";
  // Invalid spec reported as such even when the queue is also full.
  const AdmissionDecision d = ac.decide(s, 1, 8, false);
  EXPECT_EQ(d.reason, RejectReason::kInvalidSpec);
}

TEST(ServeAdmission, ConstructorPreconditions) {
  EXPECT_THROW(AdmissionController(0, 8), PreconditionError);
  EXPECT_THROW(AdmissionController(4, 0), PreconditionError);
}

}  // namespace
}  // namespace g6::serve
