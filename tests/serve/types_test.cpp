// serve value types: name functions, report math, and the fault-plan to
// board-death bridge.

#include <gtest/gtest.h>

#include "serve/types.hpp"
#include "util/check.hpp"

namespace g6::serve {
namespace {

TEST(ServeTypes, NamesAreStable) {
  EXPECT_STREQ(priority_name(Priority::kInteractive), "interactive");
  EXPECT_STREQ(priority_name(Priority::kBatch), "batch");
  EXPECT_STREQ(job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(job_state_name(JobState::kRunning), "running");
  EXPECT_STREQ(job_state_name(JobState::kCompleted), "completed");
  EXPECT_STREQ(job_state_name(JobState::kFailed), "failed");
  EXPECT_STREQ(job_state_name(JobState::kRejected), "rejected");
  EXPECT_STREQ(reject_reason_name(RejectReason::kNone), "none");
  EXPECT_STREQ(reject_reason_name(RejectReason::kQueueFull), "queue-full");
  EXPECT_STREQ(reject_reason_name(RejectReason::kBoardsUnavailable),
               "boards-unavailable");
  EXPECT_STREQ(reject_reason_name(RejectReason::kInvalidSpec),
               "invalid-spec");
  EXPECT_STREQ(reject_reason_name(RejectReason::kDraining), "draining");
  EXPECT_STREQ(job_state_name(JobState::kQuarantined), "quarantined");
  EXPECT_STREQ(reject_reason_name(RejectReason::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(reject_reason_name(RejectReason::kRequeueExhausted),
               "requeue-exhausted");
  EXPECT_STREQ(reject_reason_name(RejectReason::kQuarantined), "quarantined");
}

TEST(ServeTypes, EnergyErrorIsRelativeDrift) {
  JobReport r;
  r.state = JobState::kCompleted;
  r.e0 = -0.25;
  r.e_final = -0.2500025;
  EXPECT_NEAR(r.energy_error(), 1e-5, 1e-9);
  r.e_final = r.e0;
  EXPECT_EQ(r.energy_error(), 0.0);
}

TEST(ServeTypes, BoardDeathsFromPlanTakeOnlyBoardLevelEntries) {
  fault::FaultPlan plan;
  plan.hard_failures.push_back({2.0, 0, -1, -1});  // whole board 0
  plan.hard_failures.push_back({5.0, 1, 3, -1});   // module-level: skip
  plan.hard_failures.push_back({7.0, 1, -1, 2});   // chip-level: skip
  plan.hard_failures.push_back({9.0, 2, -1, -1});  // whole board 2

  const std::vector<BoardDeath> deaths = board_deaths_from_plan(plan);
  ASSERT_EQ(deaths.size(), 2u);
  EXPECT_EQ(deaths[0].round, 2u);
  EXPECT_EQ(deaths[0].board, 0u);
  EXPECT_EQ(deaths[1].round, 9u);
  EXPECT_EQ(deaths[1].board, 2u);
}

TEST(ServeTypes, PoolBoardsMultipliesTheHierarchy) {
  ServiceConfig cfg;
  cfg.machine.boards_per_host = 4;
  cfg.machine.hosts_per_cluster = 4;
  cfg.machine.clusters = 1;
  // The paper's partition: 4 hosts x 4 boards = a 16-board pool.
  EXPECT_EQ(cfg.pool_boards(), 16u);
}

}  // namespace
}  // namespace g6::serve
