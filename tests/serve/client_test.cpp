// ServeClient / GrapeService through the PUBLIC surface only — this file
// deliberately includes just serve/serve.hpp, exactly what a tenant sees
// (the g6lint serve-isolation rule guarantees nothing more is reachable).

#include <gtest/gtest.h>

#include "serve/serve.hpp"
#include "util/check.hpp"

namespace g6::serve {
namespace {

ServiceConfig one_board_service() {
  ServiceConfig cfg;
  cfg.machine.boards_per_host = 1;
  cfg.machine.hosts_per_cluster = 1;
  cfg.machine.clusters = 1;
  cfg.max_queue_depth = 2;
  cfg.quantum_blocksteps = 8;
  return cfg;
}

JobSpec quick_job(const std::string& name, unsigned seed = 1) {
  JobSpec s;
  s.name = name;
  s.n = 32;
  s.t_end = 0.03125;
  s.seed = seed;
  return s;
}

TEST(ServeClientTest, SubmitRunReport) {
  GrapeService service(one_board_service());
  ServeClient client = service.client();

  const SubmitResult r = client.submit(quick_job("mine"));
  ASSERT_TRUE(r);
  EXPECT_EQ(client.state(r.id), JobState::kQueued);

  service.run_until_drained();

  EXPECT_EQ(client.state(r.id), JobState::kCompleted);
  const JobReport rep = client.report(r.id);
  EXPECT_EQ(rep.name, "mine");
  EXPECT_EQ(rep.t_reached, rep.t_end);
  EXPECT_GT(rep.steps, 0u);
  EXPECT_GT(rep.quanta, 0u);
  EXPECT_LT(rep.energy_error(), 1e-3);  // physics stayed sane
  double t = -1.0;
  EXPECT_EQ(client.final_state(r.id, &t).size(), 32u);
  EXPECT_EQ(t, rep.t_end);
}

TEST(ServeClientTest, QueueFullIsExplicitBackpressure) {
  GrapeService service(one_board_service());  // depth 2
  ServeClient client = service.client();

  ASSERT_TRUE(client.submit(quick_job("a", 1)));
  ASSERT_TRUE(client.submit(quick_job("b", 2)));
  const SubmitResult r3 = client.submit(quick_job("c", 3));
  EXPECT_FALSE(r3);
  EXPECT_EQ(r3.reason, RejectReason::kQueueFull);
  EXPECT_FALSE(r3.message.empty());
  // The rejected job stays queryable — no silent drop.
  EXPECT_EQ(client.state(r3.id), JobState::kRejected);
  EXPECT_EQ(client.report(r3.id).reject_reason, RejectReason::kQueueFull);
  EXPECT_EQ(service.stats().rejected, 1u);

  service.run_until_drained();
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST(ServeClientTest, OverAskedBoardsRejectedAtTheDoor) {
  GrapeService service(one_board_service());
  JobSpec greedy = quick_job("greedy");
  greedy.boards = 2;  // one-board machine
  const SubmitResult r = service.client().submit(greedy);
  EXPECT_FALSE(r);
  EXPECT_EQ(r.reason, RejectReason::kBoardsUnavailable);
}

TEST(ServeClientTest, InvalidSpecAndDuplicateNameRejected) {
  GrapeService service(one_board_service());
  ServeClient client = service.client();

  JobSpec bad = quick_job("bad");
  bad.model = "spiral";
  EXPECT_EQ(client.submit(bad).reason, RejectReason::kInvalidSpec);

  ASSERT_TRUE(client.submit(quick_job("same", 1)));
  const SubmitResult dup = client.submit(quick_job("same", 2));
  EXPECT_FALSE(dup);
  EXPECT_EQ(dup.reason, RejectReason::kInvalidSpec);
  EXPECT_NE(dup.message.find("duplicate"), std::string::npos);
}

TEST(ServeClientTest, DrainRejectsNewWorkButFinishesOldWork) {
  GrapeService service(one_board_service());
  ServeClient client = service.client();
  const SubmitResult r = client.submit(quick_job("old"));
  ASSERT_TRUE(r);
  service.drain();
  EXPECT_EQ(client.submit(quick_job("new")).reason, RejectReason::kDraining);
  service.run_until_drained();
  EXPECT_EQ(client.state(r.id), JobState::kCompleted);
}

TEST(ServeClientTest, FinalStateOfUnfinishedJobThrows) {
  GrapeService service(one_board_service());
  ServeClient client = service.client();
  const SubmitResult r = client.submit(quick_job("early"));
  ASSERT_TRUE(r);
  EXPECT_THROW(client.final_state(r.id), PreconditionError);
}

TEST(ServeClientTest, ServiceStatsAggregate) {
  GrapeService service(one_board_service());
  ServeClient client = service.client();
  ASSERT_TRUE(client.submit(quick_job("a", 1)));
  ASSERT_TRUE(client.submit(quick_job("b", 2)));
  service.run_until_drained();
  const ServiceStats& st = service.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GE(st.makespan_s, 0.0);
  EXPECT_GT(st.eq10.steps, 0u);  // merged per-job Eq 10 accounting
  EXPECT_EQ(service.jobs().size(), 2u);
}

}  // namespace
}  // namespace g6::serve
