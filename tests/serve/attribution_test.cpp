// Per-job observability acceptance (docs/OBSERVABILITY.md): a 3-job
// mixed-priority serve run must produce per-job metric scopes whose
// grape.pipeline.cycles sum exactly to the process total, Chrome-trace
// spans carrying their owning job id, a per-round time series, and —
// under an injected board death — a flight-recorder dump whose revocation
// events match the scheduler's own bookkeeping.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/context.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/sampler.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"

namespace g6::serve {
namespace {

MachineConfig tiny_machine(std::size_t boards) {
  MachineConfig mc;
  mc.boards_per_host = boards;
  mc.hosts_per_cluster = 1;
  mc.clusters = 1;
  return mc;
}

JobSpec job(const std::string& name, unsigned seed, std::size_t boards = 1,
            Priority priority = Priority::kBatch) {
  JobSpec s;
  s.name = name;
  s.model = "plummer";
  s.n = 32;
  s.t_end = 0.0625;
  s.seed = seed;
  s.boards = boards;
  s.priority = priority;
  return s;
}

/// The standard mixed-priority workload: an interactive job, a batch job
/// and a whole-machine batch job time-shared on 2 boards, so the run has
/// queueing, preemption and several scheduler rounds.
std::vector<JobId> submit_three(Scheduler& sched) {
  std::vector<JobId> ids;
  for (const JobSpec& spec :
       {job("int-a", 11, 1, Priority::kInteractive), job("bat-a", 13, 1),
        job("bat-b", 16, 2)}) {
    const SubmitResult r = sched.submit(spec);
    EXPECT_TRUE(r.accepted) << spec.name << ": " << r.message;
    ids.push_back(r.id);
  }
  return ids;
}

std::uint64_t global_counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

TEST(ServeAttribution, ScopeCyclesSumToProcessTotal) {
  obs::ScopeRegistry::global().reset();
  const std::uint64_t cycles_before = global_counter("grape.pipeline.cycles");
  const std::uint64_t interactions_before = global_counter("grape.interactions");

  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 4;
  Scheduler sched(cfg);
  const std::vector<JobId> ids = submit_three(sched);
  sched.run_until_drained();
  for (JobId id : ids) ASSERT_EQ(sched.state(id), JobState::kCompleted);

  const auto scopes = obs::ScopeRegistry::global().scopes();
  ASSERT_EQ(scopes.size(), 3u);

  // Identity: each scope carries the job id and priority class it was
  // created for.
  const obs::MetricScope* inter = obs::ScopeRegistry::global().find("job:int-a");
  ASSERT_NE(inter, nullptr);
  EXPECT_EQ(inter->job(), ids[0]);
  EXPECT_EQ(inter->job_class(), "interactive");
  const obs::MetricScope* batch = obs::ScopeRegistry::global().find("job:bat-a");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->job_class(), "batch");

  // Conservation: every pipeline cycle and interaction of the run was
  // charged to exactly one job — including engine startup forces, which
  // run under the owning job's scope.
  std::uint64_t cycles_sum = 0;
  std::uint64_t interactions_sum = 0;
  for (const obs::MetricScope* scope : scopes) {
    EXPECT_GT(scope->value("grape.pipeline.cycles"), 0u) << scope->name();
    cycles_sum += scope->value("grape.pipeline.cycles");
    interactions_sum += scope->value("grape.interactions");
  }
  EXPECT_EQ(cycles_sum, global_counter("grape.pipeline.cycles") - cycles_before);
  EXPECT_EQ(interactions_sum,
            global_counter("grape.interactions") - interactions_before);
}

TEST(ServeAttribution, TraceSpansCarryOwningJobId) {
  obs::ScopeRegistry::global().reset();
  obs::Tracer::global().clear();
  obs::Tracer::global().enable();

  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 4;
  Scheduler sched(cfg);
  const std::vector<JobId> ids = submit_three(sched);
  sched.run_until_drained();
  obs::Tracer::global().disable();

  std::ostringstream os;
  obs::Tracer::global().write_chrome_trace(os);
  const obs::JsonValue doc = obs::JsonValue::parse(os.str());
  const auto& events = doc.find("traceEvents")->items();
  const std::set<std::uint64_t> id_set(ids.begin(), ids.end());

  struct Span {
    std::string name;
    double ts = 0.0;
    double dur = 0.0;
    std::uint64_t job = 0;
  };
  std::map<double, std::vector<Span>> by_tid;
  std::size_t serve_job_spans = 0;
  std::set<std::uint64_t> jobs_with_pipeline_spans;
  for (const obs::JsonValue& ev : events) {
    if (ev.find("ph")->as_string() != "X") continue;  // metadata rows
    Span s;
    s.name = ev.find("name")->as_string();
    s.ts = ev.find("ts")->as_number();
    s.dur = ev.find("dur")->as_number();
    if (const obs::JsonValue* args = ev.find("args")) {
      if (const obs::JsonValue* j = args->find("job")) {
        s.job = static_cast<std::uint64_t>(j->as_number());
      }
    }
    if (s.name == "serve.job") {
      ++serve_job_spans;
      // Every quantum span names its owner, and the owner was submitted.
      EXPECT_NE(s.job, 0u);
      EXPECT_TRUE(id_set.count(s.job)) << "unknown job " << s.job;
    }
    if (s.name == "grape.pipeline" && s.job != 0) {
      jobs_with_pipeline_spans.insert(s.job);
    }
    by_tid[ev.find("tid")->as_number()].push_back(s);
  }
  EXPECT_GT(serve_job_spans, 0u);
  // Engine work on worker threads inherited the job context: every job
  // shows up on hardware-pipeline spans, not just on its quantum spans.
  for (JobId id : ids) {
    EXPECT_TRUE(jobs_with_pipeline_spans.count(id)) << "job " << id;
  }

  // Structural well-formedness per thread: export order is monotonic in
  // start time, and complete-spans either nest or are disjoint (the
  // Chrome stack reconstruction relies on both).
  for (const auto& [tid, spans] : by_tid) {
    std::vector<double> open_ends;
    double prev_ts = -1.0;
    for (const Span& s : spans) {
      EXPECT_GE(s.ts, prev_ts) << "tid " << tid;
      prev_ts = s.ts;
      while (!open_ends.empty() && open_ends.back() <= s.ts) {
        open_ends.pop_back();
      }
      if (!open_ends.empty()) {
        EXPECT_LE(s.ts + s.dur, open_ends.back())
            << "span '" << s.name << "' on tid " << tid
            << " partially overlaps its enclosing span";
      }
      open_ends.push_back(s.ts + s.dur);
    }
  }
}

TEST(ServeAttribution, BoardDeathFlightMatchesSchedulerBookkeeping) {
  obs::ScopeRegistry::global().reset();
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  flight.clear();

  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 4;
  // Board 0 dies at round 1: the round-0 dispatch leased it first-fit,
  // so some job must lose its lease and re-queue.
  cfg.board_deaths = {{1, 0}};
  Scheduler sched(cfg);
  const std::vector<JobId> ids = submit_three(sched);
  sched.run_until_drained();
  // The 1-board jobs survive on the remaining board; bat-b's 2-board
  // request can never be satisfied again and must fail, not hang.
  EXPECT_EQ(sched.state(ids[0]), JobState::kCompleted);
  EXPECT_EQ(sched.state(ids[1]), JobState::kCompleted);
  EXPECT_EQ(sched.state(ids[2]), JobState::kFailed);

  const ServiceStats& st = sched.stats();
  ASSERT_GE(st.revocations, 1u);
  ASSERT_EQ(st.boards_dead, 1u);
  ASSERT_EQ(st.completed, 2u);
  ASSERT_EQ(st.failed, 1u);

  ASSERT_EQ(flight.dropped(), 0u) << "ring too small for this workload";
  std::map<obs::FlightEventType, std::uint64_t> by_type;
  std::map<std::uint64_t, std::uint64_t> revokes_by_job;
  std::map<std::uint64_t, std::uint64_t> completions_by_job;
  std::uint64_t quantum_starts = 0;
  for (const obs::FlightEvent& ev : flight.snapshot()) {
    ++by_type[ev.type];
    if (ev.type == obs::FlightEventType::kRevoke) ++revokes_by_job[ev.job];
    if (ev.type == obs::FlightEventType::kJobCompleted) {
      ++completions_by_job[ev.job];
    }
    if (ev.type == obs::FlightEventType::kQuantumStart) ++quantum_starts;
  }

  // The dump and the scheduler's serial bookkeeping agree event by event.
  EXPECT_EQ(by_type[obs::FlightEventType::kBoardDeath],
            static_cast<std::uint64_t>(st.boards_dead));
  EXPECT_EQ(by_type[obs::FlightEventType::kRevoke], st.revocations);
  EXPECT_EQ(by_type[obs::FlightEventType::kRequeue], st.revocations);
  EXPECT_EQ(by_type[obs::FlightEventType::kPreempt], st.preemptions);
  EXPECT_EQ(by_type[obs::FlightEventType::kJobCompleted], st.completed);
  EXPECT_EQ(by_type[obs::FlightEventType::kJobFailed], st.failed);

  std::uint64_t quanta_sum = 0;
  for (JobId id : ids) {
    const JobReport r = sched.report(id);
    quanta_sum += r.quanta;
    EXPECT_EQ(revokes_by_job[id], r.revocations) << r.name;
    EXPECT_EQ(completions_by_job[id],
              r.state == JobState::kCompleted ? 1u : 0u)
        << r.name;
  }
  EXPECT_EQ(by_type[obs::FlightEventType::kQuantumEnd], quanta_sum);
  EXPECT_EQ(quantum_starts, quanta_sum);
}

TEST(ServeAttribution, TimeseriesSamplesOncePerRound) {
  obs::ScopeRegistry::global().reset();
  obs::MetricsSampler& sampler = obs::MetricsSampler::global();
  sampler.clear();

  ServiceConfig cfg;
  cfg.machine = tiny_machine(2);
  cfg.quantum_blocksteps = 4;
  Scheduler sched(cfg);  // the ctor re-registers its instrument set
  submit_three(sched);
  sched.run_until_drained();

  const ServiceStats& st = sched.stats();
  ASSERT_GT(st.rounds, 1u);
  EXPECT_EQ(sampler.sample_count(), st.rounds);

  std::ostringstream os;
  sampler.write_json(os);
  const obs::JsonValue doc = obs::JsonValue::parse(os.str());
  EXPECT_EQ(doc.find("schema")->as_string(), "grape6-timeseries-v1");

  const auto& instruments = doc.find("instruments")->items();
  std::size_t completed_col = instruments.size();
  std::set<std::string> names;
  for (std::size_t i = 0; i < instruments.size(); ++i) {
    const std::string name = instruments[i].find("name")->as_string();
    names.insert(name);
    if (name == "serve.jobs.completed") completed_col = i;
  }
  for (const char* expected :
       {"serve.queue.depth", "serve.lease.utilization",
        "serve.boards.healthy", "fault.healthy_chips",
        "serve.jobs.completed", "serve.quanta"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  ASSERT_LT(completed_col, instruments.size());

  const auto& samples = doc.find("samples")->items();
  ASSERT_EQ(samples.size(), st.rounds);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].find("tick")->as_number(),
              static_cast<double>(i));
  }
  // The final row caught the end state: the completed-jobs series landed
  // on the process counter's current value.
  const auto& last = samples.back().find("values")->items();
  EXPECT_EQ(last[completed_col].as_number(),
            static_cast<double>(global_counter("serve.jobs.completed")));
}

}  // namespace
}  // namespace g6::serve
