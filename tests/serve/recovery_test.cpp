// Crash recovery: the journal + checkpoint machinery must make a killed
// service resumable with NOTHING lost — every job reaches exactly one
// terminal state, and every completed job's final particle state is
// bit-identical to the run that was never interrupted. run_rounds(k)
// simulates the crash at an exact round boundary in-process (the
// kill -9 variant lives in scripts/serve_recovery_check.py); abandoning
// the Scheduler without drain() mimics the dead process, because the
// journal is fsync'd ahead of every transition.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "serve/recovery.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"

namespace g6::serve {
namespace {

namespace fs = std::filesystem;

MachineConfig tiny_machine(std::size_t boards) {
  MachineConfig mc;
  mc.boards_per_host = boards;
  mc.hosts_per_cluster = 1;
  mc.clusters = 1;
  return mc;
}

JobSpec small_job(const std::string& name, unsigned seed,
                  std::size_t boards = 1) {
  JobSpec s;
  s.name = name;
  s.model = "plummer";
  s.n = 48;
  s.t_end = 0.0625;
  s.seed = seed;
  s.boards = boards;
  return s;
}

void expect_bit_identical(const ParticleSet& a, const ParticleSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int k = 0; k < 3; ++k) {
      ASSERT_EQ(a[i].pos[k], b[i].pos[k]) << "pos, particle " << i;
      ASSERT_EQ(a[i].vel[k], b[i].vel[k]) << "vel, particle " << i;
    }
    ASSERT_EQ(a[i].mass, b[i].mass) << "mass, particle " << i;
  }
}

class ServeRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -j runs cases concurrently and a shared
    // directory races SetUp's remove_all against a sibling's journal writes.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("g6_serve_recovery_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "ckpts");
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServiceConfig durable_config(std::size_t boards = 2) {
    ServiceConfig cfg;
    cfg.machine = tiny_machine(boards);
    cfg.quantum_blocksteps = 4;  // several quanta per job
    cfg.durability.journal_path = (dir_ / "serve.wal").string();
    cfg.durability.checkpoint_dir = (dir_ / "ckpts").string();
    cfg.durability.checkpoint_every_quanta = 1;
    return cfg;
  }

  /// The same jobs through a NON-durable scheduler, never interrupted:
  /// the reference trajectory recovery must land on bit for bit.
  std::vector<ParticleSet> reference_run(const std::vector<JobSpec>& jobs,
                                         ServiceConfig cfg) {
    cfg.durability = DurabilityConfig{};
    Scheduler ref(cfg);
    std::vector<JobId> ids;
    for (const JobSpec& s : jobs) {
      const SubmitResult r = ref.submit(s);
      EXPECT_TRUE(r.accepted) << s.name;
      ids.push_back(r.id);
    }
    ref.run_until_drained();
    std::vector<ParticleSet> out;
    for (const JobId id : ids) {
      EXPECT_EQ(ref.state(id), JobState::kCompleted);
      double t = 0.0;
      out.push_back(ref.final_state(id, &t));
    }
    return out;
  }

  fs::path dir_;
};

TEST_F(ServeRecoveryTest, CrashMidFlightRecoversBitIdentically) {
  const std::vector<JobSpec> jobs = {small_job("a", 11), small_job("b", 22),
                                     small_job("c", 33, 2)};
  const ServiceConfig cfg = durable_config();
  const std::vector<ParticleSet> want = reference_run(jobs, cfg);

  {
    Scheduler sched(cfg);
    for (const JobSpec& s : jobs) ASSERT_TRUE(sched.submit(s).accepted);
    // "Crash" two rounds in: jobs are mid-flight, checkpoints and the
    // journal are on disk, and the Scheduler is abandoned un-drained.
    ASSERT_TRUE(sched.run_rounds(2)) << "crash point must be mid-flight";
  }

  RecoveryInfo info;
  auto service =
      GrapeService::recover(cfg.durability.journal_path, &info);
  EXPECT_GT(info.journal_records, 3u);
  EXPECT_FALSE(info.torn_tail);
  EXPECT_EQ(info.jobs_restored + info.jobs_already_terminal, 3u);
  service->run_until_drained();

  const std::vector<JobId> ids = service->jobs();
  ASSERT_EQ(ids.size(), 3u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(service->state(ids[i]), JobState::kCompleted) << jobs[i].name;
    double t = 0.0;
    expect_bit_identical(service->final_state(ids[i], &t), want[i]);
  }
  // Exactly-once terminal accounting across the crash.
  EXPECT_EQ(service->stats().completed, 3u);
  EXPECT_EQ(service->stats().failed, 0u);
  EXPECT_EQ(service->stats().submitted, 3u);
}

TEST_F(ServeRecoveryTest, EveryCrashPointRecoversBitIdentically) {
  // Sweep the crash over every round boundary until the natural end of
  // the run: recovery must be a no-op detour at each of them. Job y
  // carries autoscaling lease bounds so the sweep also crosses any
  // lease-resized boundary the schedule produces.
  JobSpec y = small_job("y", 6);
  y.boards_min = 1;
  y.boards_max = 2;
  const std::vector<JobSpec> jobs = {small_job("x", 5), y};
  const ServiceConfig cfg = durable_config();
  const std::vector<ParticleSet> want = reference_run(jobs, cfg);

  for (std::uint64_t crash_after = 1;; ++crash_after) {
    bool live = false;
    {
      Scheduler sched(cfg);
      for (const JobSpec& s : jobs) ASSERT_TRUE(sched.submit(s).accepted);
      live = sched.run_rounds(crash_after);
    }
    RestoredService restored =
        recover_from_journal(cfg.durability.journal_path);
    Scheduler resumed(std::move(restored));
    resumed.run_until_drained();
    const std::vector<JobId> ids = resumed.all_jobs();
    ASSERT_EQ(ids.size(), 2u);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(resumed.state(ids[i]), JobState::kCompleted)
          << "crash_after=" << crash_after;
      double t = 0.0;
      expect_bit_identical(resumed.final_state(ids[i], &t), want[i]);
    }
    if (!live) break;  // the "crash" landed after the run finished
  }
}

TEST_F(ServeRecoveryTest, FiredBoardDeathIsNotReplayed) {
  // Board 0 dies at round 1; the crash happens after. Recovery must
  // remember the death (the board stays dead, the death never re-fires)
  // and still finish every job bit-identically.
  const std::vector<JobSpec> jobs = {small_job("d1", 7), small_job("d2", 8)};
  ServiceConfig cfg = durable_config(3);
  cfg.board_deaths.push_back({1, 0});
  const std::vector<ParticleSet> want = reference_run(jobs, cfg);

  {
    Scheduler sched(cfg);
    for (const JobSpec& s : jobs) ASSERT_TRUE(sched.submit(s).accepted);
    ASSERT_TRUE(sched.run_rounds(2));  // death at round 1 has fired
  }
  RestoredService restored =
      recover_from_journal(cfg.durability.journal_path);
  ASSERT_EQ(restored.fired_deaths.size(), 1u);
  EXPECT_EQ(restored.fired_deaths[0].board, 0u);
  Scheduler resumed(std::move(restored));
  EXPECT_EQ(resumed.healthy_boards(), 2u);
  resumed.run_until_drained();
  EXPECT_EQ(resumed.stats().boards_dead, 1u);

  const std::vector<JobId> ids = resumed.all_jobs();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(resumed.state(ids[i]), JobState::kCompleted);
    double t = 0.0;
    expect_bit_identical(resumed.final_state(ids[i], &t), want[i]);
  }
}

TEST_F(ServeRecoveryTest, RecoveryAfterCompletionReconstructsResults) {
  // Crash after the run finished: everything is terminal in the journal.
  // Completed results must still be reconstructable (from the final
  // checkpoints) so snapshots can be re-written byte-identically.
  const std::vector<JobSpec> jobs = {small_job("done", 17)};
  const ServiceConfig cfg = durable_config();
  const std::vector<ParticleSet> want = reference_run(jobs, cfg);

  {
    Scheduler sched(cfg);
    ASSERT_TRUE(sched.submit(jobs[0]).accepted);
    sched.run_until_drained();
  }
  RecoveryInfo info;
  auto service = GrapeService::recover(cfg.durability.journal_path, &info);
  EXPECT_EQ(info.jobs_restored, 0u);
  EXPECT_EQ(info.jobs_already_terminal, 1u);
  service->run_until_drained();  // nothing to do; must be a no-op
  const std::vector<JobId> ids = service->jobs();
  ASSERT_EQ(ids.size(), 1u);
  ASSERT_EQ(service->state(ids[0]), JobState::kCompleted);
  double t = 0.0;
  expect_bit_identical(service->final_state(ids[0], &t), want[0]);
  EXPECT_EQ(service->stats().completed, 1u);  // exactly once, not twice
}

TEST_F(ServeRecoveryTest, TornTailIsDroppedAndRecoveryProceeds) {
  const ServiceConfig cfg = durable_config();
  {
    Scheduler sched(cfg);
    ASSERT_TRUE(sched.submit(small_job("torn", 3)).accepted);
    sched.run_rounds(1);
  }
  {  // kill -9 mid-append: an unterminated fragment after valid records
    std::ofstream os(cfg.durability.journal_path,
                     std::ios::app | std::ios::binary);
    os << "{\"seq\":99,\"type\":\"quan";
  }
  RecoveryInfo info;
  auto service = GrapeService::recover(cfg.durability.journal_path, &info);
  EXPECT_TRUE(info.torn_tail);
  service->run_until_drained();
  EXPECT_EQ(service->stats().completed, 1u);
}

TEST_F(ServeRecoveryTest, MalformedJournalIsRejected) {
  const ServiceConfig cfg = durable_config();
  {
    Scheduler sched(cfg);
    ASSERT_TRUE(sched.submit(small_job("ok", 4)).accepted);
    sched.run_rounds(1);
  }
  {  // a COMPLETE malformed line is corruption, not a torn tail
    std::ofstream os(cfg.durability.journal_path,
                     std::ios::app | std::ios::binary);
    os << "{\"seq\":99,\"type\":\"quantum\",\"bogus\":true}\n";
  }
  EXPECT_THROW(GrapeService::recover(cfg.durability.journal_path),
               JournalError);
}

TEST_F(ServeRecoveryTest, CheckpointTagMismatchIsRejected) {
  // A checkpoint whose run_tag does not match the journaled spec must be
  // refused for completed jobs (their results cannot be rebuilt any
  // other way) rather than silently resuming a different run.
  const ServiceConfig cfg = durable_config();
  {
    Scheduler sched(cfg);
    ASSERT_TRUE(sched.submit(small_job("tagged", 21)).accepted);
    sched.run_until_drained();
    ASSERT_EQ(sched.state(1), JobState::kCompleted);
  }
  // Overwrite the job's checkpoint (both generations) with one from a
  // DIFFERENT spec.
  const ServiceConfig cfg2 = [&] {
    ServiceConfig c = durable_config();
    c.durability.journal_path = (dir_ / "other.wal").string();
    return c;
  }();
  {
    Scheduler other(cfg2);
    ASSERT_TRUE(other.submit(small_job("impostor", 99)).accepted);
    other.run_until_drained();
  }
  fs::copy_file(dir_ / "ckpts" / "impostor.ckpt",
                dir_ / "ckpts" / "tagged.ckpt",
                fs::copy_options::overwrite_existing);
  fs::remove(dir_ / "ckpts" / "tagged.ckpt.prev");
  EXPECT_THROW(GrapeService::recover(cfg.durability.journal_path),
               JournalError);
}

TEST_F(ServeRecoveryTest, LiveJobWithLostCheckpointRerunsFromScratch) {
  // For a LIVE job a corrupt checkpoint is not fatal: recovery warns and
  // re-runs from scratch — slower, still bit-identical.
  const std::vector<JobSpec> jobs = {small_job("lost", 31)};
  const ServiceConfig cfg = durable_config();
  const std::vector<ParticleSet> want = reference_run(jobs, cfg);
  {
    Scheduler sched(cfg);
    ASSERT_TRUE(sched.submit(jobs[0]).accepted);
    ASSERT_TRUE(sched.run_rounds(2));
  }
  {  // corrupt both generations of its checkpoint
    std::ofstream os(dir_ / "ckpts" / "lost.ckpt", std::ios::trunc);
    os << "garbage";
  }
  fs::remove(dir_ / "ckpts" / "lost.ckpt.prev");
  RecoveryInfo info;
  auto service = GrapeService::recover(cfg.durability.journal_path, &info);
  EXPECT_EQ(info.jobs_restored, 1u);
  EXPECT_EQ(info.jobs_resumed_from_checkpoint, 0u);
  service->run_until_drained();
  ASSERT_EQ(service->state(service->jobs()[0]), JobState::kCompleted);
  double t = 0.0;
  expect_bit_identical(service->final_state(service->jobs()[0], &t),
                       want[0]);
}

TEST_F(ServeRecoveryTest, LeaseResizeSurvivesCrashBitIdentically) {
  // An autoscaling job (1..2 boards) next to a plain one on a 2-board
  // machine: when the plain job finishes, the freed board grows the
  // lease between quanta, appending a lease-resized journal record.
  // Crash right after the first resize; replay must rebuild boards_now
  // and the resize count exactly (the resumed pipeline keeps the
  // autoscaled shape), and the resumed run must land bit-identically
  // on the never-interrupted reference.
  JobSpec scaled = small_job("scaled", 51);
  scaled.t_end = 0.125;  // outlives the plain job: a board frees up
  scaled.boards_min = 1;
  scaled.boards_max = 2;
  const std::vector<JobSpec> jobs = {scaled, small_job("plain", 52)};
  const ServiceConfig cfg = durable_config(2);
  const std::vector<ParticleSet> want = reference_run(jobs, cfg);

  std::uint64_t resizes_at_crash = 0;
  std::size_t boards_at_crash = 0;
  {
    Scheduler sched(cfg);
    for (const JobSpec& s : jobs) ASSERT_TRUE(sched.submit(s).accepted);
    bool live = true;
    while (live && sched.report(1).resizes == 0) live = sched.run_rounds(1);
    ASSERT_TRUE(live) << "scaled job finished before any resize fired";
    resizes_at_crash = sched.report(1).resizes;
    boards_at_crash = sched.report(1).boards_now;
    ASSERT_GE(resizes_at_crash, 1u);
    EXPECT_EQ(boards_at_crash, 2u);  // grew into the freed board
  }  // abandoned un-drained: the crash

  RestoredService restored =
      recover_from_journal(cfg.durability.journal_path);
  ASSERT_EQ(restored.jobs.size(), 2u);
  EXPECT_EQ(restored.jobs[0].resizes, resizes_at_crash);
  EXPECT_EQ(restored.jobs[0].boards_now, boards_at_crash);

  Scheduler resumed(std::move(restored));
  resumed.run_until_drained();
  const std::vector<JobId> ids = resumed.all_jobs();
  ASSERT_EQ(ids.size(), 2u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(resumed.state(ids[i]), JobState::kCompleted) << jobs[i].name;
    double t = 0.0;
    expect_bit_identical(resumed.final_state(ids[i], &t), want[i]);
  }
  EXPECT_GE(resumed.report(ids[0]).resizes, resizes_at_crash);
}

TEST_F(ServeRecoveryTest, SigtermDrainCheckpointsAndResumes) {
  const std::vector<JobSpec> jobs = {small_job("s1", 41), small_job("s2", 42)};
  ServiceConfig cfg = durable_config();
  const std::vector<ParticleSet> want = reference_run(jobs, cfg);

  std::atomic<bool> stop{true};  // raised before the first round: instant drain
  cfg.stop_flag = &stop;
  {
    Scheduler sched(cfg);
    for (const JobSpec& s : jobs) ASSERT_TRUE(sched.submit(s).accepted);
    sched.run_until_drained();  // returns early: graceful stop
    EXPECT_EQ(sched.stats().completed, 0u);
  }
  auto service = GrapeService::recover(cfg.durability.journal_path);
  service->run_until_drained();
  const std::vector<JobId> ids = service->jobs();
  ASSERT_EQ(ids.size(), 2u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(service->state(ids[i]), JobState::kCompleted);
    double t = 0.0;
    expect_bit_identical(service->final_state(ids[i], &t), want[i]);
  }
}

}  // namespace
}  // namespace g6::serve
