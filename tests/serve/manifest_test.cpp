// Manifest loading: schema grape6-serve-manifest-v1, strict keys — a
// typo surfaces as ManifestError at load time, never as a silently
// mis-specified simulation.

#include <gtest/gtest.h>

#include <string>

#include "serve/manifest.hpp"

namespace g6::serve {
namespace {

const char* kGood = R"({
  "schema": "grape6-serve-manifest-v1",
  "service": {
    "max_queue_depth": 8,
    "quantum_blocksteps": 4,
    "max_requeues": 1,
    "boards_per_host": 2,
    "hosts_per_cluster": 1,
    "clusters": 1,
    "board_deaths": [ {"round": 3, "board": 0} ]
  },
  "jobs": [
    { "name": "a", "model": "plummer", "n": 64, "t_end": 0.125,
      "seed": 3, "boards": 1, "priority": "interactive" },
    { "name": "b", "n": 32, "boards": 2, "priority": "batch",
      "eta": 0.01, "eps": 0.03125, "w0": 5.0, "model": "king" }
  ]
})";

TEST(ServeManifest, ParsesEveryField) {
  const Manifest m = parse_manifest(kGood);
  EXPECT_EQ(m.service.max_queue_depth, 8u);
  EXPECT_EQ(m.service.quantum_blocksteps, 4u);
  EXPECT_EQ(m.service.max_requeues, 1);
  EXPECT_EQ(m.service.pool_boards(), 2u);
  ASSERT_EQ(m.service.board_deaths.size(), 1u);
  EXPECT_EQ(m.service.board_deaths[0].round, 3u);
  EXPECT_EQ(m.service.board_deaths[0].board, 0u);

  ASSERT_EQ(m.jobs.size(), 2u);
  EXPECT_EQ(m.jobs[0].name, "a");
  EXPECT_EQ(m.jobs[0].priority, Priority::kInteractive);
  EXPECT_EQ(m.jobs[0].n, 64u);
  EXPECT_EQ(m.jobs[1].model, "king");
  EXPECT_EQ(m.jobs[1].w0, 5.0);
  EXPECT_EQ(m.jobs[1].boards, 2u);
  EXPECT_EQ(m.jobs[1].priority, Priority::kBatch);
}

TEST(ServeManifest, DefaultsApplyWhenKeysAbsent) {
  const Manifest m = parse_manifest(R"({
    "schema": "grape6-serve-manifest-v1",
    "jobs": [ {"name": "solo"} ]
  })");
  const JobSpec defaults;
  EXPECT_EQ(m.jobs[0].model, defaults.model);
  EXPECT_EQ(m.jobs[0].n, defaults.n);
  EXPECT_EQ(m.jobs[0].t_end, defaults.t_end);
  EXPECT_EQ(m.service.max_queue_depth, ServiceConfig{}.max_queue_depth);
}

void expect_error(const std::string& text, const std::string& needle) {
  try {
    parse_manifest(text);
    FAIL() << "expected ManifestError mentioning '" << needle << "'";
  } catch (const ManifestError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual: " << e.what();
  }
}

TEST(ServeManifest, RejectsSchemaViolations) {
  expect_error("", "empty");
  expect_error("{", "not valid JSON");
  expect_error(R"({"jobs": []})", "schema");
  expect_error(R"({"schema": "v0", "jobs": [{"name":"a"}]})", "schema");
  expect_error(R"({"schema": "grape6-serve-manifest-v1", "jobs": []})",
               "empty");
}

TEST(ServeManifest, ServiceOnlyManifestHasNoJobs) {
  // No "jobs" key at all: the daemon-shape manifest (grape6_served gets
  // its jobs over the wire). Distinct from a present-but-empty array,
  // which stays an error above.
  const Manifest m = parse_manifest(R"({
    "schema": "grape6-serve-manifest-v1",
    "service": {"boards_per_host": 2, "hosts_per_cluster": 1, "clusters": 1}
  })");
  EXPECT_TRUE(m.jobs.empty());
  EXPECT_EQ(m.service.machine.boards_per_host, 2u);
}

TEST(ServeManifest, RejectsUnknownKeysEverywhere) {
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "jobs": [{"name":"a"}], "extra": 1})",
               "unknown key 'extra'");
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "service": {"quantum": 4}, "jobs": [{"name":"a"}]})",
               "unknown key 'quantum'");
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "jobs": [{"name":"a", "nparticles": 64}]})",
               "unknown key 'nparticles'");
}

TEST(ServeManifest, RejectsBadJobValues) {
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "jobs": [{"model": "plummer"}]})",
               "missing required key 'name'");
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "jobs": [{"name":"a", "n": 2.5}]})",
               "non-negative integer");
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "jobs": [{"name":"a", "priority": "urgent"}]})",
               "priority");
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "jobs": [{"name":"a", "model": "galaxy"}]})",
               "unknown model");
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "jobs": [{"name":"a"}, {"name":"a"}]})",
               "duplicate job name");
}

TEST(ServeManifest, RejectsBadServiceValues) {
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "service": {"quantum_blocksteps": 0},
                   "jobs": [{"name":"a"}]})",
               "quantum_blocksteps");
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "service": {"boards_per_host": 1, "hosts_per_cluster": 1,
                               "clusters": 1,
                               "board_deaths": [{"round": 1, "board": 4}]},
                   "jobs": [{"name":"a"}]})",
               "outside");
  expect_error(R"({"schema": "grape6-serve-manifest-v1",
                   "service": {"board_deaths": [{"round": 1}]},
                   "jobs": [{"name":"a"}]})",
               "board_deaths");
}

TEST(ServeManifest, LoadReportsMissingFile) {
  EXPECT_THROW(load_manifest("/nonexistent/manifest.json"), ManifestError);
}

}  // namespace
}  // namespace g6::serve
