// COMPILE-FAIL under clang -Wthread-safety -Werror (ctest WILL_FAIL):
// reading and writing a G6_GUARDED_BY member without its mutex. Under
// GCC the annotations are no-ops and this compiles cleanly — the
// analysis_gcc_noop_* tests assert exactly that, so the pair proves both
// halves of the macro contract.
//
// Not a gtest: the test IS the compiler invocation (-fsyntax-only).

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // BAD: guarded write without holding m_
  }

  int balance() const {
    return balance_;  // BAD: guarded read without holding m_
  }

 private:
  mutable g6::Mutex m_;
  int balance_ G6_GUARDED_BY(m_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.deposit(1);
  return a.balance();
}
