// The annotated mutex wrapper (util/mutex.hpp) must behave exactly like
// the std primitives it shims — the annotations are compile-time only —
// and the macros must be no-ops on compilers without the attributes
// (this file compiling and passing under GCC IS that proof; the
// clang-only compile-fail tests in this directory prove the other half:
// that -Wthread-safety rejects misuse of the same API).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

TEST(ThreadAnnotationsTest, MacrosExpandCleanly) {
  // A little class using every commonly-annotated shape. On GCC all the
  // G6_* macros vanish; on clang they attach attributes. Either way this
  // must compile and run.
  class Annotated {
   public:
    void set(int v) G6_EXCLUDES(m_) {
      g6::MutexLock lk(m_);
      value_ = v;
    }
    int get() const G6_EXCLUDES(m_) {
      g6::MutexLock lk(m_);
      return value_;
    }
    void locked_add(int v) G6_REQUIRES(m_) { value_ += v; }
    g6::Mutex& mu() G6_RETURN_CAPABILITY(m_) { return m_; }

   private:
    mutable g6::Mutex m_;
    int value_ G6_GUARDED_BY(m_) = 0;
  };

  Annotated a;
  a.set(41);
  {
    g6::MutexLock lk(a.mu());
    a.locked_add(1);
  }
  EXPECT_EQ(a.get(), 42);
}

TEST(ThreadAnnotationsTest, MutexExcludesConcurrentCriticalSections) {
  g6::Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  // Raw std::thread is fine here: this tests the mutex itself, below the
  // exec layer. (tests/ are exempt from g6lint raw-thread anyway.)
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        g6::MutexLock lk(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(ThreadAnnotationsTest, TryLockReflectsOwnership) {
  g6::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
}

TEST(ThreadAnnotationsTest, CondVarWakesWaiter) {
  g6::Mutex mu;
  g6::CondVar cv;
  bool ready = false;

  std::thread waiter([&] {
    g6::MutexLock lk(mu);
    cv.wait(mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  });

  {
    g6::MutexLock lk(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

TEST(ThreadAnnotationsTest, CondVarPlainWaitHandlesSpuriousWakeupLoop) {
  g6::Mutex mu;
  g6::CondVar cv;
  int stage = 0;

  std::thread waiter([&] {
    g6::MutexLock lk(mu);
    while (stage == 0) cv.wait(mu);
    EXPECT_EQ(stage, 1);
  });

  {
    g6::MutexLock lk(mu);
    stage = 1;
  }
  cv.notify_all();
  waiter.join();
}

}  // namespace
