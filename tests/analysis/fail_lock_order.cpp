// COMPILE-FAIL under clang -Wthread-safety -Wthread-safety-beta -Werror
// (ctest WILL_FAIL): violating a declared lock order. The beta analysis
// checks G6_ACQUIRED_BEFORE/AFTER — take the locks in the reverse of the
// declared order and the build goes red, which is the compile-time
// version of TSan's deadlock detector. GCC compiles this cleanly (the
// analysis_gcc_noop_* tests assert that half).
//
// Also exercises a G6_REQUIRES violation so the file fails under plain
// -Wthread-safety even if a toolchain lacks the beta checks.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class TwoLocks {
 public:
  void ordered() {
    g6::MutexLock a(first_);
    g6::MutexLock b(second_);
    ++under_both_;
  }

  void reversed() {
    g6::MutexLock b(second_);
    g6::MutexLock a(first_);  // BAD: second_ is declared acquired after first_
    ++under_both_;
  }

  void needs_first() G6_REQUIRES(first_) { ++under_both_; }

  void forgets_lock() {
    needs_first();  // BAD: G6_REQUIRES(first_) without holding it
  }

 private:
  g6::Mutex first_;
  g6::Mutex second_ G6_ACQUIRED_AFTER(first_);
  int under_both_ G6_GUARDED_BY(first_) G6_GUARDED_BY(second_) = 0;
};

}  // namespace

int main() {
  TwoLocks t;
  t.ordered();
  t.reversed();
  t.forgets_lock();
  return 0;
}
