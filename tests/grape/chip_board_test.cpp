#include "grape/board.hpp"
#include "grape/chip.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace g6 {
namespace {

std::vector<JParticle> random_particles(std::size_t n, Rng& rng) {
  std::vector<JParticle> js(n);
  for (auto& p : js) {
    p.mass = 1.0 / static_cast<double>(n);
    p.pos = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    p.vel = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
  }
  return js;
}

IParticlePacket probe(const NumberFormats& fmt, std::uint32_t index = 1000) {
  PredictedState s;
  s.index = index;
  s.pos = {0.1, 0.2, -0.1};
  s.vel = {0.0, 0.0, 0.0};
  return quantize_i_particle(s, fmt);
}

TEST(Chip, CycleCountFollowsVmpFormula) {
  MachineConfig mc;
  NumberFormats fmt;
  Chip chip(mc, fmt);
  Rng rng(3);
  const auto js = random_particles(100, rng);
  for (std::size_t i = 0; i < js.size(); ++i) {
    chip.write(i, quantize_j_particle(js[i], static_cast<std::uint32_t>(i), fmt));
  }

  std::vector<IParticlePacket> iblock(48, probe(fmt));
  std::vector<HwAccumulators> out(48);
  for (auto& a : out) a.reset({4, 8, 4});
  const std::uint64_t cycles = chip.run_pass(0.0, iblock, 1e-4, out);
  EXPECT_EQ(cycles, 8ull * 100ull + mc.pipeline_latency_cycles);
  EXPECT_EQ(chip.total_interactions(), 100ull * 48ull);
}

TEST(Chip, CycleCountIndependentOfBlockFill) {
  // Hardware does not run faster for half-filled virtual pipelines.
  MachineConfig mc;
  NumberFormats fmt;
  Chip chip(mc, fmt);
  Rng rng(4);
  const auto js = random_particles(64, rng);
  for (std::size_t i = 0; i < js.size(); ++i) {
    chip.write(i, quantize_j_particle(js[i], static_cast<std::uint32_t>(i), fmt));
  }
  std::vector<IParticlePacket> one(1, probe(fmt));
  std::vector<HwAccumulators> out1(1);
  out1[0].reset({4, 8, 4});
  std::vector<IParticlePacket> full(48, probe(fmt));
  std::vector<HwAccumulators> out48(48);
  for (auto& a : out48) a.reset({4, 8, 4});
  EXPECT_EQ(chip.run_pass(0.0, one, 1e-4, out1),
            chip.run_pass(0.0, full, 1e-4, out48));
}

TEST(Chip, RejectsOversizedBlock) {
  MachineConfig mc;
  NumberFormats fmt;
  Chip chip(mc, fmt);
  std::vector<IParticlePacket> iblock(49, probe(fmt));
  std::vector<HwAccumulators> out(49);
  EXPECT_THROW(chip.run_pass(0.0, iblock, 0.0, out), PreconditionError);
}

TEST(Board, StructureMatchesGrape6) {
  MachineConfig mc;
  NumberFormats fmt;
  ProcessorBoard board(mc, fmt);
  EXPECT_EQ(board.module_count(), 8u);
  EXPECT_EQ(board.chip_count(), 32u);
}

TEST(Board, PartitionInvariance) {
  // The same j-set on 1 chip vs spread over 32 chips must give the SAME
  // bits — the block floating-point reproducibility property (Sec 3.4).
  MachineConfig mc;
  NumberFormats fmt;
  Rng rng(5);
  const auto js = random_particles(256, rng);

  // All on one chip.
  ProcessorBoard lump(mc, fmt);
  for (std::size_t i = 0; i < js.size(); ++i) {
    lump.chip(0).write(i, quantize_j_particle(js[i], static_cast<std::uint32_t>(i), fmt));
  }
  // Spread round-robin.
  ProcessorBoard spread(mc, fmt);
  std::vector<std::size_t> next(spread.chip_count(), 0);
  for (std::size_t i = 0; i < js.size(); ++i) {
    const std::size_t c = i % spread.chip_count();
    spread.chip(c).write(next[c]++,
                         quantize_j_particle(js[i], static_cast<std::uint32_t>(i), fmt));
  }

  std::vector<IParticlePacket> iblock(5, probe(fmt));
  for (std::uint32_t k = 0; k < iblock.size(); ++k) iblock[k] = probe(fmt, 1000 + k);
  std::vector<HwAccumulators> a(iblock.size()), b(iblock.size());
  for (auto& x : a) x.reset({4, 10, 4});
  for (auto& x : b) x.reset({4, 10, 4});
  lump.run_pass(0.0, iblock, 1e-4, a);
  spread.run_pass(0.0, iblock, 1e-4, b);

  for (std::size_t k = 0; k < iblock.size(); ++k) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(a[k].acc[d].mantissa(), b[k].acc[d].mantissa());
      EXPECT_EQ(a[k].jerk[d].mantissa(), b[k].jerk[d].mantissa());
    }
    EXPECT_EQ(a[k].pot.mantissa(), b[k].pot.mantissa());
  }
}

TEST(Board, CyclesDominatedBySlowestChip) {
  MachineConfig mc;
  NumberFormats fmt;
  ProcessorBoard board(mc, fmt);
  Rng rng(6);
  const auto js = random_particles(10, rng);
  // Unbalanced: all j on chip 0.
  for (std::size_t i = 0; i < js.size(); ++i) {
    board.chip(0).write(i, quantize_j_particle(js[i], static_cast<std::uint32_t>(i), fmt));
  }
  std::vector<IParticlePacket> iblock(1, probe(fmt));
  std::vector<HwAccumulators> out(1);
  out[0].reset({4, 8, 4});
  const std::uint64_t cycles = board.run_pass(0.0, iblock, 1e-4, out);
  // chip time + module summation + board summation
  EXPECT_EQ(cycles, 8ull * 10ull + mc.pipeline_latency_cycles +
                        2ull * kSummationLatencyCycles);
}

TEST(NetworkBoard, ReduceMergesExactly) {
  std::vector<std::vector<HwAccumulators>> banks(4, std::vector<HwAccumulators>(1));
  for (auto& bank : banks) {
    bank[0].reset({4, 4, 4});
    bank[0].acc[0].add(0.25);
  }
  std::vector<HwAccumulators> out(1);
  out[0].reset({4, 4, 4});
  NetworkBoard::reduce(banks, out);
  EXPECT_DOUBLE_EQ(out[0].acc[0].value(), 1.0);
}

}  // namespace
}  // namespace g6
