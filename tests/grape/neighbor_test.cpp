// Neighbor-list hardware: comparator correctness, FIFO overflow flag,
// nearest-neighbor register, and agreement with the reference engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "grape/engine.hpp"
#include "hermite/direct_engine.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

std::vector<JParticle> plummer_j(std::size_t n, unsigned seed) {
  Rng rng(seed);
  const ParticleSet s = make_plummer(n, rng);
  std::vector<JParticle> js(n);
  for (std::size_t i = 0; i < n; ++i) {
    js[i].mass = s[i].mass;
    js[i].pos = s[i].pos;
    js[i].vel = s[i].vel;
  }
  return js;
}

std::vector<PredictedState> as_block(std::span<const JParticle> js) {
  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i] = {js[i].pos, js[i].vel, js[i].mass, static_cast<std::uint32_t>(i)};
  }
  return block;
}

TEST(HwNeighborRecorder, RecordsWithinRadiusAndTracksNearest) {
  HwNeighborRecorder rec;
  rec.reset(8);
  rec.record(1, 0.5, 1.0);
  rec.record(2, 2.0, 1.0);  // outside radius, still nearest-candidate
  rec.record(3, 0.1, 1.0);
  EXPECT_EQ(rec.indices.size(), 2u);
  EXPECT_EQ(rec.nearest, 3u);
  EXPECT_DOUBLE_EQ(rec.nearest_r2, 0.1);
  EXPECT_FALSE(rec.overflow);
}

TEST(HwNeighborRecorder, OverflowFlagWhenFifoFull) {
  HwNeighborRecorder rec;
  rec.reset(2);
  rec.record(0, 0.1, 1.0);
  rec.record(1, 0.2, 1.0);
  rec.record(2, 0.3, 1.0);
  EXPECT_EQ(rec.indices.size(), 2u);
  EXPECT_TRUE(rec.overflow);
}

TEST(HwNeighborRecorder, ResetKeepsIndexCapacityAcrossPasses) {
  // Recorders that live across passes (board/module scratch, engine
  // neighbor banks) must stop allocating once grown to their working
  // size: reset() clears but never shrinks the FIFO backing store.
  HwNeighborRecorder rec;
  rec.reserve(64);
  const std::size_t cap = rec.indices.capacity();
  ASSERT_GE(cap, 64u);
  const std::uint32_t* data = rec.indices.data();
  for (int pass = 0; pass < 4; ++pass) {
    rec.reset(64);
    EXPECT_TRUE(rec.indices.empty());
    for (std::uint32_t i = 0; i < 64; ++i) {
      rec.record(i, 0.1 + i, 1000.0);
    }
    EXPECT_EQ(rec.indices.size(), 64u);
    EXPECT_EQ(rec.indices.capacity(), cap) << "pass " << pass;
    EXPECT_EQ(rec.indices.data(), data) << "pass " << pass;
  }
}

TEST(HwNeighborRecorder, MergeCombinesListsAndNearest) {
  HwNeighborRecorder a, b;
  a.reset(8);
  b.reset(8);
  a.record(1, 0.5, 1.0);
  b.record(2, 0.2, 1.0);
  a.merge(b);
  EXPECT_EQ(a.indices.size(), 2u);
  EXPECT_EQ(a.nearest, 2u);
  EXPECT_FALSE(a.overflow);
}

TEST(GrapeNeighbors, MatchesDirectEngineLists) {
  const double eps = 0.01;
  const auto js = plummer_j(128, 61);
  const auto block = as_block(js);
  std::vector<double> radii(js.size(), 0.04);  // h^2

  DirectForceEngine ref(eps);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats::exact(), eps);
  ref.load_particles(js);
  hw.load_particles(js);

  std::vector<Force> fr(js.size()), fh(js.size());
  std::vector<NeighborResult> nr(js.size()), nh(js.size());
  ref.compute_forces_neighbors(0.0, block, radii, fr, nr);
  hw.compute_forces_neighbors(0.0, block, radii, fh, nh);

  for (std::size_t i = 0; i < js.size(); ++i) {
    auto a = nr[i].indices;
    auto b = nh[i].indices;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "particle " << i;
    EXPECT_EQ(nr[i].nearest, nh[i].nearest) << i;
  }
}

TEST(GrapeNeighbors, NearestNeighborIsTrulyNearest) {
  const auto js = plummer_j(64, 62);
  const auto block = as_block(js);
  std::vector<double> radii(js.size(), 1e-6);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats::exact(), 0.01);
  hw.load_particles(js);
  std::vector<Force> f(js.size());
  std::vector<NeighborResult> nb(js.size());
  hw.compute_forces_neighbors(0.0, block, radii, f, nb);

  const double eps2 = 0.01 * 0.01;
  for (std::size_t i = 0; i < js.size(); ++i) {
    double best = 1e30;
    std::uint32_t best_j = 0;
    for (std::size_t j = 0; j < js.size(); ++j) {
      if (j == i) continue;
      const double r2 = norm2(js[j].pos - js[i].pos) + eps2;
      if (r2 < best) {
        best = r2;
        best_j = static_cast<std::uint32_t>(j);
      }
    }
    EXPECT_EQ(nb[i].nearest, best_j) << i;
  }
}

TEST(GrapeNeighbors, ChipFifoOverflowSurfacesToHost) {
  // Tiny per-chip FIFO + everything on one chip -> guaranteed overflow.
  MachineConfig mc = MachineConfig::single_host();
  mc.boards_per_host = 1;
  mc.neighbor_buffer_per_chip = 1;  // 64 j over 32 chips: 2 per chip FIFO of 1
  const auto js = plummer_j(64, 63);
  const auto block = as_block(std::span(js).subspan(0, 1));
  std::vector<double> radii(1, 100.0);  // everyone is a neighbor

  GrapeForceEngine hw(mc, NumberFormats::exact(), 0.01);
  hw.load_particles(js);
  std::vector<Force> f(1);
  std::vector<NeighborResult> nb(1);
  hw.compute_forces_neighbors(0.0, block, radii, f, nb);
  EXPECT_TRUE(nb[0].overflow);
}

TEST(GrapeNeighbors, ForcesUnchangedByNeighborSearch) {
  // The comparator rides along the force datapath: identical forces with
  // and without neighbor collection.
  const auto js = plummer_j(96, 64);
  const auto block = as_block(js);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{}, 0.01);
  hw.load_particles(js);
  std::vector<Force> f1(js.size()), f2(js.size());
  hw.compute_forces(0.0, block, f1);
  std::vector<double> radii(js.size(), 0.05);
  std::vector<NeighborResult> nb(js.size());
  hw.compute_forces_neighbors(0.0, block, radii, f2, nb);
  for (std::size_t i = 0; i < js.size(); ++i) {
    EXPECT_EQ(f1[i].acc, f2[i].acc) << i;
    EXPECT_EQ(f1[i].pot, f2[i].pot) << i;
  }
}

TEST(GrapeNeighbors, UnsupportedEngineThrows) {
  // ForceEngine's default implementation must refuse.
  class NoNeighbors final : public ForceEngine {
   public:
    void load_particles(std::span<const JParticle>) override {}
    void update_particle(std::size_t, const JParticle&) override {}
    void compute_forces(double, std::span<const PredictedState>,
                        std::span<Force>) override {}
    double softening() const override { return 0.0; }
    std::size_t size() const override { return 0; }
  } engine;
  EXPECT_FALSE(engine.supports_neighbors());
  EXPECT_THROW(engine.compute_forces_neighbors(0.0, {}, {}, {}, {}),
               std::logic_error);
}

}  // namespace
}  // namespace g6
