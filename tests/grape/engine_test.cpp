#include "grape/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hermite/direct_engine.hpp"
#include "hermite/integrator.hpp"
#include "nbody/diagnostics.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

std::vector<JParticle> plummer_j(std::size_t n, unsigned seed) {
  Rng rng(seed);
  const ParticleSet s = make_plummer(n, rng);
  std::vector<JParticle> js(n);
  for (std::size_t i = 0; i < n; ++i) {
    js[i].mass = s[i].mass;
    js[i].pos = s[i].pos;
    js[i].vel = s[i].vel;
  }
  return js;
}

std::vector<PredictedState> as_block(std::span<const JParticle> js) {
  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i] = {js[i].pos, js[i].vel, js[i].mass, static_cast<std::uint32_t>(i)};
  }
  return block;
}

TEST(GrapeEngine, ForcesMatchDirectEngine) {
  const double eps = 1.0 / 64.0;
  const auto js = plummer_j(128, 51);

  DirectForceEngine ref(eps);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{}, eps);
  ref.load_particles(js);
  hw.load_particles(js);

  const auto block = as_block(js);
  std::vector<Force> fr(js.size()), fh(js.size());
  ref.compute_forces(0.0, block, fr);
  hw.compute_forces(0.0, block, fh);

  for (std::size_t i = 0; i < js.size(); ++i) {
    const double scale = std::max(1.0, norm(fr[i].acc));
    EXPECT_NEAR(norm(fh[i].acc - fr[i].acc), 0.0, 3e-5 * scale) << i;
    EXPECT_NEAR(fh[i].pot, fr[i].pot, 3e-5 * std::fabs(fr[i].pot)) << i;
    EXPECT_NEAR(norm(fh[i].jerk - fr[i].jerk), 0.0,
                1e-3 * std::max(1.0, norm(fr[i].jerk)))
        << i;
  }
}

TEST(GrapeEngine, BoardCountInvariance) {
  // 1-board and 4-board systems must return bit-identical forces: the
  // paper's "exactly the same results on machines with different sizes".
  const double eps = 1.0 / 64.0;
  const auto js = plummer_j(96, 52);
  const auto block = as_block(js);

  MachineConfig one = MachineConfig::single_host();
  one.boards_per_host = 1;
  MachineConfig four = MachineConfig::single_host();
  four.boards_per_host = 4;

  GrapeForceEngine e1(one, NumberFormats{}, eps);
  GrapeForceEngine e4(four, NumberFormats{}, eps);
  e1.load_particles(js);
  e4.load_particles(js);

  std::vector<Force> f1(js.size()), f4(js.size());
  e1.compute_forces(0.0, block, f1);
  e4.compute_forces(0.0, block, f4);

  for (std::size_t i = 0; i < js.size(); ++i) {
    EXPECT_EQ(f1[i].acc, f4[i].acc) << i;
    EXPECT_EQ(f1[i].jerk, f4[i].jerk) << i;
    EXPECT_EQ(f1[i].pot, f4[i].pot) << i;
  }
}

TEST(GrapeEngine, ExponentRetriesConvergeAndAdapt) {
  const auto js = plummer_j(64, 53);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{}, 0.01);
  hw.load_particles(js);
  const auto block = as_block(js);
  std::vector<Force> f(js.size());
  // First call may retry (default exponent guesses), later calls should
  // mostly reuse remembered exponents.
  hw.compute_forces(0.0, block, f);
  const auto retries_first = hw.stats().retries;
  hw.compute_forces(0.0, block, f);
  EXPECT_EQ(hw.stats().retries, retries_first);  // no new retries
}

TEST(GrapeEngine, VirtualTimeAdvances) {
  const auto js = plummer_j(256, 54);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{}, 0.01);
  hw.load_particles(js);
  const double dma0 = hw.stats().dma_seconds;
  EXPECT_GT(dma0, 0.0);  // initial memory upload

  const auto block = as_block(std::span(js).subspan(0, 48));
  std::vector<Force> f(48);
  hw.compute_forces(0.0, block, f);
  EXPECT_GT(hw.stats().grape_seconds, 0.0);
  EXPECT_GT(hw.stats().dma_seconds, dma0);
  EXPECT_GT(hw.last_call_seconds(), 0.0);
  EXPECT_EQ(hw.stats().passes, 1u + hw.stats().retries);
  // 256 j over 128 chips = 2/chip: pass cycles = 8*2 + latency + reductions.
  const double expect_pass_s =
      (8.0 * 2.0 + 60.0 + 2 * 8.0 + NetworkBoard::kLatencyCycles) / 90.0e6;
  EXPECT_NEAR(hw.stats().grape_seconds,
              expect_pass_s * static_cast<double>(hw.stats().passes),
              expect_pass_s * 0.01);
}

TEST(GrapeEngine, IntegratorOnEmulatedHardwareConservesEnergy) {
  Rng rng(55);
  const double eps = 1.0 / 64.0;
  const ParticleSet s = make_plummer(64, rng);

  // Keep the emulation cheap: one board.
  MachineConfig mc = MachineConfig::single_host();
  mc.boards_per_host = 1;
  GrapeForceEngine hw(mc, NumberFormats{}, eps);
  HermiteConfig cfg;
  cfg.eta = 0.02;
  HermiteIntegrator integ(s, hw, cfg);

  const double e0 = compute_energy(s.bodies(), eps).total();
  integ.evolve(0.25);
  const double e1 =
      compute_energy(integ.state_at_current_time().bodies(), eps).total();
  // Hardware precision (24-bit pipeline) bounds the drift well above the
  // double-precision engine but far below dynamical significance.
  EXPECT_LT(std::fabs((e1 - e0) / e0), 5e-4);
}

TEST(GrapeEngine, MatchesDirectEngineDuringEvolution) {
  // Same ICs integrated with CPU and emulated-GRAPE engines must stay
  // close over a short span (divergence is chaotic eventually).
  Rng rng(56);
  const double eps = 0.05;
  const ParticleSet s = make_plummer(32, rng);

  DirectForceEngine ce(eps);
  MachineConfig mc = MachineConfig::single_host();
  mc.boards_per_host = 1;
  GrapeForceEngine ge(mc, NumberFormats{}, eps);

  HermiteIntegrator a(s, ce), b(s, ge);
  a.evolve(0.125);
  b.evolve(0.125);
  const ParticleSet sa = a.state_at_current_time();
  const ParticleSet sb = b.state_at_current_time();
  double max_dev = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    max_dev = std::max(max_dev, norm(sa[i].pos - sb[i].pos));
  }
  EXPECT_LT(max_dev, 1e-3);
}

}  // namespace
}  // namespace g6
