#include "grape/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hermite/direct_engine.hpp"
#include "hermite/scheme.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

StoredJParticle make_stored(const JParticle& p, std::uint32_t idx,
                            const NumberFormats& fmt) {
  return quantize_j_particle(p, idx, fmt);
}

TEST(PredictorUnit, MatchesHostPredictorWithinFormatPrecision) {
  NumberFormats fmt;
  PredictorUnit unit(fmt);
  const FixedPointCodec codec = fmt.coord_codec();

  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    JParticle p;
    p.mass = 0.001;
    p.t0 = 0.5;
    p.pos = {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
    p.vel = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    p.acc = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    p.jerk = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    p.snap = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    const double t = 0.5 + 0.0625;  // one max-level step ahead

    const auto hw = unit.predict(make_stored(p, 0, fmt), t);
    Vec3 xd, vd;
    hermite_predict(p, t, xd, vd);

    for (int d = 0; d < 3; ++d) {
      // Predictor format has 20 fraction bits; the correction term is
      // O(v*dt) ~ 0.1, so absolute error ~ 1e-7 is in spec.
      EXPECT_NEAR(codec.decode(hw.pos[d]), xd[d], 1e-6);
      EXPECT_NEAR(hw.vel[d], vd[d], 1e-5);
    }
  }
}

TEST(PredictorUnit, ZeroDtReturnsStoredValues) {
  NumberFormats fmt;
  PredictorUnit unit(fmt);
  JParticle p;
  p.mass = 1.0;
  p.t0 = 0.25;
  p.pos = {1.0, -1.0, 0.5};
  p.vel = {0.125, 0.25, -0.5};  // exactly representable
  const StoredJParticle s = make_stored(p, 3, fmt);
  const auto hw = unit.predict(s, 0.25);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(hw.pos[d], s.pos[d]);
    EXPECT_EQ(hw.vel[d], s.vel[d]);
  }
}

TEST(ForcePipeline, MatchesDoubleReferenceToPipelinePrecision) {
  NumberFormats fmt;
  ForcePipeline pipe(fmt);
  PredictorUnit unit(fmt);
  Rng rng(2);
  const double eps2 = 1e-4;

  for (int trial = 0; trial < 100; ++trial) {
    JParticle jp;
    jp.mass = rng.uniform(1e-4, 1e-2);
    jp.pos = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    jp.vel = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    PredictedState ip;
    ip.index = 1;
    ip.pos = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    ip.vel = {rng.gaussian(), rng.gaussian(), rng.gaussian()};

    const auto pj = unit.predict(make_stored(jp, 0, fmt), 0.0);
    HwAccumulators acc;
    acc.reset({0, 4, 0});
    pipe.interact(pj, quantize_i_particle(ip, fmt), eps2, acc);
    ASSERT_FALSE(acc.overflow());
    const Force hw = acc.decode();

    Force ref;
    accumulate_pairwise(ip.pos, ip.vel, jp.pos, jp.vel, jp.mass, eps2, ref);

    const double atol = 1e-5 * std::max(1.0, norm(ref.acc));
    EXPECT_NEAR(norm(hw.acc - ref.acc), 0.0, atol) << trial;
    EXPECT_NEAR(norm(hw.jerk - ref.jerk), 0.0,
                1e-4 * std::max(1.0, norm(ref.jerk)))
        << trial;
    EXPECT_NEAR(hw.pot, ref.pot, 1e-5 * std::fabs(ref.pot)) << trial;
  }
}

TEST(ForcePipeline, SelfInteractionIsSkipped) {
  NumberFormats fmt;
  ForcePipeline pipe(fmt);
  PredictorUnit unit(fmt);
  JParticle jp;
  jp.mass = 1.0;
  jp.pos = {0.5, 0.0, 0.0};
  const auto pj = unit.predict(make_stored(jp, 7, fmt), 0.0);

  PredictedState ip;
  ip.index = 7;  // same particle
  ip.pos = {0.5, 0.0, 0.0};
  HwAccumulators acc;
  acc.reset({0, 0, 0});
  pipe.interact(pj, quantize_i_particle(ip, fmt), 0.0, acc);
  EXPECT_EQ(acc.decode().pot, 0.0);
  EXPECT_EQ(norm(acc.decode().acc), 0.0);
}

TEST(ForcePipeline, ExactModeMatchesDoubleExactlyOnGrid) {
  // With wide formats the only deviations are the coordinate grid snap and
  // the BFP result grid; use exactly-representable inputs to check zero
  // error end to end.
  NumberFormats fmt = NumberFormats::exact();
  ForcePipeline pipe(fmt);
  PredictorUnit unit(fmt);

  JParticle jp;
  jp.mass = 0.5;
  jp.pos = {1.0, 0.0, 0.0};
  PredictedState ip;
  ip.index = 1;
  ip.pos = {0.0, 0.0, 0.0};

  const auto pj = unit.predict(make_stored(jp, 0, fmt), 0.0);
  HwAccumulators acc;
  acc.reset({0, 0, 0});
  pipe.interact(pj, quantize_i_particle(ip, fmt), 0.0, acc);
  const Force hw = acc.decode();
  EXPECT_NEAR(hw.acc.x, 0.5, 1e-15);
  EXPECT_NEAR(hw.pot, -0.5, 1e-15);
}

TEST(HwAccumulators, OverflowDetectedAndReportedThroughBank) {
  NumberFormats fmt;
  ForcePipeline pipe(fmt);
  PredictorUnit unit(fmt);
  JParticle jp;
  jp.mass = 1.0;
  jp.pos = {1e-3, 0.0, 0.0};  // huge force at tiny separation
  PredictedState ip;
  ip.index = 1;
  HwAccumulators acc;
  acc.reset({-20, -20, -20});  // absurdly small block exponents
  const auto pj = unit.predict(make_stored(jp, 0, fmt), 0.0);
  pipe.interact(pj, quantize_i_particle(ip, fmt), 0.0, acc);
  EXPECT_TRUE(acc.overflow());
}

}  // namespace
}  // namespace g6
