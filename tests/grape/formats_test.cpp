#include "hw/formats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "grape/config.hpp"

namespace g6 {
namespace {

TEST(Formats, JParticleQuantization) {
  NumberFormats fmt;
  JParticle p;
  p.mass = 1.0 / 3.0;
  p.t0 = 0.125;
  p.pos = {1.0 / 3.0, -2.0 / 7.0, 0.1};
  p.vel = {0.123456789, -1.0, 2.0};
  p.acc = {3.0, 4.0, 5.0};
  p.jerk = {1e-3, 2e-3, 3e-3};
  p.snap = {0.0, -1e2, 1e-8};

  const StoredJParticle s = quantize_j_particle(p, 42, fmt);
  EXPECT_EQ(s.index, 42u);
  EXPECT_EQ(s.t0, 0.125);
  EXPECT_EQ(s.mass, fmt.pipeline.quantize(p.mass));

  const FixedPointCodec codec = fmt.coord_codec();
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(codec.decode(s.pos[d]), p.pos[d], codec.resolution());
    EXPECT_EQ(s.vel[d], fmt.velocity.quantize(p.vel[d]));
    EXPECT_EQ(s.acc[d], fmt.predictor.quantize(p.acc[d]));
    EXPECT_EQ(s.jerk[d], fmt.predictor.quantize(p.jerk[d]));
    EXPECT_EQ(s.snap[d], fmt.predictor.quantize(p.snap[d]));
  }
}

TEST(Formats, IParticleQuantization) {
  NumberFormats fmt;
  PredictedState p;
  p.index = 7;
  p.pos = {10.0, -20.0, 0.5};
  p.vel = {1.0 / 3.0, 0.0, -0.25};
  const IParticlePacket pkt = quantize_i_particle(p, fmt);
  EXPECT_EQ(pkt.index, 7u);
  const FixedPointCodec codec = fmt.coord_codec();
  EXPECT_NEAR(codec.decode(pkt.pos[0]), 10.0, codec.resolution());
  EXPECT_EQ(pkt.vel.x, fmt.velocity.quantize(1.0 / 3.0));
}

TEST(Formats, ExactModeUsesWideFormats) {
  const NumberFormats f = NumberFormats::exact();
  EXPECT_GE(f.pipeline.frac_bits(), 52);
  EXPECT_GE(f.predictor.frac_bits(), 52);
}

TEST(MachineConfig, Grape6Arithmetic) {
  const MachineConfig full = MachineConfig::full_system();
  EXPECT_EQ(full.i_parallelism(), 48u);
  EXPECT_EQ(full.chips_per_board(), 32u);
  EXPECT_EQ(full.total_hosts(), 16u);
  EXPECT_EQ(full.total_boards(), 64u);
  EXPECT_EQ(full.total_chips(), 2048u);
  // 30.78 Gflops per chip, 63.04 Tflops total (Sec 1).
  EXPECT_NEAR(full.chip_peak_flops(), 30.78e9, 1e7);
  EXPECT_NEAR(full.peak_flops(), 63.04e12, 0.05e12);
}

TEST(MachineConfig, SingleHostIsQuarterCluster) {
  const MachineConfig host = MachineConfig::single_host();
  EXPECT_EQ(host.chips_per_host(), 128u);
  EXPECT_NEAR(host.chip_peak_flops() * 128.0, 3.94e12, 0.01e12);
}

TEST(DmaModel, TransferTimeHasSetupAndBandwidthTerms) {
  DmaModel dma;
  dma.setup_s = 10e-6;
  dma.bandwidth_Bps = 100e6;
  EXPECT_DOUBLE_EQ(dma.transfer_time(0), 10e-6);
  EXPECT_DOUBLE_EQ(dma.transfer_time(100'000'000), 10e-6 + 1.0);
}

}  // namespace
}  // namespace g6
