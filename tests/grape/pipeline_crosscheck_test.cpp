// Scalar-vs-batched pipeline crosscheck: the batched fast path
// (Chip::run_pass in PipelineMode::kBatched) must be BIT-IDENTICAL to the
// scalar reference path on every observable hardware word — accumulator
// mantissas, block exponents, overflow flags, neighbor FIFO contents and
// order, and the nearest-neighbor register — for every number-format
// preset, with and without neighbor collection, with a fault injector
// attached, and at any thread count. This is the contract that lets the
// fast path replace the scalar pipeline without invalidating a single
// recorded snapshot.
//
// Also verifies the FloatFormat::quantize fast bit-manipulation path
// against quantize_ref(), its independently-derived libm oracle, over
// structured and random bit patterns (the doc comment in util/softfloat.hpp
// points here).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "exec/thread_pool.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "grape/chip.hpp"
#include "grape/engine.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

std::vector<JParticle> random_js(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JParticle> js(n);
  for (auto& p : js) {
    p.mass = 1.0 / static_cast<double>(n);
    p.pos = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    p.vel = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    p.acc = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    p.jerk = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    p.snap = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
  }
  return js;
}

struct PassResult {
  std::vector<HwAccumulators> acc;
  std::vector<HwNeighborRecorder> nb;
};

/// One chip pass over `js` in the given pipeline mode; 48 i-particles are
/// the first 48 j's (self-interaction cut exercises the index compare).
PassResult run_chip_pass(PipelineMode mode, const NumberFormats& fmt,
                         const std::vector<JParticle>& js, double t,
                         double eps2, bool want_nb, double h2) {
  MachineConfig mc;
  mc.pipeline_mode = mode;
  Chip chip(mc, fmt);
  chip.reserve_slots(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    chip.write(i, quantize_j_particle(js[i], static_cast<std::uint32_t>(i), fmt));
  }
  std::vector<IParticlePacket> iblock;
  for (std::size_t i = 0; i < chip.i_parallelism() && i < js.size(); ++i) {
    PredictedState s;
    s.index = static_cast<std::uint32_t>(i);
    s.pos = js[i].pos;
    s.vel = js[i].vel;
    iblock.push_back(quantize_i_particle(s, fmt));
  }
  PassResult r;
  r.acc.resize(iblock.size());
  for (auto& a : r.acc) a.reset({4, 8, 4});
  if (want_nb) {
    r.nb.resize(iblock.size());
    for (std::size_t k = 0; k < r.nb.size(); ++k) {
      r.nb[k].reset(8);  // tiny FIFO: force overflow-flag coverage
      r.nb[k].indices.reserve(8);
    }
    for (auto& p : iblock) p.h2 = h2;
  }
  chip.run_pass(t, iblock, eps2, r.acc,
                want_nb ? std::span<HwNeighborRecorder>(r.nb)
                        : std::span<HwNeighborRecorder>{});
  return r;
}

void expect_bit_identical(const PassResult& a, const PassResult& b) {
  ASSERT_EQ(a.acc.size(), b.acc.size());
  for (std::size_t k = 0; k < a.acc.size(); ++k) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(a.acc[k].acc[d].mantissa(), b.acc[k].acc[d].mantissa())
          << "acc i=" << k << " d=" << d;
      EXPECT_EQ(a.acc[k].jerk[d].mantissa(), b.acc[k].jerk[d].mantissa())
          << "jerk i=" << k << " d=" << d;
      EXPECT_EQ(a.acc[k].acc[d].block_exp(), b.acc[k].acc[d].block_exp()) << k;
      EXPECT_EQ(a.acc[k].jerk[d].block_exp(), b.acc[k].jerk[d].block_exp()) << k;
    }
    EXPECT_EQ(a.acc[k].pot.mantissa(), b.acc[k].pot.mantissa()) << k;
    EXPECT_EQ(a.acc[k].pot.block_exp(), b.acc[k].pot.block_exp()) << k;
    EXPECT_EQ(a.acc[k].overflow(), b.acc[k].overflow()) << k;
  }
  ASSERT_EQ(a.nb.size(), b.nb.size());
  for (std::size_t k = 0; k < a.nb.size(); ++k) {
    EXPECT_EQ(a.nb[k].indices, b.nb[k].indices) << k;  // contents AND order
    EXPECT_EQ(a.nb[k].overflow, b.nb[k].overflow) << k;
    EXPECT_EQ(a.nb[k].has_nearest, b.nb[k].has_nearest) << k;
    if (a.nb[k].has_nearest && b.nb[k].has_nearest) {
      EXPECT_EQ(a.nb[k].nearest, b.nb[k].nearest) << k;
      EXPECT_EQ(a.nb[k].nearest_r2, b.nb[k].nearest_r2) << k;
    }
  }
}

TEST(PipelineCrosscheck, BitIdenticalAcrossFormatsEpsAndNeighbors) {
  const auto js = random_js(96, 0x5eed);
  const NumberFormats presets[] = {
      NumberFormats{},            // hardware formats
      NumberFormats::exact(),     // wide path (per-op rounding skipped)
      [] {                        // narrow custom format
        NumberFormats f;
        f.pipeline = FloatFormat(16, -62, 63);
        f.velocity = FloatFormat(16, -62, 63);
        f.predictor = FloatFormat(12, -62, 63);
        return f;
      }(),
  };
  Rng rng(0xe952);
  for (const auto& fmt : presets) {
    for (bool want_nb : {false, true}) {
      const double eps2 = std::pow(10.0, rng.uniform(-6, -2));
      const auto scalar = run_chip_pass(PipelineMode::kScalar, fmt, js, 0.125,
                                        eps2, want_nb, 0.5);
      const auto batched = run_chip_pass(PipelineMode::kBatched, fmt, js, 0.125,
                                         eps2, want_nb, 0.5);
      expect_bit_identical(scalar, batched);
    }
  }
}

TEST(PipelineCrosscheck, CheckModeMatchesScalarAndSelfVerifies) {
  // kCheck runs both paths and G6_REQUIREs agreement internally; its
  // returned bank must equal the plain scalar pass.
  const auto js = random_js(64, 42);
  const auto scalar = run_chip_pass(PipelineMode::kScalar, NumberFormats{}, js,
                                    0.25, 1e-4, true, 0.25);
  const auto check = run_chip_pass(PipelineMode::kCheck, NumberFormats{}, js,
                                   0.25, 1e-4, true, 0.25);
  expect_bit_identical(scalar, check);
}

/// Full-engine forces under a given pipeline mode and fault plan.
std::vector<Force> run_engine(PipelineMode mode, const std::vector<JParticle>& js,
                              bool with_faults,
                              fault::FaultInjector::Counts* counts = nullptr) {
  MachineConfig mc;
  mc.boards_per_host = 2;
  mc.pipeline_mode = mode;
  GrapeForceEngine hw(mc, NumberFormats{}, 0.01);
  std::shared_ptr<fault::FaultInjector> inj;
  if (with_faults) {
    fault::FaultPlan plan;
    plan.seed = 0x6701;
    plan.jmem_flip_rate = 2e-3;
    plan.ipacket_rate = 2e-3;
    inj = std::make_shared<fault::FaultInjector>(plan);
    hw.enable_fault_tolerance(inj);
  }
  hw.load_particles(js);
  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i].index = static_cast<std::uint32_t>(i);
    block[i].pos = js[i].pos;
    block[i].vel = js[i].vel;
  }
  std::vector<Force> f(js.size());
  hw.compute_forces(0.0, block, f);
  hw.compute_forces(0.0, block, f);  // steady-state exponents
  if (counts && inj) *counts = inj->counts();
  return f;
}

TEST(PipelineCrosscheck, FaultInjectionStreamIndependentOfPipelineMode) {
  // Same plan + seed: the injector's RNG stream walks j-memory slots in
  // the same order on both paths, so the injected faults, the recovery
  // actions, and the final forces are all identical.
  const auto js = random_js(96, 7);
  fault::FaultInjector::Counts cs, cb;
  const auto fs = run_engine(PipelineMode::kScalar, js, true, &cs);
  const auto fb = run_engine(PipelineMode::kBatched, js, true, &cb);
  EXPECT_EQ(cs.jmem_flips, cb.jmem_flips);
  EXPECT_EQ(cs.ipacket_corruptions, cb.ipacket_corruptions);
  ASSERT_EQ(fs.size(), fb.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    EXPECT_EQ(fs[i].acc, fb[i].acc) << i;
    EXPECT_EQ(fs[i].jerk, fb[i].jerk) << i;
    EXPECT_EQ(fs[i].pot, fb[i].pot) << i;
  }
}

TEST(PipelineCrosscheck, BatchedBitIdenticalAcrossThreadCounts) {
  struct GlobalThreadsGuard {
    ~GlobalThreadsGuard() { exec::ThreadPool::set_global_threads(0); }
  } guard;
  const auto js = random_js(128, 99);
  std::vector<Force> ref;
  for (unsigned threads : {1u, 2u, 8u}) {
    exec::ThreadPool::set_global_threads(threads);
    const auto f = run_engine(PipelineMode::kBatched, js, false);
    if (ref.empty()) {
      ref = f;
      continue;
    }
    ASSERT_EQ(ref.size(), f.size());
    for (std::size_t i = 0; i < f.size(); ++i) {
      EXPECT_EQ(ref[i].acc, f[i].acc) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(ref[i].jerk, f[i].jerk) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(ref[i].pot, f[i].pot) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(PipelineCrosscheck, QuantizeFastPathMatchesReferenceOracle) {
  const FloatFormat fmts[] = {formats::pipeline(), formats::velocity(),
                              formats::predictor(), formats::ieee_double(),
                              FloatFormat(4, -8, 7), FloatFormat(16, -62, 63),
                              FloatFormat(51, -1022, 1023)};
  // Structured patterns: powers of two, halfway (tie) cases just below and
  // above, format boundaries, zeros, subnormal doubles, inf.
  std::vector<double> probes = {0.0, -0.0, 1.0, -1.0, 0.5, 2.0, 1e-300,
                                -1e-300, 1e300, 5e-324, -5e-324,
                                std::numeric_limits<double>::infinity()};
  for (int e = -40; e <= 40; ++e) {
    const double p = std::ldexp(1.0, e);
    for (double m : {1.0, 1.5, 1.0 + std::ldexp(1.0, -24),
                     1.0 + std::ldexp(3.0, -25), 1.999999}) {
      probes.push_back(m * p);
      probes.push_back(-m * p);
    }
  }
  Rng rng(0xfa57);
  for (int i = 0; i < 200000; ++i) {
    // Random bit patterns spanning the full double range (skip NaN/inf,
    // which pass through by construction and break == comparison).
    const double x = std::bit_cast<double>(rng.next_u64());
    if (!std::isfinite(x)) continue;
    probes.push_back(x);
  }
  for (const auto& f : fmts) {
    for (double x : probes) {
      if (std::isnan(x)) continue;
      const double fast = f.quantize(x);
      const double ref = f.quantize_ref(x);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(fast),
                std::bit_cast<std::uint64_t>(ref))
          << "x=" << std::hexfloat << x << " frac=" << f.frac_bits();
    }
  }
}

}  // namespace
}  // namespace g6
