// JStore: the structure-of-arrays j-particle memory. Word accessors must
// round-trip bit-exactly (the fault subsystem flips bits through them),
// ensure_size must pre-size all columns so incremental uploads never
// reallocate, and the AoS conversion helpers must be lossless.

#include <gtest/gtest.h>

#include <vector>

#include "hw/jstore.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

StoredJParticle random_word(Rng& rng, std::uint32_t index) {
  StoredJParticle p;
  p.index = index;
  p.mass = rng.uniform();
  p.t0 = rng.uniform(0.0, 1.0);
  for (int d = 0; d < 3; ++d) {
    p.pos[d] = static_cast<std::int64_t>(rng.next_u64());
    p.vel[d] = rng.gaussian();
    p.acc[d] = rng.gaussian();
    p.jerk[d] = rng.gaussian();
    p.snap[d] = rng.gaussian();
  }
  return p;
}

bool words_equal(const StoredJParticle& a, const StoredJParticle& b) {
  bool eq = a.index == b.index && a.mass == b.mass && a.t0 == b.t0;
  for (int d = 0; d < 3; ++d) {
    eq = eq && a.pos[d] == b.pos[d] && a.vel[d] == b.vel[d] &&
         a.acc[d] == b.acc[d] && a.jerk[d] == b.jerk[d] && a.snap[d] == b.snap[d];
  }
  return eq;
}

TEST(JStore, SetGetRoundTripsBitExactly) {
  Rng rng(1);
  JStore s;
  s.resize(32);
  std::vector<StoredJParticle> ref;
  for (std::uint32_t i = 0; i < 32; ++i) {
    ref.push_back(random_word(rng, i));
    s.set(i, ref.back());
  }
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(words_equal(s.get(i), ref[i])) << i;
  }
}

TEST(JStore, EnsureSizePresizesAllColumnsNoReallocOnUpload) {
  // The engine calls reserve via ensure_size once per upload; subsequent
  // slot writes must not move the columns (satellite of the SoA refactor:
  // incremental j-memory growth used to reallocate per write).
  JStore s;
  s.ensure_size(256);
  EXPECT_EQ(s.size(), 256u);
  const std::int64_t* pos0 = s.pos(0).data();
  const double* vel1 = s.vel(1).data();
  const double* mass = s.mass().data();
  Rng rng(2);
  for (std::uint32_t i = 0; i < 256; ++i) s.set(i, random_word(rng, i));
  EXPECT_EQ(s.pos(0).data(), pos0);
  EXPECT_EQ(s.vel(1).data(), vel1);
  EXPECT_EQ(s.mass().data(), mass);
  // ensure_size never shrinks.
  s.ensure_size(16);
  EXPECT_EQ(s.size(), 256u);
}

TEST(JStore, AosConversionIsLossless) {
  Rng rng(3);
  std::vector<StoredJParticle> aos;
  for (std::uint32_t i = 0; i < 17; ++i) aos.push_back(random_word(rng, i));
  const JStore s = JStore::from_aos(aos);
  ASSERT_EQ(s.size(), aos.size());
  const std::vector<StoredJParticle> back = s.to_aos();
  ASSERT_EQ(back.size(), aos.size());
  for (std::size_t i = 0; i < aos.size(); ++i) {
    EXPECT_TRUE(words_equal(back[i], aos[i])) << i;
  }
}

TEST(JStore, ColumnSpansViewTheSameStorageAsWords) {
  Rng rng(4);
  JStore s;
  s.resize(8);
  for (std::uint32_t i = 0; i < 8; ++i) s.set(i, random_word(rng, i));
  for (std::uint32_t i = 0; i < 8; ++i) {
    const StoredJParticle w = s.get(i);
    EXPECT_EQ(s.index()[i], w.index);
    EXPECT_EQ(s.mass()[i], w.mass);
    EXPECT_EQ(s.t0()[i], w.t0);
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(s.pos(d)[i], w.pos[d]);
      EXPECT_EQ(s.vel(d)[i], w.vel[d]);
      EXPECT_EQ(s.acc(d)[i], w.acc[d]);
      EXPECT_EQ(s.jerk(d)[i], w.jerk[d]);
      EXPECT_EQ(s.snap(d)[i], w.snap[d]);
    }
  }
}

TEST(JStore, ClearAndMoveLeaveValidEmptyStore) {
  Rng rng(5);
  JStore s;
  s.resize(4);
  for (std::uint32_t i = 0; i < 4; ++i) s.set(i, random_word(rng, i));
  JStore moved = std::move(s);
  EXPECT_EQ(moved.size(), 4u);
  s.clear();  // moved-from: clear() must re-establish the empty invariant
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  s.ensure_size(2);
  EXPECT_EQ(s.size(), 2u);
}

}  // namespace
}  // namespace g6
