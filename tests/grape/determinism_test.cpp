// Determinism regression for the block floating-point dataflow: two
// identical runs — fresh objects, same inputs — must produce bit-identical
// accumulator state. This is the software-twin counterpart of the paper's
// "same result on machines of different sizes" validation (Sec 3.4): if
// anything in the pipeline reads uninitialised state, races, or falls back
// to ambient floating-point behaviour, the raw mantissas diverge long
// before a physics test would notice.

#include <gtest/gtest.h>

#include <vector>

#include "grape/board.hpp"
#include "grape/chip.hpp"
#include "grape/engine.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

std::vector<JParticle> plummer_like(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JParticle> js(n);
  for (auto& p : js) {
    p.mass = 1.0 / static_cast<double>(n);
    p.pos = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    p.vel = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    p.acc = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    p.jerk = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
  }
  return js;
}

/// Run one full chip pass and return the raw accumulator bank.
std::vector<HwAccumulators> run_chip_pass(const std::vector<JParticle>& js,
                                          double t) {
  const NumberFormats fmt;
  Chip chip(MachineConfig{}, fmt);
  for (std::size_t i = 0; i < js.size(); ++i) {
    chip.write(i, quantize_j_particle(js[i], static_cast<std::uint32_t>(i), fmt));
  }
  std::vector<IParticlePacket> iblock;
  for (std::size_t i = 0; i < 16; ++i) {
    PredictedState s;
    s.index = static_cast<std::uint32_t>(i);
    s.pos = js[i].pos;
    s.vel = js[i].vel;
    iblock.push_back(quantize_i_particle(s, fmt));
  }
  std::vector<HwAccumulators> out(iblock.size());
  for (auto& a : out) a.reset({4, 8, 4});
  chip.run_pass(t, iblock, 1e-4, out);
  return out;
}

TEST(BfpDeterminism, TwoIdenticalChipRunsBitIdenticalMantissas) {
  const auto js = plummer_like(96, 20260806);
  const auto a = run_chip_pass(js, 0.25);
  const auto b = run_chip_pass(js, 0.25);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    for (int d = 0; d < 3; ++d) {
      // Raw 64-bit mantissas: equality here is exact integer equality,
      // stricter than comparing decoded doubles.
      EXPECT_EQ(a[k].acc[d].mantissa(), b[k].acc[d].mantissa()) << k << ' ' << d;
      EXPECT_EQ(a[k].jerk[d].mantissa(), b[k].jerk[d].mantissa()) << k << ' ' << d;
      EXPECT_EQ(a[k].acc[d].block_exp(), b[k].acc[d].block_exp()) << k << ' ' << d;
    }
    EXPECT_EQ(a[k].pot.mantissa(), b[k].pot.mantissa()) << k;
    EXPECT_EQ(a[k].overflow(), b[k].overflow()) << k;
  }
}

TEST(BfpDeterminism, TwoIdenticalEngineRunsBitIdenticalForces) {
  const auto js = plummer_like(64, 777);
  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i].index = static_cast<std::uint32_t>(i);
    block[i].pos = js[i].pos;
    block[i].vel = js[i].vel;
  }

  auto run = [&] {
    MachineConfig mc;
    mc.boards_per_host = 2;
    GrapeForceEngine hw(mc, NumberFormats{}, 0.01);
    hw.load_particles(js);
    std::vector<Force> f(js.size());
    // Two calls: the second uses the refined block exponents remembered
    // from the first, which is the steady-state production path.
    hw.compute_forces(0.0, block, f);
    hw.compute_forces(0.0, block, f);
    return f;
  };
  const auto f1 = run();
  const auto f2 = run();
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].acc, f2[i].acc) << i;
    EXPECT_EQ(f1[i].jerk, f2[i].jerk) << i;
    EXPECT_EQ(f1[i].pot, f2[i].pot) << i;
  }
}

}  // namespace
}  // namespace g6
