// Property and failure-injection tests for the GRAPE host engine:
// exponent-retry machinery, update propagation, determinism, and format
// sweeps.

#include <gtest/gtest.h>

#include <cmath>

#include "util/errors.hpp"
#include "grape/engine.hpp"
#include "hermite/direct_engine.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

std::vector<JParticle> plummer_j(std::size_t n, unsigned seed) {
  Rng rng(seed);
  const ParticleSet s = make_plummer(n, rng);
  std::vector<JParticle> js(n);
  for (std::size_t i = 0; i < n; ++i) {
    js[i].mass = s[i].mass;
    js[i].pos = s[i].pos;
    js[i].vel = s[i].vel;
  }
  return js;
}

std::vector<PredictedState> as_block(std::span<const JParticle> js) {
  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i] = {js[i].pos, js[i].vel, js[i].mass, static_cast<std::uint32_t>(i)};
  }
  return block;
}

MachineConfig one_board() {
  MachineConfig mc = MachineConfig::single_host();
  mc.boards_per_host = 1;
  return mc;
}

TEST(GrapeEngineProps, ForcedOverflowRetriesAndRecovers) {
  // Inject absurdly small block exponents: the hardware must raise the
  // overflow flag and the engine must retry until the result fits, then
  // deliver the same forces as a clean engine.
  const auto js = plummer_j(64, 70);
  const auto block = as_block(js);

  GrapeForceEngine clean(one_board(), NumberFormats{}, 0.01);
  GrapeForceEngine hurt(one_board(), NumberFormats{}, 0.01);
  clean.load_particles(js);
  hurt.load_particles(js);
  for (auto& e : hurt.exponents()) e = {-40, -40, -40};

  std::vector<Force> fc(js.size()), fh(js.size());
  clean.compute_forces(0.0, block, fc);
  hurt.compute_forces(0.0, block, fh);

  EXPECT_GT(hurt.stats().retries, 0u);
  for (std::size_t i = 0; i < js.size(); ++i) {
    // Same final exponents -> bit-identical results after retries.
    EXPECT_EQ(fh[i].acc, fc[i].acc) << i;
  }
}

TEST(GrapeEngineProps, UnconvergibleExponentsThrow) {
  // A run that keeps overflowing beyond the retry budget must fail loudly
  // rather than return garbage — with a *typed, recoverable* error the
  // integrator can catch (fault::RetryExhausted), not an abort. Force
  // this with a pathological softening of 0 and two coincident particles
  // (infinite force).
  std::vector<JParticle> js(2);
  js[0].mass = js[1].mass = 0.5;
  js[0].pos = {0.0, 0.0, 0.0};
  js[1].pos = {0.0, 0.0, 0.0};  // coincident, eps = 0 -> r^-2 = inf
  // Exact formats: the infinity is not clamped, so no exponent can ever
  // absorb it and the retry budget must trip.
  GrapeForceEngine hw(one_board(), NumberFormats::exact(), 0.0);
  hw.load_particles(js);
  auto block = as_block(js);
  std::vector<Force> f(2);
  EXPECT_THROW(hw.compute_forces(0.0, block, f), fault::RetryExhausted);
}

TEST(GrapeEngineProps, UpdateParticlePropagatesToForces) {
  auto js = plummer_j(32, 71);
  GrapeForceEngine hw(one_board(), NumberFormats::exact(), 0.01);
  hw.load_particles(js);

  PredictedState probe;
  probe.index = 1000;  // not a stored particle
  probe.pos = {0.0, 0.0, 0.0};
  std::vector<PredictedState> block{probe};
  std::vector<Force> before(1), after(1);
  hw.compute_forces(0.0, block, before);

  // Move particle 0 far away: the force must change accordingly.
  js[0].pos = {50.0, 0.0, 0.0};
  hw.update_particle(0, js[0]);
  hw.compute_forces(0.0, block, after);
  EXPECT_NE(before[0].acc, after[0].acc);
}

TEST(GrapeEngineProps, RepeatedCallsAreDeterministic) {
  const auto js = plummer_j(48, 72);
  const auto block = as_block(js);
  GrapeForceEngine hw(one_board(), NumberFormats{}, 0.01);
  hw.load_particles(js);
  std::vector<Force> f1(js.size()), f2(js.size());
  hw.compute_forces(0.0, block, f1);
  hw.compute_forces(0.0, block, f2);
  for (std::size_t i = 0; i < js.size(); ++i) {
    EXPECT_EQ(f1[i].acc, f2[i].acc);
    EXPECT_EQ(f1[i].jerk, f2[i].jerk);
    EXPECT_EQ(f1[i].pot, f2[i].pot);
  }
}

struct FormatCase {
  int bits;
  double tol;
};

class PipelineWidthSweep : public ::testing::TestWithParam<FormatCase> {};

TEST_P(PipelineWidthSweep, ForceErrorScalesWithWidth) {
  const auto [bits, tol] = GetParam();
  const auto js = plummer_j(64, 73);
  const auto block = as_block(js);

  DirectForceEngine ref(0.01);
  ref.load_particles(js);
  std::vector<Force> fr(js.size());
  ref.compute_forces(0.0, block, fr);

  NumberFormats fmt;
  fmt.pipeline = FloatFormat(bits, -126, 127);
  fmt.velocity = fmt.pipeline;
  GrapeForceEngine hw(one_board(), fmt, 0.01);
  hw.load_particles(js);
  std::vector<Force> fh(js.size());
  hw.compute_forces(0.0, block, fh);

  double worst = 0.0;
  for (std::size_t i = 0; i < js.size(); ++i) {
    worst = std::max(worst, norm(fh[i].acc - fr[i].acc) / norm(fr[i].acc));
  }
  EXPECT_LT(worst, tol);
  EXPECT_GT(worst, tol / 1e4);  // narrow formats must actually be lossy
}

INSTANTIATE_TEST_SUITE_P(Widths, PipelineWidthSweep,
                         ::testing::Values(FormatCase{12, 3e-3},
                                           FormatCase{16, 2e-4},
                                           FormatCase{20, 1.5e-5},
                                           FormatCase{24, 1e-6}));

TEST(GrapeEngineProps, InteractionCountMatchesTopology) {
  const auto js = plummer_j(100, 74);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats::exact(), 0.01);
  hw.load_particles(js);
  const auto block = as_block(std::span(js).subspan(0, 10));
  std::vector<Force> f(10);
  hw.compute_forces(0.0, block, f);
  // One pass, 10 i-particles against all 100 stored j (self cut happens in
  // the pipeline, but the slot is still traversed).
  EXPECT_EQ(hw.stats().interactions, 100ull * 10ull);
}

}  // namespace
}  // namespace g6
