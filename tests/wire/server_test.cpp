// WireServer + RemoteClient end to end, in process: a real unix (and
// tcp) socket, the server loop on its own thread, the client on the
// test thread. These suites all start with "Wire" so CI's TSan job can
// select them with -R 'Wire' — the server is single-threaded by design,
// and the race checker holds it to that.
//
// Tests live outside src/, so the g6lint raw-socket and raw-thread
// rules do not apply here: the malformed-frame tests speak bytes
// directly on purpose.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "serve/serve.hpp"
#include "wire/wire.hpp"

namespace g6::wire {
namespace {

serve::ServiceConfig small_service() {
  serve::ServiceConfig cfg;
  cfg.machine.boards_per_host = 2;
  cfg.machine.hosts_per_cluster = 1;
  cfg.machine.clusters = 1;
  cfg.quantum_blocksteps = 8;
  return cfg;
}

serve::JobSpec quick_job(const std::string& name, unsigned seed = 1) {
  serve::JobSpec s;
  s.name = name;
  s.n = 32;
  s.t_end = 0.03125;
  s.seed = seed;
  return s;
}

double num_at(const obs::JsonValue& j, const char* key) {
  const obs::JsonValue* v = j.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : -1.0;
}

std::string str_at(const obs::JsonValue& j, const char* key) {
  const obs::JsonValue* v = j.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

/// Server-on-a-thread fixture. The GrapeService is touched by exactly
/// one thread at a time: the server thread while run() executes, the
/// test thread only after join() — the handoff the WireServer contract
/// requires.
class WireServerTest : public ::testing::Test {
 protected:
  void start(const serve::ServiceConfig& cfg = small_service(),
             const std::string& listen = "") {
    service_ = std::make_unique<serve::GrapeService>(cfg);
    endpoint_ = listen.empty() ? "unix:" + sock_path() : listen;
    server_ = std::make_unique<WireServer>(*service_, endpoint_);
    if (server_->endpoint().kind == Endpoint::Kind::kTcp) {
      std::ostringstream os;
      os << "tcp:127.0.0.1:" << server_->endpoint().port;
      endpoint_ = os.str();
    }
    thread_ = std::thread([this] { server_->run(&stop_); });
  }

  /// Stop the server loop (the stop flag is a no-op when a drain
  /// already let run() return) and tear the server down so the test
  /// thread owns the service again. RPCs are only serviced while run()
  /// executes, so every remote verb must happen before this.
  void join_server() {
    ASSERT_TRUE(thread_.joinable());
    stop_ = true;
    thread_.join();
    server_.reset();
  }

  /// Like join_server(), but lets a requested drain run its course:
  /// run() returns only after every in-flight job finished and every
  /// queued byte flushed — the grape6_served shutdown path.
  void join_drained() {
    ASSERT_TRUE(thread_.joinable());
    thread_.join();
    server_.reset();
  }

  void TearDown() override {
    if (thread_.joinable()) {
      stop_ = true;  // a failed test must not hang the suite
      thread_.join();
    }
  }

  std::string sock_path() const {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "g6wire_" + info->name() + ".sock";
  }

  std::unique_ptr<serve::GrapeService> service_;
  std::unique_ptr<WireServer> server_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::string endpoint_;
};

TEST_F(WireServerTest, PingRoundTripsOverUnixSocket) {
  start();
  RemoteClient client(endpoint_);
  EXPECT_NO_THROW(client.ping());
  join_server();
  EXPECT_EQ(service_->stats().submitted, 0u);
}

TEST_F(WireServerTest, SubmitStreamsProgressAndExactlyOneTerminal) {
  start();
  RemoteClient client(endpoint_);
  client.subscribe();  // before submit: every quantum must be visible

  const serve::SubmitResult a = client.submit(quick_job("wire-a", 1));
  const serve::SubmitResult b = client.submit(quick_job("wire-b", 2));
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);

  int progress_a = 0, progress_b = 0, terminal_a = 0, terminal_b = 0;
  while (terminal_a + terminal_b < 2) {
    std::optional<WireEvent> ev = client.next_event(true);
    ASSERT_TRUE(ev.has_value()) << "EOF before both terminals";
    const auto job = static_cast<serve::JobId>(num_at(ev->root, "job"));
    if (ev->event == "progress") {
      (job == a.id ? progress_a : progress_b)++;
    } else if (ev->event == "terminal") {
      (job == a.id ? terminal_a : terminal_b)++;
      const obs::JsonValue* rep = ev->root.find("report");
      ASSERT_NE(rep, nullptr);
      EXPECT_EQ(str_at(*rep, "state"), "completed");
      EXPECT_GT(num_at(*rep, "quanta"), 0.0);
      EXPECT_GT(num_at(*rep, "steps"), 0.0);
    }
  }
  // No buffered duplicate terminal behind the ones we counted.
  while (std::optional<WireEvent> ev = client.next_event(false)) {
    EXPECT_NE(ev->event, "terminal");
  }
  EXPECT_EQ(terminal_a, 1);
  EXPECT_EQ(terminal_b, 1);
  EXPECT_GE(progress_a, 1);
  EXPECT_GE(progress_b, 1);

  // Polling verbs agree with the stream.
  EXPECT_EQ(client.state_name(a.id), "completed");
  EXPECT_EQ(str_at(client.report_json(b.id), "name"), "wire-b");

  join_server();
  EXPECT_EQ(service_->stats().completed, 2u);
}

TEST_F(WireServerTest, SnapshotEventMatchesFinalStateEverywhere) {
  start();
  RemoteClient client(endpoint_);
  client.subscribe(/*snapshots=*/true);
  const serve::SubmitResult r = client.submit(quick_job("snap", 7));
  ASSERT_TRUE(r);

  std::optional<obs::JsonValue> snap_json;
  std::string snap_name;
  bool saw_terminal = false;
  while (!saw_terminal || !snap_json) {
    std::optional<WireEvent> ev = client.next_event(true);
    ASSERT_TRUE(ev.has_value()) << "EOF before terminal+snapshot";
    if (ev->event == "terminal") saw_terminal = true;
    if (ev->event == "snapshot") {
      const obs::JsonValue* s = ev->root.find("snapshot");
      ASSERT_NE(s, nullptr);
      snap_json = *s;
      snap_name = str_at(ev->root, "name");
    }
  }
  EXPECT_EQ(snap_name, "snap");

  double t_event = -1.0;
  const ParticleSet from_event = decode_snapshot(*snap_json, &t_event);
  double t_rpc = -2.0;
  const ParticleSet from_rpc = client.final_state(r.id, &t_rpc);

  join_server();
  double t_local = -3.0;
  const ParticleSet local = service_->client().final_state(r.id, &t_local);

  // Streamed snapshot == polled final_state == in-process final state,
  // bit for bit: the transport half of the identity contract.
  EXPECT_EQ(t_event, t_local);
  EXPECT_EQ(t_rpc, t_local);
  ASSERT_EQ(from_event.size(), local.size());
  ASSERT_EQ(from_rpc.size(), local.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(from_event.bodies()[i].mass, local.bodies()[i].mass);
    EXPECT_EQ(from_event.bodies()[i].pos.x, local.bodies()[i].pos.x);
    EXPECT_EQ(from_event.bodies()[i].pos.y, local.bodies()[i].pos.y);
    EXPECT_EQ(from_event.bodies()[i].pos.z, local.bodies()[i].pos.z);
    EXPECT_EQ(from_event.bodies()[i].vel.x, local.bodies()[i].vel.x);
    EXPECT_EQ(from_event.bodies()[i].vel.y, local.bodies()[i].vel.y);
    EXPECT_EQ(from_event.bodies()[i].vel.z, local.bodies()[i].vel.z);
    EXPECT_EQ(from_rpc.bodies()[i].pos.x, local.bodies()[i].pos.x);
    EXPECT_EQ(from_rpc.bodies()[i].vel.x, local.bodies()[i].vel.x);
  }
}

TEST_F(WireServerTest, RejectionReasonsTravelVerbatim) {
  start();
  RemoteClient client(endpoint_);

  serve::JobSpec greedy = quick_job("greedy");
  greedy.boards = 99;  // two-board machine
  const serve::SubmitResult r1 = client.submit(greedy);
  EXPECT_FALSE(r1);
  EXPECT_EQ(r1.reason, serve::RejectReason::kBoardsUnavailable);
  EXPECT_EQ(client.last_reject_reason(), "boards-unavailable");
  EXPECT_FALSE(r1.message.empty());

  serve::JobSpec bad = quick_job("bad");
  bad.model = "spiral";
  const serve::SubmitResult r2 = client.submit(bad);
  EXPECT_FALSE(r2);
  EXPECT_EQ(r2.reason, serve::RejectReason::kInvalidSpec);
  EXPECT_EQ(client.last_reject_reason(), "invalid-spec");

  // Keep one job in flight so the drained server loop stays alive long
  // enough to answer the post-drain submit below.
  serve::JobSpec alive = quick_job("keep-alive", 9);
  alive.n = 64;
  alive.t_end = 0.0625;
  ASSERT_TRUE(client.submit(alive));
  client.drain();
  EXPECT_EQ(client.submit(quick_job("late")).reason,
            serve::RejectReason::kDraining);
  EXPECT_EQ(client.last_reject_reason(), "draining");

  join_drained();  // drain lets run() exit once keep-alive finishes
  EXPECT_EQ(service_->stats().rejected, 3u);
  EXPECT_EQ(service_->stats().completed, 1u);
}

TEST_F(WireServerTest, StatsRpcReportsServiceCounters) {
  start();
  RemoteClient client(endpoint_);
  ASSERT_TRUE(client.submit(quick_job("counted")));
  // stats is a poll, so spin until the job finished server-side.
  while (num_at(client.stats_json(), "completed") < 1.0) {
  }
  const obs::JsonValue st = client.stats_json();
  EXPECT_EQ(num_at(st, "submitted"), 1.0);
  EXPECT_EQ(num_at(st, "completed"), 1.0);
  join_server();
}

TEST_F(WireServerTest, WorksOverTcpWithEphemeralPort) {
  start(small_service(), "tcp:127.0.0.1:0");
  ASSERT_NE(server_->endpoint().port, 0);  // kernel filled the port in
  RemoteClient client(endpoint_);
  client.subscribe();
  const serve::SubmitResult r = client.submit(quick_job("tcp-job", 3));
  ASSERT_TRUE(r);
  int terminals = 0;
  while (terminals < 1) {
    std::optional<WireEvent> ev = client.next_event(true);
    ASSERT_TRUE(ev.has_value());
    if (ev->event == "terminal") ++terminals;
  }
  join_server();
  EXPECT_EQ(service_->stats().completed, 1u);
}

// ----------------------------------------------------- hostile clients
//
// These speak raw bytes to exercise the failure envelope: a bad
// PAYLOAD answers ok:false and the connection lives; a bad FRAME (not
// an envelope at all) poisons only that connection — one error event,
// then close — while a well-behaved neighbour keeps working.

std::string read_frame_blocking(Socket& s, FrameDecoder& dec) {
  std::string payload;
  while (true) {
    const FrameDecoder::Status st = dec.next(&payload);
    if (st == FrameDecoder::Status::kFrame) return payload;
    if (st == FrameDecoder::Status::kError) return "";
    std::string buf;
    if (s.recv_some(&buf) == 0) return "";  // EOF
    dec.feed(buf);
  }
}

std::string request_json(std::uint64_t id, const std::string& method) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kWireSchema << "\",\"kind\":\"request\",\"id\":"
     << id << ",\"method\":\"" << method << "\"}";
  return os.str();
}

TEST_F(WireServerTest, UnknownMethodAnswersOkFalseAndConnectionLives) {
  start();
  Socket raw = connect_to(parse_endpoint(endpoint_));
  FrameDecoder dec;

  raw.send_all(encode_frame(request_json(1, "frobnicate")));
  Envelope resp = parse_envelope(read_frame_blocking(raw, dec));
  EXPECT_EQ(resp.kind, "response");
  EXPECT_EQ(resp.id, 1u);
  const obs::JsonValue* ok = resp.root.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->as_bool());
  EXPECT_NE(str_at(resp.root, "error").find("unknown method"),
            std::string::npos);

  // Same socket, next request: still serviced.
  raw.send_all(encode_frame(request_json(2, "ping")));
  resp = parse_envelope(read_frame_blocking(raw, dec));
  EXPECT_EQ(resp.id, 2u);
  ASSERT_NE(resp.root.find("ok"), nullptr);
  EXPECT_TRUE(resp.root.find("ok")->as_bool());

  raw.send_all(encode_frame(request_json(3, "drain")));
  EXPECT_FALSE(read_frame_blocking(raw, dec).empty());
  join_drained();
}

TEST_F(WireServerTest, MalformedFramePoisonsOnlyItsConnection) {
  start();
  RemoteClient good(endpoint_);
  Socket bad = connect_to(parse_endpoint(endpoint_));
  FrameDecoder dec;

  bad.send_all(encode_frame("this is not json"));
  const std::string payload = read_frame_blocking(bad, dec);
  ASSERT_FALSE(payload.empty());
  const Envelope err = parse_envelope(payload);
  EXPECT_EQ(err.kind, "event");
  EXPECT_EQ(err.event, "error");
  EXPECT_FALSE(str_at(err.root, "message").empty());
  // ...and then the server hangs up on the offender.
  EXPECT_TRUE(read_frame_blocking(bad, dec).empty());

  // The neighbour never notices.
  EXPECT_NO_THROW(good.ping());
  ASSERT_TRUE(good.submit(quick_job("survivor", 5)));
  good.drain();
  join_drained();
  EXPECT_EQ(service_->stats().completed, 1u);
}

}  // namespace
}  // namespace g6::wire
