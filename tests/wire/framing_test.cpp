// Framing robustness: the length-prefixed codec must reassemble frames
// from any chunking of the stream, reject desynchronizing lengths
// (zero, oversized) by poisoning permanently, and survive a seeded fuzz
// loop of random splits/corruptions — run under ASan/UBSan in CI.
#include "wire/framing.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace g6::wire {
namespace {

std::string frame_of(const std::string& payload) {
  return encode_frame(payload);
}

std::vector<std::string> decode_all(FrameDecoder& dec) {
  std::vector<std::string> out;
  std::string payload;
  while (dec.next(&payload) == FrameDecoder::Status::kFrame) {
    out.push_back(payload);
  }
  return out;
}

TEST(WireFraming, EncodeRoundTripsThroughDecode) {
  FrameDecoder dec;
  dec.feed(frame_of("hello"));
  std::string payload;
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireFraming, HeaderIsBigEndian) {
  const std::string f = frame_of("abc");
  ASSERT_EQ(f.size(), kFrameHeaderBytes + 3);
  EXPECT_EQ(static_cast<unsigned char>(f[0]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(f[1]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(f[2]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(f[3]), 3u);
}

TEST(WireFraming, TornFrameReassemblesAcrossByteAtATimeFeeds) {
  const std::string f = frame_of("torn across many reads");
  FrameDecoder dec;
  std::string payload;
  for (std::size_t i = 0; i < f.size(); ++i) {
    // Until the last byte lands, no frame may surface.
    if (i + 1 < f.size()) {
      EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::kNeedMore);
    }
    dec.feed(std::string_view(&f[i], 1));
  }
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "torn across many reads");
}

TEST(WireFraming, SeveralFramesInOneChunk) {
  FrameDecoder dec;
  dec.feed(frame_of("one") + frame_of("two") + frame_of("three"));
  const std::vector<std::string> got = decode_all(dec);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "one");
  EXPECT_EQ(got[1], "two");
  EXPECT_EQ(got[2], "three");
}

TEST(WireFraming, TruncatedFinalFrameStaysPending) {
  const std::string f = frame_of("complete") + frame_of("cut").substr(0, 5);
  FrameDecoder dec;
  dec.feed(f);
  std::string payload;
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "complete");
  EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::kNeedMore);
  EXPECT_GT(dec.buffered(), 0u);  // the torn tail is visible to audits
}

TEST(WireFraming, ZeroLengthFramePoisonsTheStream) {
  FrameDecoder dec;
  dec.feed(std::string(kFrameHeaderBytes, '\0'));
  std::string payload;
  EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::kError);
  EXPECT_NE(dec.error().find("zero-length"), std::string::npos);
  // Poisoned means poisoned: more (valid) bytes do not revive it.
  dec.feed(frame_of("valid"));
  EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::kError);
}

TEST(WireFraming, OversizedLengthPoisonsTheStream) {
  FrameDecoder dec(/*max_payload=*/16);
  std::string hdr(kFrameHeaderBytes, '\0');
  hdr[3] = 17;  // one past the cap
  dec.feed(hdr);
  std::string payload;
  EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::kError);
  EXPECT_FALSE(dec.error().empty());
}

TEST(WireFraming, MaxPayloadExactlyAtCapIsAccepted) {
  FrameDecoder dec(/*max_payload=*/16);
  dec.feed(encode_frame(std::string(16, 'x'), 16));
  std::string payload;
  ASSERT_EQ(dec.next(&payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload.size(), 16u);
}

TEST(WireFraming, EncodeRejectsEmptyAndOversizedPayloads) {
  EXPECT_THROW(encode_frame(""), std::exception);
  EXPECT_THROW(encode_frame(std::string(17, 'x'), 16), std::exception);
}

TEST(WireFraming, BinaryPayloadBytesSurvive) {
  std::string payload;
  for (int i = 0; i < 256; ++i) {
    payload.push_back(static_cast<char>(i));
  }
  FrameDecoder dec;
  dec.feed(frame_of(payload));
  std::string got;
  ASSERT_EQ(dec.next(&got), FrameDecoder::Status::kFrame);
  EXPECT_EQ(got, payload);
}

// Seeded fuzz: random payload batches, random chunk splits. Whatever the
// chunking, the decoder must emit exactly the encoded payloads in order.
// ASan/UBSan (the sanitize CI job runs this binary) turn any buffer
// mistake in the rolling-buffer compaction into a hard failure.
TEST(WireFramingFuzz, RandomSplitsAlwaysReassemble) {
  Rng rng(20260809);
  for (int round = 0; round < 200; ++round) {
    const std::size_t nframes = 1 + rng.uniform_index(7);
    std::vector<std::string> payloads;
    std::string stream;
    for (std::size_t i = 0; i < nframes; ++i) {
      const std::size_t len = 1 + rng.uniform_index(300);
      std::string p;
      for (std::size_t j = 0; j < len; ++j) {
        p.push_back(static_cast<char>(rng.uniform_index(256)));
      }
      payloads.push_back(p);
      stream += encode_frame(p);
    }
    FrameDecoder dec;
    std::vector<std::string> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk =
          1 + rng.uniform_index(std::min<std::size_t>(64, stream.size() - off));
      dec.feed(std::string_view(stream).substr(off, chunk));
      off += chunk;
      std::string payload;
      while (dec.next(&payload) == FrameDecoder::Status::kFrame) {
        got.push_back(payload);
      }
    }
    ASSERT_EQ(got, payloads) << "round " << round;
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

// Seeded fuzz over hostile bytes: feed random garbage (not valid
// frames) and require the decoder to either wait for more bytes or
// poison — never emit a frame that was not sent, never crash.
TEST(WireFramingFuzz, RandomGarbageNeverFabricatesFrames) {
  Rng rng(987654321);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec(/*max_payload=*/4096);
    std::string garbage;
    const std::size_t len = 1 + rng.uniform_index(512);
    for (std::size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.uniform_index(256)));
    }
    dec.feed(garbage);
    std::string payload;
    int frames = 0;
    FrameDecoder::Status st;
    while ((st = dec.next(&payload)) == FrameDecoder::Status::kFrame) {
      // Any frame the decoder emits must have been decodable from the
      // garbage under the real length-prefix rules: bounded size.
      ASSERT_LE(payload.size(), 4096u);
      ASSERT_GE(payload.size(), 1u);
      ++frames;
    }
    ASSERT_TRUE(st == FrameDecoder::Status::kNeedMore ||
                st == FrameDecoder::Status::kError);
    ASSERT_LE(frames, 512);
  }
}

}  // namespace
}  // namespace g6::wire
