// grape6-wire-v1 envelope contract: strict parse (anything off-schema
// throws WireError), and lossless round-trips for the two payloads that
// carry physics — job specs (manifest-shaped) and particle snapshots
// (17-digit doubles, binary64-exact).
#include "wire/envelope.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "nbody/particle.hpp"
#include "obs/json.hpp"
#include "serve/types.hpp"
#include "util/rng.hpp"

namespace g6::wire {
namespace {

Envelope parse(const std::string& text) { return parse_envelope(text); }

TEST(WireEnvelope, ParsesMinimalRequest) {
  const Envelope env = parse(
      R"({"schema":"grape6-wire-v1","kind":"request","id":7,"method":"ping"})");
  EXPECT_EQ(env.kind, "request");
  EXPECT_EQ(env.id, 7u);
  EXPECT_EQ(env.method, "ping");
}

TEST(WireEnvelope, ParsesResponseAndEvent) {
  const Envelope resp = parse(
      R"({"schema":"grape6-wire-v1","kind":"response","id":3,"ok":true})");
  EXPECT_EQ(resp.kind, "response");
  EXPECT_EQ(resp.id, 3u);

  const Envelope ev = parse(
      R"({"schema":"grape6-wire-v1","kind":"event","event":"progress","job":1})");
  EXPECT_EQ(ev.kind, "event");
  EXPECT_EQ(ev.event, "progress");
}

TEST(WireEnvelope, MalformedJsonThrows) {
  EXPECT_THROW(parse("{nope"), WireError);
  EXPECT_THROW(parse("[1,2,3]"), WireError);  // not an object
  EXPECT_THROW(parse("42"), WireError);
}

TEST(WireEnvelope, WrongSchemaThrows) {
  EXPECT_THROW(
      parse(R"({"schema":"grape6-wire-v0","kind":"request","id":1,"method":"ping"})"),
      WireError);
  EXPECT_THROW(parse(R"({"kind":"request","id":1,"method":"ping"})"),
               WireError);
}

TEST(WireEnvelope, UnknownKindThrows) {
  EXPECT_THROW(parse(R"({"schema":"grape6-wire-v1","kind":"notify"})"),
               WireError);
}

TEST(WireEnvelope, RequestMissingIdOrMethodThrows) {
  EXPECT_THROW(parse(R"({"schema":"grape6-wire-v1","kind":"request","method":"ping"})"),
               WireError);
  EXPECT_THROW(parse(R"({"schema":"grape6-wire-v1","kind":"request","id":1})"),
               WireError);
  // id must be a non-negative integer, not prose or a fraction.
  EXPECT_THROW(
      parse(R"({"schema":"grape6-wire-v1","kind":"request","id":"x","method":"ping"})"),
      WireError);
  EXPECT_THROW(
      parse(R"({"schema":"grape6-wire-v1","kind":"request","id":1.5,"method":"ping"})"),
      WireError);
}

TEST(WireEnvelope, ResponseMissingOkThrows) {
  EXPECT_THROW(parse(R"({"schema":"grape6-wire-v1","kind":"response","id":1})"),
               WireError);
}

TEST(WireEnvelope, EventMissingNameThrows) {
  EXPECT_THROW(parse(R"({"schema":"grape6-wire-v1","kind":"event"})"),
               WireError);
}

// ---------------------------------------------------------------- specs

serve::JobSpec round_trip(const serve::JobSpec& spec) {
  std::ostringstream os;
  encode_job_spec(os, spec);
  return decode_job_spec(obs::JsonValue::parse(os.str()));
}

TEST(WireEnvelope, JobSpecRoundTripsEveryField) {
  serve::JobSpec spec;
  spec.name = "wire \"quoted\" job";
  spec.model = "plummer";
  spec.n = 192;
  spec.w0 = 5.5;
  spec.t_end = 0.125;
  spec.eps = 0.0078125;
  spec.eta = 0.017;
  spec.seed = 424242;
  spec.boards = 2;
  spec.boards_min = 1;
  spec.boards_max = 4;
  spec.priority = serve::Priority::kInteractive;
  spec.deadline_rounds = 9;
  spec.chaos_fail_quanta = 3;

  const serve::JobSpec back = round_trip(spec);
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.model, spec.model);
  EXPECT_EQ(back.n, spec.n);
  EXPECT_EQ(back.w0, spec.w0);
  EXPECT_EQ(back.t_end, spec.t_end);
  EXPECT_EQ(back.eps, spec.eps);
  EXPECT_EQ(back.eta, spec.eta);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.boards, spec.boards);
  EXPECT_EQ(back.boards_min, spec.boards_min);
  EXPECT_EQ(back.boards_max, spec.boards_max);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.deadline_rounds, spec.deadline_rounds);
  EXPECT_EQ(back.chaos_fail_quanta, spec.chaos_fail_quanta);
}

TEST(WireEnvelope, JobSpecDefaultsRoundTrip) {
  serve::JobSpec spec;
  spec.name = "defaults";
  const serve::JobSpec back = round_trip(spec);
  EXPECT_EQ(back.n, spec.n);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.boards_min, spec.boards_min);
  EXPECT_EQ(back.boards_max, spec.boards_max);
}

TEST(WireEnvelope, JobSpecUnknownKeyThrows) {
  EXPECT_THROW(
      decode_job_spec(obs::JsonValue::parse(R"({"name":"x","frobnicate":1})")),
      WireError);
}

TEST(WireEnvelope, JobSpecBadPriorityThrows) {
  EXPECT_THROW(
      decode_job_spec(obs::JsonValue::parse(R"({"name":"x","priority":"rush"})")),
      WireError);
}

TEST(WireEnvelope, JobSpecMissingNameThrows) {
  EXPECT_THROW(decode_job_spec(obs::JsonValue::parse(R"({"n":64})")),
               WireError);
}

// ------------------------------------------------------------ snapshots

TEST(WireEnvelope, SnapshotRoundTripIsBinary64Exact) {
  // Awkward doubles on purpose: the 17-significant-digit encoding must
  // bring every bit pattern home (that is what makes client-written
  // snapshot files byte-identical to server-written ones).
  Rng rng(20260809);
  ParticleSet set;
  for (int i = 0; i < 33; ++i) {
    Body b;
    b.mass = 1.0 / 33.0 + 1e-17 * static_cast<double>(i);
    b.pos = Vec3(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
                 rng.uniform(-1.0, 1.0));
    b.vel = Vec3(rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1),
                 rng.uniform(-0.1, 0.1));
    set.add(b);
  }
  const double t = 0.1 + 0.2;  // famously not 0.3

  std::ostringstream os;
  encode_snapshot(os, set, t);
  double t_back = 0.0;
  const ParticleSet back =
      decode_snapshot(obs::JsonValue::parse(os.str()), &t_back);

  ASSERT_EQ(back.size(), set.size());
  EXPECT_EQ(t_back, t);  // exact, not near
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(back.bodies()[i].mass, set.bodies()[i].mass) << "body " << i;
    EXPECT_EQ(back.bodies()[i].pos.x, set.bodies()[i].pos.x) << "body " << i;
    EXPECT_EQ(back.bodies()[i].pos.y, set.bodies()[i].pos.y) << "body " << i;
    EXPECT_EQ(back.bodies()[i].pos.z, set.bodies()[i].pos.z) << "body " << i;
    EXPECT_EQ(back.bodies()[i].vel.x, set.bodies()[i].vel.x) << "body " << i;
    EXPECT_EQ(back.bodies()[i].vel.y, set.bodies()[i].vel.y) << "body " << i;
    EXPECT_EQ(back.bodies()[i].vel.z, set.bodies()[i].vel.z) << "body " << i;
  }
}

TEST(WireEnvelope, SnapshotCountMismatchThrows) {
  EXPECT_THROW(decode_snapshot(obs::JsonValue::parse(
                   R"({"t":0,"n":2,"bodies":[[1,0,0,0,0,0,0]]})"),
                               nullptr),
               WireError);
}

TEST(WireEnvelope, SnapshotMalformedBodyThrows) {
  EXPECT_THROW(decode_snapshot(obs::JsonValue::parse(
                   R"({"t":0,"n":1,"bodies":[[1,0,0,0,0,0]]})"),  // 6 comps
                               nullptr),
               WireError);
  EXPECT_THROW(decode_snapshot(obs::JsonValue::parse(
                   R"({"t":0,"n":1,"bodies":[["m",0,0,0,0,0,0]]})"),
                               nullptr),
               WireError);
  EXPECT_THROW(
      decode_snapshot(obs::JsonValue::parse(R"({"t":0,"n":1})"), nullptr),
      WireError);
}

}  // namespace
}  // namespace g6::wire
