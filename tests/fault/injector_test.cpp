#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "fault/checksum.hpp"
#include "hw/jstore.hpp"
#include "util/errors.hpp"
#include "fault/plan.hpp"
#include "obs/json.hpp"

namespace g6::fault {
namespace {

std::vector<StoredJParticle> test_memory(std::size_t n) {
  std::vector<StoredJParticle> mem(n);
  for (std::size_t i = 0; i < n; ++i) {
    mem[i].index = static_cast<std::uint32_t>(i);
    mem[i].mass = 1.0 / static_cast<double>(n);
    mem[i].t0 = 0.25;
    mem[i].pos[0] = static_cast<std::int64_t>(i) * 1000 + 1;
    mem[i].pos[1] = -static_cast<std::int64_t>(i) * 7;
    mem[i].pos[2] = 42;
    mem[i].vel = {0.1, -0.2, 0.3};
    mem[i].acc = {1.5, 2.5, -3.5};
    mem[i].jerk = {-0.01, 0.02, 0.03};
    mem[i].snap = {4.0, -5.0, 6.0};
  }
  return mem;
}

std::vector<IParticlePacket> test_packets(std::size_t n) {
  std::vector<IParticlePacket> pk(n);
  for (std::size_t i = 0; i < n; ++i) {
    pk[i].index = static_cast<std::uint32_t>(i);
    pk[i].pos[0] = static_cast<std::int64_t>(i) + 17;
    pk[i].pos[1] = 2;
    pk[i].pos[2] = 3;
    pk[i].vel = {1.0, 2.0, 3.0};
    pk[i].h2 = 0.125;
  }
  return pk;
}

bool same_bits(const StoredJParticle& a, const StoredJParticle& b) {
  return checksum(a) == checksum(b);
}

TEST(FaultInjector, SameSeedSameFaultStream) {
  // Reproducibility is the whole point of the injector: the identical
  // call sequence against the identical data must corrupt the identical
  // words in the identical way.
  const FaultPlan plan = FaultPlan::uniform_transients(0.05, 1234);
  FaultInjector a(plan), b(plan);

  JStore mem_a = JStore::from_aos(test_memory(64));
  JStore mem_b = JStore::from_aos(test_memory(64));
  auto pk_a = test_packets(48), pk_b = test_packets(48);

  EXPECT_EQ(a.corrupt_j_memory(0.0, 3, mem_a), b.corrupt_j_memory(0.0, 3, mem_b));
  EXPECT_EQ(a.corrupt_i_packets(0.0, pk_a), b.corrupt_i_packets(0.0, pk_b));

  for (std::size_t i = 0; i < mem_a.size(); ++i) {
    EXPECT_EQ(checksum(mem_a.get(i)), checksum(mem_b.get(i))) << "j slot " << i;
  }
  for (std::size_t i = 0; i < pk_a.size(); ++i) {
    EXPECT_EQ(checksum(pk_a[i]), checksum(pk_b[i])) << "i slot " << i;
  }
  EXPECT_EQ(a.counts().jmem_flips, b.counts().jmem_flips);
  EXPECT_EQ(a.counts().ipacket_corruptions, b.counts().ipacket_corruptions);
  EXPECT_EQ(a.events().size(), b.events().size());
}

TEST(FaultInjector, DifferentSeedDifferentStream) {
  FaultInjector a(FaultPlan::uniform_transients(0.05, 1));
  FaultInjector b(FaultPlan::uniform_transients(0.05, 2));
  JStore mem_a = JStore::from_aos(test_memory(256));
  JStore mem_b = JStore::from_aos(test_memory(256));
  a.corrupt_j_memory(0.0, 0, mem_a);
  b.corrupt_j_memory(0.0, 0, mem_b);
  bool differ = false;
  for (std::size_t i = 0; i < mem_a.size(); ++i) {
    if (!same_bits(mem_a.get(i), mem_b.get(i))) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(FaultInjector, ZeroRateInjectsNothingAndConsumesNoRandomness) {
  // A disabled channel must not advance the RNG, or enabling one channel
  // would change another channel's fault sequence.
  FaultPlan plan;
  plan.seed = 99;
  plan.ipacket_rate = 0.2;  // jmem_flip_rate stays 0
  FaultInjector with_noop(plan), without(plan);

  JStore mem = JStore::from_aos(test_memory(128));
  const auto before = test_memory(128);
  EXPECT_EQ(with_noop.corrupt_j_memory(0.0, 0, mem), 0u);
  for (std::size_t i = 0; i < mem.size(); ++i) {
    EXPECT_TRUE(same_bits(mem.get(i), before[i])) << i;
  }

  auto pk_a = test_packets(64), pk_b = test_packets(64);
  with_noop.corrupt_i_packets(0.0, pk_a);  // after the zero-rate call
  without.corrupt_i_packets(0.0, pk_b);    // no zero-rate call first
  for (std::size_t i = 0; i < pk_a.size(); ++i) {
    EXPECT_EQ(checksum(pk_a[i]), checksum(pk_b[i])) << i;
  }
}

TEST(FaultInjector, HardFailureActivationExpandsHierarchy) {
  // Geometry: 2 chips/module, 2 modules/board => 4 chips per board.
  FaultPlan plan;
  plan.hard_failures.push_back({1.0, 1, -1, -1});  // whole board 1
  plan.hard_failures.push_back({2.0, 0, 1, -1});   // board 0, module 1
  plan.hard_failures.push_back({3.0, 0, 0, 1});    // single chip
  FaultInjector inj(plan);

  EXPECT_TRUE(inj.activate_hard_failures(0.5, 2, 4).empty());

  const auto at1 = inj.activate_hard_failures(1.0, 2, 4);
  EXPECT_EQ(at1, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_TRUE(inj.chip_hard_failed(5));
  EXPECT_FALSE(inj.chip_hard_failed(3));

  const auto at2 = inj.activate_hard_failures(2.0, 2, 4);
  EXPECT_EQ(at2, (std::vector<int>{2, 3}));

  const auto at3 = inj.activate_hard_failures(3.5, 2, 4);
  EXPECT_EQ(at3, (std::vector<int>{1}));
  EXPECT_EQ(inj.counts().hard_activations, 7u);

  // Idempotent: re-activation returns nothing new.
  EXPECT_TRUE(inj.activate_hard_failures(10.0, 2, 4).empty());
}

TEST(FaultChecksum, EverySingleBitFlipDetectedInJParticle) {
  // The scrub relies on this: one upset anywhere in the stored image must
  // change the digest. Exhaustively flip every bit of every field.
  const auto mem = test_memory(1);
  const StoredJParticle ref = mem[0];
  const std::uint64_t base = checksum(ref);

  const auto expect_detects = [&](auto&& mutate, const char* field) {
    for (int bit = 0; bit < 64; ++bit) {
      StoredJParticle p = ref;
      mutate(p, bit);
      EXPECT_NE(checksum(p), base) << field << " bit " << bit;
    }
  };
  for (int bit = 0; bit < 32; ++bit) {
    StoredJParticle p = ref;
    p.index ^= (1u << bit);
    EXPECT_NE(checksum(p), base) << "index bit " << bit;
  }
  expect_detects([](StoredJParticle& p, int b) {
    p.mass = std::bit_cast<double>(std::bit_cast<std::uint64_t>(p.mass) ^ (1ULL << b));
  }, "mass");
  expect_detects([](StoredJParticle& p, int b) {
    p.t0 = std::bit_cast<double>(std::bit_cast<std::uint64_t>(p.t0) ^ (1ULL << b));
  }, "t0");
  for (int d = 0; d < 3; ++d) {
    expect_detects([d](StoredJParticle& p, int b) {
      p.pos[d] ^= (1LL << b);
    }, "pos");
    expect_detects([d](StoredJParticle& p, int b) {
      p.vel[d] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(p.vel[d]) ^ (1ULL << b));
    }, "vel");
    expect_detects([d](StoredJParticle& p, int b) {
      p.acc[d] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(p.acc[d]) ^ (1ULL << b));
    }, "acc");
    expect_detects([d](StoredJParticle& p, int b) {
      p.jerk[d] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(p.jerk[d]) ^ (1ULL << b));
    }, "jerk");
    expect_detects([d](StoredJParticle& p, int b) {
      p.snap[d] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(p.snap[d]) ^ (1ULL << b));
    }, "snap");
  }
}

TEST(FaultChecksum, EverySingleBitFlipDetectedInIPacket) {
  const auto pk = test_packets(1);
  const IParticlePacket ref = pk[0];
  const std::uint64_t base = checksum(ref);
  for (int bit = 0; bit < 32; ++bit) {
    IParticlePacket p = ref;
    p.index ^= (1u << bit);
    EXPECT_NE(checksum(p), base) << "index bit " << bit;
  }
  for (int d = 0; d < 3; ++d) {
    for (int bit = 0; bit < 64; ++bit) {
      IParticlePacket p = ref;
      p.pos[d] ^= (1LL << bit);
      EXPECT_NE(checksum(p), base) << "pos bit " << bit;
      IParticlePacket q = ref;
      q.vel[d] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(q.vel[d]) ^ (1ULL << bit));
      EXPECT_NE(checksum(q), base) << "vel bit " << bit;
    }
  }
  for (int bit = 0; bit < 64; ++bit) {
    IParticlePacket p = ref;
    p.h2 = std::bit_cast<double>(std::bit_cast<std::uint64_t>(p.h2) ^ (1ULL << bit));
    EXPECT_NE(checksum(p), base) << "h2 bit " << bit;
  }
}

TEST(FaultPlanJson, ParsesAllKnownKeys) {
  const auto doc = obs::JsonValue::parse(R"({
    "seed": 77,
    "jmem_flip_rate": 0.001,
    "ipacket_rate": 0.002,
    "compute_rate": 0.003,
    "stuck_chips": [3, 9],
    "hard_failures": [{"time": 0.5, "board": 1, "module": 2, "chip": 0}],
    "link_drop_rate": 0.01,
    "link_spike_rate": 0.02,
    "link_spike_factor": 5.0,
    "retransmit_timeout_s": 2e-4
  })");
  const FaultPlan plan = FaultPlan::from_json(doc);
  EXPECT_EQ(plan.seed, 77u);
  EXPECT_DOUBLE_EQ(plan.jmem_flip_rate, 0.001);
  EXPECT_DOUBLE_EQ(plan.ipacket_rate, 0.002);
  EXPECT_DOUBLE_EQ(plan.compute_rate, 0.003);
  EXPECT_EQ(plan.stuck_chips, (std::vector<int>{3, 9}));
  ASSERT_EQ(plan.hard_failures.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.hard_failures[0].time, 0.5);
  EXPECT_EQ(plan.hard_failures[0].board, 1);
  EXPECT_EQ(plan.hard_failures[0].module, 2);
  EXPECT_EQ(plan.hard_failures[0].chip, 0);
  EXPECT_DOUBLE_EQ(plan.link_drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.link_spike_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.link_spike_factor, 5.0);
  EXPECT_DOUBLE_EQ(plan.retransmit_timeout_s, 2e-4);
  EXPECT_TRUE(plan.any());
}

TEST(FaultPlanJson, RejectsUnknownKeysAndBadValues) {
  // Typos in chaos configs must fail loudly, not silently no-op.
  EXPECT_THROW(FaultPlan::from_json(obs::JsonValue::parse(
                   R"({"jmem_fliprate": 0.1})")),
               FaultError);
  EXPECT_THROW(FaultPlan::from_json(obs::JsonValue::parse(
                   R"({"jmem_flip_rate": 1.5})")),
               FaultError);
  EXPECT_THROW(FaultPlan::from_json(obs::JsonValue::parse(
                   R"({"hard_failures": [{"time": 0.5}]})")),
               FaultError);
  EXPECT_THROW(FaultPlan::from_json(obs::JsonValue::parse(
                   R"({"hard_failures": [{"board": 0, "bord": 1}]})")),
               FaultError);
  EXPECT_THROW(FaultPlan::from_json(obs::JsonValue::parse(R"([1, 2])")),
               FaultError);
}

TEST(FaultPlanJson, MissingFileThrows) {
  EXPECT_THROW(FaultPlan::from_file("/nonexistent/fault-plan.json"), FaultError);
}

TEST(FaultPlan, EmptyPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  FaultInjector inj(plan);
  JStore mem = JStore::from_aos(test_memory(32));
  const auto before = test_memory(32);
  EXPECT_EQ(inj.corrupt_j_memory(0.0, 0, mem), 0u);
  auto pk = test_packets(16);
  EXPECT_EQ(inj.corrupt_i_packets(0.0, pk), 0u);
  EXPECT_FALSE(inj.drop_message());
  EXPECT_DOUBLE_EQ(inj.latency_factor(), 1.0);
  for (std::size_t i = 0; i < mem.size(); ++i) {
    EXPECT_TRUE(same_bits(mem.get(i), before[i])) << i;
  }
}

}  // namespace
}  // namespace g6::fault
