#include "util/errors.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace g6::fault {
namespace {

// The taxonomy is load-bearing for recovery code: the integrator retries
// on TransientFault, drivers degrade on HardFault, and generic handlers
// catch FaultError. These tests pin the is-a relationships so a refactor
// cannot silently flatten the hierarchy.

TEST(FaultErrors, RetryExhaustedIsTransient) {
  try {
    throw RetryExhausted("out of retries");
  } catch (const TransientFault& e) {
    EXPECT_STREQ(e.what(), "out of retries");
    return;
  }
  FAIL() << "RetryExhausted must be catchable as TransientFault";
}

TEST(FaultErrors, TransientIsFaultError) {
  EXPECT_THROW(throw TransientFault("bit upset"), FaultError);
}

TEST(FaultErrors, HardFaultIsFaultError) {
  EXPECT_THROW(throw HardFault("dead board"), FaultError);
}

TEST(FaultErrors, HardFaultIsNotTransient) {
  // A retry loop must never swallow a hard failure.
  try {
    throw HardFault("dead board");
  } catch (const TransientFault&) {
    FAIL() << "HardFault must not be catchable as TransientFault";
  } catch (const FaultError&) {
    SUCCEED();
  }
}

TEST(FaultErrors, FaultErrorIsRuntimeError) {
  // Generic tool-level handlers (catch std::exception) still see faults.
  EXPECT_THROW(throw FaultError("anything"), std::runtime_error);
}

}  // namespace
}  // namespace g6::fault
