#include "fault/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/errors.hpp"
#include "grape/engine.hpp"
#include "hermite/integrator.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

MachineConfig tiny_machine() {
  MachineConfig mc;
  mc.boards_per_host = 1;
  mc.modules_per_board = 2;
  mc.chips_per_module = 2;
  return mc;
}

ParticleSet test_system(std::size_t n, unsigned seed) {
  Rng rng(seed);
  return make_plummer(n, rng);
}

fault::RunCheckpoint make_checkpoint(HermiteIntegrator& integ,
                                     GrapeForceEngine& hw) {
  fault::RunCheckpoint cp;
  cp.run_tag = "model=plummer n=32 seed=5";
  cp.state = integ.save_state();
  cp.exponents = hw.exponents();
  cp.e0 = -0.25;
  cp.next_snap = 0.5;
  cp.snap_id = 3;
  return cp;
}

void expect_states_equal(const HermiteState& a, const HermiteState& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.total_blocksteps, b.total_blocksteps);
  ASSERT_EQ(a.particles.size(), b.particles.size());
  for (std::size_t i = 0; i < a.particles.size(); ++i) {
    EXPECT_EQ(a.particles[i].mass, b.particles[i].mass) << i;
    EXPECT_EQ(a.particles[i].t0, b.particles[i].t0) << i;
    EXPECT_EQ(a.particles[i].pos, b.particles[i].pos) << i;
    EXPECT_EQ(a.particles[i].vel, b.particles[i].vel) << i;
    EXPECT_EQ(a.particles[i].acc, b.particles[i].acc) << i;
    EXPECT_EQ(a.particles[i].jerk, b.particles[i].jerk) << i;
    EXPECT_EQ(a.particles[i].snap, b.particles[i].snap) << i;
    EXPECT_EQ(a.dt[i], b.dt[i]) << i;
    EXPECT_EQ(a.last_force[i].acc, b.last_force[i].acc) << i;
    EXPECT_EQ(a.last_force[i].jerk, b.last_force[i].jerk) << i;
    EXPECT_EQ(a.last_force[i].pot, b.last_force[i].pot) << i;
  }
}

TEST(Checkpoint, TextRoundTripIsBitExact) {
  // 17 significant digits round-trip IEEE binary64 exactly; the schema
  // must preserve every field of the state bit for bit.
  const double eps = 1.0 / 64.0;
  const ParticleSet set = test_system(32, 5);
  GrapeForceEngine hw(tiny_machine(), NumberFormats{}, eps);
  HermiteIntegrator integ(set, hw);
  integ.evolve(0.125);

  const fault::RunCheckpoint cp = make_checkpoint(integ, hw);
  std::stringstream ss;
  fault::write_checkpoint(ss, cp);
  const fault::RunCheckpoint rt = fault::read_checkpoint(ss);

  EXPECT_EQ(rt.run_tag, cp.run_tag);
  EXPECT_EQ(rt.e0, cp.e0);
  EXPECT_EQ(rt.next_snap, cp.next_snap);
  EXPECT_EQ(rt.snap_id, cp.snap_id);
  expect_states_equal(rt.state, cp.state);
  ASSERT_EQ(rt.exponents.size(), cp.exponents.size());
  for (std::size_t i = 0; i < cp.exponents.size(); ++i) {
    EXPECT_EQ(rt.exponents[i].acc, cp.exponents[i].acc) << i;
    EXPECT_EQ(rt.exponents[i].jerk, cp.exponents[i].jerk) << i;
    EXPECT_EQ(rt.exponents[i].pot, cp.exponents[i].pot) << i;
  }
}

TEST(Checkpoint, ResumeIsBitIdenticalToUninterruptedRun) {
  // The headline guarantee: stop at t/2, serialize through the text
  // format, restore into a *fresh* engine, continue — and land on exactly
  // the trajectory of the run that never stopped.
  const double eps = 1.0 / 64.0;
  const ParticleSet set = test_system(32, 9);

  GrapeForceEngine hw_full(tiny_machine(), NumberFormats{}, eps);
  HermiteIntegrator full(set, hw_full);
  full.evolve(0.25);

  GrapeForceEngine hw_half(tiny_machine(), NumberFormats{}, eps);
  HermiteIntegrator half(set, hw_half);
  half.evolve(0.125);
  fault::RunCheckpoint cp = make_checkpoint(half, hw_half);
  std::stringstream ss;
  fault::write_checkpoint(ss, cp);
  const fault::RunCheckpoint rt = fault::read_checkpoint(ss);

  GrapeForceEngine hw_res(tiny_machine(), NumberFormats{}, eps);
  HermiteIntegrator resumed(rt.state, hw_res);
  // Must happen AFTER construction: load_particles resets the exponent
  // bank, and the BFP exponents shape rounding on the next pass.
  hw_res.exponents() = rt.exponents;
  resumed.evolve(0.25);

  EXPECT_EQ(full.time(), resumed.time());
  EXPECT_EQ(full.total_steps(), resumed.total_steps());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(full.particle(i).pos, resumed.particle(i).pos) << i;
    EXPECT_EQ(full.particle(i).vel, resumed.particle(i).vel) << i;
    EXPECT_EQ(full.particle(i).acc, resumed.particle(i).acc) << i;
    EXPECT_EQ(full.timestep(i), resumed.timestep(i)) << i;
  }
}

TEST(Checkpoint, AtomicSaveAndLoad) {
  const double eps = 1.0 / 64.0;
  const ParticleSet set = test_system(16, 2);
  GrapeForceEngine hw(tiny_machine(), NumberFormats{}, eps);
  HermiteIntegrator integ(set, hw);
  integ.evolve(0.0625);
  const fault::RunCheckpoint cp = make_checkpoint(integ, hw);

  const std::string path =
      (std::filesystem::temp_directory_path() / "g6_checkpoint_test.ckpt").string();
  fault::save_checkpoint(path, cp);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // renamed, not left over
  const fault::RunCheckpoint rt = fault::load_checkpoint(path);
  EXPECT_EQ(rt.run_tag, cp.run_tag);
  expect_states_equal(rt.state, cp.state);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptInputThrowsFaultError) {
  const double eps = 1.0 / 64.0;
  const ParticleSet set = test_system(16, 4);
  GrapeForceEngine hw(tiny_machine(), NumberFormats{}, eps);
  HermiteIntegrator integ(set, hw);
  integ.evolve(0.0625);
  std::stringstream ss;
  fault::write_checkpoint(ss, make_checkpoint(integ, hw));
  const std::string text = ss.str();

  {  // wrong schema line
    std::stringstream bad("not-a-checkpoint\n");
    EXPECT_THROW(fault::read_checkpoint(bad), fault::FaultError);
  }
  {  // truncated mid-file: half the bytes
    std::stringstream bad(text.substr(0, text.size() / 2));
    EXPECT_THROW(fault::read_checkpoint(bad), fault::FaultError);
  }
  {  // empty
    std::stringstream bad("");
    EXPECT_THROW(fault::read_checkpoint(bad), fault::FaultError);
  }
  EXPECT_THROW(fault::load_checkpoint("/nonexistent/run.ckpt"), fault::FaultError);
}

std::string checkpoint_text(unsigned seed) {
  const double eps = 1.0 / 64.0;
  const ParticleSet set = test_system(16, seed);
  GrapeForceEngine hw(tiny_machine(), NumberFormats{}, eps);
  HermiteIntegrator integ(set, hw);
  integ.evolve(0.0625);
  std::stringstream ss;
  fault::write_checkpoint(ss, make_checkpoint(integ, hw));
  return ss.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::trunc);
  os << text;
}

TEST(Checkpoint, ChecksumTrailerIsWrittenAndVerified) {
  const std::string text = checkpoint_text(7);
  // trailer: "end\nsum <16 hex digits>\n" over all preceding bytes.
  const std::size_t marker = text.rfind("end\nsum ");
  ASSERT_NE(marker, std::string::npos);
  EXPECT_EQ(text.size(), marker + 4 + 4 + 16 + 1);
  std::stringstream ok(text);
  EXPECT_NO_THROW(fault::read_checkpoint(ok));
}

TEST(Checkpoint, SingleBitFlipIsDetected) {
  std::string text = checkpoint_text(7);
  // Flip one bit in the middle of the body — a digit of some particle
  // coordinate. The FNV-1a trailer must catch it.
  text[text.size() / 2] ^= 0x01;
  std::stringstream bad(text);
  try {
    fault::read_checkpoint(bad);
    FAIL() << "bit flip went undetected";
  } catch (const fault::FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(Checkpoint, MissingTrailerIsRejected) {
  const std::string text = checkpoint_text(7);
  const std::size_t marker = text.rfind("end\nsum ");
  ASSERT_NE(marker, std::string::npos);
  // A pre-trailer (legacy) file ends at "end\n" — refuse rather than
  // trust unverifiable bytes.
  std::stringstream bad(text.substr(0, marker + 4));
  EXPECT_THROW(fault::read_checkpoint(bad), fault::FaultError);
}

TEST(Checkpoint, TruncatedTrailerIsRejected) {
  const std::string text = checkpoint_text(7);
  std::stringstream bad(text.substr(0, text.size() - 5));
  EXPECT_THROW(fault::read_checkpoint(bad), fault::FaultError);
}

TEST(Checkpoint, RotatingSaveKeepsPreviousGeneration) {
  const auto dir = std::filesystem::temp_directory_path() / "g6_ckpt_rotate";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "job.ckpt").string();

  const double eps = 1.0 / 64.0;
  const ParticleSet set = test_system(16, 11);
  GrapeForceEngine hw(tiny_machine(), NumberFormats{}, eps);
  HermiteIntegrator integ(set, hw);
  integ.evolve(0.0625);
  fault::RunCheckpoint cp = make_checkpoint(integ, hw);
  cp.snap_id = 1;
  fault::save_checkpoint_rotating(path, cp);
  EXPECT_FALSE(std::filesystem::exists(path + ".prev"));
  cp.snap_id = 2;
  fault::save_checkpoint_rotating(path, cp);
  ASSERT_TRUE(std::filesystem::exists(path + ".prev"));

  EXPECT_EQ(fault::load_checkpoint(path).snap_id, 2u);
  EXPECT_EQ(fault::load_checkpoint(path + ".prev").snap_id, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, ResilientLoadFallsBackToPreviousGeneration) {
  const auto dir = std::filesystem::temp_directory_path() / "g6_ckpt_resilient";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "job.ckpt").string();

  const double eps = 1.0 / 64.0;
  const ParticleSet set = test_system(16, 13);
  GrapeForceEngine hw(tiny_machine(), NumberFormats{}, eps);
  HermiteIntegrator integ(set, hw);
  integ.evolve(0.0625);
  fault::RunCheckpoint cp = make_checkpoint(integ, hw);
  cp.snap_id = 1;
  fault::save_checkpoint_rotating(path, cp);
  cp.snap_id = 2;
  fault::save_checkpoint_rotating(path, cp);

  // Corrupt the current generation: injected bit flip mid-file.
  {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    text[text.size() / 2] ^= 0x01;
    spit(path, text);
  }
  bool used_prev = false;
  const fault::RunCheckpoint rt =
      fault::load_checkpoint_resilient(path, &used_prev);
  EXPECT_TRUE(used_prev);
  EXPECT_EQ(rt.snap_id, 1u);

  // Both generations corrupt -> FaultError (and truncation, not just
  // bit flips, is detected).
  spit(path + ".prev", "grape6-checkpoint-v1\ntruncated");
  spit(path, "");
  EXPECT_THROW(fault::load_checkpoint_resilient(path), fault::FaultError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace g6
