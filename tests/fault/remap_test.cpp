#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "util/errors.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "grape/engine.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

MachineConfig tiny_machine() {
  MachineConfig mc;
  mc.boards_per_host = 1;
  mc.modules_per_board = 2;
  mc.chips_per_module = 2;  // 4 chips
  return mc;
}

std::vector<JParticle> plummer_j(std::size_t n, unsigned seed) {
  Rng rng(seed);
  const ParticleSet s = make_plummer(n, rng);
  std::vector<JParticle> js(n);
  for (std::size_t i = 0; i < n; ++i) {
    js[i].mass = s[i].mass;
    js[i].pos = s[i].pos;
    js[i].vel = s[i].vel;
  }
  return js;
}

std::vector<PredictedState> as_block(std::span<const JParticle> js) {
  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i] = {js[i].pos, js[i].vel, js[i].mass, static_cast<std::uint32_t>(i)};
  }
  return block;
}

std::size_t total_j_count(GrapeForceEngine& e) {
  std::size_t total = 0;
  for (std::size_t c = 0; c < e.chip_count(); ++c) {
    total += e.chip_flat(c).j_count();
  }
  return total;
}

TEST(FaultRemap, HealthyRingPlacementMatchesFaultFreeEngine) {
  // With every chip healthy the fault-tolerant placement must be the
  // identical round-robin the plain engine uses, so enabling fault
  // tolerance with an empty-ish plan changes nothing — bit for bit.
  const double eps = 1.0 / 64.0;
  const auto js = plummer_j(96, 7);
  const auto block = as_block(js);

  GrapeForceEngine plain(tiny_machine(), NumberFormats{}, eps);
  GrapeForceEngine ft(tiny_machine(), NumberFormats{}, eps);
  fault::FaultPlan plan;
  plan.hard_failures.push_back({100.0, 0, 0, 0});  // never reached
  ft.enable_fault_tolerance(std::make_shared<fault::FaultInjector>(plan));

  plain.load_particles(js);
  ft.load_particles(js);
  std::vector<Force> fp(js.size()), ff(js.size());
  plain.compute_forces(0.0, block, fp);
  ft.compute_forces(0.0, block, ff);
  for (std::size_t i = 0; i < js.size(); ++i) {
    EXPECT_EQ(fp[i].acc, ff[i].acc) << i;
    EXPECT_EQ(fp[i].jerk, ff[i].jerk) << i;
    EXPECT_EQ(fp[i].pot, ff[i].pot) << i;
  }
}

TEST(FaultRemap, ChipDeathRemapsEveryParticleAndKeepsForcesBitIdentical) {
  const double eps = 1.0 / 64.0;
  const std::size_t n = 96;
  const auto js = plummer_j(n, 11);
  const auto block = as_block(js);

  GrapeForceEngine clean(tiny_machine(), NumberFormats{}, eps);
  GrapeForceEngine ft(tiny_machine(), NumberFormats{}, eps);
  fault::FaultPlan plan;
  plan.hard_failures.push_back({0.125, 0, 0, 1});  // flat chip 1 at t=0.125
  auto inj = std::make_shared<fault::FaultInjector>(plan);
  ft.enable_fault_tolerance(inj);

  clean.load_particles(js);
  ft.load_particles(js);
  EXPECT_EQ(total_j_count(ft), n);

  std::vector<Force> fc(n), ff(n);
  clean.compute_forces(0.0, block, fc);
  ft.compute_forces(0.0, block, ff);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fc[i].acc, ff[i].acc) << "pre-failure " << i;
  }

  // Crossing the failure time activates the hard fault; the anomaly-
  // triggered self-test must catch it and remap before any science pass
  // consumes the dead chip's garbage. Block floating-point accumulation
  // merges in exact integer arithmetic, so redistributing j-particles
  // over 3 chips instead of 4 leaves the decoded forces bit-identical.
  clean.compute_forces(0.25, block, fc);
  ft.compute_forces(0.25, block, ff);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fc[i].acc, ff[i].acc) << "post-failure " << i;
    EXPECT_EQ(fc[i].jerk, ff[i].jerk) << "post-failure " << i;
    EXPECT_EQ(fc[i].pot, ff[i].pot) << "post-failure " << i;
  }

  EXPECT_TRUE(ft.chip_dead(1));
  EXPECT_EQ(ft.dead_chip_count(), 1u);
  EXPECT_GE(ft.stats().remaps, 1u);
  EXPECT_EQ(ft.stats().dead_chips, 1u);
  EXPECT_EQ(ft.chip_flat(1).j_count(), 0u);   // dead chip holds nothing
  EXPECT_EQ(total_j_count(ft), n);            // no particle lost or doubled
  EXPECT_EQ(inj->counts().hard_activations, 1u);
}

TEST(FaultRemap, AllChipsDeadIsAHardFault) {
  const auto js = plummer_j(16, 3);
  const auto block = as_block(js);
  GrapeForceEngine ft(tiny_machine(), NumberFormats{}, 1.0 / 64.0);
  fault::FaultPlan plan;
  plan.hard_failures.push_back({0.5, 0, -1, -1});  // the only board dies
  ft.enable_fault_tolerance(std::make_shared<fault::FaultInjector>(plan));
  ft.load_particles(js);

  std::vector<Force> f(js.size());
  ft.compute_forces(0.0, block, f);  // fine before the failure
  EXPECT_THROW(ft.compute_forces(1.0, block, f), fault::HardFault);
}

}  // namespace
}  // namespace g6
