#include "grape/selftest.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "grape/engine.hpp"

namespace g6 {
namespace {

MachineConfig tiny_machine() {
  MachineConfig mc;
  mc.boards_per_host = 1;
  mc.modules_per_board = 2;
  mc.chips_per_module = 2;  // 4 chips, flat ids 0..3
  return mc;
}

std::vector<int> all_chips(const GrapeForceEngine& e) {
  std::vector<int> ids(e.chip_count());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(ChipSelfTest, HealthyChipsPass) {
  GrapeForceEngine hw(tiny_machine(), NumberFormats{}, 1.0 / 64.0);
  const auto ids = all_chips(hw);
  const SelfTestReport report = run_chip_self_test(hw, ids, SelfTestOptions{});
  EXPECT_EQ(report.tested, hw.chip_count());
  EXPECT_TRUE(report.failed.empty());
  EXPECT_GT(report.cycles, 0u);
}

TEST(ChipSelfTest, StuckChipIsTheOnlyFailure) {
  fault::FaultPlan plan;
  plan.stuck_chips = {2};
  auto inj = std::make_shared<fault::FaultInjector>(plan);

  // enable_fault_tolerance attaches the injector and runs the startup
  // sweep; the stuck chip must be confirmed dead and everything else kept.
  GrapeForceEngine hw(tiny_machine(), NumberFormats{}, 1.0 / 64.0);
  hw.enable_fault_tolerance(inj);
  EXPECT_TRUE(hw.chip_dead(2));
  EXPECT_EQ(hw.dead_chip_count(), 1u);
  for (std::size_t c = 0; c < hw.chip_count(); ++c) {
    if (c != 2) EXPECT_FALSE(hw.chip_dead(c)) << c;
  }
  EXPECT_EQ(hw.stats().selftest_failures, 1u);
  EXPECT_GE(hw.stats().selftests, 1u);
  EXPECT_EQ(hw.healthy_chip_ids(), (std::vector<int>{0, 1, 3}));
}

TEST(ChipSelfTest, TransientGlitchesDoNotKillChips) {
  // A high transient compute rate must not fail the startup self-test:
  // the engine disables glitch injection for the sweep so only permanent
  // faults (stuck/dead hardware) are detectable — a chip is never
  // condemned for a soft error.
  fault::FaultPlan plan;
  plan.compute_rate = 0.5;
  plan.seed = 42;
  auto inj = std::make_shared<fault::FaultInjector>(plan);
  GrapeForceEngine hw(tiny_machine(), NumberFormats{}, 1.0 / 64.0);
  hw.enable_fault_tolerance(inj);
  EXPECT_EQ(hw.dead_chip_count(), 0u);
  EXPECT_EQ(hw.stats().selftest_failures, 0u);
}

TEST(ChipSelfTest, ReportIsDeterministic) {
  GrapeForceEngine a(tiny_machine(), NumberFormats{}, 1.0 / 64.0);
  GrapeForceEngine b(tiny_machine(), NumberFormats{}, 1.0 / 64.0);
  const auto ids = all_chips(a);
  const SelfTestReport ra = run_chip_self_test(a, ids, SelfTestOptions{});
  const SelfTestReport rb = run_chip_self_test(b, ids, SelfTestOptions{});
  EXPECT_EQ(ra.failed, rb.failed);
  EXPECT_EQ(ra.tested, rb.tested);
  EXPECT_EQ(ra.cycles, rb.cycles);
}

}  // namespace
}  // namespace g6
