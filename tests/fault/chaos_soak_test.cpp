// End-to-end chaos soak: a Plummer integration under continuous transient
// injection (j-memory upsets, i-packet corruption, compute glitches) with
// a whole processor board scheduled to die halfway through. The run must
// complete, every injected transient must be caught by the matching
// detector, and — because detection-plus-recovery restores every
// corrupted value before use — the trajectory must stay bit-identical to
// a fault-free twin, which makes the acceptance energy bound (within 2x
// of the fault-free drift) trivially tight.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "grape/engine.hpp"
#include "hermite/integrator.hpp"
#include "nbody/diagnostics.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

MachineConfig two_board_machine() {
  MachineConfig mc;
  mc.boards_per_host = 2;
  mc.modules_per_board = 2;
  mc.chips_per_module = 2;  // 8 chips; board 1 = flat ids 4..7
  return mc;
}

TEST(ChaosSoak, TransientsAllCaughtAndBoardDeathSurvived) {
  const double eps = 1.0 / 64.0;
  const double t_end = 0.25;
  Rng rng(31);
  const ParticleSet set = make_plummer(96, rng);
  const double e0 = compute_energy(set.bodies(), eps).total();

  // Fault-free twin for the reference trajectory and energy drift.
  GrapeForceEngine hw_clean(two_board_machine(), NumberFormats{}, eps);
  HermiteIntegrator clean(set, hw_clean);
  clean.evolve(t_end);
  const double e_clean =
      compute_energy(clean.state_at_current_time().bodies(), eps).total();
  const double drift_clean = std::fabs((e_clean - e0) / e0);

  // Chaos run: ~1e-3 transients on every channel + board 1 dead at t/2.
  fault::FaultPlan plan = fault::FaultPlan::uniform_transients(1e-3, 0x6701);
  plan.hard_failures.push_back({t_end / 2.0, 1, -1, -1});
  auto inj = std::make_shared<fault::FaultInjector>(plan);
  fault::DetectionConfig det;
  det.vote_passes = 2;  // duplicate-pass voting catches compute glitches

  GrapeForceEngine hw(two_board_machine(), NumberFormats{}, eps);
  hw.enable_fault_tolerance(inj, det);
  HermiteIntegrator chaos(set, hw);
  chaos.evolve(t_end);

  // The soak is only meaningful if every channel actually fired.
  const fault::FaultInjector::Counts& c = inj->counts();
  EXPECT_GT(c.jmem_flips, 0u);
  EXPECT_GT(c.ipacket_corruptions, 0u);
  EXPECT_GT(c.compute_glitches, 0u);
  EXPECT_EQ(c.hard_activations, 4u);  // the 4 chips of board 1

  // Reconciliation: injected == detected, channel by channel.
  const GrapeHostStats& s = hw.stats();
  EXPECT_EQ(s.jmem_rewrites, c.jmem_flips);          // scrub caught every upset
  EXPECT_EQ(s.packet_retransmits, c.ipacket_corruptions);  // checksums
  EXPECT_GT(s.vote_retries, 0u);                     // voting caught glitches
  EXPECT_EQ(hw.dead_chip_count(), 4u);
  EXPECT_GE(s.remaps, 1u);
  EXPECT_GT(s.backoff_seconds, 0.0);  // retries charged virtual time

  // Recovery restores every corrupted value before use, so the dynamics
  // is the fault-free dynamics — exactly.
  EXPECT_EQ(clean.total_steps(), chaos.total_steps());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(clean.particle(i).pos, chaos.particle(i).pos) << i;
    EXPECT_EQ(clean.particle(i).vel, chaos.particle(i).vel) << i;
  }

  // The acceptance bound from the issue: |dE/E| within 2x the fault-free
  // run's drift (bit-identical trajectories make this equality).
  const double e_chaos =
      compute_energy(chaos.state_at_current_time().bodies(), eps).total();
  const double drift_chaos = std::fabs((e_chaos - e0) / e0);
  EXPECT_LE(drift_chaos, 2.0 * drift_clean + 1e-12);

  // Degradation costs time, never correctness: the crippled machine must
  // have charged at least as much virtual GRAPE time as the healthy one.
  EXPECT_GE(hw.stats().total_seconds(), hw_clean.stats().total_seconds());
}

TEST(ChaosSoak, SoakIsReproducible) {
  // Same plan, same workload => same fault history, down to the event log.
  const double eps = 1.0 / 64.0;
  Rng rng(31);
  const ParticleSet set = make_plummer(48, rng);
  const fault::FaultPlan plan = fault::FaultPlan::uniform_transients(2e-3, 777);

  auto run = [&](const std::shared_ptr<fault::FaultInjector>& inj) {
    GrapeForceEngine hw(two_board_machine(), NumberFormats{}, eps);
    fault::DetectionConfig det;
    det.vote_passes = 2;
    hw.enable_fault_tolerance(inj, det);
    HermiteIntegrator integ(set, hw);
    integ.evolve(0.125);
    return hw.stats();
  };
  auto inj1 = std::make_shared<fault::FaultInjector>(plan);
  auto inj2 = std::make_shared<fault::FaultInjector>(plan);
  const GrapeHostStats s1 = run(inj1);
  const GrapeHostStats s2 = run(inj2);

  EXPECT_EQ(inj1->counts().jmem_flips, inj2->counts().jmem_flips);
  EXPECT_EQ(inj1->counts().ipacket_corruptions, inj2->counts().ipacket_corruptions);
  EXPECT_EQ(inj1->counts().compute_glitches, inj2->counts().compute_glitches);
  EXPECT_EQ(s1.jmem_rewrites, s2.jmem_rewrites);
  EXPECT_EQ(s1.packet_retransmits, s2.packet_retransmits);
  EXPECT_EQ(s1.vote_retries, s2.vote_retries);
  ASSERT_EQ(inj1->events().size(), inj2->events().size());
  for (std::size_t i = 0; i < inj1->events().size(); ++i) {
    EXPECT_EQ(inj1->events()[i].time, inj2->events()[i].time) << i;
    EXPECT_EQ(inj1->events()[i].what, inj2->events()[i].what) << i;
  }
}

}  // namespace
}  // namespace g6
