#include "perf/machine_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace g6 {
namespace {

TEST(SystemConfig, PresetsMatchPaperTopology) {
  EXPECT_EQ(SystemConfig::single_host().hosts(), 1u);
  EXPECT_EQ(SystemConfig::cluster(4).hosts(), 4u);
  EXPECT_EQ(SystemConfig::multi_cluster(4).hosts(), 16u);
  EXPECT_EQ(SystemConfig::multi_cluster(4).machine.total_chips(), 2048u);
  EXPECT_THROW(SystemConfig::cluster(5), PreconditionError);
}

TEST(SystemConfig, TunedPresetUsesIntelNicAndP4) {
  const SystemConfig tuned = SystemConfig::tuned(4);
  EXPECT_EQ(tuned.nic.name, "Intel82540EM+P4");
  EXPECT_EQ(tuned.host.name, "P4-2.85GHz");
}

TEST(MachineModel, PeakSpeedMatchesPaper) {
  const MachineModel full{SystemConfig::multi_cluster(4)};
  EXPECT_NEAR(full.peak_flops(), 63.04e12, 0.05e12);
}

TEST(MachineModel, SingleHostCostBreakdownSane) {
  const MachineModel m{SystemConfig::single_host()};
  const BlockstepCost c = m.blockstep_cost(2000, 200000);
  EXPECT_EQ(c.net_s, 0.0);  // single host: no host-host traffic
  EXPECT_GT(c.grape_s, 0.0);
  EXPECT_GT(c.dma_s, 0.0);
  EXPECT_GT(c.host_s, 0.0);
  // At N = 2e5 the paper reports > 1 Tflops on one host (Sec 4.4):
  // time per step must be below 57 * 2e5 / 1e12 = 11.4 us.
  EXPECT_LT(c.total() / 2000.0, 11.4e-6);
}

TEST(MachineModel, GrapeTimeScalesWithN) {
  const MachineModel m{SystemConfig::single_host()};
  const double g1 = m.blockstep_cost(96, 100000).grape_s;
  const double g2 = m.blockstep_cost(96, 200000).grape_s;
  EXPECT_NEAR(g2 / g1, 2.0, 0.05);  // pass time ~ N / chips (+latency)
}

TEST(MachineModel, GrapeTimeQuantizedByPasses) {
  const MachineModel m{SystemConfig::single_host()};
  // 1..48 i-particles is one pass; 49 is two.
  const double one = m.blockstep_cost(1, 10000).grape_s;
  const double p48 = m.blockstep_cost(48, 10000).grape_s;
  const double p49 = m.blockstep_cost(49, 10000).grape_s;
  EXPECT_DOUBLE_EQ(one, p48);
  EXPECT_NEAR(p49 / p48, 2.0, 1e-9);
}

TEST(MachineModel, DmaSetupDominatesSmallBlocks) {
  // The Fig 14 small-N knee: per-step cost rises when blocks are tiny.
  const MachineModel m{SystemConfig::single_host()};
  const double per_step_small = m.time_per_particle_step(4, 500);
  const double per_step_large = m.time_per_particle_step(400, 500);
  EXPECT_GT(per_step_small, 3.0 * per_step_large);
}

TEST(MachineModel, SynchronizationGivesOneOverNRegime) {
  // Figs 16/18: for small N (small blocks) the time per particle step is
  // ~ constant/block_size because the per-blockstep barrier dominates.
  const MachineModel m{SystemConfig::multi_cluster(4)};
  const double t8 = m.time_per_particle_step(16, 2000);
  const double t16 = m.time_per_particle_step(32, 4000);
  // Doubling N (and hence the block) nearly halves the per-step time.
  EXPECT_NEAR(t8 / t16, 2.0, 0.35);
}

TEST(MachineModel, MoreHostsCheaperForLargeBlocks) {
  const MachineModel h1{SystemConfig::cluster(1)};
  const MachineModel h4{SystemConfig::cluster(4)};
  const std::size_t n = 1 << 20;
  const std::size_t block = n / 64;
  EXPECT_LT(h4.blockstep_cost(block, n).total(), h1.blockstep_cost(block, n).total());
}

TEST(MachineModel, MoreHostsSlowerForSmallBlocks) {
  const MachineModel h1{SystemConfig::cluster(1)};
  const MachineModel h4{SystemConfig::cluster(4)};
  EXPECT_GT(h4.blockstep_cost(8, 1000).total(), h1.blockstep_cost(8, 1000).total());
}

TEST(MachineModel, MultiClusterPaysMoreSynchronization) {
  SystemConfig one = SystemConfig::cluster(4);
  SystemConfig four = SystemConfig::multi_cluster(4);
  const MachineModel m1{one}, m4{four};
  const BlockstepCost c1 = m1.blockstep_cost(64, 10000);
  const BlockstepCost c4 = m4.blockstep_cost(64, 10000);
  EXPECT_GT(c4.net_s, 2.0 * c1.net_s);  // reasons (b)+(c) of Sec 4.4
}

TEST(MachineModel, BetterNicShrinksNetTime) {
  SystemConfig slow = SystemConfig::multi_cluster(4);
  SystemConfig fast = slow;
  fast.nic = nics::intel82540();
  const double ns = MachineModel{slow}.blockstep_cost(100, 50000).net_s;
  const double is = MachineModel{fast}.blockstep_cost(100, 50000).net_s;
  EXPECT_LT(is, 0.6 * ns);  // ~3x latency, ~1.75x bandwidth
}

TEST(MachineModel, TraceReplayAggregates) {
  BlockstepTrace trace;
  trace.n_particles = 1000;
  trace.t_begin = 0.0;
  trace.t_end = 1.0;
  trace.records = {{0.25, 10}, {0.5, 20}, {0.75, 30}, {1.0, 40}};

  const MachineModel m{SystemConfig::single_host()};
  const auto r = m.run_trace(trace);
  EXPECT_EQ(r.steps, 100ull);
  EXPECT_EQ(r.blocksteps, 4ull);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_NEAR(r.flops, 100.0 * 1000.0 * 57.0, 1.0);
  EXPECT_NEAR(r.breakdown.total(), r.seconds, 1e-12);
  EXPECT_GT(r.paper_speed_flops(1000), 0.0);
}

}  // namespace
}  // namespace g6
