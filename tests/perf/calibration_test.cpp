#include "perf/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace g6 {
namespace {

CalibrationOptions quick_options() {
  CalibrationOptions opt;
  opt.t_span = 0.0625;
  opt.sizes = {128, 256, 512};
  return opt;
}

TEST(Softening, LawsMatchSection4) {
  EXPECT_DOUBLE_EQ(softening_for(SofteningLaw::kConstant, 1000), 1.0 / 64.0);
  EXPECT_DOUBLE_EQ(softening_for(SofteningLaw::kOverN, 1000), 4.0 / 1000.0);
  EXPECT_DOUBLE_EQ(softening_for(SofteningLaw::kCubeRoot, 1000),
                   1.0 / (8.0 * std::cbrt(2000.0)));
  // "for N = 256, all three choices of the softening give the same value"
  for (auto law : {SofteningLaw::kConstant, SofteningLaw::kCubeRoot,
                   SofteningLaw::kOverN}) {
    EXPECT_NEAR(softening_for(law, 256), 1.0 / 64.0, 1e-12) << softening_name(law);
  }
}

TEST(Calibration, MeasuresPlausibleSchedule) {
  const CalibrationPoint p =
      measure_plummer_schedule(256, SofteningLaw::kConstant, quick_options());
  EXPECT_EQ(p.n, 256u);
  EXPECT_GT(p.steps_per_particle_per_time, 1.0);
  EXPECT_LT(p.steps_per_particle_per_time, 1e4);
  EXPECT_GT(p.mean_block_fraction, 0.0);
  EXPECT_LT(p.mean_block_fraction, 1.0);
  EXPECT_GT(p.log_block_sigma, 0.0);
}

TEST(Calibration, FitAndSynthesizeRoundTrip) {
  const auto points = measure_series(SofteningLaw::kConstant, quick_options());
  const TraceScaling scaling = TraceScaling::fit(points);

  // Synthesis at a measured size reproduces the measured statistics.
  Rng rng(99);
  const BlockstepTrace synth = scaling.synthesize(256, 1.0, rng);
  EXPECT_EQ(synth.n_particles, 256u);
  const double r_measured = points[1].steps_per_particle_per_time;
  const double r_synth = synth.steps_per_particle_per_time();
  EXPECT_NEAR(r_synth / r_measured, 1.0, 0.35);

  // Mean block size tracks the fit.
  EXPECT_NEAR(synth.mean_block_size() / scaling.mean_block_size(256), 1.0, 0.35);
}

TEST(Calibration, SynthesisExtrapolatesSanely) {
  const auto points = measure_series(SofteningLaw::kConstant, quick_options());
  const TraceScaling scaling = TraceScaling::fit(points);
  Rng rng(1);
  const BlockstepTrace big = scaling.synthesize(100000, 0.01, rng);
  EXPECT_GT(big.total_steps(), 0ull);
  // Paper: block size roughly proportional to N -> mean block for 1e5
  // particles is much larger than for 256.
  EXPECT_GT(scaling.mean_block_size(100000), scaling.mean_block_size(256));
  for (const auto& rec : big.records) {
    EXPECT_GE(rec.block_size, 1u);
    EXPECT_LE(rec.block_size, 100000u);
  }
}

TEST(Calibration, SaveLoadRoundTrip) {
  TraceScaling s;
  s.steps_rate = {12.5, 0.31, 0.99};
  s.block_fraction = {0.8, -0.4, 0.95};
  s.log_block_sigma = 0.77;

  std::stringstream ss;
  s.save(ss);
  const TraceScaling back = TraceScaling::load(ss);
  EXPECT_DOUBLE_EQ(back.steps_rate.coefficient, 12.5);
  EXPECT_DOUBLE_EQ(back.steps_rate.exponent, 0.31);
  EXPECT_DOUBLE_EQ(back.block_fraction.coefficient, 0.8);
  EXPECT_DOUBLE_EQ(back.block_fraction.exponent, -0.4);
  EXPECT_DOUBLE_EQ(back.log_block_sigma, 0.77);
}

TEST(Calibration, LoadRejectsGarbage) {
  std::stringstream ss("not-a-cache\n1 2 3\n");
  EXPECT_THROW(TraceScaling::load(ss), PreconditionError);
}

TEST(Calibration, CachingWorks) {
  const std::string path = ::testing::TempDir() + "/calib_cache_test.txt";
  std::remove(path.c_str());

  CalibrationOptions opt = quick_options();
  opt.sizes = {64, 128};
  opt.t_span = 0.03125;
  const TraceScaling first = calibrated_scaling(SofteningLaw::kOverN, opt, path);
  // Second call must load the identical cache.
  const TraceScaling second = calibrated_scaling(SofteningLaw::kOverN, opt, path);
  EXPECT_DOUBLE_EQ(first.steps_rate.coefficient, second.steps_rate.coefficient);
  EXPECT_DOUBLE_EQ(first.block_fraction.exponent, second.block_fraction.exponent);
}

}  // namespace
}  // namespace g6
