// Parameterized monotonicity properties of the performance model — the
// invariants behind every figure's shape.

#include <gtest/gtest.h>

#include "perf/machine_model.hpp"
#include "util/check.hpp"

namespace g6 {
namespace {

class HostCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HostCountSweep, LargeBlockTimeDecreasesWithHosts) {
  const std::size_t hosts = GetParam();
  if (hosts == 1) return;
  const MachineModel fewer{SystemConfig::cluster(hosts / 2)};
  const MachineModel more{SystemConfig::cluster(hosts)};
  const std::size_t n = 1 << 20;
  const std::size_t block = 1 << 14;
  EXPECT_LT(more.blockstep_cost(block, n).total(),
            fewer.blockstep_cost(block, n).total());
}

TEST_P(HostCountSweep, NetworkCostGrowsWithHosts) {
  const std::size_t hosts = GetParam();
  if (hosts == 1) return;
  const MachineModel fewer{SystemConfig::cluster(hosts / 2)};
  const MachineModel more{SystemConfig::cluster(hosts)};
  EXPECT_GE(more.blockstep_cost(64, 10000).net_s,
            fewer.blockstep_cost(64, 10000).net_s);
}

INSTANTIATE_TEST_SUITE_P(Hosts, HostCountSweep, ::testing::Values(1u, 2u, 4u));

class SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeSweep, CostsMonotoneInN) {
  const std::size_t n = GetParam();
  const MachineModel m{SystemConfig::single_host()};
  const BlockstepCost small = m.blockstep_cost(100, n);
  const BlockstepCost big = m.blockstep_cost(100, 2 * n);
  EXPECT_GT(big.grape_s, small.grape_s);   // pass time ~ N
  EXPECT_GE(big.host_s, small.host_s);     // cache model non-decreasing
  EXPECT_EQ(big.net_s, small.net_s);       // single host: always zero
}

TEST_P(SizeSweep, CostsMonotoneInBlockSize) {
  const std::size_t n = GetParam();
  const MachineModel m{SystemConfig::multi_cluster(4)};
  const BlockstepCost small = m.blockstep_cost(64, n);
  const BlockstepCost big = m.blockstep_cost(640, n);
  EXPECT_GT(big.total(), small.total());
  // But per-step cost shrinks (amortization of fixed overheads).
  EXPECT_LT(big.total() / 640.0, small.total() / 64.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(10000u, 100000u, 1000000u));

TEST(ModelProps, BlockLargerThanNWorks) {
  // Degenerate but legal: a block of the whole system.
  const MachineModel m{SystemConfig::cluster(4)};
  EXPECT_GT(m.blockstep_cost(1000, 1000).total(), 0.0);
}

TEST(ModelProps, RejectsZeroBlock) {
  const MachineModel m{SystemConfig::single_host()};
  EXPECT_THROW(m.blockstep_cost(0, 100), PreconditionError);
  EXPECT_THROW(m.blockstep_cost(10, 0), PreconditionError);
}

TEST(ModelProps, EmptyTraceGivesZeroes) {
  const MachineModel m{SystemConfig::single_host()};
  BlockstepTrace trace;
  trace.n_particles = 100;
  const auto r = m.run_trace(trace);
  EXPECT_EQ(r.steps, 0ull);
  EXPECT_EQ(r.seconds, 0.0);
  EXPECT_EQ(r.tflops(), 0.0);
  EXPECT_EQ(r.steps_per_second(), 0.0);
  EXPECT_EQ(r.time_per_step(), 0.0);
}

TEST(ModelProps, MyrinetBeatsEverythingOnNet) {
  SystemConfig base = SystemConfig::multi_cluster(4);
  double prev = 1e9;
  for (const NicModel& nic :
       {nics::ns83820(), nics::tigon2(), nics::intel82540(), nics::myrinet()}) {
    SystemConfig sys = base;
    sys.nic = nic;
    const double net = MachineModel{sys}.blockstep_cost(100, 100000).net_s;
    EXPECT_LE(net, prev) << nic.name;
    prev = net;
  }
}

}  // namespace
}  // namespace g6
