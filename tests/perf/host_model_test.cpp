#include "perf/host_model.hpp"

#include <gtest/gtest.h>

namespace g6 {
namespace {

TEST(HostModel, CacheCurveInterpolatesBetweenLimits) {
  const HostModel h{"test", 1e-6, 3e-6, 1e4, 10e-6};
  EXPECT_NEAR(h.step_time(0.0), 1e-6, 1e-12);           // cache-resident
  EXPECT_NEAR(h.step_time(1e4), 2e-6, 1e-9);            // half benefit at n_half
  EXPECT_NEAR(h.step_time(1e12), 3e-6, 1e-8);           // out-of-cache limit
  EXPECT_DOUBLE_EQ(h.step_time_flat(), 3e-6);
}

TEST(HostModel, MonotoneInN) {
  const HostModel h = hosts::athlon_xp_1800();
  double prev = 0.0;
  for (double n = 100; n < 1e7; n *= 10) {
    const double t = h.step_time(n);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(HostModel, P4FasterThanAthlonEverywhere) {
  // The Sec 4.4 host upgrade: Intel P4 2.85 GHz beats the Athlon XP 1800+
  // at every system size.
  const HostModel a = hosts::athlon_xp_1800();
  const HostModel p = hosts::pentium4_285();
  for (double n : {1e2, 1e4, 1e6}) {
    EXPECT_LT(p.step_time(n), a.step_time(n)) << n;
  }
  EXPECT_LT(p.block_overhead_s, a.block_overhead_s);
}

}  // namespace
}  // namespace g6
