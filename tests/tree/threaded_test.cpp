#include <gtest/gtest.h>

#include "nbody/models.hpp"
#include "tree/leapfrog.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

TEST(TreecodeThreads, ThreadedForcesMatchSerialExactly) {
  Rng rng(1);
  const ParticleSet s = make_plummer(512, rng);

  TreecodeConfig serial_cfg;
  serial_cfg.threads = 1;
  TreecodeConfig threaded_cfg = serial_cfg;
  threaded_cfg.threads = 4;

  TreecodeIntegrator a(s, serial_cfg);
  TreecodeIntegrator b(s, threaded_cfg);
  for (int k = 0; k < 3; ++k) {
    a.step();
    b.step();
  }
  // Identical traversal per particle -> bit-identical trajectories.
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(a.state()[i].pos, b.state()[i].pos) << i;
    EXPECT_EQ(a.state()[i].vel, b.state()[i].vel) << i;
  }
  EXPECT_EQ(a.interactions(), b.interactions());
}

TEST(TreecodeThreads, RangeQueryFindsAllWithin) {
  Rng rng(2);
  const ParticleSet s = make_plummer(1024, rng);
  Octree tree;
  tree.build(s.bodies());
  const Vec3 center{0.1, -0.2, 0.05};
  const double radius = 0.4;
  auto found = tree.within(center, radius);
  std::size_t brute = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (norm(s[i].pos - center) <= radius) ++brute;
  }
  EXPECT_EQ(found.size(), brute);
}

TEST(TreecodeThreads, RangeQuerySkipsSelf) {
  ParticleSet s;
  s.add({1.0, {0.0, 0.0, 0.0}, {}});
  s.add({1.0, {0.1, 0.0, 0.0}, {}});
  Octree tree;
  tree.build(s.bodies());
  const auto found = tree.within(s[0].pos, 1.0, 0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 1u);
}

}  // namespace
}  // namespace g6
