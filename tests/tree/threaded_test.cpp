#include <gtest/gtest.h>

#include "hermite/direct_engine.hpp"
#include "nbody/models.hpp"
#include "tree/leapfrog.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

TEST(TreecodeThreads, ThreadedForcesMatchSerialExactly) {
  Rng rng(1);
  const ParticleSet s = make_plummer(512, rng);

  TreecodeConfig serial_cfg;
  serial_cfg.threads = 1;
  TreecodeConfig threaded_cfg = serial_cfg;
  threaded_cfg.threads = 4;

  TreecodeIntegrator a(s, serial_cfg);
  TreecodeIntegrator b(s, threaded_cfg);
  for (int k = 0; k < 3; ++k) {
    a.step();
    b.step();
  }
  // Identical traversal per particle -> bit-identical trajectories.
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(a.state()[i].pos, b.state()[i].pos) << i;
    EXPECT_EQ(a.state()[i].vel, b.state()[i].vel) << i;
  }
  EXPECT_EQ(a.interactions(), b.interactions());
}

// Stress variant for the sanitizer presets: hammer the threaded force
// loops with 8 workers over many repetitions so TSan sees every
// fork/join and accumulator pattern often enough to flag a race. Cheap
// in a plain build (~100 small steps); the value is in the tsan preset.
TEST(TreecodeThreads, StressEightThreadsHundredRepetitions) {
  Rng rng(3);
  const ParticleSet s = make_plummer(256, rng);

  TreecodeConfig cfg;
  cfg.threads = 8;
  TreecodeIntegrator threaded(s, cfg);
  TreecodeIntegrator serial(s, [] {
    TreecodeConfig c;
    c.threads = 1;
    return c;
  }());
  for (int rep = 0; rep < 100; ++rep) {
    threaded.step();
    serial.step();
  }
  // Threading must not change a single bit of the trajectory.
  for (std::size_t i = 0; i < s.size(); ++i) {
    ASSERT_EQ(threaded.state()[i].pos, serial.state()[i].pos) << i;
    ASSERT_EQ(threaded.state()[i].vel, serial.state()[i].vel) << i;
  }
  EXPECT_EQ(threaded.interactions(), serial.interactions());
}

TEST(TreecodeThreads, StressDirectEngineEightThreads) {
  Rng rng(4);
  const ParticleSet s = make_plummer(192, rng);
  std::vector<JParticle> js(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    js[i].mass = s[i].mass;
    js[i].pos = s[i].pos;
    js[i].vel = s[i].vel;
  }

  DirectForceEngine threaded(0.01, 8);
  DirectForceEngine serial(0.01, 1);
  threaded.load_particles(js);
  serial.load_particles(js);

  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i].index = static_cast<std::uint32_t>(i);
    block[i].pos = js[i].pos;
    block[i].vel = js[i].vel;
  }
  std::vector<Force> ft(js.size()), fs(js.size());
  for (int rep = 0; rep < 100; ++rep) {
    threaded.compute_forces(0.0, block, ft);
    serial.compute_forces(0.0, block, fs);
    for (std::size_t i = 0; i < js.size(); ++i) {
      ASSERT_EQ(ft[i].acc, fs[i].acc) << "rep " << rep << " particle " << i;
    }
  }
  EXPECT_EQ(threaded.interactions(), serial.interactions());
}

TEST(TreecodeThreads, RangeQueryFindsAllWithin) {
  Rng rng(2);
  const ParticleSet s = make_plummer(1024, rng);
  Octree tree;
  tree.build(s.bodies());
  const Vec3 center{0.1, -0.2, 0.05};
  const double radius = 0.4;
  auto found = tree.within(center, radius);
  std::size_t brute = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (norm(s[i].pos - center) <= radius) ++brute;
  }
  EXPECT_EQ(found.size(), brute);
}

TEST(TreecodeThreads, RangeQuerySkipsSelf) {
  ParticleSet s;
  s.add({1.0, {0.0, 0.0, 0.0}, {}});
  s.add({1.0, {0.1, 0.0, 0.0}, {}});
  Octree tree;
  tree.build(s.bodies());
  const auto found = tree.within(s[0].pos, 1.0, 0);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 1u);
}

}  // namespace
}  // namespace g6
