#include "tree/collisions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nbody/models.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

TEST(Collisions, FindsOverlappingPairOnly) {
  ParticleSet s;
  s.add({1.0, {0.0, 0.0, 0.0}, {}});
  s.add({1.0, {0.15, 0.0, 0.0}, {}});   // overlaps with 0 at radius 0.1
  s.add({1.0, {10.0, 0.0, 0.0}, {}});   // far away
  const std::vector<double> radii(3, 0.1);
  const auto pairs = find_colliding_pairs(s.bodies(), radii);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
  EXPECT_NEAR(pairs[0].distance, 0.15, 1e-12);
}

TEST(Collisions, PairsSortedByDistanceAndUnique) {
  ParticleSet s;
  s.add({1.0, {0.0, 0.0, 0.0}, {}});
  s.add({1.0, {0.18, 0.0, 0.0}, {}});
  s.add({1.0, {0.05, 0.0, 0.0}, {}});
  const std::vector<double> radii(3, 0.1);
  const auto pairs = find_colliding_pairs(s.bodies(), radii);
  ASSERT_EQ(pairs.size(), 3u);  // all three mutually within 0.2
  EXPECT_LE(pairs[0].distance, pairs[1].distance);
  EXPECT_LE(pairs[1].distance, pairs[2].distance);
  for (const auto& p : pairs) EXPECT_LT(p.a, p.b);
}

TEST(Collisions, MatchesBruteForceOnRandomDisk) {
  Rng rng(5);
  const ParticleSet s = make_planetesimal_disk(400, rng);
  const auto radii = accretion_radii(s.bodies(), s[1].mass, 0.01);
  const auto pairs = find_colliding_pairs(s.bodies(), radii);

  std::size_t brute = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      if (norm(s[j].pos - s[i].pos) <= radii[i] + radii[j]) ++brute;
    }
  }
  EXPECT_EQ(pairs.size(), brute);
}

TEST(Collisions, MergeConservesMassAndMomentum) {
  const Body a{2.0, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  const Body b{1.0, {-2.0, 0.0, 0.0}, {0.0, -2.0, 0.0}};
  const Body m = merge_bodies(a, b);
  EXPECT_DOUBLE_EQ(m.mass, 3.0);
  EXPECT_DOUBLE_EQ(m.pos.x, 0.0);
  EXPECT_DOUBLE_EQ(m.vel.y, 0.0);
  EXPECT_THROW(merge_bodies(Body{}, Body{}), PreconditionError);
}

TEST(Collisions, AccretionRadiiScaleAsCubeRoot) {
  ParticleSet s;
  s.add({1.0, {}, {}});
  s.add({8.0, {1, 0, 0}, {}});
  const auto radii = accretion_radii(s.bodies(), 1.0, 0.5);
  EXPECT_DOUBLE_EQ(radii[0], 0.5);
  EXPECT_DOUBLE_EQ(radii[1], 1.0);  // 8x mass -> 2x radius
}

TEST(Collisions, ApplyMergesAndCompacts) {
  ParticleSet s;
  s.add({1.0, {0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}});
  s.add({1.0, {0.05, 0.0, 0.0}, {-1.0, 0.0, 0.0}});
  s.add({1.0, {5.0, 0.0, 0.0}, {}});
  auto radii = accretion_radii(s.bodies(), 1.0, 0.1);
  const double m0 = s.total_mass();

  const std::size_t merges = apply_collisions(s, radii, 1.0, 0.1);
  EXPECT_EQ(merges, 1u);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(radii.size(), 2u);
  EXPECT_NEAR(s.total_mass(), m0, 1e-15);
  // Head-on equal-mass merger is at rest.
  EXPECT_NEAR(norm(s[0].vel), 0.0, 1e-15);
  // Merged body grew.
  EXPECT_GT(radii[0], radii[1]);
}

TEST(Collisions, EachBodyMergesAtMostOncePerRound) {
  // Chain 0-1-2 all overlapping: one round may merge only one pair
  // involving each body.
  ParticleSet s;
  s.add({1.0, {0.0, 0.0, 0.0}, {}});
  s.add({1.0, {0.1, 0.0, 0.0}, {}});
  s.add({1.0, {0.2, 0.0, 0.0}, {}});
  auto radii = std::vector<double>(3, 0.08);
  const std::size_t merges = apply_collisions(s, radii, 1.0, 0.08);
  EXPECT_EQ(merges, 1u);
  EXPECT_EQ(s.size(), 2u);
}

TEST(Collisions, NoPairsOnDispersedSystem) {
  Rng rng(6);
  const ParticleSet s = make_plummer(128, rng);
  const std::vector<double> radii(s.size(), 1e-9);
  EXPECT_TRUE(find_colliding_pairs(s.bodies(), radii).empty());
}

}  // namespace
}  // namespace g6
