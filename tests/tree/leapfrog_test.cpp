#include "tree/leapfrog.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nbody/diagnostics.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

TEST(Treecode, EnergyDriftBounded) {
  Rng rng(1);
  const ParticleSet s = make_plummer(512, rng);
  TreecodeConfig cfg;
  cfg.theta = 0.5;
  cfg.eps = 0.05;
  cfg.dt = 1.0 / 256.0;
  TreecodeIntegrator integ(s, cfg);
  const double e0 = compute_energy(s.bodies(), cfg.eps).total();
  integ.evolve(0.5);
  const double e1 = compute_energy(integ.state().bodies(), cfg.eps).total();
  EXPECT_LT(std::fabs((e1 - e0) / e0), 5e-3);
}

TEST(Treecode, StepAccounting) {
  Rng rng(2);
  const ParticleSet s = make_plummer(128, rng);
  TreecodeConfig cfg;
  TreecodeIntegrator integ(s, cfg);
  integ.step();
  integ.step();
  EXPECT_EQ(integ.total_steps(), 2ull * 128ull);
  EXPECT_NEAR(integ.time(), 2.0 * cfg.dt, 1e-15);
  EXPECT_GT(integ.interactions(), 0ull);
  EXPECT_GT(integ.wall_seconds(), 0.0);
  EXPECT_GT(integ.steps_per_second(), 0.0);
}

TEST(Treecode, MomentumConserved) {
  // Leapfrog + consistent forces keep total momentum near zero.
  Rng rng(3);
  const ParticleSet s = make_plummer(256, rng);
  TreecodeConfig cfg;
  cfg.theta = 0.4;
  TreecodeIntegrator integ(s, cfg);
  integ.evolve(0.25);
  Vec3 p;
  for (const auto& b : integ.state().bodies()) p += b.mass * b.vel;
  // Tree forces are not exactly antisymmetric; drift stays small.
  EXPECT_LT(norm(p), 1e-3);
}

TEST(GadgetScalingModel, SaturatesBeyond16Hosts) {
  const double single = 1.0e3;
  const double s16 = gadget_scaling_steps_per_second(single, 16);
  const double s64 = gadget_scaling_steps_per_second(single, 64);
  EXPECT_GT(s16, gadget_scaling_steps_per_second(single, 4));
  // No meaningful scaling past 16 nodes (Sec 5's Gadget/T3E observation).
  EXPECT_LT(s64, 1.5 * s16);
  EXPECT_DOUBLE_EQ(gadget_scaling_steps_per_second(single, 1),
                   single / (1.0 + 0.06 / 16.0));
}

}  // namespace
}  // namespace g6
