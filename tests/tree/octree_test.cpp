#include "tree/octree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hermite/direct_engine.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

Force direct_force(std::span<const Body> bodies, const Vec3& pos, double eps2,
                   std::size_t skip) {
  Force f;
  for (std::size_t j = 0; j < bodies.size(); ++j) {
    if (j == skip) continue;
    accumulate_pairwise(pos, {}, bodies[j].pos, {}, bodies[j].mass, eps2, f);
  }
  f.jerk = {};
  return f;
}

TEST(Octree, RootMomentsMatchSystem) {
  Rng rng(1);
  const ParticleSet s = make_plummer(512, rng);
  Octree tree;
  tree.build(s.bodies());
  EXPECT_NEAR(tree.root_mass(), 1.0, 1e-12);
  EXPECT_NEAR(norm(tree.root_com() - s.center_of_mass()), 0.0, 1e-12);
}

TEST(Octree, SmallThetaReproducesDirectSum) {
  Rng rng(2);
  const ParticleSet s = make_plummer(256, rng);
  Octree tree;
  tree.build(s.bodies());
  const double eps2 = 1e-4;
  for (std::size_t i = 0; i < 20; ++i) {
    const Force ft = tree.force_at(s[i].pos, 1e-6, eps2, i);
    const Force fd = direct_force(s.bodies(), s[i].pos, eps2, i);
    EXPECT_NEAR(norm(ft.acc - fd.acc), 0.0, 1e-10 * std::max(1.0, norm(fd.acc)));
    EXPECT_NEAR(ft.pot, fd.pot, 1e-10 * std::fabs(fd.pot));
  }
}

TEST(Octree, AccuracyImprovesWithSmallerTheta) {
  Rng rng(3);
  const ParticleSet s = make_plummer(1024, rng);
  Octree tree;
  tree.build(s.bodies());
  const double eps2 = 1e-4;

  double err_large = 0.0, err_small = 0.0;
  for (std::size_t i = 0; i < 32; ++i) {
    const Force fd = direct_force(s.bodies(), s[i].pos, eps2, i);
    const double scale = norm(fd.acc);
    err_large += norm(tree.force_at(s[i].pos, 1.0, eps2, i).acc - fd.acc) / scale;
    err_small += norm(tree.force_at(s[i].pos, 0.3, eps2, i).acc - fd.acc) / scale;
  }
  EXPECT_LT(err_small, err_large);
  EXPECT_LT(err_small / 32.0, 1e-3);  // theta=0.3 with quadrupole
}

TEST(Octree, QuadrupoleBeatsMonopole) {
  Rng rng(4);
  const ParticleSet s = make_plummer(1024, rng);
  Octree::Params mono;
  mono.quadrupole = false;
  Octree tq, tm(mono);
  tq.build(s.bodies());
  tm.build(s.bodies());
  const double eps2 = 1e-4;

  double err_q = 0.0, err_m = 0.0;
  for (std::size_t i = 0; i < 32; ++i) {
    const Force fd = direct_force(s.bodies(), s[i].pos, eps2, i);
    const double scale = norm(fd.acc);
    err_q += norm(tq.force_at(s[i].pos, 0.7, eps2, i).acc - fd.acc) / scale;
    err_m += norm(tm.force_at(s[i].pos, 0.7, eps2, i).acc - fd.acc) / scale;
  }
  EXPECT_LT(err_q, 0.5 * err_m);
}

TEST(Octree, InteractionCountBelowDirectSum) {
  Rng rng(5);
  const ParticleSet s = make_plummer(2048, rng);
  Octree tree;
  tree.build(s.bodies());
  for (std::size_t i = 0; i < 100; ++i) {
    (void)tree.force_at(s[i].pos, 0.6, 1e-4, i);
  }
  // O(log N) per particle: far fewer than 100 * 2047 direct interactions.
  EXPECT_LT(tree.interactions(), 100ull * 2047ull / 2ull);
  EXPECT_GT(tree.interactions(), 0ull);
}

TEST(Octree, HandlesCoincidentParticles) {
  // Degenerate positions must not recurse forever (depth cap).
  ParticleSet s;
  for (int i = 0; i < 20; ++i) s.add({0.05, {1.0, 1.0, 1.0}, {}});
  s.add({0.05, {-1.0, 0.0, 0.0}, {}});
  Octree tree;
  tree.build(s.bodies());
  const Force f = tree.force_at({-1.0, 0.0, 0.0}, 0.5, 1e-2, 20);
  EXPECT_GT(norm(f.acc), 0.0);
}

TEST(Octree, SingleBodySystem) {
  ParticleSet s;
  s.add({1.0, {0.0, 0.0, 0.0}, {}});
  Octree tree;
  tree.build(s.bodies());
  const Force f = tree.force_at({1.0, 0.0, 0.0}, 0.5, 0.0);
  EXPECT_NEAR(f.acc.x, -1.0, 1e-12);
}

}  // namespace
}  // namespace g6
