// Link-level fault injection: message drops and latency spikes perturb
// the *time* model only — the data that arrives is always eventually
// correct (the transport retries), so dynamics stay bit-identical while
// virtual network time grows.

#include <gtest/gtest.h>

#include <memory>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "net/collectives.hpp"
#include "net/nic.hpp"
#include "parallel/virtual_cluster.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

/// Deterministic fake: drop the first `drops` sends, spike every latency.
class FakeLink final : public LinkPerturbation {
 public:
  FakeLink(int drops, double factor, double timeout_s)
      : drops_(drops), factor_(factor), timeout_s_(timeout_s) {}
  bool drop_message() override { return drops_-- > 0; }
  double latency_factor() override { return factor_; }
  double retransmit_timeout_s() const override { return timeout_s_; }

 private:
  int drops_;
  double factor_;
  double timeout_s_;
};

TEST(LinkFaults, NullPerturbationIsIdentity) {
  EXPECT_DOUBLE_EQ(perturbed_hop_time(1e-4, nullptr), 1e-4);
}

TEST(LinkFaults, DropsChargeTimeoutPlusRetransmission) {
  // 2 drops: nominal*f + 2*(timeout + nominal*f).
  FakeLink link(2, 3.0, 1e-3);
  const double t = perturbed_hop_time(1e-4, &link);
  EXPECT_DOUBLE_EQ(t, 3e-4 + 2.0 * (1e-3 + 3e-4));
}

TEST(LinkFaults, SpikeOnlyMultipliesLatency) {
  FakeLink link(0, 10.0, 1e-3);
  EXPECT_DOUBLE_EQ(perturbed_hop_time(5e-5, &link), 5e-4);
}

TEST(LinkFaults, CollectivesSlowDownUnderPerturbation) {
  const NicModel nic = nics::ns83820();
  FakeLink spiky(0, 4.0, 1e-3);
  EXPECT_DOUBLE_EQ(butterfly_barrier_time(8, nic, &spiky),
                   4.0 * butterfly_barrier_time(8, nic));
  FakeLink spiky2(0, 4.0, 1e-3);
  EXPECT_GT(butterfly_allgather_time(8, 4096, nic, &spiky2),
            butterfly_allgather_time(8, 4096, nic));
}

TEST(LinkFaults, InjectorCertainSpikeAppliesTheFactor) {
  fault::FaultPlan plan;
  plan.link_spike_rate = 1.0;
  plan.link_spike_factor = 7.0;
  fault::FaultInjector inj(plan);
  EXPECT_DOUBLE_EQ(inj.perturb_link_time(1e-4), 7e-4);
  EXPECT_EQ(inj.counts().link_spikes, 1u);
}

TEST(LinkFaults, InjectorDropsAreCountedAndCharged) {
  fault::FaultPlan plan;
  plan.link_drop_rate = 0.5;
  plan.retransmit_timeout_s = 1e-3;
  plan.seed = 12;
  fault::FaultInjector inj(plan);
  double total = 0.0;
  for (int i = 0; i < 200; ++i) total += inj.perturb_link_time(1e-5);
  EXPECT_GT(inj.counts().link_drops, 0u);
  // Every drop charged at least the retransmit timeout on top of the
  // nominal transfer times.
  EXPECT_GE(total, 200 * 1e-5 +
                       static_cast<double>(inj.counts().link_drops) * 1e-3);
}

TEST(LinkFaults, ClusterDynamicsUnchangedButSlower) {
  // A flaky network makes the emulated cluster *slower*, never *wrong*.
  Rng rng(6);
  const ParticleSet s = make_plummer(32, rng);

  VirtualClusterConfig cfg;
  cfg.system = SystemConfig::cluster(2);
  cfg.system.machine.boards_per_host = 1;
  cfg.eps = 1.0 / 64.0;

  VirtualClusterConfig flaky = cfg;
  fault::FaultPlan plan;
  plan.link_drop_rate = 0.2;
  plan.link_spike_rate = 0.2;
  plan.link_spike_factor = 10.0;
  flaky.injector = std::make_shared<fault::FaultInjector>(plan);

  VirtualCluster clean(s, cfg);
  VirtualCluster faulty(s, flaky);
  clean.evolve(0.0625);
  faulty.evolve(0.0625);

  EXPECT_EQ(clean.total_steps(), faulty.total_steps());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(clean.particle(i).pos, faulty.particle(i).pos) << i;
    EXPECT_EQ(clean.particle(i).vel, faulty.particle(i).vel) << i;
  }
  EXPECT_GT(faulty.virtual_seconds(), clean.virtual_seconds());
}

}  // namespace
}  // namespace g6
