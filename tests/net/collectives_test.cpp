#include "net/collectives.hpp"

#include <gtest/gtest.h>

#include "net/clock.hpp"
#include "net/nic.hpp"

namespace g6 {
namespace {

TEST(Nic, MessageTimeDecomposition) {
  const NicModel nic{"test", 100e-6, 50e6};
  EXPECT_DOUBLE_EQ(nic.one_way_latency(), 50e-6);
  EXPECT_DOUBLE_EQ(nic.message_time(0), 50e-6);
  EXPECT_DOUBLE_EQ(nic.message_time(50'000'000), 50e-6 + 1.0);
}

TEST(Nic, PaperProfiles) {
  // The constants measured in Sec 4.4.
  EXPECT_DOUBLE_EQ(nics::ns83820().round_trip_latency_s, 200e-6);
  EXPECT_DOUBLE_EQ(nics::ns83820().bandwidth_Bps, 60e6);
  EXPECT_DOUBLE_EQ(nics::intel82540().round_trip_latency_s, 67e-6);
  EXPECT_DOUBLE_EQ(nics::intel82540().bandwidth_Bps, 105e6);
  // Myrinet what-if: 5-10x lower latency.
  EXPECT_LT(nics::myrinet().round_trip_latency_s,
            nics::ns83820().round_trip_latency_s / 5.0);
}

TEST(Butterfly, StageCount) {
  EXPECT_EQ(butterfly_stages(1), 0u);
  EXPECT_EQ(butterfly_stages(2), 1u);
  EXPECT_EQ(butterfly_stages(4), 2u);
  EXPECT_EQ(butterfly_stages(5), 3u);
  EXPECT_EQ(butterfly_stages(16), 4u);
}

TEST(Butterfly, BarrierScalesLogarithmically) {
  const NicModel nic = nics::ns83820();
  const double t2 = butterfly_barrier_time(2, nic);
  const double t16 = butterfly_barrier_time(16, nic);
  EXPECT_DOUBLE_EQ(t16, 4.0 * t2);
  EXPECT_DOUBLE_EQ(butterfly_barrier_time(1, nic), 0.0);
}

TEST(Butterfly, MpichBarrierIsTwiceButterfly) {
  // Sec 4.4: the hand-rolled butterfly is "about two times faster than
  // MPI_barrier provided by MPICH/p4".
  const NicModel nic = nics::ns83820();
  EXPECT_DOUBLE_EQ(mpich_barrier_time(8, nic),
                   2.0 * butterfly_barrier_time(8, nic));
}

TEST(Butterfly, AllgatherVolumeDoubling) {
  const NicModel nic{"flat", 0.0, 1e6};  // pure bandwidth
  // 4 hosts: stages carry b, 2b -> total 3b bytes.
  const double t = butterfly_allgather_time(4, 1000, nic);
  EXPECT_DOUBLE_EQ(t, 3000.0 / 1e6);
}

TEST(Fanout, SerializesOnSenderNic) {
  const NicModel nic{"test", 100e-6, 1e9};
  EXPECT_NEAR(fanout_time(3, 1000, nic), 3.0 * nic.message_time(1000), 1e-15);
}

TEST(VirtualClock, AdvanceAndSync) {
  VirtualClock clocks[3];
  clocks[0].advance(1.0);
  clocks[1].advance(5.0);
  clocks[2].advance(2.0);
  synchronize_clocks(clocks, 0.5);
  for (const auto& c : clocks) EXPECT_DOUBLE_EQ(c.now(), 5.5);
}

TEST(VirtualClock, AdvanceToNeverGoesBack) {
  VirtualClock c;
  c.advance(10.0);
  c.advance_to(5.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
  c.advance_to(12.0);
  EXPECT_DOUBLE_EQ(c.now(), 12.0);
}

}  // namespace
}  // namespace g6
