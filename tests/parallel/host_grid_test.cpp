#include "parallel/host_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nbody/diagnostics.hpp"
#include "nbody/models.hpp"
#include "parallel/virtual_cluster.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

HostGridConfig grid_config(std::size_t r) {
  HostGridConfig cfg;
  cfg.grid_side = r;
  cfg.machine.boards_per_host = 1;
  return cfg;
}

TEST(HostGrid, DynamicsBitIdenticalToGrapeNetworkMachine) {
  // Same workload on the r x r host grid and on the GRAPE-network
  // machine: the BFP reduction makes the physics identical bit for bit
  // even though the j-particles live on entirely different hardware.
  Rng rng(41);
  const ParticleSet s = make_plummer(48, rng);

  VirtualClusterConfig vc;
  vc.system = SystemConfig::cluster(1);
  vc.system.machine.boards_per_host = 1;
  VirtualCluster machine(s, vc);

  HostGridCluster grid(s, grid_config(2));
  machine.evolve(0.0625);
  grid.evolve(0.0625);

  EXPECT_EQ(machine.total_steps(), grid.total_steps());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(machine.particle(i).pos, grid.particle(i).pos) << i;
    EXPECT_EQ(machine.particle(i).vel, grid.particle(i).vel) << i;
  }
}

TEST(HostGrid, GridSideInvariance) {
  Rng rng(42);
  const ParticleSet s = make_plummer(36, rng);
  HostGridCluster g1(s, grid_config(1));
  HostGridCluster g3(s, grid_config(3));
  g1.evolve(0.0625);
  g3.evolve(0.0625);
  EXPECT_EQ(g1.total_steps(), g3.total_steps());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(g1.particle(i).pos, g3.particle(i).pos) << i;
  }
}

TEST(HostGrid, EnergyConserved) {
  Rng rng(43);
  const double eps = 1.0 / 64.0;
  const ParticleSet s = make_plummer(64, rng);
  HostGridConfig cfg = grid_config(2);
  cfg.eps = eps;
  HostGridCluster grid(s, cfg);
  const double e0 = compute_energy(s.bodies(), eps).total();
  grid.evolve(0.25);
  const double e1 =
      compute_energy(grid.state_at_current_time().bodies(), eps).total();
  EXPECT_LT(std::fabs((e1 - e0) / e0), 1e-4);
}

TEST(HostGrid, NetworkTimeGrowsLogNotLinearInHosts) {
  // [9]'s payoff at system level: going from 4 to 16 hosts (r=2 -> r=4)
  // quadruples the compute capacity while the per-blockstep network time
  // only grows with the tree depth (the data volume per host halves).
  // At these tiny blocks latency dominates, so net time grows — but by
  // ~2x (stage count), nowhere near the 4x host count.
  Rng rng(44);
  const ParticleSet s = make_plummer(96, rng);
  HostGridCluster g2(s, grid_config(2));
  HostGridCluster g4(s, grid_config(4));
  g2.evolve(0.0625);
  g4.evolve(0.0625);
  ASSERT_EQ(g2.total_blocksteps(), g4.total_blocksteps());
  const double net2 = g2.accumulated_cost().net_s;
  const double net4 = g4.accumulated_cost().net_s;
  EXPECT_GT(net4, net2);
  EXPECT_LT(net4, 3.0 * net2);
}

TEST(HostGrid, SubsetMapping) {
  Rng rng(45);
  const ParticleSet s = make_plummer(16, rng);
  HostGridCluster grid(s, grid_config(3));
  EXPECT_EQ(grid.total_hosts(), 9u);
  EXPECT_EQ(grid.subset_of(0), 0u);
  EXPECT_EQ(grid.subset_of(4), 1u);
  EXPECT_EQ(grid.subset_of(8), 2u);
}

TEST(HostGrid, VirtualTimeAdvances) {
  Rng rng(46);
  const ParticleSet s = make_plummer(32, rng);
  HostGridCluster grid(s, grid_config(2));
  grid.evolve(0.03125);
  EXPECT_GT(grid.virtual_seconds(), 0.0);
  EXPECT_GT(grid.accumulated_cost().grape_s, 0.0);
  EXPECT_GT(grid.accumulated_cost().net_s, 0.0);
}

}  // namespace
}  // namespace g6
