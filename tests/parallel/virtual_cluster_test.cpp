#include "parallel/virtual_cluster.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nbody/diagnostics.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

VirtualClusterConfig small_config(std::size_t hosts, std::size_t clusters = 1) {
  VirtualClusterConfig cfg;
  cfg.system = clusters > 1 ? SystemConfig::multi_cluster(clusters)
                            : SystemConfig::cluster(hosts);
  if (clusters > 1) cfg.system.machine.hosts_per_cluster = hosts;
  // Keep the emulation cheap: one board per host.
  cfg.system.machine.boards_per_host = 1;
  cfg.eps = 1.0 / 64.0;
  cfg.hermite.record_trace = true;
  return cfg;
}

ParticleSet test_system(std::size_t n, unsigned seed) {
  Rng rng(seed);
  return make_plummer(n, rng);
}

TEST(VirtualCluster, DynamicsBitIdenticalAcrossHostCounts) {
  // The paper's headline reproducibility property at system level: block
  // floating point makes the result independent of the machine size.
  const ParticleSet s = test_system(64, 1);
  VirtualCluster c1(s, small_config(1));
  VirtualCluster c2(s, small_config(2));
  VirtualCluster c4(s, small_config(4));
  c1.evolve(0.125);
  c2.evolve(0.125);
  c4.evolve(0.125);

  EXPECT_EQ(c1.total_steps(), c2.total_steps());
  EXPECT_EQ(c1.total_steps(), c4.total_steps());
  EXPECT_EQ(c1.total_blocksteps(), c4.total_blocksteps());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(c1.particle(i).pos, c2.particle(i).pos) << i;
    EXPECT_EQ(c1.particle(i).pos, c4.particle(i).pos) << i;
    EXPECT_EQ(c1.particle(i).vel, c4.particle(i).vel) << i;
  }
}

TEST(VirtualCluster, EnergyConservedOnEmulatedCluster) {
  const double eps = 1.0 / 64.0;
  const ParticleSet s = test_system(64, 2);
  VirtualCluster cluster(s, small_config(4));
  const double e0 = compute_energy(s.bodies(), eps).total();
  cluster.evolve(0.25);
  const double e1 =
      compute_energy(cluster.state_at_current_time().bodies(), eps).total();
  EXPECT_LT(std::fabs((e1 - e0) / e0), 1e-4);
}

TEST(VirtualCluster, VirtualTimeIncludesSynchronization) {
  const ParticleSet s = test_system(48, 3);
  VirtualCluster c1(s, small_config(1));
  VirtualCluster c4(s, small_config(4));
  c1.evolve(0.0625);
  c4.evolve(0.0625);

  EXPECT_GT(c1.virtual_seconds(), 0.0);
  EXPECT_EQ(c1.accumulated_cost().net_s, 0.0);
  EXPECT_GT(c4.accumulated_cost().net_s, 0.0);
  // At this tiny N the 4-host system is slower in wall time — the
  // crossover behaviour of Fig 15.
  EXPECT_GT(c4.virtual_seconds(), c1.virtual_seconds());
}

TEST(VirtualCluster, MultiClusterPaysMoreNetworkTime) {
  const ParticleSet s = test_system(64, 4);
  VirtualCluster one(s, small_config(4, 1));
  VirtualCluster four(s, small_config(4, 4));  // 16 hosts
  one.evolve(0.0625);
  four.evolve(0.0625);
  EXPECT_GT(four.accumulated_cost().net_s, 2.0 * one.accumulated_cost().net_s);
}

TEST(VirtualCluster, AgreesWithAnalyticModelOnGrapeTime) {
  // The emulated pipeline time must match the closed-form model used for
  // large N (same formulas, measured vs predicted).
  const ParticleSet s = test_system(128, 5);
  VirtualClusterConfig cfg = small_config(2);
  VirtualCluster cluster(s, cfg);
  cluster.evolve(0.0625);

  const MachineModel model(cfg.system);
  MachineModel::TraceResult predicted = model.run_trace(cluster.trace());
  const BlockstepCost& measured = cluster.accumulated_cost();

  EXPECT_NEAR(measured.grape_s / predicted.breakdown.grape_s, 1.0, 0.25);
  EXPECT_NEAR(measured.host_s / predicted.breakdown.host_s, 1.0, 1e-9);
  EXPECT_NEAR(measured.net_s / predicted.breakdown.net_s, 1.0, 1e-9);
}

TEST(VirtualCluster, OwnershipRoundRobin) {
  const ParticleSet s = test_system(16, 6);
  VirtualCluster c(s, small_config(4));
  EXPECT_EQ(c.total_hosts(), 4u);
  EXPECT_EQ(c.owner(0), 0u);
  EXPECT_EQ(c.owner(5), 1u);
  EXPECT_EQ(c.owner(15), 3u);
}

TEST(VirtualCluster, TraceRecordsBlocks) {
  const ParticleSet s = test_system(32, 7);
  VirtualCluster c(s, small_config(2));
  c.evolve(0.0625);
  EXPECT_EQ(c.trace().total_steps(), c.total_steps());
  EXPECT_EQ(c.trace().records.size(), c.total_blocksteps());
}

}  // namespace
}  // namespace g6
