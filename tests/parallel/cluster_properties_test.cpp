// Further VirtualCluster properties: multi-cluster reproducibility,
// cost monotonicities, NIC sensitivity.

#include <gtest/gtest.h>

#include "nbody/models.hpp"
#include "parallel/virtual_cluster.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

VirtualClusterConfig config_for(std::size_t hosts, std::size_t clusters) {
  VirtualClusterConfig cfg;
  if (clusters > 1) {
    cfg.system = SystemConfig::multi_cluster(clusters);
    cfg.system.machine.hosts_per_cluster = hosts;
  } else {
    cfg.system = SystemConfig::cluster(hosts);
  }
  cfg.system.machine.boards_per_host = 1;
  return cfg;
}

TEST(ClusterProps, MultiClusterBitwiseIdenticalToSingleHost) {
  // The copy algorithm across clusters must not change the physics either
  // (same BFP property, one level up).
  Rng rng(21);
  const ParticleSet s = make_plummer(48, rng);
  VirtualCluster single(s, config_for(1, 1));
  VirtualCluster wide(s, config_for(2, 4));  // 8 hosts over 4 clusters
  single.evolve(0.0625);
  wide.evolve(0.0625);
  EXPECT_EQ(single.total_steps(), wide.total_steps());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(single.particle(i).pos, wide.particle(i).pos) << i;
    EXPECT_EQ(single.particle(i).vel, wide.particle(i).vel) << i;
  }
}

TEST(ClusterProps, FasterNicReducesVirtualTimeOnly) {
  Rng rng(22);
  const ParticleSet s = make_plummer(48, rng);
  VirtualClusterConfig slow = config_for(4, 1);
  VirtualClusterConfig fast = config_for(4, 1);
  fast.system.nic = nics::intel82540();

  VirtualCluster a(s, slow), b(s, fast);
  a.evolve(0.0625);
  b.evolve(0.0625);
  EXPECT_LT(b.accumulated_cost().net_s, a.accumulated_cost().net_s);
  // Identical dynamics regardless of the network.
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(a.particle(i).pos, b.particle(i).pos);
  }
}

TEST(ClusterProps, GrapeTimeDropsWithMoreBoards) {
  // Needs enough j per chip that the pass time is not all pipeline-fill
  // latency: at N=1024 one board holds 32 j/chip (364 cycles/pass) vs 8
  // (172 cycles) on four boards.
  Rng rng(23);
  const ParticleSet s = make_plummer(1024, rng);
  VirtualClusterConfig one = config_for(1, 1);
  VirtualClusterConfig four = config_for(1, 1);
  four.system.machine.boards_per_host = 4;
  VirtualCluster a(s, one), b(s, four);
  a.evolve(0.015625);
  b.evolve(0.015625);
  EXPECT_LT(b.accumulated_cost().grape_s, 0.6 * a.accumulated_cost().grape_s);
}

TEST(ClusterProps, NarrowFormatsStillReproducible) {
  // The reproducibility property holds with the real hardware word sizes,
  // not just exact arithmetic.
  Rng rng(24);
  const ParticleSet s = make_plummer(32, rng);
  VirtualClusterConfig c1 = config_for(1, 1);
  VirtualClusterConfig c4 = config_for(4, 1);
  c1.formats = NumberFormats{};
  c4.formats = NumberFormats{};
  VirtualCluster a(s, c1), b(s, c4);
  a.evolve(0.03125);
  b.evolve(0.03125);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(a.particle(i).pos, b.particle(i).pos) << i;
  }
}

TEST(ClusterProps, EmptyHostSharesAreHandled) {
  // More hosts than typical block sizes: some hosts idle in most
  // blocksteps; the loop must tolerate empty shares.
  Rng rng(25);
  const ParticleSet s = make_plummer(16, rng);
  VirtualCluster c(s, config_for(4, 4));  // 16 hosts, 16 particles
  EXPECT_NO_THROW(c.evolve(0.0625));
  EXPECT_GT(c.total_steps(), 0ull);
}

}  // namespace
}  // namespace g6
