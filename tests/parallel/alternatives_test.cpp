#include "parallel/alternatives.hpp"

#include <gtest/gtest.h>

#include "net/nic.hpp"

namespace g6 {
namespace {

const NicModel kNic = nics::ns83820();
constexpr std::size_t kRecord = 104;

TEST(Alternatives, SingleHostIsFree) {
  EXPECT_EQ(copy_algorithm_comm_time(1, 1000, kRecord, kNic), 0.0);
  EXPECT_EQ(ring_algorithm_comm_time(1, 1000, kRecord, kNic), 0.0);
  EXPECT_EQ(grid_algorithm_comm_time(1, 1000, kRecord, kNic), 0.0);
}

TEST(Alternatives, CopyAndRingDoNotScale) {
  // Sec 3.2: for copy/ring "the amount of communication is independent of
  // the number of processors" — time per host does not shrink with p.
  const std::size_t block = 4096;
  const double copy4 = copy_algorithm_comm_time(4, block, kRecord, kNic);
  const double copy16 = copy_algorithm_comm_time(16, block, kRecord, kNic);
  EXPECT_GT(copy16, 0.8 * copy4);

  const double ring4 = ring_algorithm_comm_time(4, block, kRecord, kNic);
  const double ring16 = ring_algorithm_comm_time(16, block, kRecord, kNic);
  EXPECT_GT(ring16, 0.8 * ring4);
}

TEST(Alternatives, GridCommunicationShrinksWithR) {
  // Sec 3.2: the 2D grid improves effective bandwidth by a factor r.
  const std::size_t block = 1 << 16;  // bandwidth-dominated regime
  const double g2 = grid_algorithm_comm_time(2, block, kRecord, kNic);
  const double g8 = grid_algorithm_comm_time(8, block, kRecord, kNic);
  EXPECT_LT(g8, g2);
}

TEST(Alternatives, GridBeatsCopyForLargeMachines) {
  // The design rationale: at r^2 = 16 hosts and a realistic block, the 2D
  // grid moves less data per host than the copy algorithm.
  const std::size_t block = 1 << 15;
  const double copy = copy_algorithm_comm_time(16, block, kRecord, kNic);
  const double grid = grid_algorithm_comm_time(4, block, kRecord, kNic);
  EXPECT_LT(grid, copy);
}

TEST(Alternatives, LatencyFloorForTinyBlocks) {
  // With a 1-particle block everything is latency; copy's butterfly has
  // ceil(log2 p) stages.
  const double t = copy_algorithm_comm_time(8, 1, kRecord, kNic);
  EXPECT_GE(t, 3.0 * kNic.one_way_latency());
}

}  // namespace
}  // namespace g6
