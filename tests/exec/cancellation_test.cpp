// Cancellation and error paths of the async runtime primitives — the
// situations the serving layer creates when it preempts a job or
// revokes a lease while force work is in flight: tickets abandoned
// between wait_chunk and wait, groups torn down with failed tasks, and
// the exactly-once epilogue that releases the engine either way.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.hpp"
#include "hermite/force_ticket.hpp"

namespace g6 {
namespace {

using Range = std::pair<std::size_t, std::size_t>;

TEST(ExecCancellation, AbandonedTicketRunsEpilogueNotOk) {
  exec::ThreadPool pool(4);
  std::atomic<int> epilogue_calls{0};
  std::atomic<bool> epilogue_ok{true};
  {
    ForceTicket t = ForceTicket::make(
        {Range{0, 8}, Range{8, 16}},
        [&](bool ok) {
          epilogue_calls.fetch_add(1);
          epilogue_ok.store(ok);
        },
        pool);
    t.dispatch(0, [] {}, true);
    t.dispatch(1, [] { throw std::runtime_error("pipeline torn down"); },
               true);
    // Destroyed without wait(): the owner lost interest mid-flight (the
    // scheduler dropping a revoked job's runtime). The destructor must
    // still join and release the engine, with ok=false semantics.
  }
  EXPECT_EQ(epilogue_calls.load(), 1);
  EXPECT_FALSE(epilogue_ok.load());
}

TEST(ExecCancellation, CleanAbandonmentStillSignalsOk) {
  exec::ThreadPool pool(2);
  std::atomic<int> epilogue_calls{0};
  std::atomic<bool> epilogue_ok{false};
  {
    ForceTicket t = ForceTicket::make(
        {Range{0, 4}},
        [&](bool ok) {
          epilogue_calls.fetch_add(1);
          epilogue_ok.store(ok);
        },
        pool);
    t.dispatch(0, [] {}, true);
  }
  EXPECT_EQ(epilogue_calls.load(), 1);
  EXPECT_TRUE(epilogue_ok.load());
}

TEST(ExecCancellation, PartialConsumptionThenAbandonment) {
  // The preemption shape: the caller consumed early chunks (wait_chunk),
  // then dropped the ticket before wait(). Consumed chunks stay valid,
  // the epilogue still runs exactly once.
  exec::ThreadPool pool(4);
  std::atomic<int> epilogue_calls{0};
  std::vector<int> out(3, 0);
  {
    ForceTicket t = ForceTicket::make(
        {Range{0, 1}, Range{1, 2}, Range{2, 3}},
        [&](bool) { epilogue_calls.fetch_add(1); }, pool);
    for (std::size_t c = 0; c < 3; ++c) {
      t.dispatch(c, [&out, c] { out[c] = static_cast<int>(c) + 1; }, true);
    }
    t.wait_chunk(0);
    EXPECT_EQ(out[0], 1);
  }
  EXPECT_EQ(epilogue_calls.load(), 1);
  EXPECT_EQ(out[1], 2);  // abandonment joined the remaining chunks
  EXPECT_EQ(out[2], 3);
}

TEST(ExecCancellation, WaitChunkIsolatesFailures) {
  exec::ThreadPool pool(4);
  ForceTicket t = ForceTicket::make(
      {Range{0, 1}, Range{1, 2}}, [](bool) {}, pool);
  t.dispatch(0, [] {}, true);
  t.dispatch(1, [] { throw std::runtime_error("chunk 1 died"); }, true);
  EXPECT_NO_THROW(t.wait_chunk(0));  // healthy chunk unaffected
  EXPECT_THROW(t.wait_chunk(1), std::runtime_error);
  EXPECT_THROW(t.wait(), std::runtime_error);
}

TEST(ExecCancellation, WaitSurfacesSmallestIndexError) {
  // Deterministic error identity no matter which chunk failed first on
  // the wall clock — the property the integrator's retry logic needs.
  for (int round = 0; round < 8; ++round) {
    exec::ThreadPool pool(4);
    ForceTicket t = ForceTicket::make(
        {Range{0, 1}, Range{1, 2}, Range{2, 3}}, [](bool) {}, pool);
    t.dispatch(0, [] { throw std::runtime_error("first"); }, true);
    t.dispatch(1, [] {}, true);
    t.dispatch(2, [] { throw std::runtime_error("third"); }, true);
    try {
      t.wait();
      FAIL() << "wait() must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first");
    }
  }
}

TEST(ExecCancellation, MovedFromTicketIsInert) {
  exec::ThreadPool pool(2);
  std::atomic<int> epilogue_calls{0};
  ForceTicket a = ForceTicket::make(
      {Range{0, 1}}, [&](bool) { epilogue_calls.fetch_add(1); }, pool);
  a.dispatch(0, [] {}, true);
  ForceTicket b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserted inert
  EXPECT_NO_THROW(a.wait());
  b.wait();
  EXPECT_EQ(epilogue_calls.load(), 1);
}

TEST(ExecCancellation, GroupCollectsEveryError) {
  // A serving round folds one quantum per job; a neighbor's failure must
  // not cancel the others' tasks. TaskGroup runs everything and reports
  // the earliest-submitted error.
  exec::ThreadPool pool(4);
  std::atomic<int> completed{0};
  exec::TaskGroup g(pool);
  g.run([&] { completed.fetch_add(1); });
  g.run([] { throw std::runtime_error("job 2 diverged"); });
  g.run([&] { completed.fetch_add(1); });
  g.run([] { throw std::runtime_error("job 4 diverged"); });
  try {
    g.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 2 diverged");
  }
  EXPECT_EQ(completed.load(), 2);  // healthy neighbors ran to completion
}

TEST(ExecCancellation, PerTaskCaptureKeepsTheGroupThrowFree) {
  // The scheduler's own pattern: capture each job's exception inside its
  // task so wait() never throws and every job's outcome is observable.
  exec::ThreadPool pool(4);
  std::vector<std::exception_ptr> errors(3);
  exec::TaskGroup g(pool);
  for (std::size_t i = 0; i < 3; ++i) {
    g.run([&errors, i] {
      try {
        if (i == 1) throw std::runtime_error("quantum failed");
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  EXPECT_NO_THROW(g.wait());
  EXPECT_EQ(errors[0], nullptr);
  ASSERT_NE(errors[1], nullptr);
  EXPECT_EQ(errors[2], nullptr);
  EXPECT_THROW(std::rethrow_exception(errors[1]), std::runtime_error);
}

}  // namespace
}  // namespace g6
