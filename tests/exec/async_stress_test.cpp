// Stress the submit/wait runtime: repeated async submissions, overlapped
// per-chunk consumption, out-of-order chunk waits, and ticket error
// surfacing — always compared against a serial reference evaluation.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/thread_pool.hpp"
#include "grape/engine.hpp"
#include "hermite/direct_engine.hpp"
#include "hermite/force_ticket.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

std::vector<JParticle> plummer_j(std::size_t n, unsigned seed) {
  Rng rng(seed);
  const ParticleSet s = make_plummer(n, rng);
  std::vector<JParticle> js(n);
  for (std::size_t i = 0; i < n; ++i) {
    js[i].mass = s[i].mass;
    js[i].pos = s[i].pos;
    js[i].vel = s[i].vel;
  }
  return js;
}

std::vector<PredictedState> as_block(std::span<const JParticle> js) {
  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i] = {js[i].pos, js[i].vel, js[i].mass, static_cast<std::uint32_t>(i)};
  }
  return block;
}

bool same_force(const Force& a, const Force& b) {
  return a.acc.x == b.acc.x && a.acc.y == b.acc.y && a.acc.z == b.acc.z &&
         a.jerk.x == b.jerk.x && a.jerk.y == b.jerk.y && a.jerk.z == b.jerk.z &&
         a.pot == b.pot;
}

struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { exec::ThreadPool::set_global_threads(0); }
};

TEST(AsyncEngineStress, RepeatedSubmitMatchesSerialReference) {
  GlobalThreadsGuard guard;
  const auto js = plummer_j(256, 3);
  const auto block = as_block(js);
  constexpr int kRounds = 25;

  // Serial reference, round by round: the engine refines its block
  // exponent cache between calls, so call r is only comparable to call r
  // of an engine with the identical call history.
  exec::ThreadPool::set_global_threads(1);
  std::vector<std::vector<Force>> want(kRounds,
                                       std::vector<Force>(js.size()));
  {
    GrapeForceEngine ref(MachineConfig::single_host(), NumberFormats{},
                         1.0 / 64.0);
    ref.load_particles(js);
    for (int round = 0; round < kRounds; ++round) {
      ref.compute_forces(0.0, block, want[round]);
    }
  }

  exec::ThreadPool::set_global_threads(8);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{},
                      1.0 / 64.0);
  hw.load_particles(js);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Force> got(js.size());
    ForceTicket tk = hw.submit_forces(0.0, block, got);
    ASSERT_TRUE(tk.valid());
    // Consume chunks as they land, like the overlapped corrector does.
    for (std::size_t c = 0; c < tk.chunk_count(); ++c) {
      tk.wait_chunk(c);
      const auto [lo, hi] = tk.chunk_range(c);
      for (std::size_t k = lo; k < hi; ++k) {
        ASSERT_TRUE(same_force(got[k], want[round][k]))
            << "round " << round << " index " << k;
      }
    }
    tk.wait();
  }
}

TEST(AsyncEngineStress, OutOfOrderChunkWaitsAreSafe) {
  GlobalThreadsGuard guard;
  exec::ThreadPool::set_global_threads(4);
  const auto js = plummer_j(200, 7);
  const auto block = as_block(js);
  // Two fresh engines (same exponent-cache history) — the blocking call on
  // one is the reference for the async submission on the other.
  GrapeForceEngine ref(MachineConfig::single_host(), NumberFormats{},
                       1.0 / 64.0);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{},
                      1.0 / 64.0);
  ref.load_particles(js);
  hw.load_particles(js);

  std::vector<Force> a(js.size()), b(js.size());
  ref.compute_forces(0.0, block, a);

  ForceTicket tk = hw.submit_forces(0.0, block, b);
  // Wait back-to-front, then re-wait a few — waits are idempotent and
  // order-free.
  for (std::size_t c = tk.chunk_count(); c-- > 0;) tk.wait_chunk(c);
  tk.wait_chunk(0);
  tk.wait();
  tk.wait();  // idempotent
  for (std::size_t k = 0; k < js.size(); ++k) {
    ASSERT_TRUE(same_force(a[k], b[k])) << k;
  }
}

TEST(AsyncEngineStress, ChunkRangesTileTheBlock) {
  GlobalThreadsGuard guard;
  exec::ThreadPool::set_global_threads(4);
  const auto js = plummer_j(150, 11);
  const auto block = as_block(js);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{},
                      1.0 / 64.0);
  hw.load_particles(js);

  std::vector<Force> f(js.size());
  ForceTicket tk = hw.submit_forces(0.0, block, f);
  std::size_t next = 0;
  for (std::size_t c = 0; c < tk.chunk_count(); ++c) {
    const auto [lo, hi] = tk.chunk_range(c);
    EXPECT_EQ(lo, next);
    EXPECT_LE(hi, js.size());
    EXPECT_LT(lo, hi);
    next = hi;
  }
  EXPECT_EQ(next, js.size());
  tk.wait();
}

TEST(AsyncEngineStress, AbandonedTicketReleasesTheEngine) {
  GlobalThreadsGuard guard;
  exec::ThreadPool::set_global_threads(4);
  const auto js = plummer_j(96, 13);
  const auto block = as_block(js);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{},
                      1.0 / 64.0);
  hw.load_particles(js);

  std::vector<Force> f(js.size());
  { ForceTicket tk = hw.submit_forces(0.0, block, f); }  // dtor joins
  // The busy guard must be released: a fresh submission succeeds.
  ForceTicket tk = hw.submit_forces(0.0, block, f);
  tk.wait();
}

TEST(AsyncEngineStress, BaseEngineSubmitWrapsBlockingCall) {
  GlobalThreadsGuard guard;
  exec::ThreadPool::set_global_threads(4);
  const auto js = plummer_j(128, 19);
  const auto block = as_block(js);
  DirectForceEngine engine(1.0 / 64.0);
  engine.load_particles(js);

  std::vector<Force> want(js.size()), got(js.size());
  engine.compute_forces(0.0, block, want);

  ForceTicket tk = engine.submit_forces(0.0, block, got);
  ASSERT_TRUE(tk.valid());
  EXPECT_EQ(tk.chunk_count(), 1u);
  tk.wait();
  for (std::size_t k = 0; k < js.size(); ++k) {
    ASSERT_TRUE(same_force(got[k], want[k])) << k;
  }
}

TEST(AsyncEngineStress, TicketErrorsSurfaceFromWait) {
  GlobalThreadsGuard guard;
  exec::ThreadPool::set_global_threads(4);
  auto& pool = exec::ThreadPool::global();
  for (int round = 0; round < 10; ++round) {
    bool epilogue_ok = true;
    bool epilogue_ran = false;
    ForceTicket tk = ForceTicket::make(
        {{0, 10}, {10, 20}, {20, 30}},
        [&](bool ok) {
          epilogue_ran = true;
          epilogue_ok = ok;
        },
        pool);
    tk.dispatch(0, [] {}, true);
    tk.dispatch(1, [] { throw std::runtime_error("chunk 1 failed"); }, true);
    tk.dispatch(2, [] { throw std::runtime_error("chunk 2 failed"); }, true);
    try {
      tk.wait();
      FAIL() << "wait() did not rethrow";
    } catch (const std::runtime_error& e) {
      // Deterministic surface: always the smallest failed chunk index.
      EXPECT_STREQ(e.what(), "chunk 1 failed");
    }
    EXPECT_TRUE(epilogue_ran);
    EXPECT_FALSE(epilogue_ok);
  }
}

}  // namespace
}  // namespace g6
