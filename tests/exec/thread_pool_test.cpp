#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace g6::exec {
namespace {

TEST(ExecThreadPool, SerialPoolSpawnsNoWorkersAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.parallelism(), 1u);
  // With no workers, submit() executes the task before returning.
  bool ran = false;
  pool.submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_FALSE(pool.try_run_one());
}

TEST(ExecThreadPool, WorkerCountIsThreadsMinusOne) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_EQ(pool.parallelism(), 4u);
}

TEST(ExecThreadPool, StartStopRepeatedly) {
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(3);
    std::atomic<int> hits{0};
    TaskGroup group(pool);
    for (int i = 0; i < 32; ++i) group.run([&hits] { ++hits; });
    group.wait();
    EXPECT_EQ(hits.load(), 32);
  }
}

TEST(ExecThreadPool, DestructorDrainsUnjoinedTasks) {
  std::atomic<int> hits{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) pool.submit([&hits] { ++hits; });
    // No explicit join: the pool's destructor must run every queued task
    // before the captured state goes away.
  }
  EXPECT_EQ(hits.load(), 64);
}

TEST(ExecTaskGroup, SumsAreCompleteAcrossManyTasks) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 200;
  std::vector<std::size_t> out(kTasks, 0);
  TaskGroup group(pool);
  for (std::size_t i = 0; i < kTasks; ++i) {
    group.run([&out, i] { out[i] = i + 1; });
  }
  group.wait();
  std::size_t sum = 0;
  for (std::size_t v : out) sum += v;
  EXPECT_EQ(sum, kTasks * (kTasks + 1) / 2);
}

TEST(ExecTaskGroup, RethrowsEarliestSubmissionError) {
  ThreadPool pool(4);
  // Several tasks fail; wait() must surface the error of the smallest
  // submission index no matter which one lost the race on the wall clock.
  for (int round = 0; round < 20; ++round) {
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
      group.run([i] {
        if (i % 5 == 2) {  // fails at i = 2, 7, 12
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
    }
    try {
      group.wait();
      FAIL() << "wait() did not rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 2");
    }
  }
}

TEST(ExecTaskGroup, ErrorPropagatesFromSerialPoolToo) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.run([] {});
  group.run([] { throw std::runtime_error("inline failure"); });
  group.run([] {});
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ExecTaskGroup, DestructorWaitsAndSwallows) {
  ThreadPool pool(3);
  std::atomic<int> hits{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
      group.run([&hits, i] {
        if (i == 3) throw std::runtime_error("swallowed");
        ++hits;
      });
    }
    // No wait(): the destructor must join (so `hits` stays alive long
    // enough) and must not let the captured exception escape.
  }
  EXPECT_EQ(hits.load(), 15);
}

TEST(ExecTaskGroup, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(2);  // one worker: inner groups must help, not block
  std::atomic<int> hits{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i) {
    outer.run([&pool, &hits] {
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) inner.run([&hits] { ++hits; });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(hits.load(), 64);
}

TEST(ExecThreadPool, ResolveRequestedWins) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(6, "3", 8), 6u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1, nullptr, 8), 1u);
}

TEST(ExecThreadPool, ResolveEnvWhenNoRequest) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, "3", 8), 3u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, "1", 8), 1u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, "4096", 8), 4096u);
}

TEST(ExecThreadPool, ResolveRejectsBadEnvAndFallsBackToHardware) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, nullptr, 8), 8u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, "", 8), 8u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, "zero", 8), 8u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, "0", 8), 8u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, "-2", 8), 8u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, "5000", 8), 8u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(0, nullptr, 0), 1u);
}

TEST(ExecThreadPool, SetGlobalThreadsReconfigures) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().parallelism(), 3u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().worker_count(), 0u);
  ThreadPool::set_global_threads(0);  // back to automatic
  EXPECT_GE(ThreadPool::global().parallelism(), 1u);
}

}  // namespace
}  // namespace g6::exec
