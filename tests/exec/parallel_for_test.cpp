#include "exec/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

namespace g6::exec {
namespace {

TEST(ExecParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(
      0, kN,
      [&hits](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      {}, pool);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ExecParallelFor, NonZeroBeginIsRespected) {
  ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  parallel_for(
      17, 93,
      [&hits](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      {}, pool);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 17 && i < 93) ? 1 : 0) << i;
  }
}

TEST(ExecParallelFor, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(5, 5, [&calls](std::size_t, std::size_t) { ++calls; }, {},
               pool);
  EXPECT_EQ(calls, 0);
}

TEST(ExecParallelFor, GrainBoundsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  // 10 iterations at grain 4 → at most ceil(10/4) = 3 chunks, regardless
  // of the pool width.
  parallel_for(
      0, 10, [&chunks](std::size_t, std::size_t) { ++chunks; },
      {.threads = 0, .grain = 4}, pool);
  EXPECT_LE(chunks.load(), 3);
  EXPECT_GE(chunks.load(), 1);
}

TEST(ExecParallelFor, ThreadsOneForcesOneInlineChunk) {
  ThreadPool pool(4);
  int calls = 0;
  std::size_t lo = 99, hi = 0;
  parallel_for(
      0, 64,
      [&](std::size_t b, std::size_t e) {
        ++calls;
        lo = b;
        hi = e;
      },
      {.threads = 1}, pool);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 64u);
}

TEST(ExecParallelFor, PartitionIsIndependentOfScheduling) {
  // The chunk an index lands in is a pure function of (range, options,
  // parallelism) — record the partition twice and compare.
  ThreadPool pool(4);
  auto partition = [&pool] {
    std::vector<std::pair<std::size_t, std::size_t>> chunks(997, {0, 0});
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> seen;
    parallel_for(
        0, 997,
        [&](std::size_t b, std::size_t e) {
          std::lock_guard<std::mutex> lk(m);
          seen.emplace_back(b, e);
        },
        {.grain = 16}, pool);
    std::sort(seen.begin(), seen.end());
    return seen;
  };
  EXPECT_EQ(partition(), partition());
}

TEST(ExecParallelFor, SerialPoolRunsInline) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // no atomics needed: everything runs on this thread
  parallel_for(
      0, 256,
      [&sum](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) sum += i;
      },
      {}, pool);
  EXPECT_EQ(sum, 256u * 255u / 2u);
}

}  // namespace
}  // namespace g6::exec
