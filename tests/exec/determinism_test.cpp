// The determinism contract of docs/EXECUTION.md, end to end: the same
// physics, bit for bit, no matter how many threads the global pool runs —
// for raw GRAPE force evaluations, for the direct-summation engine, and
// for a long Hermite integration with the async submit/wait path live.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "exec/thread_pool.hpp"
#include "grape/engine.hpp"
#include "hermite/direct_engine.hpp"
#include "hermite/integrator.hpp"
#include "nbody/models.hpp"
#include "util/rng.hpp"

namespace g6 {
namespace {

std::vector<JParticle> plummer_j(std::size_t n, unsigned seed) {
  Rng rng(seed);
  const ParticleSet s = make_plummer(n, rng);
  std::vector<JParticle> js(n);
  for (std::size_t i = 0; i < n; ++i) {
    js[i].mass = s[i].mass;
    js[i].pos = s[i].pos;
    js[i].vel = s[i].vel;
  }
  return js;
}

std::vector<PredictedState> as_block(std::span<const JParticle> js) {
  std::vector<PredictedState> block(js.size());
  for (std::size_t i = 0; i < js.size(); ++i) {
    block[i] = {js[i].pos, js[i].vel, js[i].mass, static_cast<std::uint32_t>(i)};
  }
  return block;
}

void push_bits(std::vector<std::uint64_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  out.push_back(bits);
}

void push_bits(std::vector<std::uint64_t>& out, const Vec3& v) {
  push_bits(out, v.x);
  push_bits(out, v.y);
  push_bits(out, v.z);
}

std::vector<std::uint64_t> force_bits(std::span<const Force> forces) {
  std::vector<std::uint64_t> out;
  out.reserve(forces.size() * 7);
  for (const Force& f : forces) {
    push_bits(out, f.acc);
    push_bits(out, f.jerk);
    push_bits(out, f.pot);
  }
  return out;
}

/// Restores the global pool to automatic sizing when the test ends.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { exec::ThreadPool::set_global_threads(0); }
};

std::vector<std::uint64_t> grape_force_bits(unsigned threads) {
  exec::ThreadPool::set_global_threads(threads);
  const auto js = plummer_j(256, 91);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{},
                      1.0 / 64.0);
  hw.load_particles(js);
  const auto block = as_block(js);
  std::vector<Force> f(js.size());
  hw.compute_forces(0.0, block, f);
  return force_bits(f);
}

TEST(ExecDeterminism, GrapeForcesBitIdenticalAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  const auto serial = grape_force_bits(1);
  EXPECT_EQ(grape_force_bits(2), serial);
  EXPECT_EQ(grape_force_bits(8), serial);
}

std::vector<std::uint64_t> direct_force_bits(unsigned threads) {
  exec::ThreadPool::set_global_threads(threads);
  const auto js = plummer_j(256, 17);
  DirectForceEngine engine(1.0 / 64.0);
  engine.load_particles(js);
  const auto block = as_block(js);
  std::vector<Force> f(js.size());
  engine.compute_forces(0.0, block, f);
  return force_bits(f);
}

TEST(ExecDeterminism, DirectForcesBitIdenticalAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  const auto serial = direct_force_bits(1);
  EXPECT_EQ(direct_force_bits(2), serial);
  EXPECT_EQ(direct_force_bits(8), serial);
}

std::vector<std::uint64_t> hermite_run_bits(unsigned threads) {
  exec::ThreadPool::set_global_threads(threads);
  Rng rng(23);
  const ParticleSet s = make_plummer(64, rng);
  GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{},
                      1.0 / 64.0);
  HermiteConfig cfg;
  cfg.async_force = true;  // the overlapped submit/wait path under test
  HermiteIntegrator integ(s, hw, cfg);
  for (int step = 0; step < 200; ++step) integ.step();

  std::vector<std::uint64_t> out;
  push_bits(out, integ.time());
  out.push_back(integ.total_steps());
  for (std::size_t i = 0; i < integ.size(); ++i) {
    const JParticle& p = integ.particle(i);
    push_bits(out, p.pos);
    push_bits(out, p.vel);
    push_bits(out, p.acc);
    push_bits(out, p.jerk);
    push_bits(out, p.snap);
    push_bits(out, p.t0);
    push_bits(out, integ.timestep(i));
  }
  return out;
}

TEST(ExecDeterminism, HermiteRunBitIdenticalAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  const auto serial = hermite_run_bits(1);
  EXPECT_EQ(hermite_run_bits(2), serial);
  EXPECT_EQ(hermite_run_bits(8), serial);
}

TEST(ExecDeterminism, AsyncPathMatchesSyncPath) {
  // async_force moves wall-clock only: the blocking and overlapped paths
  // must produce the same bits at the same thread count.
  GlobalThreadsGuard guard;
  exec::ThreadPool::set_global_threads(4);
  auto run = [](bool async) {
    Rng rng(29);
    const ParticleSet s = make_plummer(64, rng);
    GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{},
                        1.0 / 64.0);
    HermiteConfig cfg;
    cfg.async_force = async;
    HermiteIntegrator integ(s, hw, cfg);
    for (int step = 0; step < 100; ++step) integ.step();
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < integ.size(); ++i) {
      push_bits(out, integ.particle(i).pos);
      push_bits(out, integ.particle(i).vel);
    }
    return out;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace g6
