// Per-job metric attribution (obs/context.hpp): scopes mirror counter
// increments made while current, the thread-local propagates across
// exec::ThreadPool::submit, and the per-scope ledgers sum to the global
// counter when every increment ran under some scope — the invariant the
// serve attribution report depends on.

#include "obs/context.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "exec/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6::obs {
namespace {

Counter& counter(const char* name) {
  return MetricsRegistry::global().counter(name);
}

TEST(MetricScope, MirrorsAddsOnlyWhileCurrent) {
  Counter& c = counter("ctxtest.alpha");
  const std::uint64_t before = c.value();
  MetricScope scope("job:alpha", 1, "batch");

  c.add(5);  // not current yet: global only
  {
    const ScopedMetricScope install(&scope);
    EXPECT_EQ(ScopedMetricScope::current(), &scope);
    c.add(7);
  }
  c.add(11);  // detached again

  EXPECT_EQ(c.value(), before + 23);
  EXPECT_EQ(scope.value("ctxtest.alpha"), 7u);
  EXPECT_EQ(scope.value("ctxtest.never"), 0u);
}

TEST(MetricScope, SnapshotSortsByNameAndResetClears) {
  Counter& a = counter("ctxtest.b.second");
  Counter& b = counter("ctxtest.a.first");
  MetricScope scope("job:snap", 2, "interactive");
  {
    const ScopedMetricScope install(&scope);
    a.add(2);
    b.add(3);
  }
  const auto snap = scope.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.begin()->first, "ctxtest.a.first");
  EXPECT_EQ(snap.at("ctxtest.a.first"), 3u);
  EXPECT_EQ(snap.at("ctxtest.b.second"), 2u);
  scope.reset();
  EXPECT_TRUE(scope.snapshot().empty());
}

TEST(MetricScope, StealsCounterIsNeverAttributed) {
  // Which worker steals a task is OS-schedule dependent; attributing it
  // would make per-scope key sets nondeterministic between identical
  // runs, so the mirror drops it at the source.
  Counter& steals = counter("exec.steals");
  MetricScope scope("job:steals", 3, "batch");
  {
    const ScopedMetricScope install(&scope);
    steals.add(4);
  }
  EXPECT_EQ(scope.value("exec.steals"), 0u);
  EXPECT_TRUE(scope.snapshot().empty());
}

TEST(ScopedMetricScope, NestsAndRestores) {
  MetricScope outer("job:outer", 4, "batch");
  MetricScope inner("job:inner", 5, "batch");
  EXPECT_EQ(ScopedMetricScope::current(), nullptr);
  {
    const ScopedMetricScope a(&outer);
    {
      const ScopedMetricScope b(&inner);
      EXPECT_EQ(ScopedMetricScope::current(), &inner);
      {
        // nullptr detaches (scheduler bookkeeping between quanta).
        const ScopedMetricScope c(nullptr);
        EXPECT_EQ(ScopedMetricScope::current(), nullptr);
      }
      EXPECT_EQ(ScopedMetricScope::current(), &inner);
    }
    EXPECT_EQ(ScopedMetricScope::current(), &outer);
  }
  EXPECT_EQ(ScopedMetricScope::current(), nullptr);
}

TEST(ScopedMetricScope, PropagatesAcrossThreadPoolSubmit) {
  Counter& c = counter("ctxtest.pool");
  const std::uint64_t before = c.value();
  MetricScope scope("job:pool", 6, "batch");

  exec::ThreadPool pool(4);
  {
    const ScopedMetricScope install(&scope);
    exec::TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) {
      group.run([&c] { c.add(1); });
    }
    group.wait();
  }

  EXPECT_EQ(c.value(), before + 64);
  EXPECT_EQ(scope.value("ctxtest.pool"), 64u);
}

TEST(ScopedMetricScope, DetachedSubmitStaysUnattributed) {
  Counter& c = counter("ctxtest.detached");
  MetricScope scope("job:detached", 7, "batch");
  exec::ThreadPool pool(2);
  exec::TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) group.run([&c] { c.add(1); });
  group.wait();
  EXPECT_EQ(scope.value("ctxtest.detached"), 0u);
}

TEST(ScopeRegistry, GetOrCreateIsIdempotent) {
  ScopeRegistry reg;
  MetricScope& a = reg.get_or_create("job:x", 11, "batch");
  MetricScope& b = reg.get_or_create("job:x", 99, "interactive");
  EXPECT_EQ(&a, &b);          // same bucket...
  EXPECT_EQ(b.job(), 11u);    // ...first registration wins
  EXPECT_EQ(b.job_class(), "batch");
  EXPECT_EQ(reg.find("job:x"), &a);
  EXPECT_EQ(reg.find("job:y"), nullptr);
}

TEST(ScopeRegistry, ScopesAreSortedByName) {
  ScopeRegistry reg;
  reg.get_or_create("job:zeta", 1, "batch");
  reg.get_or_create("job:alpha", 2, "batch");
  const auto scopes = reg.scopes();
  ASSERT_EQ(scopes.size(), 2u);
  EXPECT_EQ(scopes[0]->name(), "job:alpha");
  EXPECT_EQ(scopes[1]->name(), "job:zeta");
}

TEST(ScopeRegistry, WriteJsonRoundTrips) {
  ScopeRegistry reg;
  Counter& c = counter("ctxtest.json");
  MetricScope& scope = reg.get_or_create("job:json", 42, "interactive");
  {
    const ScopedMetricScope install(&scope);
    c.add(9);
  }
  std::ostringstream os;
  reg.write_json(os);
  const JsonValue doc = JsonValue::parse(os.str());
  const JsonValue* entry = doc.find("job:json");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("job")->as_number(), 42.0);
  EXPECT_EQ(entry->find("class")->as_string(), "interactive");
  EXPECT_EQ(entry->find("counters")->find("ctxtest.json")->as_number(), 9.0);
}

TEST(ScopeRegistry, ResetRefusesWhileAScopeIsCurrent) {
  ScopeRegistry reg;
  MetricScope& scope = reg.get_or_create("job:live", 8, "batch");
  const ScopedMetricScope install(&scope);
  EXPECT_THROW(reg.reset(), PreconditionError);
}

TEST(ScopeRegistry, ResetDropsAllScopes) {
  ScopeRegistry reg;
  reg.get_or_create("job:gone", 9, "batch");
  reg.reset();
  EXPECT_EQ(reg.find("job:gone"), nullptr);
  EXPECT_TRUE(reg.scopes().empty());
}

}  // namespace
}  // namespace g6::obs
