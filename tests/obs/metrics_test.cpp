#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/eq10.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"

namespace g6::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramMetric, SnapshotMatchesObservations) {
  HistogramMetric h(0.0, 10.0, 10);
  for (double x : {1.0, 3.0, 3.0, 7.0}) h.observe(x);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.sum, 14.0);
  ASSERT_EQ(s.counts.size(), 10u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[3], 2u);
  EXPECT_EQ(s.counts[7], 1u);
}

TEST(HistogramMetric, ResetClearsBothStatAndBins) {
  HistogramMetric h(0.0, 1.0, 4);
  h.observe(0.5);
  h.reset();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  for (std::size_t c : s.counts) EXPECT_EQ(c, 0u);
}

TEST(HistogramMetric, RejectsDegenerateRange) {
  EXPECT_THROW(HistogramMetric(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(HistogramMetric(0.0, 1.0, 0), PreconditionError);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.events");
  Counter& b = reg.counter("x.events");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  HistogramMetric& h1 = reg.histogram("x.sizes", 0.0, 10.0, 5);
  // Later lookups ignore differing bounds; the first creation wins.
  HistogramMetric& h2 = reg.histogram("x.sizes", 0.0, 99.0, 50);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.snapshot().counts.size(), 5u);
}

TEST(MetricsRegistry, RejectsEmptyNames) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), PreconditionError);
  EXPECT_THROW(reg.gauge(""), PreconditionError);
  EXPECT_THROW(reg.histogram("", 0.0, 1.0, 2), PreconditionError);
}

TEST(MetricsRegistry, ResetZeroesEverythingInPlace) {
  MetricsRegistry reg;
  Counter& c = reg.counter("n");
  c.add(7);
  reg.gauge("g").set(1.0);
  reg.histogram("h", 0.0, 1.0, 2).observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same instrument, zeroed
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h", 0.0, 1.0, 2).snapshot().count, 0u);
}

TEST(MetricsRegistry, WriteJsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.counter("grape.passes").add(12);
  reg.gauge("net.modelled_latency_s").set(0.25);
  reg.histogram("hermite.block_size", 0.0, 64.0, 4).observe(16.0);

  Eq10Accumulator eq10;
  eq10.add_phases(1.0, 0.25, 0.25, 2.0, 3.6);
  eq10.add_steps(100, 10);

  std::ostringstream os;
  reg.write_json(os, &eq10);
  const JsonValue doc = JsonValue::parse(os.str());

  EXPECT_EQ(doc.at("schema").as_string(), "grape6-metrics-v1");
  EXPECT_DOUBLE_EQ(doc.at("counters").at("grape.passes").as_number(), 12.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("net.modelled_latency_s").as_number(),
                   0.25);
  const JsonValue& h = doc.at("histograms").at("hermite.block_size");
  EXPECT_DOUBLE_EQ(h.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h.at("mean").as_number(), 16.0);
  EXPECT_EQ(h.at("counts").items().size(), 4u);

  const JsonValue& e = doc.at("eq10");
  EXPECT_DOUBLE_EQ(e.at("host_s").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(e.at("grape_s").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(e.at("comm_s").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(e.at("steps").as_number(), 100.0);
  EXPECT_EQ(e.at("bottleneck").as_string(), "grape");
}

TEST(MetricsRegistry, WriteJsonWithoutEq10OmitsSection) {
  MetricsRegistry reg;
  std::ostringstream os;
  reg.write_json(os);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.find("eq10"), nullptr);
  EXPECT_TRUE(doc.at("counters").members().empty());
}

TEST(Eq10Accumulator, IdentityAndBottleneck) {
  Eq10Accumulator acc;
  acc.add_phases(1.0, 2.0, 0.5, 1.0, 4.6);
  EXPECT_DOUBLE_EQ(acc.comm_s(), 2.5);
  EXPECT_DOUBLE_EQ(acc.accounted_s(), 4.5);
  EXPECT_NEAR(acc.residual_s(), 0.1, 1e-12);
  EXPECT_STREQ(acc.bottleneck(), "dma");

  Eq10Accumulator other;
  other.add_phases(0.0, 0.0, 5.0, 0.0, 5.0);
  other.add_steps(10);
  acc.merge(other);
  EXPECT_STREQ(acc.bottleneck(), "net");
  EXPECT_EQ(acc.steps, 10u);
  EXPECT_DOUBLE_EQ(acc.time_per_step_s(), 9.6 / 10.0);
}

}  // namespace
}  // namespace g6::obs
