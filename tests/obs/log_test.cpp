#include "obs/log.hpp"

#include <gtest/gtest.h>

namespace g6::obs {
namespace {

// Restore the level after each test; the logger is process-global.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LogTest, ParseAcceptsAllSpellings) {
  EXPECT_EQ(parse_log_level("quiet"), LogLevel::kQuiet);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kQuiet);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kQuiet);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("QUIET"), LogLevel::kQuiet);
  EXPECT_EQ(parse_log_level("Debug"), LogLevel::kDebug);
}

TEST_F(LogTest, UnknownSpellingFallsBackToInfo) {
  EXPECT_EQ(parse_log_level("verbose?"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(""), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(nullptr), LogLevel::kInfo);
}

TEST_F(LogTest, ThresholdGatesLevels) {
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
}

TEST_F(LogTest, QuietSilencesEverything) {
  set_log_level(LogLevel::kQuiet);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kWarn));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  // Emitting below threshold must be a cheap no-op, not a crash.
  log_error("dropped %d", 1);
  log_debug("dropped %s", "too");
}

TEST_F(LogTest, KQuietIsNeverAnEmittableLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_FALSE(log_enabled(LogLevel::kQuiet));
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
}

TEST_F(LogTest, SetLevelWinsOverEnvironment) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace g6::obs
