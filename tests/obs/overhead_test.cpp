// Checks the promise in src/obs/phase.hpp: a span with the tracer
// disabled costs roughly one relaxed atomic load. We time a loop of
// disabled spans against a baseline loop of plain atomic loads and
// assert the ratio stays within a generous bound — this guards against
// someone accidentally adding allocation or locking to the disabled
// path, not against microarchitectural noise.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "obs/clock.hpp"
#include "obs/phase.hpp"

#ifndef __has_feature
#define __has_feature(x) 0  // GCC spells sanitizers __SANITIZE_*__ instead
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define G6_OVERHEAD_TEST_SANITIZED 1
#else
#define G6_OVERHEAD_TEST_SANITIZED 0
#endif

namespace g6::obs {
namespace {

constexpr std::size_t kIters = 200000;

double time_disabled_spans() {
  const double t0 = monotonic_seconds();
  for (std::size_t i = 0; i < kIters; ++i) {
    PhaseSpan span("overhead.probe");
  }
  return monotonic_seconds() - t0;
}

double time_baseline_loads(const std::atomic<bool>& flag) {
  bool sink = false;
  const double t0 = monotonic_seconds();
  for (std::size_t i = 0; i < kIters; ++i) {
    sink ^= flag.load(std::memory_order_relaxed);
  }
  const double dt = monotonic_seconds() - t0;
  // Keep the compiler from deleting the loop.
  EXPECT_FALSE(sink);
  return dt;
}

TEST(Overhead, DisabledSpanIsNearZeroCost) {
  ASSERT_FALSE(Tracer::global().enabled());
  std::atomic<bool> flag{false};

  // Warm up, then take the best of a few trials of each to shrug off
  // scheduler hiccups.
  (void)time_disabled_spans();
  (void)time_baseline_loads(flag);
  double spans = 1e9;
  double base = 1e9;
  for (int trial = 0; trial < 5; ++trial) {
    spans = std::min(spans, time_disabled_spans());
    base = std::min(base, time_baseline_loads(flag));
  }

  const double per_span_ns = spans / kIters * 1e9;
  ::testing::Test::RecordProperty("per_span_ns", static_cast<int>(per_span_ns));

  // A relaxed load is ~1 ns; allow two orders of magnitude of slack so
  // the test only trips on a real regression (locking, allocation, a
  // clock read on the disabled path). Sanitizers intercept atomic ops
  // and inflate both sides unpredictably, so the bound only applies to
  // uninstrumented builds.
#if !G6_OVERHEAD_TEST_SANITIZED
  EXPECT_LT(per_span_ns, 100.0)
      << "disabled PhaseSpan costs " << per_span_ns
      << " ns/span (baseline load: " << base / kIters * 1e9 << " ns)";
#else
  (void)base;
#endif

  // No events may have leaked from the disabled spans.
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

}  // namespace
}  // namespace g6::obs
