#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace g6::obs {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& p) {
  std::ifstream in(p);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Export, MetricsJsonWrittenAtomicallyAndParses) {
  MetricsRegistry::global().counter("export_test.calls").add(3);
  const std::string p =
      (fs::temp_directory_path() / "g6_export_test.json").string();
  fs::remove(p);
  ASSERT_TRUE(export_metrics_json(p));
  EXPECT_FALSE(fs::exists(p + ".tmp"));
  const JsonValue doc = JsonValue::parse(slurp(p));
  EXPECT_EQ(doc.at("schema").as_string(), "grape6-metrics-v1");
  fs::remove(p);
}

TEST(Export, UnwritablePathReturnsFalseInsteadOfThrowing) {
  // Telemetry export is best-effort: a bad --metrics-out path must not
  // take down a finished run.
  EXPECT_FALSE(export_metrics_json("/nonexistent-dir/metrics.json"));
  EXPECT_FALSE(export_chrome_trace("/nonexistent-dir/trace.json"));
}

TEST(Export, EmptyPathIsANoOp) {
  EXPECT_TRUE(export_metrics_json(""));
  EXPECT_TRUE(export_chrome_trace(""));
}

}  // namespace
}  // namespace g6::obs
