// Concurrency stress for the telemetry sinks, in the style of
// tests/tree/threaded_test.cpp: cheap in a plain build, load-bearing
// under the tsan preset, where every counter add, histogram observe and
// span record from 8 threads must be seen as properly synchronized.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"

namespace g6::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 2000;

TEST(MetricsThreads, ConcurrentCounterAndGaugeUpdates) {
  MetricsRegistry reg;
  Counter& hits = reg.counter("stress.hits");
  Gauge& sum = reg.gauge("stress.sum");

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, &hits, &sum] {
      for (int i = 0; i < kIterations; ++i) {
        hits.add();
        sum.add(0.5);
        // Lookups race with other threads' lookups of the same names.
        reg.counter("stress.hits").add();
        reg.counter("stress.other").add(2);
      }
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_EQ(hits.value(), static_cast<std::uint64_t>(2 * kThreads * kIterations));
  EXPECT_EQ(reg.counter("stress.other").value(),
            static_cast<std::uint64_t>(2 * kThreads * kIterations));
  EXPECT_DOUBLE_EQ(sum.value(), 0.5 * kThreads * kIterations);
}

TEST(MetricsThreads, ConcurrentHistogramObservations) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("stress.sizes", 0.0, 8.0, 8);

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h, t] {
      for (int i = 0; i < kIterations; ++i) {
        h.observe(static_cast<double>(t) + 0.5);
      }
    });
  }
  for (auto& th : pool) th.join();

  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::size_t>(kThreads * kIterations));
  for (std::size_t b = 0; b < s.counts.size(); ++b) {
    EXPECT_EQ(s.counts[b], static_cast<std::size_t>(kIterations)) << b;
  }
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
}

TEST(MetricsThreads, ConcurrentSpansWithLiveExport) {
  Tracer::global().clear();
  Tracer::global().enable();

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kIterations / 4; ++i) {
        PhaseSpan outer("stress.outer");
        PhaseSpan inner("stress.inner");
      }
    });
  }
  // Concurrent readers: the per-buffer mutexes make export safe while
  // worker threads are still appending.
  for (int r = 0; r < 50; ++r) (void)Tracer::global().event_count();
  for (auto& th : pool) th.join();

#if GRAPE6_TELEMETRY_ENABLED
  EXPECT_EQ(Tracer::global().event_count(),
            static_cast<std::size_t>(kThreads * (kIterations / 4) * 2));
#endif
  Tracer::global().disable();
  Tracer::global().clear();
}

}  // namespace
}  // namespace g6::obs
