// Flight recorder (obs/flight.hpp): wait-free ring semantics — claim
// order, wrap-and-drop accounting, torn-slot safety under concurrent
// writers — and the grape6-flightrec-v1 dump.

#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace g6::obs {
namespace {

TEST(FlightRecorder, RecordsPayloadInClaimOrder) {
  FlightRecorder rec(8);
  rec.record(FlightEventType::kQuantumStart, 3, 0, 4);
  rec.record(FlightEventType::kRevoke, 3, 1, 2, "board_death");
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, FlightEventType::kQuantumStart);
  EXPECT_EQ(events[0].job, 3u);
  EXPECT_EQ(events[0].b, 4);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].type, FlightEventType::kRevoke);
  EXPECT_STREQ(events[1].detail, "board_death");
  EXPECT_EQ(rec.recorded(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorder, WrapKeepsNewestAndCountsDropped) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    rec.record(FlightEventType::kRetry, i);
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // A flight recorder keeps the newest history: seqs 2..5 survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 2);
    EXPECT_EQ(events[i].job, i + 2);
  }
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
}

TEST(FlightRecorder, EventNamesAreStableIdentifiers) {
  EXPECT_STREQ(flight_event_name(FlightEventType::kQuantumStart),
               "quantum_start");
  EXPECT_STREQ(flight_event_name(FlightEventType::kBoardDeath),
               "board_death");
  EXPECT_STREQ(flight_event_name(FlightEventType::kJobFailed),
               "job_failed");
}

TEST(FlightRecorder, ConcurrentWritersLoseNothingBelowCapacity) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  FlightRecorder rec(kThreads * kPerThread);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.record(FlightEventType::kRetry,
                   static_cast<std::uint64_t>(t) + 1, i);
      }
    });
  }
  for (auto& w : writers) w.join();

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.dropped(), 0u);
  std::set<std::uint64_t> seqs;
  for (const auto& ev : events) seqs.insert(ev.seq);
  EXPECT_EQ(seqs.size(), events.size());  // every claim unique
  // Per-writer subsequences stay ordered: each thread's a-field (its own
  // loop index) must be increasing along the global seq order.
  for (int t = 1; t <= kThreads; ++t) {
    std::int64_t last = -1;
    for (const auto& ev : events) {
      if (ev.job != static_cast<std::uint64_t>(t)) continue;
      EXPECT_GT(ev.a, last);
      last = ev.a;
    }
  }
}

TEST(FlightRecorder, WriteJsonRoundTrips) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 5; ++i) {
    rec.record(FlightEventType::kPreempt, i + 1, 7, 8, "round_robin");
  }
  std::ostringstream os;
  rec.write_json(os);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.find("schema")->as_string(), "grape6-flightrec-v1");
  EXPECT_EQ(doc.find("recorded")->as_number(), 5.0);
  EXPECT_EQ(doc.find("dropped")->as_number(), 1.0);
  EXPECT_EQ(doc.find("capacity")->as_number(), 4.0);
  const auto& events = doc.find("events")->items();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].find("seq")->as_number(), 1.0);
  EXPECT_EQ(events[0].find("type")->as_string(), "preempt");
  EXPECT_EQ(events[0].find("job")->as_number(), 2.0);
  EXPECT_EQ(events[0].find("a")->as_number(), 7.0);
  EXPECT_EQ(events[0].find("detail")->as_string(), "round_robin");
}

TEST(FlightRecorder, ClearEmptiesRingAndCounters) {
  FlightRecorder rec(4);
  rec.record(FlightEventType::kRequeue, 1);
  rec.clear();
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record(FlightEventType::kRequeue, 2);
  ASSERT_EQ(rec.snapshot().size(), 1u);
  EXPECT_EQ(rec.snapshot()[0].seq, 0u);  // seq restarts after clear
}

}  // namespace
}  // namespace g6::obs
