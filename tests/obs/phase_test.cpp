#include "obs/phase.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/eq10.hpp"
#include "obs/json.hpp"

namespace g6::obs {
namespace {

// The global tracer is process-wide state; serialize access across the
// tests in this binary by always starting from a known state.
struct TracerGuard {
  TracerGuard() {
    Tracer::global().clear();
    Tracer::global().enable();
  }
  ~TracerGuard() {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST(PhaseSpan, DisabledTracerRecordsNothing) {
  Tracer::global().clear();
  Tracer::global().disable();
  {
    PhaseSpan span("idle");
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST(PhaseSpan, EnabledTracerRecordsNestedSpans) {
#if !GRAPE6_TELEMETRY_ENABLED
  GTEST_SKIP() << "spans compiled out (GRAPE6_TELEMETRY=OFF)";
#endif
  TracerGuard guard;
  {
    PhaseSpan outer("blockstep");
    {
      PhaseSpan inner("predict");
    }
    {
      PhaseSpan inner("force");
    }
  }
  EXPECT_EQ(Tracer::global().event_count(), 3u);
}

TEST(PhaseSpan, ChromeTraceIsValidJsonWithNesting) {
#if !GRAPE6_TELEMETRY_ENABLED
  GTEST_SKIP() << "spans compiled out (GRAPE6_TELEMETRY=OFF)";
#endif
  TracerGuard guard;
  {
    PhaseSpan outer("blockstep");
    {
      PhaseSpan inner("predict");
    }
  }
  std::ostringstream os;
  Tracer::global().write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());

  const auto& events = doc.at("traceEvents").items();
  ASSERT_EQ(events.size(), 3u);  // metadata + 2 spans

  // First event is the process_name metadata record.
  EXPECT_EQ(events[0].at("ph").as_string(), "M");
  EXPECT_EQ(events[0].at("name").as_string(), "process_name");

  // Spans are complete events sorted by start time; the outer span
  // starts first and contains the inner one on the same thread.
  const JsonValue& outer = events[1];
  const JsonValue& inner = events[2];
  EXPECT_EQ(outer.at("ph").as_string(), "X");
  EXPECT_EQ(outer.at("name").as_string(), "blockstep");
  EXPECT_EQ(inner.at("name").as_string(), "predict");
  EXPECT_EQ(outer.at("tid").as_number(), inner.at("tid").as_number());
  const double o_start = outer.at("ts").as_number();
  const double o_end = o_start + outer.at("dur").as_number();
  const double i_start = inner.at("ts").as_number();
  const double i_end = i_start + inner.at("dur").as_number();
  EXPECT_LE(o_start, i_start);
  EXPECT_GE(o_end, i_end);
}

TEST(PhaseSpan, SpanOpenAcrossEnableIsDropped) {
  Tracer::global().clear();
  Tracer::global().disable();
  {
    PhaseSpan span("started-disabled");
    Tracer::global().enable();
    // Enabled after entry: the span saw a disabled tracer and records
    // nothing, rather than emitting a half-measured event.
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
  Tracer::global().disable();
}

TEST(Tracer, ClearDropsEvents) {
#if !GRAPE6_TELEMETRY_ENABLED
  GTEST_SKIP() << "spans compiled out (GRAPE6_TELEMETRY=OFF)";
#endif
  TracerGuard guard;
  {
    PhaseSpan span("x");
  }
  EXPECT_EQ(Tracer::global().event_count(), 1u);
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST(Eq10Stepper, SegmentsSumToTotalWithinRounding) {
  Eq10Accumulator acc;
  {
    Eq10Stepper eq(acc);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
    eq.phase(Eq10Stepper::Phase::kGrape);
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
    eq.phase(Eq10Stepper::Phase::kHost);
  }
#if GRAPE6_TELEMETRY_ENABLED
  EXPECT_GT(acc.total_s, 0.0);
  // The segments partition the total span; only the instructions between
  // the clock reads are unaccounted.
  EXPECT_NEAR(acc.accounted_s(), acc.total_s, 1e-4);
  EXPECT_GT(acc.grape_s, 0.0);
#else
  EXPECT_EQ(acc.total_s, 0.0);
#endif
}

}  // namespace
}  // namespace g6::obs
