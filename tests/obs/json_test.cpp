#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace g6::obs {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonValue, ParsesNestedStructure) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.at("a").items();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
  EXPECT_EQ(a[2].at("b").as_string(), "x");
  EXPECT_TRUE(v.at("c").at("d").is_null());
}

TEST(JsonValue, ParsesStringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd")").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(JsonValue::parse(R"("A")").as_string(), "A");
}

TEST(JsonValue, FindReturnsNullptrForMissingKey) {
  const JsonValue v = JsonValue::parse(R"({"x": 1})");
  EXPECT_NE(v.find("x"), nullptr);
  EXPECT_EQ(v.find("y"), nullptr);
  EXPECT_THROW(v.at("y"), std::runtime_error);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("nul"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("1 trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
}

TEST(JsonValue, TypeMismatchThrows) {
  const JsonValue v = JsonValue::parse("[1]");
  EXPECT_THROW(v.as_number(), std::runtime_error);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.at("k"), std::runtime_error);
}

TEST(JsonValue, WriterEscapeRoundTrip) {
  const std::string raw = "name with \"quotes\", \\slashes\\ and \n newlines";
  const JsonValue v = JsonValue::parse("\"" + json_escape(raw) + "\"");
  EXPECT_EQ(v.as_string(), raw);
}

}  // namespace
}  // namespace g6::obs
