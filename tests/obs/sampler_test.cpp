// Time-series sampler (obs/sampler.hpp): logical ticks, a frozen
// instrument set once sampling starts, and a grape6-timeseries-v1 export
// whose deterministic columns export_determinism can diff.

#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6::obs {
namespace {

TEST(MetricsSampler, RowsFollowInstrumentValues) {
  Counter& c = MetricsRegistry::global().counter("samptest.count");
  Gauge& g = MetricsRegistry::global().gauge("samptest.level");
  MetricsSampler sampler;
  sampler.track_counter("samptest.count");
  sampler.track_gauge("samptest.level");
  EXPECT_EQ(sampler.instrument_count(), 2u);

  const std::uint64_t base = c.value();
  g.set(1.5);
  sampler.sample();
  c.add(3);
  g.set(2.5);
  sampler.sample();
  EXPECT_EQ(sampler.sample_count(), 2u);

  std::ostringstream os;
  sampler.write_json(os);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.find("schema")->as_string(), "grape6-timeseries-v1");

  const auto& instruments = doc.find("instruments")->items();
  ASSERT_EQ(instruments.size(), 2u);
  EXPECT_EQ(instruments[0].find("name")->as_string(), "samptest.count");
  EXPECT_EQ(instruments[0].find("kind")->as_string(), "counter");
  EXPECT_EQ(instruments[1].find("name")->as_string(), "samptest.level");
  EXPECT_EQ(instruments[1].find("kind")->as_string(), "gauge");

  const auto& samples = doc.find("samples")->items();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].find("tick")->as_number(), 0.0);
  EXPECT_EQ(samples[1].find("tick")->as_number(), 1.0);
  const auto& row0 = samples[0].find("values")->items();
  const auto& row1 = samples[1].find("values")->items();
  EXPECT_EQ(row0[0].as_number(), static_cast<double>(base));
  EXPECT_EQ(row0[1].as_number(), 1.5);
  EXPECT_EQ(row1[0].as_number(), static_cast<double>(base + 3));
  EXPECT_EQ(row1[1].as_number(), 2.5);
}

TEST(MetricsSampler, TrackingIsIdempotent) {
  MetricsSampler sampler;
  sampler.track_counter("samptest.idem");
  sampler.track_counter("samptest.idem");
  EXPECT_EQ(sampler.instrument_count(), 1u);
}

TEST(MetricsSampler, InstrumentSetFreezesAtFirstSample) {
  MetricsSampler sampler;
  sampler.track_counter("samptest.frozen");
  sampler.sample();
  // A NEW instrument would change row shape mid-series; refuse it.
  EXPECT_THROW(sampler.track_gauge("samptest.late"), PreconditionError);
  // Re-registering a tracked one is the dedup path: a second scheduler
  // instance re-announcing its instruments must stay legal.
  sampler.track_counter("samptest.frozen");
  EXPECT_EQ(sampler.instrument_count(), 1u);
}

TEST(MetricsSampler, CountersExportAsIntegers) {
  MetricsRegistry::global().counter("samptest.bigint").add(1);
  MetricsSampler sampler;
  sampler.track_counter("samptest.bigint");
  sampler.sample();
  std::ostringstream os;
  sampler.write_json(os);
  // No decimal point in a counter column (uint64 formatting, not %g).
  const std::string text = os.str();
  const auto pos = text.find("\"values\": [");
  ASSERT_NE(pos, std::string::npos);
  const std::string tail = text.substr(pos, text.find(']', pos) - pos);
  EXPECT_EQ(tail.find('.'), std::string::npos) << tail;
}

TEST(MetricsSampler, ClearRestartsTicksAndInstruments) {
  MetricsSampler sampler;
  sampler.track_counter("samptest.clear");
  sampler.sample();
  sampler.clear();
  EXPECT_EQ(sampler.instrument_count(), 0u);
  EXPECT_EQ(sampler.sample_count(), 0u);
  sampler.track_gauge("samptest.clear2");
  sampler.sample();
  std::ostringstream os;
  sampler.write_json(os);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.find("samples")->items()[0].find("tick")->as_number(), 0.0);
}

TEST(MetricsSampler, EmptySamplerWritesValidJson) {
  MetricsSampler sampler;
  std::ostringstream os;
  sampler.write_json(os);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_TRUE(doc.find("instruments")->items().empty());
  EXPECT_TRUE(doc.find("samples")->items().empty());
}

}  // namespace
}  // namespace g6::obs
