// Snapshot/restart workflow: saving mid-run and restarting must continue
// the physics (within restart transients — derivative history is rebuilt
// from scratch, as in any production N-body code).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/grape6.hpp"

namespace g6 {
namespace {

TEST(Restart, ContinuedRunTracksUninterruptedRun) {
  Rng rng(11);
  const double eps = 1.0 / 64.0;
  const ParticleSet initial = make_plummer(96, rng);

  // Uninterrupted reference.
  DirectForceEngine e1(eps);
  HermiteIntegrator full(initial, e1);
  full.evolve(0.5);

  // Interrupted at t = 0.25: snapshot, reload, continue.
  DirectForceEngine e2(eps);
  HermiteIntegrator first_half(initial, e2);
  first_half.evolve(0.25);
  std::stringstream ss;
  write_snapshot(ss, first_half.state_at_current_time(), first_half.time());

  double t_restart = 0.0;
  const ParticleSet reloaded = read_snapshot(ss, t_restart);
  EXPECT_DOUBLE_EQ(t_restart, 0.25);
  DirectForceEngine e3(eps);
  HermiteIntegrator second_half(reloaded, e3);
  second_half.evolve(0.25);  // its clock restarts at 0

  const ParticleSet a = full.state_at_current_time();
  const ParticleSet b = second_half.state_at_current_time();
  double rms = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) rms += norm2(a[i].pos - b[i].pos);
  rms = std::sqrt(rms / static_cast<double>(a.size()));
  // Restart discards the Hermite derivative history; the transient is
  // bounded by the integrator error scale, far below dynamical scales.
  EXPECT_LT(rms, 1e-3);

  const double ea = compute_energy(a.bodies(), eps).total();
  const double eb = compute_energy(b.bodies(), eps).total();
  EXPECT_NEAR(ea, eb, 1e-5);
}

TEST(Restart, SnapshotPreservesEnergyExactly) {
  Rng rng(12);
  const ParticleSet s = make_king(128, 6.0, rng);
  std::stringstream ss;
  write_snapshot(ss, s, 1.5);
  double t = 0.0;
  const ParticleSet back = read_snapshot(ss, t);
  EXPECT_EQ(compute_energy(s.bodies()).total(),
            compute_energy(back.bodies()).total());
}

}  // namespace
}  // namespace g6
