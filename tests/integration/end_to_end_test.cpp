// Integration tests: whole-stack behaviours the paper's evaluation relies
// on, crossing module boundaries (models -> integrator -> emulated
// hardware -> performance model).

#include <gtest/gtest.h>

#include <cmath>

#include "core/grape6.hpp"

namespace g6 {
namespace {

TEST(EndToEnd, GrapeAndCpuTrajectoriesAgree) {
  // The hardware word sizes were chosen so that hardware rounding stays
  // below the integrator truncation error over dynamical times.
  Rng rng(1);
  const double eps = 1.0 / 64.0;
  const ParticleSet initial = make_plummer(48, rng);

  DirectForceEngine cpu(eps);
  MachineConfig mc = MachineConfig::single_host();
  mc.boards_per_host = 1;
  GrapeForceEngine hw(mc, NumberFormats{}, eps);

  HermiteConfig cfg;
  HermiteIntegrator a(initial, cpu, cfg), b(initial, hw, cfg);
  a.evolve(0.25);
  b.evolve(0.25);

  const ParticleSet sa = a.state_at_current_time();
  const ParticleSet sb = b.state_at_current_time();
  double rms = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) rms += norm2(sa[i].pos - sb[i].pos);
  rms = std::sqrt(rms / static_cast<double>(sa.size()));
  EXPECT_LT(rms, 1e-3);
}

TEST(EndToEnd, SpeedCurveShapesMatchPaper) {
  // Mini Fig 15: at small N one host wins; at large N four hosts win.
  TraceScaling scaling;
  scaling.steps_rate = {40.0, 0.2, 1.0};
  scaling.block_fraction = {0.3, -0.17, 1.0};
  scaling.log_block_sigma = 1.5;

  const SystemConfig h1 = SystemConfig::cluster(1);
  const SystemConfig h4 = SystemConfig::cluster(4);
  const SpeedPoint small1 =
      measure_speed_synthetic(512, SofteningLaw::kConstant, h1, scaling);
  const SpeedPoint small4 =
      measure_speed_synthetic(512, SofteningLaw::kConstant, h4, scaling);
  const SpeedPoint big1 =
      measure_speed_synthetic(1 << 20, SofteningLaw::kConstant, h1, scaling);
  const SpeedPoint big4 =
      measure_speed_synthetic(1 << 20, SofteningLaw::kConstant, h4, scaling);

  EXPECT_GT(small1.speed_flops, small4.speed_flops);  // crossover exists
  EXPECT_GT(big4.speed_flops, 2.0 * big1.speed_flops);  // parallel payoff
}

TEST(EndToEnd, SingleHostExceedsOneTflopAtPaperSize) {
  // Sec 4.4: "better than 1 Tflops at N = 2e5" on a single node. Use the
  // same fitted-scaling construction as the figures.
  TraceScaling scaling;
  scaling.steps_rate = {40.0, 0.2, 1.0};
  scaling.block_fraction = {0.3, -0.17, 1.0};
  scaling.log_block_sigma = 1.5;
  const SpeedPoint pt = measure_speed_synthetic(
      200'000, SofteningLaw::kConstant, SystemConfig::single_host(), scaling);
  EXPECT_GT(pt.tflops(), 1.0);
  EXPECT_LT(pt.tflops(), 3.94);  // below configuration peak
}

TEST(EndToEnd, NicUpgradeImprovesEverywhere) {
  TraceScaling scaling;
  scaling.steps_rate = {40.0, 0.2, 1.0};
  scaling.block_fraction = {0.3, -0.17, 1.0};
  scaling.log_block_sigma = 1.5;

  const SystemConfig original = SystemConfig::multi_cluster(4);
  const SystemConfig tuned = SystemConfig::tuned(4);
  for (std::size_t n : {2048u, 65536u, 1048576u}) {
    const double slow =
        measure_speed_synthetic(n, SofteningLaw::kConstant, original, scaling)
            .speed_flops;
    const double fast =
        measure_speed_synthetic(n, SofteningLaw::kConstant, tuned, scaling)
            .speed_flops;
    EXPECT_GT(fast, slow) << n;
  }
}

TEST(EndToEnd, VirtualClusterSpeedConsistentWithModelCurve) {
  // The emulated cluster's virtual time per step should sit near the
  // analytic model's prediction for its own measured schedule.
  Rng rng(9);
  const ParticleSet initial = make_plummer(96, rng);
  VirtualClusterConfig cfg;
  cfg.system = SystemConfig::cluster(2);
  cfg.system.machine.boards_per_host = 1;
  cfg.hermite.record_trace = true;
  VirtualCluster cluster(initial, cfg);
  cluster.evolve(0.25);

  const SpeedPoint modeled =
      measure_speed_from_trace(cluster.trace(), cfg.eps, cfg.system);
  const double emulated_per_step =
      cluster.virtual_seconds() / static_cast<double>(cluster.total_steps());
  EXPECT_NEAR(emulated_per_step / modeled.time_per_step_s, 1.0, 0.2);
}

TEST(EndToEnd, TreecodeAndHermiteAgreeOnDynamics) {
  // Same cold-collapse system, two completely independent engines: the
  // half-mass radii must evolve consistently.
  Rng rng1(33), rng2(33);
  const ParticleSet a0 = make_uniform_sphere(256, rng1, 1.5, 0.3);
  const ParticleSet b0 = make_uniform_sphere(256, rng2, 1.5, 0.3);

  DirectForceEngine engine(0.05);
  HermiteIntegrator hermite(a0, engine);
  hermite.evolve(0.5);

  TreecodeConfig tcfg;
  tcfg.theta = 0.3;
  tcfg.eps = 0.05;
  tcfg.dt = 1.0 / 512.0;
  TreecodeIntegrator tree(b0, tcfg);
  tree.evolve(0.5);

  const double fractions[] = {0.5};
  const double rh_h =
      lagrangian_radii(hermite.state_at_current_time().bodies(), fractions)[0];
  const double rh_t = lagrangian_radii(tree.state().bodies(), fractions)[0];
  EXPECT_NEAR(rh_h / rh_t, 1.0, 0.1);
}

}  // namespace
}  // namespace g6
