// Telemetry integration: the Eq 10 breakdown accumulated by the live
// integrators must account for the wall clock it claims to split
// (T_host + T_comm + T_GRAPE ~= T_total, the acceptance bound is 5%),
// and the exporters must produce files another tool can parse.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/grape6.hpp"

namespace g6 {
namespace {

// |accounted - total| <= 5% of total. With telemetry compiled out both
// sides are zero and the check degenerates to 0 <= 0.
void expect_eq10_identity(const obs::Eq10Accumulator& eq10) {
#if GRAPE6_TELEMETRY_ENABLED
  ASSERT_GT(eq10.total_s, 0.0);
  ASSERT_GT(eq10.steps, 0u);
  ASSERT_GT(eq10.blocksteps, 0u);
#endif
  EXPECT_LE(std::abs(eq10.accounted_s() - eq10.total_s), 0.05 * eq10.total_s)
      << "host=" << eq10.host_s << " dma=" << eq10.dma_s
      << " net=" << eq10.net_s << " grape=" << eq10.grape_s
      << " total=" << eq10.total_s;
}

TEST(Telemetry, HermiteOnGrapeSatisfiesEq10Identity) {
  Rng rng(3);
  const ParticleSet initial = make_plummer(64, rng);
  MachineConfig mc = MachineConfig::single_host();
  GrapeForceEngine hw(mc, NumberFormats{}, 1.0 / 64.0);
  HermiteIntegrator integ(initial, hw, HermiteConfig{});
  integ.evolve(0.25);
  expect_eq10_identity(integ.eq10());
#if GRAPE6_TELEMETRY_ENABLED
  // The GRAPE engine is the dominant term for a direct-summation run.
  EXPECT_GT(integ.eq10().grape_s, 0.0);
#endif
}

TEST(Telemetry, AhmadCohenSatisfiesEq10Identity) {
  Rng rng(4);
  const ParticleSet initial = make_plummer(64, rng);
  DirectForceEngine cpu(1.0 / 64.0);
  AhmadCohenIntegrator integ(initial, cpu, AhmadCohenConfig{});
  integ.evolve(0.25);
  expect_eq10_identity(integ.eq10());
}

TEST(Telemetry, TreecodeSatisfiesEq10Identity) {
  Rng rng(5);
  TreecodeConfig cfg;
  cfg.dt = 1.0 / 64.0;
  TreecodeIntegrator integ(make_plummer(128, rng), cfg);
  integ.evolve(0.25);
  expect_eq10_identity(integ.eq10());
}

TEST(Telemetry, VirtualClusterIdentityIsExact) {
  // Model-driven path: the accumulator is filled from BlockstepCost
  // virtual seconds, so the identity holds to rounding, not just 5%.
  Rng rng(6);
  VirtualClusterConfig cfg;
  cfg.system = SystemConfig::cluster(2);
  VirtualCluster vc(make_plummer(64, rng), cfg);
  vc.evolve(1.0 / 16.0);
  const obs::Eq10Accumulator& eq10 = vc.eq10();
  ASSERT_GT(eq10.total_s, 0.0);
  EXPECT_NEAR(eq10.accounted_s(), eq10.total_s, 1e-9 * eq10.total_s);
  EXPECT_GT(eq10.net_s, 0.0);  // multi-host: the network term is live
}

TEST(Telemetry, MetricsExportRoundTripsThroughParser) {
  Rng rng(7);
  const ParticleSet initial = make_plummer(48, rng);
  DirectForceEngine cpu(1.0 / 64.0);
  HermiteIntegrator integ(initial, cpu, HermiteConfig{});
  integ.evolve(0.125);

  const std::string path = "telemetry_test_metrics.json";
  ASSERT_TRUE(obs::export_metrics_json(path, &integ.eq10()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const obs::JsonValue v = obs::JsonValue::parse(ss.str());
  EXPECT_EQ(v.at("schema").as_string(), "grape6-metrics-v1");
  const obs::JsonValue& eq10 = v.at("eq10");
  const double total = eq10.at("total_s").as_number();
  const double accounted = eq10.at("host_s").as_number() +
                           eq10.at("comm_s").as_number() +
                           eq10.at("grape_s").as_number();
  EXPECT_LE(std::abs(accounted - total), 0.05 * total + 1e-12);
  std::remove(path.c_str());
}

TEST(Telemetry, ChromeTraceExportContainsNestedBlockstepSpans) {
  obs::Tracer::global().clear();
  obs::Tracer::global().enable();
  {
    Rng rng(8);
    const ParticleSet initial = make_plummer(48, rng);
    DirectForceEngine cpu(1.0 / 64.0);
    HermiteIntegrator integ(initial, cpu, HermiteConfig{});
    integ.evolve(0.0625);
  }
  const std::string path = "telemetry_test_trace.json";
  ASSERT_TRUE(obs::export_chrome_trace(path));
  obs::Tracer::global().disable();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const obs::JsonValue v = obs::JsonValue::parse(ss.str());
  const auto& events = v.at("traceEvents").items();
#if GRAPE6_TELEMETRY_ENABLED
  // Find a blockstep span, then a predict span nested inside it.
  const obs::JsonValue* block = nullptr;
  for (const auto& ev : events) {
    if (ev.find("name") != nullptr && ev.at("name").as_string() == "hermite.blockstep") {
      block = &ev;
      break;
    }
  }
  ASSERT_NE(block, nullptr) << "no hermite.blockstep span in trace";
  const double b_ts = block->at("ts").as_number();
  const double b_end = b_ts + block->at("dur").as_number();
  bool nested_predict = false;
  for (const auto& ev : events) {
    if (ev.find("name") == nullptr || ev.at("name").as_string() != "hermite.predict") {
      continue;
    }
    const double ts = ev.at("ts").as_number();
    if (ts >= b_ts && ts + ev.at("dur").as_number() <= b_end + 1e-6) {
      nested_predict = true;
      break;
    }
  }
  EXPECT_TRUE(nested_predict) << "no hermite.predict span nested in a hermite.blockstep";
#else
  EXPECT_GE(events.size(), 1u);  // metadata event only
#endif
  std::remove(path.c_str());
  obs::Tracer::global().clear();
}

}  // namespace
}  // namespace g6
