#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace g6 {
namespace {

TraceScaling fake_scaling() {
  TraceScaling s;
  s.steps_rate = {50.0, 0.1, 1.0};       // R(N) = 50 N^0.1
  s.block_fraction = {0.3, -0.2, 1.0};   // f(N) = 0.3 N^-0.2
  s.log_block_sigma = 0.8;
  return s;
}

TEST(LogGrid, CoversRangeAndIsMonotonic) {
  const auto grid = log_grid(100, 100000, 4);
  EXPECT_GE(grid.front(), 100u);
  EXPECT_EQ(grid.back(), 100000u);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
  // ~4 points per decade over 3 decades.
  EXPECT_NEAR(static_cast<double>(grid.size()), 13.0, 3.0);
}

TEST(LogGrid, RejectsBadArguments) {
  EXPECT_THROW(log_grid(0, 100), PreconditionError);
  EXPECT_THROW(log_grid(100, 10), PreconditionError);
}

TEST(MeasureSpeed, SyntheticPointIsConsistent) {
  const TraceScaling scaling = fake_scaling();
  const SpeedPoint pt = measure_speed_synthetic(
      10000, SofteningLaw::kConstant, SystemConfig::single_host(), scaling, 0.5);
  EXPECT_EQ(pt.n, 10000u);
  EXPECT_DOUBLE_EQ(pt.eps, 1.0 / 64.0);
  EXPECT_GT(pt.speed_flops, 0.0);
  EXPECT_GT(pt.steps_per_second, 0.0);
  EXPECT_GT(pt.time_per_step_s, 0.0);
  // Paper-convention speed = 57 N steps/s.
  EXPECT_NEAR(pt.speed_flops, 57.0 * 10000.0 * pt.steps_per_second, 1.0);
  // Internal consistency of the detail record.
  EXPECT_NEAR(pt.detail.seconds,
              pt.time_per_step_s * static_cast<double>(pt.detail.steps),
              1e-9 * pt.detail.seconds);
}

TEST(MeasureSpeed, SpeedBelowConfigurationPeak) {
  const TraceScaling scaling = fake_scaling();
  const SystemConfig sys = SystemConfig::single_host();
  const SpeedPoint pt =
      measure_speed_synthetic(1 << 20, SofteningLaw::kConstant, sys, scaling);
  EXPECT_LT(pt.speed_flops, MachineModel(sys).peak_flops());
}

TEST(MeasureSpeed, DeterministicForSeed) {
  const TraceScaling scaling = fake_scaling();
  const SpeedPoint a = measure_speed_synthetic(
      5000, SofteningLaw::kOverN, SystemConfig::cluster(2), scaling, 1.0, 7);
  const SpeedPoint b = measure_speed_synthetic(
      5000, SofteningLaw::kOverN, SystemConfig::cluster(2), scaling, 1.0, 7);
  EXPECT_EQ(a.speed_flops, b.speed_flops);
  EXPECT_EQ(a.detail.steps, b.detail.steps);
}

TEST(MeasureSpeed, FromTraceMatchesModelDirectly) {
  BlockstepTrace trace;
  trace.n_particles = 500;
  trace.t_begin = 0.0;
  trace.t_end = 1.0;
  trace.records = {{0.5, 50}, {1.0, 70}};
  const SystemConfig sys = SystemConfig::single_host();
  const SpeedPoint pt = measure_speed_from_trace(trace, 0.01, sys);
  const auto direct = MachineModel(sys).run_trace(trace);
  EXPECT_DOUBLE_EQ(pt.detail.seconds, direct.seconds);
  EXPECT_EQ(pt.detail.steps, 120ull);
}

TEST(BenchPaths, CsvPathUsesEnvDirectory) {
  ::setenv("GRAPE6_BENCH_OUT", ::testing::TempDir().c_str(), 1);
  const std::string path = bench_csv_path("unit_test");
  EXPECT_NE(path.find("unit_test.csv"), std::string::npos);
  EXPECT_EQ(path.find("bench_out"), std::string::npos);
  ::unsetenv("GRAPE6_BENCH_OUT");
}

TEST(BenchPaths, CalibrationCacheNamesPerLaw) {
  ::setenv("GRAPE6_BENCH_OUT", ::testing::TempDir().c_str(), 1);
  const std::string a = calibration_cache_path(SofteningLaw::kConstant);
  const std::string b = calibration_cache_path(SofteningLaw::kOverN);
  EXPECT_NE(a, b);
  ::unsetenv("GRAPE6_BENCH_OUT");
}

}  // namespace
}  // namespace g6
