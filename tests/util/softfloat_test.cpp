#include "util/softfloat.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace g6 {
namespace {

TEST(FloatFormat, ExactValuesPassThrough) {
  const FloatFormat f = formats::pipeline();
  EXPECT_EQ(f.quantize(0.0), 0.0);
  EXPECT_EQ(f.quantize(1.0), 1.0);
  EXPECT_EQ(f.quantize(-0.5), -0.5);
  EXPECT_EQ(f.quantize(1.5), 1.5);
  EXPECT_EQ(f.quantize(std::ldexp(1.0, 100)), std::ldexp(1.0, 100));
}

TEST(FloatFormat, RoundsToNearestEven) {
  // A 2-fraction-bit toy format: representable mantissas 4,5,6,7 (/8..).
  const FloatFormat f(2, -30, 30);
  // In [1,2): grid spacing 0.25.
  EXPECT_EQ(f.quantize(1.1), 1.0);
  EXPECT_EQ(f.quantize(1.2), 1.25);
  // Tie 1.125 -> even neighbour 1.0 (mantissa 8/8 even vs 9/8).
  EXPECT_EQ(f.quantize(1.125), 1.0);
  // Tie 1.375 -> 1.5 (even).
  EXPECT_EQ(f.quantize(1.375), 1.5);
}

TEST(FloatFormat, RoundingCarryPropagatesToNextBinade) {
  const FloatFormat f(2, -30, 30);
  // 1.96875 rounds up past 2.0.
  EXPECT_EQ(f.quantize(1.97), 2.0);
}

TEST(FloatFormat, UnderflowFlushesToZero) {
  const FloatFormat f(8, -10, 10);
  EXPECT_EQ(f.quantize(std::ldexp(1.0, -20)), 0.0);
  EXPECT_EQ(f.quantize(-std::ldexp(1.0, -20)), 0.0);
  EXPECT_GT(f.min_normal(), 0.0);
  EXPECT_EQ(f.quantize(f.min_normal()), f.min_normal());
}

TEST(FloatFormat, OverflowSaturates) {
  const FloatFormat f(8, -10, 10);
  EXPECT_EQ(f.quantize(std::ldexp(1.0, 40)), f.max_value());
  EXPECT_EQ(f.quantize(-std::ldexp(1.0, 40)), -f.max_value());
  EXPECT_EQ(f.quantize(f.max_value()), f.max_value());
}

TEST(FloatFormat, QuantizeIsIdempotent) {
  const FloatFormat f = formats::predictor();
  for (double x : {3.14159265358979, -1e-7, 123456.789, 0.1, -0.3}) {
    const double q = f.quantize(x);
    EXPECT_EQ(f.quantize(q), q) << x;
    EXPECT_TRUE(f.representable(q));
  }
}

TEST(FloatFormat, RelativeErrorBound) {
  const FloatFormat f = formats::pipeline();  // 24 fraction bits
  const double ulp = std::ldexp(1.0, -24);
  for (double x : {1.0 / 3.0, 2.0 / 7.0, 1e5 / 3.0, -1e-3 / 3.0}) {
    const double q = f.quantize(x);
    EXPECT_LE(std::fabs(q - x) / std::fabs(x), 0.5 * ulp * (1 + 1e-12)) << x;
  }
}

TEST(FloatFormat, ArithmeticIsCorrectlyRounded) {
  const FloatFormat f(10, -126, 127);
  const double a = f.quantize(1.0 / 3.0);
  const double b = f.quantize(2.0 / 7.0);
  EXPECT_EQ(f.add(a, b), f.quantize(a + b));
  EXPECT_EQ(f.mul(a, b), f.quantize(a * b));
  EXPECT_EQ(f.div(a, b), f.quantize(a / b));
  EXPECT_EQ(f.sqrt(a), f.quantize(std::sqrt(a)));
  EXPECT_EQ(f.rsqrt(a), f.quantize(1.0 / std::sqrt(a)));
}

TEST(FloatFormat, RsqrtClampsAtZero) {
  const FloatFormat f = formats::pipeline();
  EXPECT_EQ(f.rsqrt(0.0), f.max_value());
  EXPECT_THROW(f.rsqrt(-1.0), PreconditionError);
}

TEST(FloatFormat, IeeeDoubleIsIdentityForNormalRange) {
  const FloatFormat f = formats::ieee_double();
  for (double x : {3.141592653589793, -2.718281828459045e-100, 6.02e23}) {
    EXPECT_EQ(f.quantize(x), x);
  }
}

struct FormatCase {
  int frac_bits;
  double max_rel_err;
};

class FormatSweep : public ::testing::TestWithParam<FormatCase> {};

TEST_P(FormatSweep, ErrorScalesWithMantissa) {
  const auto p = GetParam();
  const FloatFormat f(p.frac_bits, -126, 127);
  double worst = 0.0;
  double x = 1.0;
  for (int i = 0; i < 1000; ++i) {
    x = x * 1.0061803398875 + 1e-4;  // irrational-ish walk
    if (x > 1e6) x *= 1e-7;
    const double q = f.quantize(x);
    worst = std::max(worst, std::fabs(q - x) / x);
  }
  EXPECT_LE(worst, p.max_rel_err);
  EXPECT_GT(worst, 0.0);  // narrow formats must actually lose bits
}

INSTANTIATE_TEST_SUITE_P(Widths, FormatSweep,
                         ::testing::Values(FormatCase{12, std::ldexp(1.0, -12)},
                                           FormatCase{16, std::ldexp(1.0, -16)},
                                           FormatCase{20, std::ldexp(1.0, -20)},
                                           FormatCase{24, std::ldexp(1.0, -24)}));

}  // namespace
}  // namespace g6
