#include "util/check.hpp"

#include <gtest/gtest.h>

namespace g6 {
namespace {

TEST(Check, RequirePassesOnTrue) { EXPECT_NO_THROW(G6_REQUIRE(1 + 1 == 2)); }

TEST(Check, RequireThrowsWithLocation) {
  try {
    G6_REQUIRE(1 == 2);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, RequireMsgCarriesMessage) {
  try {
    G6_REQUIRE_MSG(false, "the softening must be finite");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("softening must be finite"),
              std::string::npos);
  }
}

TEST(Check, PreconditionErrorIsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(G6_REQUIRE(false), std::logic_error);
}

}  // namespace
}  // namespace g6
