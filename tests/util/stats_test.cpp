#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace g6 {
namespace {

TEST(RunningStat, MomentsOfKnownData) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesCorrectly) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_THROW(percentile({}, 50.0), PreconditionError);
}

TEST(Percentile, SingleElementIsEveryPercentile) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 7.0);
}

TEST(Percentile, RejectsOutOfRangeP) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(percentile(xs, -0.001), PreconditionError);
  EXPECT_THROW(percentile(xs, 100.001), PreconditionError);
}

TEST(Percentile, SortsUnorderedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.5 * i);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-10);
  EXPECT_NEAR(fit.slope, 2.5, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, RejectsDegenerateData) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_linear(xs, ys), PreconditionError);
}

TEST(PowerLawFit, RecoversExactPowerLaw) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 30; ++i) {
    const double x = i * 10.0;
    xs.push_back(x);
    ys.push_back(0.7 * std::pow(x, 1.3));
  }
  const PowerLawFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.coefficient, 0.7, 1e-8);
  EXPECT_NEAR(fit.exponent, 1.3, 1e-10);
  EXPECT_NEAR(fit.evaluate(100.0), 0.7 * std::pow(100.0, 1.3), 1e-6);
}

TEST(PowerLawFit, RejectsNonPositiveData) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, -2.0};
  EXPECT_THROW(fit_power_law(xs, ys), PreconditionError);
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, SingleBinTakesEverything) {
  Histogram h(0.0, 1.0, 1);
  h.add(-100.0);
  h.add(0.5);
  h.add(100.0);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.bin_count(0), 3u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, UpperEdgeClampsToLastBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(10.0);  // exactly hi: outside [lo, hi), clamps to the last bin
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, EmptyHistogramHasZeroTotals) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.total(), 0u);
  for (std::size_t i = 0; i < h.bins(); ++i) EXPECT_EQ(h.bin_count(i), 0u);
}

}  // namespace
}  // namespace g6
