#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace g6 {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesTypedValues) {
  Cli cli = make({"--n=4096", "--eta=0.02", "--name=plummer", "--trace"});
  EXPECT_EQ(cli.get_int("n", 0), 4096);
  EXPECT_DOUBLE_EQ(cli.get_double("eta", 0.0), 0.02);
  EXPECT_EQ(cli.get_string("name", ""), "plummer");
  EXPECT_TRUE(cli.get_bool("trace", false));
  EXPECT_FALSE(cli.finish());
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  Cli cli = make({});
  EXPECT_EQ(cli.get_int("n", 128), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.015625), 0.015625);
  EXPECT_EQ(cli.get_string("model", "plummer"), "plummer");
  EXPECT_FALSE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.finish());
}

TEST(Cli, UnknownFlagIsAnError) {
  Cli cli = make({"--typo=1"});
  (void)cli.get_int("n", 0);
  EXPECT_THROW(cli.finish(), std::runtime_error);
}

TEST(Cli, PositionalArgumentsRejected) {
  std::vector<const char*> argv{"prog", "positional"};
  EXPECT_THROW(Cli(2, argv.data()), std::runtime_error);
}

TEST(Cli, HelpShortCircuits) {
  Cli cli = make({"--help"});
  (void)cli.get_int("n", 0, "particle count");
  EXPECT_TRUE(cli.finish());
}

TEST(Cli, BoolAcceptsSpellings) {
  Cli cli = make({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
  EXPECT_FALSE(cli.finish());
}

}  // namespace
}  // namespace g6
