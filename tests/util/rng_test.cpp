#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace g6 {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMomentsLookUniform) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 5e-3);
  EXPECT_NEAR(sum2 / kN, 1.0 / 3.0, 5e-3);
}

TEST(Rng, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0, sum2 = 0.0, sum4 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
    sum4 += g * g * g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 2e-2);
  EXPECT_NEAR(sum2 / kN, 1.0, 2e-2);
  EXPECT_NEAR(sum4 / kN, 3.0, 1.5e-1);  // kurtosis of a normal
}

TEST(Rng, UnitVectorsAreUnitAndIsotropic) {
  Rng rng(5);
  Vec3 mean;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const Vec3 v = rng.unit_vector();
    EXPECT_NEAR(norm(v), 1.0, 1e-12);
    mean += v;
  }
  mean /= kN;
  EXPECT_NEAR(norm(mean), 0.0, 2e-2);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(77);
  Rng child = a.fork();
  // Parent continues, child differs from a fresh copy of the parent.
  Rng b(77);
  (void)b.next_u64();  // same step the fork consumed
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResetsSequence) {
  Rng a(100);
  const auto x1 = a.next_u64();
  a.reseed(100);
  EXPECT_EQ(a.next_u64(), x1);
}

}  // namespace
}  // namespace g6
