#include "util/vec3.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace g6 {
namespace {

TEST(Vec3, ArithmeticBasics) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-4.0, 5.0, 0.5};
  EXPECT_EQ(a + b, Vec3(-3.0, 7.0, 3.5));
  EXPECT_EQ(a - b, Vec3(5.0, -3.0, 2.5));
  EXPECT_EQ(2.0 * a, Vec3(2.0, 4.0, 6.0));
  EXPECT_EQ(a * 2.0, 2.0 * a);
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1.0, 1.5));
  EXPECT_EQ(-a, Vec3(-1.0, -2.0, -3.0));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += {1.0, 2.0, 3.0};
  v -= {0.5, 0.5, 0.5};
  v *= 2.0;
  EXPECT_EQ(v, Vec3(3.0, 5.0, 7.0));
}

TEST(Vec3, Indexing) {
  Vec3 v{1.0, 2.0, 3.0};
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[2], 3.0);
  v[1] = 9.0;
  EXPECT_EQ(v.y, 9.0);
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
}

TEST(Vec3, CrossProductIdentities) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  const Vec3 z{0.0, 0.0, 1.0};
  EXPECT_EQ(cross(x, y), z);
  EXPECT_EQ(cross(y, z), x);
  EXPECT_EQ(cross(z, x), y);
  // Anti-symmetry and orthogonality.
  const Vec3 a{1.5, -2.0, 0.25};
  const Vec3 b{0.5, 3.0, -1.0};
  EXPECT_EQ(cross(a, b), -cross(b, a));
  EXPECT_NEAR(dot(cross(a, b), a), 0.0, 1e-15);
  EXPECT_NEAR(dot(cross(a, b), b), 0.0, 1e-15);
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3{1.0, 2.5, -3.0};
  EXPECT_EQ(os.str(), "(1, 2.5, -3)");
}

}  // namespace
}  // namespace g6
