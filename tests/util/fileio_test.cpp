#include "util/fileio.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace g6 {
namespace {

namespace fs = std::filesystem;

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "g6_fileio_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  fs::path dir_;
};

TEST_F(FileIoTest, WritesCompleteContentAndNoTemporaryRemains) {
  const std::string p = path("out.txt");
  write_file_atomic(p, [](std::ostream& os) { os << "hello\nworld\n"; });
  EXPECT_EQ(slurp(p), "hello\nworld\n");
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(FileIoTest, OverwriteReplacesAtomically) {
  const std::string p = path("out.txt");
  write_file_atomic(p, [](std::ostream& os) { os << "v1"; });
  write_file_atomic(p, [](std::ostream& os) { os << "v2 longer"; });
  EXPECT_EQ(slurp(p), "v2 longer");
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(FileIoTest, WriterExceptionLeavesTargetUntouched) {
  // Crash-during-write semantics: the previous complete version survives
  // and no half-written temporary litters the directory.
  const std::string p = path("out.txt");
  write_file_atomic(p, [](std::ostream& os) { os << "previous"; });
  EXPECT_THROW(write_file_atomic(p,
                                 [](std::ostream& os) {
                                   os << "partial garbage";
                                   throw std::runtime_error("simulated crash");
                                 }),
               std::runtime_error);
  EXPECT_EQ(slurp(p), "previous");
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(FileIoTest, UnwritableDirectoryThrowsIoError) {
  EXPECT_THROW(
      write_file_atomic((dir_ / "missing" / "out.txt").string(),
                        [](std::ostream& os) { os << "x"; }),
      IoError);
}

TEST_F(FileIoTest, IoErrorIsARuntimeError) {
  // Drivers catch std::exception at top level; IoError must be visible.
  EXPECT_THROW(throw IoError("disk on fire"), std::runtime_error);
}

TEST_F(FileIoTest, DurableVariantWritesCompleteContent) {
  const std::string p = path("durable.txt");
  write_file_atomic_durable(p, [](std::ostream& os) { os << "fsync me\n"; });
  EXPECT_EQ(slurp(p), "fsync me\n");
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(FileIoTest, DurableVariantReplacesAndFailsCleanly) {
  const std::string p = path("durable.txt");
  write_file_atomic_durable(p, [](std::ostream& os) { os << "v1"; });
  write_file_atomic_durable(p, [](std::ostream& os) { os << "v2"; });
  EXPECT_EQ(slurp(p), "v2");
  EXPECT_THROW(
      write_file_atomic_durable((dir_ / "missing" / "x").string(),
                                [](std::ostream& os) { os << "x"; }),
      IoError);
}

TEST_F(FileIoTest, AppendLogAppendsOneLinePerRecord) {
  const std::string p = path("log.wal");
  {
    AppendLog log(p, /*truncate=*/true);
    log.append("first");
    log.append("second");
  }
  EXPECT_EQ(slurp(p), "first\nsecond\n");
}

TEST_F(FileIoTest, AppendLogReopenWithoutTruncateContinues) {
  const std::string p = path("log.wal");
  {
    AppendLog log(p, /*truncate=*/true);
    log.append("one");
  }
  {
    AppendLog log(p, /*truncate=*/false);
    log.append("two");
  }
  EXPECT_EQ(slurp(p), "one\ntwo\n");
}

TEST_F(FileIoTest, AppendLogTruncateStartsFresh) {
  const std::string p = path("log.wal");
  { AppendLog log(p, /*truncate=*/true); }
  {
    AppendLog log2(p, /*truncate=*/true);
    log2.append("only");
  }
  EXPECT_EQ(slurp(p), "only\n");
}

TEST_F(FileIoTest, AppendLogRejectsEmbeddedNewline) {
  AppendLog log(path("log.wal"), /*truncate=*/true);
  EXPECT_THROW(log.append("two\nlines"), std::exception);
}

TEST_F(FileIoTest, AppendLogMoveTransfersOwnership) {
  const std::string p = path("log.wal");
  AppendLog a(p, /*truncate=*/true);
  AppendLog b(std::move(a));
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move) move contract under test
  EXPECT_TRUE(b.is_open());
  b.append("via b");
  b.close();
  EXPECT_EQ(slurp(p), "via b\n");
}

TEST_F(FileIoTest, AppendLogMissingDirectoryThrows) {
  EXPECT_THROW(AppendLog((dir_ / "missing" / "log.wal").string(), true),
               IoError);
}

}  // namespace
}  // namespace g6
