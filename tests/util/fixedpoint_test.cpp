#include "util/fixedpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace g6 {
namespace {

TEST(FixedPointCodec, RoundTripWithinResolution) {
  const FixedPointCodec codec(128.0);
  for (double x : {0.0, 1.0, -1.0, 100.0, -127.9, 3.14159, 1e-12}) {
    EXPECT_NEAR(codec.decode(codec.encode(x)), x, codec.resolution());
  }
}

TEST(FixedPointCodec, QuantizeIsIdempotent) {
  const FixedPointCodec codec(16.0);
  const double q = codec.quantize(1.0 / 3.0);
  EXPECT_EQ(codec.quantize(q), q);
}

TEST(FixedPointCodec, ResolutionMatchesRange) {
  const FixedPointCodec narrow(1.0);
  const FixedPointCodec wide(1024.0);
  EXPECT_DOUBLE_EQ(wide.resolution() / narrow.resolution(), 1024.0);
}

TEST(FixedPointCodec, DifferencesAreExact) {
  // The whole point of fixed-point coordinates: x_j - x_i has no rounding
  // beyond the initial grid snap — the integer subtraction itself is exact.
  const FixedPointCodec codec(128.0);
  for (auto [x, y] : {std::pair{100.0, 99.9999999}, {1.0 / 3.0, -2.0 / 7.0},
                      {127.5, 127.4999999999}}) {
    const std::int64_t a = codec.encode(x);
    const std::int64_t b = codec.encode(y);
    EXPECT_EQ(codec.decode(a - b), codec.quantize(x) - codec.quantize(y));
  }
}

TEST(FixedPointCodec, RejectsOutOfRange) {
  const FixedPointCodec codec(1.0);
  EXPECT_NO_THROW(codec.encode(1.9));   // guard bits allow up to 2*range
  EXPECT_THROW(codec.encode(4.0), PreconditionError);
  EXPECT_THROW(FixedPointCodec(-1.0), PreconditionError);
}

TEST(BlockFloatAccumulator, AccumulatesSimpleSum) {
  BlockFloatAccumulator acc(4);  // full scale 16
  acc.add(1.0);
  acc.add(2.0);
  acc.add(3.0);
  EXPECT_FALSE(acc.overflow());
  EXPECT_NEAR(acc.value(), 6.0, 1e-12);
}

TEST(BlockFloatAccumulator, OrderInvarianceIsExact) {
  // The paper's key reproducibility property (Sec 3.4): with a fixed block
  // exponent the sum is bit-identical for any summation order.
  Rng rng(42);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = rng.uniform(-1.0, 1.0) * std::exp(rng.uniform(-20.0, 2.0));

  BlockFloatAccumulator fwd(4), rev(4), shuf(4);
  for (double x : xs) fwd.add(x);
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) rev.add(*it);
  std::vector<double> copy = xs;
  for (std::size_t i = 0; i < copy.size(); ++i) {
    std::swap(copy[i], copy[rng.uniform_index(copy.size())]);
  }
  for (double x : copy) shuf.add(x);

  EXPECT_EQ(fwd.mantissa(), rev.mantissa());
  EXPECT_EQ(fwd.mantissa(), shuf.mantissa());

  // Plain double summation generally differs between orders.
  const double dfwd = std::accumulate(xs.begin(), xs.end(), 0.0);
  const double drev = std::accumulate(xs.rbegin(), xs.rend(), 0.0);
  // (not asserted unequal — just observed; the BFP identity above is the contract)
  (void)dfwd;
  (void)drev;
}

TEST(BlockFloatAccumulator, PartitionedMergeEqualsDirectSum) {
  // Split across "chips" and merge: must be bit-identical to one chip.
  Rng rng(7);
  std::vector<double> xs(512);
  for (auto& x : xs) x = rng.gaussian();

  BlockFloatAccumulator whole(6);
  for (double x : xs) whole.add(x);

  constexpr int kChips = 32;
  std::vector<BlockFloatAccumulator> parts(kChips, BlockFloatAccumulator(6));
  for (std::size_t i = 0; i < xs.size(); ++i) parts[i % kChips].add(xs[i]);
  BlockFloatAccumulator merged(6);
  for (const auto& p : parts) merged.merge(p);

  EXPECT_EQ(whole.mantissa(), merged.mantissa());
}

TEST(BlockFloatAccumulator, AddendOverflowSetsFlag) {
  BlockFloatAccumulator acc(0);  // full scale 1, headroom 2^6
  acc.add(1e6);                  // far above headroom
  EXPECT_TRUE(acc.overflow());
}

TEST(BlockFloatAccumulator, SumOverflowSetsFlag) {
  BlockFloatAccumulator acc(0);
  for (int i = 0; i < 200; ++i) acc.add(30.0);  // creeps past 2^6 headroom
  EXPECT_TRUE(acc.overflow());
}

TEST(BlockFloatAccumulator, MergeRequiresSameExponent) {
  BlockFloatAccumulator a(2), b(3);
  EXPECT_THROW(a.merge(b), PreconditionError);
}

TEST(BlockFloatAccumulator, MergePropagatesOverflow) {
  BlockFloatAccumulator a(0), b(0);
  b.add(1e9);
  ASSERT_TRUE(b.overflow());
  a.merge(b);
  EXPECT_TRUE(a.overflow());
}

TEST(BlockFloatAccumulator, ResolutionDependsOnBlockExponent) {
  // Larger exponent -> coarser grid: tiny addends vanish. With block
  // exponent E the grid spacing is 2^(E - kFracBits).
  const double tiny = std::ldexp(1.0, -50);
  BlockFloatAccumulator fine(0), coarse(20);
  fine.add(tiny);
  coarse.add(tiny);
  EXPECT_GT(fine.value(), 0.0);
  EXPECT_EQ(coarse.value(), 0.0);
}

TEST(ChooseBlockExponent, GivesHeadroomMargin) {
  const int e = choose_block_exponent(1.0, 2);
  BlockFloatAccumulator acc(e);
  acc.add(1.0);
  acc.add(1.0);
  acc.add(1.0);
  EXPECT_FALSE(acc.overflow());
  EXPECT_NEAR(acc.value(), 3.0, 1e-12);
}

TEST(ChooseBlockExponent, HandlesDegenerateInputs) {
  EXPECT_EQ(choose_block_exponent(0.0), 0);
  EXPECT_EQ(choose_block_exponent(-1.0), 0);
}

}  // namespace
}  // namespace g6
