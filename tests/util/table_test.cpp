#include "util/table.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace g6 {
namespace {

TEST(TablePrinter, AlignsColumnsAndRows) {
  std::ostringstream os;
  TablePrinter t(os, {"N", "Gflops"});
  t.print_header();
  t.print_row({"512", "5.02"});
  const std::string out = os.str();
  EXPECT_NE(out.find("N"), std::string::npos);
  EXPECT_NE(out.find("Gflops"), std::string::npos);
  EXPECT_NE(out.find("512"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);  // separator line
}

TEST(TablePrinter, RejectsWrongCellCount) {
  std::ostringstream os;
  TablePrinter t(os, {"a", "b"});
  EXPECT_THROW(t.print_row({"only-one"}), PreconditionError);
}

TEST(TablePrinter, MirrorsCsv) {
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  std::ostringstream os;
  TablePrinter t(os, {"x", "y"});
  t.mirror_csv(path);
  t.print_header();
  t.print_row({"1", "2"});
  t.print_row({"3", "4"});

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
}

TEST(TablePrinter, CsvFailureIsSilent) {
  std::ostringstream os;
  TablePrinter t(os, {"x"});
  t.mirror_csv("/nonexistent-dir/file.csv");  // must not throw
  EXPECT_NO_THROW(t.print_row({"1"}));
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159265358979), "3.14159");
  EXPECT_EQ(TablePrinter::num(1e12), "1e+12");
  EXPECT_EQ(TablePrinter::num(static_cast<long long>(123456)), "123456");
}

TEST(Banner, PrintsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 13");
  EXPECT_EQ(os.str(), "\n=== Figure 13 ===\n");
}

}  // namespace
}  // namespace g6
