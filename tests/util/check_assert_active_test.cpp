// The debug-build counterpart of check_ndebug_test.cpp: with NDEBUG
// undefined, G6_ASSERT behaves exactly like G6_REQUIRE. check.hpp must be
// the first include so its macros are expanded under the forced setting.
#undef NDEBUG
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace g6 {
namespace {

TEST(CheckAssertActive, AssertThrowsOnFalse) {
  EXPECT_THROW(G6_ASSERT(false), PreconditionError);
}

TEST(CheckAssertActive, AssertPassesAndEvaluatesOnTrue) {
  int evaluations = 0;
  EXPECT_NO_THROW(G6_ASSERT(++evaluations > 0));
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckAssertActive, AssertMessageCarriesExpressionAndLocation) {
  try {
    G6_ASSERT(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("check_assert_active_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("precondition failed"), std::string::npos) << what;
  }
}

TEST(CheckAssertActive, RequireMsgFormatsExpressionLocationAndMessage) {
  try {
    G6_REQUIRE_MSG(1 > 2, "block exponent out of range");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    // Full format: "precondition failed: <expr> at <file>:<line> — <msg>".
    EXPECT_NE(what.find("precondition failed: 1 > 2"), std::string::npos) << what;
    EXPECT_NE(what.find("check_assert_active_test.cpp:"), std::string::npos) << what;
    EXPECT_NE(what.find("— block exponent out of range"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace g6
