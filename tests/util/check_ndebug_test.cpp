// G6_ASSERT must compile out entirely under NDEBUG: no throw, and — just
// as important — no evaluation of the asserted expression. This TU forces
// NDEBUG regardless of the build type; check.hpp must be the first
// include so its macros are expanded under the forced setting.
#define NDEBUG 1
#include "util/check.hpp"

#include <gtest/gtest.h>

namespace g6 {
namespace {

TEST(CheckNdebug, AssertDoesNotThrow) {
  EXPECT_NO_THROW(G6_ASSERT(false));
}

TEST(CheckNdebug, AssertDoesNotEvaluateExpression) {
  int evaluations = 0;
  G6_ASSERT(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckNdebug, RequireStaysActive) {
  // G6_REQUIRE guards API preconditions and must survive release builds.
  EXPECT_THROW(G6_REQUIRE(false), PreconditionError);
  int evaluations = 0;
  EXPECT_NO_THROW(G6_REQUIRE(++evaluations > 0));
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace g6
