// grape6_run — command-line simulation driver.
//
// Runs a collisional N-body integration on a chosen engine/integrator and
// writes periodic diagnostics and snapshots; the everyday entry point a
// downstream user would script against.
//
//   grape6_run --model=plummer --n=1024 --t-end=2 --engine=grape
//              --integrator=hermite --snapshot-every=1 --out=run
//
// Models:      plummer | king | uniform | disk | bhbinary | hernquist
// Engines:     direct (CPU double) | grape (emulated hardware)
// Integrators: hermite | ahmad-cohen

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "core/grape6.hpp"

namespace {

using namespace g6;

ParticleSet build_model(const std::string& model, std::size_t n, double w0,
                        Rng& rng) {
  if (model == "plummer") return make_plummer(n, rng);
  if (model == "king") return make_king(n, w0, rng);
  if (model == "uniform") return make_uniform_sphere(n, rng);
  if (model == "disk") return make_planetesimal_disk(n, rng);
  if (model == "bhbinary") return make_plummer_with_bh_binary(n, rng);
  if (model == "hernquist") return make_hernquist(n, rng);
  throw std::runtime_error("unknown --model: " + model);
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const std::string model = cli.get_string("model", "plummer",
                                           "plummer|king|uniform|disk|bhbinary|hernquist");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024, "particle count"));
  const double w0 = cli.get_double("w0", 6.0, "King model depth (model=king)");
  const double t_end = cli.get_double("t-end", 1.0, "end time (Heggie units)");
  const double eps = cli.get_double("eps", 1.0 / 64.0, "Plummer softening");
  const double eta = cli.get_double("eta", 0.02, "Aarseth accuracy parameter");
  const std::string engine_name =
      cli.get_string("engine", "direct", "direct|grape");
  const std::string integ_name =
      cli.get_string("integrator", "hermite", "hermite|ahmad-cohen");
  const auto boards = static_cast<std::size_t>(
      cli.get_int("boards", 1, "GRAPE boards (engine=grape)"));
  const double snap_every =
      cli.get_double("snapshot-every", 0.0, "snapshot interval (0 = off)");
  const std::string out = cli.get_string("out", "grape6_run", "output prefix");
  const auto seed = static_cast<unsigned>(cli.get_int("seed", 1, "RNG seed"));
  const auto threads =
      static_cast<unsigned>(cli.get_int("threads", 1, "CPU force threads"));
  const std::string metrics_out =
      cli.get_string("metrics-out", "", "write metrics JSON here (\"\" = off)");
  const std::string trace_out = cli.get_string(
      "trace-out", "", "write Chrome trace JSON here (\"\" = off)");
  if (cli.finish()) return 0;

  if (!trace_out.empty()) obs::Tracer::global().enable();

  Rng rng(seed);
  const ParticleSet initial = build_model(model, n, w0, rng);
  const double e0 = compute_energy(initial.bodies(), eps).total();
  obs::log_info("model=%s N=%zu eps=%g eta=%g engine=%s integrator=%s",
                model.c_str(), initial.size(), eps, eta, engine_name.c_str(),
                integ_name.c_str());
  std::printf("E0=%.8f virial=%.4f\n", e0,
              compute_energy(initial.bodies(), eps).virial_ratio());

  std::unique_ptr<ForceEngine> engine;
  GrapeForceEngine* grape = nullptr;
  if (engine_name == "direct") {
    engine = std::make_unique<DirectForceEngine>(eps, threads);
  } else if (engine_name == "grape") {
    MachineConfig mc = MachineConfig::single_host();
    mc.boards_per_host = boards;
    auto g = std::make_unique<GrapeForceEngine>(mc, NumberFormats{}, eps);
    grape = g.get();
    engine = std::move(g);
  } else {
    throw std::runtime_error("unknown --engine: " + engine_name);
  }

  std::unique_ptr<HermiteIntegrator> hermite;
  std::unique_ptr<AhmadCohenIntegrator> ac;
  if (integ_name == "hermite") {
    HermiteConfig cfg;
    cfg.eta = eta;
    hermite = std::make_unique<HermiteIntegrator>(initial, *engine, cfg);
  } else if (integ_name == "ahmad-cohen") {
    AhmadCohenConfig cfg;
    cfg.eta_irr = eta;
    ac = std::make_unique<AhmadCohenIntegrator>(initial, *engine, cfg);
  } else {
    throw std::runtime_error("unknown --integrator: " + integ_name);
  }

  const auto now_time = [&] { return hermite ? hermite->time() : ac->time(); };
  const auto state = [&] {
    return hermite ? hermite->state_at_current_time() : ac->state_at_current_time();
  };
  const auto run_to = [&](double t) {
    if (hermite) {
      hermite->evolve(t);
    } else {
      ac->evolve(t);
    }
  };

  std::printf("\n%10s %14s %12s %12s %10s\n", "t", "steps", "dE/E", "virial",
              "r_h");
  const double report_dt = t_end / 8.0;
  int snap_id = 0;
  double next_snap = snap_every > 0.0 ? snap_every : 2.0 * t_end;
  for (int k = 1; k <= 8; ++k) {
    run_to(t_end * k / 8.0);
    const ParticleSet s = state();
    const EnergyReport e = compute_energy(s.bodies(), eps);
    const double fr[] = {0.5};
    const double rh = lagrangian_radii(s.bodies(), fr)[0];
    const unsigned long long steps =
        hermite ? hermite->total_steps() : ac->irregular_steps();
    std::printf("%10.4f %14llu %12.3e %12.4f %10.4f\n", now_time(), steps,
                (e.total() - e0) / e0, e.virial_ratio(), rh);
    while (now_time() >= next_snap - 1e-12) {
      const std::string path = out + "_" + std::to_string(snap_id++) + ".snap";
      save_snapshot(path, s, now_time());
      std::printf("  wrote %s\n", path.c_str());
      next_snap += snap_every;
    }
  }
  (void)report_dt;

  if (grape != nullptr) {
    const GrapeHostStats& st = grape->stats();
    std::printf("\nGRAPE virtual time: pipelines %.3f s, DMA %.3f s, "
                "%llu passes, %llu exponent retries\n",
                st.grape_seconds, st.dma_seconds,
                static_cast<unsigned long long>(st.passes),
                static_cast<unsigned long long>(st.retries));
  }
  if (ac) {
    std::printf("Ahmad-Cohen: %llu irregular / %llu regular steps, "
                "mean neighbors %.1f\n",
                ac->irregular_steps(), ac->regular_steps(),
                ac->mean_neighbor_count());
  }
  const ParticleSet final_state = state();
  save_snapshot(out + "_final.snap", final_state, now_time());
  std::printf("wrote %s_final.snap\n", out.c_str());

  // Eq 10 split of the run just finished (always accumulated; zero-cost
  // when compiled with GRAPE6_TELEMETRY=OFF).
  const obs::Eq10Accumulator& eq10 = hermite ? hermite->eq10() : ac->eq10();
  if (eq10.total_s > 0.0) {
    std::printf("\n");
    eq10.print(stdout);
  }
  obs::export_metrics_json(metrics_out, &eq10);
  obs::export_chrome_trace(trace_out);
  return 0;
} catch (const std::exception& e) {
  g6::obs::log_error("%s", e.what());
  return 1;
}
