// grape6_run — command-line simulation driver.
//
// Runs a collisional N-body integration on a chosen engine/integrator and
// writes periodic diagnostics and snapshots; the everyday entry point a
// downstream user would script against.
//
//   grape6_run --model=plummer --n=1024 --t-end=2 --engine=grape
//              --integrator=hermite --snapshot-every=1 --out=run
//
// Models:      plummer | king | uniform | disk | bhbinary | hernquist
// Engines:     direct (CPU double) | grape (emulated hardware)
// Integrators: hermite | ahmad-cohen
//
// Reliability (engine=grape, integrator=hermite; docs/RELIABILITY.md):
//   --fault-plan=plan.json   inject the faults described in the plan
//   --fault-rate=1e-3        shorthand: uniform transient rates
//   --vote=2                 duplicate-pass voting (catches compute glitches)
//   --selftest-every=64      periodic chip self-test (blocksteps)
//   --checkpoint=run.ckpt    atomic checkpoint at every report boundary
//   --resume=run.ckpt        continue a checkpointed run bit-identically

#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "core/grape6.hpp"

namespace {

using namespace g6;

ParticleSet build_model(const std::string& model, std::size_t n, double w0,
                        Rng& rng) {
  if (model == "plummer") return make_plummer(n, rng);
  if (model == "king") return make_king(n, w0, rng);
  if (model == "uniform") return make_uniform_sphere(n, rng);
  if (model == "disk") return make_planetesimal_disk(n, rng);
  if (model == "bhbinary") return make_plummer_with_bh_binary(n, rng);
  if (model == "hernquist") return make_hernquist(n, rng);
  throw std::runtime_error("unknown --model: " + model);
}

void print_fault_summary(const fault::FaultInjector& inj,
                         const GrapeHostStats& st) {
  const fault::FaultInjector::Counts& c = inj.counts();
  std::printf("\nfault summary (%s)\n", inj.plan().describe().c_str());
  std::printf("  injected : %llu j-mem flips, %llu i-packet corruptions, "
              "%llu compute glitches, %llu stuck passes, %llu hard chips\n",
              static_cast<unsigned long long>(c.jmem_flips),
              static_cast<unsigned long long>(c.ipacket_corruptions),
              static_cast<unsigned long long>(c.compute_glitches),
              static_cast<unsigned long long>(c.stuck_passes),
              static_cast<unsigned long long>(c.hard_activations));
  std::printf("  link     : %llu drops, %llu latency spikes\n",
              static_cast<unsigned long long>(c.link_drops),
              static_cast<unsigned long long>(c.link_spikes));
  std::printf("  recovered: %llu j-mem rewrites, %llu packet retransmits, "
              "%llu vote retries, %llu remaps\n",
              static_cast<unsigned long long>(st.jmem_rewrites),
              static_cast<unsigned long long>(st.packet_retransmits),
              static_cast<unsigned long long>(st.vote_retries),
              static_cast<unsigned long long>(st.remaps));
  std::printf("  health   : %llu self-tests, %llu chips disabled, "
              "%.3g s virtual backoff\n",
              static_cast<unsigned long long>(st.selftests),
              static_cast<unsigned long long>(st.dead_chips),
              st.backoff_seconds);
  for (const fault::FaultEvent& ev : inj.events()) {
    std::printf("  t=%-10.4g %s\n", ev.time, ev.what.c_str());
  }
  if (inj.dropped_events() > 0) {
    std::printf("  (+%llu events not logged)\n",
                static_cast<unsigned long long>(inj.dropped_events()));
  }
}

// Visible to the catch blocks of main: a HardFault / RetryExhausted exit
// still dumps the flight-recorder ring.
std::string g_flightrec_out;  // NOLINT(cert-err58-cpp) empty-string ctor

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const std::string model = cli.get_string("model", "plummer",
                                           "plummer|king|uniform|disk|bhbinary|hernquist");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024, "particle count"));
  const double w0 = cli.get_double("w0", 6.0, "King model depth (model=king)");
  const double t_end = cli.get_double("t-end", 1.0, "end time (Heggie units)");
  const double eps = cli.get_double("eps", 1.0 / 64.0, "Plummer softening");
  const double eta = cli.get_double("eta", 0.02, "Aarseth accuracy parameter");
  const std::string engine_name =
      cli.get_string("engine", "direct", "direct|grape");
  const std::string integ_name =
      cli.get_string("integrator", "hermite", "hermite|ahmad-cohen");
  const auto boards = static_cast<std::size_t>(
      cli.get_int("boards", 1, "GRAPE boards (engine=grape)"));
  const double snap_every =
      cli.get_double("snapshot-every", 0.0, "snapshot interval (0 = off)");
  const std::string out = cli.get_string("out", "grape6_run", "output prefix");
  const auto seed = static_cast<unsigned>(cli.get_int("seed", 1, "RNG seed"));
  const auto threads = static_cast<unsigned>(cli.get_int(
      "threads", 0, "exec pool threads (0 = auto: $G6_EXEC_THREADS, then "
                    "hardware)"));
  const std::string metrics_out =
      cli.get_string("metrics-out", "", "write metrics JSON here (\"\" = off)");
  const std::string trace_out = cli.get_string(
      "trace-out", "", "write Chrome trace JSON here (\"\" = off)");
  g_flightrec_out = cli.get_string(
      "flightrec-out", "",
      "write flight-recorder JSON here, also on fault (\"\" = off)");
  const std::string fault_plan_path = cli.get_string(
      "fault-plan", "", "JSON fault plan (docs/RELIABILITY.md)");
  const double fault_rate = cli.get_double(
      "fault-rate", 0.0, "uniform transient fault rate (shorthand plan)");
  const auto fault_seed = static_cast<std::uint64_t>(
      cli.get_int("fault-seed", 0x6701, "fault stream seed"));
  const int vote = static_cast<int>(
      cli.get_int("vote", 1, "duplicate force passes for voting (1 = off)"));
  const int selftest_every = static_cast<int>(cli.get_int(
      "selftest-every", 0, "chip self-test interval in blocksteps (0 = off)"));
  const std::string ckpt_path = cli.get_string(
      "checkpoint", "", "checkpoint file, written at report boundaries");
  const std::string resume_path =
      cli.get_string("resume", "", "resume from this checkpoint");
  if (cli.finish()) return 0;

  if (!trace_out.empty()) obs::Tracer::global().enable();

  // One pool for every engine and cluster layer (docs/EXECUTION.md);
  // results are bit-identical for any setting, 1 runs fully serial.
  exec::ThreadPool::set_global_threads(threads);

  // Fault plan: explicit file > inline rate > environment (G6_FAULT_PLAN).
  fault::FaultPlan plan;
  if (!fault_plan_path.empty()) {
    plan = fault::FaultPlan::from_file(fault_plan_path);
  } else if (fault_rate > 0.0) {
    plan = fault::FaultPlan::uniform_transients(fault_rate, fault_seed);
  } else {
    plan = fault::FaultPlan::from_env();
  }
  const bool want_fault = plan.any() || vote > 1 || selftest_every > 0;
  if (want_fault && engine_name != "grape") {
    throw std::runtime_error("fault injection requires --engine=grape");
  }
  const bool want_ckpt = !ckpt_path.empty() || !resume_path.empty();
  if (want_ckpt && integ_name != "hermite") {
    throw std::runtime_error("--checkpoint/--resume require --integrator=hermite");
  }

  // Configuration fingerprint: everything that shapes the dynamics (not
  // t-end — resuming with a longer horizon is the point of checkpoints).
  std::ostringstream tag_os;
  tag_os << "model=" << model << " n=" << n << " w0=" << w0 << " eps=" << eps
         << " eta=" << eta << " engine=" << engine_name
         << " integrator=" << integ_name << " boards=" << boards
         << " seed=" << seed << " fault=[" << plan.describe() << "]"
         << " vote=" << vote;
  const std::string run_tag = tag_os.str();

  std::optional<fault::RunCheckpoint> resume;
  if (!resume_path.empty()) {
    resume = fault::load_checkpoint(resume_path);
    if (resume->run_tag != run_tag) {
      throw std::runtime_error("checkpoint tag mismatch:\n  file: " +
                               resume->run_tag + "\n  now:  " + run_tag);
    }
    obs::log_info("resuming from %s at t=%.6g", resume_path.c_str(),
                  resume->state.time);
  }

  std::unique_ptr<ForceEngine> engine;
  GrapeForceEngine* grape = nullptr;
  std::shared_ptr<fault::FaultInjector> injector;
  if (engine_name == "direct") {
    engine = std::make_unique<DirectForceEngine>(eps);
  } else if (engine_name == "grape") {
    MachineConfig mc = MachineConfig::single_host();
    mc.boards_per_host = boards;
    auto g = std::make_unique<GrapeForceEngine>(mc, NumberFormats{}, eps);
    if (want_fault) {
      injector = std::make_shared<fault::FaultInjector>(plan);
      fault::DetectionConfig det;
      det.vote_passes = vote;
      det.selftest_interval = selftest_every;
      g->enable_fault_tolerance(injector, det);
      obs::log_info("fault tolerance on: %s", plan.describe().c_str());
    }
    grape = g.get();
    engine = std::move(g);
  } else {
    throw std::runtime_error("unknown --engine: " + engine_name);
  }

  double e0 = 0.0;
  std::unique_ptr<HermiteIntegrator> hermite;
  std::unique_ptr<AhmadCohenIntegrator> ac;
  int snap_id = 0;
  double next_snap = snap_every > 0.0 ? snap_every : 2.0 * t_end;
  if (resume) {
    HermiteConfig cfg;
    cfg.eta = eta;
    hermite = std::make_unique<HermiteIntegrator>(resume->state, *engine, cfg);
    // The exponent cache must come back AFTER construction: load_particles
    // inside the restore constructor resets it.
    if (grape != nullptr) grape->exponents() = resume->exponents;
    e0 = resume->e0;
    snap_id = resume->snap_id;
    next_snap = resume->next_snap;
    std::printf("resumed t=%.6g E0=%.8f\n", hermite->time(), e0);
  } else {
    Rng rng(seed);
    const ParticleSet initial = build_model(model, n, w0, rng);
    e0 = compute_energy(initial.bodies(), eps).total();
    obs::log_info("model=%s N=%zu eps=%g eta=%g engine=%s integrator=%s",
                  model.c_str(), initial.size(), eps, eta, engine_name.c_str(),
                  integ_name.c_str());
    std::printf("E0=%.8f virial=%.4f\n", e0,
                compute_energy(initial.bodies(), eps).virial_ratio());
    if (integ_name == "hermite") {
      HermiteConfig cfg;
      cfg.eta = eta;
      hermite = std::make_unique<HermiteIntegrator>(initial, *engine, cfg);
    } else if (integ_name == "ahmad-cohen") {
      AhmadCohenConfig cfg;
      cfg.eta_irr = eta;
      ac = std::make_unique<AhmadCohenIntegrator>(initial, *engine, cfg);
    } else {
      throw std::runtime_error("unknown --integrator: " + integ_name);
    }
  }

  const auto now_time = [&] { return hermite ? hermite->time() : ac->time(); };
  const auto state = [&] {
    return hermite ? hermite->state_at_current_time() : ac->state_at_current_time();
  };
  const auto run_to = [&](double t) {
    if (hermite) {
      hermite->evolve(t);
    } else {
      ac->evolve(t);
    }
  };
  const auto write_ckpt = [&] {
    fault::RunCheckpoint cp;
    cp.run_tag = run_tag;
    cp.state = hermite->save_state();
    if (grape != nullptr) cp.exponents = grape->exponents();
    cp.e0 = e0;
    cp.next_snap = next_snap;
    cp.snap_id = snap_id;
    fault::save_checkpoint(ckpt_path, cp);
    std::printf("  checkpoint %s (t=%.6g)\n", ckpt_path.c_str(), now_time());
  };

  std::printf("\n%10s %14s %12s %12s %10s\n", "t", "steps", "dE/E", "virial",
              "r_h");
  for (int k = 1; k <= 8; ++k) {
    const double target = t_end * k / 8.0;
    if (target <= now_time()) continue;  // already past (resumed runs)
    run_to(target);
    const ParticleSet s = state();
    const EnergyReport e = compute_energy(s.bodies(), eps);
    const double fr[] = {0.5};
    const double rh = lagrangian_radii(s.bodies(), fr)[0];
    const unsigned long long steps =
        hermite ? hermite->total_steps() : ac->irregular_steps();
    std::printf("%10.4f %14llu %12.3e %12.4f %10.4f\n", now_time(), steps,
                (e.total() - e0) / e0, e.virial_ratio(), rh);
    while (snap_every > 0.0 && now_time() >= next_snap - 1e-12) {
      const std::string path = out + "_" + std::to_string(snap_id++) + ".snap";
      save_snapshot(path, s, now_time());
      std::printf("  wrote %s\n", path.c_str());
      next_snap += snap_every;
    }
    if (!ckpt_path.empty() && hermite) write_ckpt();
  }

  if (grape != nullptr) {
    const GrapeHostStats& st = grape->stats();
    std::printf("\nGRAPE virtual time: pipelines %.3f s, DMA %.3f s, "
                "%llu passes, %llu exponent retries\n",
                st.grape_seconds, st.dma_seconds,
                static_cast<unsigned long long>(st.passes),
                static_cast<unsigned long long>(st.retries));
  }
  if (ac) {
    std::printf("Ahmad-Cohen: %llu irregular / %llu regular steps, "
                "mean neighbors %.1f\n",
                ac->irregular_steps(), ac->regular_steps(),
                ac->mean_neighbor_count());
  }
  if (injector && grape != nullptr) {
    print_fault_summary(*injector, grape->stats());
  }
  const ParticleSet final_state = state();
  save_snapshot(out + "_final.snap", final_state, now_time());
  std::printf("wrote %s_final.snap\n", out.c_str());

  // Eq 10 split of the run just finished (always accumulated; zero-cost
  // when compiled with GRAPE6_TELEMETRY=OFF).
  const obs::Eq10Accumulator& eq10 = hermite ? hermite->eq10() : ac->eq10();
  if (eq10.total_s > 0.0) {
    std::printf("\n");
    eq10.print(stdout);
  }
  obs::export_metrics_json(metrics_out, &eq10);
  obs::export_chrome_trace(trace_out);
  obs::export_flight_json(g_flightrec_out);
  return 0;
} catch (const g6::fault::HardFault& e) {
  g6::obs::log_error("unrecoverable hardware fault: %s", e.what());
  // The ring holds the detection/retry trail that led here — exactly what
  // a chaos-run post-mortem needs.
  g6::obs::export_flight_json(g_flightrec_out);
  return 2;
} catch (const std::exception& e) {
  g6::obs::log_error("%s", e.what());
  g6::obs::export_flight_json(g_flightrec_out);
  return 1;
}
