// grape6_serve — multi-tenant serving driver (docs/SERVING.md).
//
// Reads a JSON job manifest (schema grape6-serve-manifest-v1), submits
// every job through the admission controller, time-shares the emulated
// machine across the admitted ones, and writes per-job final snapshots
// plus a per-job + aggregate report.
//
//   grape6_serve --manifest=jobs.json --out=serve
//                --report-out=serve_report.json
//
// Durable mode (docs/RELIABILITY.md "Serving durability"):
//
//   grape6_serve --manifest=jobs.json --journal=serve.wal
//                --checkpoint-dir=ckpts --checkpoint-every=1
//
// records every job lifecycle transition in an fsync'd write-ahead
// journal and checkpoints running jobs at quantum boundaries. After a
// crash (kill -9 included),
//
//   grape6_serve --recover=serve.wal --out=serve
//
// replays the journal, resumes in-flight jobs from their latest valid
// checkpoint and finishes the run — final snapshots are bit-identical
// to an uninterrupted run. SIGTERM triggers a graceful drain: running
// jobs are checkpointed, a `drained` record is journaled, and the
// process exits cleanly (resume later with --recover).
//
// Outputs:
//   <out>_<job>.snap       final snapshot of each completed job; the
//                          serve_identity ctest cmp's these against
//                          standalone runs of the same specs
//   --report-out=...       JSON report, schema grape6-serve-report-v1
//   --metrics-out=...      global metrics JSON (serve.* instruments plus
//                          the per-job "scopes" attribution section)
//   --trace-out=...        Chrome trace (serve.round / serve.job spans;
//                          spans carry an args.job owner id)
//   --timeseries-out=...   per-round time series (grape6-timeseries-v1)
//   --flightrec-out=...    flight-recorder ring (grape6-flightrec-v1);
//                          also dumped on a driver error so chaos-run
//                          post-mortems survive the crash
//
// Board deaths can come from the manifest ("service.board_deaths") or
// from the board-level hard failures of a fault plan (--fault-plan),
// mapped onto scheduler rounds — either way a death under a lease means
// revocation and re-queue, not process death.
//
// Exit codes: 0 = every job completed; 3 = some jobs failed, were
// quarantined or rejected (their reports say why); 1 = driver error
// (bad manifest, malformed journal, etc.).

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/grape6.hpp"
#include "obs/json.hpp"
#include "util/fileio.hpp"

namespace {

using namespace g6;

void write_eq10(std::ostream& os, const obs::Eq10Accumulator& eq) {
  os << "{\"host_s\":" << eq.host_s << ",\"dma_s\":" << eq.dma_s
     << ",\"net_s\":" << eq.net_s << ",\"grape_s\":" << eq.grape_s
     << ",\"total_s\":" << eq.total_s << ",\"steps\":" << eq.steps
     << ",\"blocksteps\":" << eq.blocksteps << "}";
}

void write_report(const std::string& path, const serve::GrapeService& service,
                  const std::vector<std::pair<serve::JobId, std::string>>&
                      snapshots) {
  std::ostringstream os;
  os.precision(17);

  const serve::ServiceStats& st = service.stats();
  os << "{\n  \"schema\": \"grape6-serve-report-v1\",\n  \"service\": {"
     << "\"boards\": " << service.config().pool_boards()
     << ", \"healthy_boards\": " << service.healthy_boards()
     << ", \"rounds\": " << st.rounds << ", \"submitted\": " << st.submitted
     << ", \"rejected\": " << st.rejected
     << ", \"completed\": " << st.completed << ", \"failed\": " << st.failed
     << ", \"quarantined\": " << st.quarantined
     << ", \"preemptions\": " << st.preemptions
     << ", \"revocations\": " << st.revocations
     << ", \"requeues\": " << st.requeues
     << ", \"resizes\": " << st.resizes
     << ", \"boards_dead\": " << st.boards_dead
     << ", \"makespan_s\": " << st.makespan_s << ", \"eq10\": ";
  write_eq10(os, st.eq10);
  os << "},\n  \"jobs\": [\n";

  const std::vector<serve::JobId> ids = service.jobs();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const serve::JobReport r = service.report(ids[i]);
    std::string snap;
    for (const auto& [id, file] : snapshots) {
      if (id == r.id) snap = file;
    }
    os << "    {\"id\": " << r.id << ", \"name\": \""
       << obs::json_escape(r.name) << "\", \"priority\": \""
       << serve::priority_name(r.priority) << "\", \"state\": \""
       << serve::job_state_name(r.state) << "\", \"reject_reason\": \""
       << serve::reject_reason_name(r.reject_reason) << "\", \"message\": \""
       << obs::json_escape(r.message) << "\",\n     \"n\": " << r.n
       << ", \"boards\": " << r.boards << ", \"boards_now\": " << r.boards_now
       << ", \"resizes\": " << r.resizes << ", \"t_end\": " << r.t_end
       << ", \"t_reached\": " << r.t_reached << ", \"steps\": " << r.steps
       << ", \"blocksteps\": " << r.blocksteps
       << ", \"quanta\": " << r.quanta
       << ", \"preemptions\": " << r.preemptions
       << ", \"revocations\": " << r.revocations
       << ", \"requeues\": " << r.requeues
       << ", \"failures\": " << r.failures
       << ",\n     \"wait_s\": " << r.wait_s << ", \"run_s\": " << r.run_s
       << ", \"grape_virtual_s\": " << r.grape_virtual_s
       << ", \"e0\": " << r.e0 << ", \"e_final\": " << r.e_final
       << ", \"energy_error\": " << r.energy_error()
       << ",\n     \"snapshot\": \"" << obs::json_escape(snap)
       << "\", \"eq10\": ";
    write_eq10(os, r.eq10);
    os << "}" << (i + 1 < ids.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  const std::string body = os.str();
  write_file_atomic(path, [&body](std::ostream& f) { f << body; });
}

void print_job_table(const serve::GrapeService& service) {
  std::printf("\n%-4s %-14s %-12s %-12s %6s %7s %7s %6s %6s %9s\n", "id",
              "name", "priority", "state", "n", "boards", "quanta", "rev",
              "fail", "dE/E");
  for (serve::JobId id : service.jobs()) {
    const serve::JobReport r = service.report(id);
    std::printf("%-4llu %-14s %-12s %-12s %6zu %7zu %7llu %6llu %6d %9.2e\n",
                static_cast<unsigned long long>(r.id), r.name.c_str(),
                serve::priority_name(r.priority),
                serve::job_state_name(r.state), r.n, r.boards,
                static_cast<unsigned long long>(r.quanta),
                static_cast<unsigned long long>(r.revocations), r.failures,
                r.energy_error());
    if (!r.message.empty()) {
      std::printf("     `- %s\n", r.message.c_str());
    }
  }
}

// Visible to the catch block of main: a fatal error (HardFault escaping
// the scheduler, bad manifest, I/O) still dumps the flight ring.
std::string g_flightrec_out;  // NOLINT(cert-err58-cpp) empty-string ctor

// SIGTERM → graceful drain. The handler only flips the flag; the
// scheduler polls it between rounds, checkpoints running jobs, journals
// a `drained` record and returns from run_until_drained.
std::atomic<bool> g_stop{false};

extern "C" void handle_sigterm(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const std::string manifest_path = cli.get_string(
      "manifest", "", "job manifest JSON (grape6-serve-manifest-v1)");
  const std::string recover_path = cli.get_string(
      "recover", "",
      "recover from this write-ahead journal instead of --manifest");
  const std::string out =
      cli.get_string("out", "grape6_serve", "snapshot prefix");
  const bool snapshots =
      cli.get_bool("snapshots", true, "write <out>_<job>.snap per job");
  const std::string journal_path = cli.get_string(
      "journal", "",
      "write-ahead job journal (grape6-serve-journal-v1; \"\" = off)");
  const std::string checkpoint_dir = cli.get_string(
      "checkpoint-dir", "",
      "job checkpoint directory (default: <journal>.ckpts)");
  const auto checkpoint_every = cli.get_int(
      "checkpoint-every", 1,
      "checkpoint running jobs every N quanta (0 = final only)");
  const std::string report_out = cli.get_string(
      "report-out", "", "write serve report JSON here (\"\" = off)");
  const std::string metrics_out =
      cli.get_string("metrics-out", "", "write metrics JSON here (\"\" = off)");
  const std::string trace_out = cli.get_string(
      "trace-out", "", "write Chrome trace JSON here (\"\" = off)");
  const std::string timeseries_out = cli.get_string(
      "timeseries-out", "",
      "write per-round time-series JSON here (\"\" = off)");
  g_flightrec_out = cli.get_string(
      "flightrec-out", "",
      "write flight-recorder JSON here, also on error (\"\" = off)");
  const std::string fault_plan_path = cli.get_string(
      "fault-plan", "", "board deaths from this fault plan's hard failures");
  const auto threads = static_cast<unsigned>(cli.get_int(
      "threads", 0, "exec pool threads (0 = auto: $G6_EXEC_THREADS, then "
                    "hardware)"));
  if (cli.finish()) return 0;

  if (manifest_path.empty() == recover_path.empty()) {
    std::fprintf(stderr,
                 "error: exactly one of --manifest and --recover is "
                 "required (see --help)\n");
    return 1;
  }
  if (threads > 0) exec::ThreadPool::set_global_threads(threads);
  if (!trace_out.empty()) obs::Tracer::global().enable();
  std::signal(SIGTERM, handle_sigterm);

  std::unique_ptr<serve::GrapeService> owned;
  if (recover_path.empty()) {
    serve::Manifest manifest = serve::load_manifest(manifest_path);
    if (!fault_plan_path.empty()) {
      const fault::FaultPlan plan =
          fault::FaultPlan::from_file(fault_plan_path);
      for (const serve::BoardDeath& d :
           serve::board_deaths_from_plan(plan)) {
        manifest.service.board_deaths.push_back(d);
      }
    }
    if (!journal_path.empty()) {
      manifest.service.durability.journal_path = journal_path;
      manifest.service.durability.checkpoint_dir =
          checkpoint_dir.empty() ? journal_path + ".ckpts" : checkpoint_dir;
      manifest.service.durability.checkpoint_every_quanta =
          static_cast<std::uint64_t>(checkpoint_every < 0 ? 0
                                                          : checkpoint_every);
      std::filesystem::create_directories(
          manifest.service.durability.checkpoint_dir);
    }
    manifest.service.stop_flag = &g_stop;

    owned = std::make_unique<serve::GrapeService>(manifest.service);
    serve::GrapeService& service = *owned;
    serve::ServeClient client = service.client();

    std::printf("grape6_serve: %zu-board machine, %zu job(s), quantum %zu "
                "blocksteps%s\n",
                service.config().pool_boards(), manifest.jobs.size(),
                service.config().quantum_blocksteps,
                journal_path.empty() ? "" : ", durable");

    for (const serve::JobSpec& spec : manifest.jobs) {
      const serve::SubmitResult r = client.submit(spec);
      if (!r) {
        std::printf("  rejected '%s' (%s): %s\n", spec.name.c_str(),
                    serve::reject_reason_name(r.reason), r.message.c_str());
      }
    }
    service.drain();
  } else {
    serve::RecoveryInfo info;
    owned = serve::GrapeService::recover(recover_path, &info, &g_stop);
    std::printf(
        "grape6_serve: recovered from %s: %zu journal record(s)%s, "
        "%zu job(s) live (%zu from checkpoint), %zu already terminal, "
        "resuming at round %llu\n",
        recover_path.c_str(), info.journal_records,
        info.torn_tail ? " (torn tail dropped)" : "", info.jobs_restored,
        info.jobs_resumed_from_checkpoint, info.jobs_already_terminal,
        static_cast<unsigned long long>(info.resume_round));
  }

  serve::GrapeService& service = *owned;
  service.run_until_drained();
  const bool drained_early = g_stop.load(std::memory_order_relaxed);

  std::vector<std::pair<serve::JobId, std::string>> snapshot_files;
  if (snapshots && !drained_early) {
    for (serve::JobId id : service.jobs()) {
      if (service.state(id) != serve::JobState::kCompleted) continue;
      double t = 0.0;
      const ParticleSet& final = service.final_state(id, &t);
      const std::string file = out + "_" + service.report(id).name + ".snap";
      save_snapshot(file, final, t);
      snapshot_files.emplace_back(id, file);
    }
  }

  print_job_table(service);
  const serve::ServiceStats& st = service.stats();
  std::printf("\nservice: %llu rounds, %llu completed, %llu failed, %llu "
              "quarantined, %llu rejected, %llu preemptions, %llu "
              "revocations, %zu board(s) dead, makespan %.3f s\n",
              static_cast<unsigned long long>(st.rounds),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.failed),
              static_cast<unsigned long long>(st.quarantined),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.preemptions),
              static_cast<unsigned long long>(st.revocations), st.boards_dead,
              st.makespan_s);
  if (drained_early) {
    std::printf("service: drained on SIGTERM; resume with --recover\n");
  }

  if (!report_out.empty()) write_report(report_out, service, snapshot_files);
  obs::export_metrics_json(metrics_out, &st.eq10);
  obs::export_chrome_trace(trace_out);
  obs::export_timeseries_json(timeseries_out);
  obs::export_flight_json(g_flightrec_out);

  const bool all_completed =
      st.failed == 0 && st.rejected == 0 && st.quarantined == 0;
  return all_completed ? 0 : 3;
} catch (const std::exception& e) {
  std::fprintf(stderr, "grape6_serve: error: %s\n", e.what());
  obs::export_flight_json(g_flightrec_out);
  return 1;
}
