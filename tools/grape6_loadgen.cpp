// grape6_loadgen — many-client load generator for grape6_served
// (docs/SERVING.md, "Wire protocol").
//
// Opens C connections to a running daemon, submits a job stream across
// them (a manifest's jobs, or --jobs=N synthetic ones with mixed
// priorities and autoscaling lease bounds), subscribes for streamed
// events, and then verifies the serving contract end to end:
//
//   * every accepted job produces EXACTLY ONE terminal event (a
//     duplicate or a missing terminal is a protocol bug -> exit 1);
//   * rejected submissions carry an explicit reason (admission
//     backpressure travels verbatim over the wire);
//   * with --snapshots-out, final snapshots stream back and are written
//     with the same writer a local run uses — byte-identical files.
//
// The report (--report-out) records jobs/hour and the p50/p95/p99 wait
// SLO percentiles the bench harness regresses on.
//
//   grape6_loadgen --connect=unix:/tmp/grape6.sock --jobs=100
//                  --connections=8 --drain --report-out=load.json
//
// Exit codes: 0 = all accepted jobs completed and the exactly-once
// check held; 3 = jobs failed / were rejected or quarantined; 1 =
// driver or protocol error.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/grape6.hpp"
#include "obs/json.hpp"
#include "util/fileio.hpp"

namespace {

using namespace g6;

/// Deterministic synthetic mix: small fast jobs, ~1/4 interactive,
/// ~1/3 carrying autoscaling lease bounds, seeds all distinct.
serve::JobSpec synthetic_job(std::size_t i) {
  serve::JobSpec spec;
  std::ostringstream name;
  name << "load-" << i;
  spec.name = name.str();
  spec.n = 48 + 16 * (i % 3);
  spec.t_end = 0.0625;
  spec.eta = 0.02;
  spec.seed = 1000 + static_cast<std::uint64_t>(i);
  spec.boards = 1;
  if (i % 4 == 1) spec.priority = serve::Priority::kInteractive;
  if (i % 3 == 2) {
    spec.boards_min = 1;
    spec.boards_max = 2;
  }
  return spec;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double num_at(const obs::JsonValue& j, const char* key) {
  const obs::JsonValue* v = j.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : 0.0;
}

std::string str_at(const obs::JsonValue& j, const char* key) {
  const obs::JsonValue* v = j.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const std::string connect = cli.get_string(
      "connect", "unix:grape6_served.sock",
      "daemon endpoint (unix:<path> or tcp:<host>:<port>)");
  const std::string manifest_path = cli.get_string(
      "manifest", "", "submit this manifest's jobs instead of --jobs");
  const auto jobs_n =
      cli.get_int("jobs", 10, "synthetic jobs to submit (with no --manifest)");
  const auto connections =
      cli.get_int("connections", 4, "client connections to spread load over");
  const std::string snapshots_out = cli.get_string(
      "snapshots-out", "",
      "prefix for streamed final snapshots (<prefix>_<name>.snap; "
      "\"\" = don't request snapshots)");
  const std::string report_out = cli.get_string(
      "report-out", "", "write loadgen report JSON here (\"\" = off)");
  const bool drain = cli.get_bool(
      "drain", true, "send a drain request so the daemon exits when done");
  if (cli.finish()) return 0;

  if (connections < 1) {
    std::fprintf(stderr, "error: --connections must be >= 1\n");
    return 1;
  }

  std::vector<serve::JobSpec> specs;
  if (!manifest_path.empty()) {
    specs = serve::load_manifest(manifest_path).jobs;
  } else {
    for (int i = 0; i < jobs_n; ++i) {
      specs.push_back(synthetic_job(static_cast<std::size_t>(i)));
    }
  }

  // Connection 0 is the subscriber; the rest only submit. The
  // round-robin spread is what exercises many concurrent clients on the
  // server's poll loop.
  std::vector<std::unique_ptr<wire::RemoteClient>> clients;
  for (int i = 0; i < connections; ++i) {
    clients.push_back(std::make_unique<wire::RemoteClient>(connect));
  }
  clients[0]->subscribe(/*snapshots=*/!snapshots_out.empty(),
                        /*all_jobs=*/true);

  const double t0 = obs::monotonic_seconds();
  std::size_t accepted = 0, rejected = 0;
  std::map<serve::JobId, std::string> pending;  // accepted, not yet terminal
  for (std::size_t i = 0; i < specs.size(); ++i) {
    wire::RemoteClient& c = *clients[i % clients.size()];
    const serve::SubmitResult r = c.submit(specs[i]);
    if (r) {
      ++accepted;
      pending[r.id] = specs[i].name;
    } else {
      ++rejected;
      std::printf("loadgen: rejected '%s' (%s): %s\n", specs[i].name.c_str(),
                  c.last_reject_reason().c_str(), r.message.c_str());
    }
  }
  if (drain) clients[0]->drain();
  std::printf("loadgen: submitted %zu job(s) over %ld connection(s): "
              "%zu accepted, %zu rejected\n",
              specs.size(), static_cast<long>(connections), accepted,
              rejected);

  // Stream events until every accepted job has its terminal. The
  // exactly-once check: a second terminal for a job, or EOF with
  // terminals missing, is a protocol failure.
  std::map<serve::JobId, int> terminals;
  std::map<serve::JobId, int> progress;
  std::size_t completed = 0, failed = 0, snapshots_written = 0;
  std::vector<double> wait_s, run_s;
  std::size_t terminals_needed = pending.size();
  // A job's snapshot event trails its terminal in the stream, so keep
  // draining past the last terminal until every completed job's
  // snapshot landed (or the drained server EOFs).
  while (terminals_needed > 0 ||
         (!snapshots_out.empty() && snapshots_written < completed)) {
    std::optional<wire::WireEvent> ev = clients[0]->next_event(true);
    if (!ev) {
      if (terminals_needed == 0) break;  // EOF after all terminals: fine
      std::fprintf(stderr,
                   "loadgen: PROTOCOL ERROR: server EOF with %zu job(s) "
                   "missing their terminal event\n",
                   terminals_needed);
      return 1;
    }
    const auto job =
        static_cast<serve::JobId>(num_at(ev->root, "job"));
    if (ev->event == "progress") {
      ++progress[job];
    } else if (ev->event == "terminal") {
      if (++terminals[job] > 1) {
        std::fprintf(stderr,
                     "loadgen: PROTOCOL ERROR: duplicate terminal event "
                     "for job %llu\n",
                     static_cast<unsigned long long>(job));
        return 1;
      }
      if (pending.count(job) != 0) --terminals_needed;
      const obs::JsonValue* rep = ev->root.find("report");
      if (rep != nullptr) {
        const std::string state = str_at(*rep, "state");
        if (state == "completed") {
          ++completed;
          wait_s.push_back(num_at(*rep, "wait_s"));
          run_s.push_back(num_at(*rep, "run_s"));
        } else {
          ++failed;
          std::printf("loadgen: job %llu '%s' ended %s: %s\n",
                      static_cast<unsigned long long>(job),
                      str_at(*rep, "name").c_str(), state.c_str(),
                      str_at(*rep, "message").c_str());
        }
      }
    } else if (ev->event == "snapshot" && !snapshots_out.empty()) {
      const obs::JsonValue* snap = ev->root.find("snapshot");
      if (snap != nullptr) {
        double t = 0.0;
        const ParticleSet set = wire::decode_snapshot(*snap, &t);
        const std::string file =
            snapshots_out + "_" + str_at(ev->root, "name") + ".snap";
        save_snapshot(file, set, t);
        ++snapshots_written;
      }
    } else if (ev->event == "error") {
      std::fprintf(stderr, "loadgen: server error event: %s\n",
                   str_at(ev->root, "message").c_str());
      return 1;
    }
  }
  const double wall_s = obs::monotonic_seconds() - t0;

  // Every accepted job: exactly one terminal, and >= 1 progress event
  // (a job that never streamed progress was invisibly scheduled).
  std::size_t without_progress = 0;
  for (const auto& [id, name] : pending) {
    if (terminals[id] != 1) {
      std::fprintf(stderr,
                   "loadgen: PROTOCOL ERROR: job %llu '%s' has %d "
                   "terminal event(s)\n",
                   static_cast<unsigned long long>(id), name.c_str(),
                   terminals[id]);
      return 1;
    }
    if (progress[id] == 0) ++without_progress;
  }

  const double p50 = percentile(wait_s, 0.50);
  const double p95 = percentile(wait_s, 0.95);
  const double p99 = percentile(wait_s, 0.99);
  const double jobs_per_hour =
      wall_s > 0.0 ? static_cast<double>(completed) * 3600.0 / wall_s : 0.0;
  std::printf("loadgen: %zu completed, %zu failed, %zu rejected in %.3f s "
              "(%.0f jobs/h); wait p50 %.4f s, p95 %.4f s, p99 %.4f s; "
              "%zu snapshot(s); exactly-once terminals OK, %zu job(s) "
              "without progress events\n",
              completed, failed, rejected, wall_s, jobs_per_hour, p50, p95,
              p99, snapshots_written, without_progress);

  if (!report_out.empty()) {
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"grape6-loadgen-report-v1\",\n"
       << "  \"endpoint\": \"" << obs::json_escape(connect) << "\",\n"
       << "  \"connections\": " << connections << ",\n"
       << "  \"submitted\": " << specs.size() << ",\n"
       << "  \"accepted\": " << accepted << ",\n"
       << "  \"rejected\": " << rejected << ",\n"
       << "  \"completed\": " << completed << ",\n"
       << "  \"failed\": " << failed << ",\n"
       << "  \"snapshots\": " << snapshots_written << ",\n"
       << "  \"wall_s\": " << wall_s << ",\n"
       << "  \"jobs_per_hour\": " << jobs_per_hour << ",\n"
       << "  \"wait_p50_s\": " << p50 << ",\n"
       << "  \"wait_p95_s\": " << p95 << ",\n"
       << "  \"wait_p99_s\": " << p99 << ",\n"
       << "  \"exactly_once_terminals\": true,\n"
       << "  \"jobs_without_progress\": " << without_progress << "\n}\n";
    const std::string body = os.str();
    write_file_atomic(report_out, [&body](std::ostream& f) { f << body; });
  }

  return failed == 0 && rejected == 0 ? 0 : 3;
} catch (const std::exception& e) {
  std::fprintf(stderr, "grape6_loadgen: error: %s\n", e.what());
  return 1;
}
