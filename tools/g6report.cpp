// g6report — pretty-print a grape6 metrics JSON file.
//
//   g6report --in=run.json              breakdown table + every instrument
//   g6report --in=run.json --eq10-only  just the Eq 10 split
//
// Reads the "grape6-metrics-v1" schema written by --metrics-out
// (grape6_run, the benches) and prints the Eq 10 time breakdown plus the
// counters, gauges and histogram summaries. Exits non-zero on a missing
// or malformed file.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "util/cli.hpp"

namespace {

using g6::obs::JsonValue;

void print_eq10(const JsonValue& eq10) {
  const double host = eq10.at("host_s").as_number();
  const double dma = eq10.at("dma_s").as_number();
  const double net = eq10.at("net_s").as_number();
  const double grape = eq10.at("grape_s").as_number();
  const double total_s = eq10.at("total_s").as_number();
  const double steps = eq10.at("steps").as_number();
  const double total = total_s > 0.0 ? total_s : 1.0;
  std::printf("Eq 10 breakdown (T = T_host + T_comm + T_GRAPE):\n");
  std::printf("  T_host  %12.6f s  (%5.1f%%)\n", host, 100.0 * host / total);
  std::printf("  T_comm  %12.6f s  (%5.1f%%)  [dma %.6f s, net %.6f s]\n",
              dma + net, 100.0 * (dma + net) / total, dma, net);
  std::printf("  T_GRAPE %12.6f s  (%5.1f%%)\n", grape, 100.0 * grape / total);
  std::printf("  T_total %12.6f s, %.0f steps (bottleneck: %s)\n", total_s,
              steps, eq10.at("bottleneck").as_string().c_str());
  if (steps > 0.0) {
    std::printf("  %.3f us per particle step\n", 1e6 * total_s / steps);
  }
}

bool is_fault_metric(const std::string& name) {
  return name.rfind("fault.", 0) == 0;
}

/// Reliability rollup: fault.* counters/gauges grouped in one section
/// (injected vs detected vs recovered reads as a reconciliation table),
/// excluded from the generic listings below.
void print_fault_summary(const JsonValue& doc) {
  const JsonValue* counters = doc.find("counters");
  const JsonValue* gauges = doc.find("gauges");
  bool any = false;
  const auto scan = [&](const JsonValue* obj) {
    if (obj == nullptr) return;
    for (const auto& [name, v] : obj->members()) {
      (void)v;
      if (is_fault_metric(name)) any = true;
    }
  };
  scan(counters);
  scan(gauges);
  if (!any) return;
  std::printf("\nfault summary:\n");
  for (const char* prefix : {"fault.injected.", "fault.detected.",
                             "fault.recovered."}) {
    if (counters == nullptr) break;
    for (const auto& [name, v] : counters->members()) {
      if (name.rfind(prefix, 0) == 0) {
        std::printf("  %-28s %20.0f\n", name.c_str(), v.as_number());
      }
    }
  }
  if (gauges != nullptr) {
    for (const auto& [name, v] : gauges->members()) {
      if (is_fault_metric(name)) {
        std::printf("  %-28s %20.6g\n", name.c_str(), v.as_number());
      }
    }
  }
}

bool is_exec_metric(const std::string& name) {
  return name.rfind("exec.", 0) == 0;
}

/// Execution-runtime rollup: pool task/steal counters plus the overlap
/// gauge (host seconds hidden inside the T_GRAPE window — work Eq 10 did
/// NOT charge to T_host because it ran under in-flight force chunks).
void print_exec_summary(const JsonValue& doc) {
  const JsonValue* counters = doc.find("counters");
  const JsonValue* gauges = doc.find("gauges");
  bool any = false;
  const auto scan = [&](const JsonValue* obj) {
    if (obj == nullptr) return;
    for (const auto& [name, v] : obj->members()) {
      (void)v;
      if (is_exec_metric(name)) any = true;
    }
  };
  scan(counters);
  scan(gauges);
  if (!any) return;
  std::printf("\nexec summary:\n");
  if (counters != nullptr) {
    for (const auto& [name, v] : counters->members()) {
      if (is_exec_metric(name)) {
        std::printf("  %-28s %20.0f\n", name.c_str(), v.as_number());
      }
    }
  }
  if (gauges != nullptr) {
    for (const auto& [name, v] : gauges->members()) {
      if (is_exec_metric(name)) {
        std::printf("  %-28s %20.6g\n", name.c_str(), v.as_number());
      }
    }
  }
  const JsonValue* g_overlap =
      gauges != nullptr ? gauges->find("exec.overlap.host_s") : nullptr;
  const JsonValue* eq10 = doc.find("eq10");
  if (g_overlap != nullptr && eq10 != nullptr) {
    const double grape = eq10->at("grape_s").as_number();
    if (grape > 0.0) {
      std::printf("  (overlap hides %.1f%% of T_GRAPE as host work)\n",
                  100.0 * g_overlap->as_number() / grape);
    }
  }
}

void print_instruments(const JsonValue& doc) {
  const auto print_object = [](const JsonValue* obj, const char* header,
                               const char* fmt) {
    if (obj == nullptr) return;
    bool printed_header = false;
    for (const auto& [name, v] : obj->members()) {
      // Shown in the fault / exec summaries above.
      if (is_fault_metric(name) || is_exec_metric(name)) continue;
      if (!printed_header) {
        std::printf("\n%s:\n", header);
        printed_header = true;
      }
      std::printf(fmt, name.c_str(), v.as_number());
    }
  };
  print_object(doc.find("counters"), "counters", "  %-28s %20.0f\n");
  print_object(doc.find("gauges"), "gauges", "  %-28s %20.6g\n");
  const JsonValue* hists = doc.find("histograms");
  if (hists != nullptr && !hists->members().empty()) {
    std::printf("\nhistograms:\n");
    std::printf("  %-28s %10s %12s %12s %12s %12s\n", "name", "count", "mean",
                "stddev", "min", "max");
    for (const auto& [name, h] : hists->members()) {
      std::printf("  %-28s %10.0f %12.4g %12.4g %12.4g %12.4g\n", name.c_str(),
                  h.at("count").as_number(), h.at("mean").as_number(),
                  h.at("stddev").as_number(), h.at("min").as_number(),
                  h.at("max").as_number());
    }
  }
}

}  // namespace

int main(int argc, char** argv) try {
  g6::Cli cli(argc, argv);
  const bool eq10_only =
      cli.get_bool("eq10-only", false, "print only the Eq 10 breakdown");
  const std::string path = cli.get_string("in", "", "metrics JSON file");
  if (cli.finish()) return 0;
  if (path.empty()) {
    g6::obs::log_error("usage: g6report --in=<metrics.json> [--eq10-only]");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    g6::obs::log_error("cannot open %s", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());

  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "grape6-metrics-v1") {
    g6::obs::log_error("%s: not a grape6-metrics-v1 file", path.c_str());
    return 1;
  }

  const JsonValue* eq10 = doc.find("eq10");
  if (eq10 != nullptr) {
    print_eq10(*eq10);
  } else {
    std::printf("(no eq10 section)\n");
  }
  if (!eq10_only) {
    print_fault_summary(doc);
    print_exec_summary(doc);
    print_instruments(doc);
  }
  return 0;
} catch (const std::exception& e) {
  g6::obs::log_error("%s", e.what());
  return 1;
}
