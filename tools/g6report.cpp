// g6report — pretty-print or diff grape6 metrics JSON files.
//
//   g6report --in=run.json              breakdown table + every instrument
//   g6report --in=run.json --eq10-only  just the Eq 10 split
//   g6report --in=a.json --diff=b.json  absolute + percentage deltas, b vs a
//   g6report --in=a.json --diff=b.json --fail-over=5
//                                       exit 4 if any |delta| exceeds 5%
//
// Reads the "grape6-metrics-v1" schema written by --metrics-out
// (grape6_run, grape6_serve, the benches) and prints the Eq 10 time
// breakdown plus the counters, gauges, histogram summaries and per-job
// attribution scopes. Diff mode is the comparison half of the
// bench-regression harness (scripts/bench_regress.py drives it in CI).
// Exits non-zero on a missing or malformed file.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "util/cli.hpp"

namespace {

using g6::obs::JsonValue;

void print_eq10(const JsonValue& eq10) {
  const double host = eq10.at("host_s").as_number();
  const double dma = eq10.at("dma_s").as_number();
  const double net = eq10.at("net_s").as_number();
  const double grape = eq10.at("grape_s").as_number();
  const double total_s = eq10.at("total_s").as_number();
  const double steps = eq10.at("steps").as_number();
  const double total = total_s > 0.0 ? total_s : 1.0;
  std::printf("Eq 10 breakdown (T = T_host + T_comm + T_GRAPE):\n");
  std::printf("  T_host  %12.6f s  (%5.1f%%)\n", host, 100.0 * host / total);
  std::printf("  T_comm  %12.6f s  (%5.1f%%)  [dma %.6f s, net %.6f s]\n",
              dma + net, 100.0 * (dma + net) / total, dma, net);
  std::printf("  T_GRAPE %12.6f s  (%5.1f%%)\n", grape, 100.0 * grape / total);
  std::printf("  T_total %12.6f s, %.0f steps (bottleneck: %s)\n", total_s,
              steps, eq10.at("bottleneck").as_string().c_str());
  if (steps > 0.0) {
    std::printf("  %.3f us per particle step\n", 1e6 * total_s / steps);
  }
}

bool is_fault_metric(const std::string& name) {
  return name.rfind("fault.", 0) == 0;
}

/// Reliability rollup: fault.* counters/gauges grouped in one section
/// (injected vs detected vs recovered reads as a reconciliation table),
/// excluded from the generic listings below.
void print_fault_summary(const JsonValue& doc) {
  const JsonValue* counters = doc.find("counters");
  const JsonValue* gauges = doc.find("gauges");
  bool any = false;
  const auto scan = [&](const JsonValue* obj) {
    if (obj == nullptr) return;
    for (const auto& [name, v] : obj->members()) {
      (void)v;
      if (is_fault_metric(name)) any = true;
    }
  };
  scan(counters);
  scan(gauges);
  if (!any) return;
  std::printf("\nfault summary:\n");
  for (const char* prefix : {"fault.injected.", "fault.detected.",
                             "fault.recovered."}) {
    if (counters == nullptr) break;
    for (const auto& [name, v] : counters->members()) {
      if (name.rfind(prefix, 0) == 0) {
        std::printf("  %-28s %20.0f\n", name.c_str(), v.as_number());
      }
    }
  }
  if (gauges != nullptr) {
    for (const auto& [name, v] : gauges->members()) {
      if (is_fault_metric(name)) {
        std::printf("  %-28s %20.6g\n", name.c_str(), v.as_number());
      }
    }
  }
}

bool is_exec_metric(const std::string& name) {
  return name.rfind("exec.", 0) == 0;
}

/// Execution-runtime rollup: pool task/steal counters plus the overlap
/// gauge (host seconds hidden inside the T_GRAPE window — work Eq 10 did
/// NOT charge to T_host because it ran under in-flight force chunks).
void print_exec_summary(const JsonValue& doc) {
  const JsonValue* counters = doc.find("counters");
  const JsonValue* gauges = doc.find("gauges");
  bool any = false;
  const auto scan = [&](const JsonValue* obj) {
    if (obj == nullptr) return;
    for (const auto& [name, v] : obj->members()) {
      (void)v;
      if (is_exec_metric(name)) any = true;
    }
  };
  scan(counters);
  scan(gauges);
  if (!any) return;
  std::printf("\nexec summary:\n");
  if (counters != nullptr) {
    for (const auto& [name, v] : counters->members()) {
      if (is_exec_metric(name)) {
        std::printf("  %-28s %20.0f\n", name.c_str(), v.as_number());
      }
    }
  }
  if (gauges != nullptr) {
    for (const auto& [name, v] : gauges->members()) {
      if (is_exec_metric(name)) {
        std::printf("  %-28s %20.6g\n", name.c_str(), v.as_number());
      }
    }
  }
  const JsonValue* g_overlap =
      gauges != nullptr ? gauges->find("exec.overlap.host_s") : nullptr;
  const JsonValue* eq10 = doc.find("eq10");
  if (g_overlap != nullptr && eq10 != nullptr) {
    const double grape = eq10->at("grape_s").as_number();
    if (grape > 0.0) {
      std::printf("  (overlap hides %.1f%% of T_GRAPE as host work)\n",
                  100.0 * g_overlap->as_number() / grape);
    }
  }
}

bool is_wire_metric(const std::string& name) {
  return name.rfind("wire.", 0) == 0;
}

/// Remote-serving rollup: wire.* transport counters (frames/bytes in and
/// out, connections, protocol errors), the live-connection and
/// subscriber gauges, and the request round-trip histogram, grouped in
/// one section and excluded from the generic listings below.
void print_wire_summary(const JsonValue& doc) {
  const JsonValue* counters = doc.find("counters");
  const JsonValue* gauges = doc.find("gauges");
  const JsonValue* hists = doc.find("histograms");
  bool any = false;
  const auto scan = [&](const JsonValue* obj) {
    if (obj == nullptr) return;
    for (const auto& [name, v] : obj->members()) {
      (void)v;
      if (is_wire_metric(name)) any = true;
    }
  };
  scan(counters);
  scan(gauges);
  scan(hists);
  if (!any) return;
  std::printf("\nwire summary:\n");
  if (counters != nullptr) {
    for (const auto& [name, v] : counters->members()) {
      if (is_wire_metric(name)) {
        std::printf("  %-28s %20.0f\n", name.c_str(), v.as_number());
      }
    }
  }
  if (gauges != nullptr) {
    for (const auto& [name, v] : gauges->members()) {
      if (is_wire_metric(name)) {
        std::printf("  %-28s %20.6g\n", name.c_str(), v.as_number());
      }
    }
  }
  if (hists != nullptr) {
    for (const auto& [name, h] : hists->members()) {
      if (is_wire_metric(name)) {
        std::printf("  %-28s count %-8.0f mean %.4g s  max %.4g s\n",
                    name.c_str(), h.at("count").as_number(),
                    h.at("mean").as_number(), h.at("max").as_number());
      }
    }
  }
  const JsonValue* in = counters != nullptr
                            ? counters->find("wire.frames_in")
                            : nullptr;
  const JsonValue* req = counters != nullptr
                             ? counters->find("wire.requests")
                             : nullptr;
  if (in != nullptr && req != nullptr && req->as_number() > 0.0) {
    std::printf("  (%.0f frames in for %.0f requests)\n", in->as_number(),
                req->as_number());
  }
}

/// Per-job attribution ledgers (the "scopes" section): one block per
/// scope with its mirrored counters.
void print_scopes(const JsonValue& doc) {
  const JsonValue* scopes = doc.find("scopes");
  if (scopes == nullptr || scopes->members().empty()) return;
  std::printf("\nper-job scopes:\n");
  for (const auto& [name, scope] : scopes->members()) {
    std::printf("  %s (job %.0f, %s):\n", name.c_str(),
                scope.at("job").as_number(),
                scope.at("class").as_string().c_str());
    for (const auto& [cname, v] : scope.at("counters").members()) {
      std::printf("    %-28s %18.0f\n", cname.c_str(), v.as_number());
    }
  }
}

/// One row of the diff table; `scale` pretty-prints integers vs seconds.
struct DiffRow {
  std::string name;
  double a = 0.0;
  double b = 0.0;
};

void collect_rows(const JsonValue& doc, std::vector<DiffRow>& rows,
                  bool is_a) {
  const auto merge = [&rows, is_a](const std::string& name, double v) {
    for (DiffRow& r : rows) {
      if (r.name == name) {
        (is_a ? r.a : r.b) = v;
        return;
      }
    }
    DiffRow r;
    r.name = name;
    (is_a ? r.a : r.b) = v;
    rows.push_back(std::move(r));
  };
  if (const JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, v] : counters->members()) {
      merge("counter " + name, v.as_number());
    }
  }
  if (const JsonValue* gauges = doc.find("gauges")) {
    for (const auto& [name, v] : gauges->members()) {
      merge("gauge " + name, v.as_number());
    }
  }
  if (const JsonValue* hists = doc.find("histograms")) {
    for (const auto& [name, h] : hists->members()) {
      merge("hist.count " + name, h.at("count").as_number());
      merge("hist.mean " + name, h.at("mean").as_number());
    }
  }
  if (const JsonValue* eq10 = doc.find("eq10")) {
    for (const char* field : {"host_s", "dma_s", "net_s", "grape_s",
                              "total_s", "steps", "blocksteps"}) {
      if (const JsonValue* v = eq10->find(field)) {
        merge(std::string("eq10 ") + field, v->as_number());
      }
    }
  }
}

/// Tabulate b vs a; returns the worst |percentage| delta seen (infinity
/// when a metric appears or disappears entirely).
double print_diff(const JsonValue& a, const JsonValue& b) {
  std::vector<DiffRow> rows;
  collect_rows(a, rows, /*is_a=*/true);
  collect_rows(b, rows, /*is_a=*/false);

  std::printf("%-42s %16s %16s %14s %9s\n", "metric", "a", "b", "delta",
              "pct");
  double worst = 0.0;
  std::size_t unchanged = 0;
  for (const DiffRow& r : rows) {
    const double delta = r.b - r.a;
    if (delta == 0.0) {
      ++unchanged;
      continue;
    }
    double pct = 0.0;
    if (r.a != 0.0) {
      pct = 100.0 * delta / std::fabs(r.a);
    } else {
      pct = std::numeric_limits<double>::infinity();
    }
    if (std::fabs(pct) > worst) worst = std::fabs(pct);
    std::printf("%-42s %16.6g %16.6g %+14.6g %+8.2f%%\n", r.name.c_str(), r.a,
                r.b, delta, pct);
  }
  std::printf("(%zu metric(s) unchanged, %zu changed)\n", unchanged,
              rows.size() - unchanged);
  return worst;
}

JsonValue load_metrics(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue doc = JsonValue::parse(buf.str());
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "grape6-metrics-v1") {
    throw std::runtime_error(path + ": not a grape6-metrics-v1 file");
  }
  return doc;
}

void print_instruments(const JsonValue& doc) {
  const auto print_object = [](const JsonValue* obj, const char* header,
                               const char* fmt) {
    if (obj == nullptr) return;
    bool printed_header = false;
    for (const auto& [name, v] : obj->members()) {
      // Shown in the fault / exec / wire summaries above.
      if (is_fault_metric(name) || is_exec_metric(name) ||
          is_wire_metric(name)) {
        continue;
      }
      if (!printed_header) {
        std::printf("\n%s:\n", header);
        printed_header = true;
      }
      std::printf(fmt, name.c_str(), v.as_number());
    }
  };
  print_object(doc.find("counters"), "counters", "  %-28s %20.0f\n");
  print_object(doc.find("gauges"), "gauges", "  %-28s %20.6g\n");
  const JsonValue* hists = doc.find("histograms");
  if (hists != nullptr && !hists->members().empty()) {
    bool printed_header = false;
    for (const auto& [name, h] : hists->members()) {
      if (is_wire_metric(name)) continue;  // wire summary above
      if (!printed_header) {
        std::printf("\nhistograms:\n");
        std::printf("  %-28s %10s %12s %12s %12s %12s\n", "name", "count",
                    "mean", "stddev", "min", "max");
        printed_header = true;
      }
      std::printf("  %-28s %10.0f %12.4g %12.4g %12.4g %12.4g\n", name.c_str(),
                  h.at("count").as_number(), h.at("mean").as_number(),
                  h.at("stddev").as_number(), h.at("min").as_number(),
                  h.at("max").as_number());
    }
  }
}

}  // namespace

int main(int argc, char** argv) try {
  g6::Cli cli(argc, argv);
  const bool eq10_only =
      cli.get_bool("eq10-only", false, "print only the Eq 10 breakdown");
  const std::string path = cli.get_string("in", "", "metrics JSON file");
  const std::string diff_path = cli.get_string(
      "diff", "", "second metrics JSON: print deltas vs --in (\"\" = off)");
  const double fail_over = cli.get_double(
      "fail-over", 0.0,
      "with --diff: exit 4 when any |delta| exceeds this percentage (0 = "
      "report only)");
  if (cli.finish()) return 0;
  if (path.empty()) {
    g6::obs::log_error(
        "usage: g6report --in=<metrics.json> [--eq10-only] "
        "[--diff=<other.json> [--fail-over=PCT]]");
    return 2;
  }

  const JsonValue doc = load_metrics(path);

  if (!diff_path.empty()) {
    const JsonValue other = load_metrics(diff_path);
    const double worst = print_diff(doc, other);
    if (fail_over > 0.0 && worst > fail_over) {
      g6::obs::log_error("diff exceeds --fail-over=%g%% (worst %.2f%%)",
                         fail_over, worst);
      return 4;
    }
    return 0;
  }

  const JsonValue* eq10 = doc.find("eq10");
  if (eq10 != nullptr) {
    print_eq10(*eq10);
  } else {
    std::printf("(no eq10 section)\n");
  }
  if (!eq10_only) {
    print_fault_summary(doc);
    print_exec_summary(doc);
    print_wire_summary(doc);
    print_scopes(doc);
    print_instruments(doc);
  }
  return 0;
} catch (const std::exception& e) {
  g6::obs::log_error("%s", e.what());
  return 1;
}
