#!/usr/bin/env python3
"""g6layers — the architecture's layer graph, enforced from #include edges.

The repo is layered (docs/STATIC_ANALYSIS.md, "Layer graph"): util at the
bottom, the observability and execution runtimes above it, the physics
and hardware emulation in the middle, the serving layer and the core
facade on top. Each layer may include only the layers listed for it in
ALLOWED below — the declared DAG. Anything else is a back-edge: a lower
layer reaching up (util including obs), a lateral reach between siblings
(tree including grape), or an application layer bypassing the core
facade. Back-edges are how layer graphs rot into balls of mud, so they
fail the build here, not in review.

Additionally, the serving layer's scheduling internals (job_queue.hpp,
scheduler.hpp, partition.hpp, admission.hpp, job.hpp) are private to
src/serve/ even though `serve` is an includable layer: clients use the
public surface (serve/serve.hpp, serve/types.hpp, ...). This is the
include half of g6lint's serve-isolation rule, generalized: the layer
checker sees every include edge anyway, so it owns the boundary.

A file's layer is its first path segment under src/ (src/grape/... is
layer "grape"); tools/, bench/ and examples/ are layers of their own.
tests/ are exempt (white-box tests reach anywhere). Only quoted
repo-relative includes are edges; system headers are not.

Suppressing an edge requires a reason, same contract as g6lint:

    #include "grape/pipeline.hpp"  // g6layers: allow -- why this edge is ok

The tool self-checks: if ALLOWED itself ever acquires a cycle, that is a
config error (exit 2) — the declared graph must stay a DAG for the
layering to mean anything.

Exit status: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# The declared DAG. Key = layer, value = layers it may include (its own
# layer is always allowed). Listed bottom-up; a layer may only ever
# depend downward. Edit this table together with docs/STATIC_ANALYSIS.md.
# --------------------------------------------------------------------------

ALLOWED: dict[str, set[str]] = {
    # foundations
    "util": set(),
    "obs": {"util"},
    "exec": {"obs", "util"},
    # physics + wire formats
    "nbody": {"util"},
    "net": {"obs", "util"},
    "hermite": {"exec", "nbody", "obs", "util"},
    # the host<->board data contract, then the machinery above it
    "hw": {"hermite", "obs", "util"},
    "fault": {"hw", "hermite", "net", "obs", "util"},
    "grape": {"exec", "fault", "hw", "hermite", "obs", "util"},
    "perf": {"grape", "hw", "hermite", "nbody", "net", "obs", "util"},
    "tree": {"exec", "hermite", "nbody", "obs", "util"},
    "parallel": {"exec", "fault", "grape", "hw", "hermite", "net", "obs",
                 "perf", "util"},
    "serve": {"exec", "fault", "grape", "hw", "hermite", "nbody", "obs",
              "util"},
    # remote serving: the socket front for serve (and the ONLY layer
    # allowed to touch raw socket primitives — g6lint raw-socket rule)
    "wire": {"exec", "nbody", "obs", "serve", "util"},
    # the facade: re-exports everything below
    "core": {"exec", "fault", "grape", "hw", "hermite", "nbody", "net",
             "obs", "parallel", "perf", "serve", "tree", "util", "wire"},
    # applications: the facade plus the cross-cutting foundations
    "tools": {"core", "obs", "util"},
    "bench": {"core", "obs", "util"},
    "examples": {"core", "obs", "util"},
}

# serve internals: includable from src/serve/ only (the include half of
# g6lint serve-isolation; type-name usage is still g6lint's half).
SERVE_INTERNAL_HEADERS = (
    "serve/job_queue.hpp",
    "serve/scheduler.hpp",
    "serve/partition.hpp",
    "serve/admission.hpp",
    "serve/job.hpp",
    "serve/journal.hpp",
    "serve/recovery.hpp",
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]')
ALLOW_RE = re.compile(r"g6layers:\s*allow\s*(?:--\s*(.*))?")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def check_dag(findings_out: list[str]) -> bool:
    """The declared graph must be acyclic and closed over its own keys."""
    ok = True
    for layer, deps in ALLOWED.items():
        for d in deps:
            if d not in ALLOWED:
                findings_out.append(
                    f"ALLOWED['{layer}'] names unknown layer '{d}'")
                ok = False
    # Peel dependency-free layers repeatedly (Kahn); anything left after
    # no more can be peeled is a cycle.
    remaining = {k: set(v) & set(ALLOWED) for k, v in ALLOWED.items()}
    while remaining:
        leaves = [k for k, v in remaining.items() if not v]
        if not leaves:
            cyc = ", ".join(sorted(remaining))
            findings_out.append(
                f"declared layer graph has a cycle among: {cyc}")
            ok = False
            break
        for leaf in leaves:
            remaining.pop(leaf)
        for v in remaining.values():
            v.difference_update(leaves)
    return ok


def layer_of(relpath: str) -> str | None:
    parts = relpath.split("/")
    if parts[0] == "src":
        return parts[1] if len(parts) > 2 else None
    if parts[0] in ("tools", "bench", "examples"):
        return parts[0]
    return None


def comment_part(line: str) -> str:
    idx = line.find("//")
    return line[idx:] if idx != -1 else ""


def check_file(root: pathlib.Path, relpath: str,
               findings: list[Finding]) -> None:
    layer = layer_of(relpath)
    if layer is None:
        return
    in_serve = relpath.startswith("src/serve/")
    for lineno, raw in enumerate(
            (root / relpath).read_text(encoding="utf-8").split("\n"),
            start=1):
        m = INCLUDE_RE.match(raw)
        if not m:
            continue
        target = m.group(1)
        if not (root / "src" / target).is_file():
            continue  # system or third-party header: not a layer edge
        am = ALLOW_RE.search(comment_part(raw))
        if am:
            if not (am.group(1) and am.group(1).strip()):
                findings.append(Finding(
                    relpath, lineno, "suppression",
                    "g6layers suppression without a reason "
                    "(write: g6layers: allow -- why)"))
            else:
                continue
        if target in SERVE_INTERNAL_HEADERS and not in_serve:
            findings.append(Finding(
                relpath, lineno, "serve-internal",
                f"include of serving-layer internal header {target} "
                "outside src/serve/ — include serve/serve.hpp and go "
                "through GrapeService / ServeClient"))
            continue
        tlayer = target.split("/")[0]
        if tlayer == layer or tlayer in ALLOWED.get(layer, set()):
            continue
        findings.append(Finding(
            relpath, lineno, "back-edge",
            f"layer '{layer}' must not include layer '{tlayer}' "
            f"({target}) — allowed from '{layer}': "
            f"{', '.join(sorted(ALLOWED.get(layer, set()))) or '(nothing)'}"
            ". If the dependency is genuinely downward, move the shared "
            "type down; do not widen ALLOWED casually (g6layers.py + "
            "docs/STATIC_ANALYSIS.md change together)."))


def collect_targets(root: pathlib.Path) -> list[str]:
    targets = []
    for sub in ("src", "tools", "bench", "examples"):
        if not (root / sub).is_dir():
            continue
        for p in sorted((root / sub).rglob("*")):
            if p.suffix in (".hpp", ".cpp") and p.is_file():
                targets.append(str(p.relative_to(root)))
    return targets


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--dump-dag", action="store_true",
                    help="print the declared DAG (topological order) and exit")
    ap.add_argument("paths", nargs="*",
                    help="files to check (default: src/tools/bench/examples)")
    args = ap.parse_args()

    config_errors: list[str] = []
    if not check_dag(config_errors):
        for e in config_errors:
            print(f"g6layers: config error: {e}", file=sys.stderr)
        return 2

    if args.dump_dag:
        remaining = {k: set(v) for k, v in ALLOWED.items()}
        while remaining:
            leaves = sorted(k for k, v in remaining.items() if not v)
            print(" ".join(leaves))
            for leaf in leaves:
                remaining.pop(leaf)
            for v in remaining.values():
                v.difference_update(leaves)
        return 0

    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"g6layers: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    targets = args.paths or collect_targets(root)
    findings: list[Finding] = []
    for rel in targets:
        rp = pathlib.Path(rel)
        if rp.is_absolute():
            try:
                rel = str(rp.relative_to(root))
            except ValueError:
                print(f"g6layers: {rp} is outside the repo root {root}",
                      file=sys.stderr)
                return 2
        if not (root / rel).is_file():
            print(f"g6layers: no such file: {rel}", file=sys.stderr)
            return 2
        check_file(root, rel, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"g6layers: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"g6layers: clean ({len(targets)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
