#!/usr/bin/env python3
"""Self-test for g6layers: the layer checker must catch injected
back-edges, protect serve internals, accept every declared edge, and
keep its own declared graph a DAG. Runs as the `g6layers_selftest`
ctest."""

from __future__ import annotations

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import g6layers  # noqa: E402


class LayerHarness(unittest.TestCase):
    """Write files into a throwaway repo root and check one of them."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        (self.root / "src").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def put(self, relpath: str, content: str) -> None:
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")

    def check(self, relpath: str, content: str):
        self.put(relpath, content)
        findings = []
        g6layers.check_file(self.root, relpath, findings)
        return findings

    def rules_of(self, findings):
        return [f.rule for f in findings]


class BackEdgeTest(LayerHarness):
    def test_util_including_obs_is_a_back_edge(self):
        self.put("src/obs/metrics.hpp", "#pragma once\n")
        findings = self.check(
            "src/util/helper.hpp",
            "#pragma once\n#include \"obs/metrics.hpp\"\n")
        self.assertIn("back-edge", self.rules_of(findings))

    def test_hermite_including_grape_is_a_back_edge(self):
        self.put("src/grape/engine.hpp", "#pragma once\n")
        findings = self.check(
            "src/hermite/integrator.cpp",
            "#include \"grape/engine.hpp\"\n")
        self.assertIn("back-edge", self.rules_of(findings))

    def test_fault_including_grape_is_a_back_edge(self):
        # The cycle this PR broke: fault reaching up into grape for the
        # hardware words (they live in src/hw now). It must never return.
        self.put("src/grape/pipeline.hpp", "#pragma once\n")
        findings = self.check(
            "src/fault/injector.cpp",
            "#include \"grape/pipeline.hpp\"\n")
        self.assertIn("back-edge", self.rules_of(findings))

    def test_sibling_reach_is_a_back_edge(self):
        self.put("src/grape/engine.hpp", "#pragma once\n")
        findings = self.check(
            "src/tree/traverse.cpp", "#include \"grape/engine.hpp\"\n")
        self.assertIn("back-edge", self.rules_of(findings))

    def test_tools_bypassing_core_is_a_back_edge(self):
        self.put("src/grape/engine.hpp", "#pragma once\n")
        findings = self.check(
            "tools/dump.cpp", "#include \"grape/engine.hpp\"\n")
        self.assertIn("back-edge", self.rules_of(findings))

    def test_allowed_edge_passes(self):
        self.put("src/util/check.hpp", "#pragma once\n")
        findings = self.check(
            "src/obs/metrics.cpp", "#include \"util/check.hpp\"\n")
        self.assertEqual(findings, [])

    def test_same_layer_include_passes(self):
        self.put("src/grape/chip.hpp", "#pragma once\n")
        findings = self.check(
            "src/grape/board.cpp", "#include \"grape/chip.hpp\"\n")
        self.assertEqual(findings, [])

    def test_system_headers_are_not_edges(self):
        findings = self.check(
            "src/util/helper.hpp",
            "#pragma once\n#include <vector>\n#include <mutex>\n")
        self.assertEqual(findings, [])

    def test_tests_are_exempt(self):
        self.put("src/grape/engine.hpp", "#pragma once\n")
        findings = self.check(
            "tests/grape/t.cpp", "#include \"grape/engine.hpp\"\n")
        self.assertEqual(findings, [])

    def test_suppression_needs_a_reason(self):
        self.put("src/obs/metrics.hpp", "#pragma once\n")
        findings = self.check(
            "src/util/helper.hpp",
            "#include \"obs/metrics.hpp\"  // g6layers: allow\n")
        self.assertIn("suppression", self.rules_of(findings))

    def test_suppression_with_reason_works(self):
        self.put("src/obs/metrics.hpp", "#pragma once\n")
        findings = self.check(
            "src/util/helper.hpp",
            "#include \"obs/metrics.hpp\""
            "  // g6layers: allow -- transitional, tracked in ROADMAP\n")
        self.assertEqual(findings, [])


class ServeInternalTest(LayerHarness):
    def test_internal_header_banned_outside_serve(self):
        for hdr in g6layers.SERVE_INTERNAL_HEADERS:
            self.put(f"src/{hdr}", "#pragma once\n")
            findings = self.check(
                "src/core/t.cpp", f"#include \"{hdr}\"\n")
            self.assertIn("serve-internal", self.rules_of(findings),
                          msg=hdr)

    def test_internal_header_fine_inside_serve(self):
        self.put("src/serve/scheduler.hpp", "#pragma once\n")
        findings = self.check(
            "src/serve/service.cpp", "#include \"serve/scheduler.hpp\"\n")
        self.assertEqual(findings, [])

    def test_public_surface_fine_from_core(self):
        self.put("src/serve/serve.hpp", "#pragma once\n")
        findings = self.check(
            "src/core/t.cpp", "#include \"serve/serve.hpp\"\n")
        self.assertEqual(findings, [])


class WireLayerTest(LayerHarness):
    """The wire layer: above serve, below the core facade."""

    def test_wire_may_include_serve_public_surface(self):
        self.put("src/serve/serve.hpp", "#pragma once\n")
        findings = self.check(
            "src/wire/server.cpp", "#include \"serve/serve.hpp\"\n")
        self.assertEqual(findings, [])

    def test_wire_must_not_touch_serve_internals(self):
        self.put("src/serve/scheduler.hpp", "#pragma once\n")
        findings = self.check(
            "src/wire/server.cpp", "#include \"serve/scheduler.hpp\"\n")
        self.assertIn("serve-internal", self.rules_of(findings))

    def test_serve_including_wire_is_a_back_edge(self):
        self.put("src/wire/framing.hpp", "#pragma once\n")
        findings = self.check(
            "src/serve/service.cpp", "#include \"wire/framing.hpp\"\n")
        self.assertIn("back-edge", self.rules_of(findings))

    def test_core_may_reexport_wire(self):
        self.put("src/wire/wire.hpp", "#pragma once\n")
        findings = self.check(
            "src/core/grape6x.hpp",
            "#pragma once\n#include \"wire/wire.hpp\"\n")
        self.assertEqual(findings, [])

    def test_tools_reach_wire_via_core_only(self):
        self.put("src/wire/client.hpp", "#pragma once\n")
        findings = self.check(
            "tools/t.cpp", "#include \"wire/client.hpp\"\n")
        self.assertIn("back-edge", self.rules_of(findings))


class DeclaredGraphTest(unittest.TestCase):
    def test_declared_graph_is_a_dag(self):
        errors = []
        self.assertTrue(g6layers.check_dag(errors), msg=errors)

    def test_cycle_in_declared_graph_is_detected(self):
        saved = g6layers.ALLOWED
        try:
            g6layers.ALLOWED = {"a": {"b"}, "b": {"a"}}
            errors = []
            self.assertFalse(g6layers.check_dag(errors))
            self.assertTrue(any("cycle" in e for e in errors), msg=errors)
        finally:
            g6layers.ALLOWED = saved

    def test_unknown_layer_is_detected(self):
        saved = g6layers.ALLOWED
        try:
            g6layers.ALLOWED = {"a": {"ghost"}}
            errors = []
            self.assertFalse(g6layers.check_dag(errors))
        finally:
            g6layers.ALLOWED = saved

    def test_every_src_layer_is_declared(self):
        repo = pathlib.Path(__file__).resolve().parents[2]
        for d in sorted((repo / "src").iterdir()):
            if d.is_dir():
                self.assertIn(d.name, g6layers.ALLOWED, msg=str(d))

    def test_layer_of(self):
        self.assertEqual(g6layers.layer_of("src/grape/chip.hpp"), "grape")
        self.assertEqual(g6layers.layer_of("tools/lint/x.cpp"), "tools")
        self.assertEqual(g6layers.layer_of("bench/b.cpp"), "bench")
        self.assertIsNone(g6layers.layer_of("tests/grape/t.cpp"))


if __name__ == "__main__":
    unittest.main()
