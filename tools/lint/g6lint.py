#!/usr/bin/env python3
"""g6lint — repo-specific invariants that clang-tidy cannot express.

The GRAPE-6 software twin has correctness properties that hinge on
*where* arithmetic happens, not just how:

  raw-float       Hardware-dataflow internals (src/grape/{pipeline,chip,
                  board}.*, src/hw/*) must route floating-point arithmetic
                  through the g6 emulation types (FloatFormat ops,
                  FixedPointCodec encode/decode, BlockFloatAccumulator
                  add/merge). A bare `a * b` on doubles in those files is a
                  piece of the pipeline silently computed in IEEE double —
                  exactly the bug that would invalidate the paper's
                  bit-exact reduced-precision claims while passing every
                  accuracy test at N small.

  native-float    The native `float` type is banned in src/grape, src/hw
                  and src/util. Narrow formats are modelled by FloatFormat
                  (explicit fraction bits / exponent range); native float
                  has the wrong rounding envelope and double-promotion
                  hazards.

  nondeterminism  rand()/srand()/time()/clock()/std::random_device/
                  std::mt19937/system_clock/high_resolution_clock are
                  banned everywhere in src/. Reproducibility underpins the
                  BFP order-invariance ablation ("same result on machines
                  of different sizes"); all randomness must come from
                  g6::Rng (seeded xoshiro256++) and all timing from
                  steady_clock.

  raw-timing      Reading the clock directly (std::chrono, clock_gettime,
                  gettimeofday) is banned in src/ outside src/obs/. All
                  wall-time measurement goes through
                  g6::obs::monotonic_seconds() (src/obs/clock.hpp) so the
                  phase spans, Eq 10 accounting and ad-hoc timers share one
                  clock and one place to fake it in tests.

  raw-thread      std::thread / std::jthread / std::async / std::this_thread
                  are banned in src/ outside src/exec/. All parallelism goes
                  through the shared work-stealing pool (g6::exec::ThreadPool,
                  TaskGroup, parallel_for) so thread count is one knob
                  (--threads / G6_EXEC_THREADS), the serial fallback stays
                  bit-identical, and the determinism contract of
                  docs/EXECUTION.md has one enforcement point.

  raw-socket      Socket primitives — the BSD socket headers
                  (<sys/socket.h>, <sys/un.h>, <netinet/*.h>,
                  <arpa/inet.h>, <poll.h>) and the ::-qualified syscalls
                  (::socket, ::bind, ::connect, ::send, ::recv, ::poll,
                  ...) — are confined to src/wire/. Everything else talks
                  through the wire layer's RAII wrappers (wire/socket.hpp)
                  or, better, WireServer / RemoteClient, so framing,
                  EINTR handling and non-blocking discipline live in one
                  audited place and the serve-isolation backpressure
                  contract cannot be bypassed with a hand-rolled socket.
                  tests/ are exempt (they probe the wrappers white-box).

  require-at-api  Public API translation units must validate their inputs:
                  each .cpp under src/ needs at least one G6_REQUIRE /
                  G6_REQUIRE_MSG, unless exempted below with a reason.

  nolint-comment  A clang-tidy `NOLINT*` marker must carry a rationale in
                  a comment on the same or the preceding line. Bare
                  suppressions rot.

  bare-abort      abort()/exit()/quick_exit()/_Exit() are banned in src/
                  outside src/util/check.hpp. Failures surface as typed
                  exceptions (src/util/errors.hpp: TransientFault /
                  RetryExhausted / HardFault) or G6_REQUIRE precondition
                  throws, so the integrator can retry transients and
                  degrade gracefully instead of losing the whole run.

  serve-isolation The serving layer's scheduling internals (JobQueue,
                  Scheduler, BoardPartitioner, AdmissionController,
                  JobRuntime) are private to src/serve/. Code anywhere
                  else — src/, tools/, bench/, examples/ — must not
                  include their headers or name their types; clients go
                  through serve/serve.hpp (GrapeService / ServeClient).
                  The boundary is what keeps admission and fair-share
                  accounting enforceable: a driver that pokes the queue
                  directly bypasses backpressure (docs/SERVING.md).
                  tests/ are exempt (white-box tests exercise internals).

  unordered-iter  std::unordered_map / std::unordered_set (and multi
                  variants) are banned in src/, tools/ and bench/.
                  Unordered iteration order varies run to run and across
                  standard libraries; anything it feeds — JSON exports,
                  accumulation, scheduling decisions — silently breaks
                  the bit-identical contract. Use std::map / sorted
                  vectors / index loops, or suppress with a rationale
                  proving iteration order never escapes.

  volatile-sync   `volatile` is banned in src/. It is not a
                  synchronization primitive (no atomicity, no ordering);
                  cross-thread state goes through std::atomic or a
                  g6::Mutex-guarded section so TSan and -Wthread-safety
                  can see it.

  durable-writes  Bare `std::ofstream` persistence is banned in src/ and
                  tools/ outside src/util/fileio.cpp. Every durable
                  artifact (snapshots, reports, checkpoints, journals,
                  exports) goes through util/fileio.hpp —
                  write_file_atomic / write_file_atomic_durable /
                  AppendLog — so a crash (including the kill -9 the
                  recovery suite injects) can never leave a truncated or
                  half-written file for a reader to trip over. An
                  ofstream that genuinely never persists state (e.g. a
                  stream member wired to /dev/null) carries an inline
                  rationale.

  soa-access      Bulk j-particle storage is structure-of-arrays
                  (g6::JStore, src/hw/jstore.hpp): containers of
                  StoredJParticle (std::vector/std::span/std::array of the
                  AoS word) are confined to src/hw/, src/grape/ and
                  src/fault/ — the layers that own the memory image, its
                  upload path and its fault/scrub machinery. Anywhere else
                  an AoS container reintroduces the strided layout the
                  batched pipeline was built to eliminate and silently
                  bypasses the JStore word accessors the fault tooling
                  relies on. Single StoredJParticle values (one quantized
                  word in flight) are fine.

  metric-name     Instrument and span names passed to .counter("...") /
                  .gauge("...") / .histogram("...") / G6_PHASE("...") /
                  PhaseSpan("...") must be dot-separated lowercase
                  `subsystem.name` paths: two or more segments of
                  [a-z0-9_] (later segments may also use '-', e.g.
                  hermite.j-send). The names are load-bearing — g6report
                  groups by prefix, export_determinism_check and the
                  per-job attribution scopes key on them, and docs/
                  OBSERVABILITY.md documents the namespaces — so a
                  one-off "Predict" or "force_time" silently falls out
                  of every downstream view. Only single string-literal
                  arguments are checked; dynamically built names
                  ("fault.detected." + kind) are the caller's problem.

Baseline (grandfathering): tools/lint/g6lint_baseline.json holds
per-(file, rule) finding counts that are tolerated — the escape hatch
for introducing a new rule to an old tree without a flag day. Findings
beyond the baselined count still fail; a stale baseline (fewer findings
than recorded) prints a nudge to re-run with --update-baseline so the
ratchet only ever tightens. The shipped baseline is empty: the tree is
clean, and new code stays clean or carries an inline rationale.

Suppressions (the tool polices its own escape hatch — a suppression
without a reason is itself a finding):

    some_code();  // g6lint: allow(raw-float) -- why this is fine
    // g6lint: allow-next-line(raw-float) -- why this is fine
    // g6lint: begin-allow(raw-float) -- why this whole block is fine
    ...
    // g6lint: end-allow(raw-float)

Exit status: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# Configuration (repo-specific by design; edit alongside the code it guards)
# --------------------------------------------------------------------------

# Files forming the emulated hardware dataflow: predictor + force pipeline,
# number-format conversion, chip and board reduction trees.
RAW_FLOAT_SCOPE = (
    "src/grape/pipeline.hpp",
    "src/grape/pipeline.cpp",
    "src/grape/pipeline_batched.cpp",
    "src/hw/formats.hpp",
    "src/hw/formats.cpp",
    "src/hw/accumulators.hpp",
    "src/hw/jstore.hpp",
    "src/grape/chip.hpp",
    "src/grape/chip.cpp",
    "src/grape/board.hpp",
    "src/grape/board.cpp",
)

NATIVE_FLOAT_SCOPE_PREFIXES = ("src/grape/", "src/hw/", "src/util/")

# Calls that mark a line as routed through the g6 arithmetic types.
ROUTING_TOKENS = (
    ".quantize(",
    ".add(",
    ".sub(",
    ".mul(",
    ".div(",
    ".sqrt(",
    ".rsqrt(",
    ".encode(",
    ".decode(",
    ".merge(",
    ".reset(",
    ".value(",
    "choose_block_exponent(",
    "spanops::",  # bulk-quantize sweeps, every element FloatFormat-rounded
)

# Lines that declare/operate on integer words are exact by construction
# (the fixed-point and cycle-count arithmetic).
INTEGER_TYPE_RE = re.compile(
    r"\b(?:std::)?u?int(?:8|16|32|64)_t\b|\bstd::size_t\b|\bsize_t\b"
    r"|\bunsigned\b|\bbool\b|\buint\b"
)

# Infix binary arithmetic between operands. .clang-format spaces binary
# operators and glues pointer/reference declarators to the type, so a
# space *before* '*' reliably separates `a * b` from `T* p`. Spaced '+'
# and '-' additionally require floating-point evidence on the line (an FP
# literal or a `double`), since integer index/cycle arithmetic is exact
# and allowed.
MULDIV_RE = re.compile(r"[\w\)\]] [*/] [-+]?[\w\(]")
ADDSUB_RE = re.compile(r"[\w\)\]] [+\-] [-+]?[\w\(]")
FP_EVIDENCE_RE = re.compile(r"\b\d+\.\d|\bdouble\b|\b\d+\.\d*[eE][-+]?\d|0x1\.")

NONDETERMINISM_RES = (
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    # Only the libc/std wall-clock readers: member accessors named time()
    # are fine, `time(NULL)` / `std::time(...)` are not.
    (re.compile(r"\bstd::time\s*\(|(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time()"),
    (re.compile(r"\bstd::clock\s*\(|(?<![\w:.>])::clock\s*\("), "clock()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::mt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "high_resolution_clock"),
)

# Translation units exempt from require-at-api, each with the reason the
# exemption is sound. An entry without a reason is a config error.
REQUIRE_EXEMPT = {
    "src/grape/pipeline.cpp": "per-interaction hot path; preconditions are "
    "enforced once per pass by Chip::run_pass/Board::run_pass",
    "src/util/vec3.cpp": "stream output operator only; no inputs to validate",
    "src/util/softfloat.cpp": "describe() formatting only; arithmetic "
    "preconditions live in the header (G6_REQUIRE in rsqrt)",
    "src/util/cli.cpp": "parses end-user argv; reports errors via "
    "runtime_error + finish(), not programmer preconditions",
}

REQUIRE_RE = re.compile(r"\bG6_REQUIRE(?:_MSG)?\s*\(")

NOLINT_RE = re.compile(r"\bNOLINT(?:NEXTLINE|BEGIN|END)?\b")

ALLOW_RE = re.compile(
    r"g6lint:\s*(allow|allow-next-line|begin-allow|end-allow)"
    r"\(([a-z\-]+)\)\s*(?:--\s*(.*))?"
)

# The one place in src/ allowed to read the clock.
RAW_TIMING_EXEMPT_PREFIX = "src/obs/"

RAW_TIMING_RE = re.compile(
    r"\bstd::chrono\b|\bchrono::\w|\bclock_gettime\s*\(|\bgettimeofday\s*\(")

# Process-killing calls; the one legitimate site is the check machinery
# itself (src/util/check.hpp), should it ever need a hard stop.
BARE_ABORT_RE = re.compile(
    r"(?<![\w.:>])(?:std::)?(?:abort|quick_exit|_Exit|exit)\s*\(")
BARE_ABORT_EXEMPT = ("src/util/check.hpp",)

# The one place in src/ allowed to spawn threads.
RAW_THREAD_EXEMPT_PREFIX = "src/exec/"

RAW_THREAD_RE = re.compile(
    r"\bstd::(?:thread|jthread|async|this_thread)\b")

# The one layer allowed to touch raw socket primitives.
RAW_SOCKET_EXEMPT_PREFIX = "src/wire/"
RAW_SOCKET_SCOPE_PREFIXES = ("src/", "tools/", "bench/", "examples/")
RAW_SOCKET_HEADERS = (
    "sys/socket.h",
    "sys/un.h",
    "netinet/in.h",
    "netinet/tcp.h",
    "arpa/inet.h",
    "poll.h",
)
# ::-qualified only: the repo's convention for libc syscalls, and what
# keeps `send(...)` methods on our own classes out of scope.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w.])::(?:socket|bind|listen|accept4?|connect|send(?:to|msg)?|"
    r"recv(?:from|msg)?|poll|select|epoll_\w+|setsockopt|getsockopt|"
    r"getsockname|getpeername|inet_pton|inet_ntop|getaddrinfo|shutdown)"
    r"\s*\(")

# The serving layer's internal headers and types: private to src/serve/.
# Clients (anything else in src/, plus tools/bench/examples) use the
# public surface — serve/serve.hpp, serve/types.hpp, serve/service.hpp,
# serve/manifest.hpp — and talk through GrapeService / ServeClient.
SERVE_INTERNAL_HEADERS = (
    "serve/job_queue.hpp",
    "serve/scheduler.hpp",
    "serve/partition.hpp",
    "serve/admission.hpp",
    "serve/job.hpp",
    "serve/journal.hpp",
    "serve/recovery.hpp",
)
SERVE_INTERNAL_RE = re.compile(
    r"\bserve::(?:JobQueue|Scheduler|BoardPartitioner|AdmissionController|"
    r"JobRuntime|SavedJob|AdmissionDecision|BoardLease|Journal|"
    r"JournalRecord|JournalReplay|RestoredService|RestoredJob)\b")
SERVE_ISOLATION_SCOPE_PREFIXES = ("src/", "tools/", "bench/", "examples/")

# AoS containers of the j-memory word: allowed only in the layers that
# own the memory image (JStore itself, chip/engine upload, fault/scrub).
SOA_ACCESS_RE = re.compile(
    r"\bstd::(?:vector|span|array)\s*<\s*(?:const\s+)?StoredJParticle\b")
SOA_ACCESS_SCOPE_PREFIXES = ("src/", "tools/", "bench/", "examples/")
SOA_ACCESS_EXEMPT_PREFIXES = ("src/hw/", "src/grape/", "src/fault/")

UNORDERED_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
UNORDERED_SCOPE_PREFIXES = ("src/", "tools/", "bench/")

VOLATILE_RE = re.compile(r"\bvolatile\b")

# Durable artifacts go through util/fileio.hpp (atomic rename + fsync
# grades + AppendLog); a bare ofstream is a torn-write hazard. The one
# legitimate site is the implementation of those primitives itself.
DURABLE_WRITES_RE = re.compile(r"\bstd::ofstream\b")
DURABLE_WRITES_SCOPE_PREFIXES = ("src/", "tools/")
DURABLE_WRITES_EXEMPT = ("src/util/fileio.cpp",)

# Registration/span calls whose first argument names an instrument. The
# trailing group distinguishes a complete single-literal argument (next
# token is ',' or ')') from a concatenation fragment, which is skipped.
METRIC_CALL_RE = re.compile(
    r'(?:\.(?:counter|gauge|histogram)|\bG6_PHASE|\bPhaseSpan(?:\s+\w+)?)'
    r'\s*\(\s*"([^"]*)"\s*([,)])?')
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(?:\.[a-z0-9_-]+)+$")
METRIC_NAME_SCOPE_PREFIXES = ("src/", "tools/", "bench/", "examples/")

RULES = ("raw-float", "native-float", "nondeterminism", "raw-timing",
         "raw-thread", "raw-socket", "require-at-api", "nolint-comment",
         "bare-abort", "serve-isolation", "unordered-iter", "volatile-sync",
         "metric-name", "durable-writes", "soa-access")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(line: str) -> str:
    """Remove string/char literals and comments; keep structure."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append('""' if quote == '"' else "''")
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        elif c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_comments(line: str) -> str:
    """Remove comments but KEEP string-literal contents (strip_code blanks
    them, which would erase the very names metric-name inspects)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            out.append(c)
            i += 1
            while i < n and line[i] != quote:
                step = 2 if line[i] == "\\" and i + 1 < n else 1
                out.append(line[i:i + step])
                i += step
            if i < n:
                out.append(quote)
                i += 1
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        elif c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def comment_part(line: str) -> str:
    idx = line.find("//")
    return line[idx:] if idx != -1 else ""


class Suppressions:
    """Per-file suppression state parsed from g6lint: comments."""

    def __init__(self, relpath: str, lines: list[str], findings: list[Finding]):
        self.line_allows: dict[int, set[str]] = {}
        open_blocks: dict[str, int] = {}
        blocks: list[tuple[str, int, int]] = []
        for lineno, raw in enumerate(lines, start=1):
            m = ALLOW_RE.search(comment_part(raw))
            if not m:
                continue
            kind, rule, reason = m.group(1), m.group(2), m.group(3)
            if rule not in RULES:
                findings.append(Finding(relpath, lineno, "suppression",
                                        f"unknown rule '{rule}' in suppression"))
                continue
            if kind != "end-allow" and not (reason and reason.strip()):
                findings.append(Finding(
                    relpath, lineno, "suppression",
                    f"suppression of '{rule}' without a reason "
                    "(write: g6lint: allow(rule) -- why)"))
                continue
            if kind == "allow":
                self.line_allows.setdefault(lineno, set()).add(rule)
            elif kind == "allow-next-line":
                self.line_allows.setdefault(lineno + 1, set()).add(rule)
            elif kind == "begin-allow":
                open_blocks[rule] = lineno
            elif kind == "end-allow":
                if rule in open_blocks:
                    blocks.append((rule, open_blocks.pop(rule), lineno))
                else:
                    findings.append(Finding(relpath, lineno, "suppression",
                                            f"end-allow({rule}) without begin-allow"))
        for rule, start in open_blocks.items():
            findings.append(Finding(relpath, start, "suppression",
                                    f"begin-allow({rule}) never closed"))
        self.blocks = blocks

    def allowed(self, rule: str, lineno: int) -> bool:
        if rule in self.line_allows.get(lineno, set()):
            return True
        return any(r == rule and a <= lineno <= b for r, a, b in self.blocks)


def lint_file(root: pathlib.Path, relpath: str, findings: list[Finding]) -> None:
    text = (root / relpath).read_text(encoding="utf-8")
    lines = text.split("\n")
    sup = Suppressions(relpath, lines, findings)
    code_lines = [strip_code(l) for l in lines]

    in_raw_float_scope = relpath in RAW_FLOAT_SCOPE
    in_native_float_scope = relpath.startswith(NATIVE_FLOAT_SCOPE_PREFIXES)
    in_src = relpath.startswith("src/")
    in_serve_isolation_scope = (
        relpath.startswith(SERVE_ISOLATION_SCOPE_PREFIXES)
        and not relpath.startswith("src/serve/"))
    in_metric_name_scope = relpath.startswith(METRIC_NAME_SCOPE_PREFIXES)
    in_raw_socket_scope = (
        relpath.startswith(RAW_SOCKET_SCOPE_PREFIXES)
        and not relpath.startswith(RAW_SOCKET_EXEMPT_PREFIX))

    # raw-socket, include half: the socket headers are preprocessor lines,
    # which the main loop skips.
    if in_raw_socket_scope:
        for lineno, code in enumerate(code_lines, start=1):
            stripped = code.lstrip()
            if not stripped.startswith("#") or "include" not in stripped:
                continue
            raw = lines[lineno - 1]
            for hdr in RAW_SOCKET_HEADERS:
                if (f'"{hdr}"' in raw or f"<{hdr}>" in raw) \
                        and not sup.allowed("raw-socket", lineno):
                    findings.append(Finding(
                        relpath, lineno, "raw-socket",
                        f"socket header <{hdr}> outside src/wire/ — use the "
                        "wire layer's transport (wire/socket.hpp Socket/"
                        "ListenSocket) or WireServer / RemoteClient"))

    # serve-isolation, include half: preprocessor lines are skipped by the
    # main loop below, so internal-header includes get their own pass.
    if in_serve_isolation_scope:
        for lineno, code in enumerate(code_lines, start=1):
            stripped = code.lstrip()
            if not stripped.startswith("#") or "include" not in stripped:
                continue
            raw = lines[lineno - 1]  # includes live in the raw line's quotes
            for hdr in SERVE_INTERNAL_HEADERS:
                if (f'"{hdr}"' in raw or f"<{hdr}>" in raw) \
                        and not sup.allowed("serve-isolation", lineno):
                    findings.append(Finding(
                        relpath, lineno, "serve-isolation",
                        f"include of serving-layer internal header {hdr} "
                        "outside src/serve/ — include serve/serve.hpp and "
                        "go through GrapeService / ServeClient"))

    for lineno, code in enumerate(code_lines, start=1):
        if not code.strip() or code.lstrip().startswith("#"):
            continue

        if (in_serve_isolation_scope and SERVE_INTERNAL_RE.search(code)
                and not sup.allowed("serve-isolation", lineno)):
            findings.append(Finding(
                relpath, lineno, "serve-isolation",
                "use of a serving-layer internal type outside src/serve/ — "
                "JobQueue/Scheduler/BoardPartitioner/AdmissionController/"
                "JobRuntime are private; clients submit through "
                "ServeClient (serve/serve.hpp)"))

        if in_native_float_scope and re.search(r"\bfloat\b", code):
            if not sup.allowed("native-float", lineno):
                findings.append(Finding(
                    relpath, lineno, "native-float",
                    "native `float` is banned here; model narrow formats "
                    "with g6::FloatFormat"))

        arith = MULDIV_RE.search(code) or (
            ADDSUB_RE.search(code) and FP_EVIDENCE_RE.search(code))
        if in_raw_float_scope and arith:
            routed = any(tok in code for tok in ROUTING_TOKENS)
            integer = INTEGER_TYPE_RE.search(code) is not None
            if not routed and not integer and not sup.allowed("raw-float", lineno):
                findings.append(Finding(
                    relpath, lineno, "raw-float",
                    "floating-point arithmetic outside the g6 emulation "
                    "types in hardware-dataflow code; route through "
                    "FloatFormat / FixedPointCodec / BlockFloatAccumulator"))

        if in_src:
            for rx, name in NONDETERMINISM_RES:
                if rx.search(code) and not sup.allowed("nondeterminism", lineno):
                    findings.append(Finding(
                        relpath, lineno, "nondeterminism",
                        f"{name} is banned in src/ — use g6::Rng for "
                        "randomness and g6::obs::monotonic_seconds() for "
                        "timing"))

        if (in_src and relpath not in BARE_ABORT_EXEMPT
                and BARE_ABORT_RE.search(code)
                and not sup.allowed("bare-abort", lineno)):
            findings.append(Finding(
                relpath, lineno, "bare-abort",
                "process-killing call in src/ — throw a typed error from "
                "src/util/errors.hpp (TransientFault/HardFault) or use "
                "G6_REQUIRE so callers can retry or degrade gracefully"))

        if (in_src and not relpath.startswith(RAW_THREAD_EXEMPT_PREFIX)
                and RAW_THREAD_RE.search(code)
                and not sup.allowed("raw-thread", lineno)):
            findings.append(Finding(
                relpath, lineno, "raw-thread",
                "raw thread primitive outside src/exec/ — run work on the "
                "shared pool via g6::exec::TaskGroup / parallel_for "
                "(src/exec/thread_pool.hpp) so thread count stays one knob "
                "and the determinism contract holds"))

        if (in_raw_socket_scope and RAW_SOCKET_RE.search(code)
                and not sup.allowed("raw-socket", lineno)):
            findings.append(Finding(
                relpath, lineno, "raw-socket",
                "raw socket syscall outside src/wire/ — go through the "
                "wire layer (wire/socket.hpp, or WireServer / "
                "RemoteClient) so framing, EINTR and non-blocking "
                "discipline stay in one audited place"))

        if (relpath.startswith(SOA_ACCESS_SCOPE_PREFIXES)
                and not relpath.startswith(SOA_ACCESS_EXEMPT_PREFIXES)
                and SOA_ACCESS_RE.search(code)
                and not sup.allowed("soa-access", lineno)):
            findings.append(Finding(
                relpath, lineno, "soa-access",
                "AoS container of StoredJParticle outside src/hw|grape|"
                "fault — bulk j-particle storage is structure-of-arrays; "
                "hold a g6::JStore (hw/jstore.hpp) and go through its "
                "word accessors / column spans"))

        if (relpath.startswith(UNORDERED_SCOPE_PREFIXES)
                and UNORDERED_RE.search(code)
                and not sup.allowed("unordered-iter", lineno)):
            findings.append(Finding(
                relpath, lineno, "unordered-iter",
                "unordered container: its iteration order is "
                "run-to-run nondeterministic and poisons anything it "
                "feeds (exports, accumulation, scheduling) — use "
                "std::map / a sorted vector / index iteration, or "
                "suppress with a rationale proving the order never "
                "escapes"))

        if (relpath.startswith(DURABLE_WRITES_SCOPE_PREFIXES)
                and relpath not in DURABLE_WRITES_EXEMPT
                and DURABLE_WRITES_RE.search(code)
                and not sup.allowed("durable-writes", lineno)):
            findings.append(Finding(
                relpath, lineno, "durable-writes",
                "bare std::ofstream persistence — write through "
                "util/fileio.hpp (write_file_atomic for re-creatable "
                "exports, write_file_atomic_durable for recovery-critical "
                "state, AppendLog for journals) so a crash can never "
                "leave a torn file"))

        if (in_src and VOLATILE_RE.search(code)
                and not sup.allowed("volatile-sync", lineno)):
            findings.append(Finding(
                relpath, lineno, "volatile-sync",
                "volatile is not a synchronization primitive — use "
                "std::atomic for lock-free flags or guard the state "
                "with g6::Mutex (util/mutex.hpp) so TSan and "
                "-Wthread-safety can check it"))

        if in_metric_name_scope:
            # Needs the raw literal, so runs on a comment-stripped (not
            # string-blanked) view of the line.
            for m in METRIC_CALL_RE.finditer(strip_comments(lines[lineno - 1])):
                if m.group(2) is None:
                    continue  # "prefix." + kind — a fragment, not a name
                name = m.group(1)
                if not METRIC_NAME_RE.match(name) \
                        and not sup.allowed("metric-name", lineno):
                    findings.append(Finding(
                        relpath, lineno, "metric-name",
                        f"instrument/span name '{name}' must be a "
                        "dot-separated lowercase path like "
                        "'subsystem.name' (segments [a-z0-9_], '-' "
                        "allowed after the first dot) so g6report "
                        "grouping, per-job scopes and determinism "
                        "checks can key on it"))

        if (in_src and not relpath.startswith(RAW_TIMING_EXEMPT_PREFIX)
                and RAW_TIMING_RE.search(code)
                and not sup.allowed("raw-timing", lineno)):
            findings.append(Finding(
                relpath, lineno, "raw-timing",
                "raw clock access outside src/obs/ — time through "
                "g6::obs::monotonic_seconds() (src/obs/clock.hpp) so all "
                "instrumentation shares the telemetry clock"))

    # require-at-api: per-file presence check.
    if (in_src and relpath.endswith(".cpp") and relpath not in REQUIRE_EXEMPT
            and not REQUIRE_RE.search(text)):
        findings.append(Finding(
            relpath, 1, "require-at-api",
            "public API translation unit has no G6_REQUIRE precondition "
            "check; validate inputs at the API boundary (or exempt the "
            "file in g6lint.py with a reason)"))

    # nolint-comment: every NOLINT needs a rationale nearby.
    for lineno, raw in enumerate(lines, start=1):
        if NOLINT_RE.search(comment_part(raw)):
            here = comment_part(raw)
            prev = comment_part(lines[lineno - 2]) if lineno >= 2 else ""
            # A rationale = comment text beyond the bare marker itself.
            rationale = re.sub(r"\bNOLINT(?:NEXTLINE|BEGIN|END)?\b(\([^)]*\))?",
                               "", here + " " + prev)
            rationale = rationale.replace("//", " ").strip(" -:\t")
            if len(rationale) < 10 and not sup.allowed("nolint-comment", lineno):
                findings.append(Finding(
                    relpath, lineno, "nolint-comment",
                    "NOLINT without a rationale comment on the same or "
                    "preceding line"))


def collect_targets(root: pathlib.Path) -> list[str]:
    # src/ carries every rule; tools/, bench/ and examples/ are scanned
    # for the cross-cutting boundary rules (serve-isolation,
    # nolint-comment) — the src-scoped rules gate themselves by prefix.
    targets = []
    for sub in ("src", "tools", "bench", "examples"):
        if not (root / sub).is_dir():
            continue
        for p in sorted((root / sub).rglob("*")):
            if p.suffix in (".hpp", ".cpp") and p.is_file():
                targets.append(str(p.relative_to(root)))
    return targets


DEFAULT_BASELINE = "tools/lint/g6lint_baseline.json"


def load_baseline(path: pathlib.Path) -> dict[str, int]:
    """{"path/to/file.cpp:rule": count} of tolerated findings."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v > 0
            for k, v in data.items()):
        raise ValueError(
            "baseline must map 'path:rule' strings to positive counts")
    return data


def apply_baseline(findings: list[Finding],
                   baseline: dict[str, int]) -> tuple[list[Finding],
                                                      dict[str, int]]:
    """Suppress up to baseline[path:rule] findings per key; the rest stay.

    Returns (kept findings, stale keys -> unused slack). Stale slack means
    the tree got cleaner than the baseline records — the ratchet should be
    re-tightened with --update-baseline.
    """
    budget = dict(baseline)
    kept = []
    for f in findings:
        key = f"{f.path}:{f.rule}"
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            kept.append(f)
    stale = {k: v for k, v in budget.items() if v > 0}
    return kept, stale


def write_baseline(path: pathlib.Path, findings: list[Finding]) -> None:
    counts: dict[str, int] = {}
    for f in findings:
        key = f"{f.path}:{f.rule}"
        counts[key] = counts.get(key, 0) + 1
    path.write_text(
        json.dumps(dict(sorted(counts.items())), indent=2) + "\n",
        encoding="utf-8")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--baseline", default=None,
                    help=f"baseline file (default: {DEFAULT_BASELINE} "
                         "under --root; pass an empty string to disable)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from the current findings "
                         "and exit 0")
    ap.add_argument("paths", nargs="*",
                    help="files to lint (default: all of src/)")
    args = ap.parse_args()

    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"g6lint: {root} does not look like the repo root", file=sys.stderr)
        return 2

    for relpath, reason in REQUIRE_EXEMPT.items():
        if not reason.strip():
            print(f"g6lint: exemption for {relpath} lacks a reason", file=sys.stderr)
            return 2

    targets = args.paths or collect_targets(root)
    findings: list[Finding] = []
    for rel in targets:
        rp = pathlib.Path(rel)
        if rp.is_absolute():
            try:
                rel = str(rp.relative_to(root))
            except ValueError:
                print(f"g6lint: {rp} is outside the repo root {root}",
                      file=sys.stderr)
                return 2
        if not (root / rel).is_file():
            print(f"g6lint: no such file: {rel}", file=sys.stderr)
            return 2
        lint_file(root, rel, findings)

    if args.baseline == "":
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = pathlib.Path(args.baseline)
    else:
        baseline_path = root / DEFAULT_BASELINE

    if args.update_baseline:
        if baseline_path is None:
            print("g6lint: --update-baseline needs a baseline path",
                  file=sys.stderr)
            return 2
        write_baseline(baseline_path, findings)
        print(f"g6lint: baseline updated ({len(findings)} finding(s) "
              f"grandfathered in {baseline_path})", file=sys.stderr)
        return 0

    stale: dict[str, int] = {}
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, json.JSONDecodeError) as e:
            print(f"g6lint: bad baseline {baseline_path}: {e}",
                  file=sys.stderr)
            return 2
        # Only meaningful against a full scan: a partial file list would
        # consume baseline slots it never checked and mask real findings.
        if not args.paths:
            findings, stale = apply_baseline(findings, baseline)

    for f in findings:
        print(f)
    for key, slack in sorted(stale.items()):
        print(f"g6lint: baseline for {key} has {slack} unused slot(s) — "
              "tighten the ratchet with --update-baseline", file=sys.stderr)
    if findings:
        print(f"g6lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"g6lint: clean ({len(targets)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
