#!/usr/bin/env python3
"""Self-test for g6lint, focused on the rule mechanics that are easy to
regress: the raw-timing clock ban, its src/obs/ exemption, and the
suppression escape hatch. Runs as the `g6lint_selftest` ctest."""

from __future__ import annotations

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import g6lint  # noqa: E402


class LintHarness(unittest.TestCase):
    """Write a file into a throwaway repo root and lint it."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        (self.root / "src").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def lint(self, relpath: str, content: str):
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        findings = []
        g6lint.lint_file(self.root, relpath, findings)
        return findings

    def rules_of(self, findings):
        return [f.rule for f in findings]


class RawTimingTest(LintHarness):
    def test_std_chrono_banned_in_src(self):
        findings = self.lint(
            "src/tree/timer.cpp",
            "#include <chrono>\n"
            "void f() { auto t = std::chrono::steady_clock::now(); }\n"
            "void g() { G6_REQUIRE(true); }\n")
        self.assertIn("raw-timing", self.rules_of(findings))

    def test_clock_gettime_banned_in_src(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { timespec ts; clock_gettime(CLOCK_MONOTONIC, &ts);\n"
            "  G6_REQUIRE(true); }\n")
        self.assertIn("raw-timing", self.rules_of(findings))

    def test_gettimeofday_banned_in_src(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { timeval tv; gettimeofday(&tv, nullptr);\n"
            "  G6_REQUIRE(true); }\n")
        self.assertIn("raw-timing", self.rules_of(findings))

    def test_obs_is_exempt(self):
        findings = self.lint(
            "src/obs/clock2.cpp",
            "#include <chrono>\n"
            "double now() { G6_REQUIRE(true);\n"
            "  return std::chrono::duration<double>(\n"
            "      std::chrono::steady_clock::now().time_since_epoch()).count(); }\n")
        self.assertNotIn("raw-timing", self.rules_of(findings))

    def test_include_line_is_not_flagged(self):
        # The directive itself carries no clock read; only code does.
        findings = self.lint(
            "src/net/t.cpp",
            "#include <chrono>\nvoid f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-timing", self.rules_of(findings))

    def test_comment_mention_is_not_flagged(self):
        findings = self.lint(
            "src/net/t.cpp",
            "// replaced std::chrono with obs::monotonic_seconds()\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-timing", self.rules_of(findings))

    def test_suppression_with_reason(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { auto t = std::chrono::steady_clock::now(); "
            "(void)t; }  // g6lint: allow(raw-timing) -- test fixture\n"
            "void g() { G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-timing", self.rules_of(findings))

    def test_suppression_without_reason_is_a_finding(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { auto t = std::chrono::steady_clock::now(); "
            "(void)t; }  // g6lint: allow(raw-timing)\n"
            "void g() { G6_REQUIRE(true); }\n")
        rules = self.rules_of(findings)
        self.assertIn("suppression", rules)
        self.assertIn("raw-timing", rules)

    def test_raw_timing_outside_src_is_fine(self):
        # bench/tools/tests time freely; the rule scopes to src/.
        findings = self.lint(
            "bench/t.cpp",
            "void f() { auto t = std::chrono::steady_clock::now(); (void)t; }\n")
        self.assertNotIn("raw-timing", self.rules_of(findings))


class RawThreadTest(LintHarness):
    """The raw-thread rule: parallelism goes through g6::exec only."""

    def test_std_thread_banned_in_src(self):
        findings = self.lint(
            "src/tree/t.cpp",
            "#include <thread>\n"
            "void f() { std::thread t([] {}); t.join(); G6_REQUIRE(true); }\n")
        self.assertIn("raw-thread", self.rules_of(findings))

    def test_std_jthread_banned_in_src(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { std::jthread t([] {}); G6_REQUIRE(true); }\n")
        self.assertIn("raw-thread", self.rules_of(findings))

    def test_std_async_banned_in_src(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { auto fut = std::async([] {}); fut.get();\n"
            "  G6_REQUIRE(true); }\n")
        self.assertIn("raw-thread", self.rules_of(findings))

    def test_this_thread_banned_in_src(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { std::this_thread::yield(); G6_REQUIRE(true); }\n")
        self.assertIn("raw-thread", self.rules_of(findings))

    def test_exec_is_exempt(self):
        findings = self.lint(
            "src/exec/pool2.cpp",
            "#include <thread>\n"
            "void f() { std::thread t([] {}); t.join(); G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-thread", self.rules_of(findings))

    def test_comment_mention_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "// ported the std::thread pool to exec::parallel_for\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-thread", self.rules_of(findings))

    def test_identifier_suffix_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f(Pool& p) { p.thread_count(); my::async(1);\n"
            "  G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-thread", self.rules_of(findings))

    def test_tools_and_tests_are_out_of_scope(self):
        findings = self.lint(
            "tests/t.cpp", "void f() { std::thread t([] {}); t.join(); }\n")
        self.assertNotIn("raw-thread", self.rules_of(findings))

    def test_suppression_with_reason_works(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { std::thread t([] {}); t.join(); }"
            "  // g6lint: allow(raw-thread) -- test fixture\n"
            "void g() { G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-thread", self.rules_of(findings))

    def test_rule_is_registered(self):
        self.assertIn("raw-thread", g6lint.RULES)


class RawSocketTest(LintHarness):
    """The raw-socket rule: socket primitives live in src/wire/ only."""

    def test_socket_header_banned_in_src(self):
        findings = self.lint(
            "src/net/sock.cpp",
            "#include <sys/socket.h>\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertIn("raw-socket", self.rules_of(findings))

    def test_socket_header_banned_in_tools(self):
        findings = self.lint(
            "tools/t.cpp",
            "#include <netinet/in.h>\nint main() { return 0; }\n")
        self.assertIn("raw-socket", self.rules_of(findings))

    def test_socket_syscall_banned_in_src(self):
        findings = self.lint(
            "src/net/sock.cpp",
            "void f() { int fd = ::socket(2, 1, 0); (void)fd;\n"
            "  G6_REQUIRE(true); }\n")
        self.assertIn("raw-socket", self.rules_of(findings))

    def test_send_recv_poll_banned_in_src(self):
        findings = self.lint(
            "src/net/sock.cpp",
            "void f(int fd, char* b) { ::send(fd, b, 1, 0);\n"
            "  ::recv(fd, b, 1, 0);\n"
            "  ::poll(nullptr, 0, 0);\n"
            "  G6_REQUIRE(true); }\n")
        rules = self.rules_of(findings)
        self.assertEqual(rules.count("raw-socket"), 3)

    def test_wire_is_exempt(self):
        findings = self.lint(
            "src/wire/socket2.cpp",
            "#include <sys/socket.h>\n"
            "void f() { int fd = ::socket(2, 1, 0); (void)fd;\n"
            "  G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-socket", self.rules_of(findings))

    def test_unqualified_send_method_is_fine(self):
        # send()/recv()/bind() methods and free functions on our own
        # types: only the ::-qualified syscall spelling is in scope.
        findings = self.lint(
            "src/net/nic.cpp",
            "void f(Nic& n, Msg m) { n.send(m); n.recv(); my::poll(n);\n"
            "  G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-socket", self.rules_of(findings))

    def test_comment_mention_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "// the wire layer owns ::socket / <sys/socket.h>\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-socket", self.rules_of(findings))

    def test_tests_are_out_of_scope(self):
        findings = self.lint(
            "tests/wire/t.cpp",
            "#include <sys/socket.h>\n"
            "void f() { ::socket(2, 1, 0); }\n")
        self.assertNotIn("raw-socket", self.rules_of(findings))

    def test_suppression_with_reason_works(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { ::poll(nullptr, 0, 0); }"
            "  // g6lint: allow(raw-socket) -- test fixture\n"
            "void g() { G6_REQUIRE(true); }\n")
        self.assertNotIn("raw-socket", self.rules_of(findings))

    def test_rule_is_registered(self):
        self.assertIn("raw-socket", g6lint.RULES)


class BareAbortTest(LintHarness):
    """The bare-abort rule: process-killing calls must be typed errors."""

    def test_abort_banned_in_src(self):
        findings = self.lint(
            "src/grape/t.cpp",
            "void f() { if (bad) std::abort(); G6_REQUIRE(true); }\n")
        self.assertIn("bare-abort", self.rules_of(findings))

    def test_bare_exit_banned_in_src(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { exit(1); G6_REQUIRE(true); }\n")
        self.assertIn("bare-abort", self.rules_of(findings))

    def test_quick_exit_banned_in_src(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { std::quick_exit(3); G6_REQUIRE(true); }\n")
        self.assertIn("bare-abort", self.rules_of(findings))

    def test_check_hpp_is_exempt(self):
        findings = self.lint(
            "src/util/check.hpp",
            "inline void die() { std::abort(); }\n")
        self.assertNotIn("bare-abort", self.rules_of(findings))

    def test_member_named_exit_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f(Scope& s) { s.exit(); scope->exit(); G6_REQUIRE(true); }\n")
        self.assertNotIn("bare-abort", self.rules_of(findings))

    def test_identifier_suffix_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { on_exit(7); my_abort(); G6_REQUIRE(true); }\n")
        self.assertNotIn("bare-abort", self.rules_of(findings))

    def test_comment_and_string_mentions_are_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "// callers must not abort(); throw HardFault instead\n"
            "void f() { log(\"would exit(1) here\"); G6_REQUIRE(true); }\n")
        self.assertNotIn("bare-abort", self.rules_of(findings))

    def test_tools_and_tests_are_out_of_scope(self):
        findings = self.lint("tools/t.cpp", "void f() { exit(2); }\n")
        self.assertNotIn("bare-abort", self.rules_of(findings))

    def test_suppression_with_reason_works(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { std::abort(); }"
            "  // g6lint: allow(bare-abort) -- unreachable fallback\n"
            "void g() { G6_REQUIRE(true); }\n")
        self.assertNotIn("bare-abort", self.rules_of(findings))

    def test_rule_is_registered(self):
        self.assertIn("bare-abort", g6lint.RULES)


class ServeIsolationTest(LintHarness):
    """The serve-isolation rule: scheduling internals stay in src/serve."""

    def test_internal_header_include_banned_in_src(self):
        findings = self.lint(
            "src/core/t.cpp",
            "#include \"serve/scheduler.hpp\"\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertIn("serve-isolation", self.rules_of(findings))

    def test_internal_header_include_banned_in_tools(self):
        findings = self.lint(
            "tools/t.cpp",
            "#include \"serve/job_queue.hpp\"\n"
            "int main() { return 0; }\n")
        self.assertIn("serve-isolation", self.rules_of(findings))

    def test_every_internal_header_is_covered(self):
        for hdr in ("serve/job_queue.hpp", "serve/scheduler.hpp",
                    "serve/partition.hpp", "serve/admission.hpp",
                    "serve/job.hpp"):
            findings = self.lint(
                "bench/t.cpp", f"#include \"{hdr}\"\nvoid f() {{}}\n")
            self.assertIn("serve-isolation", self.rules_of(findings),
                          msg=hdr)

    def test_internal_type_use_banned(self):
        findings = self.lint(
            "src/core/t.cpp",
            "void f(g6::serve::Scheduler& s) { (void)s; G6_REQUIRE(true); }\n")
        self.assertIn("serve-isolation", self.rules_of(findings))

    def test_internal_type_use_banned_in_examples(self):
        findings = self.lint(
            "examples/t.cpp",
            "void f() { g6::serve::BoardPartitioner p(4); (void)p; }\n")
        self.assertIn("serve-isolation", self.rules_of(findings))

    def test_public_surface_is_fine(self):
        findings = self.lint(
            "tools/t.cpp",
            "#include \"serve/serve.hpp\"\n"
            "#include \"serve/types.hpp\"\n"
            "#include \"serve/service.hpp\"\n"
            "#include \"serve/manifest.hpp\"\n"
            "void f() { g6::serve::GrapeService svc({});\n"
            "  g6::serve::ServeClient c = svc.client(); (void)c; }\n")
        self.assertNotIn("serve-isolation", self.rules_of(findings))

    def test_src_serve_itself_is_exempt(self):
        findings = self.lint(
            "src/serve/scheduler2.cpp",
            "#include \"serve/job_queue.hpp\"\n"
            "void f(g6::serve::JobQueue& q) { (void)q; G6_REQUIRE(true); }\n")
        self.assertNotIn("serve-isolation", self.rules_of(findings))

    def test_tests_are_exempt_white_box(self):
        findings = self.lint(
            "tests/serve/t.cpp",
            "#include \"serve/scheduler.hpp\"\n"
            "void f(g6::serve::Scheduler& s) { (void)s; }\n")
        self.assertNotIn("serve-isolation", self.rules_of(findings))

    def test_comment_mention_is_fine(self):
        findings = self.lint(
            "src/core/t.cpp",
            "// the serve::Scheduler round loop owns dispatch ordering\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("serve-isolation", self.rules_of(findings))

    def test_suppression_with_reason_works(self):
        findings = self.lint(
            "tools/t.cpp",
            "#include \"serve/scheduler.hpp\""
            "  // g6lint: allow(serve-isolation) -- scheduler debug dumper\n"
            "int main() { return 0; }\n")
        self.assertNotIn("serve-isolation", self.rules_of(findings))

    def test_collect_targets_scans_tools_bench_examples(self):
        for sub in ("tools", "bench", "examples"):
            d = self.root / sub
            d.mkdir(exist_ok=True)
            (d / "x.cpp").write_text("void f() {}\n")
        targets = g6lint.collect_targets(self.root)
        self.assertIn("tools/x.cpp", targets)
        self.assertIn("bench/x.cpp", targets)
        self.assertIn("examples/x.cpp", targets)

    def test_rule_is_registered(self):
        self.assertIn("serve-isolation", g6lint.RULES)


class UnorderedIterTest(LintHarness):
    """The unordered-iter determinism rule: no hash-order iteration."""

    def test_unordered_map_banned_in_src(self):
        findings = self.lint(
            "src/net/t.cpp",
            "#include <unordered_map>\n"
            "std::unordered_map<int, double> table;\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertIn("unordered-iter", self.rules_of(findings))

    def test_unordered_set_banned_in_tools(self):
        findings = self.lint(
            "tools/t.cpp",
            "std::unordered_set<int> seen;\n"
            "int main() { return 0; }\n")
        self.assertIn("unordered-iter", self.rules_of(findings))

    def test_multi_variants_covered(self):
        for ty in ("std::unordered_multimap<int, int> m;",
                   "std::unordered_multiset<int> s;"):
            findings = self.lint("bench/t.cpp", ty + "\n")
            self.assertIn("unordered-iter", self.rules_of(findings), msg=ty)

    def test_ordered_map_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "std::map<std::string, double> table;\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("unordered-iter", self.rules_of(findings))

    def test_comment_mention_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "// a std::unordered_map would break export determinism\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("unordered-iter", self.rules_of(findings))

    def test_examples_and_tests_out_of_scope(self):
        for rel in ("examples/t.cpp", "tests/net/t.cpp"):
            findings = self.lint(rel, "std::unordered_map<int, int> m;\n")
            self.assertNotIn("unordered-iter", self.rules_of(findings),
                             msg=rel)

    def test_suppression_with_reason_works(self):
        findings = self.lint(
            "src/net/t.cpp",
            "std::unordered_map<int, int> m;"
            "  // g6lint: allow(unordered-iter) -- only .at() lookups, "
            "never iterated\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("unordered-iter", self.rules_of(findings))

    def test_rule_is_registered(self):
        self.assertIn("unordered-iter", g6lint.RULES)


class VolatileSyncTest(LintHarness):
    """The volatile-sync rule: volatile is not synchronization."""

    def test_volatile_banned_in_src(self):
        findings = self.lint(
            "src/net/t.cpp",
            "volatile bool ready = false;\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertIn("volatile-sync", self.rules_of(findings))

    def test_atomic_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "std::atomic<bool> ready{false};\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("volatile-sync", self.rules_of(findings))

    def test_comment_and_string_mentions_are_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "// volatile would not be enough here; atomics give ordering\n"
            "void f() { log(\"volatile\"); G6_REQUIRE(true); }\n")
        self.assertNotIn("volatile-sync", self.rules_of(findings))

    def test_tools_and_tests_out_of_scope(self):
        for rel in ("tools/t.cpp", "tests/obs/t.cpp"):
            findings = self.lint(rel, "volatile int sink = 0;\n")
            self.assertNotIn("volatile-sync", self.rules_of(findings),
                             msg=rel)

    def test_suppression_with_reason_works(self):
        findings = self.lint(
            "src/net/t.cpp",
            "volatile int sink;"
            "  // g6lint: allow(volatile-sync) -- benchmark sink defeating "
            "dead-code elimination, single-threaded\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("volatile-sync", self.rules_of(findings))

    def test_rule_is_registered(self):
        self.assertIn("volatile-sync", g6lint.RULES)


class MetricNameTest(LintHarness):
    """The metric-name rule: instrument names are dotted lowercase paths."""

    def test_undotted_counter_name_flagged(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { reg().counter(\"messages\").add(1);\n"
            "  G6_REQUIRE(true); }\n")
        self.assertIn("metric-name", self.rules_of(findings))

    def test_uppercase_span_name_flagged(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { G6_PHASE(\"Net.Send\"); G6_REQUIRE(true); }\n")
        self.assertIn("metric-name", self.rules_of(findings))

    def test_gauge_histogram_and_phasespan_covered(self):
        for stmt in ("reg().gauge(\"depth\").set(1.0);",
                     "reg().histogram(\"sizes\", 0.0, 1.0, 8).observe(0.5);",
                     "obs::PhaseSpan span(\"send\");"):
            findings = self.lint(
                "src/net/t.cpp",
                f"void f() {{ {stmt} G6_REQUIRE(true); }}\n")
            self.assertIn("metric-name", self.rules_of(findings), msg=stmt)

    def test_dotted_lowercase_names_are_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { reg().counter(\"net.messages\").add(1);\n"
            "  reg().gauge(\"serve.queue.depth\").set(0.0);\n"
            "  G6_PHASE(\"hermite.j-send\");\n"
            "  reg().histogram(\"hermite.block_size\", 0.0, 1.0, 8);\n"
            "  G6_REQUIRE(true); }\n")
        self.assertNotIn("metric-name", self.rules_of(findings))

    def test_hyphen_banned_in_first_segment(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { G6_PHASE(\"j-send.start\"); G6_REQUIRE(true); }\n")
        self.assertIn("metric-name", self.rules_of(findings))

    def test_concatenated_prefix_fragment_skipped(self):
        # "fault.detected." + kind builds the name at runtime; the literal
        # alone is not a full name and is not judged as one.
        findings = self.lint(
            "src/net/t.cpp",
            "void f(const std::string& kind) {\n"
            "  reg().counter(\"fault.detected.\" + kind).add(1);\n"
            "  G6_REQUIRE(true); }\n")
        self.assertNotIn("metric-name", self.rules_of(findings))

    def test_comment_mention_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "// the old G6_PHASE(\"predict\") span is now hermite.predict\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("metric-name", self.rules_of(findings))

    def test_tools_and_bench_in_scope_tests_exempt(self):
        bad = "void f() { reg().counter(\"Messages\").add(1); }\n"
        for rel in ("tools/t.cpp", "bench/t.cpp", "examples/t.cpp"):
            self.assertIn("metric-name",
                          self.rules_of(self.lint(rel, bad)), msg=rel)
        self.assertNotIn("metric-name",
                         self.rules_of(self.lint("tests/obs/t.cpp", bad)))

    def test_suppression_with_reason_works(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { reg().counter(\"legacy_total\").add(1); }"
            "  // g6lint: allow(metric-name) -- pinned by an external "
            "dashboard\n"
            "void g() { G6_REQUIRE(true); }\n")
        self.assertNotIn("metric-name", self.rules_of(findings))

    def test_rule_is_registered(self):
        self.assertIn("metric-name", g6lint.RULES)


class DurableWritesTest(LintHarness):
    """The durable-writes rule: persistence goes through util/fileio.hpp."""

    def test_ofstream_banned_in_src(self):
        findings = self.lint(
            "src/nbody/writer.cpp",
            "#include <fstream>\n"
            "void f() { std::ofstream os(\"out.json\"); os << 1;\n"
            "  G6_REQUIRE(true); }\n")
        self.assertIn("durable-writes", self.rules_of(findings))

    def test_ofstream_banned_in_tools(self):
        findings = self.lint(
            "tools/dumper.cpp",
            "void f() { std::ofstream os(\"report.json\"); }\n")
        self.assertIn("durable-writes", self.rules_of(findings))

    def test_fileio_implementation_is_exempt(self):
        findings = self.lint(
            "src/util/fileio.cpp",
            "void g6_write() { std::ofstream os(\"tmp\"); G6_REQUIRE(true); }\n")
        self.assertNotIn("durable-writes", self.rules_of(findings))

    def test_tests_and_bench_out_of_scope(self):
        bad = "void f() { std::ofstream os(\"x\"); }\n"
        self.assertNotIn("durable-writes",
                         self.rules_of(self.lint("tests/util/t.cpp", bad)))
        self.assertNotIn("durable-writes",
                         self.rules_of(self.lint("bench/t.cpp", bad)))

    def test_comment_mention_is_fine(self):
        findings = self.lint(
            "src/net/t.cpp",
            "// replaced std::ofstream with write_file_atomic\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("durable-writes", self.rules_of(findings))

    def test_suppression_with_reason_works(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { std::ofstream os(\"/dev/null\"); }"
            "  // g6lint: allow(durable-writes) -- sink, never persists\n"
            "void g() { G6_REQUIRE(true); }\n")
        self.assertNotIn("durable-writes", self.rules_of(findings))

    def test_rule_is_registered(self):
        self.assertIn("durable-writes", g6lint.RULES)


class SoaAccessTest(LintHarness):
    """The soa-access rule: bulk j-particle storage is SoA (JStore);
    AoS containers of StoredJParticle stay inside src/hw|grape|fault."""

    def test_vector_banned_outside_owning_layers(self):
        findings = self.lint(
            "src/serve/cache.cpp",
            "void f() { std::vector<StoredJParticle> js(64);\n"
            "  G6_REQUIRE(true); }\n")
        self.assertIn("soa-access", self.rules_of(findings))

    def test_span_and_array_banned_too(self):
        bad_span = ("void f(std::span<const StoredJParticle> js) {\n"
                    "  G6_REQUIRE(!js.empty()); }\n")
        bad_array = ("void f() { std::array<StoredJParticle, 4> js{};\n"
                     "  G6_REQUIRE(true); }\n")
        self.assertIn("soa-access",
                      self.rules_of(self.lint("src/perf/t.cpp", bad_span)))
        self.assertIn("soa-access",
                      self.rules_of(self.lint("tools/dump.cpp", bad_array)))

    def test_owning_layers_are_exempt(self):
        aos = ("void f() { std::vector<StoredJParticle> js(64);\n"
               "  G6_REQUIRE(true); }\n")
        for path in ("src/hw/jstore2.cpp", "src/grape/upload.cpp",
                     "src/fault/scrub.cpp"):
            self.assertNotIn("soa-access", self.rules_of(self.lint(path, aos)))

    def test_single_word_in_flight_is_fine(self):
        findings = self.lint(
            "src/serve/cache.cpp",
            "StoredJParticle quantize_one() { StoredJParticle p;\n"
            "  G6_REQUIRE(true); return p; }\n")
        self.assertNotIn("soa-access", self.rules_of(findings))

    def test_comment_mention_is_fine(self):
        findings = self.lint(
            "src/serve/cache.cpp",
            "// migrated off std::vector<StoredJParticle> to JStore\n"
            "void f() { G6_REQUIRE(true); }\n")
        self.assertNotIn("soa-access", self.rules_of(findings))

    def test_suppression_with_reason_works(self):
        findings = self.lint(
            "src/serve/cache.cpp",
            "void f() { std::vector<StoredJParticle> js;  "
            "// g6lint: allow(soa-access) -- serialization shim, not iterated\n"
            "  G6_REQUIRE(true); }\n")
        self.assertNotIn("soa-access", self.rules_of(findings))

    def test_rule_is_registered(self):
        self.assertIn("soa-access", g6lint.RULES)


class BaselineTest(LintHarness):
    """The grandfathering baseline: counted suppression with a ratchet."""

    def _finding(self, path, rule):
        return g6lint.Finding(path, 1, rule, "msg")

    def test_baselined_findings_are_suppressed(self):
        findings = [self._finding("src/a.cpp", "volatile-sync")]
        kept, stale = g6lint.apply_baseline(
            findings, {"src/a.cpp:volatile-sync": 1})
        self.assertEqual(kept, [])
        self.assertEqual(stale, {})

    def test_findings_beyond_count_still_fail(self):
        findings = [self._finding("src/a.cpp", "volatile-sync")
                    for _ in range(3)]
        kept, _ = g6lint.apply_baseline(
            findings, {"src/a.cpp:volatile-sync": 2})
        self.assertEqual(len(kept), 1)

    def test_other_rules_and_files_unaffected(self):
        findings = [self._finding("src/a.cpp", "volatile-sync"),
                    self._finding("src/b.cpp", "volatile-sync"),
                    self._finding("src/a.cpp", "unordered-iter")]
        kept, _ = g6lint.apply_baseline(
            findings, {"src/a.cpp:volatile-sync": 1})
        self.assertEqual(len(kept), 2)

    def test_stale_baseline_is_reported(self):
        kept, stale = g6lint.apply_baseline(
            [], {"src/gone.cpp:volatile-sync": 2})
        self.assertEqual(kept, [])
        self.assertEqual(stale, {"src/gone.cpp:volatile-sync": 2})

    def test_update_roundtrip(self):
        findings = [self._finding("src/a.cpp", "volatile-sync"),
                    self._finding("src/a.cpp", "volatile-sync"),
                    self._finding("src/b.cpp", "unordered-iter")]
        path = self.root / "baseline.json"
        g6lint.write_baseline(path, findings)
        loaded = g6lint.load_baseline(path)
        self.assertEqual(loaded, {"src/a.cpp:volatile-sync": 2,
                                  "src/b.cpp:unordered-iter": 1})
        kept, stale = g6lint.apply_baseline(findings, loaded)
        self.assertEqual(kept, [])
        self.assertEqual(stale, {})

    def test_missing_file_is_empty(self):
        self.assertEqual(
            g6lint.load_baseline(self.root / "nope.json"), {})

    def test_malformed_baseline_rejected(self):
        path = self.root / "baseline.json"
        path.write_text('{"src/a.cpp:volatile-sync": "two"}')
        with self.assertRaises(ValueError):
            g6lint.load_baseline(path)

    def test_shipped_baseline_is_empty(self):
        shipped = pathlib.Path(__file__).resolve().parent / \
            "g6lint_baseline.json"
        self.assertEqual(g6lint.load_baseline(shipped), {})


class OtherRulesSmokeTest(LintHarness):
    """The pre-existing rules keep working alongside the new one."""

    def test_nondeterminism_still_fires(self):
        findings = self.lint(
            "src/net/t.cpp",
            "void f() { int x = rand(); (void)x; G6_REQUIRE(true); }\n")
        self.assertIn("nondeterminism", self.rules_of(findings))

    def test_require_at_api_still_fires(self):
        findings = self.lint("src/net/t.cpp", "void f() {}\n")
        self.assertIn("require-at-api", self.rules_of(findings))

    def test_clean_file_is_clean(self):
        findings = self.lint(
            "src/net/t.cpp",
            "#include \"obs/clock.hpp\"\n"
            "double f() { G6_REQUIRE(true); return g6::obs::monotonic_seconds(); }\n")
        self.assertEqual(findings, [])

    def test_rule_is_registered(self):
        self.assertIn("raw-timing", g6lint.RULES)


if __name__ == "__main__":
    unittest.main()
