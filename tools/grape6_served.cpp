// grape6_served — the remote serving daemon (docs/SERVING.md, "Wire
// protocol").
//
// Binds a grape6-wire-v1 socket endpoint, fronts one GrapeService, and
// serves many concurrent clients: submissions ride the same admission
// controller a local run uses (a reject travels back over the wire with
// its reason verbatim), subscribed connections get streamed per-quantum
// progress instead of polling, and autoscaling jobs grow/shrink their
// board leases under queue pressure exactly as in-process runs do.
//
//   grape6_served --listen=unix:/tmp/grape6.sock
//   grape6_served --listen=tcp:127.0.0.1:0       # ephemeral port, printed
//
// The service shape comes from --manifest (its "service" section; any
// "jobs" are submitted at startup before remote ones) or defaults.
// Durable mode and crash recovery mirror grape6_serve:
//
//   grape6_served --listen=... --journal=serve.wal --checkpoint-dir=ckpts
//   grape6_served --listen=... --recover=serve.wal
//
// Lifecycle: the daemon serves until a client sends a `drain` request
// (service stops admitting; the daemon exits once all live work and
// output bytes are flushed) or SIGTERM/SIGINT (graceful drain: running
// jobs checkpoint, journal records a `drained`, resume via --recover).
//
// Outputs on exit: optional per-job snapshots (<out>_<name>.snap,
// byte-identical to standalone runs — the wire_identity ctest cmp's
// them), a grape6-serve-report-v1 report, and metrics JSON including the
// wire.* instruments.
//
// Exit codes: 0 = every job completed; 3 = some failed/rejected/
// quarantined; 1 = driver error (bad endpoint, malformed journal, ...).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/grape6.hpp"
#include "obs/json.hpp"
#include "util/fileio.hpp"

namespace {

using namespace g6;

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

void write_eq10(std::ostream& os, const obs::Eq10Accumulator& eq) {
  os << "{\"host_s\":" << eq.host_s << ",\"dma_s\":" << eq.dma_s
     << ",\"net_s\":" << eq.net_s << ",\"grape_s\":" << eq.grape_s
     << ",\"total_s\":" << eq.total_s << ",\"steps\":" << eq.steps
     << ",\"blocksteps\":" << eq.blocksteps << "}";
}

// Same shape as grape6_serve's report (schema grape6-serve-report-v1):
// a remote run's report diffs cleanly against a local one.
void write_report(const std::string& path, const serve::GrapeService& service,
                  const std::vector<std::pair<serve::JobId, std::string>>&
                      snapshots) {
  std::ostringstream os;
  os.precision(17);

  const serve::ServiceStats& st = service.stats();
  os << "{\n  \"schema\": \"grape6-serve-report-v1\",\n  \"service\": {"
     << "\"boards\": " << service.config().pool_boards()
     << ", \"healthy_boards\": " << service.healthy_boards()
     << ", \"rounds\": " << st.rounds << ", \"submitted\": " << st.submitted
     << ", \"rejected\": " << st.rejected
     << ", \"completed\": " << st.completed << ", \"failed\": " << st.failed
     << ", \"quarantined\": " << st.quarantined
     << ", \"preemptions\": " << st.preemptions
     << ", \"revocations\": " << st.revocations
     << ", \"requeues\": " << st.requeues
     << ", \"resizes\": " << st.resizes
     << ", \"boards_dead\": " << st.boards_dead
     << ", \"makespan_s\": " << st.makespan_s << ", \"eq10\": ";
  write_eq10(os, st.eq10);
  os << "},\n  \"jobs\": [\n";

  const std::vector<serve::JobId> ids = service.jobs();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const serve::JobReport r = service.report(ids[i]);
    std::string snap;
    for (const auto& [id, file] : snapshots) {
      if (id == r.id) snap = file;
    }
    os << "    {\"id\": " << r.id << ", \"name\": \""
       << obs::json_escape(r.name) << "\", \"priority\": \""
       << serve::priority_name(r.priority) << "\", \"state\": \""
       << serve::job_state_name(r.state) << "\", \"reject_reason\": \""
       << serve::reject_reason_name(r.reject_reason) << "\", \"message\": \""
       << obs::json_escape(r.message) << "\",\n     \"n\": " << r.n
       << ", \"boards\": " << r.boards << ", \"boards_now\": " << r.boards_now
       << ", \"resizes\": " << r.resizes << ", \"t_end\": " << r.t_end
       << ", \"t_reached\": " << r.t_reached << ", \"steps\": " << r.steps
       << ", \"blocksteps\": " << r.blocksteps
       << ", \"quanta\": " << r.quanta
       << ", \"preemptions\": " << r.preemptions
       << ", \"revocations\": " << r.revocations
       << ", \"requeues\": " << r.requeues
       << ", \"failures\": " << r.failures
       << ",\n     \"wait_s\": " << r.wait_s << ", \"run_s\": " << r.run_s
       << ", \"grape_virtual_s\": " << r.grape_virtual_s
       << ", \"e0\": " << r.e0 << ", \"e_final\": " << r.e_final
       << ", \"energy_error\": " << r.energy_error()
       << ",\n     \"snapshot\": \"" << obs::json_escape(snap)
       << "\", \"eq10\": ";
    write_eq10(os, r.eq10);
    os << "}" << (i + 1 < ids.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  const std::string body = os.str();
  write_file_atomic(path, [&body](std::ostream& f) { f << body; });
}

std::string endpoint_string(const wire::Endpoint& ep) {
  if (ep.kind == wire::Endpoint::Kind::kUnix) return "unix:" + ep.path;
  return "tcp:" + ep.host + ":" + std::to_string(ep.port);
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const std::string listen = cli.get_string(
      "listen", "unix:grape6_served.sock",
      "endpoint to serve on (unix:<path> or tcp:<host>:<port>; tcp port 0 "
      "picks an ephemeral port, printed at startup)");
  const std::string manifest_path = cli.get_string(
      "manifest", "",
      "optional manifest: service shape + jobs submitted at startup");
  const std::string recover_path = cli.get_string(
      "recover", "",
      "recover service state from this write-ahead journal");
  const std::string out =
      cli.get_string("out", "grape6_served", "snapshot prefix");
  const bool snapshots = cli.get_bool(
      "snapshots", false, "write <out>_<name>.snap for completed jobs");
  const std::string journal_path = cli.get_string(
      "journal", "",
      "write-ahead job journal (grape6-serve-journal-v1; \"\" = off)");
  const std::string checkpoint_dir = cli.get_string(
      "checkpoint-dir", "",
      "job checkpoint directory (default: <journal>.ckpts)");
  const auto checkpoint_every = cli.get_int(
      "checkpoint-every", 1,
      "checkpoint running jobs every N quanta (0 = final only)");
  const std::string report_out = cli.get_string(
      "report-out", "", "write serve report JSON here (\"\" = off)");
  const std::string metrics_out =
      cli.get_string("metrics-out", "", "write metrics JSON here (\"\" = off)");
  const auto threads = static_cast<unsigned>(cli.get_int(
      "threads", 0, "exec pool threads (0 = auto: $G6_EXEC_THREADS, then "
                    "hardware)"));
  if (cli.finish()) return 0;

  if (!manifest_path.empty() && !recover_path.empty()) {
    std::fprintf(stderr,
                 "error: --manifest and --recover are exclusive\n");
    return 1;
  }
  if (threads > 0) exec::ThreadPool::set_global_threads(threads);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  std::unique_ptr<serve::GrapeService> owned;
  if (!recover_path.empty()) {
    serve::RecoveryInfo info;
    owned = serve::GrapeService::recover(recover_path, &info, &g_stop);
    std::printf("grape6_served: recovered from %s: %zu record(s)%s, "
                "%zu live, %zu terminal\n",
                recover_path.c_str(),
                static_cast<std::size_t>(info.journal_records),
                info.torn_tail ? " (torn tail dropped)" : "",
                static_cast<std::size_t>(info.jobs_restored),
                static_cast<std::size_t>(info.jobs_already_terminal));
  } else {
    serve::Manifest manifest;
    if (!manifest_path.empty()) {
      manifest = serve::load_manifest(manifest_path);
    }
    if (!journal_path.empty()) {
      manifest.service.durability.journal_path = journal_path;
      manifest.service.durability.checkpoint_dir =
          checkpoint_dir.empty() ? journal_path + ".ckpts" : checkpoint_dir;
      manifest.service.durability.checkpoint_every_quanta =
          static_cast<std::uint64_t>(checkpoint_every < 0 ? 0
                                                          : checkpoint_every);
      std::filesystem::create_directories(
          manifest.service.durability.checkpoint_dir);
    }
    manifest.service.stop_flag = &g_stop;
    owned = std::make_unique<serve::GrapeService>(manifest.service);
    for (const serve::JobSpec& spec : manifest.jobs) {
      const serve::SubmitResult r = owned->submit(spec);
      if (!r) {
        std::printf("  rejected preload '%s' (%s): %s\n", spec.name.c_str(),
                    serve::reject_reason_name(r.reason), r.message.c_str());
      }
    }
  }
  serve::GrapeService& service = *owned;

  wire::WireServer server(service, listen);
  std::printf("grape6_served: %zu-board machine listening on %s%s\n",
              service.config().pool_boards(),
              endpoint_string(server.endpoint()).c_str(),
              journal_path.empty() ? "" : " (durable)");
  std::fflush(stdout);  // the CI harness waits for this line

  server.run(&g_stop);

  const wire::WireServerStats& ws = server.stats();
  std::printf("grape6_served: served %zu connection(s), %zu request(s), "
              "%zu event(s), %zu frame(s) in / %zu out, %zu protocol "
              "error(s)\n",
              static_cast<std::size_t>(ws.connections),
              static_cast<std::size_t>(ws.requests),
              static_cast<std::size_t>(ws.events),
              static_cast<std::size_t>(ws.frames_in),
              static_cast<std::size_t>(ws.frames_out),
              static_cast<std::size_t>(ws.protocol_errors));

  const bool drained_early = g_stop.load(std::memory_order_relaxed);
  std::vector<std::pair<serve::JobId, std::string>> snapshot_files;
  if (snapshots && !drained_early) {
    for (serve::JobId id : service.jobs()) {
      if (service.state(id) != serve::JobState::kCompleted) continue;
      double t = 0.0;
      const ParticleSet& final = service.final_state(id, &t);
      const std::string file = out + "_" + service.report(id).name + ".snap";
      save_snapshot(file, final, t);
      snapshot_files.emplace_back(id, file);
    }
  }

  const serve::ServiceStats& st = service.stats();
  std::printf("grape6_served: %llu rounds, %llu completed, %llu failed, "
              "%llu quarantined, %llu rejected, %llu resize(s)\n",
              static_cast<unsigned long long>(st.rounds),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.failed),
              static_cast<unsigned long long>(st.quarantined),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.resizes));
  if (drained_early) {
    std::printf("grape6_served: drained on signal; resume with --recover\n");
  }

  if (!report_out.empty()) write_report(report_out, service, snapshot_files);
  obs::export_metrics_json(metrics_out, &st.eq10);

  const bool all_completed =
      st.failed == 0 && st.rejected == 0 && st.quarantined == 0;
  return all_completed ? 0 : 3;
} catch (const std::exception& e) {
  std::fprintf(stderr, "grape6_served: error: %s\n", e.what());
  return 1;
}
