#include "nbody/kepler.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace g6 {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;

double wrap_angle(double a) {
  a = std::fmod(a, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}
}  // namespace

double solve_kepler(double mean_anomaly, double eccentricity) {
  G6_REQUIRE_MSG(eccentricity >= 0.0 && eccentricity < 1.0,
                 "solve_kepler requires a bound, non-parabolic orbit");
  const double m = wrap_angle(mean_anomaly);
  // Danby-style starter.
  double e_anom = m + 0.85 * eccentricity * (std::sin(m) >= 0.0 ? 1.0 : -1.0);
  for (int it = 0; it < 64; ++it) {
    const double f = e_anom - eccentricity * std::sin(e_anom) - m;
    const double fp = 1.0 - eccentricity * std::cos(e_anom);
    const double step = f / fp;
    e_anom -= step;
    if (std::fabs(step) < 1e-15) break;
  }
  return e_anom;
}

RelativeState elements_to_state(const OrbitalElements& el, double mu) {
  G6_REQUIRE(mu > 0.0);
  G6_REQUIRE(el.semi_major_axis > 0.0);
  const double a = el.semi_major_axis;
  const double e = el.eccentricity;
  const double e_anom = solve_kepler(el.mean_anomaly, e);
  const double ce = std::cos(e_anom), se = std::sin(e_anom);
  const double b_over_a = std::sqrt(1.0 - e * e);

  // Perifocal coordinates.
  const double xp = a * (ce - e);
  const double yp = a * b_over_a * se;
  const double r = a * (1.0 - e * ce);
  const double n = std::sqrt(mu / (a * a * a));  // mean motion
  const double vxp = -a * n * se / (1.0 - e * ce);
  const double vyp = a * n * b_over_a * ce / (1.0 - e * ce);
  (void)r;

  // Rotate perifocal -> inertial: Rz(Omega) * Rx(i) * Rz(omega).
  const double co = std::cos(el.ascending_node), so = std::sin(el.ascending_node);
  const double ci = std::cos(el.inclination), si = std::sin(el.inclination);
  const double cw = std::cos(el.arg_periapsis), sw = std::sin(el.arg_periapsis);

  const auto rotate = [&](double px, double py) -> Vec3 {
    const double x1 = cw * px - sw * py;
    const double y1 = sw * px + cw * py;
    const double y2 = ci * y1;
    const double z2 = si * y1;
    return {co * x1 - so * y2, so * x1 + co * y2, z2};
  };

  return {rotate(xp, yp), rotate(vxp, vyp)};
}

OrbitalElements state_to_elements(const RelativeState& s, double mu) {
  G6_REQUIRE(mu > 0.0);
  const double r = norm(s.pos);
  const double v2 = norm2(s.vel);
  const double energy = 0.5 * v2 - mu / r;
  G6_REQUIRE_MSG(energy < 0.0, "state_to_elements requires a bound orbit");

  OrbitalElements el;
  el.semi_major_axis = -mu / (2.0 * energy);

  const Vec3 h = cross(s.pos, s.vel);
  const double hn = norm(h);
  const Vec3 evec = cross(s.vel, h) / mu - s.pos / r;
  el.eccentricity = norm(evec);
  el.inclination = std::acos(std::clamp(h.z / hn, -1.0, 1.0));

  const Vec3 node{-h.y, h.x, 0.0};
  const double nn = norm(node);
  if (nn > 1e-12 * hn) {
    el.ascending_node = wrap_angle(std::atan2(node.y, node.x));
  } else {
    el.ascending_node = 0.0;  // equatorial orbit: node undefined
  }

  // Argument of periapsis and anomalies.
  const double e = el.eccentricity;
  if (e > 1e-12) {
    Vec3 ref = nn > 1e-12 * hn ? node / nn : Vec3{1.0, 0.0, 0.0};
    double cosw = std::clamp(dot(ref, evec) / e, -1.0, 1.0);
    double w = std::acos(cosw);
    if (dot(cross(ref, evec), h) < 0.0) w = kTwoPi - w;
    el.arg_periapsis = wrap_angle(w);

    double cosnu = std::clamp(dot(evec, s.pos) / (e * r), -1.0, 1.0);
    double nu = std::acos(cosnu);
    if (dot(s.pos, s.vel) < 0.0) nu = kTwoPi - nu;
    const double e_anom =
        std::atan2(std::sqrt(1.0 - e * e) * std::sin(nu), e + std::cos(nu));
    el.mean_anomaly = wrap_angle(e_anom - e * std::sin(e_anom));
  } else {
    el.arg_periapsis = 0.0;
    Vec3 ref = nn > 1e-12 * hn ? node / nn : Vec3{1.0, 0.0, 0.0};
    double cosu = std::clamp(dot(ref, s.pos) / r, -1.0, 1.0);
    double u = std::acos(cosu);
    if (dot(cross(ref, s.pos), h) < 0.0) u = kTwoPi - u;
    el.mean_anomaly = wrap_angle(u);
  }
  return el;
}

double orbital_energy(const RelativeState& s, double mu) {
  return 0.5 * norm2(s.vel) - mu / norm(s.pos);
}

double orbital_period(double semi_major_axis, double mu) {
  G6_REQUIRE(semi_major_axis > 0.0 && mu > 0.0);
  return kTwoPi * std::sqrt(semi_major_axis * semi_major_axis * semi_major_axis / mu);
}

RelativeState propagate_kepler(const RelativeState& s, double mu, double dt) {
  OrbitalElements el = state_to_elements(s, mu);
  const double n = std::sqrt(mu / std::pow(el.semi_major_axis, 3));
  el.mean_anomaly = wrap_angle(el.mean_anomaly + n * dt);
  return elements_to_state(el, mu);
}

}  // namespace g6
