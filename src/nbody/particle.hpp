#pragma once
// Particle container shared by every engine in the library.
//
// nbody deliberately knows nothing about integrators or hardware: a Body is
// just (mass, position, velocity). Integrator state (accelerations, jerks,
// individual times) lives in the hermite module, hardware images live in
// the grape module.

#include <cstddef>
#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace g6 {

struct Body {
  double mass = 0.0;
  Vec3 pos;
  Vec3 vel;
};

/// A system of bodies with frame utilities.
class ParticleSet {
 public:
  ParticleSet() = default;
  explicit ParticleSet(std::vector<Body> bodies) : bodies_(std::move(bodies)) {}

  std::size_t size() const { return bodies_.size(); }
  bool empty() const { return bodies_.empty(); }

  Body& operator[](std::size_t i) { return bodies_[i]; }
  const Body& operator[](std::size_t i) const { return bodies_[i]; }

  std::span<Body> bodies() { return bodies_; }
  std::span<const Body> bodies() const { return bodies_; }

  void add(const Body& b) { bodies_.push_back(b); }
  void reserve(std::size_t n) { bodies_.reserve(n); }

  double total_mass() const;
  Vec3 center_of_mass() const;
  Vec3 center_of_mass_velocity() const;

  /// Shift to the center-of-mass rest frame.
  void to_com_frame();

  /// Scale masses so the total is `target` (Heggie units use 1).
  void normalize_mass(double target = 1.0);

 private:
  std::vector<Body> bodies_;
};

}  // namespace g6
