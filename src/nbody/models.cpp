#include "nbody/models.hpp"

#include <cmath>

#include "nbody/kepler.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace g6 {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Plummer structural radius in Heggie units: E = -3*pi*M^2/(64*a) = -1/4.
constexpr double kPlummerScale = 3.0 * kPi / 16.0;
}  // namespace

ParticleSet make_plummer(std::size_t n, Rng& rng, double rmax) {
  G6_REQUIRE(n >= 2);
  ParticleSet set;
  set.reserve(n);
  const double mass = units::kTotalMass / static_cast<double>(n);

  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the cumulative mass profile M(r) = (1 + r^-2)^(-3/2)
    // (model units G = M = a = 1), resampled if beyond rmax virial radii.
    double r;
    do {
      const double u = rng.uniform(1e-10, 1.0);
      r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    } while (r * kPlummerScale > rmax);

    // Speed: q = v/v_esc from g(q) ~ q^2 (1-q^2)^(7/2), von Neumann
    // rejection (Aarseth, Henon & Wielen 1974).
    double q, g;
    do {
      q = rng.uniform();
      g = rng.uniform(0.0, 0.1);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double v_esc = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    const double v = q * v_esc;

    Body b;
    b.mass = mass;
    b.pos = r * rng.unit_vector();
    b.vel = v * rng.unit_vector();
    // Scale model units -> Heggie units: r *= a, v /= sqrt(a).
    b.pos *= kPlummerScale;
    b.vel /= std::sqrt(kPlummerScale);
    set.add(b);
  }
  set.to_com_frame();
  return set;
}

ParticleSet make_plummer_with_bh_binary(std::size_t n_field, Rng& rng,
                                        double bh_mass_fraction,
                                        double bh_separation) {
  G6_REQUIRE(bh_mass_fraction > 0.0 && bh_mass_fraction < 0.5);
  G6_REQUIRE(bh_separation > 0.0);
  ParticleSet set = make_plummer(n_field, rng);
  // Field particles carry (1 - 2f) of the total mass.
  const double field_mass = 1.0 - 2.0 * bh_mass_fraction;
  for (auto& b : set.bodies()) b.mass *= field_mass;

  // Two massive point particles on a mutual circular orbit about the
  // center. The circular speed includes the enclosed cluster mass so the
  // binary starts near dynamical equilibrium.
  const double m_bh = bh_mass_fraction;
  const double r_half = 0.5 * bh_separation;
  const double r2 = r_half / kPlummerScale;  // model units for M(<r)
  const double m_enclosed = field_mass * std::pow(1.0 + 1.0 / (r2 * r2), -1.5);
  // Each BH circles the center at r_half: the companion pulls with
  // G*m_bh/(2 r_half)^2 and the enclosed cluster with ~G*M_enc/r_half^2,
  // so v^2 = G*(m_bh/4 + M_enc)/r_half.
  const double v_circ =
      std::sqrt(units::kGravity * (0.25 * m_bh + m_enclosed) / r_half);

  Body bh1;
  bh1.mass = m_bh;
  bh1.pos = {r_half, 0.0, 0.0};
  bh1.vel = {0.0, v_circ, 0.0};
  Body bh2;
  bh2.mass = m_bh;
  bh2.pos = {-r_half, 0.0, 0.0};
  bh2.vel = {0.0, -v_circ, 0.0};
  set.add(bh1);
  set.add(bh2);
  set.to_com_frame();
  return set;
}

ParticleSet make_planetesimal_disk(std::size_t n, Rng& rng, const DiskParams& p) {
  G6_REQUIRE(n >= 1);
  G6_REQUIRE(p.r_outer > p.r_inner && p.r_inner > 0.0);
  ParticleSet set;
  set.reserve(n + 1);

  Body star;
  star.mass = p.star_mass;
  set.add(star);

  const double mass = p.disk_mass / static_cast<double>(n);
  // Semi-major axis from Sigma ~ a^slope: p(a) ~ a^(slope+1).
  const double k = p.surface_density_slope + 2.0;
  const double lo = std::pow(p.r_inner, k);
  const double hi = std::pow(p.r_outer, k);

  for (std::size_t i = 0; i < n; ++i) {
    OrbitalElements el;
    el.semi_major_axis = std::pow(lo + rng.uniform() * (hi - lo), 1.0 / k);
    // Rayleigh-distributed eccentricity and inclination (standard
    // planetesimal velocity dispersion model).
    el.eccentricity =
        std::min(0.9, p.ecc_dispersion * std::sqrt(-2.0 * std::log(rng.uniform(1e-12, 1.0))));
    el.inclination =
        p.inc_dispersion * std::sqrt(-2.0 * std::log(rng.uniform(1e-12, 1.0)));
    el.ascending_node = rng.uniform(0.0, 2.0 * kPi);
    el.arg_periapsis = rng.uniform(0.0, 2.0 * kPi);
    el.mean_anomaly = rng.uniform(0.0, 2.0 * kPi);

    const RelativeState s =
        elements_to_state(el, units::kGravity * (p.star_mass + mass));
    Body b;
    b.mass = mass;
    b.pos = s.pos;
    b.vel = s.vel;
    set.add(b);
  }
  return set;
}

ParticleSet make_uniform_sphere(std::size_t n, Rng& rng, double radius,
                                double virial_ratio) {
  G6_REQUIRE(n >= 2);
  G6_REQUIRE(radius > 0.0);
  G6_REQUIRE(virial_ratio >= 0.0);
  ParticleSet set;
  set.reserve(n);
  const double mass = units::kTotalMass / static_cast<double>(n);

  for (std::size_t i = 0; i < n; ++i) {
    Body b;
    b.mass = mass;
    const double r = radius * std::cbrt(rng.uniform());
    b.pos = r * rng.unit_vector();
    b.vel = {rng.gaussian(), rng.gaussian(), rng.gaussian()};
    set.add(b);
  }

  // Analytic potential energy of a homogeneous sphere: W = -3GM^2/(5R).
  const double w = 3.0 * units::kGravity * units::kTotalMass * units::kTotalMass /
                   (5.0 * radius);
  double kinetic = 0.0;
  for (const auto& b : set.bodies()) kinetic += 0.5 * b.mass * norm2(b.vel);
  if (virial_ratio == 0.0) {
    for (auto& b : set.bodies()) b.vel = {};
  } else if (kinetic > 0.0) {
    // Want 2T'/|W| = virial_ratio with T' = f^2 * T.
    const double f = std::sqrt(virial_ratio * w / (2.0 * kinetic));
    for (auto& b : set.bodies()) b.vel *= f;
  }
  set.to_com_frame();
  return set;
}

namespace {
/// Hernquist (1990) isotropic distribution function, up to constants, as
/// a function of q = sqrt(-E) in G = M = a = 1 units.
double hernquist_f(double q) {
  if (q <= 0.0) return 0.0;
  const double q2 = q * q;
  if (q2 >= 1.0) return 0.0;
  const double s = std::sqrt(1.0 - q2);
  return (3.0 * std::asin(q) +
          q * s * (1.0 - 2.0 * q2) * (8.0 * q2 * q2 - 8.0 * q2 - 3.0)) /
         (s * s * s * s * s);
}
}  // namespace

ParticleSet make_hernquist(std::size_t n, Rng& rng, double rmax) {
  G6_REQUIRE(n >= 2);
  ParticleSet set;
  set.reserve(n);
  const double mass = units::kTotalMass / static_cast<double>(n);

  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the closed-form inverse of M(r) = r^2/(r+1)^2.
    double r;
    do {
      const double su = std::sqrt(rng.uniform(1e-12, 1.0));
      r = su / (1.0 - su);
    } while (r > rmax);

    // Speed by rejection from g(v) ~ v^2 f(E), E = v^2/2 - 1/(1+r).
    const double phi = -1.0 / (1.0 + r);
    const double v_esc = std::sqrt(-2.0 * phi);
    double fmax = 0.0;
    for (int k = 1; k < 128; ++k) {
      const double v = v_esc * static_cast<double>(k) / 128.0;
      const double q = std::sqrt(std::max(0.0, -(0.5 * v * v + phi)));
      fmax = std::max(fmax, v * v * hernquist_f(q));
    }
    double v = 0.0;
    for (int tries = 0; tries < 10000; ++tries) {
      const double cand = rng.uniform(0.0, v_esc);
      const double q = std::sqrt(std::max(0.0, -(0.5 * cand * cand + phi)));
      if (rng.uniform(0.0, fmax) < cand * cand * hernquist_f(q)) {
        v = cand;
        break;
      }
    }

    Body b;
    b.mass = mass;
    b.pos = r * rng.unit_vector();
    b.vel = v * rng.unit_vector();
    // Model units (G=M=a=1) -> Heggie units: E = -1/12 -> -1/4 means
    // lambda = 1/3 exactly.
    b.pos /= 3.0;
    b.vel *= std::sqrt(3.0);
    set.add(b);
  }
  set.to_com_frame();
  return set;
}

}  // namespace g6
