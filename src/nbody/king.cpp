#include "nbody/king.hpp"

#include <algorithm>
#include <cmath>

#include "nbody/diagnostics.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace g6 {

namespace {
constexpr double kSqrtPi = 1.7724538509055160273;
}

double KingProfile::density_of_w(double w) {
  if (w <= 0.0) return 0.0;
  const double sw = std::sqrt(w);
  // rho(W) = e^W erf(sqrt(W)) - 2 sqrt(W/pi) (1 + 2W/3)
  return std::exp(w) * std::erf(sw) - 2.0 * sw / kSqrtPi * (1.0 + 2.0 * w / 3.0);
}

KingProfile::KingProfile(double w0) : w0_(w0) {
  G6_REQUIRE_MSG(w0 > 0.1 && w0 <= 16.0, "King W0 outside supported range");
  const double rho0 = density_of_w(w0);
  G6_REQUIRE(rho0 > 0.0);

  // Integrate W'' + (2/r) W' = -9 rho(W)/rho0 outward with RK4 from the
  // series solution W ~ W0 - 1.5 r^2 near the center.
  const double dr = 1e-3;
  double r = 1e-3;
  double w = w0_ - 1.5 * r * r;
  double u = -3.0 * r;  // W'

  r_.clear();
  w_.clear();
  m_.clear();
  r_.push_back(0.0);
  w_.push_back(w0_);
  m_.push_back(0.0);

  const auto rhs = [&](double rr, double ww, double uu, double& dw, double& du) {
    dw = uu;
    du = -9.0 * density_of_w(ww) / rho0 - 2.0 * uu / std::max(rr, 1e-12);
  };

  for (int step = 0; step < 2'000'000 && w > 0.0; ++step) {
    double k1w, k1u, k2w, k2u, k3w, k3u, k4w, k4u;
    rhs(r, w, u, k1w, k1u);
    rhs(r + 0.5 * dr, w + 0.5 * dr * k1w, u + 0.5 * dr * k1u, k2w, k2u);
    rhs(r + 0.5 * dr, w + 0.5 * dr * k2w, u + 0.5 * dr * k2u, k3w, k3u);
    rhs(r + dr, w + dr * k3w, u + dr * k3u, k4w, k4u);
    const double w_next = w + dr / 6.0 * (k1w + 2.0 * k2w + 2.0 * k3w + k4w);
    const double u_next = u + dr / 6.0 * (k1u + 2.0 * k2u + 2.0 * k3u + k4u);

    if (w_next <= 0.0) {
      // Interpolate the tidal radius where W hits zero.
      const double f = w / (w - w_next);
      const double rt = r + f * dr;
      const double ut = u + f * (u_next - u);
      r_.push_back(rt);
      w_.push_back(0.0);
      m_.push_back(-rt * rt * ut);
      w = 0.0;
      break;
    }
    r += dr;
    w = w_next;
    u = u_next;
    r_.push_back(r);
    w_.push_back(w);
    m_.push_back(-r * r * u);  // proportional to the enclosed mass
  }
  G6_REQUIRE_MSG(w <= 0.0, "King profile integration did not truncate");
}

double KingProfile::concentration() const { return std::log10(tidal_radius()); }

double KingProfile::w_at(double r) const {
  if (r <= 0.0) return w0_;
  if (r >= r_.back()) return 0.0;
  const auto it = std::upper_bound(r_.begin(), r_.end(), r);
  const std::size_t hi = static_cast<std::size_t>(it - r_.begin());
  const std::size_t lo = hi - 1;
  const double f = (r - r_[lo]) / (r_[hi] - r_[lo]);
  return w_[lo] + f * (w_[hi] - w_[lo]);
}

double KingProfile::density(double r) const { return density_of_w(w_at(r)); }

double KingProfile::mass_within(double r) const {
  if (r <= 0.0) return 0.0;
  if (r >= r_.back()) return m_.back();
  const auto it = std::upper_bound(r_.begin(), r_.end(), r);
  const std::size_t hi = static_cast<std::size_t>(it - r_.begin());
  const std::size_t lo = hi - 1;
  const double f = (r - r_[lo]) / (r_[hi] - r_[lo]);
  return m_[lo] + f * (m_[hi] - m_[lo]);
}

ParticleSet make_king(std::size_t n, double w0, Rng& rng) {
  G6_REQUIRE(n >= 2);
  const KingProfile profile(w0);
  const double m_total = profile.total_mass();
  const double rt = profile.tidal_radius();

  ParticleSet set;
  set.reserve(n);
  const double mass = units::kTotalMass / static_cast<double>(n);

  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the cumulative mass profile by bisection.
    const double target = rng.uniform(0.0, m_total);
    double lo = 0.0, hi = rt;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      (profile.mass_within(mid) < target ? lo : hi) = mid;
    }
    const double r = 0.5 * (lo + hi);
    const double w = profile.w_at(r);

    // Speed from f(v) ~ v^2 (exp(W - v^2/2) - 1), v < sqrt(2W).
    const double vmax = std::sqrt(2.0 * std::max(w, 0.0));
    double fmax = 0.0;
    for (int k = 1; k <= 64; ++k) {
      const double v = vmax * static_cast<double>(k) / 64.0;
      fmax = std::max(fmax, v * v * (std::exp(w - 0.5 * v * v) - 1.0));
    }
    double v = 0.0;
    if (vmax > 0.0 && fmax > 0.0) {
      for (int tries = 0; tries < 10000; ++tries) {
        const double cand = rng.uniform(0.0, vmax);
        const double f = cand * cand * (std::exp(w - 0.5 * cand * cand) - 1.0);
        if (rng.uniform(0.0, fmax) < f) {
          v = cand;
          break;
        }
      }
    }

    Body b;
    b.mass = mass;
    b.pos = r * rng.unit_vector();
    b.vel = v * rng.unit_vector();
    set.add(b);
  }
  set.to_com_frame();

  // Rescale to virial equilibrium and Heggie units: first balance
  // 2T/|U| = 1, then scale lengths so E = -1/4.
  EnergyReport e = compute_energy(set.bodies());
  G6_REQUIRE(e.potential < 0.0);
  const double vf = std::sqrt(-e.potential / (2.0 * std::max(e.kinetic, 1e-12)));
  for (auto& b : set.bodies()) b.vel *= vf;
  e = compute_energy(set.bodies());
  const double lambda = e.total() / units::kTotalEnergy;
  G6_REQUIRE_MSG(lambda > 0.0, "King realization not bound after virialization");
  for (auto& b : set.bodies()) {
    b.pos *= lambda;
    b.vel /= std::sqrt(lambda);
  }
  return set;
}

}  // namespace g6
