#include "nbody/particle.hpp"

#include "util/check.hpp"

namespace g6 {

double ParticleSet::total_mass() const {
  double m = 0.0;
  for (const auto& b : bodies_) m += b.mass;
  return m;
}

Vec3 ParticleSet::center_of_mass() const {
  Vec3 c;
  double m = 0.0;
  for (const auto& b : bodies_) {
    c += b.mass * b.pos;
    m += b.mass;
  }
  G6_REQUIRE_MSG(m > 0.0, "center of mass of massless system");
  return c / m;
}

Vec3 ParticleSet::center_of_mass_velocity() const {
  Vec3 c;
  double m = 0.0;
  for (const auto& b : bodies_) {
    c += b.mass * b.vel;
    m += b.mass;
  }
  G6_REQUIRE_MSG(m > 0.0, "center of mass of massless system");
  return c / m;
}

void ParticleSet::to_com_frame() {
  const Vec3 x0 = center_of_mass();
  const Vec3 v0 = center_of_mass_velocity();
  for (auto& b : bodies_) {
    b.pos -= x0;
    b.vel -= v0;
  }
}

void ParticleSet::normalize_mass(double target) {
  const double m = total_mass();
  G6_REQUIRE_MSG(m > 0.0, "cannot normalize massless system");
  const double f = target / m;
  for (auto& b : bodies_) b.mass *= f;
}

}  // namespace g6
