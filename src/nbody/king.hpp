#pragma once
// King (1966) model — the standard initial condition for star-cluster
// simulations (the collisional systems GRAPE-6 was built for).
//
// The model is the lowered isothermal sphere: distribution function
// f(E) ~ exp(-E/sigma^2) - 1 for E < 0, truncated at the tidal radius.
// KingProfile solves the dimensionless Poisson equation for W(r) (the
// scaled potential depth), and make_king samples positions from the
// cumulative mass profile and velocities from f by rejection, then
// rescales to Heggie units.

#include <cstddef>
#include <vector>

#include "nbody/particle.hpp"
#include "util/rng.hpp"

namespace g6 {

/// Solved dimensionless King profile for a given central potential W0.
class KingProfile {
 public:
  /// W0 in the conventional range ~[0.5, 12]; larger = more concentrated.
  explicit KingProfile(double w0);

  double w0() const { return w0_; }
  /// Tidal (truncation) radius in model units (King core radii).
  double tidal_radius() const { return r_.back(); }
  /// Concentration c = log10(rt / rc); rc = 1 in these units.
  double concentration() const;

  /// Scaled potential depth W at radius r (0 beyond the tidal radius).
  double w_at(double r) const;
  /// Density (model units) at radius r.
  double density(double r) const;
  /// Cumulative mass inside r (model units).
  double mass_within(double r) const;
  double total_mass() const { return m_.back(); }

  /// Density as a function of W (the lowered-isothermal integral).
  static double density_of_w(double w);

 private:
  double w0_;
  std::vector<double> r_;
  std::vector<double> w_;
  std::vector<double> m_;
};

/// Sample an N-body realization of a King model, scaled to Heggie units
/// (M = 1, E = -1/4, G = 1), in the center-of-mass frame.
ParticleSet make_king(std::size_t n, double w0, Rng& rng);

}  // namespace g6
