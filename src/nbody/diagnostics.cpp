#include "nbody/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/units.hpp"

namespace g6 {

double EnergyReport::virial_ratio() const {
  return potential < 0.0 ? 2.0 * kinetic / -potential : 0.0;
}

EnergyReport compute_energy(std::span<const Body> bodies, double eps) {
  EnergyReport rep;
  const double eps2 = eps * eps;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    rep.kinetic += 0.5 * bodies[i].mass * norm2(bodies[i].vel);
    for (std::size_t j = i + 1; j < bodies.size(); ++j) {
      const double r2 = norm2(bodies[j].pos - bodies[i].pos) + eps2;
      rep.potential -=
          units::kGravity * bodies[i].mass * bodies[j].mass / std::sqrt(r2);
    }
  }
  return rep;
}

Vec3 compute_angular_momentum(std::span<const Body> bodies) {
  Vec3 l;
  for (const auto& b : bodies) l += b.mass * cross(b.pos, b.vel);
  return l;
}

std::vector<double> lagrangian_radii(std::span<const Body> bodies,
                                     std::span<const double> mass_fractions) {
  G6_REQUIRE(!bodies.empty());
  Vec3 com;
  double total = 0.0;
  for (const auto& b : bodies) {
    com += b.mass * b.pos;
    total += b.mass;
  }
  com /= total;

  std::vector<std::pair<double, double>> rm;  // (radius, mass)
  rm.reserve(bodies.size());
  for (const auto& b : bodies) rm.emplace_back(norm(b.pos - com), b.mass);
  std::sort(rm.begin(), rm.end());

  std::vector<double> out;
  out.reserve(mass_fractions.size());
  for (double f : mass_fractions) {
    G6_REQUIRE(f > 0.0 && f <= 1.0);
    const double target = f * total;
    double acc = 0.0;
    double radius = rm.back().first;
    for (const auto& [r, m] : rm) {
      acc += m;
      if (acc >= target) {
        radius = r;
        break;
      }
    }
    out.push_back(radius);
  }
  return out;
}

}  // namespace g6
