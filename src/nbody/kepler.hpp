#pragma once
// Two-body (Kepler) utilities: orbital elements <-> Cartesian state, and
// analytic propagation. Used by the planetesimal-disk generator and as the
// exact reference in integrator tests.

#include "util/vec3.hpp"

namespace g6 {

/// Classical orbital elements of a bound two-body orbit about a mass `mu`
/// (mu = G*(m1+m2); G = 1 in Heggie units).
struct OrbitalElements {
  double semi_major_axis = 1.0;
  double eccentricity = 0.0;
  double inclination = 0.0;        ///< radians
  double ascending_node = 0.0;     ///< longitude of ascending node, radians
  double arg_periapsis = 0.0;      ///< argument of periapsis, radians
  double mean_anomaly = 0.0;       ///< radians
};

/// Relative state (position and velocity of body 2 w.r.t. body 1).
struct RelativeState {
  Vec3 pos;
  Vec3 vel;
};

/// Solve Kepler's equation M = E - e*sin(E) for the eccentric anomaly E.
/// Newton iteration; accurate to ~1e-14 for e < 0.99.
double solve_kepler(double mean_anomaly, double eccentricity);

/// Elements -> relative Cartesian state.
RelativeState elements_to_state(const OrbitalElements& el, double mu);

/// Relative Cartesian state -> elements (bound orbits only).
OrbitalElements state_to_elements(const RelativeState& s, double mu);

/// Orbital energy per unit reduced mass: v^2/2 - mu/r.
double orbital_energy(const RelativeState& s, double mu);

/// Orbital period of a bound orbit.
double orbital_period(double semi_major_axis, double mu);

/// Propagate a bound relative orbit analytically by dt.
RelativeState propagate_kepler(const RelativeState& s, double mu, double dt);

}  // namespace g6
