#pragma once
// Conserved-quantity and structure diagnostics. Energies use direct O(N^2)
// summation in double precision — these are the reference values the
// emulated hardware is validated against.

#include <span>
#include <vector>

#include "nbody/particle.hpp"
#include "util/vec3.hpp"

namespace g6 {

struct EnergyReport {
  double kinetic = 0.0;
  double potential = 0.0;
  double total() const { return kinetic + potential; }
  /// Virial ratio 2T/|W|; 1 in equilibrium.
  double virial_ratio() const;
};

/// Kinetic + softened potential energy (softening eps as in Eq 3).
EnergyReport compute_energy(std::span<const Body> bodies, double eps = 0.0);

/// Total angular momentum about the origin.
Vec3 compute_angular_momentum(std::span<const Body> bodies);

/// Radii containing the given mass fractions (about the density center
/// approximated by the center of mass). Fractions must be in (0, 1].
std::vector<double> lagrangian_radii(std::span<const Body> bodies,
                                     std::span<const double> mass_fractions);

}  // namespace g6
