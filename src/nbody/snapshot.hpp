#pragma once
// Plain-text snapshot I/O (NEMO-like ascii: one "n t" header line, then
// "mass x y z vx vy vz" per body). Human-diffable, good enough for
// examples and regression fixtures.

#include <iosfwd>
#include <string>

#include "nbody/particle.hpp"

namespace g6 {

/// Write `set` at time `t` to the stream. Full double precision (%.17g).
void write_snapshot(std::ostream& os, const ParticleSet& set, double t);

/// Read one snapshot; returns the time through `t`.
ParticleSet read_snapshot(std::istream& is, double& t);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_snapshot(const std::string& path, const ParticleSet& set, double t);
ParticleSet load_snapshot(const std::string& path, double& t);

}  // namespace g6
