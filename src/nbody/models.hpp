#pragma once
// Initial-condition generators for the paper's workloads.
//
//  * Plummer model (Sec 4 benchmark runs) — Aarseth/Henon/Wielen sampling,
//    scaled to Heggie units.
//  * Plummer + binary "black hole" particles (Sec 5, second application).
//  * Planetesimal disk around a central star (Sec 5, Kuiper-belt run).
//  * Cold/virialized uniform spheres (tests and examples).

#include <cstdint>

#include "nbody/particle.hpp"
#include "util/rng.hpp"

namespace g6 {

/// Equal-mass Plummer sphere in Heggie units (M=1, E=-1/4, G=1), shifted
/// to the center-of-mass frame. Positions beyond `rmax` (in virial radii)
/// are resampled to avoid extreme outliers, as is conventional.
ParticleSet make_plummer(std::size_t n, Rng& rng, double rmax = 10.0);

/// Plummer sphere plus two massive point particles ("black holes") of
/// `bh_mass_fraction` of the total each, placed on a circular mutual orbit
/// of separation `bh_separation` about the center. Heggie units; the field
/// particles carry the remaining mass. Matches the Sec 5 binary-BH setup
/// (0.5% each, 2M particles in the paper).
ParticleSet make_plummer_with_bh_binary(std::size_t n_field, Rng& rng,
                                        double bh_mass_fraction = 0.005,
                                        double bh_separation = 0.5);

/// Parameters for the planetesimal-disk generator.
struct DiskParams {
  double star_mass = 1.0;       ///< central star
  double disk_mass = 3e-5;      ///< total planetesimal mass
  double r_inner = 1.0;         ///< inner edge (model units)
  double r_outer = 1.5;         ///< outer edge
  double surface_density_slope = -1.5;  ///< Sigma ~ r^slope
  double ecc_dispersion = 0.01; ///< Rayleigh dispersion of eccentricity
  double inc_dispersion = 0.005;///< Rayleigh dispersion of inclination
};

/// Planetesimal disk: central star + n planetesimals on near-circular,
/// near-coplanar Kepler orbits. Used by the Kuiper-belt application bench.
ParticleSet make_planetesimal_disk(std::size_t n, Rng& rng,
                                   const DiskParams& params = {});

/// Homogeneous sphere of radius r with isotropic velocities scaled to the
/// requested virial ratio (0 = cold collapse).
ParticleSet make_uniform_sphere(std::size_t n, Rng& rng, double radius = 1.0,
                                double virial_ratio = 0.5);

/// Hernquist (1990) sphere in Heggie units — the standard galaxy-bulge /
/// elliptical-galaxy model (the galactic-nuclei context of the Sec 5
/// black-hole application). Isotropic velocities sampled from the exact
/// distribution function by rejection.
ParticleSet make_hernquist(std::size_t n, Rng& rng, double rmax = 100.0);

}  // namespace g6
