#include "nbody/snapshot.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/fileio.hpp"

namespace g6 {

void write_snapshot(std::ostream& os, const ParticleSet& set, double t) {
  G6_REQUIRE_MSG(std::isfinite(t), "snapshot time must be finite");
  const auto flags = os.flags();
  os.precision(17);
  os << set.size() << ' ' << t << '\n';
  for (const auto& b : set.bodies()) {
    os << b.mass << ' ' << b.pos.x << ' ' << b.pos.y << ' ' << b.pos.z << ' '
       << b.vel.x << ' ' << b.vel.y << ' ' << b.vel.z << '\n';
  }
  os.flags(flags);
}

ParticleSet read_snapshot(std::istream& is, double& t) {
  std::size_t n = 0;
  if (!(is >> n >> t)) throw std::runtime_error("snapshot: bad header");
  ParticleSet set;
  set.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Body b;
    if (!(is >> b.mass >> b.pos.x >> b.pos.y >> b.pos.z >> b.vel.x >> b.vel.y >>
          b.vel.z)) {
      throw std::runtime_error("snapshot: truncated body record");
    }
    set.add(b);
  }
  return set;
}

void save_snapshot(const std::string& path, const ParticleSet& set, double t) {
  // Atomic write-then-rename: a crash or full disk mid-write can never
  // leave a truncated snapshot under the final name.
  write_file_atomic(path, [&](std::ostream& os) { write_snapshot(os, set, t); });
}

ParticleSet load_snapshot(const std::string& path, double& t) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("snapshot: cannot open " + path);
  return read_snapshot(is, t);
}

}  // namespace g6
