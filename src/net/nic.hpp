#pragma once
// Network interface models (Sec 4.4). A message of b bytes between two
// hosts costs latency + b / bandwidth; the paper characterizes each NIC by
// round-trip latency and peak throughput, which is exactly what we encode.

#include <string>

namespace g6 {

struct NicModel {
  std::string name;
  double round_trip_latency_s = 0.0;
  double bandwidth_Bps = 0.0;

  /// One-way cost of a b-byte message.
  double message_time(std::size_t bytes) const {
    return 0.5 * round_trip_latency_s +
           static_cast<double>(bytes) / bandwidth_Bps;
  }
  double one_way_latency() const { return 0.5 * round_trip_latency_s; }
};

namespace nics {

/// Original system: NS 83820 on Planex GN-1000TC in the Athlon hosts
/// (200 us round trip, 60 MB/s).
inline NicModel ns83820() { return {"NS83820+Athlon", 200e-6, 60e6}; }

/// Netgear GA621T, Tigon 2: better throughput, similar latency.
inline NicModel tigon2() { return {"Tigon2", 180e-6, 85e6}; }

/// Intel 82540EM on the P4 boards: 67 us round trip, 105 MB/s — the
/// tuned configuration that reaches 36 Tflops (Fig 19).
inline NicModel intel82540() { return {"Intel82540EM+P4", 67e-6, 105e6}; }

/// Myrinet what-if from Sec 4.4: "latency 5-10 times shorter than usual
/// TCP/IP over Ethernet" — we take 7x below the NS83820 baseline.
inline NicModel myrinet() { return {"Myrinet(what-if)", 200e-6 / 7.0, 150e6}; }

}  // namespace nics

}  // namespace g6
