#pragma once
// Cost models for the collective operations the GRAPE-6 parallel codes
// use (Sec 4.2-4.4):
//
//  * butterfly barrier — the paper's hand-rolled synchronization over
//    TCP/IP sockets ("about two times faster than MPI_barrier of
//    MPICH/p4"); ceil(log2 p) rounds of small-message exchange.
//  * butterfly all-gather — the updated-particle exchange of the "copy"
//    algorithm: log2 p rounds with doubling message sizes.
//  * row broadcast — sending updated particles along a host row/column of
//    the 2D algorithm.
//
// All costs are virtual seconds for ONE host participating in the
// collective (every host pays the same, so callers charge it to each
// clock).

#include <cstddef>

#include "net/nic.hpp"

namespace g6 {

/// Optional link-level fault hook (implemented by
/// g6::fault::FaultInjector). The collectives consult it once per hop: a
/// dropped message costs the retransmit timeout plus a resend, a latency
/// spike multiplies the hop cost. Pure virtual so net/ carries no
/// dependency on the fault subsystem.
class LinkPerturbation {
 public:
  virtual ~LinkPerturbation() = default;
  /// Whether the next message is lost (each call consumes one decision).
  virtual bool drop_message() = 0;
  /// Latency multiplier for the next hop (1.0 = nominal).
  virtual double latency_factor() = 0;
  /// Virtual seconds a sender waits before retransmitting a lost message.
  virtual double retransmit_timeout_s() const = 0;
};

/// Cost of one message hop under an optional perturbation: nominal time
/// times the spike factor, plus timeout + resend for each drop
/// (retransmissions can themselves be dropped; the sequence terminates
/// because the drop probability is < 1).
double perturbed_hop_time(double nominal_s, LinkPerturbation* faults);

/// Number of butterfly stages: ceil(log2(p)).
std::size_t butterfly_stages(std::size_t hosts);

/// Size of the tiny synchronization packet (header-dominated).
inline constexpr std::size_t kSyncPacketBytes = 64;

/// Barrier via butterfly exchange of sync packets. `faults` (optional)
/// perturbs each stage with drops/spikes.
double butterfly_barrier_time(std::size_t hosts, const NicModel& nic,
                              LinkPerturbation* faults = nullptr);

/// MPI_Barrier of MPICH/p4 over TCP: measured ~2x the hand-rolled
/// butterfly (Sec 4.4) — used by the ablation bench.
double mpich_barrier_time(std::size_t hosts, const NicModel& nic);

/// All-gather of `bytes_per_host` from every host to every host
/// (recursive doubling): stage k moves 2^k * bytes_per_host.
double butterfly_allgather_time(std::size_t hosts, std::size_t bytes_per_host,
                                const NicModel& nic,
                                LinkPerturbation* faults = nullptr);

/// One host sends `bytes` to `receivers` peers, serialized on its NIC.
double fanout_time(std::size_t receivers, std::size_t bytes, const NicModel& nic,
                   LinkPerturbation* faults = nullptr);

}  // namespace g6
