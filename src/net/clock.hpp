#pragma once
// Virtual time accounting for the simulated cluster. Each simulated host
// owns a VirtualClock; computation and communication advance it; barriers
// equalize clocks at max + overhead. Nothing ever sleeps.

#include <algorithm>
#include <span>

namespace g6 {

class VirtualClock {
 public:
  double now() const { return now_; }
  void advance(double dt) { now_ += dt; }
  void advance_to(double t) { now_ = std::max(now_, t); }
  void reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// Synchronize a group of clocks: everyone waits for the slowest, then
/// pays `overhead` (the barrier cost itself).
inline void synchronize_clocks(std::span<VirtualClock> clocks, double overhead) {
  double t_max = 0.0;
  for (const auto& c : clocks) t_max = std::max(t_max, c.now());
  for (auto& c : clocks) c.advance_to(t_max + overhead);
}

}  // namespace g6
