#include "net/collectives.hpp"

#include "util/check.hpp"

namespace g6 {

std::size_t butterfly_stages(std::size_t hosts) {
  G6_REQUIRE(hosts >= 1);
  std::size_t stages = 0;
  std::size_t span = 1;
  while (span < hosts) {
    span *= 2;
    ++stages;
  }
  return stages;
}

double butterfly_barrier_time(std::size_t hosts, const NicModel& nic) {
  return static_cast<double>(butterfly_stages(hosts)) *
         nic.message_time(kSyncPacketBytes);
}

double mpich_barrier_time(std::size_t hosts, const NicModel& nic) {
  return 2.0 * butterfly_barrier_time(hosts, nic);
}

double butterfly_allgather_time(std::size_t hosts, std::size_t bytes_per_host,
                                const NicModel& nic) {
  double t = 0.0;
  std::size_t chunk = bytes_per_host;
  std::size_t span = 1;
  while (span < hosts) {
    t += nic.message_time(chunk);
    chunk *= 2;
    span *= 2;
  }
  return t;
}

double fanout_time(std::size_t receivers, std::size_t bytes, const NicModel& nic) {
  return static_cast<double>(receivers) * nic.message_time(bytes);
}

}  // namespace g6
