#include "net/collectives.hpp"

#include "util/check.hpp"

namespace g6 {

double perturbed_hop_time(double nominal_s, LinkPerturbation* faults) {
  if (faults == nullptr) return nominal_s;
  double t = nominal_s * faults->latency_factor();
  // Each lost copy costs the timeout before the sender gives up on it,
  // then a fresh (possibly again perturbed) transmission.
  while (faults->drop_message()) {
    t += faults->retransmit_timeout_s();
    t += nominal_s * faults->latency_factor();
  }
  return t;
}

std::size_t butterfly_stages(std::size_t hosts) {
  G6_REQUIRE(hosts >= 1);
  std::size_t stages = 0;
  std::size_t span = 1;
  while (span < hosts) {
    span *= 2;
    ++stages;
  }
  return stages;
}

double butterfly_barrier_time(std::size_t hosts, const NicModel& nic,
                              LinkPerturbation* faults) {
  const std::size_t stages = butterfly_stages(hosts);
  const double hop = nic.message_time(kSyncPacketBytes);
  double t = 0.0;
  for (std::size_t s = 0; s < stages; ++s) t += perturbed_hop_time(hop, faults);
  return t;
}

double mpich_barrier_time(std::size_t hosts, const NicModel& nic) {
  return 2.0 * butterfly_barrier_time(hosts, nic);
}

double butterfly_allgather_time(std::size_t hosts, std::size_t bytes_per_host,
                                const NicModel& nic, LinkPerturbation* faults) {
  double t = 0.0;
  std::size_t chunk = bytes_per_host;
  std::size_t span = 1;
  while (span < hosts) {
    t += perturbed_hop_time(nic.message_time(chunk), faults);
    chunk *= 2;
    span *= 2;
  }
  return t;
}

double fanout_time(std::size_t receivers, std::size_t bytes, const NicModel& nic,
                   LinkPerturbation* faults) {
  if (faults == nullptr) {
    return static_cast<double>(receivers) * nic.message_time(bytes);
  }
  double t = 0.0;
  for (std::size_t r = 0; r < receivers; ++r) {
    t += perturbed_hop_time(nic.message_time(bytes), faults);
  }
  return t;
}

}  // namespace g6
