#pragma once
// JobQueue — priority classes with FIFO order inside each class.
//
// INTERNAL to src/serve (g6lint serve-isolation): clients submit through
// ServeClient; the queue holds only job ids, the Scheduler owns the job
// records. Two operations matter for the scheduling policy:
//
//   push_back  — normal admission, and cooperative preemption: a job that
//                yielded its lease goes to the BACK of its class, so the
//                waiters it yielded to run first (round-robin
//                time-sharing).
//   push_front — lease revocation: the job lost its boards through no
//                fault of its own (hardware died), so it keeps its turn.

#include <cstddef>
#include <deque>
#include <vector>

#include "serve/types.hpp"

namespace g6::serve {

class JobQueue {
 public:
  void push_back(JobId id, Priority p);
  void push_front(JobId id, Priority p);

  /// Remove one job wherever it sits (admission error paths, failures).
  /// Returns false when the id is not queued.
  bool remove(JobId id);

  /// All queued ids in dispatch order: class kInteractive first, FIFO
  /// within each class.
  std::vector<JobId> dispatch_order() const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::size_t class_depth(Priority p) const;

 private:
  std::deque<JobId> classes_[kPriorityClasses];
};

}  // namespace g6::serve
