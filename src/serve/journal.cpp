#include "serve/journal.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace g6::serve {

namespace {

using obs::JsonValue;
using obs::json_escape;

[[noreturn]] void fail(const std::string& what) {
  throw JournalError("journal: " + what);
}

// ---- encoding -----------------------------------------------------------

/// Shortest exact double: 17 significant digits round-trip binary64.
std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string quote(const std::string& s) { return '"' + json_escape(s) + '"'; }

void encode_spec(std::ostream& os, const JobSpec& s) {
  os << "{\"name\":" << quote(s.name) << ",\"model\":" << quote(s.model)
     << ",\"n\":" << s.n << ",\"w0\":" << num(s.w0)
     << ",\"t_end\":" << num(s.t_end) << ",\"eps\":" << num(s.eps)
     << ",\"eta\":" << num(s.eta) << ",\"seed\":" << s.seed
     << ",\"boards\":" << s.boards << ",\"boards_min\":" << s.boards_min
     << ",\"boards_max\":" << s.boards_max
     << ",\"priority\":" << quote(priority_name(s.priority))
     << ",\"deadline_rounds\":" << s.deadline_rounds
     << ",\"chaos_fail_quanta\":" << s.chaos_fail_quanta << "}";
}

void encode_config(std::ostream& os, const ServiceConfig& c) {
  os << "{\"max_queue_depth\":" << c.max_queue_depth
     << ",\"quantum_blocksteps\":" << c.quantum_blocksteps
     << ",\"max_requeues\":" << c.max_requeues
     << ",\"max_job_failures\":" << c.max_job_failures
     << ",\"backoff_base_rounds\":" << c.backoff_base_rounds
     << ",\"boards_per_host\":" << c.machine.boards_per_host
     << ",\"hosts_per_cluster\":" << c.machine.hosts_per_cluster
     << ",\"clusters\":" << c.machine.clusters
     << ",\"checkpoint_dir\":" << quote(c.durability.checkpoint_dir)
     << ",\"checkpoint_every_quanta\":" << c.durability.checkpoint_every_quanta
     << ",\"board_deaths\":[";
  for (std::size_t i = 0; i < c.board_deaths.size(); ++i) {
    if (i) os << ',';
    os << "{\"round\":" << c.board_deaths[i].round
       << ",\"board\":" << c.board_deaths[i].board << "}";
  }
  os << "]}";
}

// ---- decoding -----------------------------------------------------------

void check_keys(const JsonValue& obj, const std::set<std::string>& allowed,
                const std::string& where) {
  if (!obj.is_object()) fail(where + " must be a JSON object");
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (allowed.count(key) == 0) fail(where + ": unknown key '" + key + "'");
  }
  for (const std::string& key : allowed) {
    if (obj.find(key) == nullptr) {
      fail(where + ": missing required key '" + key + "'");
    }
  }
}

double number_at(const JsonValue& obj, const std::string& key,
                 const std::string& where) {
  const JsonValue* v = obj.find(key);
  G6_ASSERT(v != nullptr);  // check_keys enforced presence
  if (!v->is_number()) fail(where + ": key '" + key + "' must be a number");
  return v->as_number();
}

std::uint64_t u64_at(const JsonValue& obj, const std::string& key,
                     const std::string& where) {
  const double d = number_at(obj, key, where);
  if (d < 0.0 || d != std::floor(d)) {
    fail(where + ": key '" + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

int int_at(const JsonValue& obj, const std::string& key,
           const std::string& where) {
  const double d = number_at(obj, key, where);
  if (d != std::floor(d)) {
    fail(where + ": key '" + key + "' must be an integer");
  }
  return static_cast<int>(d);
}

std::string string_at(const JsonValue& obj, const std::string& key,
                      const std::string& where) {
  const JsonValue* v = obj.find(key);
  G6_ASSERT(v != nullptr);
  if (!v->is_string()) fail(where + ": key '" + key + "' must be a string");
  return v->as_string();
}

JobSpec decode_spec(const JsonValue& j, const std::string& where) {
  check_keys(j,
             {"name", "model", "n", "w0", "t_end", "eps", "eta", "seed",
              "boards", "boards_min", "boards_max", "priority",
              "deadline_rounds", "chaos_fail_quanta"},
             where);
  JobSpec s;
  s.name = string_at(j, "name", where);
  s.model = string_at(j, "model", where);
  s.n = static_cast<std::size_t>(u64_at(j, "n", where));
  s.w0 = number_at(j, "w0", where);
  s.t_end = number_at(j, "t_end", where);
  s.eps = number_at(j, "eps", where);
  s.eta = number_at(j, "eta", where);
  s.seed = static_cast<unsigned>(u64_at(j, "seed", where));
  s.boards = static_cast<std::size_t>(u64_at(j, "boards", where));
  s.boards_min = static_cast<std::size_t>(u64_at(j, "boards_min", where));
  s.boards_max = static_cast<std::size_t>(u64_at(j, "boards_max", where));
  const std::string prio = string_at(j, "priority", where);
  if (prio == "interactive") {
    s.priority = Priority::kInteractive;
  } else if (prio == "batch") {
    s.priority = Priority::kBatch;
  } else {
    fail(where + ": unknown priority '" + prio + "'");
  }
  s.deadline_rounds = u64_at(j, "deadline_rounds", where);
  s.chaos_fail_quanta = int_at(j, "chaos_fail_quanta", where);
  return s;
}

ServiceConfig decode_config(const JsonValue& j, const std::string& where) {
  check_keys(j,
             {"max_queue_depth", "quantum_blocksteps", "max_requeues",
              "max_job_failures", "backoff_base_rounds", "boards_per_host",
              "hosts_per_cluster", "clusters", "checkpoint_dir",
              "checkpoint_every_quanta", "board_deaths"},
             where);
  ServiceConfig c;
  c.max_queue_depth = static_cast<std::size_t>(u64_at(j, "max_queue_depth", where));
  c.quantum_blocksteps =
      static_cast<std::size_t>(u64_at(j, "quantum_blocksteps", where));
  c.max_requeues = int_at(j, "max_requeues", where);
  c.max_job_failures = int_at(j, "max_job_failures", where);
  c.backoff_base_rounds = u64_at(j, "backoff_base_rounds", where);
  c.machine.boards_per_host =
      static_cast<std::size_t>(u64_at(j, "boards_per_host", where));
  c.machine.hosts_per_cluster =
      static_cast<std::size_t>(u64_at(j, "hosts_per_cluster", where));
  c.machine.clusters = static_cast<std::size_t>(u64_at(j, "clusters", where));
  c.durability.checkpoint_dir = string_at(j, "checkpoint_dir", where);
  c.durability.checkpoint_every_quanta =
      u64_at(j, "checkpoint_every_quanta", where);
  const JsonValue* deaths = j.find("board_deaths");
  if (!deaths->is_array()) fail(where + ".board_deaths must be an array");
  for (std::size_t i = 0; i < deaths->items().size(); ++i) {
    const std::string dwhere =
        where + ".board_deaths[" + std::to_string(i) + "]";
    const JsonValue& d = deaths->items()[i];
    check_keys(d, {"round", "board"}, dwhere);
    BoardDeath death;
    death.round = u64_at(d, "round", dwhere);
    death.board = static_cast<std::size_t>(u64_at(d, "board", dwhere));
    c.board_deaths.push_back(death);
  }
  return c;
}

JournalRecordType type_from_name(const std::string& name,
                                 const std::string& where) {
  for (int t = 0; t <= static_cast<int>(JournalRecordType::kLeaseResized);
       ++t) {
    const auto rt = static_cast<JournalRecordType>(t);
    if (name == journal_record_type_name(rt)) return rt;
  }
  fail(where + ": unknown record type '" + name + "'");
}

}  // namespace

const char* journal_record_type_name(JournalRecordType t) {
  switch (t) {
    case JournalRecordType::kOpen:
      return "open";
    case JournalRecordType::kRecovered:
      return "recovered";
    case JournalRecordType::kSubmitted:
      return "submitted";
    case JournalRecordType::kAdmitted:
      return "admitted";
    case JournalRecordType::kRejected:
      return "rejected";
    case JournalRecordType::kStarted:
      return "started";
    case JournalRecordType::kQuantum:
      return "quantum";
    case JournalRecordType::kCheckpointed:
      return "checkpointed";
    case JournalRecordType::kRequeued:
      return "requeued";
    case JournalRecordType::kBoardDeath:
      return "board-death";
    case JournalRecordType::kFinished:
      return "finished";
    case JournalRecordType::kFailed:
      return "failed";
    case JournalRecordType::kQuarantined:
      return "quarantined";
    case JournalRecordType::kDrained:
      return "drained";
    case JournalRecordType::kLeaseResized:
      return "lease-resized";
  }
  return "?";
}

std::string encode_record(const JournalRecord& rec) {
  std::ostringstream os;
  os << "{\"seq\":" << rec.seq
     << ",\"type\":" << quote(journal_record_type_name(rec.type))
     << ",\"round\":" << rec.round;
  switch (rec.type) {
    case JournalRecordType::kOpen:
      os << ",\"schema\":" << quote(kJournalSchema) << ",\"config\":";
      encode_config(os, rec.config);
      break;
    case JournalRecordType::kRecovered:
      os << ",\"records\":" << rec.records;
      break;
    case JournalRecordType::kSubmitted:
      os << ",\"job\":" << rec.job << ",\"spec\":";
      encode_spec(os, rec.spec);
      break;
    case JournalRecordType::kAdmitted:
      os << ",\"job\":" << rec.job;
      break;
    case JournalRecordType::kRejected:
      os << ",\"job\":" << rec.job << ",\"reason\":" << quote(rec.reason)
         << ",\"message\":" << quote(rec.message);
      break;
    case JournalRecordType::kStarted:
      os << ",\"job\":" << rec.job << ",\"boards\":" << rec.boards;
      break;
    case JournalRecordType::kQuantum:
      os << ",\"job\":" << rec.job << ",\"quanta\":" << rec.quanta
         << ",\"t\":" << num(rec.t) << ",\"steps\":" << rec.steps
         << ",\"blocksteps\":" << rec.blocksteps;
      break;
    case JournalRecordType::kCheckpointed:
      os << ",\"job\":" << rec.job << ",\"quanta\":" << rec.quanta
         << ",\"file\":" << quote(rec.file) << ",\"tag\":" << quote(rec.tag);
      break;
    case JournalRecordType::kRequeued:
      os << ",\"job\":" << rec.job << ",\"reason\":" << quote(rec.reason)
         << ",\"requeues\":" << rec.requeues
         << ",\"failures\":" << rec.failures
         << ",\"hold_until\":" << rec.hold_until;
      break;
    case JournalRecordType::kBoardDeath:
      os << ",\"board\":" << rec.board;
      break;
    case JournalRecordType::kFinished:
      os << ",\"job\":" << rec.job << ",\"quanta\":" << rec.quanta
         << ",\"t\":" << num(rec.t) << ",\"e0\":" << num(rec.e0)
         << ",\"e_final\":" << num(rec.e_final) << ",\"steps\":" << rec.steps
         << ",\"blocksteps\":" << rec.blocksteps;
      break;
    case JournalRecordType::kFailed:
      os << ",\"job\":" << rec.job << ",\"reason\":" << quote(rec.reason)
         << ",\"message\":" << quote(rec.message);
      break;
    case JournalRecordType::kQuarantined:
      os << ",\"job\":" << rec.job << ",\"failures\":" << rec.failures
         << ",\"file\":" << quote(rec.file);
      break;
    case JournalRecordType::kDrained:
      os << ",\"reason\":" << quote(rec.reason);
      break;
    case JournalRecordType::kLeaseResized:
      os << ",\"job\":" << rec.job << ",\"boards\":" << rec.boards
         << ",\"reason\":" << quote(rec.reason);
      break;
  }
  os << "}";
  return os.str();
}

JournalRecord decode_record(std::string_view line) {
  JsonValue root;
  try {
    root = JsonValue::parse(line);
  } catch (const std::exception& e) {
    fail(std::string("record is not valid JSON: ") + e.what());
  }
  if (!root.is_object()) fail("record must be a JSON object");
  const JsonValue* type_v = root.find("type");
  if (type_v == nullptr || !type_v->is_string()) {
    fail("record: missing string key 'type'");
  }
  JournalRecord rec;
  rec.type = type_from_name(type_v->as_string(), "record");
  const std::string where =
      std::string("record '") + journal_record_type_name(rec.type) + "'";

  std::set<std::string> keys = {"seq", "type", "round"};
  switch (rec.type) {
    case JournalRecordType::kOpen:
      keys.insert({"schema", "config"});
      break;
    case JournalRecordType::kRecovered:
      keys.insert("records");
      break;
    case JournalRecordType::kSubmitted:
      keys.insert({"job", "spec"});
      break;
    case JournalRecordType::kAdmitted:
      keys.insert("job");
      break;
    case JournalRecordType::kRejected:
    case JournalRecordType::kFailed:
      keys.insert({"job", "reason", "message"});
      break;
    case JournalRecordType::kStarted:
      keys.insert({"job", "boards"});
      break;
    case JournalRecordType::kQuantum:
      keys.insert({"job", "quanta", "t", "steps", "blocksteps"});
      break;
    case JournalRecordType::kCheckpointed:
      keys.insert({"job", "quanta", "file", "tag"});
      break;
    case JournalRecordType::kRequeued:
      keys.insert({"job", "reason", "requeues", "failures", "hold_until"});
      break;
    case JournalRecordType::kBoardDeath:
      keys.insert("board");
      break;
    case JournalRecordType::kFinished:
      keys.insert(
          {"job", "quanta", "t", "e0", "e_final", "steps", "blocksteps"});
      break;
    case JournalRecordType::kQuarantined:
      keys.insert({"job", "failures", "file"});
      break;
    case JournalRecordType::kDrained:
      keys.insert("reason");
      break;
    case JournalRecordType::kLeaseResized:
      keys.insert({"job", "boards", "reason"});
      break;
  }
  check_keys(root, keys, where);

  rec.seq = u64_at(root, "seq", where);
  rec.round = u64_at(root, "round", where);
  if (keys.count("job")) rec.job = u64_at(root, "job", where);
  if (keys.count("schema")) {
    const std::string schema = string_at(root, "schema", where);
    if (schema != kJournalSchema) {
      fail(where + ": schema '" + schema + "' (expected " + kJournalSchema +
           ")");
    }
  }
  if (keys.count("config")) {
    rec.config = decode_config(root.at("config"), where + ".config");
  }
  if (keys.count("spec")) {
    rec.spec = decode_spec(root.at("spec"), where + ".spec");
  }
  if (keys.count("records")) rec.records = u64_at(root, "records", where);
  if (keys.count("reason")) rec.reason = string_at(root, "reason", where);
  if (keys.count("message")) rec.message = string_at(root, "message", where);
  if (keys.count("file")) rec.file = string_at(root, "file", where);
  if (keys.count("tag")) rec.tag = string_at(root, "tag", where);
  if (keys.count("quanta")) rec.quanta = u64_at(root, "quanta", where);
  if (keys.count("t")) rec.t = number_at(root, "t", where);
  if (keys.count("e0")) rec.e0 = number_at(root, "e0", where);
  if (keys.count("e_final")) rec.e_final = number_at(root, "e_final", where);
  if (keys.count("steps")) rec.steps = u64_at(root, "steps", where);
  if (keys.count("blocksteps")) {
    rec.blocksteps = u64_at(root, "blocksteps", where);
  }
  if (keys.count("requeues")) rec.requeues = int_at(root, "requeues", where);
  if (keys.count("failures")) rec.failures = int_at(root, "failures", where);
  if (keys.count("hold_until")) {
    rec.hold_until = u64_at(root, "hold_until", where);
  }
  if (keys.count("board")) {
    rec.board = static_cast<std::size_t>(u64_at(root, "board", where));
  }
  if (keys.count("boards")) {
    rec.boards = static_cast<std::size_t>(u64_at(root, "boards", where));
  }
  return rec;
}

JournalReplay replay_journal(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string content = buf.str();
  if (content.empty()) fail(path + " is empty");

  JournalReplay replay;
  std::size_t pos = 0;
  std::uint64_t line_no = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      // Unterminated final line: the one torn write the append protocol
      // permits. Drop it — the transition it described never took effect.
      replay.torn_tail = true;
      break;
    }
    ++line_no;
    const std::string_view line(content.data() + pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) fail(path + ": empty line " + std::to_string(line_no));
    JournalRecord rec;
    try {
      rec = decode_record(line);
    } catch (const JournalError& e) {
      fail(path + " line " + std::to_string(line_no) + ": " + e.what());
    }
    if (rec.seq != line_no) {
      fail(path + " line " + std::to_string(line_no) + ": sequence number " +
           std::to_string(rec.seq) + " (expected " + std::to_string(line_no) +
           ")");
    }
    if (line_no == 1 && rec.type != JournalRecordType::kOpen) {
      fail(path + ": first record must be 'open'");
    }
    if (line_no > 1 && rec.type == JournalRecordType::kOpen) {
      fail(path + " line " + std::to_string(line_no) +
           ": duplicate 'open' record");
    }
    replay.records.push_back(std::move(rec));
  }
  if (replay.records.empty()) {
    fail(path + ": no complete records (torn 'open' line?)");
  }
  return replay;
}

std::string job_run_tag(const JobSpec& spec) {
  std::ostringstream os;
  os.precision(17);
  os << "serve job=" << spec.name << " model=" << spec.model
     << " n=" << spec.n << " w0=" << spec.w0 << " t_end=" << spec.t_end
     << " eps=" << spec.eps << " eta=" << spec.eta << " seed=" << spec.seed
     << " boards=" << spec.boards;
  return os.str();
}

Journal::Journal(const std::string& path, bool truncate,
                 std::uint64_t start_seq)
    : log_(path, truncate), next_seq_(start_seq) {
  G6_REQUIRE_MSG(start_seq >= 1, "journal sequence numbers are 1-based");
}

void Journal::append(JournalRecord rec) {
  rec.seq = next_seq_++;
  log_.append(encode_record(rec));
}

}  // namespace g6::serve
