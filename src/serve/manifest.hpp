#pragma once
// Job manifests — the JSON a tenant hands tools/grape6_serve.
//
// Schema `grape6-serve-manifest-v1`:
//
//   {
//     "schema": "grape6-serve-manifest-v1",
//     "service": {                       // optional, all keys optional
//       "max_queue_depth": 64,
//       "quantum_blocksteps": 16,
//       "max_requeues": 2,
//       "boards_per_host": 4,            // machine shape overrides
//       "hosts_per_cluster": 4,
//       "clusters": 1,
//       "board_deaths": [ {"round": 3, "board": 0}, ... ]
//     },
//     "jobs": [
//       { "name": "prod-a",              // required, unique
//         "model": "plummer",            // optional, defaults as JobSpec
//         "n": 256, "t_end": 0.25, "eta": 0.02, "eps": 0.015625,
//         "w0": 6.0, "seed": 1, "boards": 2,
//         "boards_min": 1, "boards_max": 4,  // autoscaling lease bounds
//         "priority": "batch" },         // "interactive" | "batch"
//       ...
//     ]
//   }
//
// Parsing is strict: an unknown key anywhere, a wrong type, a duplicate
// job name or a missing required key throws ManifestError with the
// offending key in the message — a manifest typo surfaces at load time,
// not as a silently mis-specified simulation.

#include <stdexcept>
#include <string>
#include <vector>

#include "serve/types.hpp"

namespace g6::serve {

/// Manifest syntax or schema violation; what() names the offending key.
class ManifestError : public std::runtime_error {
 public:
  explicit ManifestError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A parsed manifest: service-level knobs plus the job list, in file
/// order (submission order — it fixes FIFO ties).
struct Manifest {
  ServiceConfig service;
  std::vector<JobSpec> jobs;
};

/// Parse manifest text; throws ManifestError on any schema violation.
Manifest parse_manifest(const std::string& text);

/// Read and parse a manifest file; throws ManifestError (also for I/O).
Manifest load_manifest(const std::string& path);

inline constexpr const char* kManifestSchema = "grape6-serve-manifest-v1";

}  // namespace g6::serve
