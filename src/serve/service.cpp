#include "serve/service.hpp"

#include "serve/recovery.hpp"
#include "serve/scheduler.hpp"
#include "util/check.hpp"

namespace g6::serve {

GrapeService::GrapeService(ServiceConfig cfg)
    : impl_(std::make_unique<Scheduler>(std::move(cfg))) {
  G6_REQUIRE(impl_ != nullptr);
}

GrapeService::GrapeService(std::unique_ptr<Scheduler> impl)
    : impl_(std::move(impl)) {
  G6_REQUIRE(impl_ != nullptr);
}

std::unique_ptr<GrapeService> GrapeService::recover(
    const std::string& journal_path, RecoveryInfo* info,
    std::atomic<bool>* stop_flag) {
  RestoredService restored = recover_from_journal(journal_path);
  restored.cfg.stop_flag = stop_flag;
  if (info != nullptr) *info = restored.info;
  auto scheduler = std::make_unique<Scheduler>(std::move(restored));
  // make_unique cannot reach the private constructor; `new` here is the
  // factory's own body, which can.
  return std::unique_ptr<GrapeService>(
      new GrapeService(std::move(scheduler)));
}

GrapeService::~GrapeService() = default;

SubmitResult GrapeService::submit(const JobSpec& spec) {
  return impl_->submit(spec);
}

void GrapeService::drain() { impl_->drain(); }

void GrapeService::run_until_drained() { impl_->run_until_drained(); }

bool GrapeService::run_rounds(std::size_t max_rounds) {
  return impl_->run_rounds(max_rounds);
}

JobReport GrapeService::report(JobId id) const { return impl_->report(id); }

JobState GrapeService::state(JobId id) const { return impl_->state(id); }

const ParticleSet& GrapeService::final_state(JobId id, double* t) const {
  return impl_->final_state(id, t);
}

const ServiceStats& GrapeService::stats() const { return impl_->stats(); }

std::vector<JobId> GrapeService::jobs() const { return impl_->all_jobs(); }

const ServiceConfig& GrapeService::config() const { return impl_->config(); }

std::size_t GrapeService::healthy_boards() const {
  return impl_->healthy_boards();
}

SubmitResult ServeClient::submit(const JobSpec& spec) {
  return service_->submit(spec);
}

JobReport ServeClient::report(JobId id) const { return service_->report(id); }

JobState ServeClient::state(JobId id) const { return service_->state(id); }

const ParticleSet& ServeClient::final_state(JobId id, double* t) const {
  return service_->final_state(id, t);
}

}  // namespace g6::serve
