#pragma once
// Scheduler — the serving loop that time-shares the emulated machine.
//
// INTERNAL to src/serve (g6lint serve-isolation): clients reach it
// through GrapeService / ServeClient only.
//
// The loop runs in *rounds*. Each round:
//
//   1. Scheduled board deaths due this round fire. A death under a lease
//      revokes it: the job's runtime is torn down (the hardware is gone),
//      its last blockstep-boundary state is kept, and the job re-enters
//      its class queue at the FRONT (it lost the boards through no fault
//      of its own) — the fault path re-queues work instead of killing the
//      process.
//   2. Dispatch: queued jobs, interactive class first and FIFO within a
//      class, are granted leases from the free healthy boards (first fit,
//      lowest ids; smaller jobs may backfill past a blocked head).
//   3. Every leased job runs one quantum — at most quantum_blocksteps
//      blocksteps, never past its t_end — as one task on the shared
//      src/exec pool, so jobs with disjoint leases genuinely overlap.
//   4. Results fold in job-id order (accounting stays deterministic):
//      completed jobs release their lease; a quantum that threw HardFault
//      marks its boards dead and re-queues the job; other errors fail the
//      job without touching its neighbors.
//   5. If a queued job found no boards this round, running jobs of the
//      same or lower priority yield cooperatively: leases are released at
//      the quantum boundary and the yielding jobs go to the BACK of their
//      class — round-robin time-sharing with per-job fair-share
//      accounting (virtual GRAPE seconds) in the reports.
//
// Determinism: scheduling decisions depend only on (submission order,
// specs, the board-death schedule) — never on wall time — and each job's
// physics lives in its own JobRuntime, so every job's result is
// bit-identical to the same spec run standalone.
//
// Durability (docs/RELIABILITY.md, "Serving durability"): with
// ServiceConfig::durability enabled, every lifecycle transition is
// journaled (serve/journal.hpp) before submit/round returns, jobs are
// checkpointed at quantum boundaries (fault/checkpoint.hpp, rotating
// generations), and the restore constructor rebuilds the whole scheduler
// from a replayed journal — the round clock, dead boards, queue order and
// per-job physics state all resume where the previous process stopped.
// Per-job policies ride on the same machinery: deadlines measured in
// rounds (the logical clock — wall time would break replay), transient-
// fault retry with exponential virtual-time backoff, and poison-job
// quarantine with a flight-recorder dump.

#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"
#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"
#include "serve/journal.hpp"
#include "serve/partition.hpp"
#include "serve/types.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace g6::obs {
class MetricScope;
}  // namespace g6::obs

namespace g6::serve {

/// One job rebuilt from a journal replay (filled by serve/recovery.hpp,
/// consumed by the Scheduler restore constructor). Live jobs re-enter
/// the queue in id order — their original submission order — carrying
/// their policy counters; terminal jobs keep their records (and, for
/// completed jobs, their final checkpoint, from which the result state
/// is reconstructed).
struct RestoredJob {
  JobSpec spec;
  JobId id = 0;
  JobState state = JobState::kQueued;  ///< kQueued = live (was queued OR running)
  RejectReason reject = RejectReason::kNone;
  std::string message;
  int requeues = 0;
  int failures = 0;
  std::uint64_t hold_until_round = 0;
  std::uint64_t submit_round = 0;
  std::uint64_t quanta = 0;
  double t_reached = 0.0;
  unsigned long long steps = 0;
  unsigned long long blocksteps = 0;
  double e0 = 0.0;
  double e_final = 0.0;
  std::size_t boards_now = 0;  ///< lease size after the last resize (0 = spec)
  std::uint64_t resizes = 0;   ///< lease-resized records replayed
  bool has_checkpoint = false;
  fault::RunCheckpoint checkpoint;  ///< physics state (live mid-flight + completed)
  std::string checkpoint_file;
};

/// Everything a --recover replay reconstructs (serve/recovery.hpp).
struct RestoredService {
  ServiceConfig cfg;              ///< from the journal's open record
  std::vector<RestoredJob> jobs;  ///< id order; ids are 1..jobs.size()
  std::vector<BoardDeath> fired_deaths;  ///< deaths that already happened
  std::uint64_t resume_round = 0;
  std::uint64_t next_seq = 1;     ///< journal continues from here
  RecoveryInfo info;
};

class Scheduler {
 public:
  explicit Scheduler(ServiceConfig cfg);
  /// Crash recovery: rebuild from a replayed journal. Re-opens the
  /// journal in append mode (continuing the sequence) and logs a
  /// `recovered` record marking the new process generation.
  explicit Scheduler(RestoredService restored);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission-checked submission; rejected jobs get a record (and a
  /// queryable report) too, but never enter the queue.
  SubmitResult submit(const JobSpec& spec);

  /// Stop accepting new submissions (subsequent submits reject with
  /// kDraining); queued and running jobs still run to completion.
  void drain() {
    MutexLock lk(serial_m_);
    draining_ = true;
  }

  /// Run rounds until no job is queued or running — or until
  /// cfg.stop_flag is raised, which triggers a graceful drain
  /// (checkpoint live jobs, journal a drain record, return early).
  void run_until_drained();

  /// Run at most `max_rounds` rounds; returns true while live work
  /// remains. Lets tests simulate a crash at an exact quantum boundary
  /// without killing the process.
  bool run_rounds(std::uint64_t max_rounds);

  JobReport report(JobId id) const;
  JobState state(JobId id) const;
  /// Final particle state of a completed job; `t` receives its time.
  const ParticleSet& final_state(JobId id, double* t) const;
  const ServiceStats& stats() const { return stats_; }
  std::vector<JobId> all_jobs() const;
  const ServiceConfig& config() const { return cfg_; }
  std::size_t healthy_boards() const {
    MutexLock lk(serial_m_);
    return partition_.healthy();
  }

 private:
  struct Record {
    JobSpec spec;
    JobId id = 0;
    JobState state = JobState::kQueued;
    RejectReason reject = RejectReason::kNone;
    std::string message;
    int requeues = 0;  ///< revocation re-queues consumed
    int failures = 0;  ///< consecutive transient-fault quanta (quarantine)
    std::uint64_t hold_until_round = 0;  ///< retry backoff release round
    std::uint64_t submit_round = 0;      ///< deadline epoch (logical clock)
    std::string checkpoint_file;         ///< last checkpoint path ("" = none)
    /// Autoscaling: the lease size the job runs at (starts at spec.boards,
    /// moves within [min_boards, max_boards]; every change is journaled).
    std::size_t boards_target = 0;
    std::uint64_t resizes = 0;           ///< grow/shrink events applied

    BoardLease lease;                      ///< valid while kRunning
    std::unique_ptr<JobRuntime> runtime;   ///< live while running/preempted
    /// Attribution scope ("job:<name>") in the global ScopeRegistry;
    /// installed on every thread that does this job's work. Set once at
    /// admission; the registry owns it.
    obs::MetricScope* scope = nullptr;
    SavedJob saved;                        ///< last blockstep-boundary state
    bool has_saved = false;
    double e0 = 0.0;

    // accounting (folded serially; reports read these, never the runtime)
    double submit_wall_s = 0.0;
    double first_run_wall_s = -1.0;
    std::uint64_t quanta = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t revocations = 0;
    double run_s = 0.0;
    double grape_virtual_s = 0.0;
    double t_reached = 0.0;
    unsigned long long steps = 0;
    unsigned long long blocksteps = 0;
    obs::Eq10Accumulator eq10;

    // quantum scratch: written by this job's pool task, read after join
    std::size_t q_blocksteps = 0;
    double q_wall_s = 0.0;
    double q_virtual_s = 0.0;
    std::exception_ptr q_error;

    // result
    ParticleSet result;
    double result_time = 0.0;
    double e_final = 0.0;
  };

  /// Shared construction; `open_journal` is false on the restore path,
  /// which re-opens the journal in append mode itself.
  Scheduler(ServiceConfig cfg, bool open_journal);

  Record& rec(JobId id) G6_REQUIRES(serial_m_);
  const Record& rec(JobId id) const G6_REQUIRES(serial_m_);

  bool has_live_work() const G6_REQUIRES(serial_m_);
  void round() G6_REQUIRES(serial_m_);
  void enforce_deadlines() G6_REQUIRES(serial_m_);
  void apply_board_deaths() G6_REQUIRES(serial_m_);
  /// Dispatch queued jobs into free boards; returns the first job that
  /// stayed blocked for lack of free boards (0 = none).
  JobId dispatch() G6_REQUIRES(serial_m_);
  void run_quanta(const std::vector<JobId>& running) G6_REQUIRES(serial_m_);
  void fold_quantum(Record& r) G6_REQUIRES(serial_m_);
  void preempt_for(JobId blocked_id) G6_REQUIRES(serial_m_);

  /// Autoscaling (between quanta only; see docs/SERVING.md):
  /// resize a running job's lease to `new_size` — release, re-acquire,
  /// rebuild the runtime through the save/restore path (the BFP exponent
  /// cache is shaped by the lease size), journal a lease-resized record.
  void resize_running(Record& r, std::size_t new_size, const char* why)
      G6_REQUIRES(serial_m_);
  /// Bookkeeping shared by every resize path: boards_target follows the
  /// lease, counters tick, a lease-resized journal record lands.
  void record_resize(Record& r, const char* why) G6_REQUIRES(serial_m_);
  /// Queue pressure: shrink running autoscalable jobs toward boards_min
  /// to free boards for `blocked_id` before resorting to preemption.
  void shrink_for(JobId blocked_id) G6_REQUIRES(serial_m_);
  /// Idle machine: grow running autoscalable jobs toward boards_max.
  void grow_leases() G6_REQUIRES(serial_m_);

  void start_runtime(Record& r) G6_REQUIRES(serial_m_);
  void finish_job(Record& r) G6_REQUIRES(serial_m_);
  void fail_job(Record& r, RejectReason reason, std::string message)
      G6_REQUIRES(serial_m_);
  /// Lease lost to dead hardware: keep the saved state, drop the runtime,
  /// re-queue at the front (bounded by max_requeues).
  void revoke_lease(Record& r, const std::string& why) G6_REQUIRES(serial_m_);
  void release_lease(Record& r) G6_REQUIRES(serial_m_);
  void update_round_gauges() G6_REQUIRES(serial_m_);

  /// Transient fault in a quantum: retry with exponential virtual-time
  /// backoff, or quarantine after max_job_failures consecutive faults.
  void retry_or_quarantine(Record& r, const std::string& what)
      G6_REQUIRES(serial_m_);
  /// Poison job: isolate it (terminal kQuarantined) and dump the flight
  /// recorder next to its checkpoints for post-mortem.
  void quarantine_job(Record& r, std::string message) G6_REQUIRES(serial_m_);
  /// Persist a job's last quantum-boundary state (rotating generations)
  /// and journal the checkpoint. No-op without durability or saved state.
  void checkpoint_job(Record& r) G6_REQUIRES(serial_m_);
  /// SIGTERM drain: checkpoint every live job, journal a drain record.
  void graceful_stop() G6_REQUIRES(serial_m_);
  /// Append to the journal (if enabled), stamping the current round.
  void journal_append(JournalRecord rec) G6_REQUIRES(serial_m_);
  /// Requeues-per-job histogram, observed once at each terminal state.
  void observe_terminal(const Record& r) G6_REQUIRES(serial_m_);
  std::string checkpoint_path(const std::string& job_name) const;

  // The service contract says "one control thread": serial_m_ turns that
  // prose invariant into a compile-time one. Every public entry point
  // takes it, every private mutator G6_REQUIRES it, and the serving state
  // below is G6_GUARDED_BY it — so -Wthread-safety rejects any new code
  // path that reaches scheduling state without going through the serial
  // section. Uncontended by design, so the lock costs one atomic op.
  mutable Mutex serial_m_;

  ServiceConfig cfg_;
  AdmissionController admission_ G6_GUARDED_BY(serial_m_);
  BoardPartitioner partition_ G6_GUARDED_BY(serial_m_);
  JobQueue queue_ G6_GUARDED_BY(serial_m_);
  /// index = id - 1
  std::vector<std::unique_ptr<Record>> records_ G6_GUARDED_BY(serial_m_);
  /// sorted by round
  std::vector<BoardDeath> pending_deaths_ G6_GUARDED_BY(serial_m_);
  std::uint64_t round_index_ G6_GUARDED_BY(serial_m_) = 0;
  bool draining_ G6_GUARDED_BY(serial_m_) = false;
  /// Write-ahead journal; null when durability is off.
  std::unique_ptr<Journal> journal_ G6_GUARDED_BY(serial_m_);
  ServiceStats stats_;  ///< read via stats() after drain; folded serially
};

}  // namespace g6::serve
