#include "serve/manifest.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.hpp"
#include "serve/admission.hpp"
#include "util/check.hpp"

namespace g6::serve {

namespace {

using obs::JsonValue;

[[noreturn]] void fail(const std::string& what) { throw ManifestError(what); }

double number_at(const JsonValue& obj, const std::string& key,
                 const std::string& where) {
  const JsonValue* v = obj.find(key);
  G6_ASSERT(v != nullptr);
  if (!v->is_number()) fail(where + ": key '" + key + "' must be a number");
  return v->as_number();
}

std::size_t size_at(const JsonValue& obj, const std::string& key,
                    const std::string& where) {
  const double d = number_at(obj, key, where);
  if (d < 0.0 || d != std::floor(d)) {
    fail(where + ": key '" + key + "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

std::string string_at(const JsonValue& obj, const std::string& key,
                      const std::string& where) {
  const JsonValue* v = obj.find(key);
  G6_ASSERT(v != nullptr);
  if (!v->is_string()) fail(where + ": key '" + key + "' must be a string");
  return v->as_string();
}

void check_keys(const JsonValue& obj, const std::set<std::string>& allowed,
                const std::string& where) {
  if (!obj.is_object()) fail(where + " must be a JSON object");
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (allowed.count(key) == 0) {
      fail(where + ": unknown key '" + key + "'");
    }
  }
}

Priority parse_priority(const std::string& s, const std::string& where) {
  if (s == "interactive") return Priority::kInteractive;
  if (s == "batch") return Priority::kBatch;
  fail(where + ": priority must be \"interactive\" or \"batch\", got \"" + s +
       "\"");
}

JobSpec parse_job(const JsonValue& j, std::size_t index) {
  const std::string where = "jobs[" + std::to_string(index) + "]";
  check_keys(j,
             {"name", "model", "n", "w0", "t_end", "eps", "eta", "seed",
              "boards", "boards_min", "boards_max", "priority",
              "deadline_rounds", "chaos_fail_quanta"},
             where);
  if (j.find("name") == nullptr) fail(where + ": missing required key 'name'");

  JobSpec spec;
  spec.name = string_at(j, "name", where);
  if (j.find("model")) spec.model = string_at(j, "model", where);
  if (j.find("n")) spec.n = size_at(j, "n", where);
  if (j.find("w0")) spec.w0 = number_at(j, "w0", where);
  if (j.find("t_end")) spec.t_end = number_at(j, "t_end", where);
  if (j.find("eps")) spec.eps = number_at(j, "eps", where);
  if (j.find("eta")) spec.eta = number_at(j, "eta", where);
  if (j.find("seed")) spec.seed = static_cast<unsigned>(size_at(j, "seed", where));
  if (j.find("boards")) spec.boards = size_at(j, "boards", where);
  if (j.find("boards_min")) spec.boards_min = size_at(j, "boards_min", where);
  if (j.find("boards_max")) spec.boards_max = size_at(j, "boards_max", where);
  if (j.find("priority")) {
    spec.priority = parse_priority(string_at(j, "priority", where), where);
  }
  if (j.find("deadline_rounds")) {
    spec.deadline_rounds = size_at(j, "deadline_rounds", where);
  }
  if (j.find("chaos_fail_quanta")) {
    spec.chaos_fail_quanta =
        static_cast<int>(size_at(j, "chaos_fail_quanta", where));
  }

  const AdmissionDecision d = AdmissionController::validate_spec(spec);
  if (!d.admit) fail(where + " ('" + spec.name + "'): " + d.message);
  return spec;
}

std::vector<BoardDeath> parse_board_deaths(const JsonValue& arr) {
  if (!arr.is_array()) fail("service.board_deaths must be an array");
  std::vector<BoardDeath> deaths;
  for (std::size_t i = 0; i < arr.items().size(); ++i) {
    const std::string where = "service.board_deaths[" + std::to_string(i) + "]";
    const JsonValue& d = arr.items()[i];
    check_keys(d, {"round", "board"}, where);
    if (d.find("round") == nullptr || d.find("board") == nullptr) {
      fail(where + ": needs both 'round' and 'board'");
    }
    BoardDeath death;
    death.round = size_at(d, "round", where);
    death.board = size_at(d, "board", where);
    deaths.push_back(death);
  }
  return deaths;
}

ServiceConfig parse_service(const JsonValue& s) {
  const std::string where = "service";
  check_keys(s,
             {"max_queue_depth", "quantum_blocksteps", "max_requeues",
              "max_job_failures", "backoff_base_rounds", "boards_per_host",
              "hosts_per_cluster", "clusters", "board_deaths"},
             where);
  ServiceConfig cfg;
  if (s.find("max_queue_depth")) {
    cfg.max_queue_depth = size_at(s, "max_queue_depth", where);
  }
  if (s.find("quantum_blocksteps")) {
    cfg.quantum_blocksteps = size_at(s, "quantum_blocksteps", where);
    if (cfg.quantum_blocksteps < 1) {
      fail("service.quantum_blocksteps must be >= 1");
    }
  }
  if (s.find("max_requeues")) {
    cfg.max_requeues = static_cast<int>(size_at(s, "max_requeues", where));
  }
  if (s.find("max_job_failures")) {
    cfg.max_job_failures =
        static_cast<int>(size_at(s, "max_job_failures", where));
    if (cfg.max_job_failures < 1) fail("service.max_job_failures must be >= 1");
  }
  if (s.find("backoff_base_rounds")) {
    cfg.backoff_base_rounds = size_at(s, "backoff_base_rounds", where);
  }
  if (s.find("boards_per_host")) {
    cfg.machine.boards_per_host = size_at(s, "boards_per_host", where);
  }
  if (s.find("hosts_per_cluster")) {
    cfg.machine.hosts_per_cluster = size_at(s, "hosts_per_cluster", where);
  }
  if (s.find("clusters")) {
    cfg.machine.clusters = size_at(s, "clusters", where);
  }
  if (cfg.pool_boards() < 1) fail("service: machine has zero boards");
  if (const JsonValue* deaths = s.find("board_deaths")) {
    cfg.board_deaths = parse_board_deaths(*deaths);
    for (const BoardDeath& d : cfg.board_deaths) {
      if (d.board >= cfg.pool_boards()) {
        fail("service.board_deaths: board " + std::to_string(d.board) +
             " outside the " + std::to_string(cfg.pool_boards()) +
             "-board machine");
      }
    }
  }
  return cfg;
}

}  // namespace

Manifest parse_manifest(const std::string& text) {
  if (text.empty()) fail("manifest: empty manifest text");
  JsonValue root;
  try {
    root = JsonValue::parse(text);
  } catch (const std::exception& e) {
    fail(std::string("manifest is not valid JSON: ") + e.what());
  }
  check_keys(root, {"schema", "service", "jobs"}, "manifest");

  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kManifestSchema) {
    fail(std::string("manifest: key 'schema' must be \"") + kManifestSchema +
         "\"");
  }

  Manifest m;
  if (const JsonValue* service = root.find("service")) {
    m.service = parse_service(*service);
  }

  // "jobs" is optional: a service-only manifest describes the machine a
  // serving daemon (tools/grape6_served) fronts, with every job arriving
  // over the wire. A PRESENT but empty array is still an error — that is
  // a manifest that meant to list jobs and lost them.
  const JsonValue* jobs = root.find("jobs");
  if (jobs == nullptr) return m;
  if (!jobs->is_array()) fail("manifest: key 'jobs' must be an array");
  if (jobs->items().empty()) fail("manifest: 'jobs' is empty");

  std::set<std::string> names;
  for (std::size_t i = 0; i < jobs->items().size(); ++i) {
    JobSpec spec = parse_job(jobs->items()[i], i);
    if (!names.insert(spec.name).second) {
      fail("jobs[" + std::to_string(i) + "]: duplicate job name '" +
           spec.name + "'");
    }
    m.jobs.push_back(std::move(spec));
  }
  return m;
}

Manifest load_manifest(const std::string& path) {
  G6_REQUIRE_MSG(!path.empty(), "empty manifest path");
  std::ifstream in(path);
  if (!in) fail("cannot open manifest file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_manifest(ss.str());
}

}  // namespace g6::serve
