#pragma once
// AdmissionController — the front door of the service.
//
// INTERNAL to src/serve (g6lint serve-isolation). Admission enforces two
// invariants: the queue depth is bounded (a full queue is explicit
// backpressure, rejected with kQueueFull, never a silent drop), and every
// admitted job is *feasible* — its spec parses and its board request fits
// the currently healthy machine, so the scheduler never carries work that
// can only time out.

#include <cstddef>
#include <string>

#include "serve/types.hpp"

namespace g6::serve {

/// Admission verdict; `reason` and `message` are filled on rejection.
struct AdmissionDecision {
  bool admit = false;
  RejectReason reason = RejectReason::kNone;
  std::string message;

  static AdmissionDecision yes() { return {true, RejectReason::kNone, ""}; }
  static AdmissionDecision no(RejectReason r, std::string msg) {
    return {false, r, std::move(msg)};
  }
};

class AdmissionController {
 public:
  AdmissionController(std::size_t max_queue_depth, std::size_t pool_boards);

  /// Validate `spec` against the current queue depth and healthy board
  /// count. Pure: does not mutate any state.
  AdmissionDecision decide(const JobSpec& spec, std::size_t queued_now,
                           std::size_t healthy_boards, bool draining) const;

  /// Spec-only validation (no capacity checks); used by manifest loading.
  static AdmissionDecision validate_spec(const JobSpec& spec);

  std::size_t max_queue_depth() const { return max_queue_depth_; }

 private:
  std::size_t max_queue_depth_;
  std::size_t pool_boards_;
};

}  // namespace g6::serve
