#pragma once
// serve — multi-tenant serving layer umbrella (docs/SERVING.md).
//
// This header is the CLIENT surface: value types, the service facade and
// the manifest loader. The machinery behind it (JobQueue, Scheduler,
// BoardPartitioner, AdmissionController, JobRuntime) is internal to
// src/serve and fenced off by the g6lint `serve-isolation` rule — include
// this header, talk through ServeClient.

#include "serve/manifest.hpp"
#include "serve/service.hpp"
#include "serve/types.hpp"
