#include "serve/admission.hpp"

#include <sstream>

#include "serve/job.hpp"
#include "util/check.hpp"

namespace g6::serve {

AdmissionController::AdmissionController(std::size_t max_queue_depth,
                                         std::size_t pool_boards)
    : max_queue_depth_(max_queue_depth), pool_boards_(pool_boards) {
  G6_REQUIRE(max_queue_depth_ >= 1);
  G6_REQUIRE(pool_boards_ >= 1);
}

AdmissionDecision AdmissionController::validate_spec(const JobSpec& spec) {
  std::ostringstream os;
  if (spec.name.empty()) {
    return AdmissionDecision::no(RejectReason::kInvalidSpec,
                                 "job name must be non-empty");
  }
  if (!known_model(spec.model)) {
    os << "unknown model '" << spec.model << "'";
    return AdmissionDecision::no(RejectReason::kInvalidSpec, os.str());
  }
  if (spec.n < 2) {
    os << "n=" << spec.n << " (need at least 2 particles)";
    return AdmissionDecision::no(RejectReason::kInvalidSpec, os.str());
  }
  if (!(spec.t_end > 0.0)) {
    os << "t_end=" << spec.t_end << " (must be positive)";
    return AdmissionDecision::no(RejectReason::kInvalidSpec, os.str());
  }
  if (!(spec.eta > 0.0)) {
    os << "eta=" << spec.eta << " (must be positive)";
    return AdmissionDecision::no(RejectReason::kInvalidSpec, os.str());
  }
  if (spec.eps < 0.0) {
    os << "eps=" << spec.eps << " (must be non-negative)";
    return AdmissionDecision::no(RejectReason::kInvalidSpec, os.str());
  }
  if (spec.boards < 1) {
    return AdmissionDecision::no(RejectReason::kInvalidSpec,
                                 "boards must be at least 1");
  }
  if (spec.boards_min > 0 && spec.boards_min > spec.boards) {
    os << "boards_min=" << spec.boards_min << " exceeds boards="
       << spec.boards;
    return AdmissionDecision::no(RejectReason::kInvalidSpec, os.str());
  }
  if (spec.boards_max > 0 && spec.boards_max < spec.boards) {
    os << "boards_max=" << spec.boards_max << " is below boards="
       << spec.boards;
    return AdmissionDecision::no(RejectReason::kInvalidSpec, os.str());
  }
  return AdmissionDecision::yes();
}

AdmissionDecision AdmissionController::decide(const JobSpec& spec,
                                              std::size_t queued_now,
                                              std::size_t healthy_boards,
                                              bool draining) const {
  if (draining) {
    return AdmissionDecision::no(RejectReason::kDraining,
                                 "service is draining; no new jobs accepted");
  }
  AdmissionDecision v = validate_spec(spec);
  if (!v.admit) return v;
  // Feasibility is keyed on the smallest lease the job can run with:
  // an autoscaling job whose boards_min fits a degraded machine is still
  // runnable (the scheduler dispatches it shrunk).
  if (spec.min_boards() > healthy_boards) {
    std::ostringstream os;
    os << "job wants at least " << spec.min_boards()
       << " board(s), machine has " << healthy_boards << " healthy of "
       << pool_boards_;
    return AdmissionDecision::no(RejectReason::kBoardsUnavailable, os.str());
  }
  if (queued_now >= max_queue_depth_) {
    std::ostringstream os;
    os << "queue depth " << queued_now << " at limit " << max_queue_depth_
       << "; retry later";
    return AdmissionDecision::no(RejectReason::kQueueFull, os.str());
  }
  return AdmissionDecision::yes();
}

}  // namespace g6::serve
