#pragma once
// JobRuntime — one admitted job's live simulation between quanta.
//
// INTERNAL to src/serve (g6lint serve-isolation). A runtime owns the
// job's private emulated hardware slice (a GrapeForceEngine sized to its
// lease) and its Hermite integrator, and advances them a bounded number
// of blocksteps per scheduling quantum. Cooperative preemption exists
// only at quantum boundaries, so the integrator state a preempted or
// revoked job carries forward is always a clean blockstep-boundary state.
//
// Determinism: a job's trajectory depends only on its spec (ICs from
// spec.seed, engine from the lease *size*). Quantum segmentation, which
// physical boards back the lease, and which neighbors run alongside never
// enter the force computation, so a job's snapshot is bit-identical to
// the same spec run standalone — the property tests/serve and the
// serve_identity ctest assert.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "grape/engine.hpp"
#include "hermite/integrator.hpp"
#include "nbody/particle.hpp"
#include "serve/types.hpp"

namespace g6::serve {

/// Model names JobSpec::model accepts (the grape6_run set).
bool known_model(const std::string& name);

/// Initial conditions for a job (deterministic in spec.seed).
ParticleSet build_model(const JobSpec& spec);

/// Blockstep-boundary state captured at every quantum end — what a job
/// whose lease was revoked resumes from, bit-identically. Same content as
/// a fault::RunCheckpoint (integrator state + the engine's BFP exponent
/// cache), kept in memory instead of on disk.
struct SavedJob {
  HermiteState state;
  std::vector<BlockExponents> exponents;
};

class JobRuntime {
 public:
  /// Fresh start: ICs from spec.seed, engine with `boards` boards of the
  /// service's chip microarchitecture. Computes the initial forces (the
  /// integrator's startup step).
  JobRuntime(const JobSpec& spec, const MachineConfig& arch,
             std::size_t boards);

  /// Resume after a lease revocation: rebuild the engine (same board
  /// count, possibly different physical boards) and restore the
  /// integrator plus the exponent cache. The continued run is
  /// bit-identical to one that never lost its lease.
  JobRuntime(const JobSpec& spec, const MachineConfig& arch,
             std::size_t boards, const SavedJob& saved, double e0);

  /// Advance up to `max_blocksteps` blocksteps, never past the spec's
  /// t_end (same stopping rule as HermiteIntegrator::evolve). Returns the
  /// number of blocksteps run.
  std::size_t run_quantum(std::size_t max_blocksteps);

  /// True when the job has reached its horizon.
  bool done() const { return integ_->next_block_time() > spec_.t_end; }

  double time() const { return integ_->time(); }
  SavedJob save() const;

  double e0() const { return e0_; }
  const HermiteIntegrator& integrator() const { return *integ_; }
  const GrapeHostStats& grape_stats() const { return engine_->stats(); }
  ParticleSet state_now() const { return integ_->state_at_current_time(); }

 private:
  JobSpec spec_;
  std::unique_ptr<GrapeForceEngine> engine_;
  std::unique_ptr<HermiteIntegrator> integ_;
  double e0_ = 0.0;
};

}  // namespace g6::serve
