#pragma once
// Write-ahead job journal (schema grape6-serve-journal-v1) — the
// durability backbone of the serving layer (docs/RELIABILITY.md,
// "Serving durability").
//
// Every job lifecycle transition is appended as one JSON-lines record
// and fsync'd (util/fileio.hpp AppendLog) *before* the transition takes
// effect, so after a crash — including kill -9 mid-write — the journal
// is a complete prefix of the service history plus at most one torn
// final line. `grape6_serve --recover <journal>` replays that prefix to
// rebuild queue/partition/scheduler state and resume in-flight jobs
// from their latest valid checkpoint (serve/recovery.hpp).
//
// Parsing is strict: every complete line must be a JSON object with
// exactly the keys its record type defines — unknown keys, missing
// keys, or type mismatches throw JournalError rather than guessing.
// Only an unterminated final line (a torn write) is tolerated, because
// the append protocol guarantees nothing else can be damaged.
//
// This header is serve-internal (g6lint `serve-isolation`): clients see
// recovery results only through GrapeService::recover and RecoveryInfo.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "serve/types.hpp"
#include "util/fileio.hpp"

namespace g6::serve {

/// Malformed journal: bad schema, unknown/missing/mistyped keys, broken
/// sequence numbers, or an unreadable file.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr const char* kJournalSchema = "grape6-serve-journal-v1";

/// Every transition the journal records, in lifecycle order.
enum class JournalRecordType : int {
  kOpen = 0,         ///< first record: schema + full service config
  kRecovered = 1,    ///< a --recover replay succeeded; new process generation
  kSubmitted = 2,    ///< submit() called; carries the full JobSpec
  kAdmitted = 3,     ///< admission accepted; job entered the queue
  kRejected = 4,     ///< admission refused; terminal
  kStarted = 5,      ///< lease granted; job dispatched onto boards
  kQuantum = 6,      ///< one quantum folded cleanly; progress counters
  kCheckpointed = 7, ///< job state persisted; carries path + run_tag
  kRequeued = 8,     ///< lease revoked or transient fault; back to queue
  kBoardDeath = 9,   ///< a scheduled board death fired
  kFinished = 10,    ///< job completed; terminal
  kFailed = 11,      ///< job failed (deadline/requeue budget/error); terminal
  kQuarantined = 12, ///< poison job isolated; terminal
  kDrained = 13,     ///< service drained (normal or SIGTERM); clean shutdown
  kLeaseResized = 14, ///< autoscaling grew/shrank a lease between quanta
};

const char* journal_record_type_name(JournalRecordType t);

/// One journal line, decoded. A single fat struct: each type uses the
/// subset of fields its schema defines (see encode_record); the rest
/// stay at their defaults.
struct JournalRecord {
  std::uint64_t seq = 0;  ///< 1-based, strictly consecutive
  JournalRecordType type = JournalRecordType::kOpen;
  std::uint64_t round = 0;  ///< scheduler round clock at append time

  JobId job = 0;        ///< subject job (0 for machine-level records)
  JobSpec spec;         ///< kSubmitted
  ServiceConfig config; ///< kOpen (stop_flag is never serialized)

  std::string reason;   ///< kRejected/kFailed: reject reason name;
                        ///< kRequeued: "revocation"|"retry";
                        ///< kDrained: "drained"|"sigterm";
                        ///< kLeaseResized: "grow"|"shrink"|"fit"
  std::string message;  ///< kRejected/kFailed human-readable detail
  std::string file;     ///< kCheckpointed: checkpoint path;
                        ///< kQuarantined: flight-recorder dump path
  std::string tag;      ///< kCheckpointed: run_tag content key

  std::uint64_t quanta = 0;            ///< kQuantum/kCheckpointed/kFinished
  double t = 0.0;                      ///< simulation time reached
  double e0 = 0.0;                     ///< kFinished
  double e_final = 0.0;                ///< kFinished
  unsigned long long steps = 0;        ///< kQuantum/kFinished
  unsigned long long blocksteps = 0;   ///< kQuantum/kFinished
  int requeues = 0;                    ///< kRequeued
  int failures = 0;                    ///< kRequeued (retry) / kQuarantined
  std::uint64_t hold_until = 0;        ///< kRequeued: backoff release round
  std::size_t board = 0;               ///< kBoardDeath
  std::size_t boards = 0;              ///< kStarted/kLeaseResized: lease size
  std::uint64_t records = 0;           ///< kRecovered: records replayed
};

/// Serialize one record to a single JSON line (no trailing newline).
/// Doubles are printed with 17 significant digits so replay round-trips
/// IEEE binary64 exactly.
std::string encode_record(const JournalRecord& rec);

/// Parse one complete journal line; throws JournalError on any
/// deviation from the schema (strict keys per record type).
JournalRecord decode_record(std::string_view line);

/// Result of reading a journal back.
struct JournalReplay {
  std::vector<JournalRecord> records;  ///< complete, validated records
  bool torn_tail = false;  ///< final line was unterminated and dropped
};

/// Read and validate a whole journal file: record 1 must be kOpen with
/// the expected schema, sequence numbers must be consecutive, and every
/// newline-terminated line must decode. A trailing unterminated
/// fragment — the only damage the append protocol permits — is dropped
/// and flagged. Throws JournalError otherwise.
JournalReplay replay_journal(const std::string& path);

/// Content key for a job's checkpoints: a fingerprint of everything
/// that shapes its dynamics (model, n, w0, t_end, eps, eta, seed,
/// boards — the lease *size*, which fixes the BFP pipeline shape).
/// Stored as the checkpoint run_tag; resume refuses a mismatch.
std::string job_run_tag(const JobSpec& spec);

/// Append-side handle: assigns consecutive sequence numbers and writes
/// each record durably (write + fsync) before returning. One instance
/// per service process generation.
class Journal {
 public:
  /// Open `path`; `truncate` starts a fresh journal (new service),
  /// append mode continues one (recovery, which passes the next unused
  /// sequence number from its replay).
  Journal(const std::string& path, bool truncate,
          std::uint64_t start_seq = 1);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Durably append `rec` (its seq field is overwritten with the next
  /// consecutive sequence number). Throws IoError on write failure.
  void append(JournalRecord rec);

  std::uint64_t next_seq() const { return next_seq_; }
  const std::string& path() const { return log_.path(); }

 private:
  AppendLog log_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace g6::serve
