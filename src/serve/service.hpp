#pragma once
// GrapeService / ServeClient — the public face of the serving layer.
//
// GrapeService owns the whole machine-sharing apparatus (admission,
// queue, partitioner, scheduler) behind a pimpl; nothing in this header
// leaks an internal type, and the g6lint `serve-isolation` rule keeps it
// that way. ServeClient is the handle a tenant holds: submit a JobSpec,
// poll its JobReport, fetch the final particle state. Many clients may
// point at one service; the service itself is single-threaded at the API
// (jobs *run* in parallel on the src/exec pool, but submit/report calls
// are not concurrency-safe against run_until_drained).
//
// Typical use (tools/grape6_serve is the full version):
//
//   serve::GrapeService service(cfg);
//   serve::ServeClient client = service.client();
//   auto r = client.submit(spec);
//   if (!r) { /* explicit backpressure: r.reason, r.message */ }
//   service.run_until_drained();
//   serve::JobReport rep = client.report(r.id);

#include <cstddef>
#include <memory>
#include <vector>

#include "nbody/particle.hpp"
#include "serve/types.hpp"

namespace g6::serve {

class Scheduler;  // internal; defined in serve/scheduler.hpp
class GrapeService;

/// A tenant's handle on a GrapeService. Copyable, non-owning: the
/// service must outlive every client.
class ServeClient {
 public:
  explicit ServeClient(GrapeService& service) : service_(&service) {}

  /// Admission-checked submission. A false result is explicit
  /// backpressure — inspect reason/message and retry later or resize.
  SubmitResult submit(const JobSpec& spec);

  JobReport report(JobId id) const;
  JobState state(JobId id) const;
  /// Final particle state of a completed job; `t` receives its time.
  const ParticleSet& final_state(JobId id, double* t = nullptr) const;

 private:
  GrapeService* service_;
};

/// The multi-tenant serving layer over one emulated GRAPE machine.
class GrapeService {
 public:
  explicit GrapeService(ServiceConfig cfg = {});
  ~GrapeService();
  GrapeService(const GrapeService&) = delete;
  GrapeService& operator=(const GrapeService&) = delete;

  /// Crash recovery: replay the write-ahead journal at `journal_path`
  /// (written by a service whose config enabled durability), rebuild
  /// queue/partition/scheduler state, and resume — in-flight jobs from
  /// their latest valid checkpoint, completed jobs with their results
  /// reconstructed bit-identically. `info`, when non-null, receives the
  /// replay summary. `stop_flag`, when non-null, re-arms graceful drain
  /// (the flag is process state, so it cannot come from the journal).
  /// Throws serve::JournalError (via the internals) on malformed
  /// journals.
  static std::unique_ptr<GrapeService> recover(
      const std::string& journal_path, RecoveryInfo* info = nullptr,
      std::atomic<bool>* stop_flag = nullptr);

  ServeClient client() { return ServeClient(*this); }

  SubmitResult submit(const JobSpec& spec);
  /// Stop accepting submissions; queued/running jobs still finish.
  void drain();
  /// Run scheduler rounds until no job is queued or running.
  void run_until_drained();
  /// Run at most `max_rounds` rounds; returns true while live work
  /// remains. The serving loop a socket server interleaves with I/O:
  /// accept/submit between calls, advance the machine one round at a
  /// time, stream progress after each call (src/wire/server.hpp).
  bool run_rounds(std::size_t max_rounds);

  JobReport report(JobId id) const;
  JobState state(JobId id) const;
  const ParticleSet& final_state(JobId id, double* t = nullptr) const;

  const ServiceStats& stats() const;
  std::vector<JobId> jobs() const;
  const ServiceConfig& config() const;
  std::size_t healthy_boards() const;

 private:
  explicit GrapeService(std::unique_ptr<Scheduler> impl);

  std::unique_ptr<Scheduler> impl_;
};

}  // namespace g6::serve
