#include "serve/partition.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace g6::serve {

BoardPartitioner::BoardPartitioner(std::size_t n_boards)
    : state_(n_boards, BoardState::kFree), owner_(n_boards, 0) {
  G6_REQUIRE_MSG(n_boards >= 1, "a machine needs at least one board");
}

std::size_t BoardPartitioner::healthy() const {
  return static_cast<std::size_t>(
      std::count_if(state_.begin(), state_.end(),
                    [](BoardState s) { return s != BoardState::kDead; }));
}

std::size_t BoardPartitioner::free() const {
  return static_cast<std::size_t>(
      std::count(state_.begin(), state_.end(), BoardState::kFree));
}

std::size_t BoardPartitioner::leased() const {
  return static_cast<std::size_t>(
      std::count(state_.begin(), state_.end(), BoardState::kLeased));
}

std::size_t BoardPartitioner::dead() const {
  return static_cast<std::size_t>(
      std::count(state_.begin(), state_.end(), BoardState::kDead));
}

bool BoardPartitioner::is_dead(std::size_t board) const {
  G6_REQUIRE(board < state_.size());
  return state_[board] == BoardState::kDead;
}

std::optional<BoardLease> BoardPartitioner::acquire(JobId owner,
                                                    std::size_t count) {
  G6_REQUIRE(owner != 0);
  G6_REQUIRE(count >= 1);
  if (free() < count) return std::nullopt;
  BoardLease lease;
  lease.owner = owner;
  for (std::size_t b = 0; b < state_.size() && lease.boards.size() < count;
       ++b) {
    if (state_[b] != BoardState::kFree) continue;
    state_[b] = BoardState::kLeased;
    owner_[b] = owner;
    lease.boards.push_back(b);
  }
  G6_ASSERT(lease.boards.size() == count);
  return lease;
}

void BoardPartitioner::release(const BoardLease& lease) {
  G6_REQUIRE(lease.valid());
  for (std::size_t b : lease.boards) {
    G6_REQUIRE(b < state_.size());
    if (state_[b] == BoardState::kDead) continue;  // died while leased
    G6_REQUIRE_MSG(state_[b] == BoardState::kLeased && owner_[b] == lease.owner,
                   "release of a board the job does not hold");
    state_[b] = BoardState::kFree;
    owner_[b] = 0;
  }
}

JobId BoardPartitioner::mark_dead(std::size_t board) {
  G6_REQUIRE(board < state_.size());
  if (state_[board] == BoardState::kDead) return 0;
  const JobId owner = state_[board] == BoardState::kLeased ? owner_[board] : 0;
  state_[board] = BoardState::kDead;
  owner_[board] = 0;
  return owner;
}

JobId BoardPartitioner::owner_of(std::size_t board) const {
  G6_REQUIRE(board < state_.size());
  return state_[board] == BoardState::kLeased ? owner_[board] : 0;
}

}  // namespace g6::serve
