#pragma once
// BoardPartitioner — carves the emulated machine's processor boards into
// per-job slices, mirroring the paper's 4-way machine partition (Sec 2:
// four clusters of 4 hosts x 4 boards, each cluster time-shared).
//
// INTERNAL to src/serve (g6lint serve-isolation). The partitioner deals
// in board *identities* (flat ids over the whole pool) so a scheduled
// board death maps to exactly one lease; the job engine itself only needs
// the lease *size* — which physical boards back a slice never changes a
// job's forces, only which lease a death revokes.

#include <cstddef>
#include <optional>
#include <vector>

#include "serve/types.hpp"

namespace g6::serve {

/// A slice of the machine granted to one job. Value object: holders give
/// it back to the partitioner via release() (or lose it to revoke_board).
struct BoardLease {
  JobId owner = 0;
  std::vector<std::size_t> boards;  ///< flat board ids, ascending

  bool valid() const { return owner != 0 && !boards.empty(); }
  std::size_t size() const { return boards.size(); }
};

class BoardPartitioner {
 public:
  explicit BoardPartitioner(std::size_t n_boards);

  std::size_t total() const { return state_.size(); }
  std::size_t healthy() const;  ///< alive boards (leased or free)
  std::size_t free() const;     ///< alive and unleased
  std::size_t leased() const;
  std::size_t dead() const;
  bool is_dead(std::size_t board) const;

  /// Grant `count` boards to `owner`: lowest-id healthy free boards, so
  /// allocation is deterministic. nullopt when fewer than `count` are
  /// free.
  std::optional<BoardLease> acquire(JobId owner, std::size_t count);

  /// Return a lease's boards to the free pool. Boards that died while
  /// leased are already gone and are skipped.
  void release(const BoardLease& lease);

  /// Kill one board. Returns the owning job's id when the board was
  /// leased (the caller must revoke that job's lease), 0 otherwise.
  /// Idempotent: killing a dead board returns 0.
  JobId mark_dead(std::size_t board);

  /// Owning job of a board, 0 when free or dead.
  JobId owner_of(std::size_t board) const;

 private:
  enum class BoardState { kFree, kLeased, kDead };
  std::vector<BoardState> state_;
  std::vector<JobId> owner_;  ///< valid where state_ == kLeased
};

}  // namespace g6::serve
