#include "serve/recovery.hpp"

#include <algorithm>
#include <string>

#include "obs/log.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace g6::serve {

namespace {

RejectReason reject_reason_from_name(const std::string& name,
                                     const std::string& where) {
  for (int v = 0; v <= static_cast<int>(RejectReason::kQuarantined); ++v) {
    const auto r = static_cast<RejectReason>(v);
    if (name == reject_reason_name(r)) return r;
  }
  throw JournalError("journal: " + where + ": unknown reject reason '" +
                     name + "'");
}

/// Attach the validated checkpoint at `file` to `job`. `required` is the
/// completed-job case: their snapshots cannot be rebuilt any other way,
/// so an unloadable checkpoint is fatal. For live jobs a lost checkpoint
/// only costs a from-scratch re-run (bit-identical, just slower).
void attach_checkpoint(RestoredJob& job, const std::string& file,
                       bool required) {
  bool used_prev = false;
  fault::RunCheckpoint cp;
  try {
    cp = fault::load_checkpoint_resilient(file, &used_prev);
  } catch (const fault::FaultError& e) {
    if (required) {
      throw JournalError("journal: completed job '" + job.spec.name +
                         "': " + e.what());
    }
    obs::log_warn(
        "serve: job '%s' checkpoint unusable (%s); will re-run from "
        "scratch",
        job.spec.name.c_str(), e.what());
    return;
  }
  const std::string expected = job_run_tag(job.spec);
  if (cp.run_tag != expected) {
    // A tag mismatch is not bit rot (the checksum passed) — the file
    // belongs to a different configuration. Refuse, like RunCheckpoint
    // resume does, rather than silently continuing a different run.
    throw JournalError("journal: job '" + job.spec.name +
                       "': checkpoint run_tag mismatch (file " + file +
                       " has '" + cp.run_tag + "', expected '" + expected +
                       "')");
  }
  if (used_prev) {
    obs::log_warn(
        "serve: job '%s' resumed from previous checkpoint generation "
        "(current was corrupt)",
        job.spec.name.c_str());
  }
  job.checkpoint = std::move(cp);
  job.has_checkpoint = true;
  job.checkpoint_file = file;
}

}  // namespace

RestoredService recover_from_journal(const std::string& journal_path) {
  G6_REQUIRE_MSG(!journal_path.empty(), "empty journal path");
  const JournalReplay replay = replay_journal(journal_path);

  RestoredService out;
  out.info.journal_records = replay.records.size();
  out.info.torn_tail = replay.torn_tail;
  out.next_seq = replay.records.size() + 1;

  // Per-job checkpoint pointers: only the LAST journaled checkpoint per
  // job is a resume candidate (earlier generations were rotated away).
  std::vector<std::string> last_checkpoint;

  auto job_at = [&out, &journal_path](JobId id,
                                      std::uint64_t seq) -> RestoredJob& {
    if (id == 0 || id > out.jobs.size()) {
      throw JournalError("journal: " + journal_path + " record " +
                         std::to_string(seq) + " names unknown job " +
                         std::to_string(id));
    }
    return out.jobs[id - 1];
  };

  for (const JournalRecord& rec : replay.records) {
    out.resume_round = std::max(out.resume_round, rec.round);
    switch (rec.type) {
      case JournalRecordType::kOpen:
        out.cfg = rec.config;
        out.cfg.durability.journal_path = journal_path;
        break;
      case JournalRecordType::kRecovered:
      case JournalRecordType::kDrained:
        break;
      case JournalRecordType::kSubmitted: {
        if (rec.job != out.jobs.size() + 1) {
          throw JournalError("journal: " + journal_path +
                             ": submitted record for job " +
                             std::to_string(rec.job) + " out of order");
        }
        RestoredJob job;
        job.spec = rec.spec;
        job.id = rec.job;
        // A bare `submitted` (crash before the admitted/rejected append)
        // counts as admitted: the client never saw a rejection, and a
        // live job is the only state that guarantees exactly-once
        // terminal delivery.
        job.state = JobState::kQueued;
        job.submit_round = rec.round;
        out.jobs.push_back(std::move(job));
        last_checkpoint.emplace_back();
        break;
      }
      case JournalRecordType::kAdmitted:
        job_at(rec.job, rec.seq);  // validates the id; already live
        break;
      case JournalRecordType::kRejected: {
        RestoredJob& job = job_at(rec.job, rec.seq);
        job.state = JobState::kRejected;
        job.reject = reject_reason_from_name(rec.reason, "rejected record");
        job.message = rec.message;
        break;
      }
      case JournalRecordType::kStarted:
        job_at(rec.job, rec.seq);  // still live; nothing to fold
        break;
      case JournalRecordType::kLeaseResized: {
        // Replay rebuilds the autoscaled lease size exactly: the job's
        // next dispatch re-acquires boards_now boards, so its resumed
        // pipeline has the same shape the crashed process ran with.
        RestoredJob& job = job_at(rec.job, rec.seq);
        job.boards_now = rec.boards;
        ++job.resizes;
        break;
      }
      case JournalRecordType::kQuantum: {
        RestoredJob& job = job_at(rec.job, rec.seq);
        job.quanta = rec.quanta;
        job.t_reached = rec.t;
        job.steps = rec.steps;
        job.blocksteps = rec.blocksteps;
        job.failures = 0;  // a clean quantum resets the consecutive count
        break;
      }
      case JournalRecordType::kCheckpointed:
        job_at(rec.job, rec.seq);
        last_checkpoint[rec.job - 1] = rec.file;
        break;
      case JournalRecordType::kRequeued: {
        RestoredJob& job = job_at(rec.job, rec.seq);
        job.requeues = rec.requeues;
        job.failures = rec.failures;
        job.hold_until_round = rec.hold_until;
        break;
      }
      case JournalRecordType::kBoardDeath:
        out.fired_deaths.push_back({rec.round, rec.board});
        break;
      case JournalRecordType::kFinished: {
        RestoredJob& job = job_at(rec.job, rec.seq);
        job.state = JobState::kCompleted;
        job.quanta = rec.quanta;
        job.t_reached = rec.t;
        job.e0 = rec.e0;
        job.e_final = rec.e_final;
        job.steps = rec.steps;
        job.blocksteps = rec.blocksteps;
        break;
      }
      case JournalRecordType::kFailed: {
        RestoredJob& job = job_at(rec.job, rec.seq);
        job.state = JobState::kFailed;
        job.reject = reject_reason_from_name(rec.reason, "failed record");
        job.message = rec.message;
        break;
      }
      case JournalRecordType::kQuarantined: {
        RestoredJob& job = job_at(rec.job, rec.seq);
        job.state = JobState::kQuarantined;
        job.reject = RejectReason::kQuarantined;
        job.failures = rec.failures;
        job.message = "poison job: " + std::to_string(rec.failures) +
                      " consecutive transient faults (quarantined before "
                      "recovery)";
        break;
      }
    }
  }
  if (out.cfg.durability.journal_path.empty()) {
    throw JournalError("journal: " + journal_path + ": no open record");
  }

  for (RestoredJob& job : out.jobs) {
    const std::string& file = last_checkpoint[job.id - 1];
    if (job.state == JobState::kCompleted) {
      if (file.empty()) {
        throw JournalError("journal: completed job '" + job.spec.name +
                           "' has no checkpointed record");
      }
      attach_checkpoint(job, file, /*required=*/true);
    } else if (job.state == JobState::kQueued && !file.empty()) {
      attach_checkpoint(job, file, /*required=*/false);
    }
    if (job.state == JobState::kQueued) {
      ++out.info.jobs_restored;
      if (job.has_checkpoint) ++out.info.jobs_resumed_from_checkpoint;
    } else {
      ++out.info.jobs_already_terminal;
    }
  }
  out.info.resume_round = out.resume_round;
  return out;
}

}  // namespace g6::serve
