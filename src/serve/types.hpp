#pragma once
// Public value types of the serving layer (docs/SERVING.md).
//
// The real GRAPE-6 was a shared facility: the 2048-chip machine was
// partitioned into four clusters, each time-shared by multiple hosts and
// user jobs (PAPER.md Sec 2, Sec 5). src/serve is the software twin of
// that operation model — many independent N-body jobs multiplexed onto
// one emulated machine. Everything in this header is part of the client
// surface; the moving parts behind it (JobQueue, Scheduler,
// BoardPartitioner) are internal and fenced off by the g6lint
// `serve-isolation` rule.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "grape/config.hpp"
#include "nbody/particle.hpp"
#include "obs/eq10.hpp"

namespace g6::serve {

/// Process-unique job handle; 0 is never a valid id.
using JobId = std::uint64_t;

/// Priority classes, most urgent first. Interactive jobs (a user steering
/// a small-N run) jump ahead of batch production runs; within a class
/// dispatch is FIFO.
enum class Priority : int {
  kInteractive = 0,
  kBatch = 1,
};
inline constexpr std::size_t kPriorityClasses = 2;

const char* priority_name(Priority p);

/// Lifecycle of a job inside the service.
///
///   submit -> kQueued -> kRunning -> kCompleted
///                 ^          |
///                 +----------+   (cooperative preemption at a blockstep
///                                 boundary, or lease revocation after a
///                                 board death)
///
/// kRejected jobs never enter the queue; kFailed jobs exhausted their
/// re-queue budget or hit a non-recoverable error.
enum class JobState : int {
  kQueued = 0,
  kRunning = 1,
  kCompleted = 2,
  kFailed = 3,
  kRejected = 4,
};

const char* job_state_name(JobState s);

/// Why admission said no. Backpressure is explicit: a rejected submit
/// carries the reason and a human-readable message, never a silent drop.
enum class RejectReason : int {
  kNone = 0,
  kQueueFull = 1,         ///< bounded queue depth reached; retry later
  kBoardsUnavailable = 2, ///< job wants more boards than the machine has healthy
  kInvalidSpec = 3,       ///< malformed job parameters
  kDraining = 4,          ///< service no longer accepts new work
};

const char* reject_reason_name(RejectReason r);

/// One simulation job: the same knobs grape6_run exposes, as data.
struct JobSpec {
  std::string name;               ///< unique within a service (report/snapshot key)
  std::string model = "plummer";  ///< plummer|king|uniform|disk|bhbinary|hernquist
  std::size_t n = 256;            ///< particle count
  double w0 = 6.0;                ///< King depth (model=king)
  double t_end = 0.25;            ///< integration span (Heggie units)
  double eps = 1.0 / 64.0;        ///< Plummer softening
  double eta = 0.02;              ///< Aarseth accuracy parameter
  unsigned seed = 1;              ///< IC realization seed
  std::size_t boards = 1;         ///< lease size (emulated processor boards)
  Priority priority = Priority::kBatch;
};

/// Outcome of ServeClient::submit.
struct SubmitResult {
  JobId id = 0;  ///< valid even for rejected jobs (reports stay queryable)
  bool accepted = false;
  RejectReason reason = RejectReason::kNone;
  std::string message;  ///< why, in words (empty when accepted)

  explicit operator bool() const { return accepted; }
};

/// Everything a client learns about one job: state, progress, scheduling
/// and fair-share accounting, and the per-job Eq 10 split.
struct JobReport {
  JobId id = 0;
  std::string name;
  Priority priority = Priority::kBatch;
  JobState state = JobState::kQueued;
  RejectReason reject_reason = RejectReason::kNone;
  std::string message;  ///< failure / rejection detail

  std::size_t n = 0;
  std::size_t boards = 0;   ///< lease size the job runs with
  double t_end = 0.0;
  double t_reached = 0.0;   ///< simulation time the job has advanced to

  unsigned long long steps = 0;       ///< individual particle steps
  unsigned long long blocksteps = 0;
  std::uint64_t quanta = 0;           ///< scheduling quanta executed
  std::uint64_t preemptions = 0;      ///< cooperative lease handoffs
  std::uint64_t revocations = 0;      ///< leases lost to board deaths

  double wait_s = 0.0;            ///< submit -> first quantum (wall)
  double run_s = 0.0;             ///< wall seconds inside quanta
  double grape_virtual_s = 0.0;   ///< fair-share account: virtual GRAPE seconds
  obs::Eq10Accumulator eq10;      ///< per-job T_host + T_comm + T_GRAPE split

  double e0 = 0.0;       ///< initial total energy
  double e_final = 0.0;  ///< final total energy (completed jobs)
  /// |(E - E0)/E0|, 0 until completion.
  double energy_error() const;
};

/// A board death the service must survive: at the start of scheduler
/// round `round`, board `board` goes permanently dead. If the board is
/// leased, the owning job's lease is revoked and the job re-queued; the
/// board never hosts another lease. The schedule usually comes from the
/// board-level hard failures of a fault::FaultPlan (see
/// board_deaths_from_plan), keeping serve's degradation model and the
/// fault subsystem's one and the same.
struct BoardDeath {
  std::uint64_t round = 0;
  std::size_t board = 0;
};

/// Map the board-level hard failures of a fault plan onto serve's round
/// clock: entry times are interpreted as scheduler round numbers (jobs
/// have independent simulation clocks, so the machine-wide schedule needs
/// a machine-wide clock). Chip- and module-level entries are ignored —
/// sub-board faults are the per-job engine's business, not the
/// partitioner's.
std::vector<BoardDeath> board_deaths_from_plan(const fault::FaultPlan& plan);

/// Service-wide configuration.
struct ServiceConfig {
  /// Chip microarchitecture and board pool. The pool the partitioner
  /// carves up is machine.total_boards() (boards_per_host x hosts x
  /// clusters — the paper's 4-way partitioned machine is 4 hosts x 4
  /// boards); each job's engine is built from this config with
  /// boards_per_host set to its lease size.
  MachineConfig machine;
  std::size_t max_queue_depth = 64;      ///< admission bound (queued jobs)
  std::size_t quantum_blocksteps = 16;   ///< cooperative preemption grain
  int max_requeues = 2;  ///< re-queue budget per job after lease revocations
  std::vector<BoardDeath> board_deaths;  ///< scheduled hardware deaths

  std::size_t pool_boards() const { return machine.total_boards(); }
};

/// Aggregate service counters, one struct per run_until_drained call
/// (cumulative across calls on the same service).
struct ServiceStats {
  std::uint64_t rounds = 0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t revocations = 0;
  std::size_t boards_dead = 0;
  double makespan_s = 0.0;        ///< wall time inside run_until_drained
  obs::Eq10Accumulator eq10;      ///< merged over completed jobs
};

}  // namespace g6::serve
