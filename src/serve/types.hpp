#pragma once
// Public value types of the serving layer (docs/SERVING.md).
//
// The real GRAPE-6 was a shared facility: the 2048-chip machine was
// partitioned into four clusters, each time-shared by multiple hosts and
// user jobs (PAPER.md Sec 2, Sec 5). src/serve is the software twin of
// that operation model — many independent N-body jobs multiplexed onto
// one emulated machine. Everything in this header is part of the client
// surface; the moving parts behind it (JobQueue, Scheduler,
// BoardPartitioner) are internal and fenced off by the g6lint
// `serve-isolation` rule.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "grape/config.hpp"
#include "nbody/particle.hpp"
#include "obs/eq10.hpp"

namespace g6::serve {

/// Process-unique job handle; 0 is never a valid id.
using JobId = std::uint64_t;

/// Priority classes, most urgent first. Interactive jobs (a user steering
/// a small-N run) jump ahead of batch production runs; within a class
/// dispatch is FIFO.
enum class Priority : int {
  kInteractive = 0,
  kBatch = 1,
};
inline constexpr std::size_t kPriorityClasses = 2;

const char* priority_name(Priority p);

/// Lifecycle of a job inside the service (full state diagram:
/// docs/SERVING.md, "Job lifecycle").
///
///   submit -> kQueued -> kRunning -> kCompleted
///                 ^          |
///                 +----------+   (cooperative preemption at a blockstep
///                                 boundary, lease revocation after a
///                                 board death, or transient-fault retry
///                                 with virtual-time backoff)
///
/// kRejected jobs never enter the queue; kFailed jobs exhausted their
/// re-queue budget, missed their deadline, or hit a non-recoverable
/// error; kQuarantined jobs failed `max_job_failures` consecutive quanta
/// (poison jobs) and were isolated so they cannot starve the machine.
enum class JobState : int {
  kQueued = 0,
  kRunning = 1,
  kCompleted = 2,
  kFailed = 3,
  kRejected = 4,
  kQuarantined = 5,
};

const char* job_state_name(JobState s);

/// Why admission said no. Backpressure is explicit: a rejected submit
/// carries the reason and a human-readable message, never a silent drop.
enum class RejectReason : int {
  kNone = 0,
  kQueueFull = 1,         ///< bounded queue depth reached; retry later
  kBoardsUnavailable = 2, ///< job wants more boards than the machine has healthy
  kInvalidSpec = 3,       ///< malformed job parameters
  kDraining = 4,          ///< service no longer accepts new work
  kDeadlineExceeded = 5,  ///< job missed its deadline_rounds budget
  kRequeueExhausted = 6,  ///< lease revocations burned the re-queue budget
  kQuarantined = 7,       ///< poison job: max_job_failures transient faults
};

const char* reject_reason_name(RejectReason r);

/// One simulation job: the same knobs grape6_run exposes, as data.
struct JobSpec {
  std::string name;               ///< unique within a service (report/snapshot key)
  std::string model = "plummer";  ///< plummer|king|uniform|disk|bhbinary|hernquist
  std::size_t n = 256;            ///< particle count
  double w0 = 6.0;                ///< King depth (model=king)
  double t_end = 0.25;            ///< integration span (Heggie units)
  double eps = 1.0 / 64.0;        ///< Plummer softening
  double eta = 0.02;              ///< Aarseth accuracy parameter
  unsigned seed = 1;              ///< IC realization seed
  std::size_t boards = 1;         ///< lease size (emulated processor boards)
  Priority priority = Priority::kBatch;

  /// Autoscaling bounds on the lease (0 = same as `boards`, i.e. fixed).
  /// When the range is wider than `boards`, the scheduler may grow the
  /// job's lease toward boards_max on an idle machine and shrink it
  /// toward boards_min under queue pressure, between quanta. Physics is
  /// a function of the lease *size only* and the BFP merge order is
  /// board-count invariant, so a resized job's snapshot stays
  /// byte-identical to a standalone run (the serve_identity check
  /// asserts it). Every resize routes through the integrator
  /// save/restore path and is journaled as a `lease-resized` record.
  std::size_t boards_min = 0;
  std::size_t boards_max = 0;

  std::size_t min_boards() const { return boards_min ? boards_min : boards; }
  std::size_t max_boards() const { return boards_max ? boards_max : boards; }
  bool autoscales() const { return min_boards() < boards || max_boards() > boards; }

  /// Deadline in scheduler rounds (the service's logical clock — wall
  /// time would break replay determinism). 0 = no deadline. A job still
  /// live when the round counter passes submit_round + deadline_rounds
  /// fails with kDeadlineExceeded at the next round boundary.
  std::uint64_t deadline_rounds = 0;

  /// Fault-injection hook for poison-job testing: the job's first
  /// `chaos_fail_quanta` quanta throw a TransientFault instead of
  /// integrating. Deterministic (counted per job, survives runtime
  /// rebuilds) so quarantine tests replay identically. 0 = healthy job.
  int chaos_fail_quanta = 0;
};

/// Outcome of ServeClient::submit.
struct SubmitResult {
  JobId id = 0;  ///< valid even for rejected jobs (reports stay queryable)
  bool accepted = false;
  RejectReason reason = RejectReason::kNone;
  std::string message;  ///< why, in words (empty when accepted)

  explicit operator bool() const { return accepted; }
};

/// Everything a client learns about one job: state, progress, scheduling
/// and fair-share accounting, and the per-job Eq 10 split.
struct JobReport {
  JobId id = 0;
  std::string name;
  Priority priority = Priority::kBatch;
  JobState state = JobState::kQueued;
  RejectReason reject_reason = RejectReason::kNone;
  std::string message;  ///< failure / rejection detail

  std::size_t n = 0;
  std::size_t boards = 0;      ///< requested lease size (JobSpec::boards)
  std::size_t boards_now = 0;  ///< current lease size after autoscaling
  std::uint64_t resizes = 0;   ///< lease grow/shrink events applied
  double t_end = 0.0;
  double t_reached = 0.0;   ///< simulation time the job has advanced to

  unsigned long long steps = 0;       ///< individual particle steps
  unsigned long long blocksteps = 0;
  std::uint64_t quanta = 0;           ///< scheduling quanta executed
  std::uint64_t preemptions = 0;      ///< cooperative lease handoffs
  std::uint64_t revocations = 0;      ///< leases lost to board deaths
  int requeues = 0;                   ///< re-queues consumed (of max_requeues)
  int failures = 0;                   ///< transient faults (of max_job_failures)

  double wait_s = 0.0;            ///< submit -> first quantum (wall)
  double run_s = 0.0;             ///< wall seconds inside quanta
  double grape_virtual_s = 0.0;   ///< fair-share account: virtual GRAPE seconds
  obs::Eq10Accumulator eq10;      ///< per-job T_host + T_comm + T_GRAPE split

  double e0 = 0.0;       ///< initial total energy
  double e_final = 0.0;  ///< final total energy (completed jobs)
  /// |(E - E0)/E0|, 0 until completion.
  double energy_error() const;
};

/// A board death the service must survive: at the start of scheduler
/// round `round`, board `board` goes permanently dead. If the board is
/// leased, the owning job's lease is revoked and the job re-queued; the
/// board never hosts another lease. The schedule usually comes from the
/// board-level hard failures of a fault::FaultPlan (see
/// board_deaths_from_plan), keeping serve's degradation model and the
/// fault subsystem's one and the same.
struct BoardDeath {
  std::uint64_t round = 0;
  std::size_t board = 0;
};

/// Map the board-level hard failures of a fault plan onto serve's round
/// clock: entry times are interpreted as scheduler round numbers (jobs
/// have independent simulation clocks, so the machine-wide schedule needs
/// a machine-wide clock). Chip- and module-level entries are ignored —
/// sub-board faults are the per-job engine's business, not the
/// partitioner's.
std::vector<BoardDeath> board_deaths_from_plan(const fault::FaultPlan& plan);

/// Durability knobs: where the write-ahead journal and per-job
/// checkpoints live. Both empty = volatile service (exactly the pre-
/// durability behavior, zero overhead). See docs/RELIABILITY.md,
/// "Serving durability".
struct DurabilityConfig {
  std::string journal_path;    ///< write-ahead journal ("" = no journal)
  std::string checkpoint_dir;  ///< per-job checkpoint files ("" = none)
  /// Checkpoint cadence in quanta: every k-th completed quantum of a job
  /// persists its state (plus always at finish). 0 disables periodic
  /// checkpoints — recovery then replays affected jobs from scratch,
  /// which is slower but still bit-identical.
  std::uint64_t checkpoint_every_quanta = 1;

  bool enabled() const { return !journal_path.empty(); }
};

/// Service-wide configuration.
struct ServiceConfig {
  /// Chip microarchitecture and board pool. The pool the partitioner
  /// carves up is machine.total_boards() (boards_per_host x hosts x
  /// clusters — the paper's 4-way partitioned machine is 4 hosts x 4
  /// boards); each job's engine is built from this config with
  /// boards_per_host set to its lease size.
  MachineConfig machine;
  std::size_t max_queue_depth = 64;      ///< admission bound (queued jobs)
  std::size_t quantum_blocksteps = 16;   ///< cooperative preemption grain
  int max_requeues = 2;  ///< re-queue budget per job after lease revocations
  std::vector<BoardDeath> board_deaths;  ///< scheduled hardware deaths

  /// Poison-job quarantine threshold: consecutive transient-fault quanta
  /// before the job is quarantined instead of retried.
  int max_job_failures = 3;
  /// First retry backoff in rounds; doubles per consecutive failure
  /// (virtual-time exponential backoff: 1, 2, 4, ... rounds held).
  std::uint64_t backoff_base_rounds = 1;

  DurabilityConfig durability;

  /// Graceful-drain flag (SIGTERM): when non-null and set, the scheduler
  /// finishes the current round, checkpoints every live job, journals a
  /// drain record, and returns early from run_until_drained.
  std::atomic<bool>* stop_flag = nullptr;

  std::size_t pool_boards() const { return machine.total_boards(); }
};

/// Aggregate service counters, one struct per run_until_drained call
/// (cumulative across calls on the same service).
struct ServiceStats {
  std::uint64_t rounds = 0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t revocations = 0;
  std::uint64_t requeues = 0;
  std::uint64_t resizes = 0;   ///< autoscaling lease grow/shrink events
  std::size_t boards_dead = 0;
  double makespan_s = 0.0;        ///< wall time inside run_until_drained
  obs::Eq10Accumulator eq10;      ///< merged over completed jobs
};

/// What a --recover replay reconstructed (client-visible summary; the
/// heavy lifting is in serve/recovery.hpp, internal).
struct RecoveryInfo {
  std::uint64_t journal_records = 0;   ///< complete records replayed
  bool torn_tail = false;              ///< final line was a torn write
  std::uint64_t jobs_restored = 0;     ///< live jobs re-entering the queue
  std::uint64_t jobs_resumed_from_checkpoint = 0;  ///< of those, mid-flight
  std::uint64_t jobs_already_terminal = 0;  ///< completed/failed before crash
  std::uint64_t resume_round = 0;      ///< round clock after replay
};

}  // namespace g6::serve
