#include "serve/job_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace g6::serve {

namespace {
std::size_t class_index(Priority p) {
  const auto k = static_cast<std::size_t>(p);
  G6_REQUIRE_MSG(k < kPriorityClasses, "unknown priority class");
  return k;
}
}  // namespace

void JobQueue::push_back(JobId id, Priority p) {
  G6_REQUIRE(id != 0);
  classes_[class_index(p)].push_back(id);
}

void JobQueue::push_front(JobId id, Priority p) {
  G6_REQUIRE(id != 0);
  classes_[class_index(p)].push_front(id);
}

bool JobQueue::remove(JobId id) {
  for (auto& q : classes_) {
    auto it = std::find(q.begin(), q.end(), id);
    if (it != q.end()) {
      q.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<JobId> JobQueue::dispatch_order() const {
  std::vector<JobId> out;
  out.reserve(size());
  for (const auto& q : classes_) out.insert(out.end(), q.begin(), q.end());
  return out;
}

std::size_t JobQueue::size() const {
  std::size_t n = 0;
  for (const auto& q : classes_) n += q.size();
  return n;
}

std::size_t JobQueue::class_depth(Priority p) const {
  return classes_[class_index(p)].size();
}

}  // namespace g6::serve
