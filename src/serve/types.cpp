#include "serve/types.hpp"

#include <cmath>

#include "util/check.hpp"

namespace g6::serve {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
  }
  return "?";
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
    case JobState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kBoardsUnavailable:
      return "boards-unavailable";
    case RejectReason::kInvalidSpec:
      return "invalid-spec";
    case RejectReason::kDraining:
      return "draining";
    case RejectReason::kDeadlineExceeded:
      return "deadline-exceeded";
    case RejectReason::kRequeueExhausted:
      return "requeue-exhausted";
    case RejectReason::kQuarantined:
      return "quarantined";
  }
  return "?";
}

double JobReport::energy_error() const {
  if (state != JobState::kCompleted || e0 == 0.0) return 0.0;
  return std::abs((e_final - e0) / e0);
}

std::vector<BoardDeath> board_deaths_from_plan(const fault::FaultPlan& plan) {
  std::vector<BoardDeath> deaths;
  for (const fault::HardFailure& hf : plan.hard_failures) {
    if (hf.module != -1 || hf.chip != -1) continue;  // sub-board: engine-level
    G6_REQUIRE_MSG(hf.time >= 0.0 && hf.board >= 0,
                   "board death schedule entries must be non-negative");
    deaths.push_back({static_cast<std::uint64_t>(hf.time),
                      static_cast<std::size_t>(hf.board)});
  }
  return deaths;
}

}  // namespace g6::serve
