#include "serve/job.hpp"

#include "nbody/diagnostics.hpp"
#include "nbody/king.hpp"
#include "nbody/models.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace g6::serve {

bool known_model(const std::string& name) {
  return name == "plummer" || name == "king" || name == "uniform" ||
         name == "disk" || name == "bhbinary" || name == "hernquist";
}

ParticleSet build_model(const JobSpec& spec) {
  G6_REQUIRE_MSG(known_model(spec.model), "unknown job model");
  Rng rng(spec.seed);
  if (spec.model == "plummer") return make_plummer(spec.n, rng);
  if (spec.model == "king") return make_king(spec.n, spec.w0, rng);
  if (spec.model == "uniform") return make_uniform_sphere(spec.n, rng);
  if (spec.model == "disk") return make_planetesimal_disk(spec.n, rng);
  if (spec.model == "bhbinary") return make_plummer_with_bh_binary(spec.n, rng);
  return make_hernquist(spec.n, rng);
}

namespace {

MachineConfig slice_config(const MachineConfig& arch, std::size_t boards) {
  // A job's engine is one host driving its lease: the chip
  // microarchitecture of the shared machine, boards_per_host = lease size.
  MachineConfig mc = arch;
  mc.boards_per_host = boards;
  return mc;
}

HermiteConfig hermite_config(const JobSpec& spec) {
  HermiteConfig cfg;
  cfg.eta = spec.eta;
  return cfg;
}

}  // namespace

JobRuntime::JobRuntime(const JobSpec& spec, const MachineConfig& arch,
                       std::size_t boards)
    : spec_(spec) {
  G6_REQUIRE(boards >= 1);
  engine_ = std::make_unique<GrapeForceEngine>(slice_config(arch, boards),
                                               NumberFormats{}, spec_.eps);
  const ParticleSet initial = build_model(spec_);
  e0_ = compute_energy(initial.bodies(), spec_.eps).total();
  integ_ = std::make_unique<HermiteIntegrator>(initial, *engine_,
                                               hermite_config(spec_));
}

JobRuntime::JobRuntime(const JobSpec& spec, const MachineConfig& arch,
                       std::size_t boards, const SavedJob& saved, double e0)
    : spec_(spec), e0_(e0) {
  G6_REQUIRE(boards >= 1);
  engine_ = std::make_unique<GrapeForceEngine>(slice_config(arch, boards),
                                               NumberFormats{}, spec_.eps);
  integ_ = std::make_unique<HermiteIntegrator>(saved.state, *engine_,
                                               hermite_config(spec_));
  // The exponent cache must come back AFTER construction: load_particles
  // inside the restore constructor resets it (same rule as --resume).
  engine_->exponents() = saved.exponents;
}

std::size_t JobRuntime::run_quantum(std::size_t max_blocksteps) {
  std::size_t ran = 0;
  while (ran < max_blocksteps && integ_->next_block_time() <= spec_.t_end) {
    integ_->step();
    ++ran;
  }
  return ran;
}

SavedJob JobRuntime::save() const {
  SavedJob s;
  s.state = integ_->save_state();
  s.exponents = engine_->exponents();
  return s;
}

}  // namespace g6::serve
