#pragma once
// Crash recovery: replay a write-ahead journal (serve/journal.hpp) into
// a RestoredService the Scheduler's restore constructor can consume.
//
// INTERNAL to src/serve (g6lint serve-isolation): the public entry point
// is GrapeService::recover.
//
// The replay is a pure fold over the journal records: each job's final
// restored state is a function of its record subsequence, so the same
// journal always rebuilds the same service (the recovery leg of the
// determinism mandate). Live jobs re-enter the queue in submission
// order with their policy counters (requeues, failures, backoff hold,
// deadline epoch) intact; jobs with a journaled checkpoint resume from
// it — validated (checksum trailer + run_tag) via
// load_checkpoint_resilient, falling back to the previous generation or,
// for live jobs, to a from-scratch re-run, which is slower but still
// bit-identical. Completed jobs are reconstructed from their final
// checkpoint so their snapshots can be re-written byte-identically.

#include <string>

#include "serve/scheduler.hpp"

namespace g6::serve {

/// Replay `journal_path` and rebuild the service state it describes.
/// Throws JournalError on malformed journals (strict-key parsing; only
/// a torn final line is tolerated) and when a completed job's
/// checkpoint cannot be validated.
RestoredService recover_from_journal(const std::string& journal_path);

}  // namespace g6::serve
