#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/thread_pool.hpp"
#include "util/errors.hpp"
#include "nbody/diagnostics.hpp"
#include "obs/clock.hpp"
#include "obs/context.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/sampler.hpp"
#include "util/check.hpp"

namespace g6::serve {

namespace {

obs::MetricsRegistry& reg() { return obs::MetricsRegistry::global(); }

obs::FlightRecorder& flight() { return obs::FlightRecorder::global(); }

/// Register the serving instruments the time-series sampler tracks.
/// Idempotent, so every Scheduler (serve_throughput builds several per
/// process) converges on the same instrument set.
void track_sampler_instruments() {
  obs::MetricsSampler& s = obs::MetricsSampler::global();
  s.track_gauge("serve.queue.depth");
  s.track_gauge("serve.lease.utilization");
  s.track_gauge("serve.boards.healthy");
  s.track_gauge("serve.boards.free");
  s.track_gauge("serve.boards.dead");
  s.track_gauge("fault.healthy_chips");
  s.track_counter("serve.jobs.completed");
  s.track_counter("serve.quanta");
  s.track_counter("serve.preemptions");
  s.track_counter("serve.revocations");
  s.track_counter("serve.requeues");
  s.track_counter("serve.lease.resizes");
  s.track_counter("serve.board_deaths");
  s.track_counter("serve.journal.records");
  s.track_counter("serve.checkpoint.writes");
}

}  // namespace

Scheduler::Scheduler(ServiceConfig cfg, bool open_journal)
    : cfg_(std::move(cfg)),
      admission_(cfg_.max_queue_depth, cfg_.pool_boards()),
      partition_(cfg_.pool_boards()),
      pending_deaths_(cfg_.board_deaths) {
  G6_REQUIRE_MSG(cfg_.quantum_blocksteps >= 1,
                 "quantum must be at least one blockstep");
  for (const BoardDeath& d : pending_deaths_) {
    G6_REQUIRE_MSG(d.board < cfg_.pool_boards(),
                   "board death schedule names a board outside the machine");
  }
  std::stable_sort(pending_deaths_.begin(), pending_deaths_.end(),
                   [](const BoardDeath& a, const BoardDeath& b) {
                     return a.round < b.round;
                   });
  if (cfg_.durability.enabled()) {
    // Completed jobs are reconstructed from their final checkpoint at
    // recovery; a journal without a checkpoint store could not honor
    // exactly-once terminal states for them.
    G6_REQUIRE_MSG(!cfg_.durability.checkpoint_dir.empty(),
                   "durable serving needs a checkpoint_dir alongside the "
                   "journal");
  }
  track_sampler_instruments();
  if (open_journal && cfg_.durability.enabled()) {
    MutexLock lk(serial_m_);
    journal_ = std::make_unique<Journal>(cfg_.durability.journal_path,
                                         /*truncate=*/true);
    JournalRecord jr;
    jr.type = JournalRecordType::kOpen;
    jr.config = cfg_;
    journal_append(std::move(jr));
  }
}

Scheduler::Scheduler(ServiceConfig cfg) : Scheduler(std::move(cfg), true) {}

Scheduler::Scheduler(RestoredService restored)
    : Scheduler(std::move(restored.cfg), false) {
  G6_PHASE("serve.recover");
  MutexLock lk(serial_m_);
  G6_REQUIRE_MSG(cfg_.durability.enabled(),
                 "restore needs the journal path in the recovered config");

  // Dead hardware first: boards that died before the crash stay dead,
  // and the scheduled deaths that already fired must not fire again.
  for (const BoardDeath& fired : restored.fired_deaths) {
    partition_.mark_dead(fired.board);
    for (auto it = pending_deaths_.begin(); it != pending_deaths_.end();
         ++it) {
      if (it->board == fired.board && it->round <= fired.round) {
        pending_deaths_.erase(it);
        break;
      }
    }
  }
  stats_.boards_dead = partition_.dead();
  round_index_ = restored.resume_round;
  stats_.rounds = restored.resume_round;

  for (RestoredJob& j : restored.jobs) {
    G6_REQUIRE_MSG(j.id == records_.size() + 1,
                   "restored jobs must arrive in dense id order");
    auto r = std::make_unique<Record>();
    r->spec = j.spec;
    r->id = j.id;
    r->state = j.state;
    r->reject = j.reject;
    r->message = j.message;
    r->requeues = j.requeues;
    r->failures = j.failures;
    r->hold_until_round = j.hold_until_round;
    r->submit_round = j.submit_round;
    r->quanta = j.quanta;
    r->t_reached = j.t_reached;
    r->steps = j.steps;
    r->blocksteps = j.blocksteps;
    r->e0 = j.e0;
    r->e_final = j.e_final;
    r->checkpoint_file = j.checkpoint_file;
    // Replayed lease-resized records restore the autoscaled lease size
    // exactly; the next dispatch acquires that many boards again.
    r->boards_target = j.boards_now != 0 ? j.boards_now : j.spec.boards;
    r->resizes = j.resizes;
    stats_.resizes += j.resizes;
    r->submit_wall_s = obs::monotonic_seconds();
    ++stats_.submitted;

    if (j.state != JobState::kRejected) {
      r->scope = &obs::ScopeRegistry::global().get_or_create(
          "job:" + j.spec.name, r->id, priority_name(j.spec.priority));
    }
    switch (j.state) {
      case JobState::kQueued: {
        if (j.has_checkpoint) {
          r->saved.state = j.checkpoint.state;
          r->saved.exponents = j.checkpoint.exponents;
          r->has_saved = true;
          r->e0 = j.checkpoint.e0;
          r->t_reached = j.checkpoint.state.time;
        }
        queue_.push_back(j.id, j.spec.priority);
        break;
      }
      case JobState::kCompleted: {
        // The final checkpoint is written (durably) before the finished
        // record, so a journaled completion always has one. Rebuilding
        // the runtime from it and interpolating to the current time is
        // the same computation finish_job ran, on the same bits.
        G6_REQUIRE_MSG(j.has_checkpoint,
                       "completed job '" + j.spec.name +
                           "' has no checkpoint to rebuild its result from");
        const obs::ScopedMetricScope attribution(r->scope);
        SavedJob saved;
        saved.state = j.checkpoint.state;
        saved.exponents = j.checkpoint.exponents;
        JobRuntime runtime(j.spec, cfg_.machine, j.spec.boards, saved,
                           j.checkpoint.e0);
        r->result = runtime.state_now();
        r->result_time = runtime.time();
        ++stats_.completed;
        break;
      }
      case JobState::kFailed:
        ++stats_.failed;
        break;
      case JobState::kQuarantined:
        ++stats_.quarantined;
        break;
      case JobState::kRejected:
        ++stats_.rejected;
        break;
      case JobState::kRunning:
        G6_REQUIRE_MSG(false, "restored jobs are queued, never running");
        break;
    }
    records_.push_back(std::move(r));
  }

  journal_ = std::make_unique<Journal>(cfg_.durability.journal_path,
                                       /*truncate=*/false, restored.next_seq);
  JournalRecord jr;
  jr.type = JournalRecordType::kRecovered;
  jr.records = restored.info.journal_records;
  journal_append(std::move(jr));

  reg().counter("serve.recovery.runs").add();
  reg().counter("serve.recovery.records").add(restored.info.journal_records);
  reg().counter("serve.recovery.jobs_restored")
      .add(restored.info.jobs_restored);
  reg()
      .counter("serve.recovery.resumed_from_checkpoint")
      .add(restored.info.jobs_resumed_from_checkpoint);
  update_round_gauges();
  obs::log_info(
      "serve: recovered from %s: %llu records, %llu live job(s) restored "
      "(%llu from checkpoints), %llu already terminal, resuming at round "
      "%llu",
      cfg_.durability.journal_path.c_str(),
      static_cast<unsigned long long>(restored.info.journal_records),
      static_cast<unsigned long long>(restored.info.jobs_restored),
      static_cast<unsigned long long>(
          restored.info.jobs_resumed_from_checkpoint),
      static_cast<unsigned long long>(restored.info.jobs_already_terminal),
      static_cast<unsigned long long>(round_index_));
}

Scheduler::~Scheduler() = default;

Scheduler::Record& Scheduler::rec(JobId id) {
  G6_REQUIRE(id >= 1 && id <= records_.size());
  return *records_[id - 1];
}

const Scheduler::Record& Scheduler::rec(JobId id) const {
  G6_REQUIRE(id >= 1 && id <= records_.size());
  return *records_[id - 1];
}

SubmitResult Scheduler::submit(const JobSpec& spec) {
  MutexLock lk(serial_m_);
  ++stats_.submitted;
  reg().counter("serve.jobs.submitted").add();

  auto r = std::make_unique<Record>();
  r->spec = spec;
  r->id = static_cast<JobId>(records_.size() + 1);
  r->boards_target = spec.boards;
  r->submit_wall_s = obs::monotonic_seconds();
  r->submit_round = round_index_;

  {
    // Write-ahead: the submission (with its full spec) is durable before
    // the decision — recovery treats a bare `submitted` record (crash
    // between the two appends) as admitted, so the job still reaches a
    // terminal state exactly once.
    JournalRecord jr;
    jr.type = JournalRecordType::kSubmitted;
    jr.job = r->id;
    jr.spec = spec;
    journal_append(std::move(jr));
  }

  AdmissionDecision d = AdmissionDecision::yes();
  for (const auto& other : records_) {
    if (other->spec.name == spec.name) {
      d = AdmissionDecision::no(RejectReason::kInvalidSpec,
                                "duplicate job name '" + spec.name + "'");
      break;
    }
  }
  if (d.admit) {
    d = admission_.decide(spec, queue_.size(), partition_.healthy(),
                          draining_);
  }

  SubmitResult result;
  result.id = r->id;
  if (d.admit) {
    r->state = JobState::kQueued;
    // One attribution scope per admitted job: every counter incremented
    // while this job's work runs — on any thread — lands in its ledger.
    r->scope = &obs::ScopeRegistry::global().get_or_create(
        "job:" + spec.name, r->id, priority_name(spec.priority));
    queue_.push_back(r->id, spec.priority);
    result.accepted = true;
    JournalRecord jr;
    jr.type = JournalRecordType::kAdmitted;
    jr.job = r->id;
    journal_append(std::move(jr));
    obs::log_debug("serve: job %llu '%s' queued (%s, %zu board(s))",
                   static_cast<unsigned long long>(r->id), spec.name.c_str(),
                   priority_name(spec.priority), spec.boards);
  } else {
    r->state = JobState::kRejected;
    r->reject = d.reason;
    r->message = d.message;
    result.accepted = false;
    result.reason = d.reason;
    result.message = d.message;
    ++stats_.rejected;
    reg().counter("serve.jobs.rejected").add();
    JournalRecord jr;
    jr.type = JournalRecordType::kRejected;
    jr.job = r->id;
    jr.reason = reject_reason_name(d.reason);
    jr.message = d.message;
    journal_append(std::move(jr));
    obs::log_warn("serve: job '%s' rejected (%s): %s", spec.name.c_str(),
                  reject_reason_name(d.reason), d.message.c_str());
  }
  records_.push_back(std::move(r));
  update_round_gauges();
  return result;
}

bool Scheduler::has_live_work() const {
  for (const auto& r : records_) {
    if (r->state == JobState::kQueued || r->state == JobState::kRunning) {
      return true;
    }
  }
  return false;
}

void Scheduler::run_until_drained() {
  MutexLock lk(serial_m_);
  const double start = obs::monotonic_seconds();
  bool stopped = false;
  while (has_live_work()) {
    if (cfg_.stop_flag != nullptr &&
        cfg_.stop_flag->load(std::memory_order_relaxed)) {
      graceful_stop();
      stopped = true;
      break;
    }
    round();
  }
  if (!stopped) {
    JournalRecord jr;
    jr.type = JournalRecordType::kDrained;
    jr.reason = "drained";
    journal_append(std::move(jr));
  }
  stats_.makespan_s += obs::monotonic_seconds() - start;
  stats_.boards_dead = partition_.dead();
}

bool Scheduler::run_rounds(std::uint64_t max_rounds) {
  MutexLock lk(serial_m_);
  for (std::uint64_t i = 0; i < max_rounds && has_live_work(); ++i) round();
  return has_live_work();
}

void Scheduler::round() {
  G6_PHASE("serve.round");
  ++stats_.rounds;
  reg().counter("serve.rounds").add();

  enforce_deadlines();
  apply_board_deaths();
  const JobId blocked = dispatch();

  std::vector<JobId> running;
  for (const auto& r : records_) {
    if (r->state == JobState::kRunning) running.push_back(r->id);
  }

  run_quanta(running);
  // Fold serially in job-id order so every counter, stat and state
  // transition is independent of which pool thread finished first.
  for (JobId id : running) fold_quantum(rec(id));

  if (blocked != 0 && rec(blocked).state == JobState::kQueued) {
    // Queue pressure, escalating: first shrink running autoscalable jobs
    // toward boards_min (they keep running, smaller), then preempt.
    shrink_for(blocked);
    preempt_for(blocked);
  }
  // Idle headroom flows back: with nothing queued, autoscalable jobs
  // grow toward boards_max between quanta.
  grow_leases();

  update_round_gauges();
  // One time-series row per round: a LOGICAL tick, so two identical runs
  // export the same number of rows (the round count is deterministic).
  obs::MetricsSampler::global().sample();
  ++round_index_;
}

void Scheduler::enforce_deadlines() {
  for (const auto& rp : records_) {
    Record& r = *rp;
    if (r.spec.deadline_rounds == 0) continue;
    if (r.state != JobState::kQueued && r.state != JobState::kRunning) {
      continue;
    }
    if (round_index_ < r.submit_round + r.spec.deadline_rounds) continue;
    // Deadlines are measured on the round clock (logical time): the same
    // journal replays to the same verdict, wall time never enters.
    if (r.state == JobState::kQueued) {
      queue_.remove(r.id);
    } else {
      release_lease(r);
      r.runtime.reset();
    }
    fail_job(r, RejectReason::kDeadlineExceeded,
             "deadline of " + std::to_string(r.spec.deadline_rounds) +
                 " round(s) exceeded (submitted at round " +
                 std::to_string(r.submit_round) + ", now round " +
                 std::to_string(round_index_) + ")");
  }
}

void Scheduler::apply_board_deaths() {
  while (!pending_deaths_.empty() &&
         pending_deaths_.front().round <= round_index_) {
    const BoardDeath death = pending_deaths_.front();
    pending_deaths_.erase(pending_deaths_.begin());
    JournalRecord jr;
    jr.type = JournalRecordType::kBoardDeath;
    jr.board = death.board;
    journal_append(std::move(jr));
    const JobId victim = partition_.mark_dead(death.board);
    stats_.boards_dead = partition_.dead();
    reg().counter("serve.board_deaths").add();
    obs::log_warn("serve: board %zu died at round %llu (%zu healthy left)",
                  death.board,
                  static_cast<unsigned long long>(round_index_),
                  partition_.healthy());
    flight().record(obs::FlightEventType::kBoardDeath, victim,
                    static_cast<std::int64_t>(death.board),
                    static_cast<std::int64_t>(round_index_));
    if (victim != 0) {
      revoke_lease(rec(victim),
                   "board " + std::to_string(death.board) + " died");
    }
  }
}

JobId Scheduler::dispatch() {
  JobId first_blocked = 0;
  for (JobId id : queue_.dispatch_order()) {
    Record& r = rec(id);
    // Retry backoff: the job sits out its hold window (it neither runs
    // nor drives preemption) and re-enters dispatch when it expires.
    if (r.hold_until_round > round_index_) continue;
    if (r.spec.min_boards() > partition_.healthy()) {
      // The machine shrank below even the smallest lease this job can
      // run with; it can never run.
      queue_.remove(id);
      fail_job(r, RejectReason::kBoardsUnavailable,
               "machine degraded below the job's board request (" +
                   std::to_string(r.spec.min_boards()) + " wanted, " +
                   std::to_string(partition_.healthy()) + " healthy)");
      continue;
    }
    // Ask for the job's current target lease, clamped to what the
    // machine still has healthy (a fixed-size job's target IS
    // spec.boards, so this is the pre-autoscaling behavior for it).
    const std::size_t desired =
        std::max(r.spec.min_boards(),
                 std::min(r.boards_target, partition_.healthy()));
    auto lease = partition_.acquire(id, desired);
    if (!lease && r.spec.autoscales() &&
        partition_.free() >= r.spec.min_boards()) {
      // Shrink-to-fit: an autoscalable job takes whatever is free (at
      // least boards_min) rather than wait for its full target.
      lease = partition_.acquire(
          id, std::max(r.spec.min_boards(),
                       std::min(desired, partition_.free())));
    }
    if (!lease) {
      // Blocked on busy boards. Remember the first (it drives
      // preemption); smaller jobs behind it may still backfill.
      if (first_blocked == 0) first_blocked = id;
      continue;
    }
    queue_.remove(id);
    r.lease = std::move(*lease);
    r.state = JobState::kRunning;
    if (r.lease.size() != r.boards_target) {
      // The grant differs from the size the job last ran at: this is a
      // resize. A warm (preempted) runtime was shaped for the old lease
      // — its BFP exponent cache is per-board — so it is dropped and
      // start_runtime rebuilds from the saved quantum-boundary state.
      r.runtime.reset();
      record_resize(r, "fit");
    }
    start_runtime(r);
    JournalRecord jr;
    jr.type = JournalRecordType::kStarted;
    jr.job = id;
    jr.boards = r.lease.size();
    journal_append(std::move(jr));
    if (r.first_run_wall_s < 0.0) {
      r.first_run_wall_s = obs::monotonic_seconds();
      reg()
          .histogram("serve.wait_s", 0.0, 60.0, 60)
          .observe(r.first_run_wall_s - r.submit_wall_s);
    }
    obs::log_debug("serve: job %llu leased %zu board(s), t=%g",
                   static_cast<unsigned long long>(id), r.lease.size(),
                   r.runtime->time());
  }
  return first_blocked;
}

void Scheduler::start_runtime(Record& r) {
  if (r.runtime) return;  // preempted: runtime survived, boards changed
  // The runtime constructor computes the job's startup forces on this
  // (control) thread; attribute them — and whatever it forks onto the
  // pool — to the job, or per-scope pipeline counters would not sum to
  // the process totals.
  const obs::ScopedMetricScope attribution(r.scope);
  if (r.has_saved) {
    r.runtime = std::make_unique<JobRuntime>(r.spec, cfg_.machine,
                                             r.lease.size(), r.saved, r.e0);
  } else {
    r.runtime =
        std::make_unique<JobRuntime>(r.spec, cfg_.machine, r.lease.size());
    r.e0 = r.runtime->e0();
  }
}

void Scheduler::run_quanta(const std::vector<JobId>& running) {
  if (running.empty()) return;
  const std::size_t quantum = cfg_.quantum_blocksteps;
  const auto round = static_cast<std::int64_t>(round_index_);
  exec::TaskGroup group;
  for (JobId id : running) {
    Record* r = &rec(id);
    // Poison-job injection, decided serially: while the job's consecutive
    // failure count is below its chaos budget the quantum faults instead
    // of integrating — deterministic, and it survives recovery because
    // the failure count is journaled.
    const bool chaos = r->spec.chaos_fail_quanta > r->failures;
    group.run([r, quantum, round, chaos] {
      // Scope installed BEFORE the span opens: the serve.job span (and
      // every span and counter nested under it, on this thread or forked
      // through the pool) is charged to this job.
      const obs::ScopedMetricScope attribution(r->scope);
      G6_PHASE("serve.job");
      flight().record(obs::FlightEventType::kQuantumStart, r->id, round,
                      static_cast<std::int64_t>(quantum));
      const double t0 = obs::monotonic_seconds();
      const double v0 = r->runtime->grape_stats().total_seconds();
      r->q_blocksteps = 0;
      r->q_error = nullptr;
      try {
        if (chaos) {
          throw fault::TransientFault("injected quantum fault (chaos)");
        }
        r->q_blocksteps = r->runtime->run_quantum(quantum);
      } catch (...) {
        // Captured per job: one job's hardware dying (HardFault) or
        // diverging must not tear down its neighbors' quanta.
        r->q_error = std::current_exception();
      }
      r->q_wall_s = obs::monotonic_seconds() - t0;
      r->q_virtual_s = r->runtime->grape_stats().total_seconds() - v0;
    });
  }
  group.wait();
}

void Scheduler::fold_quantum(Record& r) {
  ++r.quanta;
  reg().counter("serve.quanta").add();
  r.run_s += r.q_wall_s;
  r.grape_virtual_s += r.q_virtual_s;
  // Serial, job-id order: the per-job quantum_end/revoke/preempt flight
  // subsequence is deterministic even though worker-side events interleave.
  flight().record(obs::FlightEventType::kQuantumEnd, r.id,
                  static_cast<std::int64_t>(round_index_),
                  static_cast<std::int64_t>(r.q_blocksteps),
                  r.q_error ? "error" : nullptr);

  if (r.q_error) {
    std::exception_ptr err = std::exchange(r.q_error, nullptr);
    try {
      std::rethrow_exception(err);
    } catch (const fault::HardFault& e) {
      // The job's slice is gone: every board under the lease is marked
      // dead, and the job re-queues from its last quantum-boundary state
      // (the mid-quantum runtime is torn — never saved).
      obs::log_warn("serve: job %llu hard fault: %s",
                    static_cast<unsigned long long>(r.id), e.what());
      const std::vector<std::size_t> boards = r.lease.boards;
      for (std::size_t b : boards) {
        JournalRecord jr;
        jr.type = JournalRecordType::kBoardDeath;
        jr.board = b;
        journal_append(std::move(jr));
        partition_.mark_dead(b);
        reg().counter("serve.board_deaths").add();
      }
      stats_.boards_dead = partition_.dead();
      revoke_lease(r, std::string("hard fault: ") + e.what());
    } catch (const fault::TransientFault& e) {
      // Transient (RetryExhausted included: one level up retries with a
      // clean slate — that level is us): bounded retry with backoff, or
      // quarantine once the job looks poisoned.
      retry_or_quarantine(r, e.what());
    } catch (const std::exception& e) {
      release_lease(r);
      r.runtime.reset();
      fail_job(r, RejectReason::kNone,
               std::string("quantum failed: ") + e.what());
    }
    return;
  }

  // Clean quantum boundary: capture resumable state and progress.
  r.saved = r.runtime->save();
  r.has_saved = true;
  r.failures = 0;  // quarantine counts *consecutive* faulted quanta
  r.t_reached = r.runtime->time();
  r.steps = r.runtime->integrator().total_steps();
  r.blocksteps = r.runtime->integrator().total_blocksteps();
  r.eq10 = r.runtime->integrator().eq10();
  {
    JournalRecord jr;
    jr.type = JournalRecordType::kQuantum;
    jr.job = r.id;
    jr.quanta = r.quanta;
    jr.t = r.t_reached;
    jr.steps = r.steps;
    jr.blocksteps = r.blocksteps;
    journal_append(std::move(jr));
  }
  const bool done = r.runtime->done();
  const std::uint64_t every = cfg_.durability.checkpoint_every_quanta;
  // Always checkpoint at completion (the finished record below relies on
  // it for recovery); periodically otherwise.
  if (done || (every > 0 && r.quanta % every == 0)) checkpoint_job(r);
  if (done) finish_job(r);
}

void Scheduler::retry_or_quarantine(Record& r, const std::string& what) {
  ++r.failures;
  reg().counter("serve.job_faults").add();
  flight().record(obs::FlightEventType::kRetry, r.id,
                  static_cast<std::int64_t>(round_index_),
                  static_cast<std::int64_t>(r.failures));
  release_lease(r);
  // Mid-quantum state is indeterminate; the next attempt resumes from
  // the last clean quantum boundary (or the start).
  r.runtime.reset();
  if (r.failures >= cfg_.max_job_failures) {
    quarantine_job(r, "poison job: " + std::to_string(r.failures) +
                          " consecutive transient faults (last: " + what +
                          ")");
    return;
  }
  // Exponential virtual-time backoff: 1x, 2x, 4x ... backoff_base_rounds,
  // measured on the round clock so replay is deterministic.
  const std::uint64_t backoff = cfg_.backoff_base_rounds
                                << (r.failures - 1);
  r.hold_until_round = round_index_ + 1 + backoff;
  r.state = JobState::kQueued;
  // Back of the class: unlike a revocation, the fault was the job's own.
  queue_.push_back(r.id, r.spec.priority);
  JournalRecord jr;
  jr.type = JournalRecordType::kRequeued;
  jr.job = r.id;
  jr.reason = "retry";
  jr.requeues = r.requeues;
  jr.failures = r.failures;
  jr.hold_until = r.hold_until_round;
  journal_append(std::move(jr));
  obs::log_warn(
      "serve: job %llu transient fault (%s); retry %d/%d after %llu "
      "round(s) backoff",
      static_cast<unsigned long long>(r.id), what.c_str(), r.failures,
      cfg_.max_job_failures, static_cast<unsigned long long>(backoff));
}

void Scheduler::quarantine_job(Record& r, std::string message) {
  release_lease(r);
  r.runtime.reset();
  r.state = JobState::kQuarantined;
  r.reject = RejectReason::kQuarantined;
  r.message = std::move(message);
  ++stats_.quarantined;
  reg().counter("serve.jobs.quarantined").add();
  observe_terminal(r);
  // Attach a flight-recorder dump: the ring holds the retry/requeue
  // trail that led here, which is exactly what a poison-job post-mortem
  // needs.
  std::string dump;
  if (!cfg_.durability.checkpoint_dir.empty()) {
    dump = cfg_.durability.checkpoint_dir + "/" + r.spec.name +
           ".quarantine.flight.json";
    obs::export_flight_json(dump);
  }
  flight().record(obs::FlightEventType::kJobFailed, r.id,
                  static_cast<std::int64_t>(round_index_),
                  static_cast<std::int64_t>(r.failures), "quarantined");
  JournalRecord jr;
  jr.type = JournalRecordType::kQuarantined;
  jr.job = r.id;
  jr.failures = r.failures;
  jr.file = dump;
  journal_append(std::move(jr));
  obs::log_error("serve: job %llu '%s' quarantined: %s",
                 static_cast<unsigned long long>(r.id), r.spec.name.c_str(),
                 r.message.c_str());
}

void Scheduler::checkpoint_job(Record& r) {
  if (journal_ == nullptr || !r.has_saved) return;
  fault::RunCheckpoint cp;
  cp.run_tag = job_run_tag(r.spec);
  cp.state = r.saved.state;
  cp.exponents = r.saved.exponents;
  cp.e0 = r.e0;
  const std::string path = checkpoint_path(r.spec.name);
  fault::save_checkpoint_rotating(path, cp);
  r.checkpoint_file = path;
  reg().counter("serve.checkpoint.writes").add();
  JournalRecord jr;
  jr.type = JournalRecordType::kCheckpointed;
  jr.job = r.id;
  jr.quanta = r.quanta;
  jr.file = path;
  jr.tag = cp.run_tag;
  journal_append(std::move(jr));
}

std::string Scheduler::checkpoint_path(const std::string& job_name) const {
  return cfg_.durability.checkpoint_dir + "/" + job_name + ".ckpt";
}

void Scheduler::graceful_stop() {
  draining_ = true;
  std::size_t checkpointed = 0;
  for (const auto& rp : records_) {
    Record& r = *rp;
    if (r.state != JobState::kQueued && r.state != JobState::kRunning) {
      continue;
    }
    if (r.has_saved) {
      checkpoint_job(r);
      ++checkpointed;
    }
  }
  JournalRecord jr;
  jr.type = JournalRecordType::kDrained;
  jr.reason = "sigterm";
  journal_append(std::move(jr));
  obs::log_warn(
      "serve: graceful drain (stop requested) at round %llu; %zu live "
      "job(s) checkpointed",
      static_cast<unsigned long long>(round_index_), checkpointed);
}

void Scheduler::journal_append(JournalRecord rec) {
  if (journal_ == nullptr) return;
  rec.round = round_index_;
  journal_->append(std::move(rec));
  reg().counter("serve.journal.records").add();
}

void Scheduler::observe_terminal(const Record& r) {
  reg()
      .histogram("serve.requeues_per_job", 0.0, 16.0, 16)
      .observe(static_cast<double>(r.requeues));
}

void Scheduler::preempt_for(JobId blocked_id) {
  Record& blocked = rec(blocked_id);
  // The smallest lease that unblocks the job: its floor (shrink-to-fit
  // at the next dispatch covers the rest). Fixed-size jobs' floor is
  // spec.boards, the pre-autoscaling behavior.
  const std::size_t want = blocked.spec.min_boards();
  if (want <= partition_.free()) return;  // freed by folds or shrinks
  std::size_t needed = want - partition_.free();

  // Victims: running jobs of the same or lower priority (numerically >=),
  // least-urgent first, most virtual GRAPE time consumed first (fair
  // share), newest first on ties. Virtual time is emulated-hardware
  // accounting, so the order is identical run to run.
  std::vector<Record*> victims;
  for (const auto& r : records_) {
    if (r->state != JobState::kRunning) continue;
    if (static_cast<int>(r->spec.priority) <
        static_cast<int>(blocked.spec.priority)) {
      continue;
    }
    victims.push_back(r.get());
  }
  std::sort(victims.begin(), victims.end(), [](const Record* a,
                                               const Record* b) {
    if (a->spec.priority != b->spec.priority) {
      return static_cast<int>(a->spec.priority) >
             static_cast<int>(b->spec.priority);
    }
    if (a->grape_virtual_s != b->grape_virtual_s) {
      return a->grape_virtual_s > b->grape_virtual_s;
    }
    return a->id > b->id;
  });

  for (Record* v : victims) {
    if (needed == 0) break;
    const std::size_t freed = v->lease.size();
    release_lease(*v);
    v->state = JobState::kQueued;
    // Cooperative yield at the quantum boundary: the runtime (engine +
    // integrator) stays warm; only the boards are surrendered. Back of
    // the class: the jobs it yielded to get their turn first.
    queue_.push_back(v->id, v->spec.priority);
    ++v->preemptions;
    ++stats_.preemptions;
    reg().counter("serve.preemptions").add();
    flight().record(obs::FlightEventType::kPreempt, v->id,
                    static_cast<std::int64_t>(round_index_),
                    static_cast<std::int64_t>(blocked_id));
    obs::log_debug("serve: job %llu preempted (yields %zu board(s) toward "
                   "job %llu)",
                   static_cast<unsigned long long>(v->id), freed,
                   static_cast<unsigned long long>(blocked_id));
    needed -= std::min(needed, freed);
  }
}

void Scheduler::record_resize(Record& r, const char* why) {
  r.boards_target = r.lease.size();
  ++r.resizes;
  ++stats_.resizes;
  reg().counter("serve.lease.resizes").add();
  flight().record(obs::FlightEventType::kLeaseResize, r.id,
                  static_cast<std::int64_t>(round_index_),
                  static_cast<std::int64_t>(r.lease.size()), why);
  JournalRecord jr;
  jr.type = JournalRecordType::kLeaseResized;
  jr.job = r.id;
  jr.boards = r.lease.size();
  jr.reason = why;
  journal_append(std::move(jr));
  obs::log_debug("serve: job %llu lease resized to %zu board(s) (%s)",
                 static_cast<unsigned long long>(r.id), r.lease.size(), why);
}

void Scheduler::resize_running(Record& r, std::size_t new_size,
                               const char* why) {
  G6_REQUIRE(r.state == JobState::kRunning);
  // Resizes happen only at quantum boundaries, where the job has a clean
  // saved state to rebuild from (the BFP exponent cache inside the
  // runtime is shaped by the lease size, so the runtime cannot survive).
  G6_REQUIRE_MSG(r.has_saved, "resize of a job with no quantum boundary");
  G6_REQUIRE(new_size >= 1 && new_size != r.lease.size());
  release_lease(r);
  auto lease = partition_.acquire(r.id, new_size);
  G6_REQUIRE_MSG(lease.has_value(),
                 "lease resize could not re-acquire boards it just freed");
  r.lease = std::move(*lease);
  r.runtime.reset();
  {
    // Same save/restore path a revocation uses: bit-identical resume,
    // attributed to the job.
    const obs::ScopedMetricScope attribution(r.scope);
    r.runtime = std::make_unique<JobRuntime>(r.spec, cfg_.machine, new_size,
                                             r.saved, r.e0);
  }
  record_resize(r, why);
}

void Scheduler::shrink_for(JobId blocked_id) {
  Record& blocked = rec(blocked_id);
  const std::size_t need = blocked.spec.min_boards();
  // Donors: running autoscalable jobs above their floor, same or lower
  // priority than the blocked job, in the preemption victim order — so
  // shrinking and preemption burden the same jobs, in the same sequence,
  // run after run.
  std::vector<Record*> donors;
  for (const auto& r : records_) {
    if (r->state != JobState::kRunning) continue;
    if (!r->spec.autoscales() || !r->has_saved) continue;
    if (r->lease.size() <= r->spec.min_boards()) continue;
    if (static_cast<int>(r->spec.priority) <
        static_cast<int>(blocked.spec.priority)) {
      continue;
    }
    donors.push_back(r.get());
  }
  std::sort(donors.begin(), donors.end(), [](const Record* a,
                                             const Record* b) {
    if (a->spec.priority != b->spec.priority) {
      return static_cast<int>(a->spec.priority) >
             static_cast<int>(b->spec.priority);
    }
    if (a->grape_virtual_s != b->grape_virtual_s) {
      return a->grape_virtual_s > b->grape_virtual_s;
    }
    return a->id > b->id;
  });
  for (Record* d : donors) {
    if (partition_.free() >= need) break;
    const std::size_t deficit = need - partition_.free();
    const std::size_t give =
        std::min(d->lease.size() - d->spec.min_boards(), deficit);
    resize_running(*d, d->lease.size() - give, "shrink");
  }
}

void Scheduler::grow_leases() {
  // Growth only when nothing is waiting: a queued job has first claim on
  // free boards (next round's dispatch), so growing past it would just
  // force a shrink back.
  if (!queue_.empty() || partition_.free() == 0) return;
  for (const auto& rp : records_) {
    Record& r = *rp;
    if (r.state != JobState::kRunning) continue;
    if (!r.spec.autoscales() || !r.has_saved) continue;
    if (r.lease.size() >= r.spec.max_boards()) continue;
    const std::size_t grow =
        std::min(r.spec.max_boards() - r.lease.size(), partition_.free());
    if (grow == 0) break;
    resize_running(r, r.lease.size() + grow, "grow");
    if (partition_.free() == 0) break;
  }
}

void Scheduler::finish_job(Record& r) {
  r.result = r.runtime->state_now();
  r.result_time = r.runtime->time();
  r.e_final = compute_energy(r.result.bodies(), r.spec.eps).total();
  release_lease(r);
  r.runtime.reset();
  r.state = JobState::kCompleted;
  ++stats_.completed;
  stats_.eq10.merge(r.eq10);
  reg().counter("serve.jobs.completed").add();
  observe_terminal(r);
  {
    // The final checkpoint (fold_quantum wrote it just before this call)
    // is already durable, so this record is all recovery needs to rebuild
    // the completed job's result bit-identically.
    JournalRecord jr;
    jr.type = JournalRecordType::kFinished;
    jr.job = r.id;
    jr.quanta = r.quanta;
    jr.t = r.result_time;
    jr.e0 = r.e0;
    jr.e_final = r.e_final;
    jr.steps = r.steps;
    jr.blocksteps = r.blocksteps;
    journal_append(std::move(jr));
  }
  flight().record(obs::FlightEventType::kJobCompleted, r.id,
                  static_cast<std::int64_t>(round_index_),
                  static_cast<std::int64_t>(r.quanta));
  obs::log_info("serve: job %llu '%s' completed: t=%g, %llu steps, "
                "dE/E=%.3e",
                static_cast<unsigned long long>(r.id), r.spec.name.c_str(),
                r.result_time, r.steps,
                r.e0 != 0.0 ? std::abs((r.e_final - r.e0) / r.e0) : 0.0);
}

void Scheduler::fail_job(Record& r, RejectReason reason, std::string message) {
  r.state = JobState::kFailed;
  r.reject = reason;
  r.message = std::move(message);
  ++stats_.failed;
  reg().counter("serve.jobs.failed").add();
  observe_terminal(r);
  {
    JournalRecord jr;
    jr.type = JournalRecordType::kFailed;
    jr.job = r.id;
    jr.reason = reject_reason_name(reason);
    jr.message = r.message;
    journal_append(std::move(jr));
  }
  flight().record(obs::FlightEventType::kJobFailed, r.id,
                  static_cast<std::int64_t>(round_index_),
                  static_cast<std::int64_t>(r.requeues));
  obs::log_error("serve: job %llu '%s' failed: %s",
                 static_cast<unsigned long long>(r.id), r.spec.name.c_str(),
                 r.message.c_str());
}

void Scheduler::revoke_lease(Record& r, const std::string& why) {
  ++r.revocations;
  ++stats_.revocations;
  reg().counter("serve.revocations").add();
  flight().record(obs::FlightEventType::kRevoke, r.id,
                  static_cast<std::int64_t>(round_index_),
                  static_cast<std::int64_t>(r.lease.size()));
  release_lease(r);
  // The runtime's engine modeled hardware that no longer exists; the next
  // dispatch rebuilds it from `saved` (or from scratch if the job never
  // finished a quantum) on whichever boards are then free.
  r.runtime.reset();
  // Budget check before the increment: `requeues` counts re-queues that
  // actually happened, not the revocation that exhausted the budget.
  if (r.requeues >= cfg_.max_requeues) {
    fail_job(r, RejectReason::kRequeueExhausted,
             "lease revoked (" + why + ") and re-queue budget exhausted (" +
                 std::to_string(cfg_.max_requeues) + ")");
    return;
  }
  ++r.requeues;
  ++stats_.requeues;
  reg().counter("serve.requeues").add();
  r.state = JobState::kQueued;
  // Front of the class: the job lost its boards through no fault of its
  // own, so it keeps its turn.
  queue_.push_front(r.id, r.spec.priority);
  flight().record(obs::FlightEventType::kRequeue, r.id,
                  static_cast<std::int64_t>(round_index_),
                  static_cast<std::int64_t>(r.requeues));
  {
    JournalRecord jr;
    jr.type = JournalRecordType::kRequeued;
    jr.job = r.id;
    jr.reason = "revocation";
    jr.requeues = r.requeues;
    jr.failures = r.failures;
    jr.hold_until = r.hold_until_round;
    journal_append(std::move(jr));
  }
  obs::log_warn("serve: job %llu lease revoked (%s); re-queued at front "
                "(requeue %d/%d)",
                static_cast<unsigned long long>(r.id), why.c_str(),
                r.requeues, cfg_.max_requeues);
}

void Scheduler::release_lease(Record& r) {
  if (!r.lease.valid()) return;
  partition_.release(r.lease);
  r.lease = BoardLease{};
}

void Scheduler::update_round_gauges() {
  reg().gauge("serve.queue.depth").set(static_cast<double>(queue_.size()));
  reg().gauge("serve.boards.dead").set(static_cast<double>(partition_.dead()));
  reg().gauge("serve.boards.free").set(static_cast<double>(partition_.free()));
  reg().gauge("serve.boards.healthy")
      .set(static_cast<double>(partition_.healthy()));
  const std::size_t healthy = partition_.healthy();
  reg().gauge("serve.lease.utilization")
      .set(healthy == 0
               ? 0.0
               : static_cast<double>(partition_.leased()) /
                     static_cast<double>(healthy));
}

JobReport Scheduler::report(JobId id) const {
  MutexLock lk(serial_m_);
  const Record& r = rec(id);
  JobReport rep;
  rep.id = r.id;
  rep.name = r.spec.name;
  rep.priority = r.spec.priority;
  rep.state = r.state;
  rep.reject_reason = r.reject;
  rep.message = r.message;
  rep.n = r.spec.n;
  rep.boards = r.spec.boards;
  rep.boards_now = r.boards_target != 0 ? r.boards_target : r.spec.boards;
  rep.resizes = r.resizes;
  rep.t_end = r.spec.t_end;
  rep.t_reached = r.t_reached;
  rep.steps = r.steps;
  rep.blocksteps = r.blocksteps;
  rep.quanta = r.quanta;
  rep.preemptions = r.preemptions;
  rep.revocations = r.revocations;
  rep.requeues = r.requeues;
  rep.failures = r.failures;
  rep.wait_s =
      r.first_run_wall_s >= 0.0 ? r.first_run_wall_s - r.submit_wall_s : 0.0;
  rep.run_s = r.run_s;
  rep.grape_virtual_s = r.grape_virtual_s;
  rep.eq10 = r.eq10;
  rep.e0 = r.e0;
  rep.e_final = r.e_final;
  return rep;
}

JobState Scheduler::state(JobId id) const {
  MutexLock lk(serial_m_);
  return rec(id).state;
}

const ParticleSet& Scheduler::final_state(JobId id, double* t) const {
  MutexLock lk(serial_m_);
  const Record& r = rec(id);
  G6_REQUIRE_MSG(r.state == JobState::kCompleted,
                 "final_state of a job that has not completed");
  if (t != nullptr) *t = r.result_time;
  return r.result;
}

std::vector<JobId> Scheduler::all_jobs() const {
  MutexLock lk(serial_m_);
  std::vector<JobId> ids;
  ids.reserve(records_.size());
  for (const auto& r : records_) ids.push_back(r->id);
  return ids;
}

}  // namespace g6::serve
