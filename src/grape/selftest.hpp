#pragma once
// Chip self-test against host double-precision reference vectors — the
// paper's operating practice for GRAPE-6: feed known particles through
// each chip and compare with the host's own calculation, at startup and
// periodically during long runs, so malfunctioning chips are detected and
// disabled instead of silently corrupting the science.
//
// The test swaps a deterministic pseudo-random particle set into a chip's
// j-memory, runs one hardware pass, and compares the decoded
// acceleration/potential against a double-precision direct sum over the
// *decoded* stored values (so only pipeline arithmetic is under test, not
// quantization). Healthy chips agree to ~pipeline precision; stuck or
// dead chips miss by orders of magnitude. The chip's real memory is
// restored afterwards untouched.

#include <cstdint>
#include <span>
#include <vector>

namespace g6 {

class GrapeForceEngine;

struct SelfTestOptions {
  int n_j = 12;            ///< stored test particles per chip
  int n_i = 8;             ///< probe i-particles
  double rel_tol = 1e-2;   ///< pipeline-vs-double acceptance threshold
  std::uint64_t seed = 0x673e57ULL;  ///< test-vector stream (fixed)
};

struct SelfTestReport {
  std::vector<int> failed;   ///< flat chip ids that missed tolerance
  std::size_t tested = 0;    ///< chips exercised
  std::uint64_t cycles = 0;  ///< virtual pipeline cycles consumed
};

/// Run the self-test on the given chips (flat ids within `engine`).
/// Transient glitch injection must be disabled by the caller for the
/// duration (the engine wrapper does this); permanent faults still apply,
/// which is exactly what makes bad chips detectable.
SelfTestReport run_chip_self_test(GrapeForceEngine& engine,
                                  std::span<const int> chips,
                                  const SelfTestOptions& opt);

}  // namespace g6
