#pragma once
// GrapeForceEngine: one host's GRAPE-6 subsystem — `boards_per_host`
// processor boards behind a network board and a PCI DMA link.
//
// Implements the ForceEngine interface so the Hermite integrator can run
// on the emulated hardware unchanged, and additionally keeps a *virtual
// clock* of the time the real hardware would have spent (pipeline cycles,
// reduction latencies, DMA transfers). Nothing here sleeps; virtual time
// is pure accounting.
//
// Block floating-point exponents are managed as in the paper (Sec 3.4):
// the engine remembers each particle's exponents from the previous step
// and retries a pass with larger exponents when the hardware raises the
// overflow flag.

#include <cstdint>
#include <span>
#include <vector>

#include "grape/board.hpp"
#include "grape/config.hpp"
#include "hermite/force_engine.hpp"

namespace g6 {

/// Cumulative virtual-time and event statistics of one engine.
struct GrapeHostStats {
  double grape_seconds = 0.0;  ///< pipeline + reduction time
  double dma_seconds = 0.0;    ///< host<->GRAPE transfers
  std::uint64_t force_calls = 0;
  std::uint64_t passes = 0;
  std::uint64_t retries = 0;   ///< block-exponent overflow retries
  std::uint64_t interactions = 0;

  double total_seconds() const { return grape_seconds + dma_seconds; }
};

class GrapeForceEngine final : public ForceEngine {
 public:
  /// `mc.boards_per_host` boards are instantiated; the rest of `mc`
  /// supplies the chip microarchitecture.
  GrapeForceEngine(const MachineConfig& mc, const NumberFormats& fmt, double eps,
                   DmaModel dma = {}, PacketSizes packets = {});

  // --- ForceEngine ------------------------------------------------------
  void load_particles(std::span<const JParticle> particles) override;
  void update_particle(std::size_t index, const JParticle& p) override;
  void compute_forces(double t, std::span<const PredictedState> block,
                      std::span<Force> out) override;
  void compute_forces_neighbors(double t, std::span<const PredictedState> block,
                                std::span<const double> radii2,
                                std::span<Force> out,
                                std::span<NeighborResult> neighbors) override;
  bool supports_neighbors() const override { return true; }
  double softening() const override { return eps_; }
  std::size_t size() const override { return n_particles_; }

  // --- lower-level access for the parallel algorithms --------------------
  /// One pass (<= 48 i-particles) over this host's j-memory with caller-
  /// managed exponents; partial results are NOT decoded. `neighbors`
  /// (optional, same length, recorders reset by the caller) collects
  /// merged neighbor lists. Returns cycles.
  std::uint64_t compute_partials(double t, std::span<const IParticlePacket> pass,
                                 std::span<const BlockExponents> exps,
                                 std::vector<HwAccumulators>& out,
                                 std::span<HwNeighborRecorder> neighbors = {});

  /// Quantize a predicted i-particle with this engine's formats.
  IParticlePacket make_packet(const PredictedState& p) const {
    return quantize_i_particle(p, fmt_);
  }

  const GrapeHostStats& stats() const { return stats_; }
  const MachineConfig& machine() const { return mc_; }
  const NumberFormats& formats() const { return fmt_; }
  const DmaModel& dma() const { return dma_; }
  const PacketSizes& packets() const { return packets_; }

  /// Exponent bank (indexed by global particle id); exposed so parallel
  /// drivers can share exponents across hosts.
  std::vector<BlockExponents>& exponents() { return exps_; }

  /// Identity map for engines that hold a SUBSET of a larger system (the
  /// host-grid algorithm): slot k of the next load_particles call gets
  /// hardware id ids[k] instead of k, so the pipeline self-interaction
  /// cut works against global i-particle indices. Call before
  /// load_particles; an empty map restores the identity.
  void set_global_ids(std::vector<std::uint32_t> ids) { global_ids_ = std::move(ids); }

  /// Virtual time charged to the last compute_forces call.
  double last_call_seconds() const { return last_call_seconds_; }
  /// Pipeline-only part of the last call (no DMA) — used by the cluster
  /// simulator, which accounts transfers with its own network topology.
  double last_call_grape_seconds() const { return last_call_grape_seconds_; }

  std::size_t board_count() const { return boards_.size(); }
  ProcessorBoard& board(std::size_t b) { return boards_[b]; }

 private:
  struct Slot {
    std::uint32_t board;
    std::uint32_t chip;
    std::uint32_t slot;
  };
  Slot place(std::size_t index) const;
  void run_block(double t, std::span<const PredictedState> block,
                 std::span<const double> radii2, std::span<Force> out,
                 std::span<NeighborResult> neighbors);

  MachineConfig mc_;
  NumberFormats fmt_;
  double eps_;
  DmaModel dma_;
  PacketSizes packets_;

  std::uint32_t hardware_id(std::size_t index) const {
    return global_ids_.empty() ? static_cast<std::uint32_t>(index)
                               : global_ids_[index];
  }

  std::vector<ProcessorBoard> boards_;
  std::size_t n_particles_ = 0;
  std::vector<BlockExponents> exps_;
  std::vector<std::uint32_t> global_ids_;
  std::size_t pending_j_writes_ = 0;

  GrapeHostStats stats_;
  double last_call_seconds_ = 0.0;
  double last_call_grape_seconds_ = 0.0;

  // scratch
  std::vector<IParticlePacket> packets_buf_;
  std::vector<std::vector<HwAccumulators>> board_partials_;
  std::vector<HwAccumulators> merged_;
};

}  // namespace g6
