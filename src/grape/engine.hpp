#pragma once
// GrapeForceEngine: one host's GRAPE-6 subsystem — `boards_per_host`
// processor boards behind a network board and a PCI DMA link.
//
// Implements the ForceEngine interface so the Hermite integrator can run
// on the emulated hardware unchanged, and additionally keeps a *virtual
// clock* of the time the real hardware would have spent (pipeline cycles,
// reduction latencies, DMA transfers). Nothing here sleeps; virtual time
// is pure accounting.
//
// Block floating-point exponents are managed as in the paper (Sec 3.4):
// the engine remembers each particle's exponents from the previous step
// and retries a pass with larger exponents when the hardware raises the
// overflow flag.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "grape/board.hpp"
#include "grape/config.hpp"
#include "hermite/force_engine.hpp"

namespace g6 {

namespace fault {
class FaultInjector;
}

/// Cumulative virtual-time and event statistics of one engine.
struct GrapeHostStats {
  double grape_seconds = 0.0;  ///< pipeline + reduction time
  double dma_seconds = 0.0;    ///< host<->GRAPE transfers
  std::uint64_t force_calls = 0;
  std::uint64_t passes = 0;
  std::uint64_t retries = 0;   ///< block-exponent overflow retries
  std::uint64_t interactions = 0;

  // Fault detection/recovery (all zero without enable_fault_tolerance).
  std::uint64_t selftests = 0;           ///< self-test sweeps run
  std::uint64_t selftest_failures = 0;   ///< chips confirmed bad by self-test
  std::uint64_t jmem_rewrites = 0;       ///< scrubbed j-memory words rewritten
  std::uint64_t packet_retransmits = 0;  ///< corrupted i-packets resent
  std::uint64_t vote_retries = 0;        ///< duplicate-pass mismatch retries
  std::uint64_t remaps = 0;              ///< j-particle remaps after chip death
  std::uint64_t dead_chips = 0;          ///< chips currently disabled
  double backoff_seconds = 0.0;          ///< virtual retry backoff charged

  double total_seconds() const { return grape_seconds + dma_seconds; }
};

class GrapeForceEngine final : public ForceEngine {
 public:
  /// `mc.boards_per_host` boards are instantiated; the rest of `mc`
  /// supplies the chip microarchitecture.
  GrapeForceEngine(const MachineConfig& mc, const NumberFormats& fmt, double eps,
                   DmaModel dma = {}, PacketSizes packets = {});

  // --- ForceEngine ------------------------------------------------------
  void load_particles(std::span<const JParticle> particles) override;
  void update_particle(std::size_t index, const JParticle& p) override;
  void compute_forces(double t, std::span<const PredictedState> block,
                      std::span<Force> out) override;
  void compute_forces_neighbors(double t, std::span<const PredictedState> block,
                                std::span<const double> radii2,
                                std::span<Force> out,
                                std::span<NeighborResult> neighbors) override;
  bool supports_neighbors() const override { return true; }

  /// Chunked asynchronous submission: the block is split into passes of
  /// i_parallelism() particles, each evaluated as a task on the shared
  /// exec pool (serial inline with no workers or with a fault injector
  /// attached — the injector's RNG stream must see passes in order). The
  /// caller corrects finished chunks via wait_chunk while later chunks
  /// are still "on the hardware". Per-board partials merge in fixed board
  /// order and exponent refinements are per-particle, so results are
  /// bit-identical to the blocking path at any thread count. Virtual-time
  /// and stats accounting folds in the ticket's epilogue, in chunk order.
  ForceTicket submit_forces(double t, std::span<const PredictedState> block,
                            std::span<Force> out) override;

  /// submit_forces plus optional neighbor collection (both spans empty or
  /// both block-sized). One submission may be in flight per engine.
  ForceTicket submit_block(double t, std::span<const PredictedState> block,
                           std::span<const double> radii2, std::span<Force> out,
                           std::span<NeighborResult> neighbors);
  double softening() const override { return eps_; }
  std::size_t size() const override { return n_particles_; }

  // --- lower-level access for the parallel algorithms --------------------
  /// One pass (<= 48 i-particles) over this host's j-memory with caller-
  /// managed exponents; partial results are NOT decoded. `neighbors`
  /// (optional, same length, recorders reset by the caller) collects
  /// merged neighbor lists. Returns cycles.
  std::uint64_t compute_partials(double t, std::span<const IParticlePacket> pass,
                                 std::span<const BlockExponents> exps,
                                 std::vector<HwAccumulators>& out,
                                 std::span<HwNeighborRecorder> neighbors = {});

  /// Quantize a predicted i-particle with this engine's formats.
  IParticlePacket make_packet(const PredictedState& p) const {
    return quantize_i_particle(p, fmt_);
  }

  const GrapeHostStats& stats() const { return stats_; }
  const MachineConfig& machine() const { return mc_; }
  const NumberFormats& formats() const { return fmt_; }
  const DmaModel& dma() const { return dma_; }
  const PacketSizes& packets() const { return packets_; }

  /// Exponent bank (indexed by global particle id); exposed so parallel
  /// drivers can share exponents across hosts.
  std::vector<BlockExponents>& exponents() { return exps_; }

  /// Identity map for engines that hold a SUBSET of a larger system (the
  /// host-grid algorithm): slot k of the next load_particles call gets
  /// hardware id ids[k] instead of k, so the pipeline self-interaction
  /// cut works against global i-particle indices. Call before
  /// load_particles; an empty map restores the identity.
  void set_global_ids(std::vector<std::uint32_t> ids) { global_ids_ = std::move(ids); }

  /// Virtual time charged to the last compute_forces call.
  double last_call_seconds() const { return last_call_seconds_; }
  /// Pipeline-only part of the last call (no DMA) — used by the cluster
  /// simulator, which accounts transfers with its own network topology.
  double last_call_grape_seconds() const { return last_call_grape_seconds_; }

  std::size_t board_count() const { return boards_.size(); }
  ProcessorBoard& board(std::size_t b) { return boards_[b]; }

  // --- fault tolerance ---------------------------------------------------
  /// Attach a fault injector and a detection policy. Must be called BEFORE
  /// load_particles (the engine keeps host-side master copies of every
  /// quantized j-particle from then on). Runs the startup self-test
  /// immediately; chips that fail `detection.dead_threshold` consecutive
  /// sweeps are disabled and their share of j-memory is remapped.
  void enable_fault_tolerance(std::shared_ptr<fault::FaultInjector> injector,
                              fault::DetectionConfig detection = {});

  fault::FaultInjector* injector() { return injector_.get(); }
  const fault::DetectionConfig& detection() const { return det_; }

  /// Chips across all boards, addressed flat as board*chips_per_board+chip.
  std::size_t chip_count() const;
  Chip& chip_flat(std::size_t id);
  bool chip_dead(std::size_t id) const;
  std::size_t dead_chip_count() const;
  std::vector<int> healthy_chip_ids() const;

 private:
  struct Slot {
    std::uint32_t board;
    std::uint32_t chip;
    std::uint32_t slot;
  };
  /// Virtual-time/DMA costs accumulated by the fault helpers, folded into
  /// the calling context's accounting (run_block or stats_ directly).
  struct FaultCharges {
    double dma_s = 0.0;
    std::uint64_t cycles = 0;
  };
  Slot place(std::size_t index) const;

  /// Per-chunk accounting, folded into stats_/metrics in chunk order by
  /// the ticket epilogue (fold_call) so totals never depend on scheduling.
  struct ChunkAcct {
    std::uint64_t cycles = 0;
    std::uint64_t passes = 0;
    std::uint64_t retries = 0;
    std::uint64_t interactions = 0;
    std::uint64_t extra_dma_bytes = 0;  ///< packet retransmits (fault mode)
    double extra_seconds = 0.0;         ///< retransmit DMA + retry backoff
    std::size_t neighbor_words = 0;
  };
  /// Everything one submission accumulates outside the chunk tasks.
  struct CallState {
    double prologue_seconds = 0.0;
    std::uint64_t prologue_dma_bytes = 0;
    std::uint64_t prologue_cycles = 0;
    std::size_t block_size = 0;
    bool want_nb = false;
    std::vector<ChunkAcct> accts;
  };
  struct PassResult {
    std::uint64_t cycles = 0;
    std::uint64_t interactions = 0;
  };

  /// One hardware pass over all boards into caller-provided banks; board
  /// partials merge in fixed board order (`parallel` affects scheduling
  /// only). The stats-free core shared by compute_partials and run_chunk.
  /// `board_bank` and `nb_banks` are caller-owned scratch, reused across
  /// calls so accumulator banks and neighbor-index heaps stop churning
  /// the allocator (nb_banks is untouched when `neighbors` is empty).
  PassResult run_boards(double t, std::span<const IParticlePacket> pass,
                        std::span<const BlockExponents> exps,
                        std::vector<HwAccumulators>& out,
                        std::span<HwNeighborRecorder> neighbors,
                        std::vector<std::vector<HwAccumulators>>& board_bank,
                        std::vector<std::vector<HwNeighborRecorder>>& nb_banks,
                        bool parallel);
  /// Evaluate block[begin, end) — retry loops, decode, exponent refresh.
  /// All scratch is chunk-local; exps_ writes are disjoint (block members
  /// are unique particles).
  void run_chunk(double t, std::span<const PredictedState> block,
                 std::span<const double> radii2, std::span<Force> out,
                 std::span<NeighborResult> neighbors, std::size_t begin,
                 std::size_t end, bool parallel, ChunkAcct& acct);
  void fold_call(const CallState& cs);

  FaultCharges fault_prologue(double t);
  void run_health_check(double t, FaultCharges& charges);
  void verify_i_packets(double t, std::span<IParticlePacket> pass,
                        double& call_seconds, std::uint64_t& dma_bytes);
  void inject_and_scrub_j_memory(double t, FaultCharges& charges);
  void remap_particles(FaultCharges& charges);
  void rebuild_healthy_slots();
  /// Reserve every chip's j-memory columns for a full `n`-particle upload.
  void presize_j_memory(std::size_t n);
  /// Exponentially-backed-off virtual retry delay for `attempt`.
  double backoff_delay(int attempt) const;

  MachineConfig mc_;
  NumberFormats fmt_;
  double eps_;
  DmaModel dma_;
  PacketSizes packets_;

  std::uint32_t hardware_id(std::size_t index) const {
    return global_ids_.empty() ? static_cast<std::uint32_t>(index)
                               : global_ids_[index];
  }

  std::vector<ProcessorBoard> boards_;
  std::size_t n_particles_ = 0;
  std::vector<BlockExponents> exps_;
  std::vector<std::uint32_t> global_ids_;
  std::size_t pending_j_writes_ = 0;

  GrapeHostStats stats_;
  double last_call_seconds_ = 0.0;
  double last_call_grape_seconds_ = 0.0;

  // Scratch for the caller-thread paths (prologue, compute_partials).
  // Chunk tasks use only chunk-local banks; `inflight_` rejects a second
  // submission while one is outstanding.
  std::vector<IParticlePacket> packets_buf_;
  std::vector<std::vector<HwAccumulators>> board_partials_;
  std::vector<std::vector<HwNeighborRecorder>> board_nb_banks_;
  bool inflight_ = false;

  // fault tolerance (inactive until enable_fault_tolerance)
  std::shared_ptr<fault::FaultInjector> injector_;
  fault::DetectionConfig det_;
  std::vector<std::uint8_t> chip_dead_;     ///< per flat chip id
  std::vector<Slot> healthy_slots_;         ///< placement ring (slot unused)
  std::vector<StoredJParticle> host_j_;     ///< master copy per particle
  std::vector<std::uint64_t> jmem_sums_;    ///< FNV-1a of each master copy
  std::uint64_t blocks_since_selftest_ = 0;
  std::vector<IParticlePacket> clean_pass_; ///< send-side packet copies
  std::vector<std::uint64_t> packet_sums_;  ///< send-side packet digests
};

}  // namespace g6
