#pragma once
// Processor module (Fig 5) and processor board (Fig 4).
//
// A module is 4 chips plus a summation unit; a board is 8 modules plus a
// broadcast network (same i-particles to every chip) and a reduction
// network (FPGA fixed-point adders — exact merges of the block
// floating-point partials). Chips hold disjoint j-subsets, so a board
// computes the force from its whole j-population on one 48-particle
// i-block per pass.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "grape/chip.hpp"

namespace g6 {

/// Latency of one fixed-point summation stage (module and board levels).
inline constexpr std::uint64_t kSummationLatencyCycles = 8;

class ProcessorModule {
 public:
  ProcessorModule(const MachineConfig& mc, const NumberFormats& fmt);

  std::size_t chip_count() const { return chips_.size(); }
  Chip& chip(std::size_t i) { return chips_[i]; }
  const Chip& chip(std::size_t i) const { return chips_[i]; }

  /// Run one pass on all chips (same i-block, disjoint j) and merge the
  /// partials in the summation unit. `out` must be reset by the caller;
  /// `neighbors` (optional, same length) collects the merged neighbor
  /// lists. Returns cycles = max over chips + summation latency.
  /// Reentrant: concurrent passes with distinct `out` banks are safe (all
  /// scratch is pass-local; the chips only read their j-memory).
  std::uint64_t run_pass(double t, std::span<const IParticlePacket> iblock,
                         double eps2, std::span<HwAccumulators> out,
                         std::span<HwNeighborRecorder> neighbors = {});

 private:
  std::vector<Chip> chips_;
};

class ProcessorBoard {
 public:
  ProcessorBoard(const MachineConfig& mc, const NumberFormats& fmt);

  std::size_t module_count() const { return modules_.size(); }
  std::size_t chip_count() const;

  /// Flat chip addressing 0 .. chips_per_board-1.
  Chip& chip(std::size_t i);

  std::size_t total_j() const;

  /// One pass over the whole board. Returns cycles (max over modules +
  /// board-level reduction). Reentrant like ProcessorModule::run_pass.
  std::uint64_t run_pass(double t, std::span<const IParticlePacket> iblock,
                         double eps2, std::span<HwAccumulators> out,
                         std::span<HwNeighborRecorder> neighbors = {});

 private:
  std::vector<ProcessorModule> modules_;
};

/// Network board (Fig 3): broadcasts i-particles to up to four boards and
/// reduces their partial results. The reduction itself is an exact merge;
/// the constant models the serializer/deserializer + adder latency.
class NetworkBoard {
 public:
  static constexpr std::uint64_t kLatencyCycles = 32;

  /// Reduce per-board partial banks (outer index: board) into `out`,
  /// which must be reset with the same block exponents.
  static void reduce(std::span<const std::vector<HwAccumulators>> per_board,
                     std::span<HwAccumulators> out);
};

}  // namespace g6
