#include "grape/pipeline.hpp"

#include <cmath>

namespace g6 {

PredictorUnit::Predicted PredictorUnit::predict(const StoredJParticle& j,
                                                double t) const {
  const FloatFormat& pf = fmt_.predictor;
  const double dt = pf.quantize(t - j.t0);

  Predicted out;
  out.index = j.index;
  out.mass = j.mass;

  for (int d = 0; d < 3; ++d) {
    // Position correction in predictor floating point (Horner, Eq 6)...
    double c = pf.mul(dt, pf.quantize(1.0 / 24.0 * j.snap[d]));
    c = pf.mul(dt, pf.add(pf.quantize(j.jerk[d] / 6.0), c));
    c = pf.mul(dt, pf.add(pf.quantize(0.5 * j.acc[d]), c));
    c = pf.mul(dt, pf.add(j.vel[d], c));
    // ...added to the 64-bit fixed-point base exactly. Unsigned add: the
    // hardware adder wraps two's-complement; signed overflow would be UB.
    out.pos[d] =
        static_cast<std::int64_t>(static_cast<std::uint64_t>(j.pos[d]) +
                                  static_cast<std::uint64_t>(codec_.encode(c)));

    // Velocity prediction (Eq 7), delivered in the velocity format.
    double v = pf.mul(dt, pf.quantize(j.snap[d] / 6.0));
    v = pf.mul(dt, pf.add(pf.quantize(0.5 * j.jerk[d]), v));
    v = pf.mul(dt, pf.add(j.acc[d], v));
    out.vel[d] = fmt_.velocity.quantize(pf.add(j.vel[d], v));
  }
  return out;
}

void ForcePipeline::interact(const PredictorUnit::Predicted& j,
                             const IParticlePacket& ip, double eps2,
                             HwAccumulators& out,
                             HwNeighborRecorder* neighbors) const {
  if (j.index == ip.index) return;  // hardware self-interaction cut

  const FloatFormat& f = fmt_.pipeline;

  double dx[3];
  double dv[3];
  for (int d = 0; d < 3; ++d) {
    // Exact fixed-point subtract, one rounding into the pipeline float.
    // Computed in unsigned arithmetic: the hardware subtractor wraps
    // two's-complement, and signed overflow would be UB for coordinates
    // pushed into the guard bits.
    const std::int64_t diff =
        static_cast<std::int64_t>(static_cast<std::uint64_t>(j.pos[d]) -
                                  static_cast<std::uint64_t>(ip.pos[d]));
    dx[d] = codec_.decode(diff);
    dv[d] = j.vel[d] - ip.vel[d];
  }

  if (exact_) {
    // Wide-format A/B mode: plain double arithmetic, BFP accumulation.
    // g6lint: begin-allow(raw-float) -- this branch IS the IEEE-double
    // reference path (NumberFormats::exact()); per-op quantization through
    // FloatFormat would be an identity here and only add latency.
    const double r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps2;
    if (neighbors != nullptr) neighbors->record(j.index, r2, ip.h2);
    const double rinv = 1.0 / std::sqrt(r2);
    const double rinv2 = rinv * rinv;
    const double mrinv3 = j.mass * rinv * rinv2;
    const double rv = 3.0 * (dx[0] * dv[0] + dx[1] * dv[1] + dx[2] * dv[2]) * rinv2;
    for (int d = 0; d < 3; ++d) {
      out.acc[d].add(mrinv3 * dx[d]);
      out.jerk[d].add(mrinv3 * (dv[d] - rv * dx[d]));
    }
    out.pot.add(-j.mass * rinv);
    return;
    // g6lint: end-allow(raw-float)
  }

  for (int d = 0; d < 3; ++d) {
    dx[d] = f.quantize(dx[d]);
    dv[d] = f.quantize(dv[d]);
  }

  // r^2 = ((dx^2 + dy^2) + dz^2) + eps^2
  double r2 = f.mul(dx[0], dx[0]);
  r2 = f.add(r2, f.mul(dx[1], dx[1]));
  r2 = f.add(r2, f.mul(dx[2], dx[2]));
  r2 = f.add(r2, f.quantize(eps2));

  // Neighbor comparator sits on the r^2 word (hardware: compare + FIFO).
  if (neighbors != nullptr) neighbors->record(j.index, r2, f.quantize(ip.h2));

  const double rinv = f.rsqrt(r2);
  const double rinv2 = f.mul(rinv, rinv);
  const double mrinv = f.mul(j.mass, rinv);
  const double mrinv3 = f.mul(mrinv, rinv2);

  // 3 (dr . dv) / r^2
  double rv = f.mul(dx[0], dv[0]);
  rv = f.add(rv, f.mul(dx[1], dv[1]));
  rv = f.add(rv, f.mul(dx[2], dv[2]));
  rv = f.mul(rv, rinv2);
  rv = f.mul(rv, 3.0);

  for (int d = 0; d < 3; ++d) {
    out.acc[d].add(f.mul(mrinv3, dx[d]));
    const double jterm = f.sub(dv[d], f.mul(rv, dx[d]));
    out.jerk[d].add(f.mul(mrinv3, jterm));
  }
  out.pot.add(-mrinv);
}

}  // namespace g6
