// Batched fast path of the predictor and force pipelines.
//
// Same dataflow as pipeline.cpp, restructured from per-particle calls into
// flat loops over the JStore / PredictedBatch columns. Bit-identity with
// the scalar path is a hard contract (G6_PIPELINE=check and
// tests/grape/pipeline_crosscheck_test enforce it), which constrains this
// file in three ways:
//
//  * every per-interaction operation sequence is copied from the scalar
//    path verbatim — same ops, same association order, one rounding per
//    emulated unit;
//  * only loop-invariant *pure* values are hoisted (f.quantize(eps2),
//    f.quantize(ip.h2) — the scalar path computes the same word every
//    iteration);
//  * the j-loop runs in ascending slot order per i-particle, so the BFP
//    overflow-flag trajectory and the neighbor FIFO fill order match the
//    scalar path exactly. The accumulated *sums* would be order-independent
//    anyway (exact integer adds); the flags and FIFO are not.
//
// What makes it fast is what is NOT here: no struct gather per (i,j) pair,
// no libm in the inner loop (FloatFormat::quantize is integer bit
// manipulation), and contiguous unit-stride reads the compiler can
// autovectorize. No -ffast-math anywhere.

#include <cmath>
#include <cstdint>

#include "grape/pipeline.hpp"
#include "util/check.hpp"

namespace g6 {

void PredictorUnit::PredictedBatch::resize(std::size_t n) {
  count = n;
  index.resize(n);
  mass.resize(n);
  for (int d = 0; d < 3; ++d) {
    pos[d].resize(n);
    vel[d].resize(n);
  }
  dt.resize(n);
  c.resize(n);
  u.resize(n);
}

void PredictorUnit::predict_batch(const JStore& j, double t,
                                  PredictedBatch& out) const {
  const std::size_t n = j.size();
  out.resize(n);
  G6_REQUIRE(out.index.size() == n && out.dt.size() == n);

  const FloatFormat& pf = fmt_.predictor;

  {
    const auto idx = j.index();
    const auto mass = j.mass();
    for (std::size_t k = 0; k < n; ++k) {
      out.index[k] = idx[k];
      out.mass[k] = mass[k];
    }
  }

  // dt = quantize(t - t0), shared by both polynomials.
  spanops::qsub_from(pf, t, j.t0(), out.dt);

  for (int d = 0; d < 3; ++d) {
    // Position correction (Eq 6 Horner) — the exact op chain of
    // PredictorUnit::predict():
    //   c = mul(dt, q(1/24 * snap))
    //   c = mul(dt, add(q(jerk / 6), c))
    //   c = mul(dt, add(q(0.5 * acc), c))
    //   c = mul(dt, add(vel, c))
    spanops::qscale(pf, 1.0 / 24.0, j.snap(d), out.c);
    spanops::qmul(pf, out.dt, out.c, out.c);
    spanops::qdiv_by(pf, j.jerk(d), 6.0, out.u);
    spanops::qadd(pf, out.u, out.c, out.c);
    spanops::qmul(pf, out.dt, out.c, out.c);
    spanops::qscale(pf, 0.5, j.acc(d), out.u);
    spanops::qadd(pf, out.u, out.c, out.c);
    spanops::qmul(pf, out.dt, out.c, out.c);
    spanops::qadd(pf, j.vel(d), out.c, out.c);
    spanops::qmul(pf, out.dt, out.c, out.c);

    // Added to the fixed-point base exactly; unsigned add = wrapping
    // hardware adder (signed overflow would be UB).
    {
      const auto base = j.pos(d);
      for (std::size_t k = 0; k < n; ++k) {
        out.pos[d][k] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(base[k]) +
            static_cast<std::uint64_t>(codec_.encode(out.c[k])));
      }
    }

    // Velocity prediction (Eq 7), delivered in the velocity format:
    //   v = mul(dt, q(snap / 6))
    //   v = mul(dt, add(q(0.5 * jerk), v))
    //   v = mul(dt, add(acc, v))
    //   vel = velocity.quantize(add(vel, v))
    spanops::qdiv_by(pf, j.snap(d), 6.0, out.u);
    spanops::qmul(pf, out.dt, out.u, out.u);
    spanops::qscale(pf, 0.5, j.jerk(d), out.c);
    spanops::qadd(pf, out.c, out.u, out.u);
    spanops::qmul(pf, out.dt, out.u, out.u);
    spanops::qadd(pf, j.acc(d), out.u, out.u);
    spanops::qmul(pf, out.dt, out.u, out.u);
    spanops::qadd(pf, j.vel(d), out.u, out.u);
    spanops::quantize(fmt_.velocity, out.u, out.vel[d]);
  }
}

void ForcePipeline::interact_batch(const PredictorUnit::PredictedBatch& j,
                                   const IParticlePacket& ip, double eps2,
                                   HwAccumulators& out,
                                   HwNeighborRecorder* neighbors) const {
  G6_REQUIRE(j.index.size() == j.count && j.mass.size() == j.count);
  const std::size_t n = j.count;
  const std::uint32_t self = ip.index;
  const std::uint32_t* idx = j.index.data();
  const double* mass = j.mass.data();
  const std::int64_t* jpos[3];
  const double* jvel[3];
  for (int d = 0; d < 3; ++d) {
    jpos[d] = j.pos[d].data();
    jvel[d] = j.vel[d].data();
  }

  if (exact_) {
    // Wide-format A/B mode, mirroring interact()'s exact branch.
    // g6lint: begin-allow(raw-float) -- this branch IS the IEEE-double
    // reference path (NumberFormats::exact()); per-op quantization through
    // FloatFormat would be an identity here and only add latency.
    for (std::size_t k = 0; k < n; ++k) {
      if (idx[k] == self) continue;  // hardware self-interaction cut
      double dx[3];
      double dv[3];
      for (int d = 0; d < 3; ++d) {
        const std::int64_t diff = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(jpos[d][k]) -
            static_cast<std::uint64_t>(ip.pos[d]));
        dx[d] = codec_.decode(diff);
        dv[d] = jvel[d][k] - ip.vel[d];
      }
      const double r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps2;
      if (neighbors != nullptr) neighbors->record(idx[k], r2, ip.h2);
      const double rinv = 1.0 / std::sqrt(r2);
      const double rinv2 = rinv * rinv;
      const double mrinv3 = mass[k] * rinv * rinv2;
      const double rv =
          3.0 * (dx[0] * dv[0] + dx[1] * dv[1] + dx[2] * dv[2]) * rinv2;
      for (int d = 0; d < 3; ++d) {
        out.acc[d].add(mrinv3 * dx[d]);
        out.jerk[d].add(mrinv3 * (dv[d] - rv * dx[d]));
      }
      out.pot.add(-mass[k] * rinv);
    }
    return;
    // g6lint: end-allow(raw-float)
  }

  const FloatFormat& f = fmt_.pipeline;
  // Loop-invariant pure hoists: the scalar path quantizes these identical
  // words once per interaction; once per call is the same bits.
  const double qeps2 = f.quantize(eps2);
  const double qh2 = f.quantize(ip.h2);

  for (std::size_t k = 0; k < n; ++k) {
    if (idx[k] == self) continue;  // hardware self-interaction cut

    double dx[3];
    double dv[3];
    for (int d = 0; d < 3; ++d) {
      // Exact fixed-point subtract (wrapping, as in interact()), one
      // rounding into the pipeline float.
      const std::int64_t diff = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(jpos[d][k]) -
          static_cast<std::uint64_t>(ip.pos[d]));
      dx[d] = f.quantize(codec_.decode(diff));
      dv[d] = f.quantize(jvel[d][k] - ip.vel[d]);
    }

    // r^2 = ((dx^2 + dy^2) + dz^2) + eps^2
    double r2 = f.mul(dx[0], dx[0]);
    r2 = f.add(r2, f.mul(dx[1], dx[1]));
    r2 = f.add(r2, f.mul(dx[2], dx[2]));
    r2 = f.add(r2, qeps2);

    if (neighbors != nullptr) neighbors->record(idx[k], r2, qh2);

    const double rinv = f.rsqrt(r2);
    const double rinv2 = f.mul(rinv, rinv);
    const double mrinv = f.mul(mass[k], rinv);
    const double mrinv3 = f.mul(mrinv, rinv2);

    // 3 (dr . dv) / r^2
    double rv = f.mul(dx[0], dv[0]);
    rv = f.add(rv, f.mul(dx[1], dv[1]));
    rv = f.add(rv, f.mul(dx[2], dv[2]));
    rv = f.mul(rv, rinv2);
    rv = f.mul(rv, 3.0);

    for (int d = 0; d < 3; ++d) {
      out.acc[d].add(f.mul(mrinv3, dx[d]));
      const double jterm = f.sub(dv[d], f.mul(rv, dx[d]));
      out.jerk[d].add(f.mul(mrinv3, jterm));
    }
    out.pot.add(-mrinv);
  }
}

}  // namespace g6
