#pragma once
// Machine configuration and timing parameters of the emulated GRAPE-6.
//
// The hierarchy follows Figs 1-7 of the paper:
//   chip   = 6 force pipelines x 8-way VMP (48 i-particles in parallel)
//            + predictor pipeline + local j-memory
//   module = 4 chips + summation unit
//   board  = 8 modules + broadcast/reduction network
//   host   = 1 PC driving `boards_per_host` boards through a PCI DMA link
//   cluster= 4 hosts x 4 boards (16 boards as a logical 2D grid)
//   system = 4 clusters (2048 chips, 63.04 Tflops peak)

#include <cstddef>

#include "util/units.hpp"

namespace g6 {

/// Which evaluation path Chip::run_pass drives.
enum class PipelineMode {
  kScalar,   ///< operation-by-operation reference emulator
  kBatched,  ///< SoA fast path; bit-identical to scalar (docs/FASTPATH.md)
  kCheck,    ///< run both and require exact agreement on every result word
};

const char* to_string(PipelineMode m);

/// Process-wide default: `$G6_PIPELINE` in {scalar, batched, check};
/// batched when unset. An unrecognized value is a hard error — a typo
/// silently falling back to a default would invalidate a benchmark or a
/// cross-check run.
PipelineMode default_pipeline_mode();

struct MachineConfig {
  // --- chip microarchitecture (Sec 2.1, 3.4) ---------------------------
  std::size_t pipelines_per_chip = 6;   ///< physical force pipelines
  std::size_t vmp_ways = 8;             ///< virtual pipelines per physical
  double clock_hz = 90.0e6;             ///< 90 MHz
  std::size_t pipeline_latency_cycles = 60;  ///< fill/drain of the deep pipe
  std::size_t neighbor_buffer_per_chip = 256;  ///< on-chip neighbor FIFO depth

  // --- packaging --------------------------------------------------------
  std::size_t chips_per_module = 4;
  std::size_t modules_per_board = 8;
  std::size_t boards_per_host = 4;
  std::size_t hosts_per_cluster = 4;
  std::size_t clusters = 1;

  // --- emulation strategy (host-side, no hardware analogue) -------------
  PipelineMode pipeline_mode = default_pipeline_mode();

  /// i-particles processed in parallel by one chip (48 on GRAPE-6).
  std::size_t i_parallelism() const { return pipelines_per_chip * vmp_ways; }

  std::size_t chips_per_board() const { return chips_per_module * modules_per_board; }
  std::size_t chips_per_host() const { return chips_per_board() * boards_per_host; }
  std::size_t total_hosts() const { return hosts_per_cluster * clusters; }
  std::size_t total_boards() const { return boards_per_host * total_hosts(); }
  std::size_t total_chips() const { return chips_per_board() * total_boards(); }

  /// Interactions per second per chip: one per pipeline per cycle.
  double chip_interactions_per_second() const {
    return static_cast<double>(pipelines_per_chip) * clock_hz;
  }

  /// Peak speed in flops at 57 flops/interaction (Eq 9 convention).
  double chip_peak_flops() const {
    return chip_interactions_per_second() * units::kFlopsPerInteraction;
  }
  double peak_flops() const {
    return chip_peak_flops() * static_cast<double>(total_chips());
  }

  // --- convenience factory configurations -------------------------------
  /// 1 host, 4 boards (Sec 4.1 single-node benchmark).
  static MachineConfig single_host() { return {}; }
  /// One full cluster: 4 hosts, 16 boards (Sec 4.2).
  static MachineConfig single_cluster() {
    MachineConfig c;
    c.clusters = 1;
    return c;
  }
  /// The full 4-cluster, 2048-chip machine (Sec 4.3).
  static MachineConfig full_system() {
    MachineConfig c;
    c.clusters = 4;
    return c;
  }
};

/// Host <-> GRAPE link (PCI DMA) cost model. The per-transaction setup
/// time is what produces the small-N knee in Fig 14 ("the overhead to
/// invoke DMA operations becomes visible").
struct DmaModel {
  double setup_s = 35.0e-6;      ///< per DMA transaction
  double bandwidth_Bps = 133.0e6;  ///< 32-bit/33 MHz PCI

  double transfer_time(std::size_t bytes) const {
    return setup_s + static_cast<double>(bytes) / bandwidth_Bps;
  }
};

/// On-wire packet sizes for the host<->GRAPE link, from the hardware
/// formats: fixed-point positions are 3x8 bytes, velocities etc. 4 bytes.
struct PacketSizes {
  std::size_t i_particle_bytes = 56;  ///< pos(24) + vel(12) + mass/eps/exponents
  std::size_t result_bytes = 56;      ///< acc(24 BFP) + jerk(12) + pot(8) + flags
  std::size_t j_particle_bytes = 104; ///< full predictor data (Sec 2.1)
};

}  // namespace g6
