#include "grape/board.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace g6 {

ProcessorModule::ProcessorModule(const MachineConfig& mc, const NumberFormats& fmt) {
  chips_.reserve(mc.chips_per_module);
  for (std::size_t i = 0; i < mc.chips_per_module; ++i) chips_.emplace_back(mc, fmt);
}

std::uint64_t ProcessorModule::run_pass(double t,
                                        std::span<const IParticlePacket> iblock,
                                        double eps2,
                                        std::span<HwAccumulators> out,
                                        std::span<HwNeighborRecorder> neighbors) {
  G6_REQUIRE(out.size() == iblock.size());
  G6_REQUIRE(neighbors.empty() || neighbors.size() == iblock.size());
  std::uint64_t max_cycles = 0;
  // Thread-local scratch keeps run_pass reentrant for the exec-pool tasks
  // (concurrent passes run on distinct workers; nothing below yields to
  // the pool, so one thread never re-enters mid-pass) while reusing the
  // accumulator banks and neighbor-index heaps across passes.
  static thread_local std::vector<HwAccumulators> scratch;
  static thread_local std::vector<HwNeighborRecorder> nb_scratch;
  scratch.resize(iblock.size());
  const bool want_nb = !neighbors.empty();
  nb_scratch.resize(want_nb ? iblock.size() : 0);
  for (std::size_t c = 0; c < chips_.size(); ++c) {
    // Each chip's partials start from the same block exponents as `out`.
    for (std::size_t k = 0; k < iblock.size(); ++k) {
      scratch[k].reset({out[k].acc[0].block_exp(), out[k].jerk[0].block_exp(),
                        out[k].pot.block_exp()});
      if (want_nb) nb_scratch[k].reset(neighbors[k].capacity);
    }
    max_cycles = std::max(
        max_cycles,
        chips_[c].run_pass(t, iblock, eps2, scratch,
                           want_nb ? std::span<HwNeighborRecorder>(nb_scratch)
                                   : std::span<HwNeighborRecorder>{}));
    for (std::size_t k = 0; k < iblock.size(); ++k) {
      out[k].merge(scratch[k]);
      if (want_nb) neighbors[k].merge(nb_scratch[k]);
    }
  }
  return max_cycles + kSummationLatencyCycles;
}

ProcessorBoard::ProcessorBoard(const MachineConfig& mc, const NumberFormats& fmt) {
  modules_.reserve(mc.modules_per_board);
  for (std::size_t i = 0; i < mc.modules_per_board; ++i) modules_.emplace_back(mc, fmt);
}

std::size_t ProcessorBoard::chip_count() const {
  std::size_t n = 0;
  for (const auto& m : modules_) n += m.chip_count();
  return n;
}

Chip& ProcessorBoard::chip(std::size_t i) {
  for (auto& m : modules_) {
    if (i < m.chip_count()) return m.chip(i);
    i -= m.chip_count();
  }
  G6_REQUIRE_MSG(false, "chip index out of range");
  return modules_.front().chip(0);  // unreachable
}

std::size_t ProcessorBoard::total_j() const {
  std::size_t n = 0;
  for (const auto& m : modules_) {
    for (std::size_t c = 0; c < m.chip_count(); ++c) n += m.chip(c).j_count();
  }
  return n;
}

std::uint64_t ProcessorBoard::run_pass(double t,
                                       std::span<const IParticlePacket> iblock,
                                       double eps2,
                                       std::span<HwAccumulators> out,
                                       std::span<HwNeighborRecorder> neighbors) {
  G6_REQUIRE(out.size() == iblock.size());
  G6_REQUIRE(neighbors.empty() || neighbors.size() == iblock.size());
  std::uint64_t max_cycles = 0;
  // Same thread-local reuse as ProcessorModule::run_pass (distinct
  // variables — module passes nested below do not touch these).
  static thread_local std::vector<HwAccumulators> scratch;
  static thread_local std::vector<HwNeighborRecorder> nb_scratch;
  scratch.resize(iblock.size());
  const bool want_nb = !neighbors.empty();
  nb_scratch.resize(want_nb ? iblock.size() : 0);
  for (auto& mod : modules_) {
    for (std::size_t k = 0; k < iblock.size(); ++k) {
      scratch[k].reset({out[k].acc[0].block_exp(), out[k].jerk[0].block_exp(),
                        out[k].pot.block_exp()});
      if (want_nb) nb_scratch[k].reset(neighbors[k].capacity);
    }
    max_cycles = std::max(
        max_cycles,
        mod.run_pass(t, iblock, eps2, scratch,
                     want_nb ? std::span<HwNeighborRecorder>(nb_scratch)
                             : std::span<HwNeighborRecorder>{}));
    for (std::size_t k = 0; k < iblock.size(); ++k) {
      out[k].merge(scratch[k]);
      if (want_nb) neighbors[k].merge(nb_scratch[k]);
    }
  }
  return max_cycles + kSummationLatencyCycles;
}

void NetworkBoard::reduce(std::span<const std::vector<HwAccumulators>> per_board,
                          std::span<HwAccumulators> out) {
  G6_REQUIRE(!per_board.empty());
  for (const auto& bank : per_board) {
    G6_REQUIRE(bank.size() == out.size());
    for (std::size_t k = 0; k < out.size(); ++k) out[k].merge(bank[k]);
  }
}

}  // namespace g6
