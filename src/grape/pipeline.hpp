#pragma once
// The force-calculation pipeline (Fig 8) and the predictor pipeline of the
// GRAPE-6 chip, emulated operation-by-operation in the hardware number
// formats.
//
// Dataflow per interaction (Eqs 1-3):
//   dx      = x_j - x_i                  exact 64-bit fixed-point subtract
//   dr, dv  -> pipeline float            one rounding at the conversion
//   r2      = dx^2+dy^2+dz^2+eps^2       pipeline float, correctly rounded
//   rinv    = rsqrt(r2), rinv2, m*rinv3  pipeline float
//   acc,jerk,pot contributions           pipeline float
//   accumulation                          block floating point, exact
//
// The block floating-point accumulators make the total independent of the
// order and partitioning of the sum (paper Sec 3.4) — the property tested
// in tests/grape/bfp_invariance_test.cpp.

#include <cstdint>
#include <span>
#include <vector>

#include "hw/accumulators.hpp"
#include "hw/formats.hpp"
#include "hw/jstore.hpp"
#include "util/fixedpoint.hpp"

namespace g6 {

/// Per-i-particle neighbor hardware: a bounded on-chip index FIFO (the
/// real chip raises an overflow flag when the list no longer fits and the
/// host retries with a smaller radius) plus the nearest-neighbor register.
struct HwNeighborRecorder {
  std::vector<std::uint32_t> indices;
  std::size_t capacity = 256;
  bool overflow = false;
  std::uint32_t nearest = 0;
  double nearest_r2 = 0.0;
  bool has_nearest = false;

  /// Re-arm for a new pass. Keeps the index heap: a recorder that lives
  /// across passes (board/module scratch, engine neighbor banks) never
  /// reallocates once it has grown to its working size.
  void reset(std::size_t cap) {
    indices.clear();
    capacity = cap;
    overflow = false;
    has_nearest = false;
    nearest_r2 = 0.0;
  }

  /// Pre-size the FIFO backing store so a whole block's record() calls
  /// are allocation-free from the first pass on.
  void reserve(std::size_t n) { indices.reserve(n); }

  void record(std::uint32_t idx, double r2, double h2) {
    if (!has_nearest || r2 < nearest_r2) {
      nearest_r2 = r2;
      nearest = idx;
      has_nearest = true;
    }
    if (r2 < h2) {
      if (indices.size() < capacity) {
        indices.push_back(idx);
      } else {
        overflow = true;
      }
    }
  }

  /// Merge another chip/board's recorder (reduction network).
  void merge(const HwNeighborRecorder& o) {
    overflow = overflow || o.overflow;
    for (std::uint32_t idx : o.indices) {
      if (indices.size() < capacity) {
        indices.push_back(idx);
      } else {
        overflow = true;
        break;
      }
    }
    if (o.has_nearest && (!has_nearest || o.nearest_r2 < nearest_r2)) {
      nearest = o.nearest;
      nearest_r2 = o.nearest_r2;
      has_nearest = true;
    }
  }
};

/// On-chip predictor pipeline: evaluates Eqs (6)-(7) for a stored
/// j-particle in the (narrower) predictor format. The polynomial
/// correction is computed in floating point and added to the fixed-point
/// position exactly, as in the hardware.
class PredictorUnit {
 public:
  explicit PredictorUnit(const NumberFormats& fmt)
      : fmt_(fmt), codec_(fmt.coord_range) {}

  /// Predicted j-particle ready for the force pipeline.
  struct Predicted {
    std::uint32_t index = 0;
    double mass = 0.0;
    std::int64_t pos[3] = {0, 0, 0};
    Vec3 vel;
  };

  Predicted predict(const StoredJParticle& j, double t) const;

  /// All stored j-particles predicted at once, column-wise — the batched
  /// pipeline's input. Owns its scratch so a pass performs no allocations
  /// after warm-up (resize keeps capacity).
  struct PredictedBatch {
    std::size_t count = 0;
    std::vector<std::uint32_t> index;
    std::vector<double> mass;
    std::vector<std::int64_t> pos[3];
    std::vector<double> vel[3];
    // predictor-internal scratch columns
    std::vector<double> dt;
    std::vector<double> c;
    std::vector<double> u;

    void resize(std::size_t n);
  };

  /// Batched predict: identical per-particle operation sequence to
  /// predict(), evaluated as span sweeps over JStore columns
  /// (hw/formats.hpp spanops). out[k] == predict(j.get(k), t) bit-exactly.
  void predict_batch(const JStore& j, double t, PredictedBatch& out) const;

 private:
  NumberFormats fmt_;
  FixedPointCodec codec_;
};

/// One physical force pipeline. Stateless except for the formats; the
/// chip drives it once per (virtual pipeline, j-particle) pair.
class ForcePipeline {
 public:
  explicit ForcePipeline(const NumberFormats& fmt)
      : fmt_(fmt),
        codec_(fmt.coord_range),
        exact_(fmt.pipeline.frac_bits() >= 52) {}

  /// Accumulate the interaction of predicted j-particle `j` on i-particle
  /// `ip` into `out`. Skips the self-interaction by index compare. When
  /// `neighbors` is non-null the neighbor comparator runs alongside the
  /// force datapath (no extra cycles, as in hardware).
  void interact(const PredictorUnit::Predicted& j, const IParticlePacket& ip,
                double eps2, HwAccumulators& out,
                HwNeighborRecorder* neighbors = nullptr) const;

  /// Batched fast path: stream the whole predicted j-range past one
  /// i-particle in a single flat loop over the contiguous columns. The
  /// per-interaction operation sequence and the ascending-j accumulation
  /// order are exactly those of interact(), so the BFP accumulator words,
  /// overflow flags and neighbor lists are bit-identical to calling
  /// interact() j-by-j (verified by tests/grape/pipeline_crosscheck_test).
  void interact_batch(const PredictorUnit::PredictedBatch& j,
                      const IParticlePacket& ip, double eps2,
                      HwAccumulators& out,
                      HwNeighborRecorder* neighbors = nullptr) const;

 private:
  NumberFormats fmt_;
  FixedPointCodec codec_;
  bool exact_;  ///< wide format: skip per-op rounding (A/B mode)
};

}  // namespace g6
