#include "grape/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/thread_pool.hpp"
#include "fault/checksum.hpp"
#include "util/errors.hpp"
#include "fault/injector.hpp"
#include "grape/selftest.hpp"
#include "obs/context.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"

namespace g6 {

namespace {
/// How many exponent bits to add on an overflow retry.
constexpr int kRetryBump = 8;
constexpr int kMaxRetries = 16;

/// The serve job this thread is working for (0 outside a scope): flight
/// events from detection/recovery paths carry the owning job.
std::uint64_t flight_job() {
  const obs::MetricScope* scope = obs::ScopedMetricScope::current();
  return scope != nullptr ? scope->job() : 0;
}

double max_abs(const Vec3& v) {
  return std::max({std::fabs(v.x), std::fabs(v.y), std::fabs(v.z)});
}

/// Bitwise comparison of two duplicate-pass result banks. Mantissas and
/// overflow flags must agree exactly: the BFP dataflow is deterministic,
/// so any difference is a transient fault in one of the passes.
bool accumulators_match(const std::vector<HwAccumulators>& a,
                        const std::vector<HwAccumulators>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    for (int c = 0; c < 3; ++c) {
      if (a[k].acc[c].mantissa() != b[k].acc[c].mantissa()) return false;
      if (a[k].jerk[c].mantissa() != b[k].jerk[c].mantissa()) return false;
    }
    if (a[k].pot.mantissa() != b[k].pot.mantissa()) return false;
    if (a[k].overflow() != b[k].overflow()) return false;
  }
  return true;
}
}  // namespace

GrapeForceEngine::GrapeForceEngine(const MachineConfig& mc, const NumberFormats& fmt,
                                   double eps, DmaModel dma, PacketSizes packets)
    : mc_(mc), fmt_(fmt), eps_(eps), dma_(dma), packets_(packets) {
  G6_REQUIRE(eps >= 0.0);
  G6_REQUIRE(mc.boards_per_host >= 1);
  boards_.reserve(mc.boards_per_host);
  for (std::size_t b = 0; b < mc.boards_per_host; ++b) boards_.emplace_back(mc, fmt);
}

void GrapeForceEngine::presize_j_memory(std::size_t n) {
  // Analytic pre-sizing of every chip's j-memory before a full upload.
  // Placement is round-robin over a ring of `h` (board, chip) positions,
  // so the chip at ring position r receives ceil((n - r) / h) slots; one
  // reserve_slots() call per chip replaces n incremental one-slot grows
  // through write().
  const std::size_t h = injector_ ? healthy_slots_.size()
                                  : boards_.size() * mc_.chips_per_board();
  for (std::size_t r = 0; r < h && r < n; ++r) {
    const Slot s = place(r);
    boards_[s.board].chip(s.chip).reserve_slots((n - r + h - 1) / h);
  }
}

GrapeForceEngine::Slot GrapeForceEngine::place(std::size_t index) const {
  // With fault tolerance active, round-robin over the *healthy* chip ring:
  // when every chip is healthy the ring enumerates (board = k % nb,
  // chip = k / nb), which reproduces the formula below bit for bit, so
  // enabling fault tolerance does not move a single particle until a chip
  // actually dies.
  if (injector_) {
    const std::size_t h = healthy_slots_.size();
    Slot s = healthy_slots_[index % h];
    s.slot = static_cast<std::uint32_t>(index / h);
    return s;
  }
  // Round-robin over boards, then chips within a board: balanced j-memory
  // population, so pass time = vmp * ceil(N / total_chips) + latency.
  const std::size_t nb = boards_.size();
  const std::size_t nc = mc_.chips_per_board();
  Slot s;
  s.board = static_cast<std::uint32_t>(index % nb);
  s.chip = static_cast<std::uint32_t>((index / nb) % nc);
  s.slot = static_cast<std::uint32_t>(index / (nb * nc));
  return s;
}

void GrapeForceEngine::load_particles(std::span<const JParticle> particles) {
  n_particles_ = particles.size();
  for (auto& b : boards_) {
    for (std::size_t c = 0; c < b.chip_count(); ++c) b.chip(c).clear_memory();
  }
  G6_REQUIRE(global_ids_.empty() || global_ids_.size() == particles.size());
  if (injector_) {
    host_j_.resize(particles.size());
    jmem_sums_.resize(particles.size());
  }
  presize_j_memory(particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const Slot s = place(i);
    const StoredJParticle sp =
        quantize_j_particle(particles[i], hardware_id(i), fmt_);
    boards_[s.board].chip(s.chip).write(s.slot, sp);
    if (injector_) {
      host_j_[i] = sp;
      jmem_sums_[i] = fault::checksum(sp);
    }
  }
  // Fresh exponent guesses; the first force call refines them (and may
  // retry — the "initial calculation" behaviour described in Sec 3.4).
  exps_.assign(particles.size(), BlockExponents{});
  pending_j_writes_ = 0;
  // Initial memory upload.
  stats_.dma_seconds +=
      dma_.transfer_time(particles.size() * packets_.j_particle_bytes);
}

void GrapeForceEngine::update_particle(std::size_t index, const JParticle& p) {
  G6_REQUIRE(index < n_particles_);
  const Slot s = place(index);
  const StoredJParticle sp = quantize_j_particle(p, hardware_id(index), fmt_);
  boards_[s.board].chip(s.chip).write(s.slot, sp);
  if (injector_) {
    host_j_[index] = sp;
    jmem_sums_[index] = fault::checksum(sp);
  }
  ++pending_j_writes_;
}

std::size_t GrapeForceEngine::chip_count() const {
  return boards_.size() * mc_.chips_per_board();
}

Chip& GrapeForceEngine::chip_flat(std::size_t id) {
  const std::size_t nc = mc_.chips_per_board();
  G6_REQUIRE(id < chip_count());
  return boards_[id / nc].chip(id % nc);
}

bool GrapeForceEngine::chip_dead(std::size_t id) const {
  return id < chip_dead_.size() && chip_dead_[id] != 0;
}

std::size_t GrapeForceEngine::dead_chip_count() const {
  return static_cast<std::size_t>(
      std::count(chip_dead_.begin(), chip_dead_.end(), std::uint8_t{1}));
}

std::vector<int> GrapeForceEngine::healthy_chip_ids() const {
  std::vector<int> ids;
  ids.reserve(chip_count());
  for (std::size_t id = 0; id < chip_count(); ++id) {
    if (!chip_dead(id)) ids.push_back(static_cast<int>(id));
  }
  return ids;
}

void GrapeForceEngine::rebuild_healthy_slots() {
  // Enumerate boards-fastest (k -> board = k % nb, chip = k / nb) so the
  // all-healthy ring matches the fault-free placement formula exactly.
  const std::size_t nb = boards_.size();
  const std::size_t nc = mc_.chips_per_board();
  healthy_slots_.clear();
  healthy_slots_.reserve(nb * nc);
  for (std::size_t k = 0; k < nb * nc; ++k) {
    const std::size_t board = k % nb;
    const std::size_t chip = k / nb;
    if (chip_dead(board * nc + chip)) continue;
    healthy_slots_.push_back(Slot{static_cast<std::uint32_t>(board),
                                  static_cast<std::uint32_t>(chip), 0});
  }
}

double GrapeForceEngine::backoff_delay(int attempt) const {
  return det_.backoff_base_s * static_cast<double>(std::uint64_t{1} << attempt);
}

void GrapeForceEngine::enable_fault_tolerance(
    std::shared_ptr<fault::FaultInjector> injector,
    fault::DetectionConfig detection) {
  G6_REQUIRE(injector != nullptr);
  G6_REQUIRE_MSG(n_particles_ == 0,
                 "enable_fault_tolerance must precede load_particles");
  G6_REQUIRE(detection.dead_threshold >= 1);
  G6_REQUIRE(detection.max_retries >= 1);
  G6_REQUIRE(detection.vote_passes >= 1);
  G6_REQUIRE(detection.backoff_base_s >= 0.0);
  injector_ = std::move(injector);
  det_ = detection;
  chip_dead_.assign(chip_count(), 0);
  const std::size_t nc = mc_.chips_per_board();
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    for (std::size_t c = 0; c < nc; ++c) {
      boards_[b].chip(c).attach_fault(injector_.get(),
                                      static_cast<int>(b * nc + c));
    }
  }
  rebuild_healthy_slots();
  // Startup self-test (the paper's operating practice): catch chips that
  // are bad from power-on — configured-stuck or scheduled dead at t <= 0 —
  // before any science touches them.
  FaultCharges charges;
  const auto newly = injector_->activate_hard_failures(
      0.0, mc_.chips_per_module, mc_.chips_per_board());
  (void)newly;  // health check below decides, not the activation oracle
  run_health_check(0.0, charges);
  stats_.grape_seconds += static_cast<double>(charges.cycles) / mc_.clock_hz;
  stats_.dma_seconds += charges.dma_s;
  blocks_since_selftest_ = 0;
  stats_.dead_chips = dead_chip_count();
  obs::MetricsRegistry::global()
      .gauge("fault.dead_chips")
      .set(static_cast<double>(stats_.dead_chips));
  obs::MetricsRegistry::global()
      .gauge("fault.healthy_chips")
      .set(static_cast<double>(healthy_slots_.size()));
}

void GrapeForceEngine::run_health_check(double t, FaultCharges& charges) {
  G6_PHASE("fault.selftest");
  static obs::Counter& c_selftest =
      obs::MetricsRegistry::global().counter("fault.detected.selftest");
  SelfTestOptions opt;
  opt.n_j = det_.selftest_j;
  opt.n_i = det_.selftest_i;
  opt.rel_tol = det_.selftest_rel_tol;

  injector_->set_compute_glitches(false);
  const std::vector<int> healthy = healthy_chip_ids();
  // A chip is declared dead only after failing `dead_threshold` consecutive
  // sweeps; the first sweep covers every healthy chip, re-tests only the
  // suspects.
  std::vector<int> suspects;
  for (int round = 0; round < det_.dead_threshold; ++round) {
    const std::span<const int> targets =
        round == 0 ? std::span<const int>(healthy)
                   : std::span<const int>(suspects);
    const SelfTestReport rep = run_chip_self_test(*this, targets, opt);
    ++stats_.selftests;
    charges.cycles += rep.cycles;
    if (round == 0) {
      suspects = rep.failed;
    } else {
      std::vector<int> confirmed;
      for (int id : suspects) {
        if (std::find(rep.failed.begin(), rep.failed.end(), id) !=
            rep.failed.end()) {
          confirmed.push_back(id);
        }
      }
      suspects = std::move(confirmed);
    }
    if (suspects.empty()) break;
  }
  injector_->set_compute_glitches(true);

  if (suspects.empty()) return;
  c_selftest.add(suspects.size());
  obs::FlightRecorder::global().record(
      obs::FlightEventType::kFaultDetected, flight_job(),
      static_cast<std::int64_t>(suspects.size()), 0, "selftest");
  stats_.selftest_failures += suspects.size();
  for (int id : suspects) {
    obs::log_warn("fault: self-test failed, disabling chip %d", id);
    chip_dead_[static_cast<std::size_t>(id)] = 1;
    // Record engine-detected deaths in the injector too, so its health view
    // and the engine's agree (idempotent for scheduled failures).
    injector_->mark_hard_failed(t, id);
  }
  remap_particles(charges);
}

void GrapeForceEngine::remap_particles(FaultCharges& charges) {
  G6_PHASE("fault.remap");
  static obs::Counter& c_remaps =
      obs::MetricsRegistry::global().counter("fault.recovered.remaps");
  static obs::Gauge& g_dead =
      obs::MetricsRegistry::global().gauge("fault.dead_chips");
  static obs::Gauge& g_healthy =
      obs::MetricsRegistry::global().gauge("fault.healthy_chips");
  rebuild_healthy_slots();
  if (healthy_slots_.empty()) {
    throw fault::HardFault("all chips failed; no healthy pipelines remain");
  }
  for (auto& b : boards_) {
    for (std::size_t c = 0; c < b.chip_count(); ++c) b.chip(c).clear_memory();
  }
  presize_j_memory(n_particles_);
  for (std::size_t i = 0; i < n_particles_; ++i) {
    const Slot s = place(i);
    boards_[s.board].chip(s.chip).write(s.slot, host_j_[i]);
  }
  pending_j_writes_ = 0;
  if (n_particles_ > 0) {
    // Full j-memory reload over the DMA link.
    charges.dma_s += dma_.transfer_time(n_particles_ * packets_.j_particle_bytes);
  }
  ++stats_.remaps;
  c_remaps.add(1);
  stats_.dead_chips = dead_chip_count();
  g_dead.set(static_cast<double>(stats_.dead_chips));
  g_healthy.set(static_cast<double>(healthy_slots_.size()));
}

void GrapeForceEngine::inject_and_scrub_j_memory(double t, FaultCharges& charges) {
  if (injector_->plan().jmem_flip_rate <= 0.0) return;
  static obs::Counter& c_scrub =
      obs::MetricsRegistry::global().counter("fault.detected.scrub");
  static obs::Counter& c_rewrites =
      obs::MetricsRegistry::global().counter("fault.recovered.jmem_rewrites");
  std::uint64_t injected = 0;
  for (std::size_t id = 0; id < chip_count(); ++id) {
    if (chip_dead(id)) continue;
    injected += injector_->corrupt_j_memory(t, static_cast<int>(id),
                                            chip_flat(id).memory());
  }
  if (!det_.scrub_j_memory) return;
  // Scrub: every word is checked against the host-side master digest, so
  // the memory is provably clean after this loop — each injected flip is
  // detected (FNV-1a catches any single-bit change) and rewritten.
  std::uint64_t rewrites = 0;
  for (std::size_t i = 0; i < n_particles_; ++i) {
    const Slot s = place(i);
    JStore& mem = boards_[s.board].chip(s.chip).memory();
    if (fault::checksum(mem.get(s.slot)) != jmem_sums_[i]) {
      mem.set(s.slot, host_j_[i]);
      ++rewrites;
    }
  }
  G6_ASSERT(rewrites == injected);
  if (rewrites > 0) {
    c_scrub.add(rewrites);
    c_rewrites.add(rewrites);
    obs::FlightRecorder::global().record(
        obs::FlightEventType::kFaultDetected, flight_job(),
        static_cast<std::int64_t>(rewrites), 0, "scrub");
    stats_.jmem_rewrites += rewrites;
    charges.dma_s += dma_.transfer_time(rewrites * packets_.j_particle_bytes);
  }
}

GrapeForceEngine::FaultCharges GrapeForceEngine::fault_prologue(double t) {
  FaultCharges charges;
  // Scheduled hard failures whose time has come turn chips bad *now*; the
  // anomaly triggers an immediate self-test sweep (detection still goes
  // through the test, not through the injection oracle).
  const std::vector<int> newly = injector_->activate_hard_failures(
      t, mc_.chips_per_module, mc_.chips_per_board());
  bool need_check = false;
  for (int id : newly) {
    if (static_cast<std::size_t>(id) < chip_count()) {
      need_check = true;
    } else {
      obs::log_warn("fault: scheduled failure for chip %d outside this host; ignored",
                    id);
    }
  }
  if (det_.selftest_interval > 0) {
    ++blocks_since_selftest_;
    if (blocks_since_selftest_ >=
        static_cast<std::uint64_t>(det_.selftest_interval)) {
      need_check = true;
    }
  }
  if (need_check) {
    run_health_check(t, charges);
    blocks_since_selftest_ = 0;
  }
  inject_and_scrub_j_memory(t, charges);
  return charges;
}

GrapeForceEngine::PassResult GrapeForceEngine::run_boards(
    double t, std::span<const IParticlePacket> pass,
    std::span<const BlockExponents> exps, std::vector<HwAccumulators>& out,
    std::span<HwNeighborRecorder> neighbors,
    std::vector<std::vector<HwAccumulators>>& board_bank,
    std::vector<std::vector<HwNeighborRecorder>>& nb_banks, bool parallel) {
  G6_REQUIRE(pass.size() <= mc_.i_parallelism());
  G6_REQUIRE(exps.size() == pass.size());
  G6_REQUIRE(neighbors.empty() || neighbors.size() == pass.size());
  const double eps2 = eps_ * eps_;
  const bool want_nb = !neighbors.empty();

  out.resize(pass.size());
  for (std::size_t k = 0; k < pass.size(); ++k) out[k].reset(exps[k]);

  // One partial bank (and neighbor bank) per board so the boards can run
  // as concurrent tasks; everything merges below in fixed board order —
  // the schedule never touches the result.
  board_bank.resize(boards_.size());
  if (want_nb) nb_banks.resize(boards_.size());
  std::vector<std::uint64_t> board_cycles(boards_.size(), 0);

  const auto run_one = [&](std::size_t b) {
    auto& bank = board_bank[b];
    bank.resize(pass.size());
    for (std::size_t k = 0; k < pass.size(); ++k) bank[k].reset(exps[k]);
    std::span<HwNeighborRecorder> nb{};
    if (want_nb) {
      nb_banks[b].resize(pass.size());
      for (std::size_t k = 0; k < pass.size(); ++k) {
        nb_banks[b][k].reset(neighbors[k].capacity);
      }
      nb = nb_banks[b];
    }
    board_cycles[b] = boards_[b].run_pass(t, pass, eps2, bank, nb);
  };

  if (parallel && boards_.size() > 1) {
    exec::TaskGroup group;
    for (std::size_t b = 0; b < boards_.size(); ++b) {
      group.run([&run_one, b] { run_one(b); });
    }
    group.wait();
  } else {
    for (std::size_t b = 0; b < boards_.size(); ++b) run_one(b);
  }

  std::uint64_t max_board_cycles = 0;
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    max_board_cycles = std::max(max_board_cycles, board_cycles[b]);
    if (want_nb) {
      for (std::size_t k = 0; k < pass.size(); ++k) {
        neighbors[k].merge(nb_banks[b][k]);
      }
    }
  }
  NetworkBoard::reduce(board_bank, out);

  PassResult r;
  r.cycles = max_board_cycles + NetworkBoard::kLatencyCycles;
  for (const auto& b : boards_) {
    r.interactions += static_cast<std::uint64_t>(b.total_j()) * pass.size();
  }
  return r;
}

std::uint64_t GrapeForceEngine::compute_partials(
    double t, std::span<const IParticlePacket> pass,
    std::span<const BlockExponents> exps, std::vector<HwAccumulators>& out,
    std::span<HwNeighborRecorder> neighbors) {
  const bool parallel =
      exec::ThreadPool::global().worker_count() > 0 && injector_ == nullptr;
  const PassResult r = run_boards(t, pass, exps, out, neighbors,
                                  board_partials_, board_nb_banks_, parallel);
  ++stats_.passes;
  stats_.interactions += r.interactions;
  return r.cycles;
}

void GrapeForceEngine::compute_forces(double t, std::span<const PredictedState> block,
                                      std::span<Force> out) {
  G6_PHASE("grape.run_block");
  submit_block(t, block, {}, out, {}).wait();
}

void GrapeForceEngine::compute_forces_neighbors(
    double t, std::span<const PredictedState> block, std::span<const double> radii2,
    std::span<Force> out, std::span<NeighborResult> neighbors) {
  G6_REQUIRE(radii2.size() == block.size());
  G6_REQUIRE(neighbors.size() == block.size());
  G6_PHASE("grape.run_block");
  submit_block(t, block, radii2, out, neighbors).wait();
}

ForceTicket GrapeForceEngine::submit_forces(double t,
                                            std::span<const PredictedState> block,
                                            std::span<Force> out) {
  return submit_block(t, block, {}, out, {});
}

ForceTicket GrapeForceEngine::submit_block(double t,
                                           std::span<const PredictedState> block,
                                           std::span<const double> radii2,
                                           std::span<Force> out,
                                           std::span<NeighborResult> neighbors) {
  G6_REQUIRE(block.size() == out.size());
  G6_REQUIRE(radii2.empty() || radii2.size() == block.size());
  G6_REQUIRE(radii2.size() == neighbors.size());
  G6_REQUIRE_MSG(!inflight_,
                 "GrapeForceEngine: a force submission is already in flight");
  G6_PHASE("grape.submit");
  const bool want_nb = !neighbors.empty();

  auto cs = std::make_shared<CallState>();
  cs->block_size = block.size();
  cs->want_nb = want_nb;

  // Fault housekeeping first (hard-failure activation, health checks,
  // j-memory inject + scrub) so every pass below runs on clean, healthy
  // hardware. A remap inside the prologue rewrites all memories, making
  // any pending incremental writes moot. Throws propagate from here, with
  // no ticket issued and no state in flight.
  if (injector_) {
    const FaultCharges fc = fault_prologue(t);
    cs->prologue_cycles += fc.cycles;
    cs->prologue_seconds += fc.dma_s;
  }

  // Write back the particles corrected since the previous call (one DMA).
  if (pending_j_writes_ > 0) {
    G6_PHASE("grape.j-send");
    cs->prologue_dma_bytes += pending_j_writes_ * packets_.j_particle_bytes;
    cs->prologue_seconds +=
        dma_.transfer_time(pending_j_writes_ * packets_.j_particle_bytes);
    pending_j_writes_ = 0;
  }

  // Send the i-block (one DMA).
  cs->prologue_dma_bytes += block.size() * packets_.i_particle_bytes;
  cs->prologue_seconds +=
      dma_.transfer_time(block.size() * packets_.i_particle_bytes);

  packets_buf_.resize(block.size());
  for (std::size_t k = 0; k < block.size(); ++k) {
    packets_buf_[k] = quantize_i_particle(block[k], fmt_);
    if (want_nb) packets_buf_[k].h2 = radii2[k];
  }

  // Pre-grow the exponent cache to cover every global id in this block, so
  // the chunk tasks never reallocate it concurrently; their refinement
  // writes are then disjoint per particle.
  std::size_t need = exps_.size();
  for (const auto& p : block) {
    need = std::max(need, static_cast<std::size_t>(p.index) + 1);
  }
  if (need > exps_.size()) exps_.resize(need);

  // One chunk per hardware pass. An empty block still gets one (empty)
  // chunk so the ticket has something to join.
  const std::size_t chunk = mc_.i_parallelism();
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t begin = 0; begin < block.size(); begin += chunk) {
    ranges.emplace_back(begin, std::min(block.size(), begin + chunk));
  }
  if (ranges.empty()) ranges.emplace_back(0, 0);
  cs->accts.resize(ranges.size());

  // The injector's RNG stream (and the vote/retransmit scratch) requires
  // the serial inline path; it also makes TransientFaults surface from
  // this very call, before the caller overlaps anything.
  auto& pool = exec::ThreadPool::global();
  const bool parallel = pool.worker_count() > 0 && injector_ == nullptr;

  inflight_ = true;
  ForceTicket tk = ForceTicket::make(
      ranges,
      [this, cs](bool ok) {
        if (ok) fold_call(*cs);
        inflight_ = false;
      },
      pool);
  for (std::size_t c = 0; c < ranges.size(); ++c) {
    const std::size_t b = ranges[c].first;
    const std::size_t e = ranges[c].second;
    tk.dispatch(
        c,
        [this, cs, t, block, radii2, out, neighbors, b, e, c, parallel] {
          if (b == e) return;
          run_chunk(t, block, radii2, out, neighbors, b, e, parallel,
                    cs->accts[c]);
        },
        parallel);
  }
  return tk;
}

void GrapeForceEngine::run_chunk(double t, std::span<const PredictedState> block,
                                 std::span<const double> radii2,
                                 std::span<Force> out,
                                 std::span<NeighborResult> neighbors,
                                 std::size_t begin, std::size_t end,
                                 bool parallel, ChunkAcct& acct) {
  (void)radii2;  // radii already folded into the packets by the prologue
  const bool want_nb = !neighbors.empty();
  const std::span<const IParticlePacket> pass{packets_buf_.data() + begin,
                                              end - begin};
  if (injector_ && injector_->plan().ipacket_rate > 0.0) {
    const std::span<IParticlePacket> pass_mut{packets_buf_.data() + begin,
                                              end - begin};
    verify_i_packets(t, pass_mut, acct.extra_seconds, acct.extra_dma_bytes);
  }
  std::vector<BlockExponents> pass_exps(pass.size());
  for (std::size_t k = 0; k < pass.size(); ++k) {
    // i-particles are keyed by *global* id, which is not necessarily a
    // locally stored j-particle (probe points, foreign i-particles in
    // multi-host runs): fall back to the fresh-guess exponents.
    const std::uint32_t gid = block[begin + k].index;
    pass_exps[k] = gid < exps_.size() ? exps_[gid] : BlockExponents{};
  }

  // Chunk-local result banks: concurrent chunks share nothing but the
  // (read-only) packets and the boards, whose passes are reentrant.
  std::vector<HwAccumulators> merged;
  std::vector<std::vector<HwAccumulators>> board_bank;
  std::vector<std::vector<HwNeighborRecorder>> nb_banks;
  std::vector<HwAccumulators> vote_bank;
  std::vector<std::vector<HwAccumulators>> vote_board_bank;
  std::vector<HwNeighborRecorder> pass_nb;
  // Total neighbor capacity visible to the host: one FIFO per chip.
  const std::size_t host_nb_capacity =
      mc_.neighbor_buffer_per_chip * mc_.chips_per_host();
  const bool vote = injector_ && det_.vote_passes > 1;

  for (int attempt = 0;; ++attempt) {
    // One span per hardware pass; overflow retries show up as repeats.
    G6_PHASE("grape.pipeline");
    for (int vote_try = 0;; ++vote_try) {
      if (want_nb) {
        pass_nb.resize(pass.size());
        for (auto& nb : pass_nb) nb.reset(host_nb_capacity);
      }
      const std::uint64_t glitches0 =
          injector_ ? injector_->counts().compute_glitches : 0;
      PassResult r = run_boards(t, pass, pass_exps, merged,
                                want_nb ? std::span<HwNeighborRecorder>(pass_nb)
                                        : std::span<HwNeighborRecorder>{},
                                board_bank, nb_banks, parallel);
      acct.cycles += r.cycles;
      ++acct.passes;
      acct.interactions += r.interactions;
      if (!vote) break;
      // Duplicate-pass voting: run the pass a second time (no neighbor
      // collection — lists come from the first pass) and require the
      // two BFP result banks to agree bit for bit. Vote mode implies an
      // injector, so this path is always on the caller thread.
      r = run_boards(t, pass, pass_exps, vote_bank, {}, vote_board_bank,
                     nb_banks, parallel);
      acct.cycles += r.cycles;
      ++acct.passes;
      acct.interactions += r.interactions;
      if (accumulators_match(merged, vote_bank)) break;
      static obs::Counter& c_vote =
          obs::MetricsRegistry::global().counter("fault.detected.vote");
      static obs::Counter& c_vote_retries = obs::MetricsRegistry::global()
                                                .counter("fault.recovered.vote_retries");
      const std::uint64_t glitched =
          injector_->counts().compute_glitches - glitches0;
      c_vote.add(glitched > 0 ? glitched : 1);
      c_vote_retries.add(1);
      obs::FlightRecorder::global().record(
          obs::FlightEventType::kFaultDetected, flight_job(),
          static_cast<std::int64_t>(glitched), vote_try, "vote");
      obs::FlightRecorder::global().record(obs::FlightEventType::kRetry,
                                           flight_job(), vote_try, 0, "vote");
      ++stats_.vote_retries;
      const double delay = backoff_delay(vote_try);
      acct.extra_seconds += delay;
      stats_.backoff_seconds += delay;
      if (vote_try >= det_.max_retries) {
        throw fault::RetryExhausted(
            "duplicate-pass vote never agreed; persistent compute fault");
      }
    }
    bool overflow = false;
    for (std::size_t k = 0; k < pass.size(); ++k) {
      if (merged[k].overflow()) {
        overflow = true;
        pass_exps[k].acc += kRetryBump;
        pass_exps[k].jerk += kRetryBump;
        pass_exps[k].pot += kRetryBump;
      }
    }
    if (!overflow) break;
    ++acct.retries;
    if (attempt >= kMaxRetries) {
      throw fault::RetryExhausted("block exponent retry did not converge");
    }
  }

  G6_PHASE("grape.reduce");
  for (std::size_t k = 0; k < pass.size(); ++k) {
    const Force f = merged[k].decode();
    out[begin + k] = f;
    // Remember refined exponents for the next step (margin 2 bits). The
    // prologue pre-grew the cache past every id in this block, so this
    // write never reallocates under a concurrent chunk.
    const std::uint32_t gid = block[begin + k].index;
    G6_ASSERT(gid < exps_.size());
    exps_[gid].acc = choose_block_exponent(max_abs(f.acc));
    exps_[gid].jerk = choose_block_exponent(max_abs(f.jerk));
    exps_[gid].pot = choose_block_exponent(std::fabs(f.pot));
    if (want_nb) {
      NeighborResult& nb = neighbors[begin + k];
      nb.indices = std::move(pass_nb[k].indices);
      nb.overflow = pass_nb[k].overflow;
      nb.nearest = pass_nb[k].has_nearest ? pass_nb[k].nearest : gid;
      nb.nearest_r2 = pass_nb[k].nearest_r2;
      acct.neighbor_words += nb.indices.size();
    }
  }
}

void GrapeForceEngine::fold_call(const CallState& cs) {
  // Instrument references resolve once; the registry keeps them alive and
  // reset() zeroes in place, so caching across calls is safe.
  static obs::Counter& c_cycles =
      obs::MetricsRegistry::global().counter("grape.pipeline.cycles");
  static obs::Counter& c_dma_bytes =
      obs::MetricsRegistry::global().counter("grape.dma.bytes");
  static obs::Counter& c_passes =
      obs::MetricsRegistry::global().counter("grape.passes");
  static obs::Counter& c_retries =
      obs::MetricsRegistry::global().counter("grape.retries");
  static obs::Counter& c_interactions =
      obs::MetricsRegistry::global().counter("grape.interactions");

  std::uint64_t cycles = cs.prologue_cycles;
  std::uint64_t passes = 0;
  std::uint64_t retries = 0;
  std::uint64_t interactions = 0;
  std::uint64_t dma_bytes = cs.prologue_dma_bytes;
  std::size_t neighbor_words = 0;
  double call_seconds = cs.prologue_seconds;
  for (const ChunkAcct& a : cs.accts) {
    cycles += a.cycles;
    passes += a.passes;
    retries += a.retries;
    interactions += a.interactions;
    dma_bytes += a.extra_dma_bytes;
    call_seconds += a.extra_seconds;
    neighbor_words += a.neighbor_words;
  }

  // Read back the results (one DMA), plus the neighbor lists (one more
  // transaction of 4-byte index words) when requested.
  dma_bytes += cs.block_size * packets_.result_bytes;
  call_seconds += dma_.transfer_time(cs.block_size * packets_.result_bytes);
  if (cs.want_nb) {
    dma_bytes += neighbor_words * 4;
    call_seconds += dma_.transfer_time(neighbor_words * 4);
  }
  call_seconds += static_cast<double>(cycles) / mc_.clock_hz;

  c_cycles.add(cycles);
  c_dma_bytes.add(dma_bytes);
  c_passes.add(passes);
  c_retries.add(retries);
  c_interactions.add(interactions);

  const double grape_seconds = static_cast<double>(cycles) / mc_.clock_hz;
  stats_.passes += passes;
  stats_.retries += retries;
  stats_.interactions += interactions;
  stats_.grape_seconds += grape_seconds;
  stats_.dma_seconds += call_seconds - grape_seconds;
  ++stats_.force_calls;
  last_call_seconds_ = call_seconds;
  last_call_grape_seconds_ = grape_seconds;
}

void GrapeForceEngine::verify_i_packets(double t, std::span<IParticlePacket> pass,
                                        double& call_seconds,
                                        std::uint64_t& dma_bytes) {
  static obs::Counter& c_checksum =
      obs::MetricsRegistry::global().counter("fault.detected.checksum");
  static obs::Counter& c_retransmits = obs::MetricsRegistry::global().counter(
      "fault.recovered.packet_retransmits");
  if (!det_.packet_checksums) {
    // No detection: corruption flows straight into the pipelines.
    injector_->corrupt_i_packets(t, pass);
    return;
  }
  // Send-side copies + digests, taken before the link can corrupt anything.
  clean_pass_.assign(pass.begin(), pass.end());
  packet_sums_.resize(pass.size());
  for (std::size_t k = 0; k < pass.size(); ++k) {
    packet_sums_[k] = fault::checksum(clean_pass_[k]);
  }
  injector_->corrupt_i_packets(t, pass);
  std::vector<std::size_t> bad;
  for (int attempt = 0;; ++attempt) {
    // Receive-side verification: a digest mismatch (FNV-1a catches any
    // single-bit flip) triggers a retransmit of that packet, which may
    // itself be corrupted again — hence the bounded outer loop.
    bad.clear();
    for (std::size_t k = 0; k < pass.size(); ++k) {
      if (fault::checksum(pass[k]) != packet_sums_[k]) {
        pass[k] = clean_pass_[k];
        bad.push_back(k);
      }
    }
    if (bad.empty()) return;
    c_checksum.add(bad.size());
    c_retransmits.add(bad.size());
    obs::FlightRecorder::global().record(
        obs::FlightEventType::kFaultDetected, flight_job(),
        static_cast<std::int64_t>(bad.size()), attempt, "checksum");
    obs::FlightRecorder::global().record(obs::FlightEventType::kRetry,
                                         flight_job(), attempt, 0,
                                         "retransmit");
    stats_.packet_retransmits += bad.size();
    const double backoff = backoff_delay(attempt);
    call_seconds += dma_.transfer_time(bad.size() * packets_.i_particle_bytes) +
                    backoff;
    stats_.backoff_seconds += backoff;
    dma_bytes += bad.size() * packets_.i_particle_bytes;
    if (attempt >= det_.max_retries) {
      throw fault::RetryExhausted(
          "i-packet retransmit retries exhausted; link unusable");
    }
    // Only the retransmitted packets traverse the fault channel again.
    for (std::size_t k : bad) {
      injector_->corrupt_i_packets(t, std::span<IParticlePacket>{&pass[k], 1});
    }
  }
}

}  // namespace g6
