#include "grape/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"

namespace g6 {

namespace {
/// How many exponent bits to add on an overflow retry.
constexpr int kRetryBump = 8;
constexpr int kMaxRetries = 16;

double max_abs(const Vec3& v) {
  return std::max({std::fabs(v.x), std::fabs(v.y), std::fabs(v.z)});
}
}  // namespace

GrapeForceEngine::GrapeForceEngine(const MachineConfig& mc, const NumberFormats& fmt,
                                   double eps, DmaModel dma, PacketSizes packets)
    : mc_(mc), fmt_(fmt), eps_(eps), dma_(dma), packets_(packets) {
  G6_REQUIRE(eps >= 0.0);
  G6_REQUIRE(mc.boards_per_host >= 1);
  boards_.reserve(mc.boards_per_host);
  for (std::size_t b = 0; b < mc.boards_per_host; ++b) boards_.emplace_back(mc, fmt);
}

GrapeForceEngine::Slot GrapeForceEngine::place(std::size_t index) const {
  // Round-robin over boards, then chips within a board: balanced j-memory
  // population, so pass time = vmp * ceil(N / total_chips) + latency.
  const std::size_t nb = boards_.size();
  const std::size_t nc = mc_.chips_per_board();
  Slot s;
  s.board = static_cast<std::uint32_t>(index % nb);
  s.chip = static_cast<std::uint32_t>((index / nb) % nc);
  s.slot = static_cast<std::uint32_t>(index / (nb * nc));
  return s;
}

void GrapeForceEngine::load_particles(std::span<const JParticle> particles) {
  n_particles_ = particles.size();
  for (auto& b : boards_) {
    for (std::size_t c = 0; c < b.chip_count(); ++c) b.chip(c).clear_memory();
  }
  G6_REQUIRE(global_ids_.empty() || global_ids_.size() == particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const Slot s = place(i);
    boards_[s.board].chip(s.chip).write(
        s.slot, quantize_j_particle(particles[i], hardware_id(i), fmt_));
  }
  // Fresh exponent guesses; the first force call refines them (and may
  // retry — the "initial calculation" behaviour described in Sec 3.4).
  exps_.assign(particles.size(), BlockExponents{});
  pending_j_writes_ = 0;
  // Initial memory upload.
  stats_.dma_seconds +=
      dma_.transfer_time(particles.size() * packets_.j_particle_bytes);
}

void GrapeForceEngine::update_particle(std::size_t index, const JParticle& p) {
  G6_REQUIRE(index < n_particles_);
  const Slot s = place(index);
  boards_[s.board].chip(s.chip).write(
      s.slot, quantize_j_particle(p, hardware_id(index), fmt_));
  ++pending_j_writes_;
}

std::uint64_t GrapeForceEngine::compute_partials(
    double t, std::span<const IParticlePacket> pass,
    std::span<const BlockExponents> exps, std::vector<HwAccumulators>& out,
    std::span<HwNeighborRecorder> neighbors) {
  G6_REQUIRE(pass.size() <= mc_.i_parallelism());
  G6_REQUIRE(exps.size() == pass.size());
  G6_REQUIRE(neighbors.empty() || neighbors.size() == pass.size());
  const double eps2 = eps_ * eps_;
  const bool want_nb = !neighbors.empty();

  out.resize(pass.size());
  for (std::size_t k = 0; k < pass.size(); ++k) out[k].reset(exps[k]);

  std::vector<HwNeighborRecorder> nb_bank;
  board_partials_.resize(boards_.size());
  std::uint64_t max_board_cycles = 0;
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    auto& bank = board_partials_[b];
    bank.resize(pass.size());
    for (std::size_t k = 0; k < pass.size(); ++k) bank[k].reset(exps[k]);
    if (want_nb) {
      nb_bank.resize(pass.size());
      for (std::size_t k = 0; k < pass.size(); ++k) {
        nb_bank[k].reset(neighbors[k].capacity);
      }
    }
    max_board_cycles = std::max(
        max_board_cycles,
        boards_[b].run_pass(t, pass, eps2, bank,
                            want_nb ? std::span<HwNeighborRecorder>(nb_bank)
                                    : std::span<HwNeighborRecorder>{}));
    if (want_nb) {
      for (std::size_t k = 0; k < pass.size(); ++k) neighbors[k].merge(nb_bank[k]);
    }
  }
  NetworkBoard::reduce(board_partials_, out);

  ++stats_.passes;
  for (const auto& b : boards_) {
    stats_.interactions += static_cast<std::uint64_t>(b.total_j()) * pass.size();
  }
  return max_board_cycles + NetworkBoard::kLatencyCycles;
}

void GrapeForceEngine::compute_forces(double t, std::span<const PredictedState> block,
                                      std::span<Force> out) {
  run_block(t, block, {}, out, {});
}

void GrapeForceEngine::compute_forces_neighbors(
    double t, std::span<const PredictedState> block, std::span<const double> radii2,
    std::span<Force> out, std::span<NeighborResult> neighbors) {
  G6_REQUIRE(radii2.size() == block.size());
  G6_REQUIRE(neighbors.size() == block.size());
  run_block(t, block, radii2, out, neighbors);
}

void GrapeForceEngine::run_block(double t, std::span<const PredictedState> block,
                                 std::span<const double> radii2,
                                 std::span<Force> out,
                                 std::span<NeighborResult> neighbors) {
  G6_REQUIRE(block.size() == out.size());
  G6_PHASE("grape.run_block");
  // Instrument references resolve once; the registry keeps them alive and
  // reset() zeroes in place, so caching across calls is safe.
  static obs::Counter& c_cycles =
      obs::MetricsRegistry::global().counter("grape.pipeline.cycles");
  static obs::Counter& c_dma_bytes =
      obs::MetricsRegistry::global().counter("grape.dma.bytes");
  static obs::Counter& c_passes =
      obs::MetricsRegistry::global().counter("grape.passes");
  static obs::Counter& c_retries =
      obs::MetricsRegistry::global().counter("grape.retries");
  static obs::Counter& c_interactions =
      obs::MetricsRegistry::global().counter("grape.interactions");
  const bool want_nb = !neighbors.empty();
  double call_seconds = 0.0;
  std::uint64_t dma_bytes = 0;
  const std::uint64_t passes0 = stats_.passes;
  const std::uint64_t retries0 = stats_.retries;
  const std::uint64_t interactions0 = stats_.interactions;

  // Write back the particles corrected since the previous call (one DMA).
  if (pending_j_writes_ > 0) {
    G6_PHASE("grape.j-send");
    dma_bytes += pending_j_writes_ * packets_.j_particle_bytes;
    call_seconds += dma_.transfer_time(pending_j_writes_ * packets_.j_particle_bytes);
    pending_j_writes_ = 0;
  }

  // Send the i-block (one DMA).
  dma_bytes += block.size() * packets_.i_particle_bytes;
  call_seconds += dma_.transfer_time(block.size() * packets_.i_particle_bytes);

  packets_buf_.resize(block.size());
  for (std::size_t k = 0; k < block.size(); ++k) {
    packets_buf_[k] = quantize_i_particle(block[k], fmt_);
    if (want_nb) packets_buf_[k].h2 = radii2[k];
  }

  // Total neighbor capacity visible to the host: one FIFO per chip.
  const std::size_t host_nb_capacity =
      mc_.neighbor_buffer_per_chip * mc_.chips_per_host();
  std::vector<HwNeighborRecorder> pass_nb;

  std::uint64_t cycles = 0;
  std::size_t neighbor_words = 0;
  const std::size_t chunk = mc_.i_parallelism();
  std::vector<BlockExponents> pass_exps;
  for (std::size_t begin = 0; begin < block.size(); begin += chunk) {
    const std::size_t end = std::min(block.size(), begin + chunk);
    const std::span<const IParticlePacket> pass{packets_buf_.data() + begin,
                                                end - begin};
    pass_exps.resize(pass.size());
    for (std::size_t k = 0; k < pass.size(); ++k) {
      // i-particles are keyed by *global* id, which is not necessarily a
      // locally stored j-particle (probe points, foreign i-particles in
      // multi-host runs): fall back to the fresh-guess exponents.
      const std::uint32_t gid = block[begin + k].index;
      pass_exps[k] = gid < exps_.size() ? exps_[gid] : BlockExponents{};
    }

    for (int attempt = 0;; ++attempt) {
      // One span per hardware pass; overflow retries show up as repeats.
      G6_PHASE("grape.pipeline");
      if (want_nb) {
        pass_nb.resize(pass.size());
        for (auto& nb : pass_nb) nb.reset(host_nb_capacity);
      }
      cycles += compute_partials(t, pass, pass_exps, merged_,
                                 want_nb ? std::span<HwNeighborRecorder>(pass_nb)
                                         : std::span<HwNeighborRecorder>{});
      bool overflow = false;
      for (std::size_t k = 0; k < pass.size(); ++k) {
        if (merged_[k].overflow()) {
          overflow = true;
          pass_exps[k].acc += kRetryBump;
          pass_exps[k].jerk += kRetryBump;
          pass_exps[k].pot += kRetryBump;
        }
      }
      if (!overflow) break;
      ++stats_.retries;
      G6_REQUIRE_MSG(attempt < kMaxRetries, "block exponent retry did not converge");
    }

    G6_PHASE("grape.reduce");
    for (std::size_t k = 0; k < pass.size(); ++k) {
      const Force f = merged_[k].decode();
      out[begin + k] = f;
      // Remember refined exponents for the next step (margin 2 bits). The
      // cache grows on demand: global ids seen as i-particles may exceed
      // the local j-particle count.
      const std::uint32_t gid = block[begin + k].index;
      if (gid >= exps_.size()) exps_.resize(gid + 1);
      exps_[gid].acc = choose_block_exponent(max_abs(f.acc));
      exps_[gid].jerk = choose_block_exponent(max_abs(f.jerk));
      exps_[gid].pot = choose_block_exponent(std::fabs(f.pot));
      if (want_nb) {
        NeighborResult& nb = neighbors[begin + k];
        nb.indices = std::move(pass_nb[k].indices);
        nb.overflow = pass_nb[k].overflow;
        nb.nearest = pass_nb[k].has_nearest ? pass_nb[k].nearest : gid;
        nb.nearest_r2 = pass_nb[k].nearest_r2;
        neighbor_words += nb.indices.size();
      }
    }
  }

  // Read back the results (one DMA), plus the neighbor lists (one more
  // transaction of 4-byte index words) when requested.
  dma_bytes += block.size() * packets_.result_bytes;
  call_seconds += dma_.transfer_time(block.size() * packets_.result_bytes);
  if (want_nb) {
    dma_bytes += neighbor_words * 4;
    call_seconds += dma_.transfer_time(neighbor_words * 4);
  }
  call_seconds += static_cast<double>(cycles) / mc_.clock_hz;

  c_cycles.add(cycles);
  c_dma_bytes.add(dma_bytes);
  c_passes.add(stats_.passes - passes0);
  c_retries.add(stats_.retries - retries0);
  c_interactions.add(stats_.interactions - interactions0);

  const double grape_seconds = static_cast<double>(cycles) / mc_.clock_hz;
  stats_.grape_seconds += grape_seconds;
  stats_.dma_seconds += call_seconds - grape_seconds;
  ++stats_.force_calls;
  last_call_seconds_ = call_seconds;
  last_call_grape_seconds_ = grape_seconds;
}

}  // namespace g6
