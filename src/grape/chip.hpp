#pragma once
// The GRAPE-6 processor chip (Sec 2.1): six 8-way-VMP force pipelines fed
// by one predictor pipeline and a chip-local j-particle memory.
//
// Functional model: every stored j-particle is predicted once per pass and
// broadcast to all virtual pipelines, i.e. the chip computes forces from
// its j-memory on up to 48 i-particles in parallel.
//
// Timing model: a physical pipeline retires one interaction per clock and
// serves `vmp_ways` virtual pipelines round-robin, so a pass over n_j
// stored particles takes `vmp_ways * n_j + pipeline_latency` cycles —
// independent of how many of the 48 virtual slots are actually filled
// (unused pipelines idle, which is exactly why small blocks waste the
// hardware; see Fig 14's small-N regime).

#include <cstdint>
#include <span>
#include <vector>

#include "exec/relaxed.hpp"
#include "grape/config.hpp"
#include "grape/pipeline.hpp"

namespace g6 {

namespace fault {
class FaultInjector;
}

class Chip {
 public:
  Chip(const MachineConfig& mc, const NumberFormats& fmt)
      : mc_(mc), predictor_(fmt), pipeline_(fmt) {}

  /// Number of i-particles processed in parallel (48 on GRAPE-6).
  std::size_t i_parallelism() const { return mc_.i_parallelism(); }

  void clear_memory() { memory_.clear(); }

  /// Ensure the memory has at least `n` slots. Uploads that know their
  /// slot count should call this once up front; write() only grows
  /// incrementally as a fallback.
  void reserve_slots(std::size_t n) { memory_.ensure_size(n); }

  /// Write a j-particle into a memory slot.
  void write(std::size_t slot, const StoredJParticle& p) {
    reserve_slots(slot + 1);
    memory_.set(slot, p);
  }

  std::size_t j_count() const { return memory_.size(); }

  /// Gather one stored memory word (the columns are the ground truth).
  StoredJParticle stored(std::size_t slot) const { return memory_.get(slot); }

  /// One force pass: forces from the whole j-memory on `iblock`
  /// (iblock.size() <= i_parallelism()). `out[k]` must be reset with the
  /// block exponents by the caller. When `neighbors` is non-empty (same
  /// length as the block) the neighbor comparators run alongside; each
  /// recorder must be reset to this chip's FIFO depth by the caller.
  /// Returns the cycles consumed.
  std::uint64_t run_pass(double t, std::span<const IParticlePacket> iblock,
                         double eps2, std::span<HwAccumulators> out,
                         std::span<HwNeighborRecorder> neighbors = {});

  /// Lifetime totals (performance counters). Relaxed atomics: concurrent
  /// passes race only on these sums, which are order-independent.
  std::uint64_t total_cycles() const { return total_cycles_.value(); }
  std::uint64_t total_interactions() const { return total_interactions_.value(); }

  /// Attach the fault injector (nullptr detaches); `chip_id` is this
  /// chip's flat id within the host. With an injector attached, run_pass
  /// applies end-of-pass output faults (stuck/dead/glitched registers).
  void attach_fault(fault::FaultInjector* injector, int chip_id) {
    fault_ = injector;
    fault_chip_id_ = chip_id;
  }

  /// Direct memory access for the fault subsystem: bit-flip injection,
  /// scrubbing, and self-test vector swap-in/swap-out go through the
  /// JStore word accessors (get/set round-trip bit-exactly).
  JStore& memory() { return memory_; }
  const JStore& memory() const { return memory_; }
  JStore take_memory() {
    JStore m = std::move(memory_);
    memory_.clear();  // moved-from columns are valid; re-establish size()==0
    return m;
  }
  void set_memory(JStore m) { memory_ = std::move(m); }

 private:
  void run_pass_scalar(double t, std::span<const IParticlePacket> iblock,
                       double eps2, std::span<HwAccumulators> out,
                       std::span<HwNeighborRecorder> neighbors);
  void run_pass_batched(double t, std::span<const IParticlePacket> iblock,
                        double eps2, std::span<HwAccumulators> out,
                        std::span<HwNeighborRecorder> neighbors);

  MachineConfig mc_;
  PredictorUnit predictor_;
  ForcePipeline pipeline_;
  JStore memory_;
  exec::RelaxedCounter total_cycles_;
  exec::RelaxedCounter total_interactions_;
  fault::FaultInjector* fault_ = nullptr;
  int fault_chip_id_ = -1;
};

}  // namespace g6
