#include "grape/selftest.hpp"

#include <algorithm>
#include <cmath>

#include "grape/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace g6 {

namespace {

/// i-particle ids far above any real particle so the pipeline's
/// self-interaction cut never triggers against the test j set.
constexpr std::uint32_t kProbeIdBase = 0x40000000U;

struct TestVectors {
  std::vector<StoredJParticle> jmem;
  std::vector<IParticlePacket> probes;
};

TestVectors make_vectors(const NumberFormats& fmt, const SelfTestOptions& opt) {
  Rng rng(opt.seed);
  TestVectors v;
  v.jmem.reserve(static_cast<std::size_t>(opt.n_j));
  for (int j = 0; j < opt.n_j; ++j) {
    JParticle p;
    p.mass = rng.uniform(0.5, 1.5) / static_cast<double>(opt.n_j);
    p.t0 = 0.0;
    p.pos = rng.unit_vector() * rng.uniform(0.25, 1.0);
    p.vel = rng.unit_vector() * 0.25;
    // Higher derivatives stay zero: prediction at t = t0 is then exact in
    // every format, so the reference needs no predictor model.
    v.jmem.push_back(
        quantize_j_particle(p, static_cast<std::uint32_t>(j), fmt));
  }
  v.probes.reserve(static_cast<std::size_t>(opt.n_i));
  for (int i = 0; i < opt.n_i; ++i) {
    PredictedState s;
    s.pos = rng.unit_vector() * rng.uniform(0.25, 1.0);
    s.vel = rng.unit_vector() * 0.25;
    s.mass = 1.0;
    s.index = kProbeIdBase + static_cast<std::uint32_t>(i);
    v.probes.push_back(quantize_i_particle(s, fmt));
  }
  return v;
}

struct Reference {
  Vec3 acc;
  double pot = 0.0;
};

/// Double-precision direct sum over the decoded memory images: the ground
/// truth a healthy pipeline must reproduce to ~its own precision.
std::vector<Reference> reference_forces(const TestVectors& v,
                                        const NumberFormats& fmt, double eps2) {
  const FixedPointCodec codec = fmt.coord_codec();
  std::vector<Reference> refs(v.probes.size());
  for (std::size_t i = 0; i < v.probes.size(); ++i) {
    const Vec3 xi{codec.decode(v.probes[i].pos[0]),
                  codec.decode(v.probes[i].pos[1]),
                  codec.decode(v.probes[i].pos[2])};
    Reference r;
    for (const StoredJParticle& j : v.jmem) {
      const Vec3 xj{codec.decode(j.pos[0]), codec.decode(j.pos[1]),
                    codec.decode(j.pos[2])};
      const Vec3 dx = xj - xi;
      const double r2 = dx.x * dx.x + dx.y * dx.y + dx.z * dx.z + eps2;
      const double rinv = 1.0 / std::sqrt(r2);
      const double rinv3 = rinv * rinv * rinv;
      r.acc += j.mass * rinv3 * dx;
      r.pot -= j.mass * rinv;
    }
    refs[i] = r;
  }
  return refs;
}

/// Error relative to `scale` (the vector norm, not the component, so a
/// component that happens to cancel to ~0 cannot fail a healthy chip).
bool within(double got, double ref, double scale, double tol) {
  return std::fabs(got - ref) <= tol * std::max(scale, 1e-12);
}

}  // namespace

SelfTestReport run_chip_self_test(GrapeForceEngine& engine,
                                  std::span<const int> chips,
                                  const SelfTestOptions& opt) {
  G6_REQUIRE(opt.n_j >= 1 && opt.n_i >= 1);
  G6_REQUIRE(opt.rel_tol > 0.0);

  const NumberFormats& fmt = engine.formats();
  const TestVectors v = make_vectors(fmt, opt);
  const double eps2 = engine.softening() * engine.softening();
  const std::vector<Reference> refs = reference_forces(v, fmt, eps2);

  // One exponent set comfortably above the reference magnitudes: the
  // self-test never needs the overflow-retry machinery.
  double amax = 0.0;
  double pmax = 0.0;
  for (const Reference& r : refs) {
    amax = std::max({amax, std::fabs(r.acc.x), std::fabs(r.acc.y),
                     std::fabs(r.acc.z)});
    pmax = std::max(pmax, std::fabs(r.pot));
  }
  BlockExponents exps;
  exps.acc = choose_block_exponent(amax, 4);
  exps.jerk = choose_block_exponent(amax, 4);
  exps.pot = choose_block_exponent(pmax, 4);

  SelfTestReport report;
  std::vector<HwAccumulators> out(v.probes.size());
  for (int id : chips) {
    Chip& chip = engine.chip_flat(static_cast<std::size_t>(id));
    JStore saved = chip.take_memory();
    chip.set_memory(JStore::from_aos(v.jmem));
    for (auto& acc : out) acc.reset(exps);
    report.cycles += chip.run_pass(0.0, v.probes, eps2, out);
    chip.set_memory(std::move(saved));
    ++report.tested;

    bool ok = true;
    for (std::size_t i = 0; i < out.size() && ok; ++i) {
      if (out[i].overflow()) {
        ok = false;
        break;
      }
      const Force f = out[i].decode();
      const Vec3& ra = refs[i].acc;
      const double anorm =
          std::sqrt(ra.x * ra.x + ra.y * ra.y + ra.z * ra.z);
      ok = within(f.acc.x, ra.x, anorm, opt.rel_tol) &&
           within(f.acc.y, ra.y, anorm, opt.rel_tol) &&
           within(f.acc.z, ra.z, anorm, opt.rel_tol) &&
           within(f.pot, refs[i].pot, std::fabs(refs[i].pot), opt.rel_tol);
    }
    if (!ok) report.failed.push_back(id);
  }
  return report;
}

}  // namespace g6
