#include "grape/config.hpp"

#include <cstdlib>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace g6 {

const char* to_string(PipelineMode m) {
  switch (m) {
    case PipelineMode::kScalar:
      return "scalar";
    case PipelineMode::kBatched:
      return "batched";
    case PipelineMode::kCheck:
      return "check";
  }
  return "unknown";
}

PipelineMode default_pipeline_mode() {
  const char* env = std::getenv("G6_PIPELINE");
  if (env == nullptr || *env == '\0') return PipelineMode::kBatched;
  const std::string_view v(env);
  if (v == "scalar") return PipelineMode::kScalar;
  if (v == "batched") return PipelineMode::kBatched;
  if (v == "check") return PipelineMode::kCheck;
  G6_REQUIRE_MSG(false, "G6_PIPELINE must be scalar|batched|check, got \"" +
                            std::string(v) + "\"");
  return PipelineMode::kBatched;  // unreachable
}

}  // namespace g6
