#include "grape/chip.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6 {

namespace {

/// Bitwise comparison of one accumulator word pair for check mode.
void require_word_equal(const BlockFloatAccumulator& ref,
                        const BlockFloatAccumulator& alt, const char* name,
                        std::size_t slot) {
  if (ref.mantissa() == alt.mantissa() && ref.overflow() == alt.overflow() &&
      ref.block_exp() == alt.block_exp()) {
    return;
  }
  std::ostringstream os;
  os << "pipeline check mode: scalar/batched divergence in " << name
     << " word of i-slot " << slot << ": mantissa " << ref.mantissa() << " vs "
     << alt.mantissa() << ", overflow " << ref.overflow() << " vs "
     << alt.overflow();
  G6_REQUIRE_MSG(false, os.str());
}

void require_pass_equal(std::span<const HwAccumulators> ref,
                        std::span<const HwAccumulators> alt,
                        std::span<const HwNeighborRecorder> ref_nb,
                        std::span<const HwNeighborRecorder> alt_nb) {
  for (std::size_t k = 0; k < ref.size(); ++k) {
    for (int d = 0; d < 3; ++d) {
      require_word_equal(ref[k].acc[d], alt[k].acc[d], "acc", k);
      require_word_equal(ref[k].jerk[d], alt[k].jerk[d], "jerk", k);
    }
    require_word_equal(ref[k].pot, alt[k].pot, "pot", k);
  }
  for (std::size_t k = 0; k < ref_nb.size(); ++k) {
    const HwNeighborRecorder& r = ref_nb[k];
    const HwNeighborRecorder& a = alt_nb[k];
    G6_REQUIRE_MSG(r.indices == a.indices && r.overflow == a.overflow,
                   "pipeline check mode: scalar/batched neighbor list divergence");
    G6_REQUIRE_MSG(r.has_nearest == a.has_nearest && r.nearest == a.nearest &&
                       r.nearest_r2 == a.nearest_r2,
                   "pipeline check mode: scalar/batched nearest-neighbor divergence");
  }
}

}  // namespace

void Chip::run_pass_scalar(double t, std::span<const IParticlePacket> iblock,
                           double eps2, std::span<HwAccumulators> out,
                           std::span<HwNeighborRecorder> neighbors) {
  for (std::size_t slot = 0; slot < memory_.size(); ++slot) {
    const StoredJParticle j = memory_.get(slot);
    const PredictorUnit::Predicted pj = predictor_.predict(j, t);
    for (std::size_t k = 0; k < iblock.size(); ++k) {
      pipeline_.interact(pj, iblock[k], eps2, out[k],
                         neighbors.empty() ? nullptr : &neighbors[k]);
    }
  }
}

void Chip::run_pass_batched(double t, std::span<const IParticlePacket> iblock,
                            double eps2, std::span<HwAccumulators> out,
                            std::span<HwNeighborRecorder> neighbors) {
  // Pass-local scratch, reused across passes on the same thread. One
  // predict over the whole j-memory, then each i-slot streams the batch
  // in a flat loop (ascending j, as the scalar path iterates).
  static thread_local PredictorUnit::PredictedBatch batch;
  predictor_.predict_batch(memory_, t, batch);
  for (std::size_t k = 0; k < iblock.size(); ++k) {
    pipeline_.interact_batch(batch, iblock[k], eps2, out[k],
                             neighbors.empty() ? nullptr : &neighbors[k]);
  }
}

std::uint64_t Chip::run_pass(double t, std::span<const IParticlePacket> iblock,
                             double eps2, std::span<HwAccumulators> out,
                             std::span<HwNeighborRecorder> neighbors) {
  G6_REQUIRE(iblock.size() <= i_parallelism());
  G6_REQUIRE(out.size() == iblock.size());
  G6_REQUIRE(neighbors.empty() || neighbors.size() == iblock.size());
  // The on-chip FIFO depth bounds what one chip can report, regardless of
  // the (larger) host-side buffer the results are merged into.
  for (auto& nb : neighbors) {
    G6_ASSERT(nb.indices.empty());
    nb.capacity = std::min(nb.capacity, mc_.neighbor_buffer_per_chip);
  }

  static obs::Counter& c_scalar =
      obs::MetricsRegistry::global().counter("grape.chip_passes.scalar");
  static obs::Counter& c_batched =
      obs::MetricsRegistry::global().counter("grape.chip_passes.batched");
  static obs::Counter& c_check =
      obs::MetricsRegistry::global().counter("grape.chip_passes.check");

  switch (mc_.pipeline_mode) {
    case PipelineMode::kScalar:
      run_pass_scalar(t, iblock, eps2, out, neighbors);
      c_scalar.add(1);
      break;
    case PipelineMode::kBatched:
      run_pass_batched(t, iblock, eps2, out, neighbors);
      c_batched.add(1);
      break;
    case PipelineMode::kCheck: {
      // Run both paths from the same reset state (out/neighbors arrive
      // reset by the caller, so copies capture the block exponents and
      // FIFO depths) and require exact agreement on every result word.
      // The scalar result is what the pass returns.
      std::vector<HwAccumulators> alt(out.begin(), out.end());
      std::vector<HwNeighborRecorder> alt_nb(neighbors.begin(), neighbors.end());
      run_pass_scalar(t, iblock, eps2, out, neighbors);
      run_pass_batched(t, iblock, eps2, alt,
                       alt_nb.empty() ? std::span<HwNeighborRecorder>{}
                                      : std::span<HwNeighborRecorder>(alt_nb));
      require_pass_equal(out, alt, neighbors, alt_nb);
      c_check.add(1);
      break;
    }
  }

  // Output-register faults (stuck pipelines, hard-dead chips, transient
  // glitches) hit after accumulation, exactly where the real chip's
  // result registers sit. Empty chips contribute nothing and stay quiet.
  // In check mode the comparison above runs pre-fault: both paths see
  // identical accumulation, and faults land once, on the returned bank.
  if (fault_ != nullptr && !memory_.empty()) {
    fault_->apply_pass_faults(t, fault_chip_id_, out);
  }

  const std::uint64_t cycles =
      static_cast<std::uint64_t>(mc_.vmp_ways) * memory_.size() +
      mc_.pipeline_latency_cycles;
  total_cycles_.add(cycles);
  total_interactions_.add(static_cast<std::uint64_t>(memory_.size()) *
                          iblock.size());
  return cycles;
}

}  // namespace g6
