#include "grape/chip.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "util/check.hpp"

namespace g6 {

std::uint64_t Chip::run_pass(double t, std::span<const IParticlePacket> iblock,
                             double eps2, std::span<HwAccumulators> out,
                             std::span<HwNeighborRecorder> neighbors) {
  G6_REQUIRE(iblock.size() <= i_parallelism());
  G6_REQUIRE(out.size() == iblock.size());
  G6_REQUIRE(neighbors.empty() || neighbors.size() == iblock.size());
  // The on-chip FIFO depth bounds what one chip can report, regardless of
  // the (larger) host-side buffer the results are merged into.
  for (auto& nb : neighbors) {
    G6_ASSERT(nb.indices.empty());
    nb.capacity = std::min(nb.capacity, mc_.neighbor_buffer_per_chip);
  }

  for (const auto& j : memory_) {
    const PredictorUnit::Predicted pj = predictor_.predict(j, t);
    for (std::size_t k = 0; k < iblock.size(); ++k) {
      pipeline_.interact(pj, iblock[k], eps2, out[k],
                         neighbors.empty() ? nullptr : &neighbors[k]);
    }
  }

  // Output-register faults (stuck pipelines, hard-dead chips, transient
  // glitches) hit after accumulation, exactly where the real chip's
  // result registers sit. Empty chips contribute nothing and stay quiet.
  if (fault_ != nullptr && !memory_.empty()) {
    fault_->apply_pass_faults(t, fault_chip_id_, out);
  }

  const std::uint64_t cycles =
      static_cast<std::uint64_t>(mc_.vmp_ways) * memory_.size() +
      mc_.pipeline_latency_cycles;
  total_cycles_.add(cycles);
  total_interactions_.add(static_cast<std::uint64_t>(memory_.size()) *
                          iblock.size());
  return cycles;
}

}  // namespace g6
