#pragma once
// Barnes-Hut octree (Barnes & Hut 1986) — the comparison baseline of
// Sec 5. Monopole approximation with optional quadrupole correction,
// geometric opening criterion s/d < theta.
//
// The tree stores a permutation of body indices; nodes reference
// contiguous ranges, so construction is allocation-light and traversal is
// cache-friendly.

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "hermite/types.hpp"
#include "nbody/particle.hpp"

namespace g6 {

class Octree {
 public:
  struct Params {
    std::size_t leaf_capacity = 8;
    bool quadrupole = true;
  };

  Octree() : Octree(Params{}) {}
  explicit Octree(Params params) : params_(params) {}

  /// (Re)build over the given bodies. The span must stay valid until the
  /// next build (traversals read positions/masses through it).
  void build(std::span<const Body> bodies);

  /// Acceleration and potential on `pos` with opening angle `theta`;
  /// `skip_index` excludes one body (self), pass SIZE_MAX to keep all.
  /// Thread-safe: concurrent traversals only read the tree.
  Force force_at(const Vec3& pos, double theta, double eps2,
                 std::size_t skip_index = static_cast<std::size_t>(-1)) const;

  /// All bodies within `radius` of `pos` (excluding `skip_index`) — range
  /// query used by the collision survey.
  std::vector<std::uint32_t> within(const Vec3& pos, double radius,
                                    std::size_t skip_index =
                                        static_cast<std::size_t>(-1)) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t body_count() const { return bodies_.size(); }
  /// Interactions (node or body) evaluated since construction.
  unsigned long long interactions() const {
    return interactions_.load(std::memory_order_relaxed);
  }

  /// Total mass and center of mass of the root (tests).
  double root_mass() const;
  Vec3 root_com() const;

 private:
  struct Node {
    Vec3 center;       ///< geometric cell center
    double half = 0.0; ///< half edge length
    Vec3 com;
    double mass = 0.0;
    // Traced quadrupole moments (symmetric, xx xy xz yy yz zz).
    double quad[6] = {0, 0, 0, 0, 0, 0};
    std::int32_t first_child = -1;  ///< index of 8 contiguous children, or -1
    std::uint32_t begin = 0;        ///< body range [begin, end) in perm_
    std::uint32_t end = 0;
  };

  void build_node(std::size_t node_index, std::uint32_t begin, std::uint32_t end,
                  const Vec3& center, double half, int depth);
  void compute_moments(std::size_t node_index);

  Params params_;
  std::span<const Body> bodies_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> perm_;
  /// Interaction counter shared by concurrent traversals. All accesses use
  /// std::memory_order_relaxed by design: force_at() batches one fetch_add
  /// per traversal, callers join their workers before reading, and the
  /// join provides the happens-before edge — the atomic only needs to keep
  /// the increments themselves race-free.
  mutable std::atomic<unsigned long long> interactions_{0};
};

}  // namespace g6
