#pragma once
// Physical-collision survey for planetesimal simulations.
//
// The Kuiper-belt application (Sec 5, [12]) is an accretion problem: the
// science output is who collides with whom. On the real GRAPE-6 the
// nearest-neighbor hardware flags candidate pairs; in post-processing (or
// on the host between blocksteps) an octree range query confirms overlaps
// of the physical radii. Perfect-accretion merging conserves mass,
// momentum, and center of mass.

#include <cstdint>
#include <span>
#include <vector>

#include "nbody/particle.hpp"

namespace g6 {

struct CollidingPair {
  std::uint32_t a = 0;  ///< smaller index
  std::uint32_t b = 0;  ///< larger index
  double distance = 0.0;
};

/// All pairs with |x_a - x_b| <= radius[a] + radius[b], each reported
/// once (a < b). O(N log N) via an octree range query.
std::vector<CollidingPair> find_colliding_pairs(std::span<const Body> bodies,
                                                std::span<const double> radii);

/// Physical radii for equal-density bodies: r_i = r_ref * (m_i/m_ref)^(1/3).
std::vector<double> accretion_radii(std::span<const Body> bodies, double m_ref,
                                    double r_ref);

/// Perfect accretion: merged body conserving mass and momentum, placed at
/// the center of mass.
Body merge_bodies(const Body& a, const Body& b);

/// Apply one round of merges to a particle set: each body participates in
/// at most one merge per call (pairs are processed in increasing distance
/// order). Returns the number of merges performed.
std::size_t apply_collisions(ParticleSet& set, std::vector<double>& radii,
                             double m_ref, double r_ref);

}  // namespace g6
