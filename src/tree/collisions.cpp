#include "tree/collisions.hpp"

#include <algorithm>
#include <cmath>

#include "tree/octree.hpp"
#include "util/check.hpp"

namespace g6 {

std::vector<CollidingPair> find_colliding_pairs(std::span<const Body> bodies,
                                                std::span<const double> radii) {
  G6_REQUIRE(bodies.size() == radii.size());
  std::vector<CollidingPair> pairs;
  if (bodies.size() < 2) return pairs;

  double r_max = 0.0;
  for (double r : radii) {
    G6_REQUIRE(r >= 0.0);
    r_max = std::max(r_max, r);
  }

  Octree tree;
  tree.build(bodies);
  for (std::uint32_t i = 0; i < bodies.size(); ++i) {
    // Search out to radius[i] + r_max and confirm with the exact sum.
    for (std::uint32_t j : tree.within(bodies[i].pos, radii[i] + r_max, i)) {
      if (j <= i) continue;  // report each pair once
      const double d = norm(bodies[j].pos - bodies[i].pos);
      if (d <= radii[i] + radii[j]) pairs.push_back({i, j, d});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const CollidingPair& x, const CollidingPair& y) {
              return x.distance < y.distance;
            });
  return pairs;
}

std::vector<double> accretion_radii(std::span<const Body> bodies, double m_ref,
                                    double r_ref) {
  G6_REQUIRE(m_ref > 0.0 && r_ref > 0.0);
  std::vector<double> radii;
  radii.reserve(bodies.size());
  for (const auto& b : bodies) {
    radii.push_back(b.mass > 0.0 ? r_ref * std::cbrt(b.mass / m_ref) : 0.0);
  }
  return radii;
}

Body merge_bodies(const Body& a, const Body& b) {
  Body out;
  out.mass = a.mass + b.mass;
  G6_REQUIRE_MSG(out.mass > 0.0, "merging two massless bodies");
  out.pos = (a.mass * a.pos + b.mass * b.pos) / out.mass;
  out.vel = (a.mass * a.vel + b.mass * b.vel) / out.mass;
  return out;
}

std::size_t apply_collisions(ParticleSet& set, std::vector<double>& radii,
                             double m_ref, double r_ref) {
  G6_REQUIRE(set.size() == radii.size());
  const auto pairs = find_colliding_pairs(set.bodies(), radii);
  if (pairs.empty()) return 0;

  std::vector<bool> used(set.size(), false);
  std::vector<bool> dead(set.size(), false);
  std::size_t merges = 0;
  for (const auto& p : pairs) {
    if (used[p.a] || used[p.b]) continue;
    set[p.a] = merge_bodies(set[p.a], set[p.b]);
    used[p.a] = used[p.b] = true;
    dead[p.b] = true;
    ++merges;
  }

  // Compact survivors.
  ParticleSet compacted;
  compacted.reserve(set.size() - merges);
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (!dead[i]) compacted.add(set[i]);
  }
  set = std::move(compacted);
  radii = accretion_radii(set.bodies(), m_ref, r_ref);
  return merges;
}

}  // namespace g6
