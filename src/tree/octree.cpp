#include "tree/octree.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace g6 {

namespace {
constexpr int kMaxDepth = 64;

int octant_of(const Vec3& p, const Vec3& center) {
  return (p.x >= center.x ? 1 : 0) | (p.y >= center.y ? 2 : 0) |
         (p.z >= center.z ? 4 : 0);
}

Vec3 child_center(const Vec3& center, double quarter, int oct) {
  return {center.x + ((oct & 1) ? quarter : -quarter),
          center.y + ((oct & 2) ? quarter : -quarter),
          center.z + ((oct & 4) ? quarter : -quarter)};
}
}  // namespace

void Octree::build(std::span<const Body> bodies) {
  G6_REQUIRE(!bodies.empty());
  G6_PHASE("tree.build");
  obs::MetricsRegistry::global().counter("tree.builds").add(1);
  bodies_ = bodies;
  nodes_.clear();
  // Relaxed is sufficient everywhere this counter is touched: it carries
  // no synchronization (thread join in the callers orders it before any
  // read), and build() runs strictly between traversal phases.
  interactions_.store(0, std::memory_order_relaxed);
  perm_.resize(bodies.size());
  for (std::uint32_t i = 0; i < bodies.size(); ++i) perm_[i] = i;

  // Bounding cube.
  Vec3 lo = bodies[0].pos, hi = bodies[0].pos;
  for (const auto& b : bodies) {
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], b.pos[d]);
      hi[d] = std::max(hi[d], b.pos[d]);
    }
  }
  const Vec3 center = 0.5 * (lo + hi);
  double half = 0.0;
  for (int d = 0; d < 3; ++d) half = std::max(half, 0.5 * (hi[d] - lo[d]));
  half = std::max(half * 1.0000001, 1e-12);  // avoid zero-size root

  nodes_.reserve(2 * bodies.size() / std::max<std::size_t>(1, params_.leaf_capacity) +
                 64);
  nodes_.emplace_back();
  build_node(0, 0, static_cast<std::uint32_t>(bodies.size()), center, half, 0);
  compute_moments(0);
}

void Octree::build_node(std::size_t node_index, std::uint32_t begin,
                        std::uint32_t end, const Vec3& center, double half,
                        int depth) {
  Node& node = nodes_[node_index];
  node.center = center;
  node.half = half;
  node.begin = begin;
  node.end = end;
  node.first_child = -1;

  if (end - begin <= params_.leaf_capacity || depth >= kMaxDepth) return;

  // Counting sort of the range into octants.
  std::uint32_t counts[8] = {};
  for (std::uint32_t k = begin; k < end; ++k) {
    ++counts[octant_of(bodies_[perm_[k]].pos, center)];
  }
  std::uint32_t offsets[9];
  offsets[0] = begin;
  for (int o = 0; o < 8; ++o) offsets[o + 1] = offsets[o] + counts[o];

  std::uint32_t cursor[8];
  for (int o = 0; o < 8; ++o) cursor[o] = offsets[o];
  std::vector<std::uint32_t> tmp(perm_.begin() + begin, perm_.begin() + end);
  for (std::uint32_t idx : tmp) {
    const int o = octant_of(bodies_[idx].pos, center);
    perm_[cursor[o]++] = idx;
  }

  const auto first_child = static_cast<std::int32_t>(nodes_.size());
  nodes_[node_index].first_child = first_child;
  for (int o = 0; o < 8; ++o) nodes_.emplace_back();

  const double quarter = 0.5 * half;
  for (int o = 0; o < 8; ++o) {
    // nodes_ may have reallocated; re-read nothing from `node`.
    build_node(static_cast<std::size_t>(first_child + o), offsets[o],
               offsets[o + 1], child_center(center, quarter, o), quarter,
               depth + 1);
  }
}

void Octree::compute_moments(std::size_t node_index) {
  Node& node = nodes_[node_index];
  node.mass = 0.0;
  node.com = {};
  for (double& q : node.quad) q = 0.0;

  if (node.first_child >= 0) {
    for (int o = 0; o < 8; ++o) {
      compute_moments(static_cast<std::size_t>(node.first_child + o));
    }
    for (int o = 0; o < 8; ++o) {
      const Node& c = nodes_[static_cast<std::size_t>(node.first_child + o)];
      node.mass += c.mass;
      node.com += c.mass * c.com;
    }
  } else {
    for (std::uint32_t k = node.begin; k < node.end; ++k) {
      const Body& b = bodies_[perm_[k]];
      node.mass += b.mass;
      node.com += b.mass * b.pos;
    }
  }
  if (node.mass > 0.0) node.com /= node.mass;

  if (!params_.quadrupole) return;
  // Traceless quadrupole about the COM: Q_ab = sum m (3 x_a x_b - r^2 d_ab).
  const auto add_quad = [&](const Vec3& pos, double mass) {
    const Vec3 d = pos - node.com;
    const double r2 = norm2(d);
    node.quad[0] += mass * (3.0 * d.x * d.x - r2);
    node.quad[1] += mass * 3.0 * d.x * d.y;
    node.quad[2] += mass * 3.0 * d.x * d.z;
    node.quad[3] += mass * (3.0 * d.y * d.y - r2);
    node.quad[4] += mass * 3.0 * d.y * d.z;
    node.quad[5] += mass * (3.0 * d.z * d.z - r2);
  };
  if (node.first_child >= 0) {
    // Parallel-axis accumulation from children.
    for (int o = 0; o < 8; ++o) {
      const Node& c = nodes_[static_cast<std::size_t>(node.first_child + o)];
      if (c.mass <= 0.0) continue;
      const Vec3 d = c.com - node.com;
      const double r2 = norm2(d);
      node.quad[0] += c.quad[0] + c.mass * (3.0 * d.x * d.x - r2);
      node.quad[1] += c.quad[1] + c.mass * 3.0 * d.x * d.y;
      node.quad[2] += c.quad[2] + c.mass * 3.0 * d.x * d.z;
      node.quad[3] += c.quad[3] + c.mass * (3.0 * d.y * d.y - r2);
      node.quad[4] += c.quad[4] + c.mass * 3.0 * d.y * d.z;
      node.quad[5] += c.quad[5] + c.mass * (3.0 * d.z * d.z - r2);
    }
  } else {
    for (std::uint32_t k = node.begin; k < node.end; ++k) {
      add_quad(bodies_[perm_[k]].pos, bodies_[perm_[k]].mass);
    }
  }
}

Force Octree::force_at(const Vec3& pos, double theta, double eps2,
                       std::size_t skip_index) const {
  G6_REQUIRE(!nodes_.empty());
  G6_REQUIRE(theta > 0.0);
  Force f;
  unsigned long long local_interactions = 0;

  // Explicit stack traversal.
  std::int32_t stack[4 * kMaxDepth];
  int top = 0;
  stack[top++] = 0;

  while (top > 0) {
    const Node& node = nodes_[static_cast<std::size_t>(stack[--top])];
    if (node.mass <= 0.0) continue;

    const Vec3 dr = node.com - pos;
    const double dist2 = norm2(dr);
    const double size = 2.0 * node.half;

    if (node.first_child >= 0 && size * size >= theta * theta * dist2) {
      for (int o = 0; o < 8; ++o) stack[top++] = node.first_child + o;
      continue;
    }

    if (node.first_child < 0) {
      // Leaf: direct sum over its bodies.
      for (std::uint32_t k = node.begin; k < node.end; ++k) {
        const std::uint32_t idx = perm_[k];
        if (idx == skip_index) continue;
        const Body& b = bodies_[idx];
        const Vec3 d = b.pos - pos;
        const double r2 = norm2(d) + eps2;
        const double rinv = 1.0 / std::sqrt(r2);
        const double mrinv3 = units::kGravity * b.mass * rinv * rinv * rinv;
        f.acc += mrinv3 * d;
        f.pot -= units::kGravity * b.mass * rinv;
        ++local_interactions;
      }
      continue;
    }

    // Accepted internal node: monopole (+ quadrupole).
    const double r2 = dist2 + eps2;
    const double rinv = 1.0 / std::sqrt(r2);
    const double rinv2 = rinv * rinv;
    const double mrinv3 = units::kGravity * node.mass * rinv * rinv2;
    f.acc += mrinv3 * dr;
    f.pot -= units::kGravity * node.mass * rinv;
    ++local_interactions;

    if (params_.quadrupole) {
      // phi_Q = -G/2 * (r.Q.r) / r^5 ; a_Q = -grad phi_Q.
      const double rinv5 = rinv2 * rinv2 * rinv;
      const double rinv7 = rinv5 * rinv2;
      const Vec3 qr{node.quad[0] * dr.x + node.quad[1] * dr.y + node.quad[2] * dr.z,
                    node.quad[1] * dr.x + node.quad[3] * dr.y + node.quad[4] * dr.z,
                    node.quad[2] * dr.x + node.quad[4] * dr.y + node.quad[5] * dr.z};
      const double rqr = dot(dr, qr);
      f.pot -= 0.5 * units::kGravity * rqr * rinv5;
      // With s = pos - com = -dr: a_Q = G[(Q.s)/s^5 - 5/2 (s.Q.s) s/s^7],
      // rewritten in dr.
      f.acc += units::kGravity * (2.5 * rqr * rinv7 * dr - qr * rinv5);
    }
  }
  interactions_.fetch_add(local_interactions, std::memory_order_relaxed);
  return f;
}

std::vector<std::uint32_t> Octree::within(const Vec3& pos, double radius,
                                          std::size_t skip_index) const {
  G6_REQUIRE(!nodes_.empty());
  G6_REQUIRE(radius >= 0.0);
  std::vector<std::uint32_t> out;
  const double r2 = radius * radius;

  std::int32_t stack[4 * kMaxDepth];
  int top = 0;
  stack[top++] = 0;
  while (top > 0) {
    const Node& node = nodes_[static_cast<std::size_t>(stack[--top])];
    if (node.end == node.begin) continue;
    // Prune cells whose cube cannot intersect the search sphere.
    double d2 = 0.0;
    for (int d = 0; d < 3; ++d) {
      const double gap = std::fabs(pos[d] - node.center[d]) - node.half;
      if (gap > 0.0) d2 += gap * gap;
    }
    if (d2 > r2) continue;

    if (node.first_child >= 0) {
      for (int o = 0; o < 8; ++o) stack[top++] = node.first_child + o;
      continue;
    }
    for (std::uint32_t k = node.begin; k < node.end; ++k) {
      const std::uint32_t idx = perm_[k];
      if (idx == skip_index) continue;
      if (norm2(bodies_[idx].pos - pos) <= r2) out.push_back(idx);
    }
  }
  return out;
}

double Octree::root_mass() const { return nodes_.empty() ? 0.0 : nodes_[0].mass; }
Vec3 Octree::root_com() const { return nodes_.empty() ? Vec3{} : nodes_[0].com; }

}  // namespace g6
