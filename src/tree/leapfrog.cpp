#include "tree/leapfrog.hpp"

#include <algorithm>
#include <cmath>

#include "exec/parallel_for.hpp"
#include "obs/clock.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"

namespace g6 {

TreecodeIntegrator::TreecodeIntegrator(ParticleSet initial, TreecodeConfig cfg)
    : cfg_(cfg), set_(std::move(initial)), tree_(cfg.tree) {
  G6_REQUIRE(set_.size() >= 2);
  G6_REQUIRE(cfg_.dt > 0.0);
  acc_.resize(set_.size());
}

void TreecodeIntegrator::compute_forces(obs::Eq10Stepper* eq) {
  tree_.build(set_.bodies());
  const unsigned long long before = tree_.interactions();
  const double eps2 = cfg_.eps * cfg_.eps;

  const auto work = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      acc_[i] = tree_.force_at(set_[i].pos, cfg_.theta, eps2, i).acc;
    }
  };
  // The traversal is the work a GRAPE would absorb; charge it to the
  // hardware slot of the Eq 10 split so tree and direct runs compare.
  if (eq != nullptr) eq->phase(obs::Eq10Stepper::Phase::kGrape);
  {
    G6_PHASE("tree.traverse");
    // Each traversal writes only acc_[i]; the tree itself is read-only
    // here (its interaction counter is a relaxed atomic), so fan-out on
    // the shared pool leaves the accelerations bit-identical.
    exec::parallel_for(0, set_.size(), work,
                       {.threads = cfg_.threads, .grain = 2});
  }
  if (eq != nullptr) eq->phase(obs::Eq10Stepper::Phase::kHost);
  interactions_ += tree_.interactions() - before;
  forces_valid_ = true;
}

void TreecodeIntegrator::step() {
  const double t0 = obs::monotonic_seconds();
  {
    obs::Eq10Stepper eq(eq10_);
    G6_PHASE("tree.step");
    if (!forces_valid_) compute_forces(&eq);

    const double half = 0.5 * cfg_.dt;
    for (std::size_t i = 0; i < set_.size(); ++i) set_[i].vel += half * acc_[i];
    for (std::size_t i = 0; i < set_.size(); ++i) set_[i].pos += cfg_.dt * set_[i].vel;
    compute_forces(&eq);
    for (std::size_t i = 0; i < set_.size(); ++i) set_[i].vel += half * acc_[i];
    eq10_.add_steps(set_.size());
  }

  time_ += cfg_.dt;
  total_steps_ += set_.size();
  wall_seconds_ += obs::monotonic_seconds() - t0;
}

void TreecodeIntegrator::evolve(double t_end) {
  while (time_ + 0.5 * cfg_.dt < t_end) step();
}

double gadget_scaling_steps_per_second(double single_host_steps_per_second,
                                       std::size_t hosts) {
  G6_REQUIRE(hosts >= 1);
  // Constant per-host communication volume + per-transaction costs that
  // grow linearly with the host count: throughput ~ p / (1 + c1 p) —
  // saturating. Constants chosen to reproduce the paper's observation that
  // Gadget stops scaling beyond ~16 T3E nodes.
  const double p = static_cast<double>(hosts);
  const double c1 = 0.06;  // transaction-count penalty per host
  return single_host_steps_per_second * p / (1.0 + c1 * p * p / 16.0);
}

}  // namespace g6
