#pragma once
// Shared-timestep treecode integrator (leapfrog / kick-drift-kick) — the
// "treecode on a general-purpose machine" baseline of Sec 5. The paper's
// comparison metric is particle-steps per second; TreecodeRun meters both
// virtual work (interactions) and real wall-clock throughput.

#include "nbody/particle.hpp"
#include "obs/eq10.hpp"
#include "tree/octree.hpp"

namespace g6 {

struct TreecodeConfig {
  double theta = 0.6;   ///< opening angle
  double eps = 0.01;    ///< softening
  double dt = 1.0 / 256.0;  ///< shared timestep
  unsigned threads = 0;     ///< force-loop fan-out cap (0 = pool parallelism)
  Octree::Params tree;
};

class TreecodeIntegrator {
 public:
  TreecodeIntegrator(ParticleSet initial, TreecodeConfig cfg);

  void step();          ///< one KDK step (tree rebuilt every step)
  void evolve(double t_end);

  double time() const { return time_; }
  const ParticleSet& state() const { return set_; }
  unsigned long long total_steps() const { return total_steps_; }
  unsigned long long interactions() const { return interactions_; }

  /// Real wall-clock seconds spent inside step().
  double wall_seconds() const { return wall_seconds_; }
  /// Wall-time breakdown: host = drift/kick + tree build, grape = force
  /// traversal (the part a GRAPE would absorb). Zero with telemetry off.
  const obs::Eq10Accumulator& eq10() const { return eq10_; }
  /// Particle-steps per wall second (the Sec 5 comparison metric).
  double steps_per_second() const {
    return wall_seconds_ > 0.0 ? static_cast<double>(total_steps_) / wall_seconds_
                               : 0.0;
  }

 private:
  void compute_forces(obs::Eq10Stepper* eq = nullptr);

  TreecodeConfig cfg_;
  ParticleSet set_;
  Octree tree_;
  std::vector<Vec3> acc_;
  double time_ = 0.0;
  unsigned long long total_steps_ = 0;
  unsigned long long interactions_ = 0;
  double wall_seconds_ = 0.0;
  obs::Eq10Accumulator eq10_;
  bool forces_valid_ = false;
};

/// Scaling model for parallel treecodes (Sec 5 discussion): Gadget-style
/// codes exchange a constant data volume per host and the transaction
/// count grows with hosts, so individual-timestep treecode throughput
/// saturates. Returns particle-steps/s for `hosts` given single-host
/// throughput, following the paper's observations (Gadget on T3E: ~1e4
/// steps/s at 16 nodes, no further scaling).
double gadget_scaling_steps_per_second(double single_host_steps_per_second,
                                       std::size_t hosts);

}  // namespace g6
