#include "perf/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "hermite/direct_engine.hpp"
#include "hermite/integrator.hpp"
#include "nbody/models.hpp"
#include "obs/log.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"
#include "util/fileio.hpp"

namespace g6 {

const char* softening_name(SofteningLaw law) {
  switch (law) {
    case SofteningLaw::kConstant:
      return "eps=1/64";
    case SofteningLaw::kCubeRoot:
      return "eps=1/[8(2N)^1/3]";
    case SofteningLaw::kOverN:
      return "eps=4/N";
  }
  return "?";
}

double softening_for(SofteningLaw law, std::size_t n) {
  const auto nd = static_cast<double>(n);
  switch (law) {
    case SofteningLaw::kConstant:
      return 1.0 / 64.0;
    case SofteningLaw::kCubeRoot:
      return 1.0 / (8.0 * std::cbrt(2.0 * nd));
    case SofteningLaw::kOverN:
      return 4.0 / nd;
  }
  return 0.0;
}

CalibrationPoint schedule_statistics(const BlockstepTrace& trace, double eps) {
  CalibrationPoint point;
  point.n = trace.n_particles;
  point.eps = eps;
  point.steps_per_particle_per_time = trace.steps_per_particle_per_time();
  point.mean_block_fraction =
      trace.mean_block_size() / static_cast<double>(trace.n_particles);
  point.blocksteps_per_time =
      trace.span() > 0.0 ? static_cast<double>(trace.records.size()) / trace.span()
                         : 0.0;

  RunningStat log_sizes;
  for (const auto& rec : trace.records) {
    log_sizes.add(std::log(static_cast<double>(rec.block_size)));
  }
  point.log_block_sigma = log_sizes.stddev();
  return point;
}

CalibrationPoint measure_schedule(const ParticleSet& initial, double eps,
                                  const CalibrationOptions& opt) {
  G6_PHASE("perf.calibration");
  obs::log_debug("calibration: N=%zu eps=%.3g span=%.3g", initial.size(), eps,
                 opt.t_span);
  DirectForceEngine engine(eps, opt.threads);
  HermiteConfig cfg;
  cfg.eta = opt.eta;
  cfg.record_trace = true;
  HermiteIntegrator integ(initial, engine, cfg);
  integ.evolve(opt.t_span);
  return schedule_statistics(integ.trace(), eps);
}

CalibrationPoint measure_plummer_schedule(std::size_t n, SofteningLaw law,
                                          const CalibrationOptions& opt) {
  Rng rng(opt.seed + static_cast<unsigned>(n));
  const ParticleSet set = make_plummer(n, rng);
  return measure_schedule(set, softening_for(law, n), opt);
}

std::vector<CalibrationPoint> measure_series(SofteningLaw law,
                                             const CalibrationOptions& opt) {
  std::vector<CalibrationPoint> points;
  points.reserve(opt.sizes.size());
  for (std::size_t n : opt.sizes) {
    points.push_back(measure_plummer_schedule(n, law, opt));
  }
  return points;
}

TraceScaling TraceScaling::fit(const std::vector<CalibrationPoint>& points) {
  G6_REQUIRE(points.size() >= 2);
  std::vector<double> ns, rates, fracs;
  double sigma = 0.0;
  for (const auto& p : points) {
    ns.push_back(static_cast<double>(p.n));
    rates.push_back(p.steps_per_particle_per_time);
    fracs.push_back(p.mean_block_fraction);
    sigma += p.log_block_sigma;
  }
  TraceScaling s;
  s.steps_rate = fit_power_law(ns, rates);
  s.block_fraction = fit_power_law(ns, fracs);
  s.log_block_sigma = sigma / static_cast<double>(points.size());
  return s;
}

double TraceScaling::mean_block_size(std::size_t n) const {
  const double f = block_fraction.evaluate(static_cast<double>(n));
  return std::max(1.0, f * static_cast<double>(n));
}

BlockstepTrace TraceScaling::synthesize_steps(std::size_t n,
                                              unsigned long long target_steps,
                                              Rng& rng) const {
  G6_REQUIRE(n >= 2);
  G6_REQUIRE(target_steps >= 1);
  BlockstepTrace trace;
  trace.n_particles = n;
  trace.t_begin = 0.0;

  // Log-normal with the fitted dispersion, mean matched to f(N)*N:
  // E[exp(mu + sigma Z)] = exp(mu + sigma^2/2).
  const double mean_block = mean_block_size(n);
  const double mu = std::log(mean_block) - 0.5 * log_block_sigma * log_block_sigma;

  unsigned long long steps = 0;
  while (steps < target_steps) {
    const double draw = std::exp(mu + log_block_sigma * rng.gaussian());
    const auto block = static_cast<std::uint32_t>(
        std::clamp(draw, 1.0, static_cast<double>(n)));
    steps += block;
    trace.records.push_back({0.0, block});
  }
  // Assign times consistent with the fitted step rate (bookkeeping only;
  // the machine model uses block sizes).
  const double t_span = static_cast<double>(steps) /
                        (steps_per_particle_per_time(n) * static_cast<double>(n));
  trace.t_end = t_span;
  const double dt = t_span / static_cast<double>(trace.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    trace.records[i].time = (static_cast<double>(i) + 1.0) * dt;
  }
  return trace;
}

BlockstepTrace TraceScaling::synthesize(std::size_t n, double t_span,
                                        Rng& rng) const {
  G6_REQUIRE(n >= 2);
  G6_REQUIRE(t_span > 0.0);
  const double target =
      steps_per_particle_per_time(n) * static_cast<double>(n) * t_span;
  BlockstepTrace trace = synthesize_steps(
      n, static_cast<unsigned long long>(std::max(1.0, target)), rng);
  // Re-stamp the requested span.
  trace.t_end = t_span;
  const double dt = t_span / static_cast<double>(trace.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    trace.records[i].time = (static_cast<double>(i) + 1.0) * dt;
  }
  return trace;
}

void TraceScaling::save(std::ostream& os) const {
  os.precision(17);
  os << "grape6sim-trace-scaling-v1\n";
  os << steps_rate.coefficient << ' ' << steps_rate.exponent << ' '
     << steps_rate.r2 << '\n';
  os << block_fraction.coefficient << ' ' << block_fraction.exponent << ' '
     << block_fraction.r2 << '\n';
  os << log_block_sigma << '\n';
}

TraceScaling TraceScaling::load(std::istream& is) {
  std::string header;
  std::getline(is, header);
  G6_REQUIRE_MSG(header == "grape6sim-trace-scaling-v1",
                 "bad trace-scaling cache header");
  TraceScaling s;
  is >> s.steps_rate.coefficient >> s.steps_rate.exponent >> s.steps_rate.r2;
  is >> s.block_fraction.coefficient >> s.block_fraction.exponent >>
      s.block_fraction.r2;
  is >> s.log_block_sigma;
  G6_REQUIRE_MSG(static_cast<bool>(is), "truncated trace-scaling cache");
  return s;
}

TraceScaling calibrated_scaling(SofteningLaw law, const CalibrationOptions& opt,
                                const std::string& cache_path) {
  if (!cache_path.empty()) {
    std::ifstream in(cache_path);
    if (in) {
      // A corrupt or stale cache (bad header, truncation) is recoverable:
      // warn and fall through to a fresh calibration.
      try {
        TraceScaling s = TraceScaling::load(in);
        obs::log_debug("calibration: loaded cached scaling from %s",
                       cache_path.c_str());
        return s;
      } catch (const std::exception& e) {
        obs::log_warn("calibration: ignoring corrupt cache %s (%s)",
                      cache_path.c_str(), e.what());
      }
    }
  }
  const TraceScaling s = TraceScaling::fit(measure_series(law, opt));
  if (!cache_path.empty()) {
    // Atomic write so a concurrent reader never sees a half-written cache;
    // failure to persist is only a warning — the result is still valid.
    try {
      write_file_atomic(cache_path, [&](std::ostream& os) { s.save(os); });
    } catch (const IoError& e) {
      obs::log_warn("calibration: could not write cache %s (%s)",
                    cache_path.c_str(), e.what());
    }
  }
  return s;
}

}  // namespace g6
