#pragma once
// Analytic performance model of the full GRAPE-6 installation:
// T_blockstep = T_host + T_DMA + T_GRAPE + T_net  (Eq 10 generalized).
//
// Topology conventions (Sec 2, Sec 3.2): within a cluster of H hosts, the
// H x H board grid gives every host row a complete copy of the system, so
// each host integrates n_b/H block members per blockstep against all N
// j-particles spread over its chips_per_host() chips. Across C clusters
// the "copy" algorithm is used: each cluster integrates n_b/C and clusters
// exchange the updated particles over Gigabit Ethernet.
//
// The same model object is used three ways:
//  * per-blockstep, trace-driven   -> the "measured" curves of Figs 13-19
//  * closed-form with mean block   -> the "theoretical estimate" curves
//  * totals/breakdowns             -> bottleneck analysis (Sec 4.4)

#include <cstddef>

#include "grape/config.hpp"
#include "hermite/trace.hpp"
#include "net/nic.hpp"
#include "perf/host_model.hpp"

namespace g6 {

struct SystemConfig {
  MachineConfig machine;
  HostModel host = hosts::athlon_xp_1800();
  NicModel nic = nics::ns83820();
  DmaModel dma;
  PacketSizes packets;

  /// LVDS board input link (Sec 3.3): bounds the rate at which j-updates
  /// and i-particles reach the boards.
  double board_link_Bps = 270.0e6;

  /// Synchronization operations per blockstep. The multi-cluster code
  /// needs several (Sec 4.4 reason (c)): intra-cluster sync, inter-cluster
  /// exchange handshakes, post-exchange sync.
  std::size_t sync_ops_single_cluster = 1;
  std::size_t sync_ops_multi_cluster = 4;

  /// Per-update record exchanged between clusters (predictor data).
  std::size_t update_record_bytes() const { return packets.j_particle_bytes; }

  std::size_t hosts() const { return machine.total_hosts(); }
  std::size_t clusters() const { return machine.clusters; }

  // --- presets matching the paper's configurations ----------------------
  static SystemConfig single_host();                  ///< Fig 13/14
  static SystemConfig cluster(std::size_t hosts);     ///< Fig 15/16 (1,2,4)
  static SystemConfig multi_cluster(std::size_t clusters);  ///< Fig 17/18
  /// Fig 19 tuned configuration: Intel 82540EM NIC + P4 hosts.
  static SystemConfig tuned(std::size_t clusters);
};

/// Virtual-seconds breakdown of one blockstep (per host; hosts proceed in
/// lockstep so this is also the wall time).
struct BlockstepCost {
  double host_s = 0.0;
  double dma_s = 0.0;
  double grape_s = 0.0;
  double net_s = 0.0;
  double total() const { return host_s + dma_s + grape_s + net_s; }

  BlockstepCost& operator+=(const BlockstepCost& o) {
    host_s += o.host_s;
    dma_s += o.dma_s;
    grape_s += o.grape_s;
    net_s += o.net_s;
    return *this;
  }
};

class MachineModel {
 public:
  explicit MachineModel(SystemConfig cfg);

  const SystemConfig& config() const { return cfg_; }
  double peak_flops() const { return cfg_.machine.peak_flops(); }

  /// Cost of one blockstep of `block_size` particles in an N-particle
  /// system.
  BlockstepCost blockstep_cost(std::size_t block_size, std::size_t n_total) const;

  /// Wall time per individual particle step (the y-axis of Figs 14/16/18).
  double time_per_particle_step(std::size_t block_size, std::size_t n_total) const {
    return blockstep_cost(block_size, n_total).total() /
           static_cast<double>(block_size);
  }

  /// Result of replaying a blockstep schedule through the model.
  struct TraceResult {
    double seconds = 0.0;
    unsigned long long steps = 0;
    unsigned long long blocksteps = 0;
    double flops = 0.0;
    BlockstepCost breakdown;

    double tflops() const { return seconds > 0.0 ? flops / seconds / 1e12 : 0.0; }
    double gflops() const { return tflops() * 1e3; }
    double steps_per_second() const {
      return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
    }
    double time_per_step() const {
      return steps > 0 ? seconds / static_cast<double>(steps) : 0.0;
    }
    /// Calculation speed by the paper's convention S = 57 N n_steps (Eq 9).
    double paper_speed_flops(std::size_t n_total) const {
      return steps_per_second() * 57.0 * static_cast<double>(n_total);
    }
  };

  TraceResult run_trace(const BlockstepTrace& trace) const;

 private:
  SystemConfig cfg_;
};

}  // namespace g6
