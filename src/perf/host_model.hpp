#pragma once
// Host-computer cost model (the T_host term of Eq 10).
//
// The host work per particle-step is the corrector, the new-timestep
// computation and scheduler bookkeeping. Fig 14 of the paper shows this is
// roughly constant but with a cache effect: "For small N, the cache-hit
// rate is higher and therefore the calculation on the host is faster."
// We model t_host(N) = t_fast + (t_slow - t_fast) * N / (N + N_half),
// which is the same kind of purely empirical saturation curve the paper
// fits (dotted line in Fig 14).

#include <string>

namespace g6 {

struct HostModel {
  std::string name;
  double t_fast_s = 0.0;    ///< per-step host time, cache-resident
  double t_slow_s = 0.0;    ///< per-step host time, out-of-cache
  double n_half = 1.0;      ///< particle count at half cache benefit
  double block_overhead_s = 0.0;  ///< fixed cost per blockstep (scheduler scan, syscalls)

  /// Host time for one particle step at system size N.
  double step_time(double n_particles) const {
    return t_fast_s +
           (t_slow_s - t_fast_s) * n_particles / (n_particles + n_half);
  }

  /// Constant-T_host simplification (the dashed line in Fig 14).
  double step_time_flat() const { return t_slow_s; }
};

namespace hosts {

/// AMD Athlon XP 1800+ on ECS K7S6A — the original GRAPE-6 host (Sec 2.2).
inline HostModel athlon_xp_1800() {
  return {"AthlonXP1800+", 1.1e-6, 2.8e-6, 2.0e4, 18.0e-6};
}

/// Intel P4 2.53 GHz overclocked to 2.85 GHz on Iwill P4GB (Sec 4.4).
inline HostModel pentium4_285() {
  return {"P4-2.85GHz", 0.7e-6, 1.8e-6, 3.0e4, 12.0e-6};
}

}  // namespace hosts

}  // namespace g6
