#include "perf/machine_model.hpp"

#include <algorithm>
#include <cmath>

#include "net/collectives.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace g6 {

SystemConfig SystemConfig::single_host() {
  SystemConfig cfg;
  cfg.machine = MachineConfig::single_host();
  cfg.machine.hosts_per_cluster = 1;
  cfg.machine.clusters = 1;
  return cfg;
}

SystemConfig SystemConfig::cluster(std::size_t hosts) {
  G6_REQUIRE(hosts >= 1 && hosts <= 4);
  SystemConfig cfg;
  cfg.machine = MachineConfig::single_cluster();
  cfg.machine.hosts_per_cluster = hosts;
  cfg.machine.clusters = 1;
  return cfg;
}

SystemConfig SystemConfig::multi_cluster(std::size_t clusters) {
  G6_REQUIRE(clusters >= 1 && clusters <= 4);
  SystemConfig cfg;
  cfg.machine = MachineConfig::full_system();
  cfg.machine.clusters = clusters;
  return cfg;
}

SystemConfig SystemConfig::tuned(std::size_t clusters) {
  SystemConfig cfg = multi_cluster(clusters);
  cfg.nic = nics::intel82540();
  cfg.host = hosts::pentium4_285();
  return cfg;
}

MachineModel::MachineModel(SystemConfig cfg) : cfg_(std::move(cfg)) {
  G6_REQUIRE(cfg_.machine.hosts_per_cluster >= 1);
  G6_REQUIRE(cfg_.machine.clusters >= 1);
}

BlockstepCost MachineModel::blockstep_cost(std::size_t block_size,
                                           std::size_t n_total) const {
  G6_REQUIRE(block_size >= 1);
  G6_REQUIRE(n_total >= 1);

  const MachineConfig& mc = cfg_.machine;
  const std::size_t hosts_per_cluster = mc.hosts_per_cluster;
  const std::size_t clusters = mc.clusters;
  const std::size_t total_hosts = hosts_per_cluster * clusters;

  // Block share integrated by one host.
  const std::size_t n_host =
      (block_size + total_hosts - 1) / total_hosts;

  BlockstepCost c;

  // ---- T_host: corrector + timestep + scheduler per step, plus a fixed
  // per-blockstep overhead (block assembly, DMA syscalls).
  c.host_s = static_cast<double>(n_host) *
                 cfg_.host.step_time(static_cast<double>(n_total)) +
             cfg_.host.block_overhead_s;

  // ---- T_GRAPE: each host's board row holds the full N spread over its
  // chips; one pass serves i_parallelism() block members.
  const std::size_t chips = mc.chips_per_host();
  const std::size_t n_j_chip = (n_total + chips - 1) / chips;
  const double pass_cycles =
      static_cast<double>(mc.vmp_ways) * static_cast<double>(n_j_chip) +
      static_cast<double>(mc.pipeline_latency_cycles) + 2.0 * 8.0 /*summation*/ +
      32.0 /*network board*/;
  const std::size_t passes =
      (n_host + mc.i_parallelism() - 1) / mc.i_parallelism();
  c.grape_s = static_cast<double>(passes) * pass_cycles / mc.clock_hz;

  // ---- T_DMA: three transactions per blockstep — write back the corrected
  // block, send the i-block share, read the results. Every cluster's
  // hardware needs ALL n_b updates (each cluster holds a full copy), and
  // within a cluster the H hosts split that write, so one host DMAs
  // n_b / hosts_per_cluster update records.
  const std::size_t j_write_count =
      (block_size + hosts_per_cluster - 1) / hosts_per_cluster;
  const double j_write_bytes =
      static_cast<double>(j_write_count) *
      static_cast<double>(cfg_.packets.j_particle_bytes);
  const double dma_j = cfg_.dma.transfer_time(static_cast<std::size_t>(j_write_bytes));
  // The column broadcast re-delivers every host's share to each board row:
  // a board input link carries block_size/hosts_per_cluster updates.
  const double link_bytes =
      static_cast<double>(block_size) / static_cast<double>(hosts_per_cluster) *
      static_cast<double>(cfg_.packets.j_particle_bytes);
  const double link_s = link_bytes / cfg_.board_link_Bps;
  c.dma_s = std::max(dma_j, link_s) +
            cfg_.dma.transfer_time(n_host * cfg_.packets.i_particle_bytes) +
            cfg_.dma.transfer_time(n_host * cfg_.packets.result_bytes);

  // ---- T_net: synchronization and (for multiple clusters) the copy-
  // algorithm particle exchange.
  if (total_hosts > 1) {
    const std::size_t sync_ops = clusters > 1 ? cfg_.sync_ops_multi_cluster
                                              : cfg_.sync_ops_single_cluster;
    c.net_s += static_cast<double>(sync_ops) *
               butterfly_barrier_time(total_hosts, cfg_.nic);
    // Timestep metadata for the shared scheduler (8 bytes per update).
    c.net_s += butterfly_allgather_time(total_hosts, n_host * 8, cfg_.nic);
  }
  if (clusters > 1) {
    // Each cluster ships its n_b/C updated particles to every other
    // cluster; the four hosts of a cluster drive four parallel lanes.
    const std::size_t lane_bytes = n_host * cfg_.update_record_bytes();
    c.net_s += static_cast<double>(clusters - 1) * cfg_.nic.message_time(lane_bytes);
  }

  return c;
}

MachineModel::TraceResult MachineModel::run_trace(const BlockstepTrace& trace) const {
  TraceResult r;
  const auto n = static_cast<double>(trace.n_particles);
  for (const auto& rec : trace.records) {
    const BlockstepCost c = blockstep_cost(rec.block_size, trace.n_particles);
    r.breakdown += c;
    r.seconds += c.total();
    r.steps += rec.block_size;
    ++r.blocksteps;
    // Flop accounting at the Gordon-Bell convention (Eq 9): 57 flops per
    // pairwise interaction, N interactions per step.
    r.flops += static_cast<double>(rec.block_size) * n *
               units::kFlopsPerInteraction;
  }
  return r;
}

}  // namespace g6
