#pragma once
// Blockstep-schedule calibration and synthesis (DESIGN.md Sec 5).
//
// The paper's speed metric S = 57 N n_steps / T depends on the blockstep
// schedule: how many individual steps per unit time the integrator takes
// and how they group into blocks. For N up to a few thousand we measure
// real schedules by running the actual Hermite integrator; the measured
// statistics are fitted with power laws in N and extrapolated to the
// paper's N (up to 2M), where a synthetic schedule with the same
// statistics drives the machine model. The paper itself relies on the
// same regularity ("the number of particles integrated in one blockstep
// is roughly proportional to N").

#include <iosfwd>
#include <string>
#include <vector>

#include "hermite/trace.hpp"
#include "nbody/particle.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace g6 {

/// The three softening choices benchmarked in Sec 4.
enum class SofteningLaw {
  kConstant,  ///< eps = 1/64
  kCubeRoot,  ///< eps = 1/[8(2N)^(1/3)]
  kOverN,     ///< eps = 4/N
};

const char* softening_name(SofteningLaw law);
double softening_for(SofteningLaw law, std::size_t n);

/// Schedule statistics measured at one (N, softening) point.
struct CalibrationPoint {
  std::size_t n = 0;
  double eps = 0.0;
  double steps_per_particle_per_time = 0.0;  ///< R(N)
  double mean_block_fraction = 0.0;          ///< <n_b> / N
  double log_block_sigma = 0.0;              ///< stddev of ln(n_b)
  double blocksteps_per_time = 0.0;
};

/// Options for the measurement runs.
struct CalibrationOptions {
  double t_span = 0.25;   ///< integration span per point (time units)
  double eta = 0.02;      ///< Hermite accuracy parameter
  unsigned seed = 20031115;  ///< SC'03 conference date
  unsigned threads = 1;
  std::vector<std::size_t> sizes = {256, 512, 1024, 2048};
};

/// Extract schedule statistics from a recorded trace.
CalibrationPoint schedule_statistics(const BlockstepTrace& trace, double eps);

/// Integrate an arbitrary initial condition for real and extract schedule
/// statistics (used for the application workloads of Sec 5).
CalibrationPoint measure_schedule(const ParticleSet& initial, double eps,
                                  const CalibrationOptions& opt);

/// Integrate a Plummer model for real and extract schedule statistics.
CalibrationPoint measure_plummer_schedule(std::size_t n, SofteningLaw law,
                                          const CalibrationOptions& opt);

/// Measure the whole size series for one softening law.
std::vector<CalibrationPoint> measure_series(SofteningLaw law,
                                             const CalibrationOptions& opt);

/// Fitted scaling laws; synthesizes schedules at arbitrary N.
struct TraceScaling {
  PowerLawFit steps_rate;      ///< R(N) = steps / particle / time unit
  PowerLawFit block_fraction;  ///< f(N) = <n_b> / N
  double log_block_sigma = 0.5;

  static TraceScaling fit(const std::vector<CalibrationPoint>& points);

  double steps_per_particle_per_time(std::size_t n) const {
    return steps_rate.evaluate(static_cast<double>(n));
  }
  double mean_block_size(std::size_t n) const;

  /// Generate a schedule with the fitted statistics: log-normal block
  /// sizes around f(N)*N until R(N)*N*t_span steps are scheduled.
  BlockstepTrace synthesize(std::size_t n, double t_span, Rng& rng) const;

  /// Generate a schedule with exactly ~target_steps individual steps —
  /// used to replay the paper's published application step counts
  /// (Sec 5) through the machine model.
  BlockstepTrace synthesize_steps(std::size_t n, unsigned long long target_steps,
                                  Rng& rng) const;

  void save(std::ostream& os) const;
  static TraceScaling load(std::istream& is);
};

/// Calibrate-and-fit with caching: loads `cache_path` if present, else
/// measures, fits and saves. An empty path disables caching.
TraceScaling calibrated_scaling(SofteningLaw law, const CalibrationOptions& opt,
                                const std::string& cache_path);

}  // namespace g6
